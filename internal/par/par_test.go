package par_test

import (
	"sync/atomic"
	"testing"

	"hybridpde/internal/par"
)

func TestChunkTilesRangeExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000, 1001} {
		for chunks := 1; chunks <= 9; chunks++ {
			prevHi := 0
			for k := 0; k < chunks; k++ {
				lo, hi := par.Chunk(n, chunks, k)
				if lo != prevHi {
					t.Fatalf("n=%d chunks=%d k=%d: lo=%d, want %d (gap/overlap)", n, chunks, k, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d chunks=%d k=%d: hi=%d < lo=%d", n, chunks, k, hi, lo)
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d chunks=%d: partition ends at %d, want %d", n, chunks, prevHi, n)
			}
		}
	}
}

func TestChunkSizesDifferByAtMostOne(t *testing.T) {
	for _, n := range []int{5, 17, 100} {
		for chunks := 1; chunks <= 8; chunks++ {
			minSz, maxSz := n, 0
			for k := 0; k < chunks; k++ {
				lo, hi := par.Chunk(n, chunks, k)
				if sz := hi - lo; sz < minSz {
					minSz = sz
				} else if sz > maxSz {
					maxSz = sz
				}
				if hi-lo > maxSz {
					maxSz = hi - lo
				}
			}
			if maxSz-minSz > 1 {
				t.Fatalf("n=%d chunks=%d: chunk sizes range [%d,%d]", n, chunks, minSz, maxSz)
			}
		}
	}
}

// incRun marks every index of its range; disjointness means no index is
// marked twice.
type incRun struct {
	hits []int32
}

func (r *incRun) Run(_, lo, hi int) {
	for i := lo; i < hi; i++ {
		atomic.AddInt32(&r.hits[i], 1)
	}
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 8} {
		p := par.NewPool(procs)
		for _, n := range []int{1, 2, 5, 100, 1000} {
			for _, grain := range []int{0, 1, 7, 64, 5000} {
				r := &incRun{hits: make([]int32, n)}
				p.Run(n, grain, r)
				for i, h := range r.hits {
					if h != 1 {
						t.Fatalf("procs=%d n=%d grain=%d: index %d hit %d times", procs, n, grain, i, h)
					}
				}
			}
		}
		p.Close()
	}
}

func TestRunZeroAndNegativeN(t *testing.T) {
	p := par.NewPool(4)
	defer p.Close()
	r := &incRun{}
	p.Run(0, 1, r)  // must not dispatch
	p.Run(-3, 1, r) // must not dispatch
}

func TestNilPoolIsSerial(t *testing.T) {
	var p *par.Pool
	if got := p.Procs(); got != 1 {
		t.Fatalf("nil Procs = %d, want 1", got)
	}
	r := &incRun{hits: make([]int32, 10)}
	p.Run(10, 1, r)
	for i, h := range r.hits {
		if h != 1 {
			t.Fatalf("nil pool: index %d hit %d times", i, h)
		}
	}
	p.Close() // must not panic
}

// chunkRecRun records which chunk processed each index, to check the
// partition a Run actually used matches Chunk arithmetic.
type chunkRecRun struct {
	owner []int32
}

func (r *chunkRecRun) Run(chunk, lo, hi int) {
	for i := lo; i < hi; i++ {
		atomic.StoreInt32(&r.owner[i], int32(chunk))
	}
}

func TestRunUsesFixedChunkBoundaries(t *testing.T) {
	const n = 103
	p := par.NewPool(4)
	defer p.Close()
	r := &chunkRecRun{owner: make([]int32, n)}
	p.Run(n, 1, r)
	// grain 1, n ≥ procs → exactly procs chunks with Chunk boundaries.
	for k := 0; k < 4; k++ {
		lo, hi := par.Chunk(n, 4, k)
		for i := lo; i < hi; i++ {
			if got := atomic.LoadInt32(&r.owner[i]); got != int32(k) {
				t.Fatalf("index %d owned by chunk %d, want %d", i, got, k)
			}
		}
	}
}

func TestGrainCapsChunkCount(t *testing.T) {
	const n = 10
	p := par.NewPool(8)
	defer p.Close()
	r := &chunkRecRun{owner: make([]int32, n)}
	p.Run(n, 5, r) // n/grain = 2 chunks despite 8 procs
	for k := 0; k < 2; k++ {
		lo, hi := par.Chunk(n, 2, k)
		for i := lo; i < hi; i++ {
			if got := atomic.LoadInt32(&r.owner[i]); got != int32(k) {
				t.Fatalf("index %d owned by chunk %d, want %d", i, got, k)
			}
		}
	}
}

func TestClosedPoolRunsInline(t *testing.T) {
	p := par.NewPool(4)
	p.Close()
	p.Close() // repeat close is a no-op
	r := &chunkRecRun{owner: make([]int32, 20)}
	p.Run(20, 1, r)
	for i := range r.owner {
		if got := r.owner[i]; got != 0 {
			t.Fatalf("closed pool: index %d owned by chunk %d, want 0 (inline)", i, got)
		}
	}
}

// sumRun accumulates per-chunk partial sums, the deterministic-reduction
// pattern: partials are folded serially in chunk order by the caller.
type sumRun struct {
	x        []float64
	partials []float64
}

func (r *sumRun) Run(chunk, lo, hi int) {
	s := 0.0
	for i := lo; i < hi; i++ {
		s += r.x[i]
	}
	r.partials[chunk] = s
}

func TestPerChunkPartialsAreDeterministic(t *testing.T) {
	const n = 997
	x := make([]float64, n)
	for i := range x {
		x[i] = 1.0 / float64(i+1)
	}
	var want float64
	first := true
	for _, procs := range []int{2, 3, 8} {
		p := par.NewPool(procs)
		r := &sumRun{x: x, partials: make([]float64, p.Procs())}
		// Force exactly 2 chunks at every pool size so the partial layout —
		// and hence the folded sum — is identical bit-for-bit.
		p.Run(n, n/2, r)
		got := 0.0
		for _, s := range r.partials {
			got += s
		}
		p.Close()
		if first {
			want, first = got, false
		} else if got != want {
			t.Fatalf("procs=%d: folded sum %x differs from %x", procs, got, want)
		}
	}
}

func TestRunAllocFree(t *testing.T) {
	p := par.NewPool(4)
	defer p.Close()
	r := &incRun{hits: make([]int32, 64)}
	allocs := testing.AllocsPerRun(100, func() {
		for i := range r.hits {
			r.hits[i] = 0
		}
		p.Run(64, 1, r)
	})
	if allocs != 0 {
		t.Fatalf("Run allocates %v per call, want 0", allocs)
	}
}
