// Package par is the repo's deterministic fan-out primitive: a small
// fixed-size worker pool plus an arithmetic partitioner whose chunk
// boundaries depend only on (n, chunks) — never on GOMAXPROCS, scheduling
// order, or timing. Every parallel kernel in the solve hot path (Jacobian
// assembly, band-LU trailing updates, SpMV, blocked reductions) is built on
// Run, and every one of them writes disjoint index ranges, so results are
// bit-identical at any worker count — including 1, which runs inline with no
// goroutine handoff at all.
//
// The pool is allocation-free once constructed: tasks are small value
// structs sent over a buffered channel, work units are Runner interface
// values (persistent structs owned by the caller, not closures), and the
// WaitGroup is reused across calls. That keeps Run legal inside
// //pdevet:noalloc hot paths.
package par

import (
	"runtime"
	"sync"
)

// Runner is one fan-out work unit. Run processes indices [lo, hi) of the
// partitioned range; chunk is the fixed chunk index (0-based), which callers
// use to address per-chunk partial buffers without synchronisation. Callers
// implement Runner on a persistent struct they mutate between calls — a
// closure would allocate on every dispatch.
//
// A Runner must not panic: panics in a pool worker goroutine crash the
// process (there is no recover shim, matching the rest of the repo's
// fail-fast kernels).
type Runner interface {
	Run(chunk, lo, hi int)
}

// task is one dispatched chunk. Sent by value; contains no pointers to the
// Pool itself so worker goroutines keep only the channel alive.
type task struct {
	r      Runner
	chunk  int
	lo, hi int
	wg     *sync.WaitGroup
}

// Pool is a fixed set of worker goroutines. NewPool(p) starts p−1 workers;
// the caller's goroutine always executes chunk 0, so p is the total
// parallelism. The zero value and nil are valid serial pools (Procs()==1,
// Run inline).
//
// A Pool's Run is not reentrant and not safe for concurrent use: it is a
// per-solver resource, owned by exactly one solve at a time (the
// nonlin.SparseSolver threads one pool through every kernel of its
// iteration). Close releases the workers; an unreachable Pool is also
// cleaned up by the runtime, so dropping one without Close does not leak
// goroutines.
type Pool struct {
	procs   int
	tasks   chan task
	wg      sync.WaitGroup
	cleanup runtime.Cleanup
	closed  bool
}

// NewPool returns a pool with the given total parallelism. procs < 1 is
// treated as 1. procs == 1 starts no goroutines.
func NewPool(procs int) *Pool {
	if procs < 1 {
		procs = 1
	}
	p := &Pool{procs: procs}
	if procs > 1 {
		p.tasks = make(chan task, procs-1)
		for i := 1; i < procs; i++ {
			go workerLoop(p.tasks)
		}
		// Workers reference only the channel, so the Pool itself can become
		// unreachable while they block on receive; the cleanup closes the
		// channel and lets them exit.
		p.cleanup = runtime.AddCleanup(p, func(ch chan task) { close(ch) }, p.tasks)
	}
	return p
}

// workerLoop is the body of every pool goroutine. Package-level (not a
// method) so workers hold no reference to the Pool.
func workerLoop(tasks chan task) {
	for t := range tasks {
		t.r.Run(t.chunk, t.lo, t.hi)
		t.wg.Done()
	}
}

// Procs reports the pool's total parallelism; nil pools are serial.
func (p *Pool) Procs() int {
	if p == nil || p.procs < 1 {
		return 1
	}
	return p.procs
}

// Close stops the worker goroutines. The pool remains usable afterwards —
// Run degrades to inline serial execution. Safe on nil and on repeat calls.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil || p.closed {
		return
	}
	p.closed = true
	p.cleanup.Stop()
	close(p.tasks)
}

// Chunk returns the half-open index range [lo, hi) of chunk k when n items
// are split into the given chunk count. Boundaries are pure arithmetic —
// ⌊k·n/chunks⌋ — so the partition is a function of (n, chunks) alone, the
// ranges tile [0, n) exactly, and sizes differ by at most one.
func Chunk(n, chunks, k int) (lo, hi int) {
	return k * n / chunks, (k + 1) * n / chunks
}

// Run partitions [0, n) into fixed chunks and executes r over them: chunks
// 1..c−1 on pool workers, chunk 0 on the calling goroutine, returning after
// all complete. The chunk count is min(Procs, n/grain) (at least 1), so
// grain is the minimum items per chunk — size it so one chunk amortises the
// dispatch cost. With one chunk (serial pool, closed pool, or small n) r
// runs inline as r.Run(0, 0, n).
//
// Determinism contract: Run guarantees nothing about execution order, so
// callers must arrange that chunk results are combined independently of it —
// in this repo, by writing disjoint ranges or per-chunk partial buffers
// folded serially in chunk order afterwards.
//
//pdevet:noalloc
func (p *Pool) Run(n, grain int, r Runner) {
	if n <= 0 {
		return
	}
	chunks := 1
	if p != nil && p.tasks != nil && !p.closed {
		chunks = p.procs
		if grain > 0 {
			if m := n / grain; m < chunks {
				chunks = m
			}
		}
		if chunks < 1 {
			chunks = 1
		}
	}
	if chunks == 1 {
		r.Run(0, 0, n)
		return
	}
	p.wg.Add(chunks - 1)
	for c := 1; c < chunks; c++ {
		lo, hi := Chunk(n, chunks, c)
		p.tasks <- task{r: r, chunk: c, lo: lo, hi: hi, wg: &p.wg}
	}
	lo, hi := Chunk(n, chunks, 0)
	r.Run(0, lo, hi)
	p.wg.Wait()
}
