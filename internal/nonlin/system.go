// Package nonlin implements the digital and continuous algorithms for
// nonlinear systems of algebraic equations that the paper contrasts:
//
//   - the classical and damped Newton methods (§2.1), including the
//     halve-until-converged damping schedule of the paper's baseline solver
//     (§6.1);
//   - the continuous Newton method (§2.2), the ODE du/dt = −J⁻¹F(u) that the
//     analog accelerator evolves natively;
//   - homotopy continuation (§3.2), which drags the roots of a trivial
//     system to the roots of the hard one;
//   - Broyden's quasi-Newton method, an extension used for ablations.
package nonlin

import (
	"errors"
	"fmt"

	"hybridpde/internal/la"
	"hybridpde/internal/par"
)

// System is a square nonlinear algebraic system F(u) = 0 with a dense
// Jacobian, suitable for the small problems that fit on the analog
// accelerator (up to a few hundred unknowns).
type System interface {
	// Dim returns the number of unknowns (= number of equations).
	Dim() int
	// Eval writes F(u) into f. len(u) == len(f) == Dim().
	Eval(u, f []float64) error
	// Jacobian writes J(u) into jac, a Dim()×Dim() matrix.
	Jacobian(u []float64, jac *la.Dense) error
}

// SparseSystem is a nonlinear system with a sparse Jacobian, used for the
// PDE stencil systems whose Jacobians are banded (§4.4).
type SparseSystem interface {
	Dim() int
	Eval(u, f []float64) error
	// JacobianCSR returns J(u). Implementations may reuse internal storage;
	// the caller must not retain the matrix across calls.
	JacobianCSR(u []float64) (*la.CSR, error)
}

// PoolAware is implemented by systems whose residual and Jacobian walks can
// fan out across a worker pool. The SparseSolver hands its pool to the
// system at the start of each Solve (nil when running serial); systems must
// produce bit-identical results at every pool size — the repo-wide
// determinism contract (DESIGN.md, "Parallel execution model").
type PoolAware interface {
	SetPool(p *par.Pool)
}

// DenseAdapter turns a SparseSystem into a System by expanding the Jacobian.
// Used when a PDE block is small enough for the dense analog path.
type DenseAdapter struct {
	S SparseSystem
}

// Dim returns the dimension of the wrapped system.
func (a DenseAdapter) Dim() int { return a.S.Dim() }

// Eval evaluates the wrapped system.
func (a DenseAdapter) Eval(u, f []float64) error { return a.S.Eval(u, f) }

// Jacobian expands the sparse Jacobian into jac.
func (a DenseAdapter) Jacobian(u []float64, jac *la.Dense) error {
	j, err := a.S.JacobianCSR(u)
	if err != nil {
		return err
	}
	jac.Zero()
	for i := 0; i < j.Rows(); i++ {
		cols, vals := j.RowNNZ(i)
		for k, c := range cols {
			jac.Set(i, c, vals[k])
		}
	}
	return nil
}

// FuncSystem builds a System from plain closures, convenient for tests and
// the tutorial problems of §2–3.
type FuncSystem struct {
	N int
	F func(u, f []float64) error
	J func(u []float64, jac *la.Dense) error
}

// Dim returns N.
func (s FuncSystem) Dim() int { return s.N }

// Eval invokes F.
func (s FuncSystem) Eval(u, f []float64) error { return s.F(u, f) }

// Jacobian invokes J, falling back to finite differences when J is nil.
func (s FuncSystem) Jacobian(u []float64, jac *la.Dense) error {
	if s.J != nil {
		return s.J(u, jac)
	}
	return FiniteDifferenceJacobian(s, u, jac)
}

// FiniteDifferenceJacobian fills jac with a forward-difference approximation
// of the Jacobian of sys at u.
func FiniteDifferenceJacobian(sys System, u []float64, jac *la.Dense) error {
	n := sys.Dim()
	f0 := make([]float64, n)
	if err := sys.Eval(u, f0); err != nil {
		return err
	}
	fp := make([]float64, n)
	up := la.Copy(u)
	const eps = 1e-7
	for j := 0; j < n; j++ {
		h := eps * (1 + absf(u[j]))
		up[j] = u[j] + h
		if err := sys.Eval(up, fp); err != nil {
			return err
		}
		up[j] = u[j]
		for i := 0; i < n; i++ {
			jac.Set(i, j, (fp[i]-f0[i])/h)
		}
	}
	return nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ErrDiverged is returned when an iteration leaves the basin of any root
// (residual growing without bound or state becoming non-finite).
var ErrDiverged = errors.New("nonlin: iteration diverged")

// ErrNoConvergence is returned when the iteration budget is exhausted.
var ErrNoConvergence = errors.New("nonlin: no convergence within iteration budget")

// ErrJacobianSingular wraps la.ErrSingular with iteration context.
type JacobianSingularError struct {
	Iteration int
	Err       error
}

// Error implements the error interface.
func (e *JacobianSingularError) Error() string {
	return fmt.Sprintf("nonlin: singular Jacobian at iteration %d: %v", e.Iteration, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *JacobianSingularError) Unwrap() error { return e.Err }
