package nonlin

import (
	"math"
	"testing"

	"hybridpde/internal/la"
)

func TestContinuousNewtonCubic(t *testing.T) {
	sys := complexCubic()
	res, err := ContinuousNewton(nil, sys, []float64{2, 0.3}, ContinuousOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("continuous Newton did not converge")
	}
	if nearestCubicRoot(res.U) != 0 {
		t.Fatalf("converged to wrong root: %v", res.U)
	}
	if res.SettleTime <= 0 {
		t.Fatal("settle time must be positive")
	}
}

func TestContinuousNewtonResidualDecayRate(t *testing.T) {
	// Along the Newton flow, d‖F‖/dt = −‖F‖ exactly, so settle time should
	// be ≈ ln(r0/tol).
	sys := complexCubic()
	u0 := []float64{2, 0.3}
	f := make([]float64, 2)
	if err := sys.Eval(u0, f); err != nil {
		t.Fatal(err)
	}
	r0 := la.Norm2(f)
	tol := 1e-8
	res, err := ContinuousNewton(nil, sys, u0, ContinuousOptions{Tol: tol})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(r0 / tol)
	// Crossing is detected at accepted-step granularity, so allow a couple
	// of time units of slack on top of the ideal e^{−t} law.
	if res.SettleTime < want-0.5 || res.SettleTime > want+2.5 {
		t.Fatalf("settle time %g, want ≈ %g", res.SettleTime, want)
	}
}

func TestContinuousNewtonBasinsMoreContiguousThanDiscrete(t *testing.T) {
	// The paper's Figure 2 claim: continuous Newton basins are contiguous
	// while classical Newton basins are fractal. Quantify on a coarse line
	// scan: count sign changes of the root index along a segment that is
	// notorious for fractal behaviour in discrete Newton.
	sys := complexCubic()
	scan := func(solve func(u0 []float64) (int, bool)) int {
		changes := 0
		prev := -1
		for i := 0; i <= 120; i++ {
			x := -2 + 4*float64(i)/120
			root, ok := solve([]float64{x, 0.77}) // off-axis horizontal line
			if !ok {
				continue
			}
			if prev >= 0 && root != prev {
				changes++
			}
			prev = root
		}
		return changes
	}
	contChanges := scan(func(u0 []float64) (int, bool) {
		res, err := ContinuousNewton(nil, sys, u0, ContinuousOptions{Tol: 1e-8})
		if err != nil || !res.Converged {
			return 0, false
		}
		return nearestCubicRoot(res.U), true
	})
	discChanges := scan(func(u0 []float64) (int, bool) {
		res, err := Newton(nil, sys, u0, NewtonOptions{Tol: 1e-8, MaxIter: 80})
		if err != nil || !res.Converged {
			return 0, false
		}
		return nearestCubicRoot(res.U), true
	})
	if contChanges > discChanges {
		t.Fatalf("continuous basins (%d transitions) should be no more fragmented than discrete (%d)", contChanges, discChanges)
	}
	if contChanges > 4 {
		t.Fatalf("continuous basins should be nearly contiguous, got %d transitions", contChanges)
	}
}

func TestContinuousNewtonAllThreeRootsReachable(t *testing.T) {
	sys := complexCubic()
	found := map[int]bool{}
	starts := [][]float64{{1.5, 0.2}, {-1, 1.2}, {-1, -1.2}}
	for _, s := range starts {
		res, err := ContinuousNewton(nil, sys, s, ContinuousOptions{Tol: 1e-9})
		if err != nil {
			t.Fatalf("start %v: %v", s, err)
		}
		found[nearestCubicRoot(res.U)] = true
	}
	if len(found) != 3 {
		t.Fatalf("expected all three cubic roots reachable, found %v", found)
	}
}

func TestHomotopyCoupledQuadratic(t *testing.T) {
	// Paper Figure 3: track the four roots (±1, ±1) of the simple system
	// to roots of the hard system. Every start must converge to a genuine
	// root of the hard system.
	hard := coupledQuadratic(1.0, -1.0)
	simple := SquareRootsSimple(2)
	roots := make(map[[2]int64]bool)
	for _, s := range [][]float64{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}} {
		res, err := Homotopy(nil, simple, hard, s, HomotopyOptions{})
		if err != nil {
			t.Fatalf("start %v: %v", s, err)
		}
		f := make([]float64, 2)
		if err := hard.Eval(res.U, f); err != nil {
			t.Fatal(err)
		}
		if la.Norm2(f) > 1e-8 {
			t.Fatalf("start %v: homotopy endpoint is not a root, ‖F‖=%g", s, la.Norm2(f))
		}
		key := [2]int64{int64(math.Round(res.U[0] * 1e6)), int64(math.Round(res.U[1] * 1e6))}
		roots[key] = true
	}
	if len(roots) < 2 {
		t.Fatalf("expected at least two distinct roots from four homotopy paths, got %d", len(roots))
	}
}

func TestHomotopyPathRecorded(t *testing.T) {
	hard := coupledQuadratic(0.5, 0.5)
	res, err := Homotopy(nil, SquareRootsSimple(2), hard, []float64{1, 1}, HomotopyOptions{Steps: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) < 21 { // λ=0 plus at least 20 increments
		t.Fatalf("path length %d, want ≥ 21", len(res.Path))
	}
	last := res.Path[len(res.Path)-1]
	if res.Path[0].Lambda != 0 || math.Abs(last.Lambda-1) > 1e-12 {
		t.Fatalf("path endpoints wrong: %v .. %v", res.Path[0], last)
	}
}

func TestHomotopyDimensionMismatch(t *testing.T) {
	if _, err := Homotopy(nil, SquareRootsSimple(3), coupledQuadratic(1, 1), []float64{1, 1, 1}, HomotopyOptions{}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestNewtonFlowSingularitySurfaced(t *testing.T) {
	// Flow started exactly on the singular set of the cubic (z=0) must
	// report the singular Jacobian rather than silently stalling.
	sys := complexCubic()
	flow := NewtonFlow(sys)
	dudt := make([]float64, 2)
	if err := flow(0, []float64{0, 0}, dudt); err == nil {
		t.Fatal("expected singular Jacobian error at z=0")
	}
}

// TestNewtonHomotopyGlobal exercises the global Newton homotopy
// G(u,λ) = F(u) − (1−λ)F(u₀): the start u₀ is a root of G(·,0) by
// construction, so the homotopy needs no hand-built simple system. atan is
// the classic case where undamped Newton diverges from |u₀| ≳ 1.392; the
// homotopy must still reach the root.
func TestNewtonHomotopyGlobal(t *testing.T) {
	res, err := NewtonHomotopy(nil, atanScalar(), []float64{10}, HomotopyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.U[0]) > 1e-8 {
		t.Fatalf("homotopy missed the atan root: %+v", res)
	}
	if res.NewtonIters == 0 || res.LambdaSteps == 0 {
		t.Fatalf("homotopy accounting empty: %+v", res)
	}
}

func TestNewtonHomotopyCoupledQuadratic(t *testing.T) {
	hard := coupledQuadratic(1.0, -1.0)
	res, err := NewtonHomotopy(nil, hard, []float64{3, -3}, HomotopyOptions{Steps: 30})
	if err != nil {
		t.Fatal(err)
	}
	f := make([]float64, 2)
	if err := hard.Eval(res.U, f); err != nil {
		t.Fatal(err)
	}
	if la.Norm2(f) > 1e-8 {
		t.Fatalf("endpoint is not a root of the hard system: ‖F‖=%g", la.Norm2(f))
	}
}

func TestNewtonHomotopyDimensionMismatch(t *testing.T) {
	if _, err := NewtonHomotopy(nil, atanScalar(), []float64{1, 2}, HomotopyOptions{}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}
