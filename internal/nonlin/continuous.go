package nonlin

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hybridpde/internal/la"
	"hybridpde/internal/ode"
)

// ContinuousOptions configures the continuous Newton method.
type ContinuousOptions struct {
	// Tol is the convergence target on ‖F(u)‖₂. Default 1e-8.
	Tol float64
	// TMax bounds the ODE horizon in units of the Newton flow's natural
	// time constant (the residual decays as e^{−t}). Default 60.
	TMax float64
	// Adaptive tunes the underlying Dormand–Prince integrator.
	Adaptive ode.AdaptiveOptions
}

func (o *ContinuousOptions) defaults() {
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.TMax <= 0 {
		o.TMax = 60
	}
	// The trajectory must be tracked noticeably more accurately than the
	// residual target, or the state hovers at the integrator's error floor
	// above Tol and the solve never registers convergence.
	if o.Adaptive.AbsTol <= 0 {
		o.Adaptive.AbsTol = math.Max(o.Tol*1e-3, 1e-14)
	}
	if o.Adaptive.RelTol <= 0 {
		o.Adaptive.RelTol = 1e-9
	}
}

// ContinuousResult reports a continuous-Newton solve.
type ContinuousResult struct {
	U          []float64
	Converged  bool
	Residual   float64
	SettleTime float64 // ODE time at which ‖F‖ reached Tol
	Steps      int     // integrator steps (digital cost of emulating analog)
	Evals      int     // derivative (and thus Jacobian) evaluations
}

// NewtonFlow returns the continuous-Newton vector field
// du/dt = −J(u)⁻¹·F(u) for sys (§2.2, Figure 1). The returned ode.System
// reports la.ErrSingular-wrapped errors when the Jacobian becomes singular
// along the trajectory.
func NewtonFlow(sys System) ode.System {
	n := sys.Dim()
	f := make([]float64, n)
	jac := la.NewDense(n, n)
	return func(t float64, u, dudt []float64) error {
		if err := sys.Eval(u, f); err != nil {
			return err
		}
		if err := sys.Jacobian(u, jac); err != nil {
			return err
		}
		lu, err := la.FactorLU(jac)
		if err != nil {
			return fmt.Errorf("nonlin: Newton flow at t=%g: %w", t, err)
		}
		if err := lu.Solve(dudt, f); err != nil {
			return fmt.Errorf("nonlin: Newton flow at t=%g: %w", t, err)
		}
		for i := range dudt {
			dudt[i] = -dudt[i]
		}
		return nil
	}
}

// ContinuousNewton solves F(u) = 0 by integrating the continuous Newton ODE
// until the residual reaches Tol. This is the exact algorithm the analog
// accelerator evolves physically; running it digitally costs many integrator
// steps, which is the paper's argument for doing it in analog (§3.2:
// "homotopy continuation is again an ODE in disguise, and therefore costly
// to approximate in a digital computer").
// ctx may be nil; a cancelled context stops the integration and returns an
// error wrapping the context's error.
func ContinuousNewton(ctx context.Context, sys System, u0 []float64, opts ContinuousOptions) (ContinuousResult, error) {
	opts.defaults()
	if len(u0) != sys.Dim() {
		return ContinuousResult{}, errors.New("nonlin: initial guess has wrong dimension")
	}
	flow := NewtonFlow(sys)
	f := make([]float64, sys.Dim())
	var res ContinuousResult
	settle := -1.0
	cancelled := false
	inner := opts.Adaptive
	userObs := inner.Observer
	inner.Observer = func(t float64, u []float64) bool {
		if ctxErr(ctx) != nil {
			cancelled = true
			return false
		}
		if userObs != nil && !userObs(t, u) {
			return false
		}
		if err := sys.Eval(u, f); err != nil {
			return false
		}
		if la.Norm2(f) <= opts.Tol {
			settle = t
			return false
		}
		return true
	}
	r, err := ode.DormandPrince(flow, u0, 0, opts.TMax, inner)
	res.U = r.Y
	res.Steps = r.Steps
	res.Evals = r.Evals
	if cancelled {
		return res, ctxErr(ctx)
	}
	if err != nil {
		return res, err
	}
	if err := sys.Eval(r.Y, f); err != nil {
		return res, err
	}
	res.Residual = la.Norm2(f)
	if settle >= 0 && res.Residual <= opts.Tol*1.001 {
		res.Converged = true
		res.SettleTime = settle
		return res, nil
	}
	return res, ErrNoConvergence
}
