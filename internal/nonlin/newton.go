package nonlin

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hybridpde/internal/la"
	"hybridpde/internal/par"
)

// NewtonOptions configures the Newton family of solvers.
type NewtonOptions struct {
	// Tol is the convergence target on ‖F(u)‖₂. Default 1e-10.
	Tol float64
	// RelTol, when positive, relaxes the target to
	// max(Tol, RelTol·‖F(u0)‖): for large or badly scaled systems the
	// absolute residual floor is set by rounding in F itself, and an
	// absolute-only criterion can be unreachable.
	RelTol float64
	// MaxIter bounds iterations of a single damping attempt. Default 100.
	MaxIter int
	// Damping is the fixed step fraction h ∈ (0,1]; 1 is classical Newton.
	// Ignored when AutoDamp is set. Default 1.
	Damping float64
	// AutoDamp enables the paper's baseline schedule (§6.1): start at
	// h = 1.0 and halve the damping parameter after each failed attempt
	// until convergence is possible or MinDamping is reached.
	AutoDamp bool
	// MinDamping is the smallest damping tried by AutoDamp. Default 1/1024.
	MinDamping float64
	// DivergeFactor aborts an attempt when the residual exceeds this
	// multiple of its starting value. Default 1e6.
	DivergeFactor float64
	// Procs bounds the worker count of the per-solve parallel kernels: the
	// band-LU trailing-submatrix updates and — for PoolAware systems — the
	// Jacobian assembly and residual walks fan out across a pool owned by
	// the SparseSolver. 0 and 1 run serial. Solutions, residuals and
	// iteration counts are bit-identical at every setting (the kernels
	// partition into disjoint writes in serial order). The dense Newton path
	// ignores it.
	Procs int
	// Chord enables modified-Newton (chord) iteration on the sparse path:
	// the band-LU factorization is reused — and the sharded Jacobian
	// refresh skipped entirely — across Newton iterations *and* across
	// Solve calls of the same system (implicit time stepping, where
	// consecutive steps differ by O(dt)). The factorization is refreshed
	// only when the refresh gate fires: the observed residual contraction
	// degrades past ChordContraction, or the factorization's age exceeds
	// ChordMaxAge. Gate decisions depend only on residual values, which are
	// bit-identical across worker counts, so chord solves keep the
	// cross-procs bit-identity contract. The dense path ignores it.
	Chord bool
	// ChordContraction is the refresh-gate threshold ρ ∈ (0,1): an
	// iteration under a reused factorization must contract the residual to
	// at most ρ·previous, otherwise the Jacobian is refreshed and
	// refactored before the next linear solve. Default 0.5.
	ChordContraction float64
	// ChordMaxAge is the hard bound on factorization reuse: after this many
	// linear solves the Jacobian is refreshed regardless of contraction.
	// Default 64.
	ChordMaxAge int
}

func (o *NewtonOptions) defaults() {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 1
	}
	if o.MinDamping <= 0 {
		o.MinDamping = 1.0 / 1024
	}
	if o.DivergeFactor <= 0 {
		o.DivergeFactor = 1e6
	}
	if o.ChordContraction <= 0 || o.ChordContraction >= 1 {
		o.ChordContraction = 0.5
	}
	if o.ChordMaxAge <= 0 {
		o.ChordMaxAge = 64
	}
}

// Result describes a Newton solve. The split between total and counted work
// mirrors the paper's measurement protocol: the baseline is charged only for
// the final, successful damping attempt ("we give the digital solver the
// advantage counting only the time spent using the correct damping
// parameter"), while TotalIterations includes the trial-and-error attempts.
type Result struct {
	U            []float64
	Converged    bool
	Residual     float64 // final ‖F(u)‖₂
	Iterations   int     // iterations of the successful (or last) attempt
	TotalIters   int     // iterations across all damping attempts
	LinearSolves int     // linear solves (back-substitutions), successful attempt
	// Refactorizations counts Jacobian refresh + factorization events of the
	// successful attempt. Classical Newton refactors every linear solve, so
	// it equals LinearSolves there; chord mode reuses factorizations, so
	// Refactorizations ≤ LinearSolves and the gap is the reuse win.
	Refactorizations int
	FactorOps        int64   // multiply-adds spent factoring (sparse path)
	DampingUsed      float64 // damping parameter of the successful attempt
	Attempts         int     // damping attempts tried (AutoDamp)
}

// ctxErr reports a pending cancellation wrapped so callers can test with
// errors.Is(err, context.Canceled) / context.DeadlineExceeded. A nil context
// never cancels.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("nonlin: solve aborted: %w", err)
	}
	return nil
}

// stepWork accounts one linear solve: the factorization multiply-adds spent
// (zero when a chord step reused an existing factorization) and whether the
// Jacobian was refreshed and refactored.
type stepWork struct {
	ops        int64
	refactored bool
}

// jacSolver abstracts the dense and sparse linear-solve kernels so both
// Newton variants share one iteration loop.
type jacSolver interface {
	dim() int
	eval(u, f []float64) error
	// solveStep computes delta = J⁻¹ f, returning the factorization work
	// performed. Chord-capable implementations may reuse a factorization
	// from an earlier call, in which case work.refactored is false.
	solveStep(u, f, delta []float64) (stepWork, error)
}

// attemptPrep is implemented by solvers that keep per-attempt state (the
// chord refresh gate's residual history); newtonAttempt calls it before the
// first iteration of every damping attempt.
type attemptPrep interface {
	beginAttempt()
}

type denseSolver struct {
	sys System
	jac *la.Dense
}

func (s *denseSolver) dim() int                  { return s.sys.Dim() }
func (s *denseSolver) eval(u, f []float64) error { return s.sys.Eval(u, f) }
func (s *denseSolver) solveStep(u, f, delta []float64) (stepWork, error) {
	if err := s.sys.Jacobian(u, s.jac); err != nil {
		return stepWork{}, err
	}
	lu, err := la.FactorLU(s.jac)
	if err != nil {
		return stepWork{}, err
	}
	n := int64(s.sys.Dim())
	return stepWork{ops: n * n * n / 3, refactored: true}, lu.Solve(delta, f)
}

// SparseSolver is a reusable workspace for repeated sparse Newton solves of
// same-shaped systems — the inner loop of implicit time stepping, where a
// fresh factorization workspace and iterate buffers every step would dominate
// the allocator. The zero value is ready to use; buffers grow on first solve
// and are reused while the system shape (dimension and Jacobian bandwidths)
// stays put.
//
// Result.U returned by Solve aliases the workspace iterate buffer: it is
// valid until the next Solve call. Copy it if it must outlive the workspace.
// A SparseSolver must not be used concurrently.
type SparseSolver struct {
	u, f, delta []float64
	lu          *la.BandLU
	n, kl, ku   int // shape the band workspace was sized for
	// pat is the Jacobian pattern (by pointer identity) the cached (n, kl,
	// ku) were scanned from: the stencil systems return the same refreshed
	// *la.CSR every iteration, so bandwidth scans happen once per pattern,
	// not once per iteration. The cached pattern pointer keeps the matrix
	// alive, so address reuse cannot alias a different pattern.
	pat *la.CSR
	// pool fans the per-iteration kernels out across procs workers; see
	// NewtonOptions.Procs.
	pool  *par.Pool
	procs int
	sys   SparseSystem

	// Chord-mode state (NewtonOptions.Chord): the refresh gate's view of the
	// live factorization. chordValid marks that w.lu holds a usable
	// factorization of this system; it survives across Solve calls on the
	// same system so time-stepping reuses factorizations across steps.
	// chordLastR is the residual norm observed before the previous linear
	// solve of the current attempt (negative at attempt start: the first
	// iteration of an attempt has no contraction history to judge).
	// Every field is derived from residual values and iteration counts only
	// — never wall time or worker counts — so gate decisions are
	// bit-identical across procs.
	chordOn     bool
	chordValid  bool
	chordAge    int
	chordLastR  float64
	chordRho    float64
	chordMaxAge int
}

// NewSparseSolver returns an empty workspace. Equivalent to &SparseSolver{}.
func NewSparseSolver() *SparseSolver { return &SparseSolver{} }

// Solve runs the damped Newton iteration on sys from u0, reusing the
// workspace buffers. ctx may be nil; a cancelled context aborts between
// iterations with an error wrapping the context's error.
//
//pdevet:noalloc
func (w *SparseSolver) Solve(ctx context.Context, sys SparseSystem, u0 []float64, opts NewtonOptions) (Result, error) {
	n := sys.Dim()
	if len(w.u) != n {
		// Grow-on-first-use: buffers are sized once per system shape and
		// reused across every subsequent step of the time loop.
		w.u = make([]float64, n)     //pdevet:allow noalloc grow-on-first-use
		w.f = make([]float64, n)     //pdevet:allow noalloc grow-on-first-use
		w.delta = make([]float64, n) //pdevet:allow noalloc grow-on-first-use
		w.chordValid = false
	}
	w.setProcs(opts.Procs)
	if pa, ok := sys.(PoolAware); ok {
		pa.SetPool(w.pool)
	}
	opts.defaults()
	w.chordOn = opts.Chord
	w.chordRho = opts.ChordContraction
	w.chordMaxAge = opts.ChordMaxAge
	if w.sys != sys {
		// A different system invalidates the live factorization: chord reuse
		// across Solve calls is only sound while the Jacobian drifts by
		// O(dt) along one system's trajectory.
		w.chordValid = false
	}
	w.sys = sys
	return newtonLoop(ctx, w, u0, opts, w.u, w.f, w.delta)
}

// setProcs installs the worker pool matching the requested per-solve
// parallelism, replacing the old pool when the setting changes.
func (w *SparseSolver) setProcs(procs int) {
	if procs < 1 {
		procs = 1
	}
	if procs == w.procs {
		return
	}
	w.pool.Close()
	w.pool = nil
	if procs > 1 {
		w.pool = par.NewPool(procs)
	}
	w.procs = procs
	if w.lu != nil {
		w.lu.SetPool(w.pool)
	}
}

// Close releases the worker pool's goroutines. The solver stays usable —
// the next Solve recreates the pool its options ask for. Letting a solver
// become unreachable without Close is also fine: the pool's workers are
// reclaimed by the runtime.
func (w *SparseSolver) Close() {
	w.pool.Close()
	w.pool = nil
	w.procs = 0
	if w.lu != nil {
		w.lu.SetPool(nil)
	}
}

func (w *SparseSolver) dim() int                  { return w.sys.Dim() }
func (w *SparseSolver) eval(u, f []float64) error { return w.sys.Eval(u, f) }

// ResetReuse discards the chord-mode factorization state, so the next chord
// solve refreshes the Jacobian at its own first iterate regardless of what
// the workspace solved before. Drivers call it at trajectory start: a chord
// time loop must produce the same bits on a warm workspace as on a fresh
// one, and a factorization left over from an unrelated request would
// otherwise steer the first step's iterate sequence.
func (w *SparseSolver) ResetReuse() {
	w.chordValid = false
	w.chordAge = 0
	w.chordLastR = -1
}

// beginAttempt resets the refresh gate's residual history: the first
// iteration of a damping attempt has no contraction to judge (the iterate
// just jumped back to u0, so comparing its residual against the previous
// attempt's tail would misread the restart as divergence).
//
//pdevet:noalloc
func (w *SparseSolver) beginAttempt() {
	w.chordLastR = -1
}

// refactor refreshes the Jacobian at u and factors it into the band
// workspace, returning the factorization work.
//
//pdevet:noalloc
func (w *SparseSolver) refactor(u []float64) (int64, error) {
	j, err := w.sys.JacobianCSR(u)
	if err != nil {
		return 0, err
	}
	if j != w.pat || j.Rows() != w.n {
		// New Jacobian pattern: scan the bandwidths once and cache them
		// under the pattern's identity. The fixed-pattern stencil systems
		// return the same refreshed matrix every iteration, so the steady
		// loop never rescans.
		w.pat = j
		w.n = j.Rows()
		w.kl, w.ku = la.Bandwidths(j)
		if w.lu == nil {
			w.lu = &la.BandLU{} //pdevet:allow noalloc grow-on-first-use
			w.lu.SetPool(w.pool)
		}
	}
	if err := la.FactorBandLUInto(w.lu, j, w.kl, w.ku); err != nil {
		return 0, err
	}
	return w.lu.FactorOps, nil
}

//pdevet:noalloc
func (w *SparseSolver) solveStep(u, f, delta []float64) (stepWork, error) {
	if !w.chordOn {
		ops, err := w.refactor(u)
		if err != nil {
			return stepWork{}, err
		}
		return stepWork{ops: ops, refactored: true}, w.lu.Solve(delta, f)
	}
	// Chord mode: reuse the live factorization until the refresh gate
	// fires. The gate reads only residual norms (‖f‖ was just evaluated by
	// the shared loop; recomputing it serially here is O(n) against the
	// O(n·b²) factorization it may avoid) and the factorization age, so
	// its decisions are bit-identical across worker counts.
	r := la.Norm2(f)
	refresh := !w.chordValid || w.lu == nil ||
		w.chordAge >= w.chordMaxAge ||
		(w.chordLastR >= 0 && r > w.chordRho*w.chordLastR)
	var work stepWork
	if refresh {
		ops, err := w.refactor(u)
		if err != nil {
			return stepWork{}, err
		}
		work.ops = ops
		work.refactored = true
		w.chordValid = true
		w.chordAge = 0
	}
	w.chordAge++
	w.chordLastR = r
	return work, w.lu.Solve(delta, f)
}

// Newton solves F(u) = 0 with the (optionally damped) Newton method starting
// from u0. See NewtonOptions for the damping schedule. ctx may be nil; a
// cancelled context aborts between iterations with a wrapped context error.
func Newton(ctx context.Context, sys System, u0 []float64, opts NewtonOptions) (Result, error) {
	n := sys.Dim()
	s := &denseSolver{sys: sys, jac: la.NewDense(n, n)}
	return newtonLoop(ctx, s, u0, opts, make([]float64, n), make([]float64, n), make([]float64, n))
}

// NewtonSparse is Newton for sparse-Jacobian systems; each step solves the
// banded linear system directly, the digital stand-in for the paper's GPU
// sparse QR kernel. For repeated solves of same-shaped systems use a
// SparseSolver workspace, which this function allocates fresh per call.
func NewtonSparse(ctx context.Context, sys SparseSystem, u0 []float64, opts NewtonOptions) (Result, error) {
	return NewSparseSolver().Solve(ctx, sys, u0, opts)
}

//pdevet:noalloc
func newtonLoop(ctx context.Context, s jacSolver, u0 []float64, opts NewtonOptions, u, f, delta []float64) (Result, error) {
	opts.defaults()
	n := s.dim()
	if len(u0) != n {
		return Result{}, errors.New("nonlin: initial guess has wrong dimension")
	}
	var res Result
	h := opts.Damping
	if opts.AutoDamp {
		h = 1.0
	}
	var lastErr error
	for {
		res.Attempts++
		att, err := newtonAttempt(ctx, s, u0, h, opts, u, f, delta)
		res.TotalIters += att.Iterations
		if err == nil && att.Converged {
			res.U = att.U
			res.Converged = true
			res.Residual = att.Residual
			res.Iterations = att.Iterations
			res.LinearSolves = att.LinearSolves
			res.Refactorizations = att.Refactorizations
			res.FactorOps = att.FactorOps
			res.DampingUsed = h
			return res, nil
		}
		lastErr = err
		if !opts.AutoDamp || isCtxErr(err) {
			res.U = att.U
			res.Residual = att.Residual
			res.Iterations = att.Iterations
			res.LinearSolves = att.LinearSolves
			res.Refactorizations = att.Refactorizations
			res.FactorOps = att.FactorOps
			res.DampingUsed = h
			if err == nil {
				err = ErrNoConvergence
			}
			return res, err
		}
		h /= 2
		if h < opts.MinDamping {
			res.U = att.U
			res.Residual = att.Residual
			res.Iterations = att.Iterations
			res.DampingUsed = h * 2
			if lastErr == nil {
				lastErr = ErrNoConvergence
			}
			return res, lastErr
		}
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

type attempt struct {
	U                []float64
	Converged        bool
	Residual         float64
	Iterations       int
	LinearSolves     int
	Refactorizations int
	FactorOps        int64
}

//pdevet:noalloc
func newtonAttempt(ctx context.Context, s jacSolver, u0 []float64, h float64, opts NewtonOptions, u, f, delta []float64) (attempt, error) {
	copy(u, u0)
	att := attempt{U: u}
	if p, ok := s.(attemptPrep); ok {
		p.beginAttempt()
	}
	if err := s.eval(u, f); err != nil {
		return att, err
	}
	r0 := la.Norm2(f)
	att.Residual = r0
	target := opts.Tol
	if opts.RelTol > 0 && opts.RelTol*r0 > target {
		target = opts.RelTol * r0
	}
	if r0 <= target {
		att.Converged = true
		return att, nil
	}
	for att.Iterations = 0; att.Iterations < opts.MaxIter; att.Iterations++ {
		if err := ctxErr(ctx); err != nil {
			return att, err
		}
		work, err := s.solveStep(u, f, delta)
		if err != nil {
			if errors.Is(err, la.ErrSingular) {
				// Failure path: the allocation happens once, on abort.
				return att, &JacobianSingularError{Iteration: att.Iterations, Err: err} //pdevet:allow noalloc error path
			}
			return att, err
		}
		att.LinearSolves++
		if work.refactored {
			att.Refactorizations++
		}
		att.FactorOps += work.ops
		la.Axpy(-h, delta, u)
		if !finite(u) {
			return att, ErrDiverged
		}
		if err := s.eval(u, f); err != nil {
			return att, err
		}
		r := la.Norm2(f)
		att.Residual = r
		if r <= target {
			att.Iterations++
			att.Converged = true
			return att, nil
		}
		if r > opts.DivergeFactor*(r0+1) || math.IsNaN(r) {
			return att, ErrDiverged
		}
	}
	return att, nil
}

func finite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// NewtonArmijo solves F(u) = 0 with a backtracking line search on the merit
// function ½‖F‖². It is the "more sophisticated, more costly" digital
// alternative the paper alludes to in §2.2; used in ablation benchmarks.
func NewtonArmijo(ctx context.Context, sys System, u0 []float64, opts NewtonOptions) (Result, error) {
	opts.defaults()
	n := sys.Dim()
	u := la.Copy(u0)
	f := make([]float64, n)
	delta := make([]float64, n)
	utrial := make([]float64, n)
	jac := la.NewDense(n, n)
	var res Result
	res.U = u
	res.Attempts = 1
	res.DampingUsed = 1
	if err := sys.Eval(u, f); err != nil {
		return res, err
	}
	target := opts.Tol
	if r0 := la.Norm2(f); opts.RelTol > 0 && opts.RelTol*r0 > target {
		target = opts.RelTol * r0
	}
	for res.Iterations = 0; res.Iterations < opts.MaxIter; res.Iterations++ {
		r := la.Norm2(f)
		res.Residual = r
		if r <= target {
			res.Converged = true
			res.TotalIters = res.Iterations
			return res, nil
		}
		if err := ctxErr(ctx); err != nil {
			return res, err
		}
		if err := sys.Jacobian(u, jac); err != nil {
			return res, err
		}
		lu, err := la.FactorLU(jac)
		if err != nil {
			return res, &JacobianSingularError{Iteration: res.Iterations, Err: err}
		}
		if err := lu.Solve(delta, f); err != nil {
			return res, &JacobianSingularError{Iteration: res.Iterations, Err: err}
		}
		res.LinearSolves++
		// Backtrack until sufficient decrease: ‖F(u−λδ)‖ ≤ (1−αλ)‖F(u)‖.
		const alpha = 1e-4
		lambda := 1.0
		for {
			copy(utrial, u)
			la.Axpy(-lambda, delta, utrial)
			if err := sys.Eval(utrial, f); err != nil {
				return res, err
			}
			if finite(f) && la.Norm2(f) <= (1-alpha*lambda)*r {
				break
			}
			lambda /= 2
			if lambda < 1e-12 {
				return res, ErrDiverged
			}
		}
		copy(u, utrial)
	}
	res.TotalIters = res.Iterations
	return res, ErrNoConvergence
}
