package nonlin

import (
	"errors"
	"math"

	"hybridpde/internal/la"
)

// NewtonOptions configures the Newton family of solvers.
type NewtonOptions struct {
	// Tol is the convergence target on ‖F(u)‖₂. Default 1e-10.
	Tol float64
	// RelTol, when positive, relaxes the target to
	// max(Tol, RelTol·‖F(u0)‖): for large or badly scaled systems the
	// absolute residual floor is set by rounding in F itself, and an
	// absolute-only criterion can be unreachable.
	RelTol float64
	// MaxIter bounds iterations of a single damping attempt. Default 100.
	MaxIter int
	// Damping is the fixed step fraction h ∈ (0,1]; 1 is classical Newton.
	// Ignored when AutoDamp is set. Default 1.
	Damping float64
	// AutoDamp enables the paper's baseline schedule (§6.1): start at
	// h = 1.0 and halve the damping parameter after each failed attempt
	// until convergence is possible or MinDamping is reached.
	AutoDamp bool
	// MinDamping is the smallest damping tried by AutoDamp. Default 1/1024.
	MinDamping float64
	// DivergeFactor aborts an attempt when the residual exceeds this
	// multiple of its starting value. Default 1e6.
	DivergeFactor float64
}

func (o *NewtonOptions) defaults() {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 1
	}
	if o.MinDamping <= 0 {
		o.MinDamping = 1.0 / 1024
	}
	if o.DivergeFactor <= 0 {
		o.DivergeFactor = 1e6
	}
}

// Result describes a Newton solve. The split between total and counted work
// mirrors the paper's measurement protocol: the baseline is charged only for
// the final, successful damping attempt ("we give the digital solver the
// advantage counting only the time spent using the correct damping
// parameter"), while TotalIterations includes the trial-and-error attempts.
type Result struct {
	U            []float64
	Converged    bool
	Residual     float64 // final ‖F(u)‖₂
	Iterations   int     // iterations of the successful (or last) attempt
	TotalIters   int     // iterations across all damping attempts
	LinearSolves int     // Jacobian factorizations+solves, successful attempt
	FactorOps    int64   // multiply-adds spent factoring (sparse path)
	DampingUsed  float64 // damping parameter of the successful attempt
	Attempts     int     // damping attempts tried (AutoDamp)
}

// jacSolver abstracts the dense and sparse linear-solve kernels so both
// Newton variants share one iteration loop.
type jacSolver interface {
	dim() int
	eval(u, f []float64) error
	// solveStep computes delta = J(u)⁻¹ f, returning factorization work.
	solveStep(u, f, delta []float64) (int64, error)
}

type denseSolver struct {
	sys System
	jac *la.Dense
}

func (s *denseSolver) dim() int                  { return s.sys.Dim() }
func (s *denseSolver) eval(u, f []float64) error { return s.sys.Eval(u, f) }
func (s *denseSolver) solveStep(u, f, delta []float64) (int64, error) {
	if err := s.sys.Jacobian(u, s.jac); err != nil {
		return 0, err
	}
	lu, err := la.FactorLU(s.jac)
	if err != nil {
		return 0, err
	}
	n := int64(s.sys.Dim())
	return n * n * n / 3, lu.Solve(delta, f)
}

type sparseSolver struct {
	sys SparseSystem
}

func (s *sparseSolver) dim() int                  { return s.sys.Dim() }
func (s *sparseSolver) eval(u, f []float64) error { return s.sys.Eval(u, f) }
func (s *sparseSolver) solveStep(u, f, delta []float64) (int64, error) {
	j, err := s.sys.JacobianCSR(u)
	if err != nil {
		return 0, err
	}
	lu, err := la.FactorBandLU(j)
	if err != nil {
		return 0, err
	}
	return lu.FactorOps, lu.Solve(delta, f)
}

// Newton solves F(u) = 0 with the (optionally damped) Newton method starting
// from u0. See NewtonOptions for the damping schedule.
func Newton(sys System, u0 []float64, opts NewtonOptions) (Result, error) {
	return newtonLoop(&denseSolver{sys: sys, jac: la.NewDense(sys.Dim(), sys.Dim())}, u0, opts)
}

// NewtonSparse is Newton for sparse-Jacobian systems; each step solves the
// banded linear system directly, the digital stand-in for the paper's GPU
// sparse QR kernel.
func NewtonSparse(sys SparseSystem, u0 []float64, opts NewtonOptions) (Result, error) {
	return newtonLoop(&sparseSolver{sys: sys}, u0, opts)
}

func newtonLoop(s jacSolver, u0 []float64, opts NewtonOptions) (Result, error) {
	opts.defaults()
	n := s.dim()
	if len(u0) != n {
		return Result{}, errors.New("nonlin: initial guess has wrong dimension")
	}
	var res Result
	h := opts.Damping
	if opts.AutoDamp {
		h = 1.0
	}
	var lastErr error
	for {
		res.Attempts++
		att, err := newtonAttempt(s, u0, h, opts)
		res.TotalIters += att.Iterations
		if err == nil && att.Converged {
			res.U = att.U
			res.Converged = true
			res.Residual = att.Residual
			res.Iterations = att.Iterations
			res.LinearSolves = att.LinearSolves
			res.FactorOps = att.FactorOps
			res.DampingUsed = h
			return res, nil
		}
		lastErr = err
		if !opts.AutoDamp {
			res.U = att.U
			res.Residual = att.Residual
			res.Iterations = att.Iterations
			res.LinearSolves = att.LinearSolves
			res.FactorOps = att.FactorOps
			res.DampingUsed = h
			if err == nil {
				err = ErrNoConvergence
			}
			return res, err
		}
		h /= 2
		if h < opts.MinDamping {
			res.U = att.U
			res.Residual = att.Residual
			res.Iterations = att.Iterations
			res.DampingUsed = h * 2
			if lastErr == nil {
				lastErr = ErrNoConvergence
			}
			return res, lastErr
		}
	}
}

type attempt struct {
	U            []float64
	Converged    bool
	Residual     float64
	Iterations   int
	LinearSolves int
	FactorOps    int64
}

func newtonAttempt(s jacSolver, u0 []float64, h float64, opts NewtonOptions) (attempt, error) {
	n := s.dim()
	u := la.Copy(u0)
	f := make([]float64, n)
	delta := make([]float64, n)
	att := attempt{U: u}
	if err := s.eval(u, f); err != nil {
		return att, err
	}
	r0 := la.Norm2(f)
	att.Residual = r0
	target := opts.Tol
	if opts.RelTol > 0 && opts.RelTol*r0 > target {
		target = opts.RelTol * r0
	}
	if r0 <= target {
		att.Converged = true
		return att, nil
	}
	for att.Iterations = 0; att.Iterations < opts.MaxIter; att.Iterations++ {
		ops, err := s.solveStep(u, f, delta)
		if err != nil {
			if errors.Is(err, la.ErrSingular) {
				return att, &JacobianSingularError{Iteration: att.Iterations, Err: err}
			}
			return att, err
		}
		att.LinearSolves++
		att.FactorOps += ops
		la.Axpy(-h, delta, u)
		if !finite(u) {
			return att, ErrDiverged
		}
		if err := s.eval(u, f); err != nil {
			return att, err
		}
		r := la.Norm2(f)
		att.Residual = r
		if r <= target {
			att.Iterations++
			att.Converged = true
			return att, nil
		}
		if r > opts.DivergeFactor*(r0+1) || math.IsNaN(r) {
			return att, ErrDiverged
		}
	}
	return att, nil
}

func finite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// NewtonArmijo solves F(u) = 0 with a backtracking line search on the merit
// function ½‖F‖². It is the "more sophisticated, more costly" digital
// alternative the paper alludes to in §2.2; used in ablation benchmarks.
func NewtonArmijo(sys System, u0 []float64, opts NewtonOptions) (Result, error) {
	opts.defaults()
	n := sys.Dim()
	u := la.Copy(u0)
	f := make([]float64, n)
	delta := make([]float64, n)
	utrial := make([]float64, n)
	jac := la.NewDense(n, n)
	var res Result
	res.U = u
	res.Attempts = 1
	res.DampingUsed = 1
	if err := sys.Eval(u, f); err != nil {
		return res, err
	}
	target := opts.Tol
	if r0 := la.Norm2(f); opts.RelTol > 0 && opts.RelTol*r0 > target {
		target = opts.RelTol * r0
	}
	for res.Iterations = 0; res.Iterations < opts.MaxIter; res.Iterations++ {
		r := la.Norm2(f)
		res.Residual = r
		if r <= target {
			res.Converged = true
			res.TotalIters = res.Iterations
			return res, nil
		}
		if err := sys.Jacobian(u, jac); err != nil {
			return res, err
		}
		lu, err := la.FactorLU(jac)
		if err != nil {
			return res, &JacobianSingularError{Iteration: res.Iterations, Err: err}
		}
		if err := lu.Solve(delta, f); err != nil {
			return res, &JacobianSingularError{Iteration: res.Iterations, Err: err}
		}
		res.LinearSolves++
		// Backtrack until sufficient decrease: ‖F(u−λδ)‖ ≤ (1−αλ)‖F(u)‖.
		const alpha = 1e-4
		lambda := 1.0
		for {
			copy(utrial, u)
			la.Axpy(-lambda, delta, utrial)
			if err := sys.Eval(utrial, f); err != nil {
				return res, err
			}
			if finite(f) && la.Norm2(f) <= (1-alpha*lambda)*r {
				break
			}
			lambda /= 2
			if lambda < 1e-12 {
				return res, ErrDiverged
			}
		}
		copy(u, utrial)
	}
	res.TotalIters = res.Iterations
	return res, ErrNoConvergence
}
