package nonlin

import (
	"errors"
	"math"

	"hybridpde/internal/la"
)

// TrustRegionOptions configures the dogleg trust-region solver.
type TrustRegionOptions struct {
	// Tol is the convergence target on ‖F(u)‖₂. Default 1e-10.
	Tol float64
	// MaxIter bounds iterations. Default 200.
	MaxIter int
	// InitialRadius of the trust region. Default 1.
	InitialRadius float64
	// MaxRadius caps growth. Default 100.
	MaxRadius float64
}

func (o *TrustRegionOptions) defaults() {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.InitialRadius <= 0 {
		o.InitialRadius = 1
	}
	if o.MaxRadius <= 0 {
		o.MaxRadius = 100
	}
}

// TrustRegion solves F(u) = 0 by minimising the merit function m(u) =
// ½‖F(u)‖² with Powell's dogleg step: it blends the steepest-descent
// (Cauchy) direction with the Newton step inside an adaptive trust radius.
// It is the modern globally-convergent digital baseline — stronger than the
// paper's damped-Newton schedule on badly scaled problems — and serves as
// an additional ablation point (the paper notes "improved algorithms
// quickly become complex and costly", §2.2; this is that algorithm).
func TrustRegion(sys System, u0 []float64, opts TrustRegionOptions) (Result, error) {
	opts.defaults()
	n := sys.Dim()
	if len(u0) != n {
		return Result{}, errors.New("nonlin: initial guess has wrong dimension")
	}
	u := la.Copy(u0)
	f := make([]float64, n)
	fTrial := make([]float64, n)
	uTrial := make([]float64, n)
	grad := make([]float64, n)
	newton := make([]float64, n)
	step := make([]float64, n)
	jac := la.NewDense(n, n)
	var res Result
	res.U = u
	res.Attempts = 1
	res.DampingUsed = 1

	if err := sys.Eval(u, f); err != nil {
		return res, err
	}
	radius := opts.InitialRadius
	for res.Iterations = 0; res.Iterations < opts.MaxIter; res.Iterations++ {
		r := la.Norm2(f)
		res.Residual = r
		if r <= opts.Tol {
			res.Converged = true
			res.TotalIters = res.Iterations
			return res, nil
		}
		if err := sys.Jacobian(u, jac); err != nil {
			return res, err
		}
		// grad = Jᵀ·F (gradient of the merit function).
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += jac.At(i, j) * f[i]
			}
			grad[j] = s
		}
		gradNorm := la.Norm2(grad)
		if gradNorm < 1e-300 {
			// Stationary point of the merit function that is not a root.
			return res, ErrDiverged
		}
		// Newton step where available.
		haveNewton := false
		if lu, err := la.FactorLU(jac); err == nil {
			if lu.Solve(newton, f) == nil {
				for i := range newton {
					newton[i] = -newton[i]
				}
				haveNewton = true
				res.LinearSolves++
			}
		}
		// Cauchy point: α = ‖g‖² / ‖J·g‖².
		jg := make([]float64, n)
		jac.MulVec(jg, grad)
		jgNorm := la.Norm2(jg)
		alpha := 0.0
		if jgNorm > 0 {
			alpha = (gradNorm * gradNorm) / (jgNorm * jgNorm)
		}

		// Dogleg step selection within the radius.
		doglegStep(step, grad, alpha, newton, haveNewton, radius)

		// Evaluate the trial point and the reduction ratio.
		copy(uTrial, u)
		la.Axpy(1, step, uTrial)
		if err := sys.Eval(uTrial, fTrial); err != nil {
			return res, err
		}
		actual := 0.5*r*r - 0.5*la.Norm2(fTrial)*la.Norm2(fTrial)
		// Predicted reduction from the linear model: ½‖F‖² − ½‖F + J·s‖².
		js := make([]float64, n)
		jac.MulVec(js, step)
		predTail := 0.0
		for i := range js {
			t := f[i] + js[i]
			predTail += t * t
		}
		predicted := 0.5*r*r - 0.5*predTail
		rho := -1.0
		if predicted > 0 {
			rho = actual / predicted
		}
		switch {
		case rho < 0.25:
			radius = math.Max(0.25*la.Norm2(step), 1e-12)
		case rho > 0.75 && math.Abs(la.Norm2(step)-radius) < 1e-12*radius:
			radius = math.Min(2*radius, opts.MaxRadius)
		}
		if rho > 1e-4 && finite(fTrial) {
			copy(u, uTrial)
			copy(f, fTrial)
		}
		if radius < 1e-14 {
			return res, ErrNoConvergence
		}
	}
	res.TotalIters = res.Iterations
	return res, ErrNoConvergence
}

// doglegStep writes the dogleg step into dst: the Newton step if inside the
// radius, otherwise the blend of the Cauchy point and the Newton direction
// that exits the trust region boundary, or the clipped steepest-descent
// step when no Newton step exists.
func doglegStep(dst, grad []float64, alpha float64, newton []float64, haveNewton bool, radius float64) {
	n := len(dst)
	// Cauchy (steepest descent) point: −α·g.
	cauchy := make([]float64, n)
	for i := range cauchy {
		cauchy[i] = -alpha * grad[i]
	}
	if haveNewton && la.Norm2(newton) <= radius {
		copy(dst, newton)
		return
	}
	cNorm := la.Norm2(cauchy)
	if !haveNewton || cNorm >= radius {
		// Clip steepest descent to the boundary.
		scale := radius / math.Max(cNorm, 1e-300)
		if scale > 1 {
			scale = 1
		}
		for i := range dst {
			dst[i] = cauchy[i] * scale
		}
		return
	}
	// Dogleg segment: cauchy + t·(newton − cauchy) hitting the boundary.
	d := make([]float64, n)
	la.Sub(d, newton, cauchy)
	a := la.Dot(d, d)
	b := 2 * la.Dot(cauchy, d)
	c := cNorm*cNorm - radius*radius
	t := 1.0
	if a > 0 {
		disc := b*b - 4*a*c
		if disc > 0 {
			t = (-b + math.Sqrt(disc)) / (2 * a)
		}
	}
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	for i := range dst {
		dst[i] = cauchy[i] + t*d[i]
	}
}
