// External test package: the chord-mode fixtures are real transient PDE
// systems from internal/pde, which itself imports nonlin.
package nonlin_test

import (
	"math/rand"
	"testing"

	"hybridpde/internal/nonlin"
	"hybridpde/internal/pde"
)

// transientBurgers builds a 2-D Crank–Nicolson Burgers system with random
// fields — the implicit time-stepping fixture chord mode exists for.
func transientBurgers(t testing.TB, n int, seed int64) *pde.Burgers {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b, err := pde.RandomBurgers(n, 0.8, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// stepFrame records one time step's solve for bit-level comparison.
type stepFrame struct {
	iters, linSolves, refactors int
	residual                    float64
	u                           []float64
}

// marchChord drives steps implicit time steps of b on solver with the given
// options, advancing the previous time level after each converged solve.
func marchChord(t testing.TB, b *pde.Burgers, solver *nonlin.SparseSolver, opts nonlin.NewtonOptions, steps int) []stepFrame {
	t.Helper()
	frames := make([]stepFrame, 0, steps)
	u0 := make([]float64, b.Dim())
	for s := 0; s < steps; s++ {
		b.InitialGuessInto(u0)
		res, err := solver.Solve(nil, b, u0, opts)
		if err != nil {
			t.Fatalf("step %d: %v", s+1, err)
		}
		if !res.Converged {
			t.Fatalf("step %d did not converge (residual %g)", s+1, res.Residual)
		}
		frames = append(frames, stepFrame{
			iters:     res.Iterations,
			linSolves: res.LinearSolves,
			refactors: res.Refactorizations,
			residual:  res.Residual,
			u:         append([]float64(nil), res.U...),
		})
		if err := b.Advance(res.U); err != nil {
			t.Fatalf("advance %d: %v", s+1, err)
		}
	}
	return frames
}

// TestChordReusesFactorizationsAcrossSteps is the tentpole acceptance test
// at the solver layer: along a smooth trajectory chord mode must carry one
// factorization across Newton iterations and across time steps, so the
// trajectory-wide refactorization count stays far below the linear-solve
// count (classical Newton pins them equal).
func TestChordReusesFactorizationsAcrossSteps(t *testing.T) {
	const steps = 6
	opts := nonlin.NewtonOptions{Tol: 1e-10, MaxIter: 60, Chord: true}

	b := transientBurgers(t, 6, 17)
	solver := nonlin.NewSparseSolver()
	defer solver.Close()
	frames := marchChord(t, b, solver, opts, steps)

	var linSolves, refactors int
	for _, f := range frames {
		linSolves += f.linSolves
		refactors += f.refactors
	}
	if refactors == 0 {
		t.Fatal("chord trajectory performed no refactorization at all — the first step must factor once")
	}
	if refactors >= linSolves {
		t.Fatalf("chord mode reused nothing: %d refactorizations for %d linear solves", refactors, linSolves)
	}
	// Steps after the first should mostly ride the first step's
	// factorization: consecutive Crank–Nicolson steps differ by O(dt).
	if frames[0].refactors == 0 {
		t.Fatal("first step must refactor (no factorization exists yet)")
	}
	var laterRefactors int
	for _, f := range frames[1:] {
		laterRefactors += f.refactors
	}
	if laterRefactors > linSolves/2 {
		t.Fatalf("cross-step reuse too weak: %d refactorizations after step 1 for %d linear solves", laterRefactors, linSolves)
	}
}

// TestClassicalNewtonRefactorsEverySolve pins the accounting identity the
// reuse win is measured against: without chord mode every linear solve is
// preceded by a fresh factorization.
func TestClassicalNewtonRefactorsEverySolve(t *testing.T) {
	b := transientBurgers(t, 6, 17)
	solver := nonlin.NewSparseSolver()
	defer solver.Close()
	frames := marchChord(t, b, solver, nonlin.NewtonOptions{Tol: 1e-10, MaxIter: 60}, 4)
	for i, f := range frames {
		if f.refactors != f.linSolves {
			t.Fatalf("step %d: classical Newton must refactor per solve: %d refactorizations, %d linear solves",
				i+1, f.refactors, f.linSolves)
		}
	}
}

// TestChordProcsBitIdentical extends the cross-procs determinism contract
// to chord mode: the refresh gate reads only residual values, which are
// bit-identical at every worker count, so whole chord trajectories — gate
// decisions included — must match across procs settings.
func TestChordProcsBitIdentical(t *testing.T) {
	const steps = 5
	opts := nonlin.NewtonOptions{Tol: 1e-10, MaxIter: 60, Chord: true}

	ref := marchChord(t, transientBurgers(t, 6, 23), nonlin.NewSparseSolver(), opts, steps)

	for _, procs := range []int{2, 8} {
		o := opts
		o.Procs = procs
		solver := nonlin.NewSparseSolver()
		got := marchChord(t, transientBurgers(t, 6, 23), solver, o, steps)
		for s := range ref {
			if got[s].iters != ref[s].iters || got[s].linSolves != ref[s].linSolves ||
				got[s].refactors != ref[s].refactors {
				t.Fatalf("procs=%d step %d: gate decisions diverged: got %+v want %+v",
					procs, s+1, got[s], ref[s])
			}
			if got[s].residual != ref[s].residual { //pdevet:allow floateq determinism test wants bit-identity
				t.Fatalf("procs=%d step %d: residual %x, want %x", procs, s+1, got[s].residual, ref[s].residual)
			}
			for i := range ref[s].u {
				if got[s].u[i] != ref[s].u[i] { //pdevet:allow floateq determinism test wants bit-identity
					t.Fatalf("procs=%d step %d: U[%d] = %x, want %x", procs, s+1, i, got[s].u[i], ref[s].u[i])
				}
			}
		}
		solver.Close()
	}
}

// TestChordStaleFactorizationTriggersRefresh forces the refresh gate: after
// the fields jump (no O(dt) drift — a different problem in the same
// stencil), the held factorization stops contracting the residual and the
// gate must refresh it rather than iterate uselessly to MaxIter.
func TestChordStaleFactorizationTriggersRefresh(t *testing.T) {
	b := transientBurgers(t, 6, 31)
	solver := nonlin.NewSparseSolver()
	defer solver.Close()
	opts := nonlin.NewtonOptions{Tol: 1e-10, MaxIter: 60, Chord: true}

	marchChord(t, b, solver, opts, 1)

	// Jump the problem out from under the held factorization. The fields
	// grow 10×, so the frozen Jacobian's convection terms are badly wrong
	// and the chord iteration stops contracting at ρ = 0.5.
	rng := rand.New(rand.NewSource(977))
	for _, field := range [][]float64{b.UPrev, b.VPrev, b.RHS0, b.RHS1} {
		for i := range field {
			field[i] = 5 * (2*rng.Float64() - 1)
		}
	}
	u0 := make([]float64, b.Dim())
	b.InitialGuessInto(u0)
	res, err := solver.Solve(nil, b, u0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("post-jump solve did not converge (residual %g)", res.Residual)
	}
	if res.Refactorizations == 0 {
		t.Fatal("stale factorization survived a field jump: the contraction gate never fired")
	}
}

// TestChordMaxAgeForcesRefresh pins the hard age bound: with ChordMaxAge=1
// every linear solve exceeds the age limit, so chord mode degenerates to
// classical Newton's refactor-per-solve accounting.
func TestChordMaxAgeForcesRefresh(t *testing.T) {
	b := transientBurgers(t, 6, 41)
	solver := nonlin.NewSparseSolver()
	defer solver.Close()
	opts := nonlin.NewtonOptions{Tol: 1e-10, MaxIter: 60, Chord: true, ChordMaxAge: 1}
	frames := marchChord(t, b, solver, opts, 3)
	for i, f := range frames {
		if f.refactors != f.linSolves {
			t.Fatalf("step %d: ChordMaxAge=1 must refactor per solve: %d refactorizations, %d linear solves",
				i+1, f.refactors, f.linSolves)
		}
	}
}

// TestResetReuseRestoresColdStartBits is the warm-worker determinism
// contract: re-running a trajectory on a solver that still holds the
// previous run's factorization must, after ResetReuse, reproduce the cold
// run bit for bit — gate decisions, counts and solutions.
func TestResetReuseRestoresColdStartBits(t *testing.T) {
	const steps = 4
	opts := nonlin.NewtonOptions{Tol: 1e-10, MaxIter: 60, Chord: true}

	fill := func(b *pde.Burgers) {
		rng := rand.New(rand.NewSource(53))
		for _, field := range [][]float64{b.UPrev, b.VPrev, b.RHS0, b.RHS1} {
			for i := range field {
				field[i] = 0.5 * (2*rng.Float64() - 1)
			}
		}
	}
	b, err := pde.NewBurgers(6, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	solver := nonlin.NewSparseSolver()
	defer solver.Close()

	fill(b)
	cold := marchChord(t, b, solver, opts, steps)

	// Same system pointer, same solver — the worker-pool scenario where a
	// warm factorization from the previous request is still live.
	fill(b)
	solver.ResetReuse()
	warm := marchChord(t, b, solver, opts, steps)

	for s := range cold {
		if warm[s].iters != cold[s].iters || warm[s].linSolves != cold[s].linSolves ||
			warm[s].refactors != cold[s].refactors {
			t.Fatalf("step %d: warm rerun diverged from cold run: got %+v want %+v", s+1, warm[s], cold[s])
		}
		if warm[s].residual != cold[s].residual { //pdevet:allow floateq determinism test wants bit-identity
			t.Fatalf("step %d: residual %x, want %x", s+1, warm[s].residual, cold[s].residual)
		}
		for i := range cold[s].u {
			if warm[s].u[i] != cold[s].u[i] { //pdevet:allow floateq determinism test wants bit-identity
				t.Fatalf("step %d: U[%d] = %x, want %x", s+1, i, warm[s].u[i], cold[s].u[i])
			}
		}
	}
}
