package nonlin

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hybridpde/internal/la"
)

func TestNewtonScalarCubic(t *testing.T) {
	sys := FuncSystem{
		N: 1,
		F: func(u, f []float64) error { f[0] = u[0]*u[0]*u[0] - 1; return nil },
		J: func(u []float64, jac *la.Dense) error { jac.Set(0, 0, 3*u[0]*u[0]); return nil },
	}
	res, err := Newton(nil, sys, []float64{2}, NewtonOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.U[0]-1) > 1e-10 {
		t.Fatalf("root = %g, want 1", res.U[0])
	}
	if res.Iterations > 12 {
		t.Fatalf("quadratic convergence should need few iterations, got %d", res.Iterations)
	}
}

func TestNewtonComplexCubicAllRoots(t *testing.T) {
	sys := complexCubic()
	starts := [][]float64{{2, 0.1}, {-1, 1}, {-1, -1}}
	wantRoot := []int{0, 1, 2}
	for k, s := range starts {
		res, err := Newton(nil, sys, s, NewtonOptions{Tol: 1e-12})
		if err != nil {
			t.Fatalf("start %v: %v", s, err)
		}
		if got := nearestCubicRoot(res.U); got != wantRoot[k] {
			t.Fatalf("start %v converged to root %d, want %d (u=%v)", s, got, wantRoot[k], res.U)
		}
		if res.Residual > 1e-10 {
			t.Fatalf("residual %g too large", res.Residual)
		}
	}
}

func TestNewtonQuadraticConvergenceRate(t *testing.T) {
	// Track the residual sequence; asymptotically r_{k+1} ≈ C·r_k².
	sys := complexCubic()
	u := []float64{1.3, 0.4}
	f := make([]float64, 2)
	jac := la.NewDense(2, 2)
	var resids []float64
	for i := 0; i < 8; i++ {
		if err := sys.Eval(u, f); err != nil {
			t.Fatal(err)
		}
		resids = append(resids, la.Norm2(f))
		if err := sys.Jacobian(u, jac); err != nil {
			t.Fatal(err)
		}
		lu, err := la.FactorLU(jac)
		if err != nil {
			t.Fatal(err)
		}
		delta := make([]float64, 2)
		if err := lu.Solve(delta, f); err != nil {
			t.Fatal(err)
		}
		la.Axpy(-1, delta, u)
	}
	// Find two consecutive small residuals and verify superlinear drop.
	for i := 1; i < len(resids); i++ {
		if resids[i-1] < 1e-2 && resids[i-1] > 1e-14 {
			if resids[i] > resids[i-1]*resids[i-1]*100 {
				t.Fatalf("not quadratic: r=%v", resids)
			}
			return
		}
	}
	t.Fatalf("never entered quadratic regime: %v", resids)
}

func TestClassicalNewtonDivergesOnAtan(t *testing.T) {
	_, err := Newton(nil, atanScalar(), []float64{3}, NewtonOptions{Tol: 1e-12, MaxIter: 50})
	if err == nil {
		t.Fatal("classical Newton should fail from u0=3 on atan")
	}
}

func TestAutoDampedNewtonConvergesOnAtan(t *testing.T) {
	res, err := Newton(nil, atanScalar(), []float64{3}, NewtonOptions{Tol: 1e-12, MaxIter: 300, AutoDamp: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.U[0]) > 1e-10 {
		t.Fatalf("root = %g, want 0", res.U[0])
	}
	if res.DampingUsed >= 1 {
		t.Fatalf("damping schedule should have reduced h, used %g", res.DampingUsed)
	}
	if res.Attempts < 2 {
		t.Fatalf("expected multiple damping attempts, got %d", res.Attempts)
	}
	if res.TotalIters <= res.Iterations {
		t.Fatalf("total iterations (%d) should exceed counted iterations (%d)", res.TotalIters, res.Iterations)
	}
}

func TestNewtonArmijoConvergesOnAtan(t *testing.T) {
	res, err := NewtonArmijo(nil, atanScalar(), []float64{3}, NewtonOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.U[0]) > 1e-10 {
		t.Fatalf("root = %g, want 0", res.U[0])
	}
}

func TestNewtonSingularJacobianReported(t *testing.T) {
	// A rank-deficient Jacobian everywhere, with F ≠ 0 at the start.
	sys := FuncSystem{
		N: 2,
		F: func(u, f []float64) error {
			f[0] = u[0] + u[1] - 1
			f[1] = 2*u[0] + 2*u[1] - 5
			return nil
		},
		J: func(u []float64, jac *la.Dense) error {
			jac.Set(0, 0, 1)
			jac.Set(0, 1, 1)
			jac.Set(1, 0, 2)
			jac.Set(1, 1, 2)
			return nil
		},
	}
	_, err := Newton(nil, sys, []float64{0, 0}, NewtonOptions{Tol: 1e-12})
	var jse *JacobianSingularError
	if !errors.As(err, &jse) {
		t.Fatalf("expected JacobianSingularError, got %v", err)
	}
	if !errors.Is(err, la.ErrSingular) {
		t.Fatal("JacobianSingularError should unwrap to la.ErrSingular")
	}
}

func TestFiniteDifferenceJacobianMatchesAnalytic(t *testing.T) {
	sys := coupledQuadratic(1, -1)
	u := []float64{0.7, -0.3}
	analytic := la.NewDense(2, 2)
	if err := sys.Jacobian(u, analytic); err != nil {
		t.Fatal(err)
	}
	fd := la.NewDense(2, 2)
	noJ := FuncSystem{N: 2, F: sys.(FuncSystem).F}
	if err := noJ.Jacobian(u, fd); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(analytic.At(i, j)-fd.At(i, j)) > 1e-5 {
				t.Fatalf("FD Jacobian mismatch at (%d,%d): %g vs %g", i, j, fd.At(i, j), analytic.At(i, j))
			}
		}
	}
}

// sparseQuadratic is a SparseSystem: F_i = u_i² + 2u_i − c_i − coupling.
type sparseQuadratic struct {
	n   int
	rhs []float64
}

func (s *sparseQuadratic) Dim() int { return s.n }

func (s *sparseQuadratic) Eval(u, f []float64) error {
	for i := 0; i < s.n; i++ {
		f[i] = u[i]*u[i] + 2*u[i] - s.rhs[i]
		if i > 0 {
			f[i] -= 0.3 * u[i-1]
		}
		if i < s.n-1 {
			f[i] += 0.2 * u[i+1]
		}
	}
	return nil
}

func (s *sparseQuadratic) JacobianCSR(u []float64) (*la.CSR, error) {
	b := la.NewCOO(s.n, s.n)
	for i := 0; i < s.n; i++ {
		b.Append(i, i, 2*u[i]+2)
		if i > 0 {
			b.Append(i, i-1, -0.3)
		}
		if i < s.n-1 {
			b.Append(i, i+1, 0.2)
		}
	}
	return b.ToCSR(), nil
}

func TestNewtonSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 24
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.Float64()
	}
	sys := &sparseQuadratic{n: n, rhs: rhs}
	u0 := make([]float64, n)
	resS, err := NewtonSparse(nil, sys, u0, NewtonOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	resD, err := Newton(nil, DenseAdapter{S: sys}, u0, NewtonOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(resS.U[i]-resD.U[i]) > 1e-9 {
			t.Fatalf("sparse/dense mismatch at %d: %g vs %g", i, resS.U[i], resD.U[i])
		}
	}
	if resS.FactorOps <= 0 {
		t.Fatal("sparse path should report factorization work")
	}
}

func TestBroydenConverges(t *testing.T) {
	sys := coupledQuadratic(1, -1)
	res, err := Broyden(sys, []float64{0.5, 0.5}, NewtonOptions{Tol: 1e-10, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	f := make([]float64, 2)
	if err := sys.Eval(res.U, f); err != nil {
		t.Fatal(err)
	}
	if la.Norm2(f) > 1e-9 {
		t.Fatalf("Broyden residual %g", la.Norm2(f))
	}
	if res.LinearSolves != 1 {
		t.Fatalf("Broyden should factor exactly once, did %d", res.LinearSolves)
	}
}

func TestNewtonPropertyRandomQuadratics(t *testing.T) {
	// For diagonally dominant linear parts with a small quadratic
	// perturbation, Newton from zero must converge and the returned point
	// must actually be a root.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		lin := la.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				lin.Set(i, j, 0.3*rng.NormFloat64())
			}
			lin.Add(i, i, 4)
		}
		q := make([]float64, n)
		c := make([]float64, n)
		for i := range q {
			q[i] = 0.2 * rng.NormFloat64()
			c[i] = rng.NormFloat64()
		}
		sys := FuncSystem{
			N: n,
			F: func(u, f []float64) error {
				lin.MulVec(f, u)
				for i := range f {
					f[i] += q[i]*u[i]*u[i] - c[i]
				}
				return nil
			},
			J: func(u []float64, jac *la.Dense) error {
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						jac.Set(i, j, lin.At(i, j))
					}
					jac.Add(i, i, 2*q[i]*u[i])
				}
				return nil
			},
		}
		res, err := Newton(nil, sys, make([]float64, n), NewtonOptions{Tol: 1e-11})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		f := make([]float64, n)
		if err := sys.Eval(res.U, f); err != nil {
			t.Fatal(err)
		}
		if la.Norm2(f) > 1e-9 {
			t.Fatalf("trial %d: returned non-root, ‖F‖=%g", trial, la.Norm2(f))
		}
	}
}

func TestNonlinearGaussSeidelConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	n := 16
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.Float64()
	}
	sys := &sparseQuadratic{n: n, rhs: rhs}
	for _, rb := range []bool{false, true} {
		res, err := NonlinearGaussSeidel(sys, make([]float64, n), GaussSeidelOptions{Tol: 1e-9, RedBlack: rb})
		if err != nil {
			t.Fatalf("redblack=%v: %v", rb, err)
		}
		if !res.Converged {
			t.Fatalf("redblack=%v: did not converge", rb)
		}
		// Must agree with the Newton solution of the same system.
		nres, err := NewtonSparse(nil, sys, make([]float64, n), NewtonOptions{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.U {
			if math.Abs(res.U[i]-nres.U[i]) > 1e-6 {
				t.Fatalf("redblack=%v: GS/Newton mismatch at %d: %g vs %g", rb, i, res.U[i], nres.U[i])
			}
		}
		if res.Sweeps <= 0 {
			t.Fatal("sweep count not recorded")
		}
	}
}

func TestNonlinearGaussSeidelDimensionMismatch(t *testing.T) {
	sys := &sparseQuadratic{n: 4, rhs: make([]float64, 4)}
	if _, err := NonlinearGaussSeidel(sys, make([]float64, 3), GaussSeidelOptions{}); err == nil {
		t.Fatal("expected dimension error")
	}
}
