package nonlin

import (
	"math"

	"hybridpde/internal/la"
)

// complexCubic is f(z) = z³ − 1 on the complex plane written as a 2-D real
// system in (re, im) — the tutorial problem of §2 (Equation 1, Figure 2).
func complexCubic() System {
	return FuncSystem{
		N: 2,
		F: func(u, f []float64) error {
			re, im := u[0], u[1]
			// z³ = (re + i·im)³
			f[0] = re*re*re - 3*re*im*im - 1
			f[1] = 3*re*re*im - im*im*im
			return nil
		},
		J: func(u []float64, jac *la.Dense) error {
			re, im := u[0], u[1]
			// d(z³)/dz = 3z²; as a real 2×2 block [[a,−b],[b,a]] with
			// a = 3(re²−im²), b = 6·re·im (Cauchy–Riemann structure).
			a := 3 * (re*re - im*im)
			b := 6 * re * im
			jac.Set(0, 0, a)
			jac.Set(0, 1, -b)
			jac.Set(1, 0, b)
			jac.Set(1, 1, a)
			return nil
		},
	}
}

// cubicRoots lists the three roots of z³ = 1.
var cubicRoots = [3][2]float64{
	{1, 0},
	{-0.5, math.Sqrt(3) / 2},
	{-0.5, -math.Sqrt(3) / 2},
}

func nearestCubicRoot(u []float64) int {
	best, bestD := 0, math.Inf(1)
	for k, r := range cubicRoots {
		d := math.Hypot(u[0]-r[0], u[1]-r[1])
		if d < bestD {
			best, bestD = k, d
		}
	}
	return best
}

// coupledQuadratic is Equation 2 of the paper:
//
//	ρ0² + ρ0 + ρ1 = rhs0
//	ρ1² + ρ1 − ρ0 = rhs1
//
// the system "arising from a one-dimensional semilinear PDE on two grid
// points" used throughout §3.
func coupledQuadratic(rhs0, rhs1 float64) System {
	return FuncSystem{
		N: 2,
		F: func(u, f []float64) error {
			f[0] = u[0]*u[0] + u[0] + u[1] - rhs0
			f[1] = u[1]*u[1] + u[1] - u[0] - rhs1
			return nil
		},
		J: func(u []float64, jac *la.Dense) error {
			jac.Set(0, 0, 2*u[0]+1)
			jac.Set(0, 1, 1)
			jac.Set(1, 0, -1)
			jac.Set(1, 1, 2*u[1]+1)
			return nil
		},
	}
}

// atanScalar is f(u) = atan(u), the classic example where undamped Newton
// overshoots and diverges for |u0| ≳ 1.392.
func atanScalar() System {
	return FuncSystem{
		N: 1,
		F: func(u, f []float64) error {
			f[0] = math.Atan(u[0])
			return nil
		},
		J: func(u []float64, jac *la.Dense) error {
			jac.Set(0, 0, 1/(1+u[0]*u[0]))
			return nil
		},
	}
}
