// External test package: the determinism fixture is a real PDE system from
// internal/pde, which itself imports nonlin.
package nonlin_test

import (
	"math/rand"
	"testing"

	"hybridpde/internal/nonlin"
	"hybridpde/internal/pde"
)

// plantedSteady builds the repeated-Newton benchmark fixture: a steady 2-D
// Burgers system with a planted root and a start perturbed off it.
func plantedSteady(t testing.TB, n int) (*pde.BurgersSteady, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(80))
	burgers, err := pde.NewBurgers(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	steady := pde.NewBurgersSteady(burgers)
	root := make([]float64, steady.Dim())
	for i := range root {
		root[i] = 2*rng.Float64() - 1
	}
	if err := steady.SetRHSForRoot(root); err != nil {
		t.Fatal(err)
	}
	u0 := make([]float64, steady.Dim())
	for i := range root {
		u0[i] = root[i] + 0.05*(2*rng.Float64()-1)
	}
	return steady, u0
}

// TestSparseSolverProcsBitIdentical is the tentpole acceptance test at the
// solver layer: the full sparse Newton solve — parallel Jacobian refresh,
// parallel band-LU factorization, parallel residual walks — returns the
// same bits at every worker count, including the FactorOps accounting.
func TestSparseSolverProcsBitIdentical(t *testing.T) {
	for _, n := range []int{6, 10} {
		steady, u0 := plantedSteady(t, n)
		opts := nonlin.NewtonOptions{Tol: 1e-12, MaxIter: 60}
		solver := nonlin.NewSparseSolver()
		ref, err := solver.Solve(nil, steady, u0, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.Converged {
			t.Fatalf("n=%d: serial reference did not converge", n)
		}
		refU := append([]float64(nil), ref.U...)

		for _, procs := range []int{1, 2, 3, 8} {
			// Fresh solver per procs count: equal results must not depend
			// on warm state left by another configuration.
			s := nonlin.NewSparseSolver()
			o := opts
			o.Procs = procs
			res, err := s.Solve(nil, steady, u0, o)
			if err != nil {
				t.Fatal(err)
			}
			if res.Converged != ref.Converged || res.Iterations != ref.Iterations ||
				res.TotalIters != ref.TotalIters || res.LinearSolves != ref.LinearSolves ||
				res.FactorOps != ref.FactorOps || res.Attempts != ref.Attempts {
				t.Fatalf("n=%d procs=%d: result metadata diverged: got %+v want %+v", n, procs, res, ref)
			}
			if res.Residual != ref.Residual {
				t.Fatalf("n=%d procs=%d: residual %x, want %x", n, procs, res.Residual, ref.Residual)
			}
			for i := range refU {
				if res.U[i] != refU[i] {
					t.Fatalf("n=%d procs=%d: U[%d] = %x, want %x", n, procs, i, res.U[i], refU[i])
				}
			}
			s.Close()
		}
		solver.Close()
	}
}

// TestSparseSolverProcsSwitching re-uses one solver across procs settings:
// pool teardown and rebuild must not disturb results or leak warm state.
func TestSparseSolverProcsSwitching(t *testing.T) {
	steady, u0 := plantedSteady(t, 8)
	opts := nonlin.NewtonOptions{Tol: 1e-12, MaxIter: 60}
	solver := nonlin.NewSparseSolver()
	defer solver.Close()
	var refU []float64
	var refRes nonlin.Result
	for i, procs := range []int{1, 4, 1, 2, 8, 2} {
		o := opts
		o.Procs = procs
		res, err := solver.Solve(nil, steady, u0, o)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refU = append([]float64(nil), res.U...)
			refRes = res
			continue
		}
		if res.Iterations != refRes.Iterations || res.Residual != refRes.Residual ||
			res.FactorOps != refRes.FactorOps {
			t.Fatalf("procs=%d (step %d): result diverged after switching: got %+v want %+v", procs, i, res, refRes)
		}
		for k := range refU {
			if res.U[k] != refU[k] {
				t.Fatalf("procs=%d (step %d): U[%d] = %x, want %x", procs, i, k, res.U[k], refU[k])
			}
		}
	}
}

// TestSparseSolverWarmParallelSolveAllocFree pins the factorization
// workspace reuse: after the first solve, repeated parallel solves perform
// no allocation (FactorBandLUInto + cached Bandwidths + pooled kernels).
func TestSparseSolverWarmParallelSolveAllocFree(t *testing.T) {
	steady, u0 := plantedSteady(t, 8)
	opts := nonlin.NewtonOptions{Tol: 1e-12, MaxIter: 60, Procs: 4}
	solver := nonlin.NewSparseSolver()
	defer solver.Close()
	if _, err := solver.Solve(nil, steady, u0, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := solver.Solve(nil, steady, u0, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm parallel sparse solve allocates %v per call, want 0", allocs)
	}
}
