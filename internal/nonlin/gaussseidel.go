package nonlin

import (
	"errors"
	"math"

	"hybridpde/internal/la"
)

// GaussSeidelOptions configures the pointwise nonlinear Gauss-Seidel
// relaxation.
type GaussSeidelOptions struct {
	// Tol is the convergence target on ‖F(u)‖₂. Default 1e-8.
	Tol float64
	// MaxSweeps bounds outer sweeps. Default 200.
	MaxSweeps int
	// ScalarIters bounds the per-equation scalar Newton updates. Default 3.
	ScalarIters int
	// RedBlack orders the sweep by parity (as the paper's §6.3
	// decomposition does, but at node granularity); otherwise
	// lexicographic.
	RedBlack bool
}

func (o *GaussSeidelOptions) defaults() {
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 200
	}
	if o.ScalarIters <= 0 {
		o.ScalarIters = 3
	}
}

// GaussSeidelResult reports a relaxation run.
type GaussSeidelResult struct {
	U         []float64
	Converged bool
	Residual  float64
	Sweeps    int
}

// NonlinearGaussSeidel relaxes F(u) = 0 one equation at a time: for each i
// it solves F_i(u) = 0 for u_i with the other components frozen, using a
// few scalar Newton updates with ∂F_i/∂u_i from the sparse Jacobian. It is
// the node-granularity member of the family whose subdomain-granularity
// member drives the paper's §6.3 decomposition, and a classical smoother
// for nonlinear multigrid (FAS).
func NonlinearGaussSeidel(sys SparseSystem, u0 []float64, opts GaussSeidelOptions) (GaussSeidelResult, error) {
	opts.defaults()
	n := sys.Dim()
	if len(u0) != n {
		return GaussSeidelResult{}, errors.New("nonlin: initial guess has wrong dimension")
	}
	u := la.Copy(u0)
	f := make([]float64, n)
	var res GaussSeidelResult
	res.U = u

	order := make([]int, 0, n)
	if opts.RedBlack {
		for i := 0; i < n; i += 2 {
			order = append(order, i)
		}
		for i := 1; i < n; i += 2 {
			order = append(order, i)
		}
	} else {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
	}

	for res.Sweeps = 0; res.Sweeps < opts.MaxSweeps; res.Sweeps++ {
		if err := sys.Eval(u, f); err != nil {
			return res, err
		}
		res.Residual = la.Norm2(f)
		if res.Residual <= opts.Tol {
			res.Converged = true
			return res, nil
		}
		if !finite(u) || math.IsNaN(res.Residual) {
			return res, ErrDiverged
		}
		for _, i := range order {
			for it := 0; it < opts.ScalarIters; it++ {
				if err := sys.Eval(u, f); err != nil {
					return res, err
				}
				if math.Abs(f[i]) < opts.Tol/float64(n) {
					break
				}
				j, err := sys.JacobianCSR(u)
				if err != nil {
					return res, err
				}
				d := j.At(i, i)
				if d == 0 { //pdevet:allow floateq exact-zero diagonal would divide by zero; any tolerance is arbitrary here
					break // leave the equation to its neighbours this sweep
				}
				u[i] -= f[i] / d
			}
		}
	}
	if err := sys.Eval(u, f); err != nil {
		return res, err
	}
	res.Residual = la.Norm2(f)
	res.Converged = res.Residual <= opts.Tol
	if !res.Converged {
		return res, ErrNoConvergence
	}
	return res, nil
}
