package nonlin

import (
	"errors"

	"hybridpde/internal/la"
)

// Broyden solves F(u) = 0 with Broyden's good quasi-Newton method: the
// Jacobian is evaluated once and then updated by rank-one corrections, so
// each iteration avoids a fresh factorization. It is not part of the paper's
// evaluation but serves as the "cheaper digital iteration" ablation point:
// it trades Jacobian work for a larger iteration count and a smaller basin
// of convergence.
func Broyden(sys System, u0 []float64, opts NewtonOptions) (Result, error) {
	opts.defaults()
	n := sys.Dim()
	if len(u0) != n {
		return Result{}, errors.New("nonlin: initial guess has wrong dimension")
	}
	u := la.Copy(u0)
	f := make([]float64, n)
	fNew := make([]float64, n)
	delta := make([]float64, n)
	var res Result
	res.U = u
	res.Attempts = 1
	res.DampingUsed = opts.Damping

	if err := sys.Eval(u, f); err != nil {
		return res, err
	}
	res.Residual = la.Norm2(f)
	if res.Residual <= opts.Tol {
		res.Converged = true
		return res, nil
	}

	// Start from the inverse of the true Jacobian at u0.
	jac := la.NewDense(n, n)
	if err := sys.Jacobian(u, jac); err != nil {
		return res, err
	}
	binv, err := la.Invert(jac)
	if err != nil {
		return res, &JacobianSingularError{Iteration: 0, Err: err}
	}
	res.LinearSolves = 1

	df := make([]float64, n)
	binvDf := make([]float64, n)
	for res.Iterations = 0; res.Iterations < opts.MaxIter; res.Iterations++ {
		// delta = B⁻¹·F(u); step u ← u − h·delta.
		binv.MulVec(delta, f)
		la.Axpy(-opts.Damping, delta, u)
		if !finite(u) {
			return res, ErrDiverged
		}
		if err := sys.Eval(u, fNew); err != nil {
			return res, err
		}
		r := la.Norm2(fNew)
		res.Residual = r
		res.TotalIters++
		if r <= opts.Tol {
			res.Iterations++
			res.Converged = true
			return res, nil
		}
		if r > opts.DivergeFactor*(1+la.Norm2(f)) {
			return res, ErrDiverged
		}
		// Sherman–Morrison update of B⁻¹ with s = −h·delta, y = F_new − F:
		// B⁻¹ ← B⁻¹ + (s − B⁻¹y)·(sᵀB⁻¹)/(sᵀB⁻¹y).
		la.Sub(df, fNew, f)
		binv.MulVec(binvDf, df)
		// sᵀB⁻¹ row vector: compute t = B⁻ᵀ·s first.
		sTBinv := make([]float64, n)
		for j := 0; j < n; j++ {
			acc := 0.0
			for i := 0; i < n; i++ {
				acc += -opts.Damping * delta[i] * binv.At(i, j)
			}
			sTBinv[j] = acc
		}
		denom := 0.0
		for i := 0; i < n; i++ {
			denom += -opts.Damping * delta[i] * binvDf[i]
		}
		if absf(denom) < 1e-300 {
			return res, ErrDiverged
		}
		for i := 0; i < n; i++ {
			num := -opts.Damping*delta[i] - binvDf[i]
			for j := 0; j < n; j++ {
				binv.Add(i, j, num*sTBinv[j]/denom)
			}
		}
		copy(f, fNew)
	}
	return res, ErrNoConvergence
}
