package nonlin

import (
	"context"
	"errors"
	"fmt"

	"hybridpde/internal/la"
)

// HomotopyOptions configures homotopy continuation.
type HomotopyOptions struct {
	// Steps is the number of λ increments from 0 to 1. Default 50.
	Steps int
	// Newton configures the corrector at each λ.
	Newton NewtonOptions
	// Predict enables the Davidenko tangent predictor dρ/dλ = −G_ρ⁻¹·G_λ
	// before each corrector. Without it the previous root is reused as the
	// guess (pure sweep). Default true when constructed via defaults.
	Predict bool
}

func (o *HomotopyOptions) defaults() {
	if o.Steps <= 0 {
		o.Steps = 50
		o.Predict = true
	}
	if o.Newton.Tol <= 0 {
		o.Newton.Tol = 1e-10
	}
	if o.Newton.MaxIter <= 0 {
		o.Newton.MaxIter = 50
	}
	// A damped corrector tracks through the near-fold regions where the
	// combined Jacobian G_ρ loses rank momentarily along the path.
	o.Newton.AutoDamp = true
}

// HomotopyResult reports a continuation run.
type HomotopyResult struct {
	U           []float64
	Converged   bool
	Residual    float64
	LambdaSteps int
	NewtonIters int // total corrector iterations across all λ
	// FoldHops counts path folds where the tracked real root vanished and
	// the solver hopped to another basin, as the analog dynamics do.
	FoldHops int
	// Path records (λ, ‖ρ‖) pairs for diagnostics; one entry per step.
	Path []PathPoint
}

// PathPoint is one sample of the continuation path.
type PathPoint struct {
	Lambda float64
	Norm   float64
}

// homotopySystem is G(ρ; λ) = (1−λ)·S(ρ) + λ·H(ρ).
type homotopySystem struct {
	simple, hard System
	lambda       float64
	fs, fh       []float64
	js, jh       *la.Dense
}

func (g *homotopySystem) Dim() int { return g.hard.Dim() }

func (g *homotopySystem) Eval(u, f []float64) error {
	if err := g.simple.Eval(u, g.fs); err != nil {
		return err
	}
	if err := g.hard.Eval(u, g.fh); err != nil {
		return err
	}
	for i := range f {
		f[i] = (1-g.lambda)*g.fs[i] + g.lambda*g.fh[i]
	}
	return nil
}

func (g *homotopySystem) Jacobian(u []float64, jac *la.Dense) error {
	if err := g.simple.Jacobian(u, g.js); err != nil {
		return err
	}
	if err := g.hard.Jacobian(u, g.jh); err != nil {
		return err
	}
	n := g.Dim()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			jac.Set(i, j, (1-g.lambda)*g.js.At(i, j)+g.lambda*g.jh.At(i, j))
		}
	}
	return nil
}

// dLambda writes ∂G/∂λ = H(ρ) − S(ρ) into out.
func (g *homotopySystem) dLambda(u, out []float64) error {
	if err := g.simple.Eval(u, g.fs); err != nil {
		return err
	}
	if err := g.hard.Eval(u, g.fh); err != nil {
		return err
	}
	for i := range out {
		out[i] = g.fh[i] - g.fs[i]
	}
	return nil
}

// Homotopy tracks a root of the simple system to a root of the hard system
// by sweeping λ from 0 to 1 through G(ρ;λ) = (1−λ)S(ρ) + λH(ρ) (§3.2).
// start must be at (or near) a root of the simple system. ctx may be nil; a
// cancelled context aborts between corrector solves with a wrapped context
// error.
func Homotopy(ctx context.Context, simple, hard System, start []float64, opts HomotopyOptions) (HomotopyResult, error) {
	if simple.Dim() != hard.Dim() {
		return HomotopyResult{}, fmt.Errorf("nonlin: homotopy dimension mismatch %d vs %d", simple.Dim(), hard.Dim())
	}
	opts.defaults()
	n := hard.Dim()
	if len(start) != n {
		return HomotopyResult{}, errors.New("nonlin: homotopy start has wrong dimension")
	}
	g := &homotopySystem{
		simple: simple, hard: hard,
		fs: make([]float64, n), fh: make([]float64, n),
		js: la.NewDense(n, n), jh: la.NewDense(n, n),
	}
	u := la.Copy(start)
	var res HomotopyResult
	// Correct onto the λ=0 root first, in case start is only approximate.
	g.lambda = 0
	nr, err := Newton(ctx, g, u, opts.Newton)
	if err != nil {
		return res, fmt.Errorf("nonlin: homotopy failed to settle on simple root: %w", err)
	}
	res.NewtonIters += nr.Iterations
	u = nr.U
	res.Path = append(res.Path, PathPoint{Lambda: 0, Norm: la.Norm2(u)})

	jac := la.NewDense(n, n)
	gl := make([]float64, n)
	tangent := make([]float64, n)
	baseDl := 1.0 / float64(opts.Steps)
	minDl := baseDl / 256
	dl := baseDl
	lambda := 0.0
	uPrev := la.Copy(u)
	for lambda < 1 {
		step := dl
		if lambda+step > 1 {
			step = 1 - lambda
		}
		copy(uPrev, u)
		if opts.Predict {
			// Tangent predictor at the current (u, λ):
			// dρ/dλ = −G_ρ⁻¹·G_λ (Davidenko's equation).
			g.lambda = lambda
			if err := g.Jacobian(u, jac); err != nil {
				return res, err
			}
			if err := g.dLambda(u, gl); err != nil {
				return res, err
			}
			if lu, ferr := la.FactorLU(jac); ferr == nil {
				if lu.Solve(tangent, gl) == nil {
					la.Axpy(-step, tangent, u)
				}
			}
			// Singular tangent systems fall through to the plain corrector.
		}
		g.lambda = lambda + step
		nr, err := Newton(ctx, g, u, opts.Newton)
		if err != nil {
			if isCtxErr(err) {
				return res, err
			}
			// Corrector failed: shrink the continuation step and retry
			// from the last accepted point (adaptive path tracking).
			copy(u, uPrev)
			dl /= 2
			if dl >= minDl {
				continue
			}
			// The path has hit a genuine fold: the tracked root collides
			// with another and leaves the real domain. The physical analog
			// system does not fail here — its state slides off the
			// vanished root and is captured by another basin of the
			// current combined system (Figure 3: "all choices of initial
			// conditions lead to one correct solution or another"). Model
			// the slide with damped-Newton restarts from deterministic
			// perturbations of the fold point.
			hopped, hr := basinHop(ctx, g, uPrev, opts.Newton)
			if !hopped {
				res.LambdaSteps++
				return res, fmt.Errorf("nonlin: homotopy fold at λ=%.4f and basin hop failed: %w", g.lambda, err)
			}
			nr = hr
			res.FoldHops++
			dl = baseDl
		}
		res.NewtonIters += nr.Iterations
		u = nr.U
		lambda += step
		res.Path = append(res.Path, PathPoint{Lambda: lambda, Norm: la.Norm2(u)})
		res.LambdaSteps++
		if dl < baseDl {
			dl *= 2 // recover toward the base step after a shrink
		}
	}
	res.U = u
	f := make([]float64, n)
	if err := hard.Eval(u, f); err != nil {
		return res, err
	}
	res.Residual = la.Norm2(f)
	res.Converged = res.Residual <= opts.Newton.Tol*10
	if !res.Converged {
		return res, ErrNoConvergence
	}
	return res, nil
}

// basinHop tries damped-Newton solves from perturbations of uFold until one
// converges to a root of sys. Directions and magnitudes are deterministic so
// homotopy runs are reproducible.
func basinHop(ctx context.Context, sys System, uFold []float64, newtonOpts NewtonOptions) (bool, Result) {
	n := len(uFold)
	scale := 1 + la.Norm2(uFold)
	newtonOpts.AutoDamp = true
	if newtonOpts.MaxIter < 200 {
		newtonOpts.MaxIter = 200
	}
	try := func(dir []float64, mag float64) (bool, Result) {
		u := la.Copy(uFold)
		la.Axpy(mag*scale, dir, u)
		r, err := Newton(ctx, sys, u, newtonOpts)
		if err == nil && r.Converged {
			return true, r
		}
		return false, Result{}
	}
	dirs := make([][]float64, 0, 2*n+2)
	for k := 0; k < n; k++ {
		d := make([]float64, n)
		d[k] = 1
		dirs = append(dirs, d)
		dm := make([]float64, n)
		dm[k] = -1
		dirs = append(dirs, dm)
	}
	ones := make([]float64, n)
	negOnes := make([]float64, n)
	for i := range ones {
		ones[i] = 1 / la.Norm2(onesVec(n))
		negOnes[i] = -ones[i]
	}
	dirs = append(dirs, ones, negOnes)
	for _, mag := range []float64{0.1, 0.3, 1.0} {
		for _, d := range dirs {
			if ok, r := try(d, mag); ok {
				return true, r
			}
		}
	}
	return false, Result{}
}

func onesVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// SquareRootsSimple returns the paper's trivial homotopy start system
// S(ρ)ᵢ = ρᵢ² − 1 (Equation 3), whose 2ᵈ roots are ρᵢ = ±1.
func SquareRootsSimple(dim int) System {
	return FuncSystem{
		N: dim,
		F: func(u, f []float64) error {
			for i := range f {
				f[i] = u[i]*u[i] - 1
			}
			return nil
		},
		J: func(u []float64, jac *la.Dense) error {
			jac.Zero()
			for i := range u {
				jac.Set(i, i, 2*u[i])
			}
			return nil
		},
	}
}

// NewtonHomotopy runs the global (Newton) homotopy on a single system: the
// start system S(u) = F(u) − F(u₀) has the known root u₀ and the same
// Jacobian as F, so G(u, λ) = F(u) − (1−λ)·F(u₀) drags u₀ along a root path
// toward a root of F as λ ramps 0 → 1. It is the degradation ladder's
// last-resort rung: when damped Newton has diverged from every available
// seed, continuation replaces the basin gamble with path tracking.
func NewtonHomotopy(ctx context.Context, sys System, u0 []float64, opts HomotopyOptions) (HomotopyResult, error) {
	n := sys.Dim()
	if len(u0) != n {
		return HomotopyResult{}, errors.New("nonlin: homotopy start has wrong dimension")
	}
	f0 := make([]float64, n)
	if err := sys.Eval(u0, f0); err != nil {
		return HomotopyResult{}, err
	}
	simple := FuncSystem{
		N: n,
		F: func(u, f []float64) error {
			if err := sys.Eval(u, f); err != nil {
				return err
			}
			for i := range f {
				f[i] -= f0[i]
			}
			return nil
		},
		J: sys.Jacobian,
	}
	return Homotopy(ctx, simple, sys, u0, opts)
}
