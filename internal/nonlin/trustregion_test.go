package nonlin

import (
	"math"
	"testing"

	"hybridpde/internal/la"
)

func TestTrustRegionConvergesOnAtan(t *testing.T) {
	// The case classical Newton fails: trust region converges globally.
	res, err := TrustRegion(atanScalar(), []float64{3}, TrustRegionOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.U[0]) > 1e-10 {
		t.Fatalf("root = %g, want 0", res.U[0])
	}
}

func TestTrustRegionMatchesNewtonNearRoot(t *testing.T) {
	// Close to a root the dogleg takes full Newton steps: iteration counts
	// should be comparably small.
	sys := coupledQuadratic(1, -1)
	tr, err := TrustRegion(sys, []float64{0.9, -0.9}, TrustRegionOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := Newton(nil, sys, []float64{0.9, -0.9}, NewtonOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Iterations > nw.Iterations+3 {
		t.Fatalf("trust region (%d iters) should track Newton (%d) near the root", tr.Iterations, nw.Iterations)
	}
	f := make([]float64, 2)
	if err := sys.Eval(tr.U, f); err != nil {
		t.Fatal(err)
	}
	if la.Norm2(f) > 1e-10 {
		t.Fatalf("trust region returned non-root, ‖F‖=%g", la.Norm2(f))
	}
}

func TestTrustRegionCubicFromFar(t *testing.T) {
	sys := complexCubic()
	res, err := TrustRegion(sys, []float64{5, 3}, TrustRegionOptions{Tol: 1e-10, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if nearestCubicRoot(res.U) < 0 {
		t.Fatalf("did not land on a cubic root: %v", res.U)
	}
}

func TestTrustRegionSingularJacobianStart(t *testing.T) {
	// At z = 0 the cubic's Jacobian is singular; the dogleg falls back to
	// steepest descent and still escapes... but z=0 is also a stationary
	// point of the merit function (JᵀF = −3·0·… = 0 there), so the solver
	// must report failure rather than loop. Start slightly off instead
	// and require success.
	sys := complexCubic()
	res, err := TrustRegion(sys, []float64{1e-3, 1e-3}, TrustRegionOptions{Tol: 1e-10, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("trust region should escape the near-singular start")
	}
}

func TestTrustRegionDimensionMismatch(t *testing.T) {
	if _, err := TrustRegion(atanScalar(), []float64{1, 2}, TrustRegionOptions{}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestDoglegStepGeometry(t *testing.T) {
	// Newton inside radius → take it exactly.
	dst := make([]float64, 2)
	grad := []float64{1, 0}
	newton := []float64{0.3, 0.1}
	doglegStep(dst, grad, 0.5, newton, true, 10)
	if dst[0] != 0.3 || dst[1] != 0.1 {
		t.Fatalf("should take the Newton step inside the region, got %v", dst)
	}
	// No Newton step → clipped steepest descent of length = radius.
	doglegStep(dst, grad, 2.0, nil, false, 0.5)
	if math.Abs(la.Norm2(dst)-0.5) > 1e-12 {
		t.Fatalf("clipped Cauchy step should have length 0.5, got %g", la.Norm2(dst))
	}
	// Dogleg blend: step length equals the radius.
	newton = []float64{-4, 0}
	doglegStep(dst, grad, 1.0, newton, true, 2)
	if math.Abs(la.Norm2(dst)-2) > 1e-9 {
		t.Fatalf("dogleg boundary step should have length 2, got %g", la.Norm2(dst))
	}
}
