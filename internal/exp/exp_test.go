package exp

import (
	"context"
	"os"
	"strings"
	"testing"
)

var quickCfg = Config{Quick: true, Seed: 3}

func TestTable1Quick(t *testing.T) {
	r, err := Table1(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("Table 1 must have 4 rows, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Report.KernelFraction <= 0 || row.Report.KernelFraction >= 1 {
			t.Fatalf("workload %q kernel share %.2f out of range", row.Report.Problem, row.Report.KernelFraction)
		}
	}
	if !strings.Contains(r.String(), "Bi-CGstab") {
		t.Fatal("rendering must include kernels")
	}
}

func TestTable1FullScaleOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale workload profile (≈1 min); run without -short")
	}
	// The property Table 1 demonstrates: structured-grid (FD) solvers are
	// more kernel-dominated than finite-volume/finite-element solvers,
	// whose assembly dilutes the share. At quick scale the sections run in
	// microseconds and timer noise dominates, so the ordering is asserted
	// only at full scale.
	r, err := Table1(context.Background(), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fdMin := min(r.Rows[0].Report.KernelFraction, r.Rows[1].Report.KernelFraction)
	fvMax := max(r.Rows[2].Report.KernelFraction, r.Rows[3].Report.KernelFraction)
	if fdMin <= fvMax {
		t.Fatalf("FD workloads (min %.2f) should be more solver-bound than FV/FE (max %.2f)", fdMin, fvMax)
	}
}

func TestTable2Quick(t *testing.T) {
	r, err := Table2(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 4 {
		t.Fatalf("Table 2 needs a Reynolds sweep, got %d rows", len(r.Rows))
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if first.Nonlinearity != "semilinear" {
		t.Fatalf("lowest Re should be diffusion-dominated, got %q", first.Dominant)
	}
	if last.Nonlinearity != "quasilinear" {
		t.Fatalf("highest Re should be advection-dominated, got %q", last.Dominant)
	}
}

func TestTable3Quick(t *testing.T) {
	r := Table3(context.Background(), quickCfg)
	s := r.String()
	for _, want := range []string{"nonlinear function", "Jacobian matrix", "quotient feedback loop", "Newton method feedback loop", "total"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 3 rendering missing %q", want)
		}
	}
}

func TestTable4Quick(t *testing.T) {
	r, err := Table4(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("Table 4 must have 5 rows, got %d", len(r.Rows))
	}
	if r.Rows[4].Variables != 512 {
		t.Fatalf("16×16 row should have 512 variables, got %d", r.Rows[4].Variables)
	}
}

func TestFig2Quick(t *testing.T) {
	r, err := Fig2(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.AnalogRootsFound != 3 {
		t.Fatalf("chip should reach all 3 cubic roots, found %d", r.AnalogRootsFound)
	}
	// The paper's claim: continuous Newton basins are more contiguous.
	if r.AnalogBoundary > r.DigitalBoundary+0.02 {
		t.Fatalf("chip basins (boundary %.3f) should not be more fragmented than digital (%.3f)",
			r.AnalogBoundary, r.DigitalBoundary)
	}
}

func TestFig3Quick(t *testing.T) {
	r, err := Fig3(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Roots) < 1 {
		t.Fatal("no roots discovered on the chip")
	}
	total := r.Pixels * r.Pixels
	// Homotopy must eliminate (nearly) all wrong-result pixels.
	if r.HomotopyWrong > total/20 {
		t.Fatalf("homotopy wrong pixels %d of %d — should be near zero", r.HomotopyWrong, total)
	}
}

func TestFig6Quick(t *testing.T) {
	r, err := Fig6(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Solved < r.Trials/2 {
		t.Fatalf("too few solved trials: %d of %d", r.Solved, r.Trials)
	}
	if r.TotalRMSPct < 0.5 || r.TotalRMSPct > 15 {
		t.Fatalf("total RMS %.2f%% implausible (paper: 5.38%%)", r.TotalRMSPct)
	}
}

func TestFig7Quick(t *testing.T) {
	r, err := Fig7(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no Fig 7 points")
	}
	solvedAny := false
	for _, p := range r.Points {
		if p.Solved > 0 {
			solvedAny = true
			if p.AnalogMeanS <= 0 {
				t.Fatalf("analog time missing for solved point %+v", p)
			}
			// Figure 7's analog band: tens of microseconds.
			if p.AnalogMeanS > 1e-3 || p.AnalogMeanS < 1e-7 {
				t.Fatalf("analog settle time %g s outside the paper's 10⁻⁵–10⁻⁴ band scale", p.AnalogMeanS)
			}
		}
	}
	if !solvedAny {
		t.Fatal("no point solved in quick Fig 7")
	}
}

func TestFig8Quick(t *testing.T) {
	r, err := Fig8(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no Fig 8 points")
	}
	for _, p := range r.Points {
		if p.Solved == 0 {
			continue
		}
		if p.BaselineMeanS <= 0 || p.SeededMeanS <= 0 {
			t.Fatalf("missing timings in %+v", p)
		}
	}
}

func TestFig9Quick(t *testing.T) {
	r, err := Fig9(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sizes) != 2 {
		t.Fatalf("Fig 9 needs two problem sizes, got %d", len(r.Sizes))
	}
	if !r.Sizes[1].Decomposed {
		t.Fatal("the oversize problem must use the red-black decomposition")
	}
	if r.Sizes[0].Decomposed {
		t.Fatal("the in-capacity problem must not decompose")
	}
	for _, s := range r.Sizes {
		if s.Solved == 0 {
			t.Fatalf("no solved trials at %d×%d", s.GridN, s.GridN)
		}
		// The analog stage must be negligible next to the digital stage,
		// the paper's "time and energy spent in the analog hardware is
		// negligible" claim.
		if s.AnalogMeanS > s.SeededMeanS {
			t.Fatalf("analog stage %g s should be far below digital %g s", s.AnalogMeanS, s.SeededMeanS)
		}
	}
}

func TestCSVExports(t *testing.T) {
	f7, err := Fig7(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f7.CSV(), "grid,re,") {
		t.Fatal("Fig7 CSV header missing")
	}
	if strings.Count(f7.CSV(), "\n") != len(f7.Points)+1 {
		t.Fatal("Fig7 CSV row count mismatch")
	}
	dir := t.TempDir()
	p, err := WriteCSV(dir, "fig7", f7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
}

func TestAblationsQuick(t *testing.T) {
	r, err := Ablations(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.SeededIters == 0 || r.ColdIters == 0 {
		t.Fatalf("seeding ablation did not run: %+v", r)
	}
	if r.SeededIters > r.ColdIters {
		t.Fatalf("seeded polish (%d iters) should not exceed cold start (%d)", r.SeededIters, r.ColdIters)
	}
	if r.Order4NNZ <= r.Order2NNZ {
		t.Fatal("order-4 stencil must have more Jacobian nonzeros")
	}
	// Coarser converters must not give better accuracy than finer ones.
	if r.BitsRMS[4] < r.BitsRMS[12] {
		t.Fatalf("4-bit RMS %.2f%% should be worse than 12-bit %.2f%%", r.BitsRMS[4], r.BitsRMS[12])
	}
	if !strings.Contains(r.String(), "converter resolution") {
		t.Fatal("rendering incomplete")
	}
}
