package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// CSV renders the Figure 7 series as comma-separated rows for plotting.
func (r Fig7Result) CSV() string {
	var b strings.Builder
	b.WriteString("grid,re,trials,solved,digital_seconds,analog_seconds\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%d,%g,%d,%d,%g,%g\n",
			p.GridN, p.Re, p.Trials, p.Solved, p.DigitalMeanS, p.AnalogMeanS)
	}
	return b.String()
}

// CSV renders the Figure 8 series.
func (r Fig8Result) CSV() string {
	var b strings.Builder
	b.WriteString("re,trials,solved,baseline_seconds,baseline_std,seeded_seconds,seeded_std,baseline_damping\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%g,%d,%d,%g,%g,%g,%g,%g\n",
			p.Re, p.Trials, p.Solved, p.BaselineMeanS, p.BaselineStdS,
			p.SeededMeanS, p.SeededStdS, p.BaselineDamping)
	}
	return b.String()
}

// CSV renders the Figure 9 bars.
func (r Fig9Result) CSV() string {
	var b strings.Builder
	b.WriteString("grid,decomposed,baseline_seconds,baseline_joules,analog_seconds,analog_joules,seeded_seconds,seeded_joules,time_reduction,energy_reduction\n")
	for _, s := range r.Sizes {
		fmt.Fprintf(&b, "%d,%v,%g,%g,%g,%g,%g,%g,%g,%g\n",
			s.GridN, s.Decomposed, s.BaselineMeanS, s.BaselineMeanJ,
			s.AnalogMeanS, s.AnalogMeanJ, s.SeededMeanS, s.SeededMeanJ,
			s.TimeReduction, s.EnergyReduction)
	}
	return b.String()
}

// CSV renders the Figure 6 histogram.
func (r Fig6Result) CSV() string {
	var b strings.Builder
	b.WriteString("bin_center_pct,count\n")
	for k, c := range r.Histogram.Counts {
		fmt.Fprintf(&b, "%g,%d\n", r.Histogram.BinCenter(k), c)
	}
	fmt.Fprintf(&b, "# total_rms_pct,%g\n", r.TotalRMSPct)
	return b.String()
}

// CSVExporter is implemented by results with a tabular series form.
type CSVExporter interface{ CSV() string }

// WriteCSV saves a result's CSV form under dir as <name>.csv.
func WriteCSV(dir, name string, r CSVExporter) (string, error) {
	path := filepath.Join(dir, name+".csv")
	if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
