package exp

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"hybridpde/internal/analog"
	"hybridpde/internal/core"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/pde"
	"hybridpde/internal/stats"
)

// AblationResult collects the design-choice ablations DESIGN.md §7 calls
// out: what each ingredient of the hybrid pipeline buys.
type AblationResult struct {
	// Damping schedule on a hard cold-start problem.
	ClassicalFails   bool
	AutoDampIters    int
	AutoDampTotal    int
	ArmijoIters      int
	TrustRegionIters int
	// Seeding effect (counted digital iterations).
	ColdIters   int
	SeededIters int
	// Converter resolution sweep: total RMS % per ADC/DAC bit width.
	BitsRMS map[int]float64
	// Stencil order: Jacobian nonzeros (accelerator size proxy).
	Order2NNZ, Order4NNZ int
}

// Ablations runs the ablation suite at the configured scale.
func Ablations(ctx context.Context, cfg Config) (AblationResult, error) {
	var out AblationResult
	out.BitsRMS = map[int]float64{}
	n := pick(cfg, 8, 4)
	const re, bound = 2.0, 2.2

	newProblem := func(salt int64) (*pde.Burgers, []float64, error) {
		rng := cfg.rng(salt)
		b, err := pde.RandomBurgers(n, re, bound, rng)
		if err != nil {
			return nil, nil, err
		}
		root := make([]float64, b.Dim())
		for i := range root {
			root[i] = bound * (2*rng.Float64() - 1)
		}
		if err := b.SetRHSForRoot(root); err != nil {
			return nil, nil, err
		}
		u0 := make([]float64, b.Dim())
		for i := range u0 {
			u0[i] = bound * (2*rng.Float64() - 1)
		}
		return b, u0, nil
	}

	// 1. Damping schedules.
	b, u0, err := newProblem(41)
	if err != nil {
		return out, err
	}
	if _, err := nonlin.NewtonSparse(ctx, b, u0, nonlin.NewtonOptions{Tol: 1e-9, RelTol: 1e-13, MaxIter: 150}); err != nil {
		out.ClassicalFails = true
	}
	if r, err := nonlin.NewtonSparse(ctx, b, u0, nonlin.NewtonOptions{Tol: 1e-9, RelTol: 1e-13, AutoDamp: true, MaxIter: 400}); err == nil {
		out.AutoDampIters = r.Iterations
		out.AutoDampTotal = r.TotalIters
	}
	if r, err := nonlin.NewtonArmijo(ctx, nonlin.DenseAdapter{S: b}, u0, nonlin.NewtonOptions{Tol: 1e-9, RelTol: 1e-13, MaxIter: 400}); err == nil {
		out.ArmijoIters = r.Iterations
	}
	if r, err := nonlin.TrustRegion(nonlin.DenseAdapter{S: b}, u0, nonlin.TrustRegionOptions{Tol: 1e-7, MaxIter: 500}); err == nil {
		out.TrustRegionIters = r.Iterations
	}

	// 2. Seeding.
	acc, err := analog.NewScaled(n, cfg.Seed)
	if err != nil {
		return out, err
	}
	b2, u02, err := newProblem(42)
	if err != nil {
		return out, err
	}
	opts := core.Options{InitialGuess: u02, Seeder: core.AnalogSeeder(acc)}
	opts.Analog.DynamicRange = 1.5 * bound
	if rep, err := core.Solve(ctx, b2, opts); err == nil {
		out.SeededIters = rep.Digital.Iterations
	}
	optsCold := opts
	optsCold.SkipAnalog = true
	if rep, err := core.Solve(ctx, b2, optsCold); err == nil {
		out.ColdIters = rep.Digital.Iterations
	}

	// 3. Converter resolution sweep on 2×2 problems.
	trials := pick(cfg, 12, 5)
	for _, bits := range []int{4, 6, 8, 12} {
		accB := analog.NewAccelerator(analog.Config{Seed: cfg.Seed, ADCBits: bits, DACBits: bits})
		rng := rand.New(rand.NewSource(cfg.Seed + 43))
		var perTrial []float64
		for t := 0; t < trials; t++ {
			p, err := pde.RandomBurgers(2, 1.0, 3.0, rng)
			if err != nil {
				return out, err
			}
			root := make([]float64, p.Dim())
			for k := range root {
				root[k] = 3 * (2*rng.Float64() - 1)
			}
			if err := p.SetRHSForRoot(root); err != nil {
				return out, err
			}
			sol, err := accB.SolveSparse(ctx, p, root, analog.SolveOptions{DynamicRange: 4.5})
			if err != nil || !sol.Converged {
				continue
			}
			golden, err := core.GoldenSolve(ctx, p, sol.U)
			if err != nil {
				continue
			}
			perTrial = append(perTrial, 100*stats.RMSError(sol.U, golden, 4.5))
		}
		out.BitsRMS[bits] = stats.TotalRMS(perTrial)
	}

	// 4. Stencil order vs accelerator size. The wide stencil only engages
	// on nodes two cells from the boundary, so this part uses a fixed 8×8
	// grid even in quick mode (it is a single Jacobian assembly).
	for _, order := range []int{2, 4} {
		rng := cfg.rng(44)
		bo, err := pde.RandomBurgers(8, re, bound, rng)
		if err != nil {
			return out, err
		}
		bo.Order = order
		j, err := bo.JacobianCSR(bo.InitialGuess())
		if err != nil {
			return out, err
		}
		if order == 2 {
			out.Order2NNZ = j.NNZ()
		} else {
			out.Order4NNZ = j.NNZ()
		}
	}
	return out, nil
}

// String renders the ablation report.
func (r AblationResult) String() string {
	var b strings.Builder
	b.WriteString(header("Ablations: what each design ingredient buys"))
	fmt.Fprintf(&b, "damping schedules on a hard cold start (Re 2.0):\n")
	fmt.Fprintf(&b, "  classical Newton (h = 1):      fails = %v\n", r.ClassicalFails)
	fmt.Fprintf(&b, "  paper's halving schedule:      %d counted iters (%d total with trials)\n", r.AutoDampIters, r.AutoDampTotal)
	fmt.Fprintf(&b, "  Armijo line search:            %d iters\n", r.ArmijoIters)
	fmt.Fprintf(&b, "  dogleg trust region:           %d iters\n", r.TrustRegionIters)
	fmt.Fprintf(&b, "analog seeding (counted digital iterations):\n")
	fmt.Fprintf(&b, "  cold start: %d    seeded: %d\n", r.ColdIters, r.SeededIters)
	fmt.Fprintf(&b, "converter resolution vs solution error (total RMS %% of range):\n")
	for _, bits := range []int{4, 6, 8, 12} {
		fmt.Fprintf(&b, "  %2d-bit: %.2f%%\n", bits, r.BitsRMS[bits])
	}
	fmt.Fprintf(&b, "stencil order vs accelerator size (Jacobian nonzeros):\n")
	fmt.Fprintf(&b, "  order 2: %d    order 4: %d (larger stencil ⇒ larger accelerator, §7)\n",
		r.Order2NNZ, r.Order4NNZ)
	return b.String()
}
