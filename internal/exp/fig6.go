package exp

import (
	"context"
	"fmt"
	"strings"

	"hybridpde/internal/analog"
	"hybridpde/internal/core"
	"hybridpde/internal/pde"
	"hybridpde/internal/stats"
)

// Fig6Result reproduces Figure 6: the distribution of analog solution error
// over randomly generated 2×2 Burgers stencil problems, and the total RMS
// the paper measured at 5.38 %.
type Fig6Result struct {
	Trials      int
	Solved      int
	Histogram   *stats.Histogram
	TotalRMSPct float64
	PaperRMSPct float64
}

// Fig6 runs the paper's §5.4 experiment: random 2×2 problems with constants
// in ±3, solved on the prototype board model, error measured by Equation 6
// against the certified digital solution and normalised by the dynamic
// range.
func Fig6(ctx context.Context, cfg Config) (Fig6Result, error) {
	trials := pick(cfg, 400, 40)
	res := Fig6Result{
		Trials:      trials,
		Histogram:   stats.NewHistogram(0, 20, 20),
		PaperRMSPct: 5.38,
	}
	acc := analog.NewPrototype(cfg.Seed)
	rng := cfg.rng(6)
	const bound = 3.0
	var perTrial []float64
	for t := 0; t < trials; t++ {
		b, err := pde.RandomBurgers(2, 1.0, bound, rng)
		if err != nil {
			return res, err
		}
		// Plant a root within range so the problem certifiably has a
		// solution (the paper filters unsolvable draws via its golden
		// model).
		root := make([]float64, b.Dim())
		for i := range root {
			root[i] = bound * (2*rng.Float64() - 1)
		}
		if err := b.SetRHSForRoot(root); err != nil {
			return res, err
		}
		u0 := make([]float64, b.Dim())
		for i := range u0 {
			u0[i] = bound * (2*rng.Float64() - 1)
		}
		sol, err := acc.SolveSparse(ctx, b, u0, analog.SolveOptions{DynamicRange: 1.5 * bound})
		if err != nil || !sol.Converged {
			continue
		}
		// Certified digital reference: polish from the analog answer so
		// both solvers describe the same root.
		golden, err := core.GoldenSolve(ctx, b, sol.U)
		if err != nil {
			continue
		}
		rmsPct := 100 * stats.RMSError(sol.U, golden, 1.5*bound)
		perTrial = append(perTrial, rmsPct)
		res.Histogram.Observe(rmsPct)
		res.Solved++
	}
	res.TotalRMSPct = stats.TotalRMS(perTrial)
	return res, nil
}

// String renders the distribution.
func (r Fig6Result) String() string {
	var b strings.Builder
	b.WriteString(header("Figure 6: distribution of analog solution error (random 2×2 Burgers problems)"))
	fmt.Fprintf(&b, "trials: %d, settled+certified: %d\n", r.Trials, r.Solved)
	fmt.Fprintf(&b, "total RMS error: %.2f%%   (paper: %.2f%%)\n\n", r.TotalRMSPct, r.PaperRMSPct)
	b.WriteString("error distribution (% of dynamic range):\n")
	b.WriteString(r.Histogram.String())
	return b.String()
}
