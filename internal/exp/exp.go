// Package exp contains one driver per table and figure of the paper's
// evaluation. Each driver runs the real solvers and the analog accelerator
// model, gathers the measurements, and renders the same rows or series the
// paper reports. DESIGN.md carries the per-experiment index; EXPERIMENTS.md
// records paper-vs-measured numbers produced by these drivers.
package exp

import (
	"fmt"
	"math/rand"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks grids and trial counts so the full suite runs in
	// seconds (used by tests); the default full scale matches the paper.
	Quick bool
	// Seed fixes all random draws.
	Seed int64
	// OutDir, when non-empty, is where image artifacts (PPM basin plots)
	// are written.
	OutDir string
}

func (c Config) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1_000_003 + salt))
}

// pick returns quick when Quick is set, full otherwise.
func pick[T any](c Config, full, quick T) T {
	if c.Quick {
		return quick
	}
	return full
}

// header renders a section banner for driver output.
func header(title string) string {
	return fmt.Sprintf("=== %s ===\n", title)
}
