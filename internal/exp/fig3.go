package exp

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"strings"

	"hybridpde/internal/analog"
	"hybridpde/internal/img"
	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/pde"
)

// Fig3Result reproduces Figure 3: solving the coupled quadratic system
// (Equation 2) on the chip, with and without homotopy continuation.
type Fig3Result struct {
	Pixels int
	// Plain continuous Newton basins over the initial-condition plane:
	// colours = roots, pink = settled on a wrong result, black = no
	// convergence (centre-left panel).
	Plain *img.Image
	// Homotopy basins: the four corner starts (±1, ±1) extended to the
	// whole plane by snapping each initial condition to the nearest
	// simple-system root before the λ ramp (far-right panel).
	Homotopy *img.Image
	// Roots discovered (problem coordinates), keyed by rounded value.
	Roots map[[2]int64][2]float64
	// PlainWrong counts wrong/pink pixels without homotopy; HomotopyWrong
	// with. The paper's claim: the latter is (near) zero.
	PlainWrong    int
	HomotopyWrong int
	Paths         []string
}

// fig3RHS selects the hard instance rendered in Figure 3: two real roots
// whose plain continuous-Newton basins leave a large wrong-result (pink)
// region — about a third of the [−2,2]² initial-condition plane — exactly
// the structure of the paper's centre-left panel. (The instance was found
// by scanning RHS space; most RHS choices give either zero real roots or
// fully benign basins.)
const (
	fig3RHS0 = 2.5
	fig3RHS1 = 1.5
)

// Fig3 runs the chip model over the plane of initial conditions.
func Fig3(ctx context.Context, cfg Config) (Fig3Result, error) {
	pixels := pick(cfg, 128, 12)
	res := Fig3Result{
		Pixels:   pixels,
		Plain:    img.New(pixels, pixels),
		Homotopy: img.New(pixels, pixels),
		Roots:    map[[2]int64][2]float64{},
	}
	acc := analog.NewPrototype(cfg.Seed)
	hard := analog.PolySystem{Degree: 2, System: pde.Equation2(fig3RHS0, fig3RHS1)}
	simple := analog.PolySystem{Degree: 2, System: nonlin.SquareRootsSimple(2)}

	// Discover the reference roots digitally (certified by residual).
	refRoots := findQuadRoots(hard)

	classify := func(u []float64, tol float64) int {
		for k, r := range refRoots {
			if math.Hypot(u[0]-r[0], u[1]-r[1]) <= tol {
				return k
			}
		}
		return -1
	}
	// Four homotopy paths from the corner starts, reused for the whole
	// plane. The digital host verifies each chip readout (a residual
	// check costs nothing next to the solve) and a plane point falls back
	// to the next-nearest simple root when its own corner's path parked
	// on a wrong result — re-running the ~tens-of-µs chip is exactly the
	// cheap initial-guess exploration §2.2 advertises.
	type cornerSol struct {
		root int
		ok   bool
	}
	cornerPts := [][2]int{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
	corners := map[[2]int]cornerSol{}
	for _, c := range cornerPts {
		start := []float64{float64(c[0]), float64(c[1])}
		sol, err := acc.SolveHomotopy(simple, hard, start, analog.HomotopyOptions{
			Solve: analog.SolveOptions{DynamicRange: 3, TMaxTau: 600},
		})
		cs := cornerSol{}
		if err == nil && sol.Converged {
			if k := classify(sol.U, 0.6); k >= 0 {
				cs = cornerSol{root: k, ok: true}
			}
		}
		corners[c] = cs
	}

	const span = 2.0
	for py := 0; py < pixels; py++ {
		p1 := span - 2*span*float64(py)/float64(pixels-1)
		for px := 0; px < pixels; px++ {
			p0 := -span + 2*span*float64(px)/float64(pixels-1)
			u0 := []float64{p0, p1}

			// Centre-left panel: plain continuous Newton on the chip.
			sol, err := acc.Solve(hard, u0, analog.SolveOptions{DynamicRange: 3, TMaxTau: 150})
			var col img.Color
			switch {
			case err != nil || !sol.Converged:
				col = img.NoConverge
				res.PlainWrong++
			default:
				if k := classify(sol.U, 0.6); k >= 0 {
					col = img.RootPalette(k)
					key := [2]int64{int64(math.Round(sol.U[0])), int64(math.Round(sol.U[1]))}
					res.Roots[key] = refRoots[k]
				} else {
					col = img.WrongPink
					res.PlainWrong++
				}
			}
			res.Plain.Set(px, py, col)

			// Far-right panel: homotopy — corners of the simple system's
			// root set ordered by distance; the first verified path wins.
			painted := false
			for _, c := range cornersByDistance(cornerPts, p0, p1) {
				if cs := corners[c]; cs.ok {
					res.Homotopy.Set(px, py, img.RootPalette(cs.root))
					painted = true
					break
				}
			}
			if !painted {
				res.Homotopy.Set(px, py, img.WrongPink)
				res.HomotopyWrong++
			}
		}
	}
	if cfg.OutDir != "" {
		for _, out := range []struct {
			name string
			im   *img.Image
		}{{"fig3_plain_continuous_newton.ppm", res.Plain}, {"fig3_homotopy.ppm", res.Homotopy}} {
			p := filepath.Join(cfg.OutDir, out.name)
			if err := out.im.WritePPM(p); err != nil {
				return res, err
			}
			res.Paths = append(res.Paths, p)
		}
	}
	return res, nil
}

// cornersByDistance orders the simple-root corners by distance to (p0, p1).
func cornersByDistance(corners [][2]int, p0, p1 float64) [][2]int {
	out := make([][2]int, len(corners))
	copy(out, corners)
	d := func(c [2]int) float64 {
		dx := p0 - float64(c[0])
		dy := p1 - float64(c[1])
		return dx*dx + dy*dy
	}
	sort.Slice(out, func(a, b int) bool { return d(out[a]) < d(out[b]) })
	return out
}

// findQuadRoots locates the real roots of the Equation-2 instance by damped
// Newton from a deterministic grid of starts, deduplicated and certified.
func findQuadRoots(sys nonlin.System) [][2]float64 {
	var roots [][2]float64
	f := make([]float64, 2)
	for _, s0 := range []float64{-2.5, -1.5, -0.5, 0.5, 1.5, 2.5} {
		for _, s1 := range []float64{-2.5, -1.5, -0.5, 0.5, 1.5, 2.5} {
			r, err := nonlin.Newton(nil, sys, []float64{s0, s1}, nonlin.NewtonOptions{Tol: 1e-12, AutoDamp: true, MaxIter: 300})
			if err != nil || !r.Converged {
				continue
			}
			if sys.Eval(r.U, f) != nil || la.Norm2(f) > 1e-9 {
				continue
			}
			dup := false
			for _, e := range roots {
				if math.Hypot(r.U[0]-e[0], r.U[1]-e[1]) < 1e-6 {
					dup = true
					break
				}
			}
			if !dup {
				roots = append(roots, [2]float64{r.U[0], r.U[1]})
			}
		}
	}
	return roots
}

// String summarises the panels.
func (r Fig3Result) String() string {
	var b strings.Builder
	b.WriteString(header("Figure 3: Equation 2 on the chip — plain continuous Newton vs homotopy"))
	fmt.Fprintf(&b, "grid: %d×%d initial conditions on [−2,2]²\n", r.Pixels, r.Pixels)
	fmt.Fprintf(&b, "distinct roots reached:                 %d\n", len(r.Roots))
	total := r.Pixels * r.Pixels
	fmt.Fprintf(&b, "plain Newton wrong/non-settling pixels: %d of %d (%.1f%%)\n",
		r.PlainWrong, total, 100*float64(r.PlainWrong)/float64(total))
	fmt.Fprintf(&b, "homotopy wrong pixels:                  %d of %d (%.1f%%)\n",
		r.HomotopyWrong, total, 100*float64(r.HomotopyWrong)/float64(total))
	for _, p := range r.Paths {
		fmt.Fprintf(&b, "wrote %s\n", p)
	}
	return b.String()
}
