package exp

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"hybridpde/internal/analog"
	"hybridpde/internal/core"
	"hybridpde/internal/stats"
)

// Fig9Size is one problem-size column of Figure 9.
type Fig9Size struct {
	GridN  int
	Trials int
	Solved int
	// Baseline: damped Newton offloading to the GPU sparse-QR kernel.
	BaselineMeanS float64
	BaselineMeanJ float64
	// Analog seeding stage (direct or via red-black nonlinear
	// Gauss-Seidel decomposition for the oversize problem).
	AnalogMeanS float64
	AnalogMeanJ float64
	Decomposed  bool
	// Seeded digital polish on the GPU.
	SeededMeanS float64
	SeededMeanJ float64
	// Ratios the paper headlines.
	TimeReduction   float64
	EnergyReduction float64
}

// Fig9Result reproduces Figure 9: time and energy at Re = 2.0 for the GPU
// baseline versus the analog-seeded GPU solver, at 16×16 and 32×32 (the
// latter decomposed onto the 16×16 accelerator with red-black nonlinear
// Gauss-Seidel). Paper headline: 5.7× time and 11.6× energy reduction at
// 32×32.
type Fig9Result struct {
	Re    float64
	Sizes []Fig9Size
}

// Fig9 runs the GPU-scale comparison.
func Fig9(ctx context.Context, cfg Config) (Fig9Result, error) {
	res := Fig9Result{Re: 2.0}
	sizes := pick(cfg, []int{16, 32}, []int{4, 8})
	accGrid := pick(cfg, 16, 4) // accelerator capacity grid (Table 4 limit)
	trials := pick(cfg, 4, 2)
	// Same amplitude calibration as Figure 8 (see fig8.go): Re = 2.0 with
	// ±2.1 fields reproduces the paper's marginal-convergence regime.
	const bound = 2.1
	acc, err := analog.NewScaled(accGrid, cfg.Seed)
	if err != nil {
		return res, err
	}
	seeder := core.AnalogSeeder(acc)
	for _, n := range sizes {
		sz := Fig9Size{GridN: n, Trials: trials, Decomposed: n > accGrid}
		var bt, bj, at, aj, st, sj []float64
		for t := 0; t < trials; t++ {
			rng := cfg.rng(int64(9000 + 10*n + t))
			rng2 := rand.New(rand.NewSource(rng.Int63()))
			b, _, u0, err := plantedBurgers(n, res.Re, bound, rng2)
			if err != nil {
				return res, err
			}
			opts := core.Options{Perf: core.PerfGPU, InitialGuess: u0, Seeder: seeder}
			opts.Analog.DynamicRange = 1.5 * bound
			seeded, errS := core.Solve(ctx, b, opts)
			optsCold := opts
			optsCold.SkipAnalog = true
			cold, errC := core.Solve(ctx, b, optsCold)
			if errS != nil || errC != nil {
				continue
			}
			bt = append(bt, cold.DigitalSeconds)
			bj = append(bj, cold.DigitalEnergyJ)
			at = append(at, seeded.AnalogSeconds)
			aj = append(aj, seeded.AnalogEnergyJ)
			st = append(st, seeded.DigitalSeconds)
			sj = append(sj, seeded.DigitalEnergyJ)
			sz.Solved++
		}
		sz.BaselineMeanS = stats.Mean(bt)
		sz.BaselineMeanJ = stats.Mean(bj)
		sz.AnalogMeanS = stats.Mean(at)
		sz.AnalogMeanJ = stats.Mean(aj)
		sz.SeededMeanS = stats.Mean(st)
		sz.SeededMeanJ = stats.Mean(sj)
		if tot := sz.AnalogMeanS + sz.SeededMeanS; tot > 0 {
			sz.TimeReduction = sz.BaselineMeanS / tot
		}
		if tot := sz.AnalogMeanJ + sz.SeededMeanJ; tot > 0 {
			sz.EnergyReduction = sz.BaselineMeanJ / tot
		}
		res.Sizes = append(res.Sizes, sz)
	}
	return res, nil
}

// String renders both panels of Figure 9.
func (r Fig9Result) String() string {
	var b strings.Builder
	b.WriteString(header("Figure 9: time and energy at GPU scale (Re = 2.0)"))
	fmt.Fprintf(&b, "%-8s %8s %6s %14s %14s %14s %11s\n",
		"size", "solved", "decomp", "baseline", "analog seed", "seeded digital", "reduction")
	for _, s := range r.Sizes {
		fmt.Fprintf(&b, "%2d×%-5d %5d/%-2d %6v %12.4f s %12.3g s %12.4f s %9.1f×\n",
			s.GridN, s.GridN, s.Solved, s.Trials, s.Decomposed,
			s.BaselineMeanS, s.AnalogMeanS, s.SeededMeanS, s.TimeReduction)
		fmt.Fprintf(&b, "%-8s %8s %6s %12.4f J %12.3g J %12.4f J %9.1f×\n",
			"", "", "", s.BaselineMeanJ, s.AnalogMeanJ, s.SeededMeanJ, s.EnergyReduction)
	}
	b.WriteString("paper (32×32): baseline 2.75 s / 194.2 J, seeded 0.48 s / 16.7 J → 5.7× time, 11.6× energy\n")
	return b.String()
}
