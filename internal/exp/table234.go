package exp

import (
	"context"
	"fmt"
	"strings"

	"hybridpde/internal/analog"
	"hybridpde/internal/pde"
)

// Table2Result reproduces Table 2: the effect of the Reynolds number on the
// character of the Burgers/Navier-Stokes equations, measured on actual
// operator magnitudes instead of asserted qualitatively.
type Table2Result struct {
	Rows []pde.Character
}

// Table2 measures operator balance across a Reynolds sweep on a reference
// random field.
func Table2(ctx context.Context, cfg Config) (Table2Result, error) {
	var out Table2Result
	n := pick(cfg, 8, 4)
	for _, re := range []float64{0.001, 0.01, 0.1, 1, 10, 100} {
		rng := cfg.rng(2)
		b, err := pde.RandomBurgers(n, re, 2.0, rng)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, pde.CharacterFor(b))
	}
	return out, nil
}

// String renders the table.
func (r Table2Result) String() string {
	var b strings.Builder
	b.WriteString(header("Table 2: effect of Reynolds number on PDE character"))
	fmt.Fprintf(&b, "%-10s %-10s %-10s %-12s %-12s %-44s %s\n",
		"Re", "|advect|", "|diffuse|", "viscosity", "diffusion", "dominant character", "nonlinearity")
	for _, c := range r.Rows {
		fmt.Fprintf(&b, "%-10.3g %-10.3g %-10.3g %-12s %-12s %-44s %s\n",
			c.Re, c.AdvectiveMagnitude, c.DiffusiveMagnitude,
			c.ViscosityLabel, c.DiffusionLabel, c.Dominant, c.Nonlinearity)
	}
	return b.String()
}

// Table3Result reproduces Table 3: per-variable analog component budget.
type Table3Result struct {
	Budget analog.ComponentBudget
}

// Table3 returns the encoded component budget (static data validated
// against the tile inventory by the analog package's tests).
func Table3(_ context.Context, _ Config) Table3Result {
	return Table3Result{Budget: analog.PrototypeBudget}
}

// String renders the component-use table.
func (r Table3Result) String() string {
	var b strings.Builder
	b.WriteString(header("Table 3: analog chip component use per PDE variable"))
	blocks := []struct {
		name string
		blk  analog.BlockBudget
	}{
		{"nonlinear function", r.Budget.NonlinearFunction},
		{"Jacobian matrix", r.Budget.JacobianMatrix},
		{"quotient feedback loop", r.Budget.QuotientLoop},
		{"Newton method feedback loop", r.Budget.NewtonLoop},
		{"total", r.Budget.Totals()},
	}
	fmt.Fprintf(&b, "%-28s %10s %7s %10s %5s %10s %11s %10s %10s\n",
		"block", "integrator", "fanout", "multiplier", "DAC", "tile input", "tile output", "area mm²", "power µW")
	for _, blk := range blocks {
		fmt.Fprintf(&b, "%-28s %10d %7d %10d %5d %10d %11d %10.2f %10.0f\n",
			blk.name, blk.blk.Integrator, blk.blk.Fanout, blk.blk.Multiplier,
			blk.blk.DAC, blk.blk.TileInput, blk.blk.TileOutput, blk.blk.AreaMM2, blk.blk.PowerUW)
	}
	return b.String()
}

// Table4Result reproduces Table 4: the area/power ladder of scaled-up
// accelerators.
type Table4Result struct {
	Rows []analog.ScaleModel
}

// Table4 evaluates the scaling model at the paper's design points.
func Table4(_ context.Context, _ Config) (Table4Result, error) {
	var out Table4Result
	for _, n := range []int{1, 2, 4, 8, 16} {
		m, err := analog.ScaleModelFor(n)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, m)
	}
	return out, nil
}

// String renders the ladder with the paper's reference values.
func (r Table4Result) String() string {
	paper := map[int][2]float64{
		1: {1.38, 1.53}, 2: {5.50, 6.10}, 4: {22.02, 24.42},
		8: {88.06, 97.66}, 16: {352.36, 390.66},
	}
	var b strings.Builder
	b.WriteString(header("Table 4: area and power of scaled-up analog accelerators"))
	fmt.Fprintf(&b, "%-12s %10s %12s %12s %14s %14s\n",
		"solver size", "variables", "area mm²", "power mW", "paper area", "paper power")
	for _, m := range r.Rows {
		ref := paper[m.GridN]
		fmt.Fprintf(&b, "%2d × %-7d %10d %12.2f %12.2f %14.2f %14.2f\n",
			m.GridN, m.GridN, m.Variables, m.AreaMM2, m.PowerMW, ref[0], ref[1])
	}
	return b.String()
}
