package exp

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"hybridpde/internal/analog"
	"hybridpde/internal/core"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/pde"
	"hybridpde/internal/perfmodel"
	"hybridpde/internal/stats"
)

// plantedBurgers builds a random Burgers step problem with a planted
// (certified-solvable) root and a random cold-start initial condition —
// the evaluation protocol of §6.1.
func plantedBurgers(n int, re, bound float64, rng *rand.Rand) (b *pde.Burgers, root, u0 []float64, err error) {
	b, err = pde.RandomBurgers(n, re, bound, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	root = make([]float64, b.Dim())
	for i := range root {
		root[i] = bound * (2*rng.Float64() - 1)
	}
	if err := b.SetRHSForRoot(root); err != nil {
		return nil, nil, nil, err
	}
	u0 = make([]float64, b.Dim())
	for i := range u0 {
		u0[i] = bound * (2*rng.Float64() - 1)
	}
	return b, root, u0, nil
}

// Fig7Point is one (grid, Re) cell of Figure 7.
type Fig7Point struct {
	GridN        int
	Re           float64
	Trials       int
	Solved       int     // trials where both solvers reached equal accuracy
	DigitalMeanS float64 // mean CPU-model time to 5.38 % accuracy
	AnalogMeanS  float64 // mean analog settle time
}

// Fig7Result reproduces Figure 7: time-to-convergence of the digital
// baseline and the analog accelerator at equal (chip-level, 5.38 % RMS)
// accuracy, across grid sizes and Reynolds numbers. The paper's shape:
// digital time grows with grid size and spikes at high Re; analog time
// stays roughly flat around 10⁻⁵–10⁻⁴ s; the crossover sits near the 4×4
// grid.
type Fig7Result struct {
	Points []Fig7Point
	// TargetRMS is the equal-accuracy threshold (the measured chip RMS).
	TargetRMS float64
}

// Fig7 runs the grid×Re sweep.
func Fig7(ctx context.Context, cfg Config) (Fig7Result, error) {
	res := Fig7Result{TargetRMS: 0.0538}
	grids := pick(cfg, []int{2, 4, 8, 16}, []int{2, 4})
	reValues := pick(cfg,
		[]float64{0.001, 0.004, 0.016, 0.063, 0.25, 1.0, 2.0, 4.0},
		[]float64{0.25, 2.0})
	trials := pick(cfg, 4, 2)
	const bound = 3.0
	for _, n := range grids {
		acc, err := analog.NewScaled(n, cfg.Seed)
		if err != nil {
			return res, err
		}
		for _, re := range reValues {
			pt := Fig7Point{GridN: n, Re: re, Trials: trials}
			var digTimes, anaTimes []float64
			for t := 0; t < trials; t++ {
				rng := cfg.rng(int64(7000 + 100*n + t))
				rng2 := rand.New(rand.NewSource(rng.Int63() + int64(1e6*re)))
				b, root, u0, err := plantedBurgers(n, re, bound, rng2)
				if err != nil {
					return res, err
				}
				// Equal-accuracy digital run (CPU baseline protocol).
				dig, derr := core.DigitalToAccuracy(ctx, b, u0, root, res.TargetRMS, bound)
				if derr != nil {
					continue // the paper's sparse data points at high Re
				}
				digTimes = append(digTimes, perfmodel.CPUTime(nonlin.Result{
					Iterations: dig.Iterations,
					TotalIters: dig.TotalIters,
					FactorOps:  dig.FactorOps,
				}, b.Dim()))

				// Analog run from the same start.
				sol, aerr := acc.SolveSparse(ctx, b, u0, analog.SolveOptions{
					DynamicRange: 1.5 * bound,
				})
				if aerr != nil || !sol.Converged {
					continue
				}
				// Equal-accuracy check: the chip answer must be within the
				// target RMS of the certified root (it is, by construction
				// of the error model, for solvable problems).
				if stats.RMSError(sol.U, root, 1.5*bound) > 3*res.TargetRMS {
					continue
				}
				anaTimes = append(anaTimes, sol.SettleSeconds)
				pt.Solved++
			}
			pt.DigitalMeanS = stats.Mean(digTimes)
			pt.AnalogMeanS = stats.Mean(anaTimes)
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// String renders the four panels as rows.
func (r Fig7Result) String() string {
	var b strings.Builder
	b.WriteString(header("Figure 7: time to equal-accuracy convergence, digital vs analog"))
	fmt.Fprintf(&b, "equal-accuracy threshold: %.2f%% RMS (the measured chip accuracy)\n", 100*r.TargetRMS)
	fmt.Fprintf(&b, "%-6s %-10s %8s %14s %14s %10s\n", "grid", "Re", "solved", "digital s", "analog s", "speedup")
	for _, p := range r.Points {
		speed := 0.0
		if p.AnalogMeanS > 0 {
			speed = p.DigitalMeanS / p.AnalogMeanS
		}
		fmt.Fprintf(&b, "%2d×%-3d %-10.3g %5d/%-2d %14.3g %14.3g %9.1f×\n",
			p.GridN, p.GridN, p.Re, p.Solved, p.Trials, p.DigitalMeanS, p.AnalogMeanS, speed)
	}
	return b.String()
}
