package exp

import (
	"context"
	"fmt"
	"strings"

	"hybridpde/internal/pde"
)

// Table1Row pairs a measured workload profile with the paper's reference
// share for the same class of solver.
type Table1Row struct {
	Report        pde.WorkloadReport
	PaperFraction float64 // the paper's measured dominant-kernel share
}

// Table1Result reproduces Table 1: equation solving dominates structured
// PDE solvers and recedes for less structured discretisations.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 runs the four instrumented mini-apps. The absolute shares depend
// on this machine; the property the table demonstrates — finite-difference
// implicit solvers are dominated by the algebraic kernel, while finite
// volume/element assembly dilutes it — is machine-independent.
func Table1(_ context.Context, cfg Config) (Table1Result, error) {
	// Even the quick grid stays moderately large: the FD-vs-FV kernel
	// share ordering is an asymptotic property that tiny grids invert.
	n := pick(cfg, 48, 32)
	steps := pick(cfg, 6, 2)
	var r Table1Result
	for _, w := range []struct {
		run   func() (pde.WorkloadReport, error)
		paper float64
	}{
		{func() (pde.WorkloadReport, error) { return pde.RunBwavesLike(n, steps) }, 0.767 + 0.117},
		{func() (pde.WorkloadReport, error) { return pde.RunHartmannLike(n, 4*steps) }, 0.458},
		{func() (pde.WorkloadReport, error) { return pde.RunCavityLike(n, 4*steps) }, 0.131},
		{func() (pde.WorkloadReport, error) { return pde.RunCookLike(n/2, steps) }, 0.153},
	} {
		rep, err := w.run()
		if err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, Table1Row{Report: rep, PaperFraction: w.paper})
	}
	return r, nil
}

// String renders the table with paper references.
func (r Table1Result) String() string {
	var b strings.Builder
	b.WriteString(header("Table 1: dominant-kernel share of PDE solver runtime"))
	fmt.Fprintf(&b, "%-22s %-34s %-30s %9s %9s\n",
		"discipline", "problem", "dominant kernel", "measured", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %-34s %-30s %8.1f%% %8.1f%%\n",
			row.Report.Discipline, row.Report.Problem, row.Report.DominantKernel,
			100*row.Report.KernelFraction, 100*row.PaperFraction)
	}
	b.WriteString("\nper-workload section profiles:\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "-- %s\n%s", row.Report.Problem, row.Report.Profile.String())
	}
	return b.String()
}
