package exp

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"hybridpde/internal/analog"
	"hybridpde/internal/core"
	"hybridpde/internal/stats"
)

// Fig8Point is one Reynolds-number cell of Figure 8.
type Fig8Point struct {
	Re     float64
	Trials int
	Solved int
	// Baseline damped-Newton digital solver (CPU model), to full
	// double-precision accuracy.
	BaselineMeanS float64
	BaselineStdS  float64
	// Analog-seeded digital solver.
	SeededMeanS float64
	SeededStdS  float64
	// Mean damping parameter the baseline ended up needing.
	BaselineDamping float64
}

// Fig8Result reproduces Figure 8: solution time vs Reynolds number for the
// baseline and analog-seeded digital solvers at full precision. The paper's
// shape: the baseline is flat (~0.07–0.15 s) until Re approaches 2.0, where
// forced damping spikes it to 0.81 s with large variance, while the seeded
// solver stays flat (~0.05–0.08 s) throughout.
type Fig8Result struct {
	GridN  int
	Points []Fig8Point
}

// Fig8 runs the Reynolds sweep on the 16×16 problem (8×8 in quick mode).
func Fig8(ctx context.Context, cfg Config) (Fig8Result, error) {
	n := pick(cfg, 16, 4)
	trials := pick(cfg, 16, 2)
	reValues := pick(cfg,
		[]float64{0.01, 0.02, 0.03, 0.06, 0.13, 0.25, 0.50, 1.00, 2.00},
		[]float64{0.25, 2.00})
	res := Fig8Result{GridN: n}
	acc, err := analog.NewScaled(n, cfg.Seed)
	if err != nil {
		return res, err
	}
	seeder := core.AnalogSeeder(acc)
	// Field amplitude calibration: the unit-coefficient stencil (Δt = Δx
	// = Δy eliminated, §4.4) has a stronger effective nonlinearity per
	// unit Re than the paper's discretisation. ±2.1 places the Re = 2.0
	// endpoint in the same marginal-convergence regime the paper
	// describes there ("Newton's method may have poor convergence"):
	// the cold baseline needs damping ≈ 0.25–0.5 while the analog-seeded
	// solver still converges undamped.
	const bound = 2.1
	for _, re := range reValues {
		pt := Fig8Point{Re: re, Trials: trials}
		var base, seeded, damps []float64
		for t := 0; t < trials; t++ {
			rng := cfg.rng(int64(8000 + t))
			rng2 := rand.New(rand.NewSource(rng.Int63() + int64(1e6*re)))
			b, _, u0, err := plantedBurgers(n, re, bound, rng2)
			if err != nil {
				return res, err
			}
			opts := core.Options{Perf: core.PerfCPU, InitialGuess: u0, Seeder: seeder}
			opts.Analog.DynamicRange = 1.5 * bound
			repSeeded, errS := core.Solve(ctx, b, opts)
			optsCold := opts
			optsCold.SkipAnalog = true
			repCold, errC := core.Solve(ctx, b, optsCold)
			if errS != nil || errC != nil {
				continue // count only mutually solvable draws, like the paper's 16 trials
			}
			base = append(base, repCold.DigitalSeconds)
			seeded = append(seeded, repSeeded.TotalSeconds)
			damps = append(damps, repCold.Digital.DampingUsed)
			pt.Solved++
		}
		pt.BaselineMeanS = stats.Mean(base)
		pt.BaselineStdS = stats.StdDev(base)
		pt.SeededMeanS = stats.Mean(seeded)
		pt.SeededStdS = stats.StdDev(seeded)
		pt.BaselineDamping = stats.Mean(damps)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// String renders the series.
func (r Fig8Result) String() string {
	var b strings.Builder
	b.WriteString(header("Figure 8: solution time vs Reynolds number, baseline vs analog-seeded digital"))
	fmt.Fprintf(&b, "grid %d×%d, full double-precision accuracy, CPU baseline pricing\n", r.GridN, r.GridN)
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %12s %12s %10s %9s\n",
		"Re", "solved", "baseline s", "±σ", "seeded s", "±σ", "damping", "speedup")
	for _, p := range r.Points {
		speed := 0.0
		if p.SeededMeanS > 0 {
			speed = p.BaselineMeanS / p.SeededMeanS
		}
		fmt.Fprintf(&b, "%-8.2f %5d/%-2d %12.4f %12.4f %12.4f %12.4f %10.3f %8.1f×\n",
			p.Re, p.Solved, p.Trials, p.BaselineMeanS, p.BaselineStdS,
			p.SeededMeanS, p.SeededStdS, p.BaselineDamping, speed)
	}
	return b.String()
}
