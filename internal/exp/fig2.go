package exp

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"strings"

	"hybridpde/internal/analog"
	"hybridpde/internal/img"
	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
)

// cubicSystem returns z³ − 1 = 0 as a 2-D real system with degree 3, the
// tutorial problem of §2 (Equation 1).
func cubicSystem() nonlin.System {
	return analog.PolySystem{
		Degree: 3,
		System: nonlin.FuncSystem{
			N: 2,
			F: func(u, f []float64) error {
				re, im := u[0], u[1]
				f[0] = re*re*re - 3*re*im*im - 1
				f[1] = 3*re*re*im - im*im*im
				return nil
			},
			J: func(u []float64, jac *la.Dense) error {
				re, im := u[0], u[1]
				a := 3 * (re*re - im*im)
				b := 6 * re * im
				jac.Set(0, 0, a)
				jac.Set(0, 1, -b)
				jac.Set(1, 0, b)
				jac.Set(1, 1, a)
				return nil
			},
		},
	}
}

var cubicRootList = [3][2]float64{
	{1, 0},
	{-0.5, math.Sqrt(3) / 2},
	{-0.5, -math.Sqrt(3) / 2},
}

// classifyCubic maps a settled state to a root index, or −1 when it is not
// near any root (the "wrong result" outcome).
func classifyCubic(u []float64, tol float64) int {
	for k, r := range cubicRootList {
		if math.Hypot(u[0]-r[0], u[1]-r[1]) <= tol {
			return k
		}
	}
	return -1
}

// Fig2Result reproduces Figure 2: the convergence basins of the continuous
// Newton method on the analog chip, compared with the fractal basins of the
// classical digital Newton method over the same initial-condition plane.
type Fig2Result struct {
	Pixels int
	// Basin images over the initial-condition plane [−2,2]².
	Analog  *img.Image
	Digital *img.Image
	// Fragmentation metrics (share of neighbouring pixel pairs that
	// disagree); the paper's claim is AnalogBoundary ≪ DigitalBoundary.
	AnalogBoundary  float64
	DigitalBoundary float64
	// Root coverage: every root must be reachable on the chip.
	AnalogRootsFound int
	// Failures counts chip runs that settled nowhere.
	Failures int
	// Written image paths, when Config.OutDir was set.
	Paths []string
}

// Fig2 sweeps the 2-D plane of initial conditions, solving Equation 1 on
// the chip model (continuous Newton) and with classical digital Newton.
func Fig2(ctx context.Context, cfg Config) (Fig2Result, error) {
	pixels := pick(cfg, 256, 24)
	res := Fig2Result{Pixels: pixels}
	res.Analog = img.New(pixels, pixels)
	res.Digital = img.New(pixels, pixels)
	acc := analog.NewPrototype(cfg.Seed)
	sys := cubicSystem()
	rootsSeen := map[int]bool{}
	const span = 2.0
	for py := 0; py < pixels; py++ {
		imag := span - 2*span*float64(py)/float64(pixels-1) // top = +2i
		for px := 0; px < pixels; px++ {
			real := -span + 2*span*float64(px)/float64(pixels-1)
			u0 := []float64{real, imag}

			sol, err := acc.Solve(sys, u0, analog.SolveOptions{DynamicRange: span, TMaxTau: 120})
			var aCol img.Color
			switch {
			case err != nil || !sol.Converged:
				aCol = img.NoConverge
				res.Failures++
			default:
				k := classifyCubic(sol.U, 0.45)
				if k < 0 {
					aCol = img.WrongPink
					res.Failures++
				} else {
					rootsSeen[k] = true
					aCol = img.RootPalette(k)
				}
			}
			res.Analog.Set(px, py, aCol)

			dres, derr := nonlin.Newton(ctx, sys, u0, nonlin.NewtonOptions{Tol: 1e-10, MaxIter: 60})
			var dCol img.Color
			if derr != nil || !dres.Converged {
				dCol = img.NoConverge
			} else if k := classifyCubic(dres.U, 1e-3); k >= 0 {
				dCol = img.RootPalette(k)
			} else {
				dCol = img.WrongPink
			}
			res.Digital.Set(px, py, dCol)
		}
	}
	res.AnalogRootsFound = len(rootsSeen)
	res.AnalogBoundary = res.Analog.BoundaryFraction()
	res.DigitalBoundary = res.Digital.BoundaryFraction()
	if cfg.OutDir != "" {
		for _, out := range []struct {
			name string
			im   *img.Image
		}{{"fig2_analog_continuous_newton.ppm", res.Analog}, {"fig2_digital_classical_newton.ppm", res.Digital}} {
			p := filepath.Join(cfg.OutDir, out.name)
			if err := out.im.WritePPM(p); err != nil {
				return res, err
			}
			res.Paths = append(res.Paths, p)
		}
	}
	return res, nil
}

// String summarises the basin comparison.
func (r Fig2Result) String() string {
	var b strings.Builder
	b.WriteString(header("Figure 2: continuous Newton basins for z³ = 1 (chip) vs classical Newton"))
	fmt.Fprintf(&b, "grid: %d×%d initial conditions on [−2,2]²\n", r.Pixels, r.Pixels)
	fmt.Fprintf(&b, "roots reachable on chip:        %d of 3\n", r.AnalogRootsFound)
	fmt.Fprintf(&b, "chip basin boundary fraction:   %.4f (contiguous regions)\n", r.AnalogBoundary)
	fmt.Fprintf(&b, "digital basin boundary fraction:%.4f (fractal interleaving)\n", r.DigitalBoundary)
	fmt.Fprintf(&b, "chip non-settling/wrong pixels: %d\n", r.Failures)
	for _, p := range r.Paths {
		fmt.Fprintf(&b, "wrote %s\n", p)
	}
	return b.String()
}
