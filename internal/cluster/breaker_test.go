package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridpde/internal/serve"
)

// --- breaker state machine, pure unit level ---

func TestBreakerOpensAfterThreshold(t *testing.T) {
	bs := newBreakerSet([]string{"b"}, 2, 2, 8, newGwMetrics())
	bs.record("b", false)
	if got := bs.state("b"); got != breakerClosed {
		t.Fatalf("after 1 failure: state %v, want closed", got)
	}
	bs.record("b", false)
	if got := bs.state("b"); got != breakerOpen {
		t.Fatalf("after threshold failures: state %v, want open", got)
	}
	if bs.allow("b") {
		t.Fatal("open breaker admitted a dispatch")
	}
}

func TestBreakerSuccessResetsFailStreak(t *testing.T) {
	bs := newBreakerSet([]string{"b"}, 2, 2, 8, newGwMetrics())
	bs.record("b", false)
	bs.record("b", true)
	bs.record("b", false)
	if got := bs.state("b"); got != breakerClosed {
		t.Fatalf("interleaved success did not reset the streak: state %v", got)
	}
}

func TestBreakerHalfOpenSingleTrial(t *testing.T) {
	bs := newBreakerSet([]string{"b"}, 1, 2, 8, newGwMetrics())
	bs.record("b", false)
	bs.tick()
	if got := bs.state("b"); got != breakerOpen {
		t.Fatalf("one tick of two: state %v, want still open", got)
	}
	bs.tick()
	if got := bs.state("b"); got != breakerHalfOpen {
		t.Fatalf("after openTicks sweeps: state %v, want half-open", got)
	}
	if !bs.allow("b") {
		t.Fatal("half-open breaker refused the first trial")
	}
	if bs.allow("b") {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	bs.record("b", true)
	if got := bs.state("b"); got != breakerClosed {
		t.Fatalf("successful trial: state %v, want closed", got)
	}
	if !bs.allow("b") {
		t.Fatal("closed breaker refused a dispatch")
	}
}

func TestBreakerReopenDoublesWindow(t *testing.T) {
	bs := newBreakerSet([]string{"b"}, 1, 1, 4, newGwMetrics())
	fail := func() {
		t.Helper()
		bs.record("b", false)
		if got := bs.state("b"); got != breakerOpen {
			t.Fatalf("state %v, want open", got)
		}
	}
	toHalfOpen := func(wantTicks int) {
		t.Helper()
		for i := 0; i < wantTicks; i++ {
			if got := bs.state("b"); got != breakerOpen {
				t.Fatalf("tick %d/%d: state %v, want still open", i, wantTicks, got)
			}
			bs.tick()
		}
		if got := bs.state("b"); got != breakerHalfOpen {
			t.Fatalf("after %d ticks: state %v, want half-open", wantTicks, got)
		}
		if !bs.allow("b") {
			t.Fatal("half-open trial refused")
		}
	}
	fail()        // open, window 1
	toHalfOpen(1) //
	fail()        // reopen, window 2
	toHalfOpen(2) //
	fail()        // reopen, window 4 (cap)
	toHalfOpen(4) //
	fail()        // reopen, window stays 4
	toHalfOpen(4) //
	bs.record("b", true)
	// Closing resets the window to base.
	bs.record("b", false)
	toHalfOpen(1)
}

// --- retry budget, pure unit level ---

func TestRetryBudgetStartsFullAndRefills(t *testing.T) {
	rb := newRetryBudget(0.5, 2)
	if !rb.withdraw() || !rb.withdraw() {
		t.Fatal("budget did not start at max")
	}
	if rb.withdraw() {
		t.Fatal("withdraw succeeded on an empty bucket")
	}
	rb.deposit()
	if rb.withdraw() {
		t.Fatal("half a token withdrew")
	}
	rb.deposit()
	if !rb.withdraw() {
		t.Fatal("two deposits at ratio 0.5 did not buy one retry")
	}
}

func TestRetryBudgetZeroRatioNeverRefills(t *testing.T) {
	rb := newRetryBudget(0, 1)
	if !rb.withdraw() {
		t.Fatal("initial token missing")
	}
	for i := 0; i < 10; i++ {
		rb.deposit()
	}
	if rb.withdraw() {
		t.Fatal("zero-ratio budget refilled")
	}
}

// --- gateway-level behaviour ---

// TestGatewayBreakerOpensAndRecloses: a draining backend trips its breaker
// from probe evidence alone, and a restarted one walks open → half-open →
// closed without live traffic having to gamble on it.
func TestGatewayBreakerOpensAndRecloses(t *testing.T) {
	f := newTestFleet(t, 2, Config{
		ProbeInterval:     20 * time.Millisecond,
		BreakerThreshold:  1,
		BreakerOpenProbes: 1,
	})
	url := f.backends[1].URL

	f.servers[1].BeginDrain()
	deadline := time.Now().Add(5 * time.Second)
	for f.gw.breakers.state(url) == breakerClosed {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened for the draining backend")
		}
		time.Sleep(5 * time.Millisecond)
	}

	fresh := serve.NewServer(serve.Config{Workers: 1, QueueDepth: 16})
	f.handlers[1].v.Store(fresh.Handler())
	for f.gw.breakers.state(url) != breakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never reclosed after restart (state %v)", f.gw.breakers.state(url))
		}
		time.Sleep(5 * time.Millisecond)
	}

	page := scrape(t, f.gwServer.URL)
	for _, want := range []string{`to="open"`, `to="half_open"`, `to="closed"`} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics missing breaker transition %s:\n%s", want, page)
		}
	}
}

// TestGatewayRetryBudgetDenied: with refill disabled and a one-token
// bucket, the first failover succeeds and the second is refused with 429
// backpressure — never a 5xx.
func TestGatewayRetryBudgetDenied(t *testing.T) {
	f := newTestFleet(t, 2, Config{
		ProbeInterval:    time.Hour, // dispatch path only
		EvictAfter:       1 << 30,   // keep the dead backend "healthy" so every request retries it
		BreakerThreshold: 1 << 30,   // keep its breaker closed for the same reason
		RetryBudgetRatio: -1,        // no refill
		RetryBudgetMax:   1,
	})
	req := serve.Request{Problem: serve.KindBurgers2D, N: 5}
	f.backends[f.ownerIndex(t, req)].Close()

	code, _, err := postGwSolve(f.gwServer.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK {
		t.Fatalf("first request after kill: status %d, want 200 via failover", code)
	}

	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.gwServer.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429 budget denial", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("budget denial carried no Retry-After")
	}

	page := scrape(t, f.gwServer.URL)
	for _, want := range []string{
		"pdegw_retry_budget_spent_total 1",
		"pdegw_retry_budget_denied_total 1",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics missing %q:\n%s", want, page)
		}
	}
}

// TestGatewayForwardsDeadlineBudget: the gateway tells each backend how
// much of the client's deadline the attempt has left.
func TestGatewayForwardsDeadlineBudget(t *testing.T) {
	s := serve.NewServer(serve.Config{Workers: 1, QueueDepth: 16})
	var got atomic.Value
	inner := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/solve" {
			got.Store(r.Header.Get(serve.DeadlineBudgetHeader))
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	gw, err := New(Config{Backends: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	gws := httptest.NewServer(gw.Handler())
	t.Cleanup(gws.Close)

	code, _, err := postGwSolve(gws.URL, serve.Request{Problem: serve.KindBurgers2D, N: 5, DeadlineMillis: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	raw, _ := got.Load().(string)
	if raw == "" {
		t.Fatalf("backend saw no %s header", serve.DeadlineBudgetHeader)
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		t.Fatalf("unparseable budget %q: %v", raw, err)
	}
	if ms <= 0 || ms > 2000 {
		t.Fatalf("budget %d ms outside (0, 2000]", ms)
	}
}

// TestGatewayBatchAbandoned: a follower whose deadline expires inside the
// batch window leaves promptly, is counted, and its identity group is not
// dispatched upstream when nobody else wants the answer.
func TestGatewayBatchAbandoned(t *testing.T) {
	f := newTestFleet(t, 1, Config{BatchWindow: 400 * time.Millisecond, MaxBatch: 8})

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderCode int
	go func() {
		defer wg.Done()
		leaderCode, _, _ = postGwSolve(f.gwServer.URL, serve.Request{Problem: serve.KindBurgers2D, N: 5})
	}()
	time.Sleep(100 * time.Millisecond) // let the leader open the window

	// Same shape (joins the window), different Re (distinct identity), and
	// a deadline far shorter than the window's remainder.
	start := time.Now()
	code, _, _ := postGwSolve(f.gwServer.URL, serve.Request{
		Problem: serve.KindBurgers2D, N: 5, Re: 80, DeadlineMillis: 50,
	})
	waited := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("abandoning follower: status %d, want 504", code)
	}
	if waited > 250*time.Millisecond {
		t.Fatalf("follower held its slot %v — not cancelled promptly", waited)
	}
	wg.Wait()
	if leaderCode != http.StatusOK {
		t.Fatalf("leader: status %d", leaderCode)
	}

	page := scrape(t, f.gwServer.URL)
	if !strings.Contains(page, "pdegw_batch_abandoned_total 1") {
		t.Fatalf("abandoned follower not counted:\n%s", page)
	}
	// Only the leader's identity went upstream: the abandoned group's
	// dispatch was skipped entirely.
	routed := 0
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, "pdegw_backend_routed_total{") {
			n, _ := strconv.Atoi(line[strings.LastIndex(line, " ")+1:])
			routed += n
		}
	}
	if routed != 1 {
		t.Fatalf("backend_routed total = %d, want 1 (abandoned identity must not dispatch)", routed)
	}
}
