package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"

	"hybridpde/internal/cache"
	"hybridpde/internal/serve"
)

// handleStream is POST /v1/stream: the gateway's flush-through NDJSON
// proxy. The request is validated with the backends' own stream rules and
// routed by shape affinity exactly like a solve, but the batching and
// dedup planes are bypassed — a trajectory is stateful and long-lived, so
// coalescing identical streams would entangle client lifetimes for no
// cache benefit.
//
// Failover stops at the first byte: transport errors and failover-class
// statuses walk the ring only while nothing has been written to the
// client. Once a frame is relayed the stream is committed to one backend;
// a mid-trajectory failure then surfaces as a truncated stream (no summary
// line with "done":true), never as a silent restart that would replay
// frames the client already processed.
func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	if g.isDraining() {
		g.rejectJSON(w, http.StatusServiceUnavailable, "gateway is draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		g.rejectJSON(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	var req serve.Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		g.rejectJSON(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if err := serve.NormalizeStream(&req, g.cfg.MaxGridN, g.cfg.MaxSteps); err != nil {
		g.rejectJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	var kb cache.KeyBuilder
	shape := serve.ShapeKey(&req, &kb)

	release, ok := g.admit()
	if !ok {
		g.rejectJSON(w, http.StatusServiceUnavailable, "gateway is draining")
		return
	}
	defer release()

	// Same deadline rules as solves; the remaining budget is forwarded per
	// attempt so backends refuse streams the gateway has already abandoned.
	ctx, cancel := context.WithTimeout(r.Context(), g.timeout(&req))
	defer cancel()

	g.budget.deposit()
	attempts := 0
	lastErr := "no backend available"
	for _, url := range g.failoverOrder(shape) {
		if !g.breakers.allow(url) {
			continue
		}
		if attempts > 0 {
			if !g.budget.withdraw() {
				g.m.retryBudgetDenied.Inc()
				w.Header().Set("Retry-After", "1")
				g.rejectJSON(w, http.StatusTooManyRequests,
					"retry budget exhausted: backend failed and failover retries are capped")
				return
			}
			g.m.retryBudgetSpent.Inc()
			g.m.failovers.Inc()
			g.m.streamFailovers.Inc()
		}
		attempts++
		done, transient, errMsg := g.forwardStream(ctx, w, url, body)
		g.breakers.record(url, !transient)
		if !transient {
			if g.ms.markSuccess(url) {
				g.m.readds.Inc()
			}
		} else if g.ms.markFailure(url) {
			g.m.evictions.Inc()
			g.m.healthyBackends.Set(int64(g.ms.healthyCount()))
		}
		if done {
			return
		}
		lastErr = errMsg
		if ctx.Err() != nil {
			lastErr = ctx.Err().Error()
			break
		}
	}
	g.m.requests.With(strconv.Itoa(http.StatusBadGateway)).Inc()
	g.writeJSONBody(w, http.StatusBadGateway, errorBody("upstream dispatch failed: "+lastErr))
}

// forwardStream performs one upstream stream attempt. done=true means the
// client has been answered (successfully, with a relayed error status, or
// with a truncated committed stream) and the walk must stop; transient
// mirrors forward's failure classification and only matters when
// done=false — a failover-class outcome reached before the first byte.
func (g *Gateway) forwardStream(ctx context.Context, w http.ResponseWriter, url string, body []byte) (done, transient bool, errMsg string) {
	g.m.backendRouted.With(url).Inc()
	g.m.backendInflight.With(url).Inc()
	defer g.m.backendInflight.With(url).Dec()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/stream", bytes.NewReader(body))
	if err != nil {
		return false, true, err.Error()
	}
	req.Header.Set("Content-Type", "application/json")
	if d, ok := ctx.Deadline(); ok {
		ms := untilDeadline(d).Milliseconds()
		if ms <= 0 {
			g.m.requests.With(strconv.Itoa(http.StatusGatewayTimeout)).Inc()
			g.writeJSONBody(w, http.StatusGatewayTimeout, errorBody("deadline expired before dispatch"))
			return true, false, ""
		}
		req.Header.Set(serve.DeadlineBudgetHeader, strconv.FormatInt(ms, 10))
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.m.backendFailures.With(url).Inc()
		if ctx.Err() != nil {
			// The client's deadline, not the backend's failure.
			g.m.requests.With(strconv.Itoa(http.StatusGatewayTimeout)).Inc()
			g.writeJSONBody(w, http.StatusGatewayTimeout, errorBody("deadline expired before dispatch"))
			return true, false, ""
		}
		return false, true, err.Error()
	}
	defer resp.Body.Close()
	g.m.backendRequests.With(url, strconv.Itoa(resp.StatusCode)).Inc()

	switch resp.StatusCode {
	case http.StatusInternalServerError, http.StatusBadGateway, http.StatusServiceUnavailable:
		// Failover-class status: no byte has been written yet, walk on.
		g.m.backendFailures.With(url).Inc()
		io.Copy(io.Discard, io.LimitReader(resp.Body, g.cfg.MaxBodyBytes))
		return false, true, "backend answered " + resp.Status
	}
	if resp.StatusCode != http.StatusOK {
		// Non-stream rejection (400, 429, 504, ...): relay verbatim.
		payload, rerr := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBodyBytes))
		if rerr != nil {
			g.m.backendFailures.With(url).Inc()
			return false, true, rerr.Error()
		}
		g.m.requests.With(strconv.Itoa(resp.StatusCode)).Inc()
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		w.Write(payload)
		return true, false, ""
	}

	// 200: the stream is committed to this backend. Relay flush-on-write —
	// no whole-body buffering — counting frame lines as they pass.
	g.m.requests.With(strconv.Itoa(http.StatusOK)).Inc()
	g.m.streamsProxied.Inc()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			g.m.streamFrames.Add(uint64(bytes.Count(buf[:n], []byte{'\n'})))
			if _, werr := w.Write(buf[:n]); werr != nil {
				// Client hung up; the backend sees the upstream request
				// context die when this handler returns.
				g.m.streamAborts.Inc()
				return true, false, ""
			}
			if canFlush {
				flusher.Flush()
			}
		}
		if rerr == io.EOF {
			return true, false, ""
		}
		if rerr != nil {
			// Mid-trajectory upstream failure after commitment: the client
			// keeps the frames it got; the missing summary line marks the
			// truncation. Charged to the backend, but no failover — a
			// restart would replay frames.
			g.m.streamAborts.Inc()
			g.m.backendFailures.With(url).Inc()
			g.breakers.record(url, false)
			return true, false, ""
		}
	}
}
