package cluster

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// MemberState is a backend's position in the membership state machine.
//
//	healthy --(probe failure / dispatch failure / readiness 503)--> evicted
//	evicted --(successful probe after the current backoff)--------> healthy
//
// Eviction doubles the member's re-probe backoff up to BackoffMaxProbes;
// a successful re-add resets it. The consistent-hash ring itself never
// changes — an evicted member keeps its ring positions and is skipped by
// the failover walk, so its shapes come straight back to their warm caches
// on re-add instead of being redistributed twice.
type MemberState int

const (
	// StateHealthy members receive routed traffic.
	StateHealthy MemberState = iota
	// StateEvicted members are skipped by routing and probed on a
	// backoff schedule until they answer ready again.
	StateEvicted
)

// String renders the state for the /cluster endpoint and logs.
func (s MemberState) String() string {
	if s == StateHealthy {
		return "healthy"
	}
	return "evicted"
}

// BackendStats is the degradation signal scraped from a backend's own
// /metrics page: the per-rung ladder and solve-cache counters pdeserved
// already exports. The gateway re-exports them per backend (and the bench
// harness reads them as the per-backend cache-hit-rate evidence).
type BackendStats struct {
	DegradedTotal uint64 `json:"degraded_total"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheWarmHits uint64 `json:"cache_warm_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	LadderDigital uint64 `json:"ladder_served_digital"`
	Scraped       bool   `json:"scraped"`
}

// member is one backend's mutable membership record. All fields are
// guarded by membership.mu.
type member struct {
	url   string
	state MemberState
	// consecutiveFails counts probe/dispatch failures since the last
	// success; crossing the eviction threshold flips the state.
	consecutiveFails int
	// backoffProbes is how many probe intervals to wait before the next
	// re-add attempt; it doubles per failed re-add up to the cap.
	backoffProbes int
	// waitProbes counts down intervals until the next re-add probe.
	waitProbes int
	// evictions and readds account the state machine's transitions.
	evictions uint64
	readds    uint64
	stats     BackendStats
}

// membership tracks the health of a fixed backend set. The set itself is
// immutable (it mirrors the ring); only per-member state changes.
type membership struct {
	mu      sync.Mutex
	members map[string]*member
	// evictThreshold is how many consecutive failures evict a healthy
	// member; 1 means the first failure does.
	evictThreshold int
	backoffMax     int
}

func newMembership(urls []string, evictThreshold, backoffMax int) *membership {
	if evictThreshold < 1 {
		evictThreshold = 1
	}
	if backoffMax < 1 {
		backoffMax = 8
	}
	ms := &membership{
		members:        make(map[string]*member, len(urls)),
		evictThreshold: evictThreshold,
		backoffMax:     backoffMax,
	}
	for _, u := range urls {
		ms.members[u] = &member{url: u, state: StateHealthy, backoffProbes: 1}
	}
	return ms
}

// healthy reports whether a member currently receives routed traffic.
func (ms *membership) healthy(url string) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[url]
	return ok && m.state == StateHealthy
}

// healthyCount returns the number of members receiving traffic.
func (ms *membership) healthyCount() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	n := 0
	for _, m := range ms.members {
		if m.state == StateHealthy {
			n++
		}
	}
	return n
}

// markFailure records a probe or dispatch failure; it returns true when
// this failure evicted the member (the caller counts the transition).
func (ms *membership) markFailure(url string) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[url]
	if !ok || m.state != StateHealthy {
		return false
	}
	m.consecutiveFails++
	if m.consecutiveFails < ms.evictThreshold {
		return false
	}
	m.state = StateEvicted
	m.evictions++
	m.waitProbes = m.backoffProbes
	return true
}

// markSuccess records a successful probe or dispatch. For an evicted
// member a successful *probe* re-adds it (dispatches are never sent to
// evicted members, so only the prober calls this for them); it returns
// true when this success re-added the member.
func (ms *membership) markSuccess(url string) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[url]
	if !ok {
		return false
	}
	m.consecutiveFails = 0
	if m.state != StateEvicted {
		return false
	}
	m.state = StateHealthy
	m.backoffProbes = 1
	m.readds++
	return true
}

// dueForProbe decides, once per probe interval, whether a member should be
// probed this tick: healthy members always are; evicted members only when
// their backoff countdown reaches zero (the countdown doubles per failed
// re-add, bounded by backoffMax).
func (ms *membership) dueForProbe(url string) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[url]
	if !ok {
		return false
	}
	if m.state == StateHealthy {
		return true
	}
	if m.waitProbes > 0 {
		m.waitProbes--
		return false
	}
	// This re-add attempt is due; pre-arm the next backoff in case it
	// fails. markSuccess resets it on a successful re-add.
	m.backoffProbes *= 2
	if m.backoffProbes > ms.backoffMax {
		m.backoffProbes = ms.backoffMax
	}
	m.waitProbes = m.backoffProbes
	return true
}

// setStats stores the latest scraped backend counters.
func (ms *membership) setStats(url string, st BackendStats) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if m, ok := ms.members[url]; ok {
		m.stats = st
	}
}

// snapshot returns a copy of one member's record.
func (ms *membership) snapshot(url string) (member, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[url]
	if !ok {
		return member{}, false
	}
	return *m, true
}

// probeBackend checks one backend's readiness: GET /healthz must answer
// 200. Any transport error or non-200 — including the 503 a draining
// backend reports — counts as not ready.
func probeBackend(ctx context.Context, client *http.Client, url string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// scrapeBackend reads the degradation signal off a backend's /metrics
// page: ladder/cache counters whose movement tells the gateway (and the
// bench harness) how healthy the backend's solve pipeline is, beyond the
// binary readiness bit.
func scrapeBackend(ctx context.Context, client *http.Client, url string) (BackendStats, bool) {
	var st BackendStats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return st, false
	}
	resp, err := client.Do(req)
	if err != nil {
		return st, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return st, false
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, f := range []struct {
			prefix string
			dst    *uint64
		}{
			{"pdeserve_degraded_total ", &st.DegradedTotal},
			{"pdeserve_cache_hits_total ", &st.CacheHits},
			{"pdeserve_cache_warm_hits_total ", &st.CacheWarmHits},
			{"pdeserve_cache_misses_total ", &st.CacheMisses},
			{`pdeserve_ladder_served_total{rung="digital"} `, &st.LadderDigital},
		} {
			if v, ok := strings.CutPrefix(line, f.prefix); ok {
				if n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64); err == nil {
					*f.dst = n
				}
			}
		}
	}
	st.Scraped = sc.Err() == nil
	return st, st.Scraped
}
