// Package cluster is the distributed-serving layer of the hybrid
// pipeline: a consistent-hash ring that pins problem *shapes* to
// backends, health-checked membership with eviction and backoff re-add,
// and a same-shape request batcher — the pieces cmd/pdegw composes into a
// stdlib-only gateway in front of N pdeserved backends.
//
// The routing invariant the whole package serves: a pdeserved backend
// amortises its expensive per-shape work (Jacobian patterns, per-worker
// problem caches, the content-addressed solve cache) across requests that
// share a problem shape. Routing by shape keeps each backend's caches hot
// the way a single process's worker pool does; the ring makes that
// assignment deterministic, stable under membership churn, and identical
// across gateway processes.
package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hybridpde/internal/cache"
)

// DefaultVNodes is the virtual-node count per member: high enough that
// removing one member of a small fleet redistributes close to the ideal
// 1/N of the key space, low enough that ring construction stays trivial.
const DefaultVNodes = 64

// ringPoint is one virtual node: a hash position owned by a member.
type ringPoint struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring is a deterministic consistent-hash ring over a fixed member set.
// Construction sorts the member list, so rings built from the same set in
// any order — in any process, at any GOMAXPROCS — assign every key
// identically. The ring itself is immutable after construction; health is
// the membership layer's concern, applied by walking Successors.
type Ring struct {
	members []string
	points  []ringPoint
}

// NewRing builds a ring with vnodes virtual nodes per member (DefaultVNodes
// when vnodes <= 0). Member names must be non-empty and distinct.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
	}
	r := &Ring{members: sorted, points: make([]ringPoint, 0, len(sorted)*vnodes)}
	var kb cache.KeyBuilder
	for mi, m := range sorted {
		for v := 0; v < vnodes; v++ {
			kb.Reset()
			kb.Str(1, m)
			kb.I64(2, int64(v))
			r.points = append(r.points, ringPoint{hash: keyPoint(kb.Sum()), member: mi})
		}
	}
	// Ties (astronomically unlikely with 64-bit SHA-256 prefixes) break by
	// member index so the order is still total and deterministic.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// keyPoint maps a content-address digest onto the ring's 64-bit circle:
// the first 8 bytes of the SHA-256, big-endian. Deterministic across
// processes and architectures.
func keyPoint(k cache.Key) uint64 {
	return binary.BigEndian.Uint64(k[:8])
}

// Members returns the sorted member list (aliases internal storage; do not
// mutate).
func (r *Ring) Members() []string { return r.members }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// owner returns the index of the first ring point at or after h,
// wrapping.
func (r *Ring) owner(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Assign returns the member that owns key: the member of the first
// virtual node clockwise from the key's position.
func (r *Ring) Assign(key cache.Key) string {
	return r.members[r.points[r.owner(keyPoint(key))].member]
}

// Successors returns every member in ring order starting at key's owner:
// index 0 is Assign(key), the rest is the deterministic failover order a
// gateway walks when earlier members are unhealthy. Each member appears
// exactly once.
func (r *Ring) Successors(key cache.Key) []string {
	out := make([]string, 0, len(r.members))
	seen := make([]bool, len(r.members))
	start := r.owner(keyPoint(key))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}
