package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"hybridpde/internal/cache"
)

// corpusKeys builds a deterministic shape-key corpus: n distinct
// content-address digests, the same in every process.
func corpusKeys(n int) []cache.Key {
	keys := make([]cache.Key, n)
	var kb cache.KeyBuilder
	for i := range keys {
		kb.Reset()
		kb.Str(1, "shape-corpus")
		kb.I64(2, int64(i))
		keys[i] = kb.Sum()
	}
	return keys
}

func testMembers(n int) []string {
	m := make([]string, n)
	for i := range m {
		m[i] = fmt.Sprintf("http://backend-%d:8080", i)
	}
	return m
}

func TestRingRejectsBadMemberSets(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty member set accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty member name accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

// TestRingAssignDeterministicAcrossOrderings: rings built from the same
// member set, presented in any order, assign every key identically.
func TestRingAssignDeterministicAcrossOrderings(t *testing.T) {
	members := testMembers(5)
	keys := corpusKeys(500)

	base, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed and rotated presentations of the same set.
	reversed := make([]string, len(members))
	for i, m := range members {
		reversed[len(members)-1-i] = m
	}
	rotated := append(append([]string(nil), members[2:]...), members[:2]...)

	for _, perm := range [][]string{reversed, rotated} {
		r, err := NewRing(perm, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if got, want := r.Assign(k), base.Assign(k); got != want {
				t.Fatalf("assignment differs across member orderings: %s vs %s", got, want)
			}
		}
	}
}

// TestRingAssignGolden pins the full corpus assignment to a digest, so a
// ring built in any process, on any GOMAXPROCS, provably produces
// byte-identical assignments. If this test fails, the routing function
// changed and every deployed gateway must be updated in lockstep.
func TestRingAssignGolden(t *testing.T) {
	r, err := NewRing(testMembers(3), DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, k := range corpusKeys(1000) {
		h.Write([]byte(r.Assign(k)))
		h.Write([]byte{'\n'})
	}
	const want = "b13cf05b1b266864486fe3038442494e7a362f083b9801547a6c7f129ee8df10"
	if got := hex.EncodeToString(h.Sum(nil)); got != want {
		t.Fatalf("assignment digest = %s, want %s", got, want)
	}
}

// TestRingSuccessorsCoverAllMembers: the failover order starts at the
// owner and visits every member exactly once.
func TestRingSuccessorsCoverAllMembers(t *testing.T) {
	r, err := NewRing(testMembers(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range corpusKeys(64) {
		succ := r.Successors(k)
		if len(succ) != r.Len() {
			t.Fatalf("successors = %d members, want %d", len(succ), r.Len())
		}
		if succ[0] != r.Assign(k) {
			t.Fatalf("successors[0] = %s, want owner %s", succ[0], r.Assign(k))
		}
		seen := make(map[string]bool, len(succ))
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("member %s repeated in successor order", m)
			}
			seen[m] = true
		}
	}
}

// TestRingBoundedRedistribution: removing one member of N moves exactly
// the removed member's keys — everything else keeps its owner — and the
// moved fraction stays near the ideal 1/N.
func TestRingBoundedRedistribution(t *testing.T) {
	const n = 5
	members := testMembers(n)
	keys := corpusKeys(4000)

	full, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := members[2]
	rest := append(append([]string(nil), members[:2]...), members[3:]...)
	small, err := NewRing(rest, 0)
	if err != nil {
		t.Fatal(err)
	}

	moved := 0
	for _, k := range keys {
		before, after := full.Assign(k), small.Assign(k)
		if before != removed {
			if after != before {
				t.Fatalf("key not owned by removed member moved: %s -> %s", before, after)
			}
			continue
		}
		moved++
		if after == removed {
			t.Fatalf("removed member still assigned")
		}
	}
	frac := float64(moved) / float64(len(keys))
	ideal := 1.0 / float64(n)
	const eps = 0.08
	if frac > ideal+eps {
		t.Fatalf("redistribution moved %.3f of corpus, want <= %.3f + %.3f", frac, ideal, eps)
	}
	if frac == 0 {
		t.Fatal("removed member owned no keys; corpus or vnode count degenerate")
	}
}

// TestRingVNodesSpreadLoad: with default vnodes no member owns a wildly
// disproportionate share of a large corpus.
func TestRingVNodesSpreadLoad(t *testing.T) {
	const n = 3
	r, err := NewRing(testMembers(n), DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int, n)
	keys := corpusKeys(3000)
	for _, k := range keys {
		counts[r.Assign(k)]++
	}
	ideal := float64(len(keys)) / float64(n)
	for _, m := range r.Members() {
		share := float64(counts[m])
		if share < ideal*0.5 || share > ideal*1.5 {
			t.Fatalf("member %s owns %d of %d keys; want within 50%% of ideal %.0f", m, counts[m], len(keys), ideal)
		}
	}
}
