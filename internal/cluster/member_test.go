package cluster

import (
	"testing"
)

func TestMembershipEvictAndReadd(t *testing.T) {
	ms := newMembership([]string{"a", "b"}, 2, 8)

	if !ms.healthy("a") || ms.healthyCount() != 2 {
		t.Fatal("members not healthy at start")
	}
	if ms.markFailure("a") {
		t.Fatal("first failure evicted with threshold 2")
	}
	if !ms.healthy("a") {
		t.Fatal("member evicted below threshold")
	}
	if !ms.markFailure("a") {
		t.Fatal("second failure did not evict")
	}
	if ms.healthy("a") || ms.healthyCount() != 1 {
		t.Fatal("eviction not reflected")
	}
	// Repeated failures of an evicted member are no-ops.
	if ms.markFailure("a") {
		t.Fatal("evicted member evicted again")
	}
	if !ms.markSuccess("a") {
		t.Fatal("successful probe did not re-add")
	}
	if !ms.healthy("a") || ms.healthyCount() != 2 {
		t.Fatal("re-add not reflected")
	}
	// A success on an already-healthy member is not a re-add.
	if ms.markSuccess("a") {
		t.Fatal("healthy member re-added")
	}
	m, ok := ms.snapshot("a")
	if !ok || m.evictions != 1 || m.readds != 1 {
		t.Fatalf("snapshot counters = %+v", m)
	}
}

func TestMembershipSuccessResetsFailureStreak(t *testing.T) {
	ms := newMembership([]string{"a"}, 3, 8)
	ms.markFailure("a")
	ms.markFailure("a")
	ms.markSuccess("a")
	if ms.markFailure("a") || ms.markFailure("a") {
		t.Fatal("streak not reset by success")
	}
	if !ms.markFailure("a") {
		t.Fatal("third consecutive failure did not evict")
	}
}

// TestMembershipProbeBackoff: healthy members are probed every tick;
// evicted members on a doubling, capped countdown that resets on re-add.
func TestMembershipProbeBackoff(t *testing.T) {
	ms := newMembership([]string{"a"}, 1, 4)
	for i := 0; i < 3; i++ {
		if !ms.dueForProbe("a") {
			t.Fatal("healthy member skipped a probe tick")
		}
	}
	ms.markFailure("a")

	// Eviction arms a 1-tick wait; each failed re-add doubles the next
	// wait up to the cap of 4.
	gaps := []int{1, 2, 4, 4}
	for _, want := range gaps {
		got := 0
		for !ms.dueForProbe("a") {
			got++
			if got > 16 {
				t.Fatal("probe never came due")
			}
		}
		if got != want {
			t.Fatalf("waited %d ticks before probe, want %d", got, want)
		}
		// Probe "fails": state stays evicted, backoff doubles.
	}

	ms.markSuccess("a")
	if !ms.dueForProbe("a") {
		t.Fatal("re-added member skipped a probe tick")
	}
	// Backoff reset: next eviction starts at a 1-tick wait again.
	ms.markFailure("a")
	if ms.dueForProbe("a") {
		t.Fatal("probe due immediately after eviction")
	}
	if !ms.dueForProbe("a") {
		t.Fatal("backoff did not reset to 1 tick after re-add")
	}
}

func TestMembershipUnknownMember(t *testing.T) {
	ms := newMembership([]string{"a"}, 1, 8)
	if ms.healthy("zz") || ms.markFailure("zz") || ms.markSuccess("zz") || ms.dueForProbe("zz") {
		t.Fatal("unknown member treated as tracked")
	}
	if _, ok := ms.snapshot("zz"); ok {
		t.Fatal("snapshot invented a member")
	}
}
