package cluster

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hybridpde/internal/cache"
)

// Same-shape request batching. Concurrent requests whose problems share a
// shape coalesce in a short bounded window and ship to one backend over
// one connection: the backend's per-shape worker caches, singleflight and
// warm-start continuation tier then amortise a single symbolic setup
// across the whole batch, and the gateway de-multiplexes the per-request
// responses. Requests with *identical* content identity collapse further:
// one upstream call serves every waiter (the gateway-side mirror of the
// backend's singleflight).
//
// The mechanics deliberately spawn nothing: the first request of a window
// is its leader, and the leader's handler goroutine performs the flush —
// waits out the window (or until the window fills), dispatches one
// upstream request per unique identity, and broadcasts results. Followers
// only wait on their result channel. Every goroutine involved is an HTTP
// handler the server (and the gateway's drain WaitGroup) already observes.

// dispatchResult is the demultiplexed outcome one waiter receives.
type dispatchResult struct {
	status     int
	body       []byte
	retryAfter string // Retry-After header passthrough on 429
	backend    string // which backend served it (empty on total failure)
	err        error  // set when no backend could be reached at all
}

// pendingEntry is one request waiting in a window. The entry carries no
// context — its handler goroutine keeps the ctx and selects on done
// against it — so a slow waiter can time out locally without stalling the
// batch.
type pendingEntry struct {
	identity cache.Key
	body     []byte
	done     chan dispatchResult // buffered 1: broadcast never blocks
	// abandoned is set by a follower whose client disconnected while
	// waiting in the window; flush skips such entries — and skips the
	// whole upstream call when every waiter of an identity is gone.
	abandoned atomic.Bool
}

// batchWindow collects same-shape entries until the leader flushes.
type batchWindow struct {
	entries []*pendingEntry
	full    chan struct{} // closed when the window reaches maxBatch
	fullSet bool
}

// dispatchFunc ships one request body to the shape's backend (with
// failover) and returns the response. Implemented by Gateway.dispatch.
type dispatchFunc func(ctx context.Context, shape cache.Key, body []byte) dispatchResult

// batcher coalesces same-shape requests. One mutex guards the window map
// and every window's entry list; the critical sections are O(append) tiny
// and never nest, and windows live for at most one batch window duration.
type batcher struct {
	mu       sync.Mutex
	windows  map[cache.Key]*batchWindow
	window   time.Duration
	maxBatch int
	m        *gwMetrics
}

func newBatcher(window time.Duration, maxBatch int, m *gwMetrics) *batcher {
	return &batcher{
		windows:  make(map[cache.Key]*batchWindow),
		window:   window,
		maxBatch: maxBatch,
		m:        m,
	}
}

// submit routes one request through the batching plane. The first caller
// for a shape becomes the window leader: it waits out the batch window,
// then dispatches the batch and broadcasts. Later same-shape callers join
// the window and wait. With batching disabled (window <= 0 or maxBatch
// <= 1), submit degenerates to a direct dispatch.
func (b *batcher) submit(ctx context.Context, shape, identity cache.Key, body []byte, dispatch dispatchFunc) dispatchResult {
	if b.window <= 0 || b.maxBatch <= 1 {
		b.m.batches.Inc()
		b.m.batchSize.Observe(1)
		return dispatch(ctx, shape, body)
	}

	e := &pendingEntry{identity: identity, body: body, done: make(chan dispatchResult, 1)}

	b.mu.Lock()
	if w, ok := b.windows[shape]; ok {
		// Follower: join the open window and wait for the leader's
		// broadcast (or give up locally when ctx expires — the batch
		// carries on without this waiter; its buffered channel absorbs
		// the late result).
		w.entries = append(w.entries, e)
		if len(w.entries) >= b.maxBatch && !w.fullSet {
			w.fullSet = true
			close(w.full)
		}
		b.mu.Unlock()
		b.m.coalesced.Inc()
		select {
		case r := <-e.done:
			return r
		case <-ctx.Done():
			// The client hung up (or its deadline passed) while the window
			// was still open: mark the slot abandoned so the flush does not
			// dispatch on this waiter's behalf, and leave immediately.
			e.abandoned.Store(true)
			b.m.batchAbandoned.Inc()
			return dispatchResult{err: ctx.Err()}
		}
	}
	w := &batchWindow{entries: []*pendingEntry{e}, full: make(chan struct{})}
	b.windows[shape] = w
	b.mu.Unlock()

	// Leader: hold the window open briefly so concurrent same-shape
	// requests can pile in, then flush. A full window or a dying leader
	// ctx flushes early (the latter so followers are not stranded).
	t := time.NewTimer(b.window)
	select {
	case <-t.C:
	case <-w.full:
		t.Stop()
	case <-ctx.Done():
		t.Stop()
	}

	b.mu.Lock()
	delete(b.windows, shape)
	entries := w.entries
	b.mu.Unlock()

	b.flush(ctx, shape, entries, dispatch)
	return <-e.done
}

// flush groups a window's entries by content identity (arrival order
// preserved), dispatches one upstream request per unique identity under
// the leader's ctx, and broadcasts each result to all waiters sharing
// that identity.
func (b *batcher) flush(ctx context.Context, shape cache.Key, entries []*pendingEntry, dispatch dispatchFunc) {
	b.m.batches.Inc()
	b.m.batchSize.Observe(float64(len(entries)))

	// Group while preserving first-arrival order of identities; the map
	// only serves membership, iteration stays over the ordered slice.
	groups := make(map[cache.Key][]*pendingEntry, len(entries))
	order := make([]cache.Key, 0, len(entries))
	for _, e := range entries {
		if _, ok := groups[e.identity]; !ok {
			order = append(order, e.identity)
		}
		groups[e.identity] = append(groups[e.identity], e)
	}
	if d := len(entries) - len(order); d > 0 {
		b.m.batchDeduped.Add(uint64(d))
	}
	for _, id := range order {
		g := groups[id]
		lead := -1
		for i, e := range g {
			if !e.abandoned.Load() {
				lead = i
				break
			}
		}
		if lead < 0 {
			// Every waiter of this identity hung up before the flush:
			// skip the upstream call — nobody is left to read the answer.
			continue
		}
		r := dispatch(ctx, shape, g[lead].body)
		for _, e := range g {
			e.done <- r
		}
	}
}

// resultStatus maps a dispatchResult the batcher produced locally (ctx
// expiry while waiting) onto a client-facing status.
func resultStatus(r dispatchResult) int {
	if r.err == nil {
		return r.status
	}
	if errors.Is(r.err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadGateway
}
