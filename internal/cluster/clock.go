// This file is the gateway's single sanctioned wall-clock consumer, the
// cluster-side twin of serve/clock.go: deadline-budget propagation has to
// convert a context deadline into "milliseconds remaining", and remaining
// time is a measured quantity — real time the client has left — not a
// modeled one. Everything else in the package times itself in prober
// ticks precisely so that this is the only clock read.
//
//pdevet:allow walltime remaining deadline budget is a measured quantity; this file is the gateway's only clock reader
package cluster

import "time"

// untilDeadline returns how long remains before the instant d.
func untilDeadline(d time.Time) time.Duration { return time.Until(d) }
