package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hybridpde/internal/cache"
	"hybridpde/internal/serve"
)

// Config tunes the gateway. The zero value plus a backend list is usable:
// every other field has a production-shaped default.
type Config struct {
	// Backends is the fixed fleet of pdeserved base URLs the ring is
	// built over (e.g. http://127.0.0.1:18080). Required, non-empty.
	Backends []string
	// VNodes is the virtual-node count per backend. Default
	// DefaultVNodes (64).
	VNodes int
	// MaxGridN mirrors the backends' grid cap so the gateway normalizes
	// requests over the same identity the backends cache under.
	// Default 12.
	MaxGridN int
	// MaxSteps mirrors the backends' stream step cap (-max-steps) so the
	// gateway rejects over-long trajectories before routing them.
	// Default 256.
	MaxSteps int
	// MaxBodyBytes bounds the request body. Default 1 MiB.
	MaxBodyBytes int64
	// ProbeInterval is the health-probe period. Default 500ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip. Default 1s.
	ProbeTimeout time.Duration
	// EvictAfter is how many consecutive failures (probe or dispatch)
	// evict a healthy backend. Default 1: the first failure does —
	// failover retries make eviction cheap and re-adds are probed.
	EvictAfter int
	// BackoffMaxProbes caps the eviction re-probe backoff, measured in
	// probe intervals (the backoff doubles 1, 2, 4, ... per failed
	// re-add). Default 16.
	BackoffMaxProbes int
	// BatchWindow is how long the first request of a shape holds its
	// batch window open. Default 2ms; negative disables batching.
	BatchWindow time.Duration
	// MaxBatch bounds a window's size; a full window flushes
	// immediately. Default 8.
	MaxBatch int
	// FailoverAttempts bounds how many distinct backends one request may
	// try. Default: every ring member.
	FailoverAttempts int
	// BreakerThreshold is how many consecutive failures (dispatch or
	// probe) open a backend's circuit breaker. Default 3.
	BreakerThreshold int
	// BreakerOpenProbes is the initial open window of a tripped breaker,
	// measured in prober sweeps before the half-open trial; it doubles per
	// failed trial up to BreakerMaxProbes. Defaults 2 and 16.
	BreakerOpenProbes int
	BreakerMaxProbes  int
	// RetryBudgetRatio is how many retry tokens each primary dispatch
	// deposits (the Envoy-style budget: failovers stay a bounded fraction
	// of primary traffic). 0 uses the default 0.1; negative disables
	// refill entirely, leaving only the initial RetryBudgetMax tokens.
	RetryBudgetRatio float64
	// RetryBudgetMax caps the token bucket (and is its starting balance).
	// Default 32.
	RetryBudgetMax float64
	// DefaultTimeout bounds a gateway request when it carries no
	// deadline_ms; MaxTimeout clamps client-supplied deadlines. The
	// remaining budget is forwarded to backends per attempt via the
	// X-Pde-Deadline-Budget header. Defaults mirror serve: 5s and 30s.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Client is the upstream HTTP client. Default: a dedicated client
	// with keep-alive (so a flushed batch rides one connection) and no
	// overall timeout — per-request contexts bound each call.
	Client *http.Client
}

func (c *Config) defaults() {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.MaxGridN <= 0 {
		c.MaxGridN = 12
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 1
	}
	if c.BackoffMaxProbes <= 0 {
		c.BackoffMaxProbes = 16
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.FailoverAttempts <= 0 {
		c.FailoverAttempts = len(c.Backends)
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerOpenProbes <= 0 {
		c.BreakerOpenProbes = 2
	}
	if c.BreakerMaxProbes <= 0 {
		c.BreakerMaxProbes = 16
	}
	if c.RetryBudgetRatio == 0 { //pdevet:allow floateq zero is the config-absent sentinel (never computed)
		c.RetryBudgetRatio = 0.1
	}
	if c.RetryBudgetMax <= 0 {
		c.RetryBudgetMax = 32
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
}

// Gateway fronts a fleet of pdeserved backends: shape-affine consistent-
// hash routing, health-checked membership, same-shape batching, and its
// own metrics plane. Create with New, expose via Handler, stop with
// Close (or BeginDrain + Drain + Close for graceful shutdown).
type Gateway struct {
	cfg      Config
	ring     *Ring
	ms       *membership
	m        *gwMetrics
	client   *http.Client
	b        *batcher
	breakers *breakerSet
	budget   *retryBudget

	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup

	stopProbe context.CancelFunc
	probeDone chan struct{}
}

// New builds the gateway and starts its health prober. The prober runs
// until Close.
func New(cfg Config) (*Gateway, error) {
	cfg.defaults()
	ring, err := NewRing(cfg.Backends, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:       cfg,
		ring:      ring,
		ms:        newMembership(ring.Members(), cfg.EvictAfter, cfg.BackoffMaxProbes),
		m:         newGwMetrics(),
		client:    cfg.Client,
		probeDone: make(chan struct{}),
	}
	g.b = newBatcher(cfg.BatchWindow, cfg.MaxBatch, g.m)
	g.breakers = newBreakerSet(ring.Members(), cfg.BreakerThreshold,
		cfg.BreakerOpenProbes, cfg.BreakerMaxProbes, g.m)
	ratio := cfg.RetryBudgetRatio
	if ratio < 0 {
		ratio = 0
	}
	g.budget = newRetryBudget(ratio, cfg.RetryBudgetMax)
	g.m.ringMembers.Set(int64(ring.Len()))
	g.m.healthyBackends.Set(int64(ring.Len()))
	ctx, cancel := context.WithCancel(context.Background())
	g.stopProbe = cancel
	go g.probeLoop(ctx)
	return g, nil
}

// Close stops the health prober. Call after Drain on graceful shutdown.
func (g *Gateway) Close() {
	g.stopProbe()
	<-g.probeDone
}

// Handler returns the gateway mux: POST /v1/solve, POST /v1/stream
// (flush-through NDJSON proxy), GET /v1/problems (proxied), GET /healthz
// (readiness), GET /livez (liveness), GET /metrics, GET /cluster
// (membership snapshot).
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", g.handleSolve)
	mux.HandleFunc("POST /v1/stream", g.handleStream)
	mux.HandleFunc("GET /v1/problems", g.handleProblems)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /livez", g.handleLivez)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /cluster", g.handleCluster)
	return mux
}

// BeginDrain closes the admission gate: new requests get 503 while
// requests already inside keep their upstream calls. Safe to call
// repeatedly.
func (g *Gateway) BeginDrain() {
	g.drainMu.Lock()
	defer g.drainMu.Unlock()
	if !g.draining {
		g.draining = true
		g.m.draining.Set(1)
	}
}

// Drain blocks until every admitted request has completed or ctx expires.
func (g *Gateway) Drain(ctx context.Context) error {
	g.BeginDrain()
	done := make(chan struct{})
	go func() {
		g.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *Gateway) isDraining() bool {
	g.drainMu.Lock()
	defer g.drainMu.Unlock()
	return g.draining
}

// admit mirrors serve.Server.admit's Add-before-flag ordering so Drain's
// Wait cannot miss an admitted request.
func (g *Gateway) admit() (release func(), ok bool) {
	g.drainMu.Lock()
	if g.draining {
		g.drainMu.Unlock()
		return nil, false
	}
	g.inflight.Add(1)
	g.drainMu.Unlock()
	g.m.inflight.Inc()
	return func() {
		g.m.inflight.Dec()
		g.inflight.Done()
	}, true
}

// probeLoop drives the membership state machine: an immediate sweep so
// the gateway knows its fleet before the first request, then one sweep
// per probe interval until ctx is cancelled (Close).
func (g *Gateway) probeLoop(ctx context.Context) {
	defer close(g.probeDone)
	g.probeSweep(ctx)
	ticker := time.NewTicker(g.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			g.probeSweep(ctx)
		}
	}
}

// probeSweep probes every due member once and refreshes the health gauge.
// Each sweep is also one tick of the breaker clock, and every probe
// outcome feeds the breaker state machine — so a recovered backend closes
// its breaker from the prober's evidence alone, without live traffic
// having to gamble on it first.
func (g *Gateway) probeSweep(ctx context.Context) {
	g.breakers.tick()
	for _, url := range g.ring.Members() {
		if !g.ms.dueForProbe(url) {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
		ready := probeBackend(pctx, g.client, url)
		g.breakers.record(url, ready)
		if ready {
			if g.ms.markSuccess(url) {
				g.m.readds.Inc()
			}
			if st, ok := scrapeBackend(pctx, g.client, url); ok {
				g.ms.setStats(url, st)
				g.m.backendDegraded.With(url).Set(int64(st.DegradedTotal))
				g.m.backendCacheHits.With(url).Set(int64(st.CacheHits))
				g.m.backendCacheWarm.With(url).Set(int64(st.CacheWarmHits))
				g.m.backendCacheMiss.With(url).Set(int64(st.CacheMisses))
			}
		} else if g.ms.markFailure(url) {
			g.m.evictions.Inc()
		}
		cancel()
	}
	g.m.healthyBackends.Set(int64(g.ms.healthyCount()))
}

// handleSolve is POST /v1/solve: decode → normalize (same rules as the
// backends) → shape-route through the batcher → failover-dispatch →
// relay the backend's response verbatim.
func (g *Gateway) handleSolve(w http.ResponseWriter, r *http.Request) {
	if g.isDraining() {
		g.rejectJSON(w, http.StatusServiceUnavailable, "gateway is draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		g.rejectJSON(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	var req serve.Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		g.rejectJSON(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if err := serve.Normalize(&req, g.cfg.MaxGridN); err != nil {
		g.rejectJSON(w, http.StatusBadRequest, err.Error())
		return
	}

	var kb cache.KeyBuilder
	shape := serve.ShapeKey(&req, &kb)
	identity := shape
	if serve.CacheableKind(req.Problem) {
		identity = serve.SolveKey(&req, &kb)
	}

	release, ok := g.admit()
	if !ok {
		g.rejectJSON(w, http.StatusServiceUnavailable, "gateway is draining")
		return
	}
	defer release()

	// The gateway resolves the request deadline with the same rules the
	// backends use; forward propagates whatever remains of it per attempt,
	// so backends never start work the gateway has already abandoned.
	ctx, cancel := context.WithTimeout(r.Context(), g.timeout(&req))
	defer cancel()
	res := g.b.submit(ctx, shape, identity, body, g.dispatch)
	code := resultStatus(res)
	g.m.requests.With(strconv.Itoa(code)).Inc()
	if res.err != nil {
		g.writeJSONBody(w, code, errorBody("upstream dispatch failed: "+res.err.Error()))
		return
	}
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	w.Write(res.body)
}

// dispatch ships one request to the shape's pinned backend, walking the
// ring's successor order when backends are evicted or fail mid-request.
// Healthy candidates are tried first in ring order; if every healthy
// candidate fails (or none exists), the remaining members are tried
// anyway — probe state is advisory, the request is the ground truth. Two
// guards bound the walk beyond FailoverAttempts: backends with an open
// circuit breaker are skipped outright (no attempt, no token), and every
// attempt after the first must withdraw a retry-budget token — an empty
// bucket turns the failover into an explicit 429 backpressure answer
// instead of amplified load on a browning-out fleet.
func (g *Gateway) dispatch(ctx context.Context, shape cache.Key, body []byte) dispatchResult {
	candidates := g.failoverOrder(shape)

	g.budget.deposit()
	attempts := 0
	var last dispatchResult
	last.err = errors.New("no backend available")
	for _, url := range candidates {
		if !g.breakers.allow(url) {
			continue
		}
		if attempts > 0 {
			if !g.budget.withdraw() {
				g.m.retryBudgetDenied.Inc()
				return dispatchResult{
					status:     http.StatusTooManyRequests,
					body:       mustJSON(errorBody("retry budget exhausted: backend failed and failover retries are capped")),
					retryAfter: "1",
				}
			}
			g.m.retryBudgetSpent.Inc()
			g.m.failovers.Inc()
		}
		attempts++
		res, transient := g.forward(ctx, url, body)
		g.breakers.record(url, !transient)
		if !transient {
			if g.ms.markSuccess(url) {
				g.m.readds.Inc()
			}
			return res
		}
		// Transport error or failover-class status: mark the backend and
		// walk on, unless the request itself is out of time.
		if g.ms.markFailure(url) {
			g.m.evictions.Inc()
			g.m.healthyBackends.Set(int64(g.ms.healthyCount()))
		}
		last = res
		if ctx.Err() != nil {
			return dispatchResult{err: ctx.Err()}
		}
	}
	return last
}

// failoverOrder lists the backends a request pinned to shape may try, in
// ring-successor order with healthy members first, capped at
// FailoverAttempts. Probe state is advisory — unhealthy members are still
// candidates of last resort, because the request is the ground truth.
func (g *Gateway) failoverOrder(shape cache.Key) []string {
	order := g.ring.Successors(shape)
	candidates := make([]string, 0, len(order))
	for _, url := range order {
		if g.ms.healthy(url) {
			candidates = append(candidates, url)
		}
	}
	for _, url := range order {
		if !g.ms.healthy(url) {
			candidates = append(candidates, url)
		}
	}
	if len(candidates) > g.cfg.FailoverAttempts {
		candidates = candidates[:g.cfg.FailoverAttempts]
	}
	return candidates
}

// timeout resolves the effective deadline of a gateway request, with the
// same rules serve.Server.timeout applies on the backends.
func (g *Gateway) timeout(req *serve.Request) time.Duration {
	if req.DeadlineMillis <= 0 {
		return g.cfg.DefaultTimeout
	}
	d := time.Duration(req.DeadlineMillis) * time.Millisecond
	if d > g.cfg.MaxTimeout {
		return g.cfg.MaxTimeout
	}
	return d
}

// mustJSON marshals a gateway-originated body; errorBody cannot fail.
func mustJSON(v errorBody) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(`{"error":"gateway encoding failure"}`)
	}
	return b
}

// forward performs one upstream solve call. transient=true means the
// failure class is worth a failover (transport error, 500/502/503);
// anything else — including 429 backpressure and 504 deadline expiry —
// is relayed to the client as-is.
func (g *Gateway) forward(ctx context.Context, url string, body []byte) (res dispatchResult, transient bool) {
	g.m.backendRouted.With(url).Inc()
	g.m.backendInflight.With(url).Inc()
	defer g.m.backendInflight.With(url).Dec()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return dispatchResult{err: err}, true
	}
	req.Header.Set("Content-Type", "application/json")
	// Deadline-budget propagation: tell the backend how much of the
	// request's deadline this attempt actually has left (failover attempts
	// see progressively smaller budgets), so it can refuse doomed work at
	// admission instead of burning Newton iterations on it.
	if d, ok := ctx.Deadline(); ok {
		ms := untilDeadline(d).Milliseconds()
		if ms <= 0 {
			return dispatchResult{err: context.DeadlineExceeded}, false
		}
		req.Header.Set(serve.DeadlineBudgetHeader, strconv.FormatInt(ms, 10))
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.m.backendFailures.With(url).Inc()
		if ctx.Err() != nil {
			// The client's deadline, not the backend's failure.
			return dispatchResult{err: ctx.Err()}, false
		}
		return dispatchResult{err: err}, true
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		g.m.backendFailures.With(url).Inc()
		return dispatchResult{err: err}, true
	}
	g.m.backendRequests.With(url, strconv.Itoa(resp.StatusCode)).Inc()
	res = dispatchResult{
		status:     resp.StatusCode,
		body:       payload,
		retryAfter: resp.Header.Get("Retry-After"),
		backend:    url,
	}
	switch resp.StatusCode {
	case http.StatusInternalServerError, http.StatusBadGateway, http.StatusServiceUnavailable:
		g.m.backendFailures.With(url).Inc()
		return res, true
	}
	return res, false
}

// handleProblems proxies GET /v1/problems to the first healthy backend in
// member order (the registry is identical fleet-wide by construction).
func (g *Gateway) handleProblems(w http.ResponseWriter, r *http.Request) {
	for _, url := range g.ring.Members() {
		if !g.ms.healthy(url) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url+"/v1/problems", nil)
		if err != nil {
			continue
		}
		resp, err := g.client.Do(req)
		if err != nil {
			continue
		}
		payload, err := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBodyBytes))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(payload)
		return
	}
	g.rejectJSON(w, http.StatusBadGateway, "no healthy backend")
}

// handleHealthz is the gateway's readiness probe: ready while not
// draining and at least one backend is healthy.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	switch {
	case g.isDraining():
		g.writeJSONBody(w, http.StatusServiceUnavailable, serve.Health{Ready: false, Reason: "draining"})
	case g.ms.healthyCount() == 0:
		g.writeJSONBody(w, http.StatusServiceUnavailable, serve.Health{Ready: false, Reason: "no healthy backend"})
	default:
		g.writeJSONBody(w, http.StatusOK, serve.Health{Ready: true})
	}
}

// handleLivez is the gateway's liveness probe.
func (g *Gateway) handleLivez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics is GET /metrics: the gateway's own Prometheus page. The
// health gauge is recomputed at scrape time so it never lags the
// membership state machine between probe sweeps.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	g.m.healthyBackends.Set(int64(g.ms.healthyCount()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.m.writeProm(w)
}

// ClusterMember is one backend's row in the GET /cluster snapshot.
type ClusterMember struct {
	URL       string       `json:"url"`
	State     string       `json:"state"`
	Evictions uint64       `json:"evictions"`
	Readds    uint64       `json:"readds"`
	Stats     BackendStats `json:"stats"`
}

// ClusterSnapshot is the GET /cluster body: the gateway's current view of
// its fleet.
type ClusterSnapshot struct {
	RingMembers int             `json:"ring_members"`
	VNodes      int             `json:"vnodes_per_member"`
	Healthy     int             `json:"healthy"`
	Draining    bool            `json:"draining"`
	Members     []ClusterMember `json:"members"`
}

// handleCluster is GET /cluster: a JSON snapshot of membership state, in
// sorted member order (deterministic bodies; smoke scripts grep them).
func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	snap := ClusterSnapshot{
		RingMembers: g.ring.Len(),
		VNodes:      g.cfg.VNodes,
		Healthy:     g.ms.healthyCount(),
		Draining:    g.isDraining(),
	}
	for _, url := range g.ring.Members() {
		m, ok := g.ms.snapshot(url)
		if !ok {
			continue
		}
		snap.Members = append(snap.Members, ClusterMember{
			URL:       m.url,
			State:     m.state.String(),
			Evictions: m.evictions,
			Readds:    m.readds,
			Stats:     m.stats,
		})
	}
	g.writeJSONBody(w, http.StatusOK, snap)
}

// errorBody renders the error-only JSON body the gateway originates
// itself (backend bodies are relayed verbatim).
type errorBody string

// MarshalJSON renders {"error": "..."} so gateway-originated failures
// look like backend rejections to clients.
func (e errorBody) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Error string `json:"error"`
	}{Error: string(e)})
}

// rejectJSON counts and encodes a gateway-originated rejection.
func (g *Gateway) rejectJSON(w http.ResponseWriter, code int, msg string) {
	g.m.requests.With(strconv.Itoa(code)).Inc()
	g.writeJSONBody(w, code, errorBody(msg))
}

func (g *Gateway) writeJSONBody(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	// The status line is committed before encoding; a failure here only
	// means the client hung up.
	json.NewEncoder(w).Encode(v)
}
