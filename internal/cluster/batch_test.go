package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridpde/internal/cache"
)

func testKey(tag int64) cache.Key {
	var kb cache.KeyBuilder
	kb.Reset()
	kb.Str(1, "batch-test")
	kb.I64(2, tag)
	return kb.Sum()
}

// countingDispatch returns a dispatchFunc that counts calls and echoes
// the body back.
func countingDispatch(calls *atomic.Int64) dispatchFunc {
	return func(ctx context.Context, shape cache.Key, body []byte) dispatchResult {
		calls.Add(1)
		return dispatchResult{status: http.StatusOK, body: body, backend: "test"}
	}
}

func TestBatcherDisabledDispatchesDirectly(t *testing.T) {
	var calls atomic.Int64
	b := newBatcher(0, 8, newGwMetrics())
	r := b.submit(context.Background(), testKey(1), testKey(1), []byte("x"), countingDispatch(&calls))
	if r.status != http.StatusOK || calls.Load() != 1 {
		t.Fatalf("direct dispatch: status=%d calls=%d", r.status, calls.Load())
	}
}

// TestBatcherDedupsIdenticalIdentity: concurrent same-identity requests
// collapse into one upstream call, and every waiter gets the result.
func TestBatcherDedupsIdenticalIdentity(t *testing.T) {
	var calls atomic.Int64
	m := newGwMetrics()
	b := newBatcher(time.Second, 4, m)
	shape, id := testKey(1), testKey(2)

	const waiters = 4 // == maxBatch, so the window flushes on full, not on the long timer
	var wg sync.WaitGroup
	results := make([]dispatchResult, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = b.submit(context.Background(), shape, id, []byte("same"), countingDispatch(&calls))
		}(i)
	}
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("upstream calls = %d, want 1", got)
	}
	for i, r := range results {
		if r.status != http.StatusOK || string(r.body) != "same" {
			t.Fatalf("waiter %d got %+v", i, r)
		}
	}
	if got := m.batchDeduped.Value(); got != waiters-1 {
		t.Fatalf("batch_deduped = %d, want %d", got, waiters-1)
	}
	if got := m.coalesced.Value(); got != waiters-1 {
		t.Fatalf("coalesced = %d, want %d", got, waiters-1)
	}
	if got := m.batches.Value(); got != 1 {
		t.Fatalf("batches = %d, want 1", got)
	}
}

// TestBatcherDistinctIdentitiesShareWindow: same-shape requests with
// different identities flush in one window but each gets its own
// upstream call, in first-arrival order.
func TestBatcherDistinctIdentitiesShareWindow(t *testing.T) {
	var calls atomic.Int64
	b := newBatcher(time.Second, 3, newGwMetrics())
	shape := testKey(1)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := b.submit(context.Background(), shape, testKey(int64(10+i)), []byte{byte(i)}, countingDispatch(&calls))
			if r.status != http.StatusOK || len(r.body) != 1 || r.body[0] != byte(i) {
				t.Errorf("waiter %d got wrong demuxed body: %+v", i, r)
			}
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 3 {
		t.Fatalf("upstream calls = %d, want 3 (one per identity)", got)
	}
}

// TestBatcherFollowerCtxCancel: a follower whose ctx dies stops waiting
// immediately; the batch completes without it.
func TestBatcherFollowerCtxCancel(t *testing.T) {
	var calls atomic.Int64
	b := newBatcher(200*time.Millisecond, 8, newGwMetrics())
	shape, id := testKey(1), testKey(2)

	leaderDone := make(chan dispatchResult, 1)
	go func() {
		leaderDone <- b.submit(context.Background(), shape, id, []byte("x"), countingDispatch(&calls))
	}()
	// Wait for the leader's window to open.
	for {
		b.mu.Lock()
		_, open := b.windows[shape]
		b.mu.Unlock()
		if open {
			break
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := b.submit(ctx, shape, id, []byte("x"), countingDispatch(&calls))
	if r.err == nil {
		t.Fatal("cancelled follower returned a result")
	}
	if got := resultStatus(r); got != http.StatusBadGateway {
		t.Fatalf("cancelled follower status = %d, want 502", got)
	}

	lr := <-leaderDone
	if lr.status != http.StatusOK {
		t.Fatalf("leader result = %+v", lr)
	}
}

func TestResultStatus(t *testing.T) {
	if got := resultStatus(dispatchResult{status: 200}); got != 200 {
		t.Fatalf("passthrough status = %d", got)
	}
	if got := resultStatus(dispatchResult{err: context.DeadlineExceeded}); got != http.StatusGatewayTimeout {
		t.Fatalf("deadline status = %d", got)
	}
	if got := resultStatus(dispatchResult{err: context.Canceled}); got != http.StatusBadGateway {
		t.Fatalf("generic error status = %d", got)
	}
}
