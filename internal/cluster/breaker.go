package cluster

import "sync"

// Per-backend circuit breaking and fleet-wide retry budgeting: the two
// guards that keep the gateway's failover machinery from amplifying a
// brownout into a storm. The breaker stops sending to a backend that keeps
// failing (eviction already stops *routing preference*; the breaker stops
// *attempts*, including failover walks that would otherwise still poke the
// corpse on every request), and the retry budget caps how much failover
// traffic the whole gateway may generate relative to its primary traffic.
//
// Breaker timing is deliberately tick-based, not wall-clock-based: the
// open→half-open countdown is measured in health-prober sweeps, the same
// discrete clock the membership backoff already uses. One clock, one
// cadence, no time.Now — the state machine is a pure function of events
// and ticks, which is what makes it unit-testable and walltime-clean.

// breakerState is a backend's position in the breaker state machine.
//
//	closed ---(threshold consecutive failures)---> open
//	open -----(openTicks prober sweeps elapse)---> half-open
//	half-open --(trial success)--> closed
//	half-open --(trial failure)--> open, window doubled (capped)
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String renders the state for metrics label values and logs.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// gaugeValue is the numeric encoding of the per-backend state gauge:
// 0 closed, 1 open, 2 half-open.
func (s breakerState) gaugeValue() int64 { return int64(s) }

// backendBreaker is one backend's breaker record; all fields are guarded
// by breakerSet.mu.
type backendBreaker struct {
	state breakerState
	// fails counts consecutive failures while closed.
	fails int
	// waitTicks counts down prober sweeps until an open breaker goes
	// half-open.
	waitTicks int
	// openTicks is the current open-window length; it doubles per
	// reopen (capped) and resets on close.
	openTicks int
	// trial is set while a half-open probe/dispatch is outstanding, so
	// only one request at a time tests the backend.
	trial bool
}

// breakerSet owns the breakers of a fixed backend fleet.
type breakerSet struct {
	mu sync.Mutex
	// threshold is how many consecutive failures open a closed breaker.
	threshold int
	// baseTicks is the initial open window, in prober sweeps; maxTicks
	// caps the doubling on repeated reopens.
	baseTicks int
	maxTicks  int
	breakers  map[string]*backendBreaker
	m         *gwMetrics
}

func newBreakerSet(urls []string, threshold, baseTicks, maxTicks int, m *gwMetrics) *breakerSet {
	if threshold < 1 {
		threshold = 1
	}
	if baseTicks < 1 {
		baseTicks = 1
	}
	if maxTicks < baseTicks {
		maxTicks = baseTicks
	}
	bs := &breakerSet{
		threshold: threshold,
		baseTicks: baseTicks,
		maxTicks:  maxTicks,
		breakers:  make(map[string]*backendBreaker, len(urls)),
		m:         m,
	}
	for _, u := range urls {
		bs.breakers[u] = &backendBreaker{openTicks: baseTicks}
		m.breakerState.With(u).Set(0)
	}
	return bs
}

// transition moves one breaker to a new state and accounts it. Callers
// hold bs.mu.
func (bs *breakerSet) transition(url string, b *backendBreaker, to breakerState) {
	b.state = to
	bs.m.breakerState.With(url).Set(to.gaugeValue())
	bs.m.breakerTransitions.With(url, to.String()).Inc()
}

// allow reports whether a dispatch attempt may be sent to the backend. A
// half-open breaker admits exactly one trial at a time; an open breaker
// admits nothing until its countdown elapses.
func (bs *breakerSet) allow(url string) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b, ok := bs.breakers[url]
	if !ok {
		return true
	}
	switch b.state {
	case breakerOpen:
		return false
	case breakerHalfOpen:
		if b.trial {
			return false
		}
		b.trial = true
		return true
	default:
		return true
	}
}

// record feeds one observed outcome — a dispatch result or a health-probe
// result — into the state machine. Probe outcomes flow through the same
// method as dispatch outcomes, so a recovered backend closes its breaker
// without waiting for live traffic to gamble on it.
func (bs *breakerSet) record(url string, ok bool) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b, found := bs.breakers[url]
	if !found {
		return
	}
	if ok {
		b.fails = 0
		if b.state == breakerHalfOpen {
			b.trial = false
			b.openTicks = bs.baseTicks
			bs.transition(url, b, breakerClosed)
		}
		return
	}
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= bs.threshold {
			b.waitTicks = b.openTicks
			bs.transition(url, b, breakerOpen)
		}
	case breakerHalfOpen:
		// The trial failed: reopen with a doubled (capped) window.
		b.trial = false
		b.openTicks *= 2
		if b.openTicks > bs.maxTicks {
			b.openTicks = bs.maxTicks
		}
		b.waitTicks = b.openTicks
		bs.transition(url, b, breakerOpen)
	}
}

// tick advances every open breaker's countdown by one prober sweep; those
// reaching zero go half-open. The gateway calls it from probeSweep, so the
// breaker and the membership backoff share one discrete clock.
func (bs *breakerSet) tick() {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	for url, b := range bs.breakers {
		if b.state != breakerOpen {
			continue
		}
		if b.waitTicks > 0 {
			b.waitTicks--
		}
		if b.waitTicks == 0 {
			b.trial = false
			bs.transition(url, b, breakerHalfOpen)
		}
	}
}

// state returns a breaker's current state (for tests and /cluster).
func (bs *breakerSet) state(url string) breakerState {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if b, ok := bs.breakers[url]; ok {
		return b.state
	}
	return breakerClosed
}

// retryBudget is a token bucket capping failover retries at a fraction of
// primary traffic (the Finagle/Envoy retry-budget discipline): every
// primary dispatch deposits ratio tokens (bounded by max), every failover
// attempt beyond a request's first withdraws one. When the bucket is
// empty the failover is *denied* — the gateway answers 429 backpressure
// rather than letting retries multiply load on a browning-out fleet.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	max    float64
}

// newRetryBudget builds a bucket that starts full, so an isolated failure
// right after boot can still fail over.
func newRetryBudget(ratio, max float64) *retryBudget {
	if max < 1 {
		max = 1
	}
	if ratio < 0 {
		ratio = 0
	}
	return &retryBudget{tokens: max, ratio: ratio, max: max}
}

// deposit credits one primary dispatch.
func (rb *retryBudget) deposit() {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	rb.tokens += rb.ratio
	if rb.tokens > rb.max {
		rb.tokens = rb.max
	}
}

// withdraw spends one retry token; false means the budget is exhausted and
// the failover must not happen.
func (rb *retryBudget) withdraw() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}
