package cluster

import (
	"io"

	"hybridpde/internal/promtext"
)

// gwMetrics is the gateway's fixed metric set, rendered in the same
// Prometheus text exposition the backends use (internal/promtext) so one
// scraper walks the whole fleet.
type gwMetrics struct {
	requests        *promtext.CounterVec // labels: code — gateway-level final status
	backendRouted   *promtext.CounterVec // labels: backend — upstream requests sent
	backendRequests *promtext.CounterVec // labels: backend, code — upstream responses
	backendFailures *promtext.CounterVec // labels: backend — transport errors + failover-class statuses
	backendInflight *promtext.GaugeVec   // labels: backend — upstream requests in flight
	failovers       promtext.Counter     // requests retried on a ring successor
	evictions       promtext.Counter     // membership healthy→evicted transitions
	readds          promtext.Counter     // membership evicted→healthy transitions

	// Failure-isolation plane: per-backend circuit breakers and the
	// fleet-wide retry budget.
	breakerState       *promtext.GaugeVec   // labels: backend — 0 closed, 1 open, 2 half-open
	breakerTransitions *promtext.CounterVec // labels: backend, to — state transitions
	retryBudgetSpent   promtext.Counter     // failover attempts paid for by the budget
	retryBudgetDenied  promtext.Counter     // failovers refused (429) on an empty budget
	ringMembers        promtext.Gauge       // configured ring size
	healthyBackends    promtext.Gauge       // members currently receiving traffic
	draining           promtext.Gauge       // 1 while the gateway refuses new work
	inflight           promtext.Gauge       // requests inside the gateway

	// Batching plane.
	batches        promtext.Counter    // windows flushed (or direct dispatches)
	batchSize      *promtext.Histogram // requests per flushed window
	coalesced      promtext.Counter    // requests that joined an existing window
	batchDeduped   promtext.Counter    // requests served by another identical upstream call
	batchAbandoned promtext.Counter    // followers whose client hung up before the flush

	// Streaming plane (POST /v1/stream flush-through proxy).
	streamsProxied  promtext.Counter // streams committed (200) to a backend
	streamFrames    promtext.Counter // NDJSON lines relayed and flushed
	streamFailovers promtext.Counter // stream attempts retried before the first byte
	streamAborts    promtext.Counter // committed streams truncated (client gone or upstream failure)

	// Probe-scraped backend degradation signal (snapshots of remote
	// counters, hence gauges).
	backendDegraded  *promtext.GaugeVec // labels: backend
	backendCacheHits *promtext.GaugeVec // labels: backend
	backendCacheWarm *promtext.GaugeVec // labels: backend
	backendCacheMiss *promtext.GaugeVec // labels: backend
}

func newGwMetrics() *gwMetrics {
	return &gwMetrics{
		requests:           promtext.NewCounterVec("code"),
		backendRouted:      promtext.NewCounterVec("backend"),
		backendRequests:    promtext.NewCounterVec("backend", "code"),
		backendFailures:    promtext.NewCounterVec("backend"),
		backendInflight:    promtext.NewGaugeVec("backend"),
		breakerState:       promtext.NewGaugeVec("backend"),
		breakerTransitions: promtext.NewCounterVec("backend", "to"),
		// Window sizes are small by design; 1 means batching bought nothing.
		batchSize:        promtext.NewHistogram(1, 2, 4, 8, 16, 32),
		backendDegraded:  promtext.NewGaugeVec("backend"),
		backendCacheHits: promtext.NewGaugeVec("backend"),
		backendCacheWarm: promtext.NewGaugeVec("backend"),
		backendCacheMiss: promtext.NewGaugeVec("backend"),
	}
}

// writeProm renders the exposition page. Families appear in a fixed order
// and labelled children in sorted order, so scrapes are deterministic.
func (m *gwMetrics) writeProm(w io.Writer) {
	promtext.WriteCounterVec(w, "pdegw_requests_total", "Gateway requests by final HTTP status code.", m.requests)
	promtext.WriteCounterVec(w, "pdegw_backend_routed_total", "Upstream solve requests sent, by backend.", m.backendRouted)
	promtext.WriteCounterVec(w, "pdegw_backend_requests_total", "Upstream responses received, by backend and HTTP status code.", m.backendRequests)
	promtext.WriteCounterVec(w, "pdegw_backend_failures_total", "Upstream transport errors and failover-class statuses, by backend.", m.backendFailures)
	promtext.WriteGaugeVec(w, "pdegw_backend_inflight", "Upstream requests currently in flight, by backend.", m.backendInflight)
	promtext.WriteCounter(w, "pdegw_failovers_total", "Requests retried on the next ring successor after a backend failure.", &m.failovers)
	promtext.WriteGaugeVec(w, "pdegw_breaker_state", "Per-backend circuit-breaker state: 0 closed, 1 open, 2 half-open.", m.breakerState)
	promtext.WriteCounterVec(w, "pdegw_breaker_transitions_total", "Circuit-breaker state transitions, by backend and target state.", m.breakerTransitions)
	promtext.WriteCounter(w, "pdegw_retry_budget_spent_total", "Failover attempts paid for by the retry budget.", &m.retryBudgetSpent)
	promtext.WriteCounter(w, "pdegw_retry_budget_denied_total", "Failover attempts refused with 429 because the retry budget was exhausted.", &m.retryBudgetDenied)
	promtext.WriteCounter(w, "pdegw_evictions_total", "Membership transitions from healthy to evicted.", &m.evictions)
	promtext.WriteCounter(w, "pdegw_readds_total", "Membership transitions from evicted back to healthy.", &m.readds)
	promtext.WriteGauge(w, "pdegw_ring_members", "Configured consistent-hash ring size (virtual nodes excluded).", &m.ringMembers)
	promtext.WriteGauge(w, "pdegw_healthy_backends", "Backends currently receiving routed traffic.", &m.healthyBackends)
	promtext.WriteGauge(w, "pdegw_draining", "1 while the gateway is draining and refusing new work.", &m.draining)
	promtext.WriteGauge(w, "pdegw_inflight_requests", "Requests currently inside the gateway.", &m.inflight)
	promtext.WriteCounter(w, "pdegw_batches_total", "Same-shape windows flushed (a direct dispatch counts as a window of one).", &m.batches)
	promtext.WriteHistogram(w, "pdegw_batch_size", "Requests per flushed same-shape window.", m.batchSize)
	promtext.WriteCounter(w, "pdegw_batch_coalesced_total", "Requests that joined an already-open same-shape window.", &m.coalesced)
	promtext.WriteCounter(w, "pdegw_batch_deduped_total", "Requests served by another identical in-batch upstream call.", &m.batchDeduped)
	promtext.WriteCounter(w, "pdegw_batch_abandoned_total", "Batch followers whose client disconnected before the window flushed.", &m.batchAbandoned)
	promtext.WriteCounter(w, "pdegw_streams_proxied_total", "Streams committed to a backend and relayed flush-on-write.", &m.streamsProxied)
	promtext.WriteCounter(w, "pdegw_stream_frames_total", "NDJSON stream lines relayed and flushed to clients.", &m.streamFrames)
	promtext.WriteCounter(w, "pdegw_stream_failovers_total", "Stream attempts retried on a ring successor before the first byte.", &m.streamFailovers)
	promtext.WriteCounter(w, "pdegw_stream_aborts_total", "Committed streams truncated by a client disconnect or upstream failure.", &m.streamAborts)
	promtext.WriteGaugeVec(w, "pdegw_backend_degraded", "Backend pdeserve_degraded_total, as last scraped by the health prober.", m.backendDegraded)
	promtext.WriteGaugeVec(w, "pdegw_backend_cache_hits", "Backend pdeserve_cache_hits_total, as last scraped by the health prober.", m.backendCacheHits)
	promtext.WriteGaugeVec(w, "pdegw_backend_cache_warm_hits", "Backend pdeserve_cache_warm_hits_total, as last scraped by the health prober.", m.backendCacheWarm)
	promtext.WriteGaugeVec(w, "pdegw_backend_cache_misses", "Backend pdeserve_cache_misses_total, as last scraped by the health prober.", m.backendCacheMiss)
}
