package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridpde/internal/cache"
	"hybridpde/internal/serve"
)

const gwTestNetlist = `# 1-variable Newton slice
inst d0 dac 0
inst m0 multiplier 0
inst i0 integrator 0
set  d0 0.5
wire d0.out m0.in0
wire m0.out i0.in
commit
start
stop
`

// swapHandler lets a test replace a backend's handler mid-flight without
// racing the listener — the stand-in for killing and restarting a
// pdeserved process on the same address.
type swapHandler struct {
	v atomic.Value // http.Handler
}

func (h *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.v.Load().(http.Handler).ServeHTTP(w, r)
}

// testFleet is a gateway in front of real serve.Server backends, all on
// httptest listeners.
type testFleet struct {
	gw       *Gateway
	gwServer *httptest.Server
	backends []*httptest.Server
	servers  []*serve.Server
	handlers []*swapHandler
}

func newTestFleet(t *testing.T, n int, cfg Config) *testFleet {
	t.Helper()
	f := &testFleet{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s := serve.NewServer(serve.Config{Workers: 1, QueueDepth: 16})
		sh := &swapHandler{}
		sh.v.Store(s.Handler())
		ts := httptest.NewServer(sh)
		t.Cleanup(ts.Close)
		f.servers = append(f.servers, s)
		f.handlers = append(f.handlers, sh)
		f.backends = append(f.backends, ts)
		urls[i] = ts.URL
	}
	cfg.Backends = urls
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 50 * time.Millisecond
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	f.gw = gw
	f.gwServer = httptest.NewServer(gw.Handler())
	t.Cleanup(f.gwServer.Close)
	return f
}

// ownerIndex returns which backend the ring pins req's shape to.
func (f *testFleet) ownerIndex(t *testing.T, req serve.Request) int {
	t.Helper()
	if err := serve.Normalize(&req, 0); err != nil {
		t.Fatal(err)
	}
	var kb cache.KeyBuilder
	owner := f.gw.ring.Assign(serve.ShapeKey(&req, &kb))
	for i, ts := range f.backends {
		if ts.URL == owner {
			return i
		}
	}
	t.Fatalf("owner %s is not a fleet backend", owner)
	return -1
}

// postGwSolve posts through the gateway without failing the test, so it
// is safe from non-test goroutines.
func postGwSolve(url string, req serve.Request) (int, serve.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, serve.Response{}, err
	}
	hr, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, serve.Response{}, err
	}
	defer hr.Body.Close()
	var resp serve.Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return hr.StatusCode, serve.Response{}, err
	}
	return hr.StatusCode, resp, nil
}

// scrape fetches a /metrics page as text.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func clusterSnap(t *testing.T, url string) ClusterSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap ClusterSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestGatewayRoutesSolves(t *testing.T) {
	f := newTestFleet(t, 3, Config{})
	for _, req := range []serve.Request{
		{Problem: serve.KindBurgers2D, N: 5},
		{Problem: serve.KindBurgers1D, N: 32},
		{Problem: serve.KindNetlist, Netlist: gwTestNetlist},
	} {
		code, resp, err := postGwSolve(f.gwServer.URL, req)
		if err != nil {
			t.Fatal(err)
		}
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", req.Problem, code)
		}
		if resp.Problem != req.Problem {
			t.Fatalf("response problem = %q, want %q", resp.Problem, req.Problem)
		}
	}
	page := scrape(t, f.gwServer.URL)
	if !strings.Contains(page, `pdegw_requests_total{code="200"} 3`) {
		t.Fatalf("metrics missing 3 OK requests:\n%s", page)
	}
}

// TestGatewayShapeAffinity: repeats of one problem land on exactly one
// backend, whose solve cache serves the repeats — the routing invariant
// the ring exists for.
func TestGatewayShapeAffinity(t *testing.T) {
	f := newTestFleet(t, 3, Config{})
	req := serve.Request{Problem: serve.KindBurgers2D, N: 5}
	for i := 0; i < 4; i++ {
		code, _, err := postGwSolve(f.gwServer.URL, req)
		if err != nil {
			t.Fatal(err)
		}
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}

	page := scrape(t, f.gwServer.URL)
	routed := 0
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, "pdegw_backend_routed_total{") && !strings.HasSuffix(line, " 0") {
			routed++
		}
	}
	if routed != 1 {
		t.Fatalf("same shape routed to %d backends, want 1\n%s", routed, page)
	}

	// The pinned backend replays the repeats from its solve cache; the
	// other backends never even allocate the shape.
	hot := 0
	for _, ts := range f.backends {
		bp := scrape(t, ts.URL)
		if strings.Contains(bp, "pdeserve_cache_hits_total 3") {
			hot++
		} else if !strings.Contains(bp, "pdeserve_cache_hits_total 0") {
			t.Fatalf("unexpected cache counters on %s:\n%s", ts.URL, bp)
		}
	}
	if hot != 1 {
		t.Fatalf("%d backends saw cache hits, want exactly the pinned one", hot)
	}
}

// TestGatewayFailoverZero5xx: killing the backend that owns a warm shape
// never surfaces a 5xx — the request fails over to the next ring
// successor, the dead backend is evicted, and the failover counter moves.
func TestGatewayFailoverZero5xx(t *testing.T) {
	f := newTestFleet(t, 3, Config{ProbeInterval: time.Hour}) // dispatch path does the evicting
	reqs := []serve.Request{
		{Problem: serve.KindBurgers2D, N: 5},
		{Problem: serve.KindBurgers2D, N: 6},
		{Problem: serve.KindBurgers1D, N: 32},
		{Problem: serve.KindNetlist, Netlist: gwTestNetlist},
	}
	for _, r := range reqs {
		if code, _, err := postGwSolve(f.gwServer.URL, r); err != nil || code != http.StatusOK {
			t.Fatalf("warm-up %s: code=%d err=%v", r.Problem, code, err)
		}
	}

	// Kill exactly the backend that owns the first shape, so at least one
	// request below must walk the ring past a dead member.
	f.backends[f.ownerIndex(t, reqs[0])].Close()

	for _, r := range reqs {
		code, _, err := postGwSolve(f.gwServer.URL, r)
		if err != nil {
			t.Fatal(err)
		}
		if code >= 500 {
			t.Fatalf("%s surfaced %d after backend kill", r.Problem, code)
		}
	}

	page := scrape(t, f.gwServer.URL)
	snap := clusterSnap(t, f.gwServer.URL)
	evicted := 0
	for _, m := range snap.Members {
		if m.State == "evicted" {
			evicted++
		}
	}
	if evicted != 1 {
		t.Fatalf("evicted members = %d, want 1\n%s", evicted, page)
	}
	if strings.Contains(page, "pdegw_failovers_total 0\n") {
		t.Fatalf("no failovers recorded after backend kill:\n%s", page)
	}
}

// TestGatewayProberEvictsAndReadds: the probe loop notices a draining
// backend without any traffic, and a recovered backend rejoins on the
// backoff schedule.
func TestGatewayProberEvictsAndReadds(t *testing.T) {
	f := newTestFleet(t, 3, Config{ProbeInterval: 20 * time.Millisecond})

	// Drain one backend: its readiness flips to 503 while the listener
	// stays up, which must still evict it.
	f.servers[2].BeginDrain()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap := clusterSnap(t, f.gwServer.URL); snap.Healthy == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never evicted the draining backend")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// "Restart" it: swap in a fresh serve.Server on the same listener so
	// the URL (and ring position) is unchanged.
	fresh := serve.NewServer(serve.Config{Workers: 1, QueueDepth: 16})
	f.handlers[2].v.Store(fresh.Handler())
	for {
		snap := clusterSnap(t, f.gwServer.URL)
		if snap.Healthy == 3 {
			for _, m := range snap.Members {
				if m.State != "healthy" {
					t.Fatalf("member %s still %s after recovery", m.URL, m.State)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never re-added the recovered backend")
		}
		time.Sleep(10 * time.Millisecond)
	}
	page := scrape(t, f.gwServer.URL)
	for _, want := range []string{"pdegw_evictions_total 1", "pdegw_readds_total 1", "pdegw_healthy_backends 3"} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics missing %q:\n%s", want, page)
		}
	}
}

// TestGatewayBatchDedup: identical concurrent requests coalesce into one
// window and one upstream call.
func TestGatewayBatchDedup(t *testing.T) {
	f := newTestFleet(t, 2, Config{BatchWindow: 300 * time.Millisecond, MaxBatch: 4})
	req := serve.Request{Problem: serve.KindBurgers2D, N: 5}

	const waiters = 4
	var wg sync.WaitGroup
	codes := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, _ = postGwSolve(f.gwServer.URL, req)
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("waiter %d: status %d", i, c)
		}
	}
	page := scrape(t, f.gwServer.URL)
	if strings.Contains(page, "pdegw_batch_deduped_total 0\n") {
		t.Fatalf("no dedup recorded for identical concurrent requests:\n%s", page)
	}
	if !strings.Contains(page, `pdegw_requests_total{code="200"} 4`) {
		t.Fatalf("metrics missing the 4 OK requests:\n%s", page)
	}
}

func TestGatewayRejectsBadRequests(t *testing.T) {
	f := newTestFleet(t, 1, Config{})
	for _, body := range []string{
		`{"problem":"no-such-problem"}`,
		`{"problem":"burgers2d","n":-3}`,
		`{"unknown_field":1}`,
		`not json`,
	} {
		resp, err := http.Post(f.gwServer.URL+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestGatewayDrain(t *testing.T) {
	f := newTestFleet(t, 1, Config{})

	resp, err := http.Get(f.gwServer.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain = %d", resp.StatusCode)
	}

	f.gw.BeginDrain()

	resp, err = http.Get(f.gwServer.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Ready || h.Reason != "draining" {
		t.Fatalf("healthz during drain = %d %+v", resp.StatusCode, h)
	}

	code, _, err := postGwSolve(f.gwServer.URL, serve.Request{Problem: serve.KindBurgers2D})
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain = %d, want 503", code)
	}

	// Liveness stays 200 throughout.
	resp, err = http.Get(f.gwServer.URL + "/livez")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("livez during drain = %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.gw.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestGatewayProblemsProxy(t *testing.T) {
	f := newTestFleet(t, 2, Config{})
	resp, err := http.Get(f.gwServer.URL + "/v1/problems")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("problems proxy = %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(serve.KindBurgers2D)) {
		t.Fatalf("problems body missing %s: %s", serve.KindBurgers2D, b)
	}
}
