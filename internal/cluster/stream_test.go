package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hybridpde/internal/cache"
	"hybridpde/internal/serve"
)

// gwStreamResult is one fully-read stream exchange through the gateway.
type gwStreamResult struct {
	code    int
	header  http.Header
	lines   []string
	body    string // non-200 rejection body
	doneSum bool   // a summary line with "done":true arrived
	frames  int    // lines that are frames (carry "step", no "done")
}

func postGwStream(t *testing.T, url string, req serve.Request) gwStreamResult {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url+"/v1/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	res := gwStreamResult{code: hr.StatusCode, header: hr.Header}
	if hr.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(hr.Body)
		res.body = string(b)
		return res
	}
	sc := bufio.NewScanner(hr.Body)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		res.lines = append(res.lines, line)
		var probe struct {
			Done *bool `json:"done"`
		}
		if json.Unmarshal([]byte(line), &probe) == nil && probe.Done != nil {
			res.doneSum = res.doneSum || *probe.Done
		} else {
			res.frames++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return res
}

// streamOwnerIndex returns which backend the ring pins a stream request's
// shape to (streams normalize under the stream rules, not the solve ones).
func (f *testFleet) streamOwnerIndex(t *testing.T, req serve.Request) int {
	t.Helper()
	if err := serve.NormalizeStream(&req, 0, 0); err != nil {
		t.Fatal(err)
	}
	var kb cache.KeyBuilder
	owner := f.gw.ring.Assign(serve.ShapeKey(&req, &kb))
	for i, ts := range f.backends {
		if ts.URL == owner {
			return i
		}
	}
	t.Fatalf("owner %s is not a fleet backend", owner)
	return -1
}

// TestGatewayStreamRelay: a stream through the gateway arrives frame by
// frame with the backend's content type, ends in a done summary, and moves
// the gateway's streaming metrics plane.
func TestGatewayStreamRelay(t *testing.T) {
	f := newTestFleet(t, 2, Config{})
	const steps = 4
	res := postGwStream(t, f.gwServer.URL, serve.Request{Problem: serve.KindBurgers2D, N: 4, Seed: 5, Steps: steps})
	if res.code != http.StatusOK {
		t.Fatalf("status %d body %q", res.code, res.body)
	}
	if ct := res.header.Get("Content-Type"); ct != serve.NDJSONContentType {
		t.Fatalf("Content-Type %q, want %q", ct, serve.NDJSONContentType)
	}
	if res.frames != steps || !res.doneSum {
		t.Fatalf("relay truncated: %d frames, done=%v", res.frames, res.doneSum)
	}

	page := scrape(t, f.gwServer.URL)
	for _, want := range []string{
		"pdegw_streams_proxied_total 1",
		"pdegw_stream_frames_total 5", // 4 frames + the summary line
		"pdegw_stream_failovers_total 0",
		"pdegw_stream_aborts_total 0",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics missing %q:\n%s", want, page)
		}
	}
}

// TestGatewayStreamFailoverBeforeFirstByte: when the shape's owner fails
// with a failover-class status before committing any byte, the gateway
// walks to the ring successor and the client sees one clean 200 stream —
// never a 5xx, never a partial restart.
func TestGatewayStreamFailoverBeforeFirstByte(t *testing.T) {
	f := newTestFleet(t, 2, Config{ProbeInterval: time.Hour})
	req := serve.Request{Problem: serve.KindBurgers2D, N: 4, Seed: 8, Steps: 3}
	owner := f.streamOwnerIndex(t, req)
	// swapHandler's atomic.Value needs a consistent concrete type, so the
	// dead backend is a mux too.
	dead := http.NewServeMux()
	dead.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusServiceUnavailable)
	})
	f.handlers[owner].v.Store(dead)

	res := postGwStream(t, f.gwServer.URL, req)
	if res.code != http.StatusOK {
		t.Fatalf("status %d body %q — failover before the first byte must stay invisible", res.code, res.body)
	}
	if res.frames != 3 || !res.doneSum {
		t.Fatalf("failed-over stream truncated: %d frames, done=%v", res.frames, res.doneSum)
	}

	page := scrape(t, f.gwServer.URL)
	if !strings.Contains(page, "pdegw_stream_failovers_total 1") {
		t.Fatalf("expected one stream failover in metrics:\n%s", page)
	}
	if !strings.Contains(page, `pdegw_requests_total{code="200"} 1`) {
		t.Fatalf("expected exactly one 200 at the gateway:\n%s", page)
	}
}

// TestGatewayStreamRepeatBitIdentity: the relay must not perturb payloads —
// repeated identical streams produce byte-identical frame lines through the
// gateway, whichever backend serves them.
func TestGatewayStreamRepeatBitIdentity(t *testing.T) {
	f := newTestFleet(t, 2, Config{})
	req := serve.Request{Problem: serve.KindBurgers1D, N: 32, Seed: 12, Steps: 4}
	first := postGwStream(t, f.gwServer.URL, req)
	if first.code != http.StatusOK || first.frames != 4 {
		t.Fatalf("first stream failed: %+v", first)
	}
	again := postGwStream(t, f.gwServer.URL, req)
	if len(again.lines) != len(first.lines) {
		t.Fatalf("repeat line count %d, want %d", len(again.lines), len(first.lines))
	}
	// Frame lines are deterministic; the summary line carries measured
	// wall times, so only the frames are compared byte for byte.
	for i := 0; i < first.frames; i++ {
		if again.lines[i] != first.lines[i] {
			t.Fatalf("frame line %d differs:\n%s\n%s", i, again.lines[i], first.lines[i])
		}
	}
}

// TestGatewayStreamValidationAndDrain: the gateway rejects invalid stream
// bodies itself (no backend round trip) and refuses new streams while
// draining.
func TestGatewayStreamValidationAndDrain(t *testing.T) {
	f := newTestFleet(t, 1, Config{})
	for _, tc := range []struct {
		name, wantErr string
		req           serve.Request
	}{
		{"steady kind", "no time loop", serve.Request{Problem: serve.KindBurgersSteady, N: 4, Steps: 2}},
		{"steps over cap", "-max-steps", serve.Request{Problem: serve.KindBurgers2D, N: 4, Steps: 100000}},
	} {
		res := postGwStream(t, f.gwServer.URL, tc.req)
		if res.code != http.StatusBadRequest || !strings.Contains(res.body, tc.wantErr) {
			t.Fatalf("%s: status %d body %q, want 400 mentioning %q", tc.name, res.code, res.body, tc.wantErr)
		}
	}

	f.gw.BeginDrain()
	res := postGwStream(t, f.gwServer.URL, serve.Request{Problem: serve.KindBurgers2D, N: 4, Steps: 2})
	if res.code != http.StatusServiceUnavailable {
		t.Fatalf("draining gateway answered %d to a new stream, want 503", res.code)
	}
}
