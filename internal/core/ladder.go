package core

import (
	"context"
	"errors"
	"fmt"

	"hybridpde/internal/nonlin"
	"hybridpde/internal/problem"
)

// Rung names one rung of the degradation ladder, ordered from the cheapest
// reuse of past work through the paper's preferred pipeline down to the
// most conservative pure-digital fallback.
type Rung string

const (
	// RungCache replays a content-addressed exact hit from the solve cache:
	// the same problem identity was solved before, so no solver stage runs.
	RungCache Rung = "cache"
	// RungWarmStart is parameter continuation: the cached solution of a
	// nearby parameter point becomes the digital Newton start, gated by the
	// same residual check as an analog seed.
	RungWarmStart Rung = "warm-start"
	// RungAnalog is the direct analog seed + digital polish pipeline.
	RungAnalog Rung = "analog"
	// RungDecomposed seeds through red-black decomposition (§6.3) — the
	// planned first rung for oversize problems, and the fallback re-tiling
	// when a full-capacity analog solve misbehaves.
	RungDecomposed Rung = "decomposed"
	// RungDigital is pure digital damped Newton from the original start.
	RungDigital Rung = "digital"
	// RungHomotopy is the global Newton homotopy (§3.2) — the last resort
	// when damped Newton diverges from every available seed.
	RungHomotopy Rung = "homotopy"
)

// RungAttempt accounts one attempted rung.
type RungAttempt struct {
	Rung Rung
	// SeedResidual and SeedRejected describe the rung's seeding stage
	// (zero/false for the unseeded rungs). The warm-start rung reports its
	// continuation candidate here, rejected by the same quality gate.
	SeedResidual float64
	SeedRejected bool
	Converged    bool
	Iterations   int
	// Seconds and EnergyJ are the rung's modelled cost; failed rungs still
	// accumulate into the final report's totals.
	Seconds float64
	EnergyJ float64
	Err     string
}

// FallbackReport is the typed degradation-ladder account attached to
// Report.Fallback.
type FallbackReport struct {
	// Attempts lists every rung tried, in order. It aliases ladder-owned
	// storage; copy it to retain beyond the ladder's next solve.
	Attempts []RungAttempt
	// Final is the rung that produced the returned solution (empty when
	// every rung failed).
	Final Rung
	// Degraded reports that Final differs from the planned first rung.
	Degraded bool
	// SeedRejections counts starts discarded by the quality gate: analog
	// seeds and warm-start continuation candidates alike.
	SeedRejections int
}

// LadderOptions tunes the degradation ladder.
type LadderOptions struct {
	// GateFactor is the seed-quality gate threshold (Options.SeedGate)
	// applied to the seeded rungs: a seed is kept only when
	// ‖F(seed)‖ ≤ GateFactor·‖F(start)‖. Default 1 — accept any seed that
	// does not make the start worse.
	GateFactor float64
	// HomotopyNewton configures the homotopy rung's corrector; the zero
	// value uses the homotopy defaults. Kept separate from Options.Newton
	// so a crippled polish configuration cannot drag the last-resort rung
	// down with it.
	HomotopyNewton nonlin.NewtonOptions
	// HomotopySteps is the λ step count of the homotopy rung. Default 30.
	HomotopySteps int
	// MaxHomotopyDim bounds the homotopy rung: the corrector runs on a
	// dense Jacobian, so the rung is skipped for problems larger than
	// this. Default 512.
	MaxHomotopyDim int
	// DisableHomotopy removes the homotopy rung entirely.
	DisableHomotopy bool
}

func (o *LadderOptions) defaults() {
	if o.GateFactor <= 0 {
		o.GateFactor = 1
	}
	if o.HomotopySteps <= 0 {
		o.HomotopySteps = 30
	}
	if o.MaxHomotopyDim <= 0 {
		o.MaxHomotopyDim = 512
	}
}

// Ladder orchestrates an ordered list of pluggable rungs over core.Solve.
// One Ladder serves repeated solves (it owns reusable buffers and the
// FallbackReport storage) and must not be shared between concurrent solves.
// The happy path — first applicable rung converges — allocates nothing once
// the buffers are warm, preserving the serving hot path's zero-alloc
// contract.
type Ladder struct {
	rungs []LadderRung
	start []float64
	// warm and f are the cache-fed rungs' scratch: the candidate solution
	// buffer (also the replayed cache-hit solution) and a residual buffer.
	warm []float64
	f    []float64
	// attempts backs fb.Attempts; its capacity is fixed at construction so
	// push never grows it.
	attempts []RungAttempt
	fb       FallbackReport
	st       RungState
}

// NewLadder returns a ladder with the paper's four standard rungs; buffers
// grow on first use.
func NewLadder() *Ladder { return NewLadderRungs(DefaultRungs()...) }

// NewLadderRungs returns a ladder that tries the given rungs in order. A
// rung may record up to two attempt rows per solve (a rejected seed plus
// its pristine-start polish), which bounds the attempt storage.
func NewLadderRungs(rungs ...LadderRung) *Ladder {
	return &Ladder{rungs: rungs, attempts: make([]RungAttempt, 0, 2*len(rungs))}
}

func (l *Ladder) ensure(dim int) {
	if len(l.start) != dim {
		l.start = make([]float64, dim)
		l.warm = make([]float64, dim)
		l.f = make([]float64, dim)
	}
}

//pdevet:noalloc
func (l *Ladder) push(a RungAttempt) {
	// The backing slice capacity is fixed at 2×rungs in NewLadderRungs, so
	// this append never grows.
	l.fb.Attempts = append(l.fb.Attempts, a) //pdevet:allow noalloc append into fixed-capacity attempts backing slice, never grows
	if a.SeedRejected {
		l.fb.SeedRejections++
	}
}

// isCtxErr reports whether err carries a context cancellation or deadline —
// the one failure class the ladder must not paper over with more rungs.
func isCtxErr(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// Solve runs the degradation ladder — by default analog seed → decomposed
// seed → pure digital damped Newton → Newton homotopy, with the cache and
// warm-start rungs ahead of analog when configured — stopping at the first
// rung that converges. Every rung restarts from the same snapshot of the
// initial guess. Failed rungs are accounted in the returned report's totals
// (their modelled time and energy were genuinely spent) and itemised in
// Report.Fallback; skipped rungs leave no trace, so a ladder whose optional
// rungs all skip reports bit-identically to one built without them.
//
// A context cancellation or deadline aborts the ladder immediately; any
// other rung failure falls through to the next rung. When every rung fails
// the last error is returned wrapped.
//
//pdevet:noalloc
func (l *Ladder) Solve(ctx context.Context, sys problem.SparseSystem, opts Options, lopts LadderOptions) (Report, error) {
	lopts.defaults()
	opts.defaults()
	dim := sys.Dim()
	l.ensure(dim)
	// Snapshot the start so every rung begins from the same iterate.
	if opts.InitialGuess != nil {
		if len(opts.InitialGuess) != dim {
			return Report{}, errors.New("core: initial guess has wrong dimension")
		}
		copy(l.start, opts.InitialGuess)
	} else if g, ok := sys.(problem.WarmStarter); ok {
		g.InitialGuessInto(l.start)
	} else {
		copy(l.start, sys.InitialGuess())
	}
	opts.InitialGuess = l.start
	if opts.SeedGate <= 0 {
		opts.SeedGate = lopts.GateFactor
	}

	l.fb.Attempts = l.attempts[:0]
	l.fb.Final = ""
	l.fb.Degraded = false
	l.fb.SeedRejections = 0

	st := &l.st
	*st = RungState{Sys: sys, Opts: opts, Lopts: lopts, Dim: dim, l: l}

	var lastErr error
	var spentSeconds, spentEnergy float64
	for _, r := range l.rungs {
		rep, done, err := r.Try(ctx, st)
		if isCtxErr(err) {
			return rep, err
		}
		if done {
			return l.finish(rep, spentSeconds, spentEnergy), nil
		}
		lastErr = coalesceErr(err, lastErr)
		spentSeconds += rep.TotalSeconds
		spentEnergy += rep.TotalEnergyJ
	}

	if lastErr == nil {
		lastErr = nonlin.ErrNoConvergence
	}
	rep := Report{Fallback: &l.fb, TotalSeconds: spentSeconds, TotalEnergyJ: spentEnergy}
	return rep, fmt.Errorf("core: degradation ladder exhausted after %d rungs: %w", len(l.fb.Attempts), lastErr) //pdevet:allow noalloc error path
}

// finish attaches the fallback account and folds the cost of earlier failed
// rungs into the totals.
//
//pdevet:noalloc
func (l *Ladder) finish(rep Report, spentSeconds, spentEnergy float64) Report {
	rep.TotalSeconds += spentSeconds
	rep.TotalEnergyJ += spentEnergy
	rep.Fallback = &l.fb
	return rep
}

// factorOpsDense is the ~n³/3 LU cost used to price homotopy correctors.
func factorOpsDense(n int) int64 {
	nn := int64(n)
	return nn * nn * nn / 3
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// coalesceErr keeps the most recent rung failure for the exhausted-ladder
// wrap.
func coalesceErr(err, prev error) error {
	if err != nil {
		return err
	}
	return prev
}
