package core

import (
	"context"
	"errors"
	"fmt"

	"hybridpde/internal/nonlin"
	"hybridpde/internal/problem"
)

// Rung names one rung of the degradation ladder, ordered from the paper's
// preferred pipeline to the most conservative pure-digital fallback.
type Rung string

const (
	// RungAnalog is the direct analog seed + digital polish pipeline.
	RungAnalog Rung = "analog"
	// RungDecomposed seeds through red-black decomposition (§6.3) — the
	// planned first rung for oversize problems, and the fallback re-tiling
	// when a full-capacity analog solve misbehaves.
	RungDecomposed Rung = "decomposed"
	// RungDigital is pure digital damped Newton from the original start.
	RungDigital Rung = "digital"
	// RungHomotopy is the global Newton homotopy (§3.2) — the last resort
	// when damped Newton diverges from every available seed.
	RungHomotopy Rung = "homotopy"
)

// RungAttempt accounts one attempted rung.
type RungAttempt struct {
	Rung Rung
	// SeedResidual and SeedRejected describe the rung's seeding stage
	// (zero/false for the unseeded rungs).
	SeedResidual float64
	SeedRejected bool
	Converged    bool
	Iterations   int
	// Seconds and EnergyJ are the rung's modelled cost; failed rungs still
	// accumulate into the final report's totals.
	Seconds float64
	EnergyJ float64
	Err     string
}

// FallbackReport is the typed degradation-ladder account attached to
// Report.Fallback.
type FallbackReport struct {
	// Attempts lists every rung tried, in order. It aliases ladder-owned
	// storage; copy it to retain beyond the ladder's next solve.
	Attempts []RungAttempt
	// Final is the rung that produced the returned solution (empty when
	// every rung failed).
	Final Rung
	// Degraded reports that Final differs from the planned first rung.
	Degraded bool
	// SeedRejections counts analog seeds discarded by the quality gate.
	SeedRejections int
}

// LadderOptions tunes the degradation ladder.
type LadderOptions struct {
	// GateFactor is the seed-quality gate threshold (Options.SeedGate)
	// applied to the seeded rungs: a seed is kept only when
	// ‖F(seed)‖ ≤ GateFactor·‖F(start)‖. Default 1 — accept any seed that
	// does not make the start worse.
	GateFactor float64
	// HomotopyNewton configures the homotopy rung's corrector; the zero
	// value uses the homotopy defaults. Kept separate from Options.Newton
	// so a crippled polish configuration cannot drag the last-resort rung
	// down with it.
	HomotopyNewton nonlin.NewtonOptions
	// HomotopySteps is the λ step count of the homotopy rung. Default 30.
	HomotopySteps int
	// MaxHomotopyDim bounds the homotopy rung: the corrector runs on a
	// dense Jacobian, so the rung is skipped for problems larger than
	// this. Default 512.
	MaxHomotopyDim int
	// DisableHomotopy removes the homotopy rung entirely.
	DisableHomotopy bool
}

func (o *LadderOptions) defaults() {
	if o.GateFactor <= 0 {
		o.GateFactor = 1
	}
	if o.HomotopySteps <= 0 {
		o.HomotopySteps = 30
	}
	if o.MaxHomotopyDim <= 0 {
		o.MaxHomotopyDim = 512
	}
}

// Ladder orchestrates the degradation ladder over core.Solve. One Ladder
// serves repeated solves (it owns reusable buffers and the FallbackReport
// storage) and must not be shared between concurrent solves. The happy path
// — first rung converges with an accepted seed — allocates nothing once the
// buffers are warm, preserving the serving hot path's zero-alloc contract.
type Ladder struct {
	start    []float64
	attempts [4]RungAttempt
	fb       FallbackReport
}

// NewLadder returns an empty ladder; buffers grow on first use.
func NewLadder() *Ladder { return &Ladder{} }

func (l *Ladder) ensure(dim int) {
	if len(l.start) != dim {
		l.start = make([]float64, dim)
	}
}

//pdevet:noalloc
func (l *Ladder) push(a RungAttempt) {
	// The backing array is fixed at the maximum rung count, so this append
	// never grows.
	l.fb.Attempts = append(l.fb.Attempts, a) //pdevet:allow noalloc append into fixed [4]RungAttempt backing array, never grows
	if a.SeedRejected {
		l.fb.SeedRejections++
	}
}

// isCtxErr reports whether err carries a context cancellation or deadline —
// the one failure class the ladder must not paper over with more rungs.
func isCtxErr(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// Solve runs the degradation ladder: analog seed → decomposed seed → pure
// digital damped Newton → Newton homotopy, stopping at the first rung that
// converges. Every rung restarts from the same snapshot of the initial
// guess. Failed rungs are accounted in the returned report's totals (their
// modelled time and energy were genuinely spent) and itemised in
// Report.Fallback.
//
// A context cancellation or deadline aborts the ladder immediately; any
// other rung failure falls through to the next rung. When every rung fails
// the last error is returned wrapped.
//
//pdevet:noalloc
func (l *Ladder) Solve(ctx context.Context, sys problem.SparseSystem, opts Options, lopts LadderOptions) (Report, error) {
	lopts.defaults()
	opts.defaults()
	dim := sys.Dim()
	l.ensure(dim)
	// Snapshot the start so every rung begins from the same iterate.
	if opts.InitialGuess != nil {
		if len(opts.InitialGuess) != dim {
			return Report{}, errors.New("core: initial guess has wrong dimension") //pdevet:allow noalloc error path
		}
		copy(l.start, opts.InitialGuess)
	} else if g, ok := sys.(problem.WarmStarter); ok {
		g.InitialGuessInto(l.start)
	} else {
		copy(l.start, sys.InitialGuess())
	}
	opts.InitialGuess = l.start
	if opts.SeedGate <= 0 {
		opts.SeedGate = lopts.GateFactor
	}

	l.fb.Attempts = l.attempts[:0]
	l.fb.Final = ""
	l.fb.Degraded = false
	l.fb.SeedRejections = 0

	seeded := opts.Seeder != nil && !opts.SkipAnalog
	first := RungDigital
	digitalTried := false
	var lastErr error
	var spentSeconds, spentEnergy float64

	if seeded {
		// Rung 1: the configured seeding policy (direct analog, or already
		// decomposed for oversize problems).
		rep, err := Solve(ctx, sys, opts)
		if isCtxErr(err) {
			return rep, err
		}
		rung := RungAnalog
		if rep.Decomposed {
			rung = RungDecomposed
		}
		first = rung
		done, out, outErr := l.seededOutcome(rung, rep, err, first, &digitalTried)
		if done {
			return l.finish(out, spentSeconds, spentEnergy), outErr
		}
		lastErr = coalesceErr(err, lastErr)
		spentSeconds += rep.TotalSeconds
		spentEnergy += rep.TotalEnergyJ

		// Rung 2: forced decomposition with smaller tiles, when rung 1 was
		// a direct analog solve and the problem can be tiled.
		if rung == RungAnalog {
			if fb := FallbackSeeder(opts.Seeder, dim); fb != nil {
				if _, ok := sys.(problem.Decomposable); ok {
					dopts := opts
					dopts.Seeder = fb
					rep, err = Solve(ctx, sys, dopts)
					if isCtxErr(err) {
						return rep, err
					}
					done, out, outErr = l.seededOutcome(RungDecomposed, rep, err, first, &digitalTried)
					if done {
						return l.finish(out, spentSeconds, spentEnergy), outErr
					}
					lastErr = coalesceErr(err, lastErr)
					spentSeconds += rep.TotalSeconds
					spentEnergy += rep.TotalEnergyJ
				}
			}
		}
	}

	// Rung 3: pure digital damped Newton from the pristine start — unless a
	// rejected seed above already ran exactly this (deterministically).
	if !digitalTried {
		dopts := opts
		dopts.SkipAnalog = true
		rep, err := Solve(ctx, sys, dopts)
		if isCtxErr(err) {
			return rep, err
		}
		conv := err == nil && rep.Digital.Converged
		l.push(RungAttempt{
			Rung: RungDigital, Converged: conv, Iterations: rep.Digital.TotalIters,
			Seconds: rep.TotalSeconds, EnergyJ: rep.TotalEnergyJ, Err: errString(err),
		})
		if conv {
			l.fb.Final = RungDigital
			l.fb.Degraded = first != RungDigital
			return l.finish(rep, spentSeconds, spentEnergy), nil
		}
		lastErr = coalesceErr(err, lastErr)
		spentSeconds += rep.TotalSeconds
		spentEnergy += rep.TotalEnergyJ
	}

	// Rung 4: Newton homotopy on the dense adapter.
	if !lopts.DisableHomotopy && dim <= lopts.MaxHomotopyDim {
		rep, err := l.homotopyRung(ctx, sys, opts, lopts, dim, first)
		if isCtxErr(err) {
			return rep, err
		}
		if err == nil {
			return l.finish(rep, spentSeconds, spentEnergy), nil
		}
		lastErr = coalesceErr(err, lastErr)
		spentSeconds += rep.TotalSeconds
		spentEnergy += rep.TotalEnergyJ
	}

	if lastErr == nil {
		lastErr = nonlin.ErrNoConvergence
	}
	rep := Report{Fallback: &l.fb, TotalSeconds: spentSeconds, TotalEnergyJ: spentEnergy}
	return rep, fmt.Errorf("core: degradation ladder exhausted after %d rungs: %w", len(l.fb.Attempts), lastErr) //pdevet:allow noalloc error path
}

// seededOutcome records the attempt rows of one seeded Solve call and
// decides whether the ladder is finished. A call whose seed was rejected by
// the gate has already polished from the pristine start, i.e. it ran the
// digital rung too; both rows are recorded and a converged polish ends the
// ladder at RungDigital.
//
//pdevet:noalloc
func (l *Ladder) seededOutcome(rung Rung, rep Report, err error, first Rung, digitalTried *bool) (bool, Report, error) {
	conv := err == nil && rep.Digital.Converged
	if rep.SeedRejected {
		l.push(RungAttempt{
			Rung: rung, SeedResidual: rep.SeedResidual, SeedRejected: true,
			Seconds: rep.AnalogSeconds, EnergyJ: rep.AnalogEnergyJ,
		})
		if *digitalTried {
			// The polish from the pristine start already ran (and failed)
			// deterministically in an earlier rejected rung; its repeat
			// outcome adds no information.
			return false, rep, err
		}
		*digitalTried = true
		l.push(RungAttempt{
			Rung: RungDigital, Converged: conv, Iterations: rep.Digital.TotalIters,
			Seconds: rep.DigitalSeconds, EnergyJ: rep.DigitalEnergyJ, Err: errString(err),
		})
		if conv {
			l.fb.Final = RungDigital
			l.fb.Degraded = first != RungDigital
			return true, rep, nil
		}
		return false, rep, err
	}
	l.push(RungAttempt{
		Rung: rung, SeedResidual: rep.SeedResidual, Converged: conv,
		Iterations: rep.Digital.TotalIters,
		Seconds:    rep.TotalSeconds, EnergyJ: rep.TotalEnergyJ, Err: errString(err),
	})
	if conv {
		l.fb.Final = rung
		l.fb.Degraded = rung != first
		return true, rep, nil
	}
	return false, rep, err
}

// homotopyRung runs the last-resort global Newton homotopy and prices it
// through the configured perf backend as dense Newton work. Only reached
// after at least one failed rung, so allocation is acceptable here.
func (l *Ladder) homotopyRung(ctx context.Context, sys problem.SparseSystem, opts Options, lopts LadderOptions, dim int, first Rung) (Report, error) {
	hopts := nonlin.HomotopyOptions{Steps: lopts.HomotopySteps, Predict: true, Newton: lopts.HomotopyNewton}
	hr, err := nonlin.NewtonHomotopy(ctx, nonlin.DenseAdapter{S: sys}, l.start, hopts)
	// Synthesise a dense-Newton work profile for the perf model: one
	// factorisation and one linear solve per corrector iteration.
	res := nonlin.Result{
		U: hr.U, Converged: hr.Converged, Residual: hr.Residual,
		Iterations: hr.NewtonIters, TotalIters: hr.NewtonIters,
		LinearSolves: hr.NewtonIters, FactorOps: int64(hr.NewtonIters) * factorOpsDense(dim),
		Attempts: 1, DampingUsed: 1,
	}
	rep := Report{
		U: hr.U, Digital: res, FinalResidual: hr.Residual,
		DigitalSeconds: opts.Perf.Time(res, dim),
		DigitalEnergyJ: opts.Perf.Energy(res, dim),
	}
	rep.TotalSeconds = rep.DigitalSeconds
	rep.TotalEnergyJ = rep.DigitalEnergyJ
	conv := err == nil && hr.Converged
	l.push(RungAttempt{
		Rung: RungHomotopy, Converged: conv, Iterations: hr.NewtonIters,
		Seconds: rep.TotalSeconds, EnergyJ: rep.TotalEnergyJ, Err: errString(err),
	})
	if conv {
		l.fb.Final = RungHomotopy
		l.fb.Degraded = first != RungHomotopy
		return rep, nil
	}
	if err == nil {
		err = nonlin.ErrNoConvergence
	}
	return rep, err
}

// finish attaches the fallback account and folds the cost of earlier failed
// rungs into the totals.
//
//pdevet:noalloc
func (l *Ladder) finish(rep Report, spentSeconds, spentEnergy float64) Report {
	rep.TotalSeconds += spentSeconds
	rep.TotalEnergyJ += spentEnergy
	rep.Fallback = &l.fb
	return rep
}

// factorOpsDense is the ~n³/3 LU cost used to price homotopy correctors.
func factorOpsDense(n int) int64 {
	nn := int64(n)
	return nn * nn * nn / 3
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// coalesceErr keeps the most recent rung failure for the exhausted-ladder
// wrap.
func coalesceErr(err, prev error) error {
	if err != nil {
		return err
	}
	return prev
}
