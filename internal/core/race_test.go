//go:build race

package core

// raceEnabled reports that this test binary was built with -race. The race
// detector changes allocation behaviour (finaliser and shadow bookkeeping),
// so strict 0-allocs assertions are skipped under it; the same test still
// runs for its data-race coverage.
const raceEnabled = true
