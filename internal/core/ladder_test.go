package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"hybridpde/internal/analog"
	"hybridpde/internal/fault"
	"hybridpde/internal/nonlin"
)

// faultyPrototype builds a prototype accelerator with the given fault spec
// compiled in; an empty spec leaves the accelerator healthy. Fixed seeds
// everywhere keep every test in this file bit-reproducible.
func faultyPrototype(t *testing.T, accSeed int64, specSrc string) *analog.Accelerator {
	t.Helper()
	acc := analog.NewPrototype(accSeed)
	if specSrc != "" {
		spec, err := fault.ParseSpec("seed 5\n" + specSrc)
		if err != nil {
			t.Fatal(err)
		}
		inj, err := fault.New(spec, 7)
		if err != nil {
			t.Fatal(err)
		}
		acc.SetInjector(inj)
	}
	return acc
}

// TestSeedGateFaultTable drives every fault class through the seed-quality
// gate and checks that the faulty seed flips it while the healthy control
// passes. All randomness is pinned (problem seed, fabric seed, injector
// seed+salt), so each case is run twice and must reproduce bit for bit.
func TestSeedGateFaultTable(t *testing.T) {
	cases := []struct {
		name string
		spec string // fault spec body ("" = healthy control)
		gate float64
		tmax float64 // settle horizon override (0 = default 200τ)
		want bool    // SeedRejected
	}{
		{name: "healthy", spec: "", gate: 0.5, want: false},
		{name: "stuck", spec: "stuck *\n", gate: 0.5, want: true},
		{name: "railed", spec: "railed *\n", gate: 0.5, want: true},
		// DAC drift only corrupts the initial state, which a full-length
		// continuous-Newton flow erases (the paper's §6 robustness argument);
		// at a 1τ horizon the drifted start has not recovered. The healthy
		// control at the same horizon and gate stays accepted.
		{name: "healthy-1tau", spec: "", gate: 0.43, tmax: 1, want: false},
		{name: "dac-drift", spec: "dac-drift * 0.8 0.9\n", gate: 0.43, tmax: 1, want: true},
		{name: "adc-drift", spec: "adc-drift * 2 0.5\n", gate: 0.5, want: true},
		{name: "saturation", spec: "saturation 0.05\n", gate: 0.5, want: true},
		{name: "burst", spec: "burst 1 3\n", gate: 0.5, want: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func() Report {
				b := mustRandomBurgers(t, 2, 0.5, 61)
				opts := Options{Seeder: AnalogSeeder(faultyPrototype(t, 10, tc.spec)), SeedGate: tc.gate}
				opts.Analog.TMaxTau = tc.tmax
				rep, err := Solve(nil, b, opts)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			rep := run()
			if rep.SeedRejected != tc.want {
				t.Fatalf("SeedRejected = %v, want %v (seed %g vs gate %g·start %g)",
					rep.SeedRejected, tc.want, rep.SeedResidual, tc.gate, rep.StartResidual)
			}
			if rep.StartResidual <= 0 {
				t.Fatal("gated solve must record the start residual")
			}
			if !rep.Digital.Converged {
				t.Fatal("the digital polish must converge whether or not the seed was kept")
			}
			again := run()
			if again.SeedResidual != rep.SeedResidual || again.StartResidual != rep.StartResidual || //pdevet:allow floateq pinned seeds promise bit-identity
				again.FinalResidual != rep.FinalResidual || again.SeedRejected != rep.SeedRejected { //pdevet:allow floateq pinned seeds promise bit-identity
				t.Fatalf("repeat run diverged: %+v vs %+v", rep, again)
			}
		})
	}
}

func TestSeedGateDisabledKeepsBadSeed(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 61)
	// Gate off: even a railed seed is handed to the polish unexamined.
	rep, err := Solve(nil, b, Options{Seeder: AnalogSeeder(faultyPrototype(t, 10, "railed *\n"))})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SeedRejected {
		t.Fatal("SeedGate 0 must disable gating")
	}
	if rep.StartResidual != 0 { //pdevet:allow floateq ungated solves never compute the start residual; zero is the untouched sentinel
		t.Fatal("ungated solve should not spend an Eval on the start residual")
	}
}

func TestLadderHealthyFirstRung(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 61)
	l := NewLadder()
	rep, err := l.Solve(nil, b, Options{Seeder: AnalogSeeder(analog.NewPrototype(10))}, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fb := rep.Fallback
	if fb == nil {
		t.Fatal("ladder solve must attach a FallbackReport")
	}
	if fb.Final != RungAnalog || fb.Degraded {
		t.Fatalf("healthy hardware must be served by the first rung: %+v", fb)
	}
	if len(fb.Attempts) != 1 || fb.SeedRejections != 0 {
		t.Fatalf("healthy ladder account wrong: %+v", fb)
	}
	if !fb.Attempts[0].Converged || fb.Attempts[0].Seconds <= 0 {
		t.Fatalf("attempt row incomplete: %+v", fb.Attempts[0])
	}
	if rep.FinalResidual > 1e-10 {
		t.Fatalf("residual %g too large", rep.FinalResidual)
	}
}

func TestLadderDegradesToDigitalUnderFaults(t *testing.T) {
	run := func() (Report, FallbackReport) {
		b := mustRandomBurgers(t, 2, 0.5, 61)
		l := NewLadder()
		rep, err := l.Solve(nil, b,
			Options{Seeder: AnalogSeeder(faultyPrototype(t, 10, "railed *\n"))}, LadderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		fb := *rep.Fallback
		fb.Attempts = append([]RungAttempt(nil), fb.Attempts...)
		return rep, fb
	}
	rep, fb := run()
	if fb.Final != RungDigital || !fb.Degraded {
		t.Fatalf("railed integrators must degrade to the digital rung: %+v", fb)
	}
	if fb.SeedRejections != 1 {
		t.Fatalf("SeedRejections = %d, want 1", fb.SeedRejections)
	}
	if len(fb.Attempts) != 2 {
		t.Fatalf("want rejected-analog + digital attempt rows, got %+v", fb.Attempts)
	}
	if fb.Attempts[0].Rung != RungAnalog || !fb.Attempts[0].SeedRejected {
		t.Fatalf("first row must be the rejected analog rung: %+v", fb.Attempts[0])
	}
	if fb.Attempts[1].Rung != RungDigital || !fb.Attempts[1].Converged {
		t.Fatalf("second row must be the converged digital rung: %+v", fb.Attempts[1])
	}
	// Failed-rung cost is genuinely spent: totals cover both rows.
	if rep.TotalSeconds < fb.Attempts[0].Seconds+fb.Attempts[1].Seconds {
		t.Fatalf("totals %g must include the failed rung (%g + %g)",
			rep.TotalSeconds, fb.Attempts[0].Seconds, fb.Attempts[1].Seconds)
	}
	if rep.FinalResidual > 1e-10 {
		t.Fatalf("residual %g too large", rep.FinalResidual)
	}
	_, again := run()
	if len(again.Attempts) != len(fb.Attempts) || again.Attempts[0].SeedResidual != fb.Attempts[0].SeedResidual { //pdevet:allow floateq pinned seeds promise bit-identity
		t.Fatalf("repeat ladder run diverged: %+v vs %+v", fb, again)
	}
}

func TestLadderDeadTileFallsThrough(t *testing.T) {
	// A dead tile drops prototype capacity from 8 to 7, below the 2×2
	// problem's 8 unknowns, and the 2×2 grid cannot be re-tiled under that
	// budget: both seeded rungs fail and the digital rung serves.
	b := mustRandomBurgers(t, 2, 0.5, 61)
	l := NewLadder()
	rep, err := l.Solve(nil, b,
		Options{Seeder: AnalogSeeder(faultyPrototype(t, 10, "dead-tile 0\n"))}, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fb := rep.Fallback
	if fb.Final != RungDigital || !fb.Degraded {
		t.Fatalf("dead tile must degrade to digital: %+v", fb)
	}
	if fb.Attempts[0].Err == "" {
		t.Fatalf("the failed seeded rung must record its error: %+v", fb.Attempts[0])
	}
	if !rep.Digital.Converged || rep.FinalResidual > 1e-10 {
		t.Fatalf("digital rung must still converge: %+v", rep)
	}
}

func TestLadderHomotopyLastResort(t *testing.T) {
	// Cripple the damped-Newton polish (2 iterations, fixed full step) so
	// the digital rung cannot converge; the homotopy rung has its own
	// corrector options and must still serve the request.
	b := mustRandomBurgers(t, 2, 0.5, 61)
	opts := Options{
		SkipAnalog:      true,
		Newton:          nonlin.NewtonOptions{MaxIter: 2, Damping: 1},
		DisableAutoDamp: true,
	}
	l := NewLadder()
	rep, err := l.Solve(nil, b, opts, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fb := rep.Fallback
	if fb.Final != RungHomotopy || !fb.Degraded {
		t.Fatalf("want the homotopy rung to serve, got %+v", fb)
	}
	if len(fb.Attempts) != 2 || fb.Attempts[0].Rung != RungDigital || fb.Attempts[0].Converged {
		t.Fatalf("want failed-digital + homotopy rows, got %+v", fb.Attempts)
	}
	if !fb.Attempts[1].Converged || fb.Attempts[1].Iterations == 0 || fb.Attempts[1].Seconds <= 0 {
		t.Fatalf("homotopy row incomplete: %+v", fb.Attempts[1])
	}
	if rep.FinalResidual > 1e-8 {
		t.Fatalf("homotopy residual %g too large", rep.FinalResidual)
	}
}

func TestLadderExhausted(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 61)
	opts := Options{
		SkipAnalog:      true,
		Newton:          nonlin.NewtonOptions{MaxIter: 2, Damping: 1},
		DisableAutoDamp: true,
	}
	l := NewLadder()
	rep, err := l.Solve(nil, b, opts, LadderOptions{DisableHomotopy: true})
	if err == nil {
		t.Fatal("crippled Newton with no homotopy rung must fail")
	}
	if !errors.Is(err, nonlin.ErrNoConvergence) {
		t.Fatalf("exhausted ladder must wrap the rung error, got %v", err)
	}
	if !strings.Contains(err.Error(), "ladder exhausted") {
		t.Fatalf("error %q should say the ladder is exhausted", err)
	}
	fb := rep.Fallback
	if fb == nil || fb.Final != "" || len(fb.Attempts) != 1 {
		t.Fatalf("exhausted ladder account wrong: %+v", fb)
	}
}

func TestLadderCtxCancelAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := mustRandomBurgers(t, 2, 0.5, 61)
	l := NewLadder()
	_, err := l.Solve(ctx, b, Options{Seeder: AnalogSeeder(analog.NewPrototype(10))}, LadderOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context must abort the ladder, got %v", err)
	}
}

// TestLadderReuseAcrossSolves is the serving contract: one Ladder serves
// many solves, and a healthy solve after a degraded one must not inherit
// stale fallback state.
func TestLadderReuseAcrossSolves(t *testing.T) {
	l := NewLadder()
	b := mustRandomBurgers(t, 2, 0.5, 61)
	rep, err := l.Solve(nil, b,
		Options{Seeder: AnalogSeeder(faultyPrototype(t, 10, "railed *\n"))}, LadderOptions{})
	if err != nil || rep.Fallback.Final != RungDigital {
		t.Fatalf("setup: want degraded digital solve, got %+v, %v", rep.Fallback, err)
	}
	b2 := mustRandomBurgers(t, 2, 0.5, 61)
	rep2, err := l.Solve(nil, b2, Options{Seeder: AnalogSeeder(analog.NewPrototype(10))}, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fb := rep2.Fallback
	if fb.Final != RungAnalog || fb.Degraded || fb.SeedRejections != 0 || len(fb.Attempts) != 1 {
		t.Fatalf("stale fallback state leaked into the next solve: %+v", fb)
	}
}
