package core

import (
	"math/rand"
	"testing"

	"hybridpde/internal/analog"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/pde"
)

// TestSolveProcsBitIdentical runs the full hybrid pipeline (analog seed +
// digital polish) at every worker count and demands bit-identical reports:
// same solution vector, same residuals, same iteration and FactorOps
// accounting. This is the ISSUE's determinism acceptance criterion at the
// pipeline layer.
func TestSolveProcsBitIdentical(t *testing.T) {
	run := func(procs int) Report {
		b := mustRandomBurgers(t, 4, 0.5, 61)
		opts := Options{
			Seeder:    AnalogSeeder(analog.NewPrototype(10)),
			Workspace: NewWorkspace(),
			Procs:     procs,
		}
		rep, err := Solve(nil, b, opts)
		if err != nil {
			t.Fatal(err)
		}
		rep.U = append([]float64(nil), rep.U...)
		return rep
	}
	ref := run(0)
	if !ref.Digital.Converged {
		t.Fatal("serial reference did not converge")
	}
	for _, procs := range []int{1, 2, 8} {
		rep := run(procs)
		if rep.SeedResidual != ref.SeedResidual || rep.FinalResidual != ref.FinalResidual { //pdevet:allow floateq the determinism contract promises bit-identity
			t.Fatalf("procs=%d: residuals diverged: seed %x/%x final %x/%x",
				procs, rep.SeedResidual, ref.SeedResidual, rep.FinalResidual, ref.FinalResidual)
		}
		if rep.Digital.Iterations != ref.Digital.Iterations || rep.Digital.FactorOps != ref.Digital.FactorOps {
			t.Fatalf("procs=%d: digital accounting diverged: %+v vs %+v", procs, rep.Digital, ref.Digital)
		}
		for i := range ref.U {
			if rep.U[i] != ref.U[i] { //pdevet:allow floateq the determinism contract promises bit-identity
				t.Fatalf("procs=%d: U[%d] = %x, want %x", procs, i, rep.U[i], ref.U[i])
			}
		}
	}
}

// TestLadderProcsBitIdenticalFallbackReport forces a degradation (railed
// integrators reject the analog seed) and checks the whole FallbackReport —
// every rung attempt row — is identical at every worker count. Procs flows
// through Ladder.Solve into each rung's digital stage.
func TestLadderProcsBitIdenticalFallbackReport(t *testing.T) {
	run := func(procs int) (Report, FallbackReport) {
		b := mustRandomBurgers(t, 2, 0.5, 61)
		l := NewLadder()
		rep, err := l.Solve(nil, b,
			Options{Seeder: AnalogSeeder(faultyPrototype(t, 10, "railed *\n")), Procs: procs},
			LadderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rep.U = append([]float64(nil), rep.U...)
		fb := *rep.Fallback
		fb.Attempts = append([]RungAttempt(nil), fb.Attempts...)
		return rep, fb
	}
	refRep, refFB := run(0)
	if refFB.Final != RungDigital || !refFB.Degraded {
		t.Fatalf("fixture must degrade to the digital rung: %+v", refFB)
	}
	for _, procs := range []int{2, 8} {
		rep, fb := run(procs)
		if fb.Final != refFB.Final || fb.Degraded != refFB.Degraded ||
			fb.SeedRejections != refFB.SeedRejections || len(fb.Attempts) != len(refFB.Attempts) {
			t.Fatalf("procs=%d: FallbackReport shape diverged: %+v vs %+v", procs, fb, refFB)
		}
		for i := range fb.Attempts {
			if fb.Attempts[i] != refFB.Attempts[i] {
				t.Fatalf("procs=%d: attempt %d diverged: %+v vs %+v", procs, i, fb.Attempts[i], refFB.Attempts[i])
			}
		}
		if rep.FinalResidual != refRep.FinalResidual { //pdevet:allow floateq the determinism contract promises bit-identity
			t.Fatalf("procs=%d: FinalResidual %x, want %x", procs, rep.FinalResidual, refRep.FinalResidual)
		}
		for i := range refRep.U {
			if rep.U[i] != refRep.U[i] { //pdevet:allow floateq the determinism contract promises bit-identity
				t.Fatalf("procs=%d: U[%d] = %x, want %x", procs, i, rep.U[i], refRep.U[i])
			}
		}
	}
}

// BenchmarkNewtonSparseSteadyStepParallel is the parallel twin of
// BenchmarkNewtonSparseSteadyStep: the same planted-root repeated solve
// with Procs set, pinning that the pooled kernels keep the warm path at
// 0 allocs/op. On multicore hardware compare the two to read the speedup;
// cmd/pdebench commits the machine-readable version.
func BenchmarkNewtonSparseSteadyStepParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(80))
	burgers, err := pde.NewBurgers(8, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	steady := pde.NewBurgersSteady(burgers)
	root := make([]float64, steady.Dim())
	for i := range root {
		root[i] = 2*rng.Float64() - 1
	}
	if err := steady.SetRHSForRoot(root); err != nil {
		b.Fatal(err)
	}
	u0 := make([]float64, steady.Dim())
	for i := range root {
		u0[i] = root[i] + 0.05*(2*rng.Float64()-1)
	}
	solver := nonlin.NewSparseSolver()
	defer solver.Close()
	opts := nonlin.NewtonOptions{Tol: 1e-12, MaxIter: 60, Procs: 4}
	if _, err := solver.Solve(nil, steady, u0, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(nil, steady, u0, opts); err != nil {
			b.Fatal(err)
		}
	}
}
