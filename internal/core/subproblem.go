package core

import (
	"fmt"

	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
)

// subProblem restricts a full nonlinear stencil system to a subset of its
// unknowns, freezing the rest at the current global iterate — the
// subproblem shape nonlinear Gauss-Seidel generates (§6.3). It implements
// nonlin.SparseSystem so the accelerator and the digital solvers can both
// consume it.
type subProblem struct {
	full     nonlin.SparseSystem
	unknowns []int     // global indices owned by this subproblem
	global   []float64 // working copy of the global iterate
	fFull    []float64
}

func newSubProblem(full nonlin.SparseSystem, unknowns []int, globalState []float64) *subProblem {
	return &subProblem{
		full:     full,
		unknowns: unknowns,
		global:   la.Copy(globalState),
		fFull:    make([]float64, full.Dim()),
	}
}

// Dim returns the number of owned unknowns.
func (s *subProblem) Dim() int { return len(s.unknowns) }

// PolynomialDegree propagates the full system's degree (for the analog
// dynamic-range scaler); stencils default to quadratic.
func (s *subProblem) PolynomialDegree() int {
	if d, ok := s.full.(interface{ PolynomialDegree() int }); ok {
		return d.PolynomialDegree()
	}
	return 2
}

// restrict extracts this subproblem's unknowns from a global vector.
func (s *subProblem) restrict(global []float64) []float64 {
	out := make([]float64, len(s.unknowns))
	for k, g := range s.unknowns {
		out[k] = global[g]
	}
	return out
}

// scatter writes owned values back into a global vector.
func (s *subProblem) scatter(sub, global []float64) {
	for k, g := range s.unknowns {
		global[g] = sub[k]
	}
}

// Eval computes the owned residual rows with frozen neighbours.
func (s *subProblem) Eval(u, f []float64) error {
	if len(u) != len(s.unknowns) || len(f) != len(s.unknowns) {
		return fmt.Errorf("core: subproblem Eval dimension mismatch")
	}
	s.scatter(u, s.global)
	if err := s.full.Eval(s.global, s.fFull); err != nil {
		return err
	}
	for k, g := range s.unknowns {
		f[k] = s.fFull[g]
	}
	return nil
}

// JacobianCSR extracts the owned block of the full Jacobian.
func (s *subProblem) JacobianCSR(u []float64) (*la.CSR, error) {
	s.scatter(u, s.global)
	j, err := s.full.JacobianCSR(s.global)
	if err != nil {
		return nil, err
	}
	return j.ExtractSubmatrix(s.unknowns), nil
}

var _ nonlin.SparseSystem = (*subProblem)(nil)
