package core

import "sync"

// WorkspacePool recycles Workspaces across concurrent solve paths. A single
// Workspace must never be shared between concurrent Solve calls (its buffers
// are per-call scratch), but a pool of them turns a fleet of request
// handlers into the same allocation profile as one long time-stepping loop:
// each handler checks a Workspace out, solves, and returns it, and after
// warm-up the steady-state path performs no allocation as long as the
// problem shapes recur (a Workspace re-sizes itself on shape change).
//
// The zero value is ready to use. WorkspacePool is safe for concurrent use.
type WorkspacePool struct {
	pool sync.Pool
}

// NewWorkspacePool returns an empty pool.
func NewWorkspacePool() *WorkspacePool { return &WorkspacePool{} }

// Get checks out a Workspace, allocating a fresh one only when the pool is
// empty. The caller owns it until Put.
func (p *WorkspacePool) Get() *Workspace {
	if ws, ok := p.pool.Get().(*Workspace); ok {
		return ws
	}
	return NewWorkspace()
}

// Put returns a Workspace to the pool. The caller must not use ws (or any
// Report.U that aliases its storage) afterwards. Put(nil) is a no-op.
func (p *WorkspacePool) Put(ws *Workspace) {
	if ws != nil {
		p.pool.Put(ws)
	}
}
