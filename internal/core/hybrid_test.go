package core

import (
	"math"
	"math/rand"
	"testing"

	"hybridpde/internal/analog"
	"hybridpde/internal/la"
	"hybridpde/internal/pde"
)

func mustRandomBurgers(t *testing.T, n int, re float64, seed int64) *pde.Burgers {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b, err := pde.RandomBurgers(n, re, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDecomposeCoversAllUnknownsOnce(t *testing.T) {
	tiles := decompose(4, 2)
	if len(tiles) != 4 {
		t.Fatalf("4×4 grid with 2×2 tiles should give 4 tiles, got %d", len(tiles))
	}
	seen := map[int]int{}
	colours := map[int]int{}
	for _, tl := range tiles {
		colours[tl.colour]++
		for _, g := range tl.unknowns {
			seen[g]++
		}
	}
	if len(seen) != 32 {
		t.Fatalf("expected 32 unknowns covered, got %d", len(seen))
	}
	for g, c := range seen {
		if c != 1 {
			t.Fatalf("unknown %d covered %d times", g, c)
		}
	}
	if colours[0] != 2 || colours[1] != 2 {
		t.Fatalf("checkerboard colouring wrong: %v", colours)
	}
}

func TestSubProblemConsistentWithFull(t *testing.T) {
	b := mustRandomBurgers(t, 4, 1.0, 60)
	global := b.InitialGuess()
	tiles := decompose(4, 2)
	sub := newSubProblem(b, tiles[1].unknowns, global)

	u := sub.restrict(global)
	fSub := make([]float64, sub.Dim())
	if err := sub.Eval(u, fSub); err != nil {
		t.Fatal(err)
	}
	fFull := make([]float64, b.Dim())
	if err := b.Eval(global, fFull); err != nil {
		t.Fatal(err)
	}
	for k, g := range tiles[1].unknowns {
		if math.Abs(fSub[k]-fFull[g]) > 1e-14 {
			t.Fatalf("subproblem residual row %d differs from full row %d", k, g)
		}
	}

	jSub, err := sub.JacobianCSR(u)
	if err != nil {
		t.Fatal(err)
	}
	jFull, err := b.JacobianCSR(global)
	if err != nil {
		t.Fatal(err)
	}
	for k, gr := range tiles[1].unknowns {
		for c, gc := range tiles[1].unknowns {
			if math.Abs(jSub.At(k, c)-jFull.At(gr, gc)) > 1e-14 {
				t.Fatalf("subproblem Jacobian (%d,%d) differs from full (%d,%d)", k, c, gr, gc)
			}
		}
	}
	if sub.PolynomialDegree() != 2 {
		t.Fatal("subproblem must inherit quadratic degree")
	}
}

func TestHybridDirectPath(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 61)
	h := New(analog.NewPrototype(10))
	rep, err := h.SolveBurgers(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AnalogUsed || rep.Decomposed {
		t.Fatalf("2×2 problem must use the direct analog path: %+v", rep)
	}
	if rep.FinalResidual > 1e-10 {
		t.Fatalf("polish residual %g too large", rep.FinalResidual)
	}
	if rep.AnalogSeconds <= 0 || rep.AnalogEnergyJ <= 0 {
		t.Fatal("analog stage cost not recorded")
	}
	if rep.TotalSeconds < rep.DigitalSeconds {
		t.Fatal("total time must include both stages")
	}
	// The analog stage is orders of magnitude cheaper than the digital.
	if rep.AnalogSeconds > rep.DigitalSeconds {
		t.Fatalf("analog stage (%g s) should be negligible next to digital (%g s)",
			rep.AnalogSeconds, rep.DigitalSeconds)
	}
}

func TestHybridDecomposedPath(t *testing.T) {
	// 4×4 grid = 32 unknowns > prototype capacity 8 → red-black NLGS over
	// 2×2 subdomains.
	b := mustRandomBurgers(t, 4, 0.5, 62)
	h := New(analog.NewPrototype(11))
	rep, err := h.SolveBurgers(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Decomposed {
		t.Fatal("oversize problem must decompose")
	}
	if rep.Subproblems != 4 {
		t.Fatalf("expected 4 subdomains, got %d", rep.Subproblems)
	}
	if rep.GSSweeps < 1 {
		t.Fatal("Gauss-Seidel sweeps not recorded")
	}
	if rep.FinalResidual > 1e-10 {
		t.Fatalf("polish residual %g too large", rep.FinalResidual)
	}
}

func TestSeedImprovesOverColdStart(t *testing.T) {
	// At an uncomfortable Reynolds number the analog seed should land the
	// digital solver closer to the root than the cold start.
	b := mustRandomBurgers(t, 2, 2.0, 63)
	h := New(analog.NewPrototype(12))
	seeded, err := h.SolveBurgers(b, Options{})
	if err != nil {
		t.Skipf("seeded solve did not converge for this draw: %v", err)
	}
	cold, err := h.SolveBurgers(b, Options{SkipAnalog: true})
	if err != nil {
		t.Skipf("cold solve did not converge for this draw: %v", err)
	}
	f := make([]float64, b.Dim())
	if err := b.Eval(b.InitialGuess(), f); err != nil {
		t.Fatal(err)
	}
	coldResidual := la.Norm2(f)
	if seeded.SeedResidual >= coldResidual {
		t.Fatalf("analog seed residual %g should beat cold-start residual %g",
			seeded.SeedResidual, coldResidual)
	}
	if seeded.Digital.Iterations > cold.Digital.Iterations {
		t.Fatalf("seeded polish took %d iterations, cold took %d — seeding should not hurt",
			seeded.Digital.Iterations, cold.Digital.Iterations)
	}
}

func TestGoldenSolveCertifies(t *testing.T) {
	b := mustRandomBurgers(t, 3, 0.5, 64)
	u, err := GoldenSolve(b, b.InitialGuess())
	if err != nil {
		t.Fatal(err)
	}
	f := make([]float64, b.Dim())
	if err := b.Eval(u, f); err != nil {
		t.Fatal(err)
	}
	if la.Norm2(f) > 1e-9 {
		t.Fatalf("golden solution not certified: ‖F‖ = %g", la.Norm2(f))
	}
}

func TestDigitalToAccuracyStopsAtTarget(t *testing.T) {
	b := mustRandomBurgers(t, 3, 0.5, 65)
	golden, err := GoldenSolve(b, b.InitialGuess())
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the start, then demand the paper's 5.38 % accuracy.
	u0 := la.Copy(b.InitialGuess())
	for i := range u0 {
		u0[i] += 0.3
	}
	res, err := DigitalToAccuracy(b, u0, golden, 0.0538, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RMS > 0.0538 {
		t.Fatalf("stopped at RMS %g, above target", res.RMS)
	}
	// A tighter target must need at least as many iterations.
	res2, err := DigitalToAccuracy(b, u0, golden, 1e-6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations < res.Iterations {
		t.Fatalf("tighter target took fewer iterations: %d < %d", res2.Iterations, res.Iterations)
	}
}

func TestDigitalToAccuracyAlreadyThere(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 66)
	golden, err := GoldenSolve(b, b.InitialGuess())
	if err != nil {
		t.Fatal(err)
	}
	res, err := DigitalToAccuracy(b, golden, golden, 0.0538, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Fatalf("starting at the golden solution should need 0 iterations, took %d", res.Iterations)
	}
}

func TestDecomposeNonDividingTileShrinks(t *testing.T) {
	// A 6×6 grid with a capacity suggesting 4×4 tiles must shrink to a
	// divisor (3×3), still covering all unknowns exactly once.
	tiles := decompose(6, 3)
	if len(tiles) != 4 {
		t.Fatalf("6×6 grid with 3×3 tiles should give 4 tiles, got %d", len(tiles))
	}
	seen := map[int]bool{}
	for _, tl := range tiles {
		for _, g := range tl.unknowns {
			if seen[g] {
				t.Fatalf("unknown %d covered twice", g)
			}
			seen[g] = true
		}
	}
	if len(seen) != 72 {
		t.Fatalf("expected 72 unknowns, got %d", len(seen))
	}
}

func TestHybridInitialGuessValidation(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 67)
	h := New(analog.NewPrototype(13))
	if _, err := h.SolveBurgers(b, Options{InitialGuess: make([]float64, 3)}); err == nil {
		t.Fatal("wrong-length initial guess must be rejected")
	}
}

func TestHybridSkipAnalogReportsNoAnalogCost(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 68)
	h := New(analog.NewPrototype(14))
	rep, err := h.SolveBurgers(b, Options{SkipAnalog: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AnalogUsed || rep.AnalogSeconds != 0 || rep.AnalogEnergyJ != 0 {
		t.Fatalf("cold solve must report zero analog cost: %+v", rep)
	}
	if rep.TotalSeconds != rep.DigitalSeconds {
		t.Fatal("totals must equal the digital stage when analog is skipped")
	}
}

func TestHybridGPUPerfTargetPricing(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 69)
	h := New(analog.NewPrototype(15))
	repCPU, err := h.SolveBurgers(b, Options{SkipAnalog: true, Perf: PerfCPU})
	if err != nil {
		t.Fatal(err)
	}
	repGPU, err := h.SolveBurgers(b, Options{SkipAnalog: true, Perf: PerfGPU})
	if err != nil {
		t.Fatal(err)
	}
	if repCPU.Digital.Iterations != repGPU.Digital.Iterations {
		t.Fatal("pricing target must not change the algorithm")
	}
	if repCPU.DigitalSeconds == repGPU.DigitalSeconds {
		t.Fatal("CPU and GPU pricing should differ")
	}
	// For a tiny 8-unknown problem, GPU launch latency dominates: the GPU
	// must be priced slower than the CPU (the paper offloads only large
	// problems to the GPU).
	if repGPU.DigitalSeconds < repCPU.DigitalSeconds {
		t.Fatalf("tiny problems should be slower on the GPU model: GPU %g s vs CPU %g s",
			repGPU.DigitalSeconds, repCPU.DigitalSeconds)
	}
}

func TestSubProblemScatterRestrictRoundTrip(t *testing.T) {
	b := mustRandomBurgers(t, 4, 1.0, 70)
	global := b.InitialGuess()
	tiles := decompose(4, 2)
	sub := newSubProblem(b, tiles[2].unknowns, global)
	u := sub.restrict(global)
	for i := range u {
		u[i] += 1.5
	}
	sub.scatter(u, global)
	got := sub.restrict(global)
	for i := range got {
		if got[i] != u[i] {
			t.Fatalf("scatter/restrict round trip failed at %d", i)
		}
	}
}
