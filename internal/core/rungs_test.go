package core

import (
	"math"
	"testing"

	"hybridpde/internal/analog"
)

// fakeCache is a hand-wound SolveCache for driving the cache and
// warm-start rungs deterministically.
type fakeCache struct {
	hit     CachedSolve
	hitU    []float64
	hasHit  bool
	warmU   []float64
	hasWarm bool
}

func (f *fakeCache) Lookup(dst []float64) (CachedSolve, bool) {
	if !f.hasHit || len(f.hitU) != len(dst) {
		return CachedSolve{}, false
	}
	copy(dst, f.hitU)
	return f.hit, true
}

func (f *fakeCache) Nearest(dst []float64) bool {
	if !f.hasWarm || len(f.warmU) != len(dst) {
		return false
	}
	copy(dst, f.warmU)
	return true
}

// TestCachedRungsColdIdentity is the standing contract: with an empty (or
// unbound) cache the six-rung ladder reports bit-identically to the
// original four-rung ladder — a miss leaves no trace.
func TestCachedRungsColdIdentity(t *testing.T) {
	solve := func(l *Ladder) Report {
		b := mustRandomBurgers(t, 2, 0.5, 61)
		rep, err := l.Solve(nil, b, Options{Seeder: AnalogSeeder(analog.NewPrototype(10))}, LadderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := solve(NewLadder())
	cold := solve(NewLadderRungs(CachedRungs(&fakeCache{})...))
	nilBound := solve(NewLadderRungs(CachedRungs(nil)...))
	for name, rep := range map[string]Report{"empty cache": cold, "nil cache": nilBound} {
		if rep.FinalResidual != base.FinalResidual || rep.SeedResidual != base.SeedResidual || //pdevet:allow floateq pinned seeds promise bit-identity
			rep.Digital.TotalIters != base.Digital.TotalIters {
			t.Fatalf("%s: cold solve diverged from cache-free ladder: %+v vs %+v", name, rep, base)
		}
		for i := range rep.U {
			if rep.U[i] != base.U[i] { //pdevet:allow floateq pinned seeds promise bit-identity
				t.Fatalf("%s: U[%d] diverged", name, i)
			}
		}
		fb, bfb := rep.Fallback, base.Fallback
		if fb.Final != bfb.Final || fb.Degraded != bfb.Degraded || len(fb.Attempts) != len(bfb.Attempts) {
			t.Fatalf("%s: fallback account diverged: %+v vs %+v", name, fb, bfb)
		}
	}
}

func TestCacheRungExactHit(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 61)
	base, err := NewLadder().Solve(nil, b, Options{Seeder: AnalogSeeder(analog.NewPrototype(10))}, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fc := &fakeCache{
		hasHit: true,
		hitU:   append([]float64(nil), base.U...),
		hit: CachedSolve{
			Converged: true, Iterations: base.Digital.TotalIters,
			Residual: base.FinalResidual, SeedResidual: base.SeedResidual,
			AnalogUsed: base.AnalogUsed, Seconds: base.TotalSeconds, EnergyJ: base.TotalEnergyJ,
		},
	}
	l := NewLadderRungs(CachedRungs(fc)...)
	b2 := mustRandomBurgers(t, 2, 0.5, 61)
	rep, err := l.Solve(nil, b2, Options{Seeder: AnalogSeeder(analog.NewPrototype(10))}, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fb := rep.Fallback
	if fb.Final != RungCache || fb.Degraded {
		t.Fatalf("exact hit must be served by the cache rung undegraded: %+v", fb)
	}
	if len(fb.Attempts) != 1 || fb.Attempts[0].Rung != RungCache || !fb.Attempts[0].Converged {
		t.Fatalf("cache attempt row wrong: %+v", fb.Attempts)
	}
	if !rep.Digital.Converged || rep.Digital.TotalIters != base.Digital.TotalIters {
		t.Fatalf("replayed digital account wrong: %+v", rep.Digital)
	}
	if rep.FinalResidual != base.FinalResidual || rep.TotalSeconds != base.TotalSeconds { //pdevet:allow floateq replay is exact
		t.Fatalf("replayed scalars diverged: %+v", rep)
	}
	for i := range rep.U {
		if rep.U[i] != base.U[i] { //pdevet:allow floateq replay is exact
			t.Fatalf("replayed U[%d] diverged", i)
		}
	}
}

// TestWarmStartRungContinuation pins the continuation payoff: starting
// Newton from a nearby cached solution must converge in strictly fewer
// iterations than the cold digital solve of the same problem.
func TestWarmStartRungContinuation(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 61)
	cold, err := NewLadder().Solve(nil, b, Options{SkipAnalog: true}, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Digital.TotalIters < 2 {
		t.Fatalf("cold solve too easy (%d iters) to show a warm-start win", cold.Digital.TotalIters)
	}
	fc := &fakeCache{hasWarm: true, warmU: append([]float64(nil), cold.U...)}
	l := NewLadderRungs(CachedRungs(fc)...)
	b2 := mustRandomBurgers(t, 2, 0.5, 61)
	rep, err := l.Solve(nil, b2, Options{SkipAnalog: true}, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fb := rep.Fallback
	if fb.Final != RungWarmStart || fb.Degraded {
		t.Fatalf("warm start must serve undegraded: %+v", fb)
	}
	if len(fb.Attempts) != 1 || fb.Attempts[0].Rung != RungWarmStart || fb.Attempts[0].SeedRejected {
		t.Fatalf("warm-start attempt row wrong: %+v", fb.Attempts)
	}
	if rep.Digital.TotalIters >= cold.Digital.TotalIters {
		t.Fatalf("warm start took %d iters, cold took %d — no continuation win",
			rep.Digital.TotalIters, cold.Digital.TotalIters)
	}
	if rep.SeedResidual <= 0 || rep.StartResidual <= 0 {
		t.Fatalf("warm-start solve must record gate residuals: %+v", rep)
	}
	if rep.FinalResidual > 1e-10 {
		t.Fatalf("residual %g too large", rep.FinalResidual)
	}
}

// TestWarmStartRungStaleGate pins the degradation contract: a stale
// continuation candidate fails the residual gate, records a rejected
// attempt, and the ladder falls through — producing the exact solution the
// cache-free ladder would.
func TestWarmStartRungStaleGate(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 61)
	base, err := NewLadder().Solve(nil, b, Options{SkipAnalog: true}, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stale := make([]float64, len(base.U))
	for i := range stale {
		stale[i] = 1e6 // far off the solution manifold: the gate must trip
	}
	fc := &fakeCache{hasWarm: true, warmU: stale}
	l := NewLadderRungs(CachedRungs(fc)...)
	b2 := mustRandomBurgers(t, 2, 0.5, 61)
	rep, err := l.Solve(nil, b2, Options{SkipAnalog: true}, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fb := rep.Fallback
	if fb.Final != RungDigital {
		t.Fatalf("stale warm start must fall through to digital: %+v", fb)
	}
	if fb.SeedRejections != 1 {
		t.Fatalf("SeedRejections = %d, want 1", fb.SeedRejections)
	}
	if len(fb.Attempts) != 2 || fb.Attempts[0].Rung != RungWarmStart || !fb.Attempts[0].SeedRejected {
		t.Fatalf("want rejected warm-start + digital rows, got %+v", fb.Attempts)
	}
	if !fb.Degraded {
		t.Fatal("serving below the attempted warm-start rung is a degradation")
	}
	if rep.Digital.TotalIters != base.Digital.TotalIters {
		t.Fatalf("fall-through digital solve diverged: %d vs %d iters",
			rep.Digital.TotalIters, base.Digital.TotalIters)
	}
	for i := range rep.U {
		if rep.U[i] != base.U[i] { //pdevet:allow floateq the fall-through restarts from the pristine snapshot
			t.Fatalf("U[%d] diverged after stale warm start", i)
		}
	}
}

// TestWarmStartGateRejectsNonFinite pins the gate's totality: a candidate
// whose residual is NaN must be rejected, never handed to Newton.
func TestWarmStartGateRejectsNonFinite(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 61)
	bad := make([]float64, b.Dim())
	for i := range bad {
		bad[i] = math.NaN()
	}
	fc := &fakeCache{hasWarm: true, warmU: bad}
	l := NewLadderRungs(CachedRungs(fc)...)
	rep, err := l.Solve(nil, b, Options{SkipAnalog: true}, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fb := rep.Fallback
	if fb.Final != RungDigital || fb.SeedRejections != 1 {
		t.Fatalf("NaN candidate must be gated out: %+v", fb)
	}
}
