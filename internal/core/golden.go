package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/stats"
)

// GoldenSolve produces the certified reference solution of §6.1: a damped
// Newton solver taking deliberately small steps, whose result is verified
// to satisfy the nonlinear system before being returned. ctx may be nil.
func GoldenSolve(ctx context.Context, sys nonlin.SparseSystem, u0 []float64) ([]float64, error) {
	res, err := nonlin.NewtonSparse(ctx, sys, u0, nonlin.NewtonOptions{
		Tol:      1e-12,
		MaxIter:  3000,
		Damping:  0.2,
		AutoDamp: false,
	})
	if err != nil {
		// Retry with the full auto-damping schedule before giving up.
		res, err = nonlin.NewtonSparse(ctx, sys, u0, nonlin.NewtonOptions{
			Tol:      1e-12,
			MaxIter:  1000,
			AutoDamp: true,
		})
		if err != nil {
			return nil, fmt.Errorf("core: golden solve failed: %w", err)
		}
	}
	// Certification: the solution must actually satisfy the system.
	f := make([]float64, sys.Dim())
	if err := sys.Eval(res.U, f); err != nil {
		return nil, err
	}
	if r := la.Norm2(f); r > 1e-9 {
		return nil, fmt.Errorf("core: golden solution certification failed: ‖F‖ = %g", r)
	}
	return res.U, nil
}

// ErrAccuracyNotReached reports an equal-accuracy run that never hit the
// target RMS against the golden solution.
var ErrAccuracyNotReached = errors.New("core: solver did not reach target accuracy")

// AccuracyResult reports an equal-accuracy digital run (Figure 7 protocol):
// the solver stops as soon as its Equation-6 RMS error against the golden
// solution drops to targetRMS — the accuracy the analog chip delivers.
type AccuracyResult struct {
	U          []float64
	Iterations int
	FactorOps  int64
	RMS        float64
	Damping    float64
	TotalIters int
	Attempts   int
}

// DigitalToAccuracy runs the baseline damped Newton solver until its
// solution is within targetRMS (normalised by scale) of the golden
// solution, using the paper's halve-on-failure damping schedule and its
// timing protocol (only the successful attempt's iterations are counted).
// ctx may be nil; a cancelled context aborts between iterations with a
// wrapped context error.
func DigitalToAccuracy(ctx context.Context, sys nonlin.SparseSystem, u0, golden []float64, targetRMS, scale float64) (AccuracyResult, error) {
	var out AccuracyResult
	n := sys.Dim()
	if len(u0) != n || len(golden) != n {
		return out, errors.New("core: DigitalToAccuracy dimension mismatch")
	}
	h := 1.0
	const maxIterPerAttempt = 600
	for ; h >= 1.0/1024; h /= 2 {
		out.Attempts++
		u := la.Copy(u0)
		f := make([]float64, n)
		delta := make([]float64, n)
		var iters int
		var ops int64
		failed := false
		if err := sys.Eval(u, f); err != nil {
			return out, err
		}
		r0 := la.Norm2(f)
		for iters = 0; iters < maxIterPerAttempt; iters++ {
			if ctx != nil {
				if cerr := ctx.Err(); cerr != nil {
					out.TotalIters += iters
					return out, fmt.Errorf("core: equal-accuracy solve aborted: %w", cerr)
				}
			}
			if stats.RMSError(u, golden, scale) <= targetRMS {
				out.U = u
				out.Iterations = iters
				out.FactorOps = ops
				out.RMS = stats.RMSError(u, golden, scale)
				out.Damping = h
				out.TotalIters += iters
				return out, nil
			}
			j, err := sys.JacobianCSR(u)
			if err != nil {
				failed = true
				break
			}
			lu, err := la.FactorBandLU(j)
			if err != nil {
				failed = true
				break
			}
			ops += lu.FactorOps
			if err := lu.Solve(delta, f); err != nil {
				failed = true
				break
			}
			la.Axpy(-h, delta, u)
			if err := sys.Eval(u, f); err != nil {
				failed = true
				break
			}
			r := la.Norm2(f)
			if math.IsNaN(r) || r > 1e8*(1+r0) {
				failed = true
				break
			}
		}
		out.TotalIters += iters
		if failed || iters >= maxIterPerAttempt {
			continue
		}
	}
	return out, ErrAccuracyNotReached
}
