package core

import (
	"math/rand"
	"testing"

	"hybridpde/internal/nonlin"
	"hybridpde/internal/pde"
)

// BenchmarkNewtonSparseSteadyStep measures one warm repeated steady-state
// Newton solve with a reused SparseSolver workspace. After the first call
// builds the Jacobian slot cache and LU storage, each step must run without
// allocating: 0 allocs/op is the regression gate for the time-stepping hot
// path.
func BenchmarkNewtonSparseSteadyStep(b *testing.B) {
	rng := rand.New(rand.NewSource(80))
	burgers, err := pde.NewBurgers(8, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	steady := pde.NewBurgersSteady(burgers)
	root := make([]float64, steady.Dim())
	for i := range root {
		root[i] = 2*rng.Float64() - 1
	}
	if err := steady.SetRHSForRoot(root); err != nil {
		b.Fatal(err)
	}
	u0 := make([]float64, steady.Dim())
	for i := range root {
		u0[i] = root[i] + 0.05*(2*rng.Float64()-1)
	}
	solver := nonlin.NewSparseSolver()
	opts := nonlin.NewtonOptions{Tol: 1e-12, MaxIter: 60}
	if _, err := solver.Solve(nil, steady, u0, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(nil, steady, u0, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridTimeLoop advances the Crank–Nicolson time loop through
// repeated Solve calls sharing one Workspace, the pattern of
// examples/burgers-sim. ReportAllocs tracks the steady-state allocation
// cost of a pure-digital step.
func BenchmarkHybridTimeLoop(b *testing.B) {
	burgers, err := pde.NewBurgers(8, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(81))
	for i := range burgers.UPrev {
		burgers.UPrev[i] = 0.5 * (2*rng.Float64() - 1)
		burgers.VPrev[i] = 0.5 * (2*rng.Float64() - 1)
	}
	opts := Options{SkipAnalog: true, Workspace: NewWorkspace()}
	rep, err := Solve(nil, burgers, opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := burgers.Advance(rep.U); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Solve(nil, burgers, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := burgers.Advance(rep.U); err != nil {
			b.Fatal(err)
		}
	}
}
