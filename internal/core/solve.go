// Package core implements the paper's primary contribution: the hybrid
// analog-digital solution of nonlinear PDEs. The digital host discretises
// the PDE (internal/pde), an analog accelerator model produces a fast
// approximate solution with the continuous Newton method (internal/analog),
// and that approximation seeds a high-precision digital Newton solve which
// then starts inside its quadratic-convergence region (§3.3, §6.2).
//
// The pipeline is generic over problem.SparseSystem: Solve accepts any
// sparse nonlinear system, the Seeder interface makes the analog stage
// pluggable (direct, red-black decomposed, or absent), and the PerfBackend
// interface makes the digital cost model pluggable. Problems larger than
// the accelerator's capacity are decomposed with red-black nonlinear
// Gauss-Seidel (§6.3): the grid is split into subdomain tiles, tiles of one
// colour are relaxed concurrently while their neighbours are frozen, and an
// accelerator solves each tile's restricted nonlinear system.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hybridpde/internal/analog"
	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/problem"
)

// Options configures a hybrid solve.
type Options struct {
	// Newton tunes the digital polish stage. Tol defaults to 1e-12
	// (≈ double-precision epsilon scale for O(1) fields, the paper's
	// "smallest value representable" stop).
	Newton nonlin.NewtonOptions
	// Analog tunes the accelerator stage.
	Analog analog.SolveOptions
	// Seeder produces the analog-quality warm start. Use AnalogSeeder for
	// the paper's pipeline (direct when the problem fits the accelerator,
	// red-black decomposed otherwise), DirectSeeder or DecomposedSeeder to
	// force a stage, or NoSeed / SkipAnalog for the pure-digital baseline.
	Seeder Seeder
	// Perf selects the digital cost model. Default PerfCPU.
	Perf PerfBackend
	// GSMaxSweeps bounds the red-black Gauss-Seidel outer loop. Default 8.
	GSMaxSweeps int
	// GSTol stops Gauss-Seidel when the full residual falls below
	// GSTol·(1+‖F(w₀)‖). The seed only needs analog-level accuracy;
	// default 0.08.
	GSTol float64
	// SkipAnalog disables seeding regardless of Seeder (pure digital
	// baseline) — the ablation switch used throughout the evaluation.
	SkipAnalog bool
	// SeedGate, when positive, enables residual-based seed-quality gating:
	// the analog seed is kept only when ‖F(seed)‖ ≤ SeedGate·‖F(start)‖
	// (NaN or Inf residuals always fail). A rejected seed is discarded and
	// the digital polish runs from the original start instead, with
	// Report.SeedRejected set. 1 accepts any seed that does not make the
	// start worse; the default 0 disables gating (every seed is used).
	SeedGate float64
	// DisableAutoDamp keeps the caller's Newton damping settings instead of
	// forcing the paper's auto-damping schedule on the polish stage. By
	// default Solve enables AutoDamp (the evaluation protocol); damping
	// ablations set this to run with a fixed explicit Damping.
	DisableAutoDamp bool
	// InitialGuess overrides the default warm start (the problem's
	// InitialGuess). The evaluation uses random cold starts here, per §6.1.
	InitialGuess []float64
	// Workspace, when set, reuses buffers across repeated Solve calls of
	// same-shaped problems (time stepping). Report.U then aliases workspace
	// storage and is only valid until the next call.
	Workspace *Workspace
	// Procs bounds the per-solve worker count of the digital polish's
	// parallel kernels (Jacobian assembly, residual walks, band-LU trailing
	// updates). 0 and 1 run serial; results are bit-identical at every
	// setting. It fills Newton.Procs when that is unset, and flows through
	// the degradation ladder to every rung's digital stage.
	Procs int
}

func (o *Options) defaults() {
	if o.Newton.Tol <= 0 {
		o.Newton.Tol = 1e-12
	}
	if o.Newton.MaxIter <= 0 {
		o.Newton.MaxIter = 400
	}
	if !o.DisableAutoDamp {
		o.Newton.AutoDamp = true
	}
	if o.GSMaxSweeps <= 0 {
		o.GSMaxSweeps = 8
	}
	if o.GSTol <= 0 {
		o.GSTol = 0.08
	}
	if o.Perf == nil {
		o.Perf = PerfCPU
	}
	if o.Newton.Procs == 0 {
		o.Newton.Procs = o.Procs
	}
}

// Report is the full account of a hybrid solve.
type Report struct {
	U []float64
	// Analog stage.
	AnalogUsed    bool
	AnalogSeconds float64
	AnalogEnergyJ float64
	SeedResidual  float64 // ‖F(seed)‖₂
	// Seed-quality gate (only when Options.SeedGate > 0).
	StartResidual float64 // ‖F(start)‖₂ before seeding
	SeedRejected  bool    // seed failed the gate; polish ran from start
	// Decomposition stage (only for oversize problems).
	Decomposed  bool
	Subproblems int
	GSSweeps    int
	// Digital polish stage.
	Digital        nonlin.Result
	DigitalSeconds float64
	DigitalEnergyJ float64
	FinalResidual  float64
	// Totals.
	TotalSeconds float64
	TotalEnergyJ float64
	// Fallback is the degradation-ladder account when the solve ran through
	// Ladder.Solve; plain Solve leaves it nil. It aliases ladder-owned
	// storage and is only valid until the ladder's next call.
	Fallback *FallbackReport
}

// Workspace carries the reusable buffers of repeated Solve calls: the
// sparse-Newton factorization workspace plus seed and residual vectors.
// A Workspace must not be shared between concurrent Solve calls.
type Workspace struct {
	// Solver is the reusable sparse Newton workspace; callers running bare
	// Newton loops (no analog stage) may use it directly.
	Solver nonlin.SparseSolver

	seed, f, start []float64
	// rep and opts are per-call scratch: Seeder.Seed takes them by pointer,
	// so stack locals would escape and cost two heap allocations per Solve.
	rep  Report
	opts Options
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

func (w *Workspace) ensure(dim int) {
	if len(w.seed) != dim {
		w.seed = make([]float64, dim)
		w.f = make([]float64, dim)
		w.start = make([]float64, dim)
	}
}

// Solve runs the hybrid pipeline on any sparse nonlinear system: the
// configured Seeder produces an analog-quality warm start, then the digital
// Newton polish drives the residual to opts.Newton.Tol, and the configured
// PerfBackend prices the digital work.
//
// ctx may be nil; a cancelled context aborts both stages with an error
// wrapping the context's error (test with errors.Is(err, context.Canceled)).
//
// The function is on the repeated-stepping hot path (the Workspace time
// loop): with a warm workspace it must stay at 0 allocs/op, which
// `make bench` checks dynamically and the noalloc rule checks structurally.
//
//pdevet:noalloc
func Solve(ctx context.Context, sys problem.SparseSystem, opts Options) (Report, error) {
	opts.defaults()
	dim := sys.Dim()
	ws := opts.Workspace
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.ensure(dim)
	ws.rep = Report{}
	seed := ws.seed
	if opts.InitialGuess != nil {
		if len(opts.InitialGuess) != dim {
			return ws.rep, errors.New("core: initial guess has wrong dimension")
		}
		copy(seed, opts.InitialGuess)
	} else if g, ok := sys.(problem.WarmStarter); ok {
		g.InitialGuessInto(seed)
	} else {
		copy(seed, sys.InitialGuess())
	}

	seeder := opts.Seeder
	if opts.SkipAnalog || seeder == nil {
		seeder = NoSeed
	}
	if _, skip := seeder.(noSeed); !skip {
		if opts.Analog.DynamicRange <= 0 {
			// Quadratic stencils keep the solution within the range of
			// the fields and constants; leave headroom for transients.
			opts.Analog.DynamicRange = math.Max(1, 1.5*sys.MaxField())
		}
		gated := opts.SeedGate > 0
		if gated {
			copy(ws.start, seed)
			if err := sys.Eval(seed, ws.f); err != nil {
				return ws.rep, err
			}
			ws.rep.StartResidual = la.Norm2(ws.f)
		}
		ws.opts = opts
		if err := seeder.Seed(ctx, sys, seed, &ws.opts, &ws.rep); err != nil {
			return ws.rep, fmt.Errorf("core: analog stage failed: %w", err) //pdevet:allow noalloc error path
		}
		if err := sys.Eval(seed, ws.f); err != nil {
			return ws.rep, err
		}
		ws.rep.SeedResidual = la.Norm2(ws.f)
		// Seed-quality gate: a seed that fails (or a non-finite residual,
		// which fails every comparison) is discarded, and the polish runs
		// from the pristine start.
		if gated && !(ws.rep.SeedResidual <= opts.SeedGate*ws.rep.StartResidual) {
			copy(seed, ws.start)
			ws.rep.SeedRejected = true
		}
	}

	res, err := ws.Solver.Solve(ctx, sys, seed, opts.Newton)
	rep := ws.rep
	rep.Digital = res
	rep.U = res.U
	rep.FinalResidual = res.Residual
	rep.DigitalSeconds = opts.Perf.Time(res, dim)
	rep.DigitalEnergyJ = opts.Perf.Energy(res, dim)
	rep.TotalSeconds = rep.AnalogSeconds + rep.DigitalSeconds
	rep.TotalEnergyJ = rep.AnalogEnergyJ + rep.DigitalEnergyJ
	if err != nil {
		return rep, fmt.Errorf("core: digital polish failed: %w", err) //pdevet:allow noalloc error path
	}
	return rep, nil
}
