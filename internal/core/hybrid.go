// Package core implements the paper's primary contribution: the hybrid
// analog-digital solution of nonlinear PDEs. The digital host discretises
// the PDE (internal/pde), the analog accelerator model produces a fast
// approximate solution with the continuous Newton method (internal/analog),
// and that approximation seeds a high-precision digital Newton solve which
// then starts inside its quadratic-convergence region (§3.3, §6.2).
//
// Problems larger than the accelerator's capacity are decomposed with
// red-black nonlinear Gauss-Seidel (§6.3): the grid is split into subdomain
// tiles, tiles of one colour are relaxed while their neighbours are frozen,
// and the accelerator solves each tile's restricted nonlinear system.
package core

import (
	"errors"
	"fmt"
	"math"

	"hybridpde/internal/analog"
	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/pde"
	"hybridpde/internal/perfmodel"
)

// PerfTarget selects which digital baseline prices the polish solve.
type PerfTarget int

// Digital baselines of the evaluation.
const (
	// PerfCPU is the dual-Xeon damped-Newton baseline of Figures 7 and 8.
	PerfCPU PerfTarget = iota
	// PerfGPU is the cuSolver sparse-QR baseline of Figure 9.
	PerfGPU
)

// Options configures a hybrid solve.
type Options struct {
	// Newton tunes the digital polish stage. Tol defaults to 1e-12
	// (≈ double-precision epsilon scale for O(1) fields, the paper's
	// "smallest value representable" stop).
	Newton nonlin.NewtonOptions
	// Analog tunes the accelerator stage.
	Analog analog.SolveOptions
	// GSMaxSweeps bounds the red-black Gauss-Seidel outer loop. Default 8.
	GSMaxSweeps int
	// GSTol stops Gauss-Seidel when the full residual falls below
	// GSTol·(1+‖F(w₀)‖). The seed only needs analog-level accuracy;
	// default 0.08.
	GSTol float64
	// Perf selects the digital cost model. Default PerfCPU.
	Perf PerfTarget
	// SkipAnalog disables seeding (pure digital baseline) — the ablation
	// switch used throughout the evaluation.
	SkipAnalog bool
	// InitialGuess overrides the default warm start (the previous time
	// level). The evaluation uses random cold starts here, per §6.1.
	InitialGuess []float64
}

func (o *Options) defaults() {
	if o.Newton.Tol <= 0 {
		o.Newton.Tol = 1e-12
	}
	if o.Newton.MaxIter <= 0 {
		o.Newton.MaxIter = 400
	}
	o.Newton.AutoDamp = true
	if o.GSMaxSweeps <= 0 {
		o.GSMaxSweeps = 8
	}
	if o.GSTol <= 0 {
		o.GSTol = 0.08
	}
}

// Report is the full account of a hybrid solve.
type Report struct {
	U []float64
	// Analog stage.
	AnalogUsed    bool
	AnalogSeconds float64
	AnalogEnergyJ float64
	SeedResidual  float64 // ‖F(seed)‖₂
	// Decomposition stage (only for oversize problems).
	Decomposed  bool
	Subproblems int
	GSSweeps    int
	// Digital polish stage.
	Digital        nonlin.Result
	DigitalSeconds float64
	DigitalEnergyJ float64
	FinalResidual  float64
	// Totals.
	TotalSeconds float64
	TotalEnergyJ float64
}

// Hybrid binds an accelerator model to the solve pipeline.
type Hybrid struct {
	Accel *analog.Accelerator
}

// New returns a hybrid solver around the given accelerator.
func New(acc *analog.Accelerator) *Hybrid {
	return &Hybrid{Accel: acc}
}

// SolveBurgers solves one Crank–Nicolson step of the 2-D Burgers problem:
// analog seed (direct or decomposed, depending on capacity), then digital
// polish to opts.Newton.Tol.
func (h *Hybrid) SolveBurgers(b *pde.Burgers, opts Options) (Report, error) {
	opts.defaults()
	var rep Report
	dim := b.Dim()
	seed := b.InitialGuess()
	if opts.InitialGuess != nil {
		if len(opts.InitialGuess) != dim {
			return rep, errors.New("core: initial guess has wrong dimension")
		}
		seed = la.Copy(opts.InitialGuess)
	}

	if !opts.SkipAnalog {
		if opts.Analog.DynamicRange <= 0 {
			// Quadratic stencils keep the solution within the range of
			// the fields and constants; leave headroom for transients.
			opts.Analog.DynamicRange = math.Max(1, 1.5*b.MaxField())
		}
		if dim <= h.Accel.Capacity() {
			sol, err := h.Accel.SolveSparse(b, seed, opts.Analog)
			if err != nil {
				return rep, fmt.Errorf("core: analog stage failed: %w", err)
			}
			rep.AnalogUsed = true
			rep.AnalogSeconds = sol.SettleSeconds
			rep.AnalogEnergyJ = sol.EnergyJoules
			seed = sol.U
		} else {
			if err := h.gaussSeidelSeed(b, seed, opts, &rep); err != nil {
				return rep, err
			}
			rep.AnalogUsed = true
			rep.Decomposed = true
		}
		f := make([]float64, dim)
		if err := b.Eval(seed, f); err != nil {
			return rep, err
		}
		rep.SeedResidual = la.Norm2(f)
	}

	res, err := nonlin.NewtonSparse(b, seed, opts.Newton)
	rep.Digital = res
	rep.U = res.U
	rep.FinalResidual = res.Residual
	switch opts.Perf {
	case PerfGPU:
		rep.DigitalSeconds = perfmodel.GPUTime(res, dim)
		rep.DigitalEnergyJ = perfmodel.GPUEnergy(res, dim)
	default:
		rep.DigitalSeconds = perfmodel.CPUTime(res, dim)
		rep.DigitalEnergyJ = perfmodel.CPUEnergy(res, dim)
	}
	rep.TotalSeconds = rep.AnalogSeconds + rep.DigitalSeconds
	rep.TotalEnergyJ = rep.AnalogEnergyJ + rep.DigitalEnergyJ
	if err != nil {
		return rep, fmt.Errorf("core: digital polish failed: %w", err)
	}
	return rep, nil
}

// gaussSeidelSeed produces an analog-quality seed for a problem larger than
// the accelerator by red-black nonlinear Gauss-Seidel over subdomain tiles
// (§6.3). seed is updated in place.
func (h *Hybrid) gaussSeidelSeed(b *pde.Burgers, seed []float64, opts Options, rep *Report) error {
	capVars := h.Accel.Capacity()
	tileN := int(math.Sqrt(float64(capVars / 2)))
	if tileN < 1 {
		return errors.New("core: accelerator too small for any subdomain")
	}
	if b.N%tileN != 0 {
		// Shrink the tile until it divides the grid.
		for tileN > 1 && b.N%tileN != 0 {
			tileN--
		}
	}
	tiles := decompose(b.N, tileN)
	rep.Subproblems = len(tiles)

	f := make([]float64, b.Dim())
	if err := b.Eval(seed, f); err != nil {
		return err
	}
	r0 := la.Norm2(f)
	target := opts.GSTol * (1 + r0)

	for sweep := 0; sweep < opts.GSMaxSweeps; sweep++ {
		rep.GSSweeps = sweep + 1
		for _, colour := range []int{0, 1} { // red then black
			for _, tl := range tiles {
				if tl.colour != colour {
					continue
				}
				sub := newSubProblem(b, tl.unknowns, seed)
				u0 := sub.restrict(seed)
				sol, err := h.Accel.SolveSparse(sub, u0, opts.Analog)
				if err != nil {
					return fmt.Errorf("core: subdomain solve failed: %w", err)
				}
				rep.AnalogSeconds += sol.SettleSeconds
				rep.AnalogEnergyJ += sol.EnergyJoules
				sub.scatter(sol.U, seed)
			}
		}
		if err := b.Eval(seed, f); err != nil {
			return err
		}
		if la.Norm2(f) <= target {
			return nil
		}
	}
	// Gauss-Seidel not fully converged is acceptable: the seed is only a
	// warm start; the digital polish handles the rest.
	return nil
}

// tile is one subdomain of the red-black decomposition.
type tile struct {
	colour   int
	unknowns []int // global unknown indices owned by the tile
}

// decompose splits an n×n grid into tileN×tileN subdomains coloured like a
// checkerboard. Unknowns are the interleaved (u, v) pairs of each node.
func decompose(n, tileN int) []tile {
	var tiles []tile
	for ti := 0; ti < n; ti += tileN {
		for tj := 0; tj < n; tj += tileN {
			t := tile{colour: ((ti / tileN) + (tj / tileN)) % 2}
			for i := ti; i < ti+tileN && i < n; i++ {
				for j := tj; j < tj+tileN && j < n; j++ {
					base := 2 * (i*n + j)
					t.unknowns = append(t.unknowns, base, base+1)
				}
			}
			tiles = append(tiles, t)
		}
	}
	return tiles
}
