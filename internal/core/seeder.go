package core

import (
	"context"
	"fmt"
	"sync"

	"hybridpde/internal/analog"
	"hybridpde/internal/la"
	"hybridpde/internal/problem"
)

// Seeder produces the analog-quality warm start of the pipeline's first
// stage. Seed improves seed in place and accounts its analog cost in rep
// (AnalogUsed, AnalogSeconds, AnalogEnergyJ, and the decomposition counters
// when applicable). opts carries the already-defaulted solve options.
type Seeder interface {
	Seed(ctx context.Context, sys problem.SparseSystem, seed []float64, opts *Options, rep *Report) error
}

// NoSeed leaves the seed untouched: the pure-digital baseline.
var NoSeed Seeder = noSeed{}

type noSeed struct{}

func (noSeed) Seed(ctx context.Context, sys problem.SparseSystem, seed []float64, opts *Options, rep *Report) error {
	return nil
}

// DirectSeeder seeds with a single accelerator solve of the full system;
// it errors when the problem exceeds the accelerator's capacity.
func DirectSeeder(acc *analog.Accelerator) Seeder { return &directSeeder{acc: acc} }

type directSeeder struct{ acc *analog.Accelerator }

func (d *directSeeder) Seed(ctx context.Context, sys problem.SparseSystem, seed []float64, opts *Options, rep *Report) error {
	if dim := sys.Dim(); dim > d.acc.Capacity() {
		return fmt.Errorf("core: problem dimension %d exceeds accelerator capacity %d", dim, d.acc.Capacity())
	}
	sol, err := d.acc.SolveSparse(ctx, sys, seed, opts.Analog)
	if err != nil {
		return err
	}
	rep.AnalogUsed = true
	rep.AnalogSeconds += sol.SettleSeconds
	rep.AnalogEnergyJ += sol.EnergyJoules
	copy(seed, sol.U)
	return nil
}

// DecomposedSeeder seeds an oversize problem by red-black nonlinear
// Gauss-Seidel over subdomain tiles (§6.3). The problem must implement
// problem.Decomposable. Same-colour tiles share no unknowns and no residual
// coupling, so each colour phase fans its tiles out over the given
// accelerator instances in parallel (one goroutine per accelerator; a
// physical deployment would be one chip per worker). Time and energy are
// accounted serially — per-tile settle times are summed in tile order, as
// the paper prices a single chip — so the report is bit-identical to a
// serial sweep.
func DecomposedSeeder(accels ...*analog.Accelerator) Seeder {
	return &decomposedSeeder{accels: accels}
}

type decomposedSeeder struct {
	accels []*analog.Accelerator
	// maxTileVars, when positive, caps tile size below the accelerator
	// capacity. The degradation ladder uses it to re-tile a problem whose
	// full-capacity analog solve misbehaved (FallbackSeeder).
	maxTileVars int
}

func (d *decomposedSeeder) Seed(ctx context.Context, sys problem.SparseSystem, seed []float64, opts *Options, rep *Report) error {
	if len(d.accels) == 0 {
		return fmt.Errorf("core: decomposed seeder has no accelerators")
	}
	dec, ok := sys.(problem.Decomposable)
	if !ok {
		return fmt.Errorf("core: problem type %T does not support red-black decomposition", sys)
	}
	capVars := d.accels[0].Capacity()
	for _, a := range d.accels[1:] {
		if c := a.Capacity(); c < capVars {
			capVars = c
		}
	}
	if d.maxTileVars > 0 && d.maxTileVars < capVars {
		capVars = d.maxTileVars
	}
	tiles, err := dec.Tiles(capVars)
	if err != nil {
		return err
	}
	rep.AnalogUsed = true
	rep.Decomposed = true
	rep.Subproblems = len(tiles)

	// One Sub per tile, built once and re-snapshotted per colour phase; the
	// shared mutex serialises the full system's Jacobian cache, which is the
	// only mutable state tiles share (Eval is read-only on the receiver).
	var jacMu sync.Mutex
	subs := make([]*problem.Sub, len(tiles))
	u0s := make([][]float64, len(tiles))
	outs := make([][]float64, len(tiles))
	settle := make([]float64, len(tiles))
	energy := make([]float64, len(tiles))
	for i, t := range tiles {
		subs[i] = problem.NewSub(sys, t.Unknowns, seed, &jacMu)
		u0s[i] = make([]float64, len(t.Unknowns))
		outs[i] = make([]float64, len(t.Unknowns))
	}

	f := make([]float64, sys.Dim())
	if err := sys.Eval(seed, f); err != nil {
		return err
	}
	target := opts.GSTol * (1 + la.Norm2(f))

	workers := len(d.accels)
	for sweep := 0; sweep < opts.GSMaxSweeps; sweep++ {
		rep.GSSweeps = sweep + 1
		for colour := 0; colour <= 1; colour++ { // red then black
			var phase []int
			for i, t := range tiles {
				if t.Colour == colour {
					phase = append(phase, i)
				}
			}
			// Freeze every tile of this colour at the current iterate. The
			// snapshot is taken before any tile of the phase scatters, but
			// same-colour tiles never appear in each other's stencils, so
			// the result matches a serial in-place sweep exactly.
			for _, ti := range phase {
				subs[ti].Reset(seed)
				subs[ti].Restrict(u0s[ti], seed)
			}
			errs := make([]error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					acc := d.accels[w]
					// Static tile→worker partition: deterministic
					// assignment, no shared work queue to race on.
					for k := w; k < len(phase); k += workers {
						ti := phase[k]
						sol, err := acc.SolveSparse(ctx, subs[ti], u0s[ti], opts.Analog)
						if err != nil {
							errs[w] = fmt.Errorf("core: subdomain solve failed: %w", err)
							return
						}
						copy(outs[ti], sol.U)
						settle[ti] = sol.SettleSeconds
						energy[ti] = sol.EnergyJoules
					}
				}(w)
			}
			wg.Wait()
			for _, e := range errs {
				if e != nil {
					return e
				}
			}
			// Scatter and account in tile order, keeping both the iterate
			// and the floating-point accumulation deterministic.
			for _, ti := range phase {
				subs[ti].Scatter(outs[ti], seed)
				rep.AnalogSeconds += settle[ti]
				rep.AnalogEnergyJ += energy[ti]
			}
		}
		if err := sys.Eval(seed, f); err != nil {
			return err
		}
		if la.Norm2(f) <= target {
			return nil
		}
	}
	// Gauss-Seidel not fully converged is acceptable: the seed is only a
	// warm start; the digital polish handles the rest.
	return nil
}

// AnalogSeeder is the paper's pipeline policy: solve directly on the first
// accelerator when the problem fits its capacity, decompose across all
// given accelerators otherwise.
func AnalogSeeder(accels ...*analog.Accelerator) Seeder {
	return &analogSeeder{accels: accels}
}

type analogSeeder struct{ accels []*analog.Accelerator }

func (a *analogSeeder) Seed(ctx context.Context, sys problem.SparseSystem, seed []float64, opts *Options, rep *Report) error {
	if len(a.accels) == 0 {
		return fmt.Errorf("core: analog seeder has no accelerators")
	}
	if sys.Dim() <= a.accels[0].Capacity() {
		return (&directSeeder{acc: a.accels[0]}).Seed(ctx, sys, seed, opts, rep)
	}
	return (&decomposedSeeder{accels: a.accels}).Seed(ctx, sys, seed, opts, rep)
}

// FallbackSeeder derives the decomposed-seed rung of the degradation ladder
// from a configured seeder: the same accelerators, forced through red-black
// decomposition with tiles capped at roughly half the problem, so a direct
// analog solve that misbehaved (a localised fault, a saturated region) is
// retried as smaller subdomain solves whose errors the Gauss-Seidel sweeps
// can contain. Returns nil when the seeder has no distinct decomposed form
// (already decomposed, no accelerators, or not an analog seeder at all).
func FallbackSeeder(s Seeder, dim int) Seeder {
	maxVars := (dim + 1) / 2
	if maxVars < 1 {
		maxVars = 1
	}
	switch t := s.(type) {
	case *analogSeeder:
		if len(t.accels) == 0 {
			return nil
		}
		return &decomposedSeeder{accels: t.accels, maxTileVars: maxVars}
	case *directSeeder:
		return &decomposedSeeder{accels: []*analog.Accelerator{t.acc}, maxTileVars: maxVars}
	}
	return nil
}
