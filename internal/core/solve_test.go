package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"hybridpde/internal/analog"
	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/pde"
	"hybridpde/internal/problem"
)

func mustRandomBurgers(t *testing.T, n int, re float64, seed int64) *pde.Burgers {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b, err := pde.RandomBurgers(n, re, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestHybridDirectPath(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 61)
	opts := Options{Seeder: AnalogSeeder(analog.NewPrototype(10))}
	rep, err := Solve(nil, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AnalogUsed || rep.Decomposed {
		t.Fatalf("2×2 problem must use the direct analog path: %+v", rep)
	}
	if rep.FinalResidual > 1e-10 {
		t.Fatalf("polish residual %g too large", rep.FinalResidual)
	}
	if rep.AnalogSeconds <= 0 || rep.AnalogEnergyJ <= 0 {
		t.Fatal("analog stage cost not recorded")
	}
	if rep.TotalSeconds < rep.DigitalSeconds {
		t.Fatal("total time must include both stages")
	}
	// The analog stage is orders of magnitude cheaper than the digital.
	if rep.AnalogSeconds > rep.DigitalSeconds {
		t.Fatalf("analog stage (%g s) should be negligible next to digital (%g s)",
			rep.AnalogSeconds, rep.DigitalSeconds)
	}
}

func TestHybridDecomposedPath(t *testing.T) {
	// 4×4 grid = 32 unknowns > prototype capacity 8 → red-black NLGS over
	// 2×2 subdomains.
	b := mustRandomBurgers(t, 4, 0.5, 62)
	rep, err := Solve(nil, b, Options{Seeder: AnalogSeeder(analog.NewPrototype(11))})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Decomposed {
		t.Fatal("oversize problem must decompose")
	}
	if rep.Subproblems != 4 {
		t.Fatalf("expected 4 subdomains, got %d", rep.Subproblems)
	}
	if rep.GSSweeps < 1 {
		t.Fatal("Gauss-Seidel sweeps not recorded")
	}
	if rep.FinalResidual > 1e-10 {
		t.Fatalf("polish residual %g too large", rep.FinalResidual)
	}
}

func TestParallelDecompositionMatchesSerial(t *testing.T) {
	// The red-black sweep must produce the same iterate and the same
	// serially-accounted cost whether tiles of a colour run on one
	// accelerator or fan out over several. Noise is disabled so the chips
	// are interchangeable; determinism is then a property of the sweep.
	b := mustRandomBurgers(t, 4, 0.8, 71)
	solve := func(workers int) Report {
		accels := make([]*analog.Accelerator, workers)
		for i := range accels {
			accels[i] = analog.NewPrototype(20)
		}
		opts := Options{Seeder: DecomposedSeeder(accels...)}
		opts.Analog.DisableNoise = true
		rep, err := Solve(nil, b, opts)
		if err != nil {
			t.Fatalf("%d-worker solve: %v", workers, err)
		}
		return rep
	}
	serial := solve(1)
	parallel := solve(3)
	if serial.AnalogSeconds != parallel.AnalogSeconds {
		t.Fatalf("analog time must be accounted serially: %g vs %g",
			serial.AnalogSeconds, parallel.AnalogSeconds)
	}
	if serial.AnalogEnergyJ != parallel.AnalogEnergyJ {
		t.Fatalf("analog energy differs: %g vs %g", serial.AnalogEnergyJ, parallel.AnalogEnergyJ)
	}
	if serial.GSSweeps != parallel.GSSweeps {
		t.Fatalf("sweep counts differ: %d vs %d", serial.GSSweeps, parallel.GSSweeps)
	}
	if serial.SeedResidual != parallel.SeedResidual {
		t.Fatalf("seeds differ: residual %g vs %g", serial.SeedResidual, parallel.SeedResidual)
	}
	if len(serial.U) != len(parallel.U) {
		t.Fatal("solution length mismatch")
	}
	for i := range serial.U {
		if serial.U[i] != parallel.U[i] {
			t.Fatalf("solutions differ at %d: %g vs %g", i, serial.U[i], parallel.U[i])
		}
	}
}

func TestCancelledContextAbortsSolve(t *testing.T) {
	b := mustRandomBurgers(t, 4, 0.5, 72)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Solve(ctx, b, Options{SkipAnalog: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in the error chain, got %v", err)
	}
	// Cancelling must also abort the analog stage, including the
	// decomposed path's worker pool.
	_, err = Solve(ctx, b, Options{Seeder: AnalogSeeder(analog.NewPrototype(16))})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("analog stage: want context.Canceled in the error chain, got %v", err)
	}
}

func TestSeedImprovesOverColdStart(t *testing.T) {
	// At an uncomfortable Reynolds number the analog seed should land the
	// digital solver closer to the root than the cold start.
	b := mustRandomBurgers(t, 2, 2.0, 63)
	seeder := AnalogSeeder(analog.NewPrototype(12))
	seeded, err := Solve(nil, b, Options{Seeder: seeder})
	if err != nil {
		t.Skipf("seeded solve did not converge for this draw: %v", err)
	}
	cold, err := Solve(nil, b, Options{Seeder: seeder, SkipAnalog: true})
	if err != nil {
		t.Skipf("cold solve did not converge for this draw: %v", err)
	}
	f := make([]float64, b.Dim())
	if err := b.Eval(b.InitialGuess(), f); err != nil {
		t.Fatal(err)
	}
	coldResidual := la.Norm2(f)
	if seeded.SeedResidual >= coldResidual {
		t.Fatalf("analog seed residual %g should beat cold-start residual %g",
			seeded.SeedResidual, coldResidual)
	}
	if seeded.Digital.Iterations > cold.Digital.Iterations {
		t.Fatalf("seeded polish took %d iterations, cold took %d — seeding should not hurt",
			seeded.Digital.Iterations, cold.Digital.Iterations)
	}
}

func TestBurgers1DThroughSamePipeline(t *testing.T) {
	// Solve is generic over problem.SparseSystem: the 1-D problem runs the
	// identical pipeline, analog seed included.
	b, err := pde.NewBurgers1D(8, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Solve(nil, b, Options{Seeder: AnalogSeeder(analog.NewPrototype(17))})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AnalogUsed {
		t.Fatal("1-D problem fits the prototype and must use the analog path")
	}
	if rep.FinalResidual > 1e-10 {
		t.Fatalf("polish residual %g too large", rep.FinalResidual)
	}
}

func TestGoldenSolveCertifies(t *testing.T) {
	b := mustRandomBurgers(t, 3, 0.5, 64)
	u, err := GoldenSolve(nil, b, b.InitialGuess())
	if err != nil {
		t.Fatal(err)
	}
	f := make([]float64, b.Dim())
	if err := b.Eval(u, f); err != nil {
		t.Fatal(err)
	}
	if la.Norm2(f) > 1e-9 {
		t.Fatalf("golden solution not certified: ‖F‖ = %g", la.Norm2(f))
	}
}

func TestDigitalToAccuracyStopsAtTarget(t *testing.T) {
	b := mustRandomBurgers(t, 3, 0.5, 65)
	golden, err := GoldenSolve(nil, b, b.InitialGuess())
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the start, then demand the paper's 5.38 % accuracy.
	u0 := la.Copy(b.InitialGuess())
	for i := range u0 {
		u0[i] += 0.3
	}
	res, err := DigitalToAccuracy(nil, b, u0, golden, 0.0538, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RMS > 0.0538 {
		t.Fatalf("stopped at RMS %g, above target", res.RMS)
	}
	// A tighter target must need at least as many iterations.
	res2, err := DigitalToAccuracy(nil, b, u0, golden, 1e-6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations < res.Iterations {
		t.Fatalf("tighter target took fewer iterations: %d < %d", res2.Iterations, res.Iterations)
	}
}

func TestDigitalToAccuracyAlreadyThere(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 66)
	golden, err := GoldenSolve(nil, b, b.InitialGuess())
	if err != nil {
		t.Fatal(err)
	}
	res, err := DigitalToAccuracy(nil, b, golden, golden, 0.0538, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Fatalf("starting at the golden solution should need 0 iterations, took %d", res.Iterations)
	}
}

func TestHybridInitialGuessValidation(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 67)
	if _, err := Solve(nil, b, Options{InitialGuess: make([]float64, 3)}); err == nil {
		t.Fatal("wrong-length initial guess must be rejected")
	}
}

func TestHybridSkipAnalogReportsNoAnalogCost(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 68)
	rep, err := Solve(nil, b, Options{Seeder: AnalogSeeder(analog.NewPrototype(14)), SkipAnalog: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AnalogUsed || rep.AnalogSeconds != 0 || rep.AnalogEnergyJ != 0 {
		t.Fatalf("cold solve must report zero analog cost: %+v", rep)
	}
	if rep.TotalSeconds != rep.DigitalSeconds {
		t.Fatal("totals must equal the digital stage when analog is skipped")
	}
}

func TestHybridGPUPerfTargetPricing(t *testing.T) {
	b := mustRandomBurgers(t, 2, 0.5, 69)
	repCPU, err := Solve(nil, b, Options{SkipAnalog: true, Perf: PerfCPU})
	if err != nil {
		t.Fatal(err)
	}
	repGPU, err := Solve(nil, b, Options{SkipAnalog: true, Perf: PerfGPU})
	if err != nil {
		t.Fatal(err)
	}
	if repCPU.Digital.Iterations != repGPU.Digital.Iterations {
		t.Fatal("pricing target must not change the algorithm")
	}
	if repCPU.DigitalSeconds == repGPU.DigitalSeconds {
		t.Fatal("CPU and GPU pricing should differ")
	}
	// For a tiny 8-unknown problem, GPU launch latency dominates: the GPU
	// must be priced slower than the CPU (the paper offloads only large
	// problems to the GPU).
	if repGPU.DigitalSeconds < repCPU.DigitalSeconds {
		t.Fatalf("tiny problems should be slower on the GPU model: GPU %g s vs CPU %g s",
			repGPU.DigitalSeconds, repCPU.DigitalSeconds)
	}
}

func TestAutoDampDefaultAndOptOut(t *testing.T) {
	// Regression: defaults() used to force AutoDamp unconditionally, so a
	// caller's fixed explicit Damping was silently replaced by the schedule.
	var forced Options
	forced.defaults()
	if !forced.Newton.AutoDamp {
		t.Fatal("the evaluation protocol enables AutoDamp by default")
	}
	var kept Options
	kept.DisableAutoDamp = true
	kept.Newton.Damping = 0.5
	kept.defaults()
	if kept.Newton.AutoDamp {
		t.Fatal("DisableAutoDamp must keep the caller's damping settings")
	}
	if kept.Newton.Damping != 0.5 {
		t.Fatal("explicit damping must survive defaults()")
	}

	// Behavioural check: a fixed half-step solve reports exactly that
	// damping, while the default auto schedule starts undamped on an easy
	// problem.
	b := mustRandomBurgers(t, 2, 0.2, 73)
	fixed, err := Solve(nil, b, Options{
		SkipAnalog:      true,
		DisableAutoDamp: true,
		Newton:          nonlin.NewtonOptions{Damping: 0.5, MaxIter: 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Digital.DampingUsed != 0.5 {
		t.Fatalf("fixed damping 0.5 reported as %g", fixed.Digital.DampingUsed)
	}
	auto, err := Solve(nil, b, Options{SkipAnalog: true})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Digital.DampingUsed != 1 {
		t.Fatalf("easy problem under AutoDamp should converge undamped, used %g",
			auto.Digital.DampingUsed)
	}
}

func TestWorkspaceReuseMatchesFreshSolve(t *testing.T) {
	b := mustRandomBurgers(t, 3, 0.8, 74)
	ws := NewWorkspace()
	var prev []float64
	for step := 0; step < 3; step++ {
		rep, err := Solve(nil, b, Options{SkipAnalog: true, Workspace: ws})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Solve(nil, b, Options{SkipAnalog: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range rep.U {
			if rep.U[i] != fresh.U[i] {
				t.Fatalf("step %d: workspace reuse changed the solution at %d", step, i)
			}
		}
		if prev != nil && &rep.U[0] != &prev[0] {
			t.Fatal("workspace solves must reuse the same solution buffer")
		}
		prev = rep.U
	}
}

func TestPerfBackendNames(t *testing.T) {
	for _, tc := range []struct {
		b    PerfBackend
		want string
	}{{PerfCPU, "cpu"}, {PerfGPU, "gpu"}, {PerfAnalogLA, "analog-la"}} {
		if got := tc.b.Name(); got != tc.want {
			t.Fatalf("backend name %q, want %q", got, tc.want)
		}
	}
}

func TestAnalogLABackendPricesSettleTime(t *testing.T) {
	// The analog linear-algebra backend charges per-iteration settle time,
	// not factorization flops: a result with many flops but few iterations
	// must be priced below the CPU backend's flop-dominated figure at a
	// large dimension.
	res := nonlin.Result{Iterations: 5, TotalIters: 5, FactorOps: 1 << 30}
	dim := 2048
	if la, cpu := PerfAnalogLA.Time(res, dim), PerfCPU.Time(res, dim); la >= cpu {
		t.Fatalf("analog-LA pricing %g should undercut the CPU's flop cost %g", la, cpu)
	}
	if PerfAnalogLA.Energy(res, dim) <= 0 {
		t.Fatal("analog-LA energy must be positive")
	}
	if math.IsNaN(PerfAnalogLA.Time(res, 0)) {
		t.Fatal("zero-dimension pricing must be finite")
	}
}

// cancellingSystem wraps a SparseSystem and cancels the given context after
// a fixed number of Eval calls — simulating a client disconnect mid-Newton.
type cancellingSystem struct {
	problem.SparseSystem
	cancel context.CancelFunc
	after  int
	evals  int
}

func (c *cancellingSystem) Eval(u, f []float64) error {
	c.evals++
	if c.evals == c.after {
		c.cancel()
	}
	return c.SparseSystem.Eval(u, f)
}

// TestSolveCtxCancelMidNewton is the serving-layer contract on core.Solve: a
// context cancelled in the middle of the Newton iteration aborts within one
// iteration and surfaces as a wrapped context.Canceled.
func TestSolveCtxCancelMidNewton(t *testing.T) {
	b := mustRandomBurgers(t, 3, 0.5, 17)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The first Eval of the polish computes the initial residual; cancelling
	// on the second lands mid-iteration.
	sys := &cancellingSystem{SparseSystem: b, cancel: cancel, after: 2}
	rep, err := Solve(ctx, sys, Options{SkipAnalog: true})
	if err == nil {
		t.Fatal("cancelled solve must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v must wrap context.Canceled (errors.Is)", err)
	}
	if rep.Digital.TotalIters > 1 {
		t.Fatalf("solve ran %d iterations after cancellation, want abort within one", rep.Digital.TotalIters)
	}
	// An uncancelled control converges, pinning the wrapper as inert.
	ctrl := &cancellingSystem{SparseSystem: mustRandomBurgers(t, 3, 0.5, 17), cancel: func() {}, after: -1}
	if rep, err := Solve(context.Background(), ctrl, Options{SkipAnalog: true}); err != nil || !rep.Digital.Converged {
		t.Fatalf("control solve failed: %v", err)
	}
}
