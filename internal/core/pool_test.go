package core

import (
	"math/rand"
	"sync"
	"testing"

	"hybridpde/internal/nonlin"
	"hybridpde/internal/pde"
)

// steadyFixture is one same-shaped repeated-solve workload: a rooted steady
// Burgers problem plus the perturbed start the benchmarks use, so every
// solve converges in a handful of Newton iterations.
type steadyFixture struct {
	steady *pde.BurgersSteady
	u0     []float64
}

func newSteadyFixture(t testing.TB, seed int64) *steadyFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	burgers, err := pde.NewBurgers(6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	steady := pde.NewBurgersSteady(burgers)
	root := make([]float64, steady.Dim())
	for i := range root {
		root[i] = 2*rng.Float64() - 1
	}
	if err := steady.SetRHSForRoot(root); err != nil {
		t.Fatal(err)
	}
	u0 := make([]float64, steady.Dim())
	for i := range root {
		u0[i] = root[i] + 0.05*(2*rng.Float64()-1)
	}
	return &steadyFixture{steady: steady, u0: u0}
}

func (f *steadyFixture) solve(t testing.TB, ws *Workspace) {
	opts := Options{
		SkipAnalog: true,
		Workspace:  ws,
		Newton:     nonlin.NewtonOptions{Tol: 1e-12, MaxIter: 60},
	}
	rep, err := Solve(nil, f.steady, opts)
	if err != nil {
		t.Error(err)
		return
	}
	if !rep.Digital.Converged {
		t.Errorf("steady solve did not converge: residual %g", rep.FinalResidual)
	}
}

// TestWorkspacePoolConcurrentReuse is the serving-path contract: repeated
// same-shaped solves from many goroutines, each holding its own pooled
// Workspace, must be race-clean. Run under `go test -race ./internal/core/`
// (scripts/check.sh does). Workspaces cycle through the shared pool between
// rounds, so the test also covers cross-goroutine Workspace hand-off.
func TestWorkspacePoolConcurrentReuse(t *testing.T) {
	const goroutines = 4
	const rounds = 3
	const solvesPerRound = 5
	pool := NewWorkspacePool()
	fixtures := make([]*steadyFixture, goroutines)
	for g := range fixtures {
		fixtures[g] = newSteadyFixture(t, int64(100+g))
	}
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ws := pool.Get()
				defer pool.Put(ws)
				for i := 0; i < solvesPerRound; i++ {
					fixtures[g].solve(t, ws)
				}
			}(g)
		}
		wg.Wait()
	}
}

// TestWorkspaceSteadyPathZeroAlloc pins the steady-state allocation contract
// the pool exists for: once a pooled Workspace has solved one problem of a
// given shape, further same-shaped solves through it allocate nothing. The
// assertion is skipped under -race (instrumentation perturbs allocation
// counts); `make bench` guards the same property on the benchmark path.
func TestWorkspaceSteadyPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is not meaningful under -race")
	}
	pool := NewWorkspacePool()
	fix := newSteadyFixture(t, 7)
	ws := pool.Get()
	fix.solve(t, ws) // warm-up sizes every buffer
	pool.Put(ws)
	ws = pool.Get()
	allocs := testing.AllocsPerRun(10, func() {
		fix.solve(t, ws)
	})
	pool.Put(ws)
	if allocs != 0 {
		t.Fatalf("steady path allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestWorkspacePoolZeroValueAndNilPut covers the pool edge cases: the zero
// value is usable, Get on an empty pool hands out a fresh Workspace, and
// Put(nil) is a no-op.
func TestWorkspacePoolZeroValueAndNilPut(t *testing.T) {
	var pool WorkspacePool
	pool.Put(nil)
	ws := pool.Get()
	if ws == nil {
		t.Fatal("Get returned nil workspace")
	}
	fix := newSteadyFixture(t, 11)
	fix.solve(t, ws)
	pool.Put(ws)
}
