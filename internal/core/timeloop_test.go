package core

import (
	"context"
	"errors"
	"testing"
)

// loopFrame is a deep copy of one emitted Frame (Frame.U aliases solver
// storage, so tests must copy before the next step overwrites it).
type loopFrame struct {
	step                        int
	t                           float64
	iters, linSolves, refactors int
	residual                    float64
	u                           []float64
}

func copyFrame(f *Frame) loopFrame {
	return loopFrame{
		step:      f.Step,
		t:         f.T,
		iters:     f.Iterations,
		linSolves: f.LinearSolves,
		refactors: f.Refactorizations,
		residual:  f.Residual,
		u:         append([]float64(nil), f.U...),
	}
}

// TestTimeLoopMatchesManualSolveLoop is the streaming equivalence contract:
// a TimeLoop trajectory must be bit-identical to the buffered serial loop a
// caller would write by hand — Solve, record, Advance, repeat.
func TestTimeLoopMatchesManualSolveLoop(t *testing.T) {
	const steps = 4
	b1 := mustRandomBurgers(t, 4, 0.8, 91)
	b2 := mustRandomBurgers(t, 4, 0.8, 91)
	opts := Options{SkipAnalog: true}

	var frames []loopFrame
	tr, err := TimeLoop(nil, b1, opts, TimeLoopOptions{Steps: steps, Dt: 0.25}, func(f *Frame) error {
		frames = append(frames, copyFrame(f))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Steps != steps || len(frames) != steps {
		t.Fatalf("expected %d frames, got report %d / emitted %d", steps, tr.Steps, len(frames))
	}

	var sumIters int
	for s := 0; s < steps; s++ {
		rep, err := Solve(nil, b2, opts)
		if err != nil {
			t.Fatalf("manual step %d: %v", s+1, err)
		}
		f := frames[s]
		if f.step != s+1 || f.t != float64(s+1)*0.25 { //pdevet:allow floateq exact step multiples
			t.Fatalf("frame %d mislabelled: step=%d t=%v", s, f.step, f.t)
		}
		if f.residual != rep.FinalResidual { //pdevet:allow floateq determinism test wants bit-identity
			t.Fatalf("step %d: residual %x, want %x", s+1, f.residual, rep.FinalResidual)
		}
		if f.iters != rep.Digital.TotalIters || f.linSolves != rep.Digital.LinearSolves {
			t.Fatalf("step %d: work accounting diverged: frame %+v vs report %+v", s+1, f, rep.Digital)
		}
		for i := range f.u {
			if f.u[i] != rep.U[i] { //pdevet:allow floateq determinism test wants bit-identity
				t.Fatalf("step %d: U[%d] = %x, want %x", s+1, i, f.u[i], rep.U[i])
			}
		}
		sumIters += rep.Digital.TotalIters
		if err := b2.Advance(rep.U); err != nil {
			t.Fatalf("manual advance %d: %v", s+1, err)
		}
	}
	if tr.TotalIterations != sumIters {
		t.Fatalf("report iterations %d, manual sum %d", tr.TotalIterations, sumIters)
	}
}

// TestTimeLoopChordWarmWorkspaceBitIdentity pins the perf tentpole's two
// claims together: a chord trajectory reuses factorizations (the win), and
// re-running it on an already-warm workspace reproduces the same bits (the
// contract that lets pooled server workers stream without cold resets).
func TestTimeLoopChordWarmWorkspaceBitIdentity(t *testing.T) {
	const steps = 5
	pool := NewWorkspacePool()
	ws := pool.Get()
	defer pool.Put(ws)
	opts := Options{SkipAnalog: true, Workspace: ws}
	opts.Newton.Chord = true

	run := func() ([]loopFrame, TransientReport) {
		b := mustRandomBurgers(t, 4, 0.8, 97)
		var frames []loopFrame
		tr, err := TimeLoop(nil, b, opts, TimeLoopOptions{Steps: steps}, func(f *Frame) error {
			frames = append(frames, copyFrame(f))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return frames, tr
	}

	cold, coldTr := run()
	if coldTr.Refactorizations == 0 || coldTr.Refactorizations >= coldTr.LinearSolves {
		t.Fatalf("chord trajectory did not reuse factorizations: %d refactorizations, %d linear solves",
			coldTr.Refactorizations, coldTr.LinearSolves)
	}

	warm, warmTr := run()
	if warmTr != coldTr {
		t.Fatalf("warm-workspace report diverged: %+v vs %+v", warmTr, coldTr)
	}
	for s := range cold {
		if warm[s].refactors != cold[s].refactors || warm[s].iters != cold[s].iters {
			t.Fatalf("step %d: warm gate decisions diverged: %+v vs %+v", s+1, warm[s], cold[s])
		}
		for i := range cold[s].u {
			if warm[s].u[i] != cold[s].u[i] { //pdevet:allow floateq determinism test wants bit-identity
				t.Fatalf("step %d: U[%d] = %x, want %x", s+1, i, warm[s].u[i], cold[s].u[i])
			}
		}
	}
}

// TestTimeLoopCtxCancelBetweenFrames: a cancellation lands between steps —
// frames already emitted stay counted, the loop aborts with the context's
// error before solving the next step.
func TestTimeLoopCtxCancelBetweenFrames(t *testing.T) {
	b := mustRandomBurgers(t, 3, 0.8, 101)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr, err := TimeLoop(ctx, b, Options{SkipAnalog: true}, TimeLoopOptions{Steps: 8}, func(f *Frame) error {
		if f.Step == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected a wrapped context.Canceled, got %v", err)
	}
	if tr.Steps != 2 {
		t.Fatalf("expected 2 delivered frames before the abort, got %d", tr.Steps)
	}
}

// TestTimeLoopEmitErrorAborts: an emit failure (the streaming client went
// away) aborts the loop and surfaces wrapped, with the delivered-frame
// count excluding the failed emit.
func TestTimeLoopEmitErrorAborts(t *testing.T) {
	b := mustRandomBurgers(t, 3, 0.8, 103)
	sentinel := errors.New("client gone")
	tr, err := TimeLoop(nil, b, Options{SkipAnalog: true}, TimeLoopOptions{Steps: 8}, func(f *Frame) error {
		if f.Step == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("expected the emit error wrapped, got %v", err)
	}
	if tr.Steps != 1 {
		t.Fatalf("expected 1 delivered frame, got %d", tr.Steps)
	}
}

// TestTimeLoopValidation covers the argument contract: at least one step,
// no caller-supplied initial guess (steps start from the previous time
// level), and the default Dt of 1 labelling the time axis.
func TestTimeLoopValidation(t *testing.T) {
	b := mustRandomBurgers(t, 3, 0.8, 107)
	noEmit := func(*Frame) error { return nil }

	if _, err := TimeLoop(nil, b, Options{SkipAnalog: true}, TimeLoopOptions{}, noEmit); err == nil {
		t.Fatal("Steps=0 must be rejected")
	}
	bad := Options{SkipAnalog: true, InitialGuess: make([]float64, b.Dim())}
	if _, err := TimeLoop(nil, b, bad, TimeLoopOptions{Steps: 1}, noEmit); err == nil {
		t.Fatal("InitialGuess must be rejected: steps start from the previous time level")
	}

	var gotT float64
	if _, err := TimeLoop(nil, b, Options{SkipAnalog: true}, TimeLoopOptions{Steps: 1}, func(f *Frame) error {
		gotT = f.T
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if gotT != 1 { //pdevet:allow floateq exact default
		t.Fatalf("default Dt should label the first frame t=1, got %v", gotT)
	}
}
