package core

import (
	"context"

	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/problem"
)

// LadderRung is one pluggable rung of the degradation ladder. A rung
// inspects the shared per-solve state, decides whether it applies, and
// either skips (zero Report, done false, nil error), serves the solve
// (done true), or fails through to the next rung (done false with the
// rung's Report cost and error). Rungs record their attempts through
// RungState.Push so the FallbackReport stays a faithful per-rung account.
//
// Rung implementations must be reusable across solves and must not retain
// state between calls beyond what RungState carries; the same rung value
// serves every solve of its ladder.
type LadderRung interface {
	// Name is the rung's identifier in reports and metrics.
	Name() Rung
	// Try attempts the rung. A context cancellation or deadline must be
	// returned unwrapped enough for errors.Is; the ladder aborts on it.
	Try(ctx context.Context, st *RungState) (rep Report, done bool, err error)
}

// RungState is the shared state of one ladder solve, handed to every rung
// in order. The embedded options are the defaulted solve options with
// InitialGuess pointing at the ladder's pristine-start snapshot; rungs that
// need different options must copy Opts before mutating the copy.
type RungState struct {
	// Sys is the system being solved.
	Sys problem.SparseSystem
	// Opts is the defaulted per-solve options snapshot.
	Opts Options
	// Lopts is the defaulted ladder options.
	Lopts LadderOptions
	// Dim caches Sys.Dim().
	Dim int

	l *Ladder
	// first is the rung of the first recorded attempt: the planned first
	// rung, against which Degraded is judged.
	first Rung
	// digitalTried marks that damped Newton from the pristine start already
	// ran (deterministically) inside an earlier rung, so the standalone
	// digital rung would only repeat a known outcome.
	digitalTried bool
	// directAnalog marks that the seeded rung ran a direct (undecomposed)
	// analog solve, which is what the forced-decomposition rung retries.
	directAnalog bool
}

// Start returns the pristine-start snapshot every rung begins from. Rungs
// must treat it as read-only.
func (st *RungState) Start() []float64 { return st.l.start }

// Scratch returns the ladder-owned per-solve scratch vectors available to
// cache-fed rungs: a candidate-solution buffer and a residual buffer.
func (st *RungState) Scratch() (candidate, residual []float64) {
	return st.l.warm, st.l.f
}

// Push records one attempt row. The first pushed row fixes the planned
// first rung that Degraded is judged against.
//
//pdevet:noalloc
func (st *RungState) Push(a RungAttempt) {
	if len(st.l.fb.Attempts) == 0 {
		st.first = a.Rung
	}
	st.l.push(a)
}

// conclude marks the serving rung in the fallback account.
//
//pdevet:noalloc
func (st *RungState) conclude(rung Rung) {
	st.l.fb.Final = rung
	st.l.fb.Degraded = rung != st.first
}

// seeded reports whether the solve is configured with an analog seeding
// stage at all.
func (st *RungState) seeded() bool {
	return st.Opts.Seeder != nil && !st.Opts.SkipAnalog
}

// seedOutcome records the attempt rows of one seeded Solve call and decides
// whether the ladder is finished. A call whose seed was rejected by the
// gate has already polished from the pristine start, i.e. it ran the
// digital rung too; both rows are recorded and a converged polish ends the
// ladder at RungDigital.
//
//pdevet:noalloc
func (st *RungState) seedOutcome(rung Rung, rep Report, err error) (Report, bool, error) {
	conv := err == nil && rep.Digital.Converged
	if rep.SeedRejected {
		st.Push(RungAttempt{
			Rung: rung, SeedResidual: rep.SeedResidual, SeedRejected: true,
			Seconds: rep.AnalogSeconds, EnergyJ: rep.AnalogEnergyJ,
		})
		if st.digitalTried {
			// The polish from the pristine start already ran (and failed)
			// deterministically in an earlier rejected rung; its repeat
			// outcome adds no information.
			return rep, false, err
		}
		st.digitalTried = true
		st.Push(RungAttempt{
			Rung: RungDigital, Converged: conv, Iterations: rep.Digital.TotalIters,
			Seconds: rep.DigitalSeconds, EnergyJ: rep.DigitalEnergyJ, Err: errString(err),
		})
		if conv {
			st.conclude(RungDigital)
			return rep, true, nil
		}
		return rep, false, err
	}
	st.Push(RungAttempt{
		Rung: rung, SeedResidual: rep.SeedResidual, Converged: conv,
		Iterations: rep.Digital.TotalIters,
		Seconds:    rep.TotalSeconds, EnergyJ: rep.TotalEnergyJ, Err: errString(err),
	})
	if conv {
		st.conclude(rung)
		return rep, true, nil
	}
	return rep, false, err
}

// ---------------------------------------------------------------------------
// The paper's four standard rungs.

// AnalogRung is the configured seeding policy: direct analog when the
// problem fits the accelerator, red-black decomposed otherwise. Skipped for
// unseeded solves. Its attempt row is named after what actually ran
// (RungAnalog or RungDecomposed).
func AnalogRung() LadderRung { return analogRung{} }

type analogRung struct{}

func (analogRung) Name() Rung { return RungAnalog }

//pdevet:noalloc
func (analogRung) Try(ctx context.Context, st *RungState) (Report, bool, error) {
	if !st.seeded() {
		return Report{}, false, nil
	}
	rep, err := Solve(ctx, st.Sys, st.Opts)
	if isCtxErr(err) {
		return rep, false, err
	}
	rung := RungAnalog
	if rep.Decomposed {
		rung = RungDecomposed
	} else {
		st.directAnalog = true
	}
	return st.seedOutcome(rung, rep, err)
}

// DecomposedRung is the forced re-tiling fallback: when a direct
// full-capacity analog solve misbehaved and the problem can be tiled, the
// same accelerators retry through red-black decomposition with tiles capped
// at roughly half the problem.
func DecomposedRung() LadderRung { return decomposedRung{} }

type decomposedRung struct{}

func (decomposedRung) Name() Rung { return RungDecomposed }

//pdevet:noalloc
func (decomposedRung) Try(ctx context.Context, st *RungState) (Report, bool, error) {
	if !st.seeded() || !st.directAnalog {
		return Report{}, false, nil
	}
	fb := FallbackSeeder(st.Opts.Seeder, st.Dim)
	if fb == nil {
		return Report{}, false, nil
	}
	if _, ok := st.Sys.(problem.Decomposable); !ok {
		return Report{}, false, nil
	}
	dopts := st.Opts
	dopts.Seeder = fb
	rep, err := Solve(ctx, st.Sys, dopts)
	if isCtxErr(err) {
		return rep, false, err
	}
	return st.seedOutcome(RungDecomposed, rep, err)
}

// DigitalRung is pure digital damped Newton from the pristine start —
// skipped when a rejected seed above already ran exactly this
// (deterministically).
func DigitalRung() LadderRung { return digitalRung{} }

type digitalRung struct{}

func (digitalRung) Name() Rung { return RungDigital }

//pdevet:noalloc
func (digitalRung) Try(ctx context.Context, st *RungState) (Report, bool, error) {
	if st.digitalTried {
		return Report{}, false, nil
	}
	dopts := st.Opts
	dopts.SkipAnalog = true
	rep, err := Solve(ctx, st.Sys, dopts)
	if isCtxErr(err) {
		return rep, false, err
	}
	st.digitalTried = true
	conv := err == nil && rep.Digital.Converged
	st.Push(RungAttempt{
		Rung: RungDigital, Converged: conv, Iterations: rep.Digital.TotalIters,
		Seconds: rep.TotalSeconds, EnergyJ: rep.TotalEnergyJ, Err: errString(err),
	})
	if conv {
		st.conclude(RungDigital)
		return rep, true, nil
	}
	return rep, false, err
}

// HomotopyRung is the last-resort global Newton homotopy on the dense
// adapter, skipped for problems larger than LadderOptions.MaxHomotopyDim.
func HomotopyRung() LadderRung { return homotopyRung{} }

type homotopyRung struct{}

func (homotopyRung) Name() Rung { return RungHomotopy }

// Try runs the homotopy and prices it through the configured perf backend
// as dense Newton work. Only reached after at least one failed rung, so
// allocation is acceptable here.
func (homotopyRung) Try(ctx context.Context, st *RungState) (Report, bool, error) {
	if st.Lopts.DisableHomotopy || st.Dim > st.Lopts.MaxHomotopyDim {
		return Report{}, false, nil
	}
	hopts := nonlin.HomotopyOptions{Steps: st.Lopts.HomotopySteps, Predict: true, Newton: st.Lopts.HomotopyNewton}
	hr, err := nonlin.NewtonHomotopy(ctx, nonlin.DenseAdapter{S: st.Sys}, st.l.start, hopts)
	// Synthesise a dense-Newton work profile for the perf model: one
	// factorisation and one linear solve per corrector iteration.
	res := nonlin.Result{
		U: hr.U, Converged: hr.Converged, Residual: hr.Residual,
		Iterations: hr.NewtonIters, TotalIters: hr.NewtonIters,
		LinearSolves: hr.NewtonIters, Refactorizations: hr.NewtonIters,
		FactorOps: int64(hr.NewtonIters) * factorOpsDense(st.Dim),
		Attempts:  1, DampingUsed: 1,
	}
	rep := Report{
		U: hr.U, Digital: res, FinalResidual: hr.Residual,
		DigitalSeconds: st.Opts.Perf.Time(res, st.Dim),
		DigitalEnergyJ: st.Opts.Perf.Energy(res, st.Dim),
	}
	rep.TotalSeconds = rep.DigitalSeconds
	rep.TotalEnergyJ = rep.DigitalEnergyJ
	conv := err == nil && hr.Converged
	st.Push(RungAttempt{
		Rung: RungHomotopy, Converged: conv, Iterations: hr.NewtonIters,
		Seconds: rep.TotalSeconds, EnergyJ: rep.TotalEnergyJ, Err: errString(err),
	})
	if conv {
		st.conclude(RungHomotopy)
		return rep, true, nil
	}
	if err == nil {
		err = nonlin.ErrNoConvergence
	}
	return rep, false, err
}

// ---------------------------------------------------------------------------
// Cache-fed rungs: content-addressed exact hits and warm-start continuation.

// CachedSolve is the stored outcome of a previous solve that the cache rung
// replays: the scalar account of the solve that originally produced the
// cached solution. Seconds/EnergyJ are the original modelled totals — a
// replay costs nothing new, but the result it serves was priced once.
type CachedSolve struct {
	Converged    bool
	Iterations   int
	Residual     float64
	SeedResidual float64
	AnalogUsed   bool
	Decomposed   bool
	Subproblems  int
	GSSweeps     int
	Seconds      float64
	EnergyJ      float64
}

// SolveCache is the seam between the ladder's cache rungs and a result
// store. Implementations are bound to one solve at a time by the caller
// (which knows the problem identity and computes content-addressed keys);
// both methods must be allocation-free on the hot path.
type SolveCache interface {
	// Lookup copies the exact-hit solution into dst and returns its replay
	// account. ok=false is a miss (including a dimension mismatch).
	Lookup(dst []float64) (CachedSolve, bool)
	// Nearest copies the nearest cached neighbour's solution into dst for
	// warm starting. ok=false when no neighbour is within the caller's
	// configured radius.
	Nearest(dst []float64) bool
}

// CacheRung serves an exact content-address hit without running any solver
// stage: the stored solution and its account are replayed. A nil or
// unbound cache skips. The returned Report.U aliases ladder-owned storage.
func CacheRung(c SolveCache) LadderRung { return &cacheRung{c: c} }

type cacheRung struct{ c SolveCache }

func (r *cacheRung) Name() Rung { return RungCache }

//pdevet:noalloc
func (r *cacheRung) Try(ctx context.Context, st *RungState) (Report, bool, error) {
	if r.c == nil {
		return Report{}, false, nil
	}
	hit, ok := r.c.Lookup(st.l.warm)
	if !ok {
		// A miss is not an attempt: the report must stay bit-identical to a
		// solve with no cache configured.
		return Report{}, false, nil
	}
	st.Push(RungAttempt{Rung: RungCache, Converged: hit.Converged, Iterations: hit.Iterations})
	st.conclude(RungCache)
	rep := Report{
		U:            st.l.warm,
		AnalogUsed:   hit.AnalogUsed,
		SeedResidual: hit.SeedResidual,
		Decomposed:   hit.Decomposed,
		Subproblems:  hit.Subproblems,
		GSSweeps:     hit.GSSweeps,
		Digital: nonlin.Result{
			U: st.l.warm, Converged: hit.Converged, Residual: hit.Residual,
			Iterations: hit.Iterations, TotalIters: hit.Iterations,
		},
		FinalResidual: hit.Residual,
		TotalSeconds:  hit.Seconds,
		TotalEnergyJ:  hit.EnergyJ,
	}
	return rep, true, nil
}

// WarmStartRung is the parameter-continuation rung: the cached solution of
// the nearest previously-solved parameter point becomes the digital Newton
// start, exactly as an analog seed would. The candidate is gated by the
// same residual seed-quality gate (Options.SeedGate): a stale start —
// residual above gate × the pristine start's — is rejected with an attempt
// row, and the ladder falls through to the next rung instead of letting a
// bad continuation poison the solve.
func WarmStartRung(c SolveCache) LadderRung { return &warmStartRung{c: c} }

type warmStartRung struct{ c SolveCache }

func (r *warmStartRung) Name() Rung { return RungWarmStart }

//pdevet:noalloc
func (r *warmStartRung) Try(ctx context.Context, st *RungState) (Report, bool, error) {
	if r.c == nil {
		return Report{}, false, nil
	}
	warm := st.l.warm
	if !r.c.Nearest(warm) {
		// No neighbour: not an attempt, for the same cold-identity reason
		// as a cache miss.
		return Report{}, false, nil
	}
	f := st.l.f
	if err := st.Sys.Eval(st.l.start, f); err != nil {
		return Report{}, false, err
	}
	startRes := la.Norm2(f)
	if err := st.Sys.Eval(warm, f); err != nil {
		return Report{}, false, err
	}
	warmRes := la.Norm2(f)
	// The gate comparison is written so NaN/Inf candidate residuals fail it.
	if !(warmRes <= st.Opts.SeedGate*startRes) {
		st.Push(RungAttempt{Rung: RungWarmStart, SeedResidual: warmRes, SeedRejected: true})
		return Report{}, false, nil
	}
	dopts := st.Opts
	dopts.SkipAnalog = true
	dopts.InitialGuess = warm
	rep, err := Solve(ctx, st.Sys, dopts)
	if isCtxErr(err) {
		return rep, false, err
	}
	rep.SeedResidual = warmRes
	rep.StartResidual = startRes
	conv := err == nil && rep.Digital.Converged
	st.Push(RungAttempt{
		Rung: RungWarmStart, SeedResidual: warmRes, Converged: conv,
		Iterations: rep.Digital.TotalIters,
		Seconds:    rep.TotalSeconds, EnergyJ: rep.TotalEnergyJ, Err: errString(err),
	})
	if conv {
		st.conclude(RungWarmStart)
		return rep, true, nil
	}
	return rep, false, err
}

// DefaultRungs is the paper's original ladder: analog seed → forced
// decomposition → pure digital damped Newton → global Newton homotopy.
func DefaultRungs() []LadderRung {
	return []LadderRung{AnalogRung(), DecomposedRung(), DigitalRung(), HomotopyRung()}
}

// CachedRungs is the serving ladder: content-addressed cache and warm-start
// continuation slot in ahead of the analog stage.
func CachedRungs(c SolveCache) []LadderRung {
	return append([]LadderRung{CacheRung(c), WarmStartRung(c)}, DefaultRungs()...)
}
