package core

import (
	"hybridpde/internal/nonlin"
	"hybridpde/internal/perfmodel"
)

// PerfBackend prices the digital polish stage from its measured algorithmic
// work (iteration counts, factorization multiply-adds). It replaces the old
// two-value PerfTarget enum so new baselines — e.g. an analog linear-algebra
// co-processor, or a remeasured GPU — plug in without touching the pipeline.
// Implementations must be stateless and safe for concurrent use.
type PerfBackend interface {
	// Name identifies the backend in reports and tables.
	Name() string
	// Time prices the counted (successful-attempt) work in seconds.
	Time(res nonlin.Result, dim int) float64
	// Energy prices the total work, including failed damping attempts, in
	// joules.
	Energy(res nonlin.Result, dim int) float64
}

// Built-in backends. PerfCPU and PerfGPU are the paper's measured baselines;
// PerfAnalogLA prices the hypothetical host-plus-analog-linear-algebra
// hybrid of the paper's predecessor work [22, 23].
var (
	// PerfCPU is the dual-Xeon damped-Newton baseline of Figures 7 and 8.
	PerfCPU PerfBackend = cpuBackend{}
	// PerfGPU is the cuSolver sparse-QR baseline of Figure 9.
	PerfGPU PerfBackend = gpuBackend{}
	// PerfAnalogLA ships each Newton linear solve to an analog crossbar.
	PerfAnalogLA PerfBackend = analogLABackend{}
)

type cpuBackend struct{}

func (cpuBackend) Name() string { return "cpu" }
func (cpuBackend) Time(res nonlin.Result, dim int) float64 {
	return perfmodel.CPUTime(res, dim)
}
func (cpuBackend) Energy(res nonlin.Result, dim int) float64 {
	return perfmodel.CPUEnergy(res, dim)
}

type gpuBackend struct{}

func (gpuBackend) Name() string { return "gpu" }
func (gpuBackend) Time(res nonlin.Result, dim int) float64 {
	return perfmodel.GPUTime(res, dim)
}
func (gpuBackend) Energy(res nonlin.Result, dim int) float64 {
	return perfmodel.GPUEnergy(res, dim)
}

type analogLABackend struct{}

func (analogLABackend) Name() string { return "analog-la" }
func (analogLABackend) Time(res nonlin.Result, dim int) float64 {
	return perfmodel.AnalogLATime(res, dim)
}
func (analogLABackend) Energy(res nonlin.Result, dim int) float64 {
	return perfmodel.AnalogLAEnergy(res, dim)
}
