package core

import (
	"context"
	"errors"
	"fmt"

	"hybridpde/internal/problem"
)

// TransientSystem is a sparse nonlinear system that marches in time: after
// each converged implicit step, Advance installs the solved level as the new
// previous level (and the next step's warm start). The Crank–Nicolson
// Burgers systems implement it.
type TransientSystem interface {
	problem.SparseSystem
	Advance(w []float64) error
}

// Frame is one time step of a transient solve, handed to the TimeLoop
// callback as soon as the step converges — the unit of streaming.
type Frame struct {
	// Step is the 1-based step index; T = Step·Dt is the frame time.
	Step int
	T    float64
	// U is the step's solution. It aliases solver workspace storage and is
	// only valid during the callback: the next step overwrites it. Copy or
	// serialize it before returning.
	U []float64
	// Residual is the step's certified final ‖F(u)‖₂ — the per-frame
	// accuracy bound that makes a streamed partial trajectory trustworthy.
	Residual float64
	// Converged, Iterations and LinearSolves describe the step's digital
	// polish; Refactorizations counts its Jacobian refresh events (chord
	// mode reuses factorizations across iterations and steps, so this is
	// usually far below LinearSolves).
	Converged        bool
	Iterations       int
	LinearSolves     int
	Refactorizations int
	// Rung is the ladder rung that served the step ("" when the loop ran
	// plain Solve), Degraded whether the step fell below its planned rung,
	// and SeedRejections the step's gate rejections — the frame-level echo
	// of the start-source accounting in Report.Fallback.
	Rung           Rung
	Degraded       bool
	SeedRejections int
	// Seconds and EnergyJ are the step's modelled cost.
	Seconds float64
	EnergyJ float64
}

// TimeLoopOptions configures a transient drive.
type TimeLoopOptions struct {
	// Steps is the number of Crank–Nicolson steps to march. Required ≥ 1.
	Steps int
	// Dt is the reported frame time spacing: frames carry T = Step·Dt. The
	// isotropic discretization fixes the *numerical* step to the grid
	// spacing, so Dt labels the trajectory's time axis without changing the
	// computation. Default 1.
	Dt float64
	// Ladder, when set, runs every step through the degradation ladder with
	// Lopts (cache rungs should be unbound or off: intermediate time levels
	// are not content-addressable). When nil, steps run plain Solve.
	Ladder *Ladder
	Lopts  LadderOptions
}

// TransientReport is the whole-trajectory account of a TimeLoop drive.
type TransientReport struct {
	// Steps counts completed (emitted) frames; on an abort it is the number
	// of frames the caller actually received.
	Steps            int
	TotalIterations  int
	LinearSolves     int
	Refactorizations int
	// TotalSeconds and TotalEnergyJ are the summed modelled step costs.
	TotalSeconds float64
	TotalEnergyJ float64
}

// TimeLoop marches sys through opts.Steps Crank–Nicolson steps, emitting a
// Frame to the callback as each step converges, and advancing the system's
// previous time level afterwards. Each step starts from the system's own
// warm start (the previous level), exactly as a buffered serial loop over
// Solve would — a streamed trajectory is bit-identical to a buffered one.
//
// A cancelled ctx aborts between frames with an error wrapping the
// context's error; an emit error aborts the loop and is returned verbatim
// wrapped. Either way the returned report counts the frames delivered.
//
// When sopts.Newton.Chord is set, the loop resets the workspace solver's
// factorization-reuse state first: a chord trajectory must produce the same
// bits on a warm workspace as on a fresh one, so cross-step reuse starts
// inside the trajectory, never from a previous request's factorization.
func TimeLoop(ctx context.Context, sys TransientSystem, sopts Options, opts TimeLoopOptions, emit func(*Frame) error) (TransientReport, error) {
	var tr TransientReport
	if opts.Steps < 1 {
		return tr, errors.New("core: time loop needs at least one step")
	}
	if opts.Dt <= 0 {
		opts.Dt = 1
	}
	if sopts.InitialGuess != nil {
		return tr, errors.New("core: time loop steps start from the previous time level; InitialGuess must be nil")
	}
	if sopts.Newton.Chord && sopts.Workspace != nil {
		sopts.Workspace.Solver.ResetReuse()
	}
	var frame Frame
	for step := 1; step <= opts.Steps; step++ {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return tr, fmt.Errorf("core: time loop aborted at step %d: %w", step, cerr)
			}
		}
		var rep Report
		var err error
		if opts.Ladder != nil {
			rep, err = opts.Ladder.Solve(ctx, sys, sopts, opts.Lopts)
		} else {
			rep, err = Solve(ctx, sys, sopts)
		}
		tr.TotalIterations += rep.Digital.TotalIters
		tr.LinearSolves += rep.Digital.LinearSolves
		tr.Refactorizations += rep.Digital.Refactorizations
		tr.TotalSeconds += rep.TotalSeconds
		tr.TotalEnergyJ += rep.TotalEnergyJ
		if err != nil {
			return tr, fmt.Errorf("core: time loop step %d: %w", step, err)
		}
		frame = Frame{
			Step:             step,
			T:                float64(step) * opts.Dt,
			U:                rep.U,
			Residual:         rep.FinalResidual,
			Converged:        rep.Digital.Converged,
			Iterations:       rep.Digital.TotalIters,
			LinearSolves:     rep.Digital.LinearSolves,
			Refactorizations: rep.Digital.Refactorizations,
			Seconds:          rep.TotalSeconds,
			EnergyJ:          rep.TotalEnergyJ,
		}
		if fb := rep.Fallback; fb != nil {
			frame.Rung = fb.Final
			frame.Degraded = fb.Degraded
			frame.SeedRejections = fb.SeedRejections
		}
		if err := emit(&frame); err != nil {
			return tr, fmt.Errorf("core: time loop emit at step %d: %w", step, err)
		}
		tr.Steps++
		if err := sys.Advance(rep.U); err != nil {
			return tr, fmt.Errorf("core: time loop advance at step %d: %w", step, err)
		}
	}
	return tr, nil
}
