//go:build !race

package cache

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so allocation-count assertions are skipped
// under -race.
const raceEnabled = false
