package cache

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func keyOf(parts ...any) Key {
	var kb KeyBuilder
	for i, p := range parts {
		tag := byte(i + 1)
		switch v := p.(type) {
		case string:
			kb.Str(tag, v)
		case int:
			kb.I64(tag, int64(v))
		case int64:
			kb.I64(tag, v)
		case float64:
			kb.F64Q(tag, v, 1e6)
		default:
			panic("unsupported part")
		}
	}
	return kb.Sum()
}

func TestKeyBuilderDeterministic(t *testing.T) {
	a := keyOf("burgers2d", 6, 2, 1.0, 0.5)
	b := keyOf("burgers2d", 6, 2, 1.0, 0.5)
	if a != b {
		t.Fatal("identical inputs produced different keys")
	}
	if a == keyOf("burgers2d", 6, 2, 1.0, 0.6) {
		t.Fatal("different bound collided")
	}
	if a == keyOf("burgers-steady", 6, 2, 1.0, 0.5) {
		t.Fatal("different problem id collided")
	}
	if a == keyOf("burgers2d", 7, 2, 1.0, 0.5) {
		t.Fatal("different shape collided")
	}
}

func TestKeyBuilderSpill(t *testing.T) {
	long := make([]byte, 4*keyBufCap)
	for i := range long {
		long[i] = byte(i)
	}
	var kb KeyBuilder
	kb.Str(1, string(long))
	a := kb.Sum()
	kb.Reset()
	kb.Str(1, string(long))
	if a != kb.Sum() {
		t.Fatal("spilled encoding is not deterministic")
	}
	kb.Reset()
	kb.Str(1, string(long[:len(long)-1]))
	if a == kb.Sum() {
		t.Fatal("spilled encodings of different strings collided")
	}
}

func TestQuantize(t *testing.T) {
	if Quantize(1.0000004, 1e6) != Quantize(1.0000001, 1e6) {
		t.Fatal("values inside one cell quantised differently")
	}
	if Quantize(1.0, 1e6) == Quantize(1.000001, 1e6) {
		t.Fatal("values one cell apart collided")
	}
	if Quantize(-0.5, 10) != -5 {
		t.Fatalf("Quantize(-0.5,10) = %d", Quantize(-0.5, 10))
	}
	if Quantize(math.NaN(), 1e6) != math.MinInt64 {
		t.Fatal("NaN did not map to its sentinel")
	}
	if Quantize(math.Inf(1), 1e6) != quantClamp {
		t.Fatal("+Inf did not saturate")
	}
	if Quantize(math.Inf(-1), 1e6) != -quantClamp {
		t.Fatal("-Inf did not saturate")
	}
	if Quantize(1e300, 1e6) != quantClamp {
		t.Fatal("huge value did not saturate")
	}
}

func TestStoreGetPut(t *testing.T) {
	s := New(8)
	u := []float64{1, 2, 3}
	s.Put(keyOf("a"), keyOf("b"), []float64{1.0}, u, "meta-a")
	dst := make([]float64, 3)
	meta, ok := s.Get(keyOf("a"), dst)
	if !ok || meta != "meta-a" {
		t.Fatalf("Get: ok=%v meta=%v", ok, meta)
	}
	if dst[0] != 1 || dst[2] != 3 {
		t.Fatalf("Get copied %v", dst)
	}
	// The stored vector must be a copy, not an alias.
	u[0] = 99
	if _, _ = s.Get(keyOf("a"), dst); dst[0] != 1 {
		t.Fatal("Put aliased the caller's slice")
	}
	// Dimension mismatch is a miss.
	if _, ok := s.Get(keyOf("a"), make([]float64, 2)); ok {
		t.Fatal("dimension mismatch served a hit")
	}
	if _, ok := s.Get(keyOf("nope"), dst); ok {
		t.Fatal("missing key served a hit")
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := New(3)
	for i := 0; i < 3; i++ {
		s.Put(keyOf("k", i), keyOf("b"), nil, []float64{float64(i)}, nil)
	}
	dst := make([]float64, 1)
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := s.Get(keyOf("k", 0), dst); !ok {
		t.Fatal("k0 missing before eviction")
	}
	s.Put(keyOf("k", 3), keyOf("b"), nil, []float64{3}, nil)
	if _, ok := s.Get(keyOf("k", 1), dst); ok {
		t.Fatal("LRU victim k1 survived")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := s.Get(keyOf("k", i), dst); !ok {
			t.Fatalf("k%d evicted wrongly", i)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreNearest(t *testing.T) {
	s := New(16)
	b := keyOf("bucket")
	s.Put(keyOf("p", 1), b, []float64{1.0, 0.5}, []float64{10}, "re1")
	s.Put(keyOf("p", 2), b, []float64{1.2, 0.5}, []float64{12}, "re1.2")
	s.Put(keyOf("p", 3), b, []float64{9.0, 0.5}, []float64{90}, "far")
	dst := make([]float64, 1)
	d, meta, ok := s.Nearest(b, []float64{1.05, 0.5}, 0.25, dst)
	if !ok || meta != "re1" {
		t.Fatalf("Nearest: ok=%v meta=%v", ok, meta)
	}
	if math.Abs(d-0.05) > 1e-12 || dst[0] != 10 {
		t.Fatalf("Nearest: d=%g dst=%v", d, dst)
	}
	// Outside the radius: no neighbour.
	if _, _, ok := s.Nearest(b, []float64{5, 0.5}, 0.25, dst); ok {
		t.Fatal("out-of-radius neighbour served")
	}
	// Wrong bucket: no neighbour.
	if _, _, ok := s.Nearest(keyOf("other"), []float64{1.0, 0.5}, 0.25, dst); ok {
		t.Fatal("cross-bucket neighbour served")
	}
	// Wrong solution length: skipped.
	if _, _, ok := s.Nearest(b, []float64{1.0, 0.5}, 0.25, make([]float64, 2)); ok {
		t.Fatal("dimension-mismatched neighbour served")
	}
}

func TestStoreBucketOverflow(t *testing.T) {
	s := New(10 * maxBucketEntries)
	b := keyOf("bucket")
	for i := 0; i < maxBucketEntries+5; i++ {
		s.Put(keyOf("k", i), b, []float64{float64(i)}, []float64{float64(i)}, nil)
	}
	if s.Len() != maxBucketEntries {
		t.Fatalf("bucket overflow not evicted: Len=%d", s.Len())
	}
	dst := make([]float64, 1)
	// The oldest-inserted members are gone, the newest survive.
	if _, ok := s.Get(keyOf("k", 0), dst); ok {
		t.Fatal("oldest bucket member survived overflow")
	}
	if _, ok := s.Get(keyOf("k", maxBucketEntries+4), dst); !ok {
		t.Fatal("newest bucket member evicted")
	}
}

func TestSingleflight(t *testing.T) {
	s := New(8)
	key := keyOf("sf")
	f, leader := s.Join(key)
	if !leader || f == nil {
		t.Fatal("first Join must lead")
	}
	f2, leader2 := s.Join(key)
	if leader2 || f2 != f {
		t.Fatal("second Join must wait on the leader's flight")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := f2.Wait(context.Background()); err != nil {
			t.Errorf("Wait: %v", err)
		}
	}()
	s.Put(key, keyOf("b"), nil, []float64{1}, nil)
	s.Done(key)
	wg.Wait()
	// After completion the key is cached: Join short-circuits.
	if f3, l3 := s.Join(key); f3 != nil || l3 {
		t.Fatal("Join after Put must report cached")
	}
	// Done without a flight is a no-op.
	s.Done(keyOf("never"))
}

func TestSingleflightWaitCtx(t *testing.T) {
	s := New(8)
	key := keyOf("ctx")
	if _, leader := s.Join(key); !leader {
		t.Fatal("expected leadership")
	}
	f, _ := s.Join(key)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := f.Wait(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Wait under expired ctx: %v", err)
	}
	s.Done(key)
}

func TestStoreConcurrent(t *testing.T) {
	s := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]float64, 1)
			for i := 0; i < 200; i++ {
				k := keyOf("k", i%32)
				b := keyOf("b", i%4)
				if f, leader := s.Join(k); leader {
					s.Put(k, b, []float64{float64(i % 32)}, []float64{float64(g)}, nil)
					s.Done(k)
				} else if f != nil {
					_ = f.Wait(context.Background())
				}
				s.Get(k, dst)
				s.Nearest(b, []float64{float64(i % 32)}, 1.0, dst)
			}
		}(g)
	}
	wg.Wait()
}

func TestPutRefresh(t *testing.T) {
	s := New(8)
	k, b := keyOf("k"), keyOf("b")
	s.Put(k, b, []float64{1}, []float64{1}, "old")
	s.Put(k, b, []float64{1}, []float64{2}, "new")
	if s.Len() != 1 {
		t.Fatalf("refresh duplicated the entry: Len=%d", s.Len())
	}
	dst := make([]float64, 1)
	meta, ok := s.Get(k, dst)
	if !ok || meta != "new" || dst[0] != 2 {
		t.Fatalf("refresh not applied: ok=%v meta=%v dst=%v", ok, meta, dst)
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := New(1024)
	u := make([]float64, 512)
	k := keyOf("bench")
	s.Put(k, keyOf("b"), []float64{1, 0.5}, u, nil)
	dst := make([]float64, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(k, dst); !ok {
			b.Fatal("miss")
		}
	}
}

func ExampleKeyBuilder() {
	var kb KeyBuilder
	kb.Str(1, "burgers-steady")
	kb.I64(2, 6)
	kb.F64Q(3, 1.0, 1e6)
	a := kb.Sum()
	kb.Reset()
	kb.Str(1, "burgers-steady")
	kb.I64(2, 6)
	kb.F64Q(3, 1.0000001, 1e6) // same quantisation cell
	fmt.Println(a == kb.Sum())
	// Output: true
}
