package cache

import "testing"

// buildKey is the fuzz oracle's canonical identity encoding: the same
// field order the serve registry uses (problem id, shape, order, quantised
// parameters, seed).
func buildKey(kb *KeyBuilder, problem string, n, order int64, re, bound float64, seed int64) Key {
	kb.Reset()
	kb.Str(1, problem)
	kb.I64(2, n)
	kb.I64(3, order)
	kb.F64Q(4, re, 1e6)
	kb.F64Q(5, bound, 1e6)
	kb.I64(6, seed)
	return kb.Sum()
}

// FuzzCacheKey drives the key/quantisation path with arbitrary inputs:
// keys must be stable (same identity → same key), distinct problem
// ids/shapes must never collide, and quantisation must be deterministic
// and consistent with key equality.
func FuzzCacheKey(f *testing.F) {
	f.Add("burgers2d", int64(6), int64(2), 1.0, 0.5, int64(1), "burgers-steady", int64(5))
	f.Add("burgers1d", int64(64), int64(2), 40.0, 0.5, int64(99), "burgers1d", int64(64))
	f.Add("", int64(0), int64(0), 0.0, 0.0, int64(0), "x", int64(-1))
	f.Add("a", int64(1), int64(4), -1.5, 1e308, int64(7), "ab", int64(1))
	f.Fuzz(func(t *testing.T, p1 string, n1, o1 int64, re, bound float64, seed int64, p2 string, n2 int64) {
		var kb KeyBuilder
		k1 := buildKey(&kb, p1, n1, o1, re, bound, seed)
		if k1 != buildKey(&kb, p1, n1, o1, re, bound, seed) {
			t.Fatal("key not stable across rebuilds")
		}
		if p1 != p2 {
			if k1 == buildKey(&kb, p2, n1, o1, re, bound, seed) {
				t.Fatalf("problem ids %q and %q collided", p1, p2)
			}
		}
		if n1 != n2 {
			if k1 == buildKey(&kb, p1, n2, o1, re, bound, seed) {
				t.Fatalf("shapes %d and %d collided", n1, n2)
			}
		}
		if k1 == buildKey(&kb, p1, n1, o1+1, re, bound, seed) {
			t.Fatal("orders collided")
		}
		if k1 == buildKey(&kb, p1, n1, o1, re, bound, seed+1) {
			t.Fatal("seeds collided")
		}
		// Quantisation stability: the quantised cell is deterministic, and
		// two parameter values in the same cell yield the same key.
		if Quantize(re, 1e6) != Quantize(re, 1e6) {
			t.Fatal("quantisation not deterministic")
		}
		if Quantize(re, 1e6) == Quantize(bound, 1e6) {
			if buildKey(&kb, p1, n1, o1, re, re, seed) != buildKey(&kb, p1, n1, o1, re, bound, seed) {
				t.Fatal("same-cell parameters produced different keys")
			}
		}
	})
}
