package cache

import "context"

// Flight is one in-flight solve being deduplicated: the leader computes,
// waiters block on Wait until the leader calls Done.
type Flight struct {
	done chan struct{}
}

// Join registers interest in key's solve.
//
//   - (nil, false): the key is already cached — just Get it.
//   - (f, true): the caller is the leader. It must solve, Put on success,
//     and call Done(key) exactly once, on every path (defer it).
//   - (f, false): another caller is already solving the key; Wait on f,
//     then Get — or, if the leader failed and cached nothing, solve
//     independently.
func (s *Store) Join(key Key) (f *Flight, leader bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries[key] != nil {
		return nil, false
	}
	if f := s.flights[key]; f != nil {
		return f, false
	}
	f = &Flight{done: make(chan struct{})}
	s.flights[key] = f
	return f, true
}

// Done completes the leader's flight for key, waking every waiter. Safe to
// call when no flight is registered (it is then a no-op), so leaders can
// defer it unconditionally.
func (s *Store) Done(key Key) {
	s.mu.Lock()
	f := s.flights[key]
	delete(s.flights, key)
	s.mu.Unlock()
	if f != nil {
		close(f.done)
	}
}

// Wait blocks until the flight's leader calls Done or ctx expires.
func (f *Flight) Wait(ctx context.Context) error {
	select {
	case <-f.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
