//go:build race

package cache

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
