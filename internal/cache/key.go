// Package cache is a content-addressed solve-result store: solutions are
// keyed by a collision-resistant digest of the full problem identity
// (problem id, shape, quantised parameters, seed), held under LRU
// eviction, deduplicated in flight via singleflight, and additionally
// indexed by quantised parameter buckets so a nearest-neighbour lookup can
// feed warm-start parameter continuation. The exact-hit and neighbour
// lookups are allocation-free, which is what lets the serving hot path
// keep its zero-alloc contract with the cache in front of it.
package cache

import (
	"crypto/sha256"
	"math"
)

// Key is a content address: a SHA-256 digest over the canonical encoding
// of a solve's identity. The 256-bit digest makes accidental collisions a
// non-event, so two distinct identities never alias a cache entry.
type Key [32]byte

// keyBufCap is the KeyBuilder's fixed buffer. Encodings longer than this
// are folded down by Merkle-style chaining (see spill), so arbitrarily
// long inputs still hash injectively without allocating.
const keyBufCap = 192

// KeyBuilder accumulates the canonical, domain-separated encoding of one
// identity and digests it into a Key. The zero value is ready to use; the
// buffer is fixed-size so building a key allocates nothing, and every
// field is length- or tag-prefixed so distinct field sequences can never
// produce the same encoding.
type KeyBuilder struct {
	n   int
	buf [keyBufCap]byte
}

// Reset discards any accumulated encoding.
func (b *KeyBuilder) Reset() { b.n = 0 }

// spill compresses a full buffer into its digest so encoding can continue
// in fixed memory. Chaining preserves injectivity: the digest stands in
// for the exact prefix that produced it.
//
//pdevet:noalloc
func (b *KeyBuilder) spill() {
	sum := sha256.Sum256(b.buf[:b.n])
	copy(b.buf[:], sum[:])
	b.n = len(sum)
}

//pdevet:noalloc
func (b *KeyBuilder) byteIn(c byte) {
	if b.n == keyBufCap {
		b.spill()
	}
	b.buf[b.n] = c
	b.n++
}

// Str appends a tagged, length-prefixed string field.
//
//pdevet:noalloc
func (b *KeyBuilder) Str(tag byte, s string) {
	b.byteIn(tag)
	b.uvarint(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		b.byteIn(s[i])
	}
}

// I64 appends a tagged fixed-width integer field.
//
//pdevet:noalloc
func (b *KeyBuilder) I64(tag byte, v int64) {
	b.byteIn(tag)
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b.byteIn(byte(u >> (8 * i)))
	}
}

// F64Q appends a tagged quantised float field: the value is snapped to a
// 1/scale grid first, so parameters that agree to within half a cell share
// an encoding.
//
//pdevet:noalloc
func (b *KeyBuilder) F64Q(tag byte, x, scale float64) {
	b.I64(tag, Quantize(x, scale))
}

//pdevet:noalloc
func (b *KeyBuilder) uvarint(v uint64) {
	for v >= 0x80 {
		b.byteIn(byte(v) | 0x80)
		v >>= 7
	}
	b.byteIn(byte(v))
}

// Sum digests the accumulated encoding. The builder remains usable; call
// Reset to start a new key.
//
//pdevet:noalloc
func (b *KeyBuilder) Sum() Key {
	return sha256.Sum256(b.buf[:b.n])
}

// quantClamp bounds the quantised grid so the float→int conversion below
// is never undefined; anything beyond it is saturated.
const quantClamp = int64(1) << 62

// Quantize snaps x onto a grid of spacing 1/scale, rounding half away from
// zero. The mapping is deterministic and total: NaN gets a dedicated
// sentinel cell and the infinities saturate to the clamp bounds, so every
// float — however hostile — lands in exactly one stable cell.
func Quantize(x, scale float64) int64 {
	if math.IsNaN(x) {
		return math.MinInt64
	}
	v := math.Round(x * scale)
	if v >= float64(quantClamp) {
		return quantClamp
	}
	if v <= -float64(quantClamp) {
		return -quantClamp
	}
	return int64(v)
}
