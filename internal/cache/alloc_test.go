package cache

import "testing"

// TestStoreHotPathZeroAlloc pins the cache side of the serving hot path's
// zero-alloc contract: key construction, an exact Get, and a Nearest scan
// allocate nothing once the store is warm.
func TestStoreHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is meaningless under -race")
	}
	s := New(64)
	u := make([]float64, 128)
	var kb KeyBuilder
	makeKey := func(re float64) Key {
		kb.Reset()
		kb.Str(1, "burgers-steady")
		kb.I64(2, 6)
		kb.F64Q(3, re, 1e6)
		return kb.Sum()
	}
	bucket := keyOf("bucket")
	s.Put(makeKey(1.0), bucket, []float64{1.0}, u, nil)
	s.Put(makeKey(1.1), bucket, []float64{1.1}, u, nil)
	dst := make([]float64, 128)
	coords := []float64{1.05}

	allocs := testing.AllocsPerRun(200, func() {
		k := makeKey(1.0)
		if _, ok := s.Get(k, dst); !ok {
			t.Fatal("miss on warm store")
		}
		if _, _, ok := s.Nearest(bucket, coords, 0.25, dst); !ok {
			t.Fatal("no neighbour on warm store")
		}
	})
	if allocs != 0 {
		t.Fatalf("hot cache path allocated %.1f allocs/op, want 0", allocs)
	}
}
