package cache

import (
	"math"
	"sync"
)

// DefaultCapacity is the entry cap used when New is given a non-positive
// capacity.
const DefaultCapacity = 4096

// maxBucketEntries bounds the per-bucket neighbour index so a Nearest scan
// is O(bucket cap) regardless of store capacity; when a bucket overflows,
// its oldest-inserted member is evicted from the whole store.
const maxBucketEntries = 128

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Hits and Misses count exact Get outcomes; NearestHits counts Nearest
	// calls that returned a neighbour.
	Hits, Misses, NearestHits uint64
	// Puts counts insertions, Evictions LRU/bucket-overflow removals.
	Puts, Evictions uint64
}

// entry is one cached solve. Entries sit on the global LRU list (prev/next)
// and in their parameter bucket's slice.
type entry struct {
	key    Key
	bucket Key
	coords [maxCoords]float64
	nc     int
	u      []float64
	meta   any
	// LRU list links: prev is toward most-recent, next toward oldest.
	prev, next *entry
	// seq is the insertion order within the bucket (for overflow eviction).
	seq uint64
}

// maxCoords bounds the continuation-parameter dimensionality.
const maxCoords = 4

// Store is a bounded content-addressed result store with LRU eviction, a
// quantised-bucket neighbour index, and singleflight deduplication of
// identical in-flight solves. All methods are safe for concurrent use; Get
// and Nearest are allocation-free.
type Store struct {
	mu       sync.Mutex
	capacity int
	entries  map[Key]*entry
	buckets  map[Key][]*entry
	flights  map[Key]*Flight
	// head is most recently used, tail least.
	head, tail *entry
	seq        uint64
	stats      Stats
}

// New returns a store holding at most capacity entries (DefaultCapacity
// when capacity <= 0).
func New(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{
		capacity: capacity,
		entries:  map[Key]*entry{},
		buckets:  map[Key][]*entry{},
		flights:  map[Key]*Flight{},
	}
}

// Len reports the current entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Get copies the exact hit's solution into dst and returns the meta value
// stored with it. A missing key — or a stored solution whose length does
// not match dst — is a miss. A hit refreshes the entry's LRU position.
//
//pdevet:noalloc
func (s *Store) Get(key Key, dst []float64) (meta any, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil || len(e.u) != len(dst) {
		s.stats.Misses++
		return nil, false
	}
	copy(dst, e.u)
	s.touch(e)
	s.stats.Hits++
	return e.meta, true
}

// Nearest finds the bucket member whose coordinates are closest to coords
// in Euclidean distance, within maxDist. On success the member's solution
// is copied into dst (members with mismatched solution length or
// coordinate count are skipped) and its meta value returned. The neighbour
// search intentionally includes exact matches; callers that want
// continuation-only behaviour should Get first.
//
//pdevet:noalloc
func (s *Store) Nearest(bucket Key, coords []float64, maxDist float64, dst []float64) (dist float64, meta any, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *entry
	bestD2 := maxDist * maxDist
	for _, e := range s.buckets[bucket] {
		if e.nc != len(coords) || len(e.u) != len(dst) {
			continue
		}
		d2 := 0.0
		for i, c := range coords {
			d := e.coords[i] - c
			d2 += d * d
		}
		if d2 <= bestD2 {
			best, bestD2 = e, d2
		}
	}
	if best == nil {
		return 0, nil, false
	}
	copy(dst, best.u)
	s.touch(best)
	s.stats.NearestHits++
	return math.Sqrt(bestD2), best.meta, true
}

// Put inserts (or refreshes) an entry: key is the exact content address,
// bucket the quantised parameter-bucket address, coords the continuation
// coordinates the neighbour search measures distance over (at most
// maxCoords values are kept), u the solution vector (copied), and meta an
// opaque caller value returned by Get/Nearest. Put is the cold path and
// may allocate.
func (s *Store) Put(key, bucket Key, coords, u []float64, meta any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.entries[key]; e != nil {
		// Refresh in place; the identity (and thus bucket/coords) is fixed
		// by the key, only the payload could differ.
		if len(e.u) == len(u) {
			copy(e.u, u)
		} else {
			e.u = append([]float64(nil), u...)
		}
		e.meta = meta
		s.touch(e)
		return
	}
	e := &entry{key: key, bucket: bucket, meta: meta, seq: s.seq}
	s.seq++
	e.u = append([]float64(nil), u...)
	e.nc = copy(e.coords[:], coords)
	s.entries[key] = e
	s.pushFront(e)
	s.buckets[bucket] = append(s.buckets[bucket], e)
	s.stats.Puts++
	if len(s.buckets[bucket]) > maxBucketEntries {
		s.evict(s.oldestInBucket(bucket))
	}
	for len(s.entries) > s.capacity {
		s.evict(s.tail)
	}
}

// Join, Done and Wait live in singleflight.go.

// touch moves e to the LRU front.
//
//pdevet:noalloc
func (s *Store) touch(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

//pdevet:noalloc
func (s *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

//pdevet:noalloc
func (s *Store) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// oldestInBucket returns the bucket member with the smallest insertion
// sequence.
func (s *Store) oldestInBucket(bucket Key) *entry {
	var oldest *entry
	for _, e := range s.buckets[bucket] {
		if oldest == nil || e.seq < oldest.seq {
			oldest = e
		}
	}
	return oldest
}

// evict removes e from the map, the LRU list, and its bucket.
func (s *Store) evict(e *entry) {
	if e == nil {
		return
	}
	delete(s.entries, e.key)
	s.unlink(e)
	bs := s.buckets[e.bucket]
	for i, b := range bs {
		if b == e {
			bs[i] = bs[len(bs)-1]
			bs = bs[:len(bs)-1]
			break
		}
	}
	if len(bs) == 0 {
		delete(s.buckets, e.bucket)
	} else {
		s.buckets[e.bucket] = bs
	}
	s.stats.Evictions++
}
