package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix forbids mixing sync/atomic access with plain access on one
// variable. A field updated through atomic.AddUint64(&x.n, 1) in one place
// and read as a bare x.n in another is a data race the memory model gives
// no meaning to — and one the -race detector only catches when both sides
// happen to be scheduled. The typed atomics (atomic.Uint64 and friends,
// which the metrics plane uses) are immune by construction because the
// plain value is unreachable; this rule polices the old-style pattern,
// where the compiler cannot.
//
// Scope is the package: every call to a sync/atomic function whose address
// argument resolves to a variable (struct field or package-level var)
// marks that variable atomic; any other plain mention of it is reported.
// Intentional single-threaded phases (init before goroutines start) are
// annotated `//pdevet:allow atomicmix <why no concurrent access exists>`.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a variable accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(p *Pass) {
	// Pass 1: collect variables used as sync/atomic address arguments, and
	// the exact selector/ident nodes inside those calls (to exempt them).
	atomicVars := map[*types.Var]token.Pos{} // var -> first atomic use
	inAtomic := map[token.Pos]bool{}         // positions of &x arguments
	p.forEachNode(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := p.pkgSelector(call.Fun, "sync/atomic"); !ok {
			return true
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			v := p.addressedVar(un.X)
			if v == nil {
				continue
			}
			if _, seen := atomicVars[v]; !seen {
				atomicVars[v] = call.Pos()
			}
			inAtomic[un.X.Pos()] = true
		}
		return true
	})
	if len(atomicVars) == 0 {
		return
	}
	// Pass 2: report plain mentions of those variables outside atomic calls.
	p.forEachNode(func(n ast.Node) bool {
		var v *types.Var
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if s := p.Info.Selections[n]; s != nil {
				v, _ = s.Obj().(*types.Var)
			}
			if v == nil {
				v, _ = p.Info.Uses[n.Sel].(*types.Var)
			}
			if v != nil && !inAtomic[n.Pos()] {
				if first, ok := atomicVars[v]; ok {
					p.Reportf(n.Pos(), "%s is accessed via sync/atomic (%s) but read/written plainly here; mixed access is a data race", v.Name(), p.Fset.Position(first))
				}
			}
			return false // n.Sel would double-report through the Ident case
		case *ast.Ident:
			v, _ = p.Info.Uses[n].(*types.Var)
			if v != nil && !inAtomic[n.Pos()] {
				if first, ok := atomicVars[v]; ok {
					p.Reportf(n.Pos(), "%s is accessed via sync/atomic (%s) but read/written plainly here; mixed access is a data race", v.Name(), p.Fset.Position(first))
				}
			}
		}
		return true
	})
}

// addressedVar resolves the operand of a unary & inside an atomic call to
// the variable it addresses: a struct field selection or a plain variable.
// Index expressions (&xs[i]) resolve to the slice/array variable itself —
// an element accessed atomically marks the whole collection.
func (p *Pass) addressedVar(e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if s := p.Info.Selections[e]; s != nil {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
			return nil
		}
		v, _ := p.Info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.Ident:
		v, _ := p.Info.Uses[e].(*types.Var)
		return v
	case *ast.IndexExpr:
		return p.addressedVar(e.X)
	case *ast.ParenExpr:
		return p.addressedVar(e.X)
	}
	return nil
}
