package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange keeps Go's randomized map iteration order out of every output
// that is contractually deterministic: the Prometheus text exposition
// (scrape diffs and the smoke scripts grep exact lines), cache key
// construction (a content address built in map order would hash the same
// request differently per process), response bodies (exact-repeat requests
// promise byte-identical replays), and floating-point accumulation (sum
// order changes the last bits, which the cross-procs checksums in
// BENCH_core.json would catch only at runtime).
//
// The rule flags `range` over a map when the loop body feeds an
// order-sensitive sink:
//
//   - writes: fmt.Fprint*/Print* calls, any Write/WriteString/WriteByte/
//     WriteRune/Sum method (io.Writer, strings.Builder, hash.Hash);
//   - string or floating-point accumulation (+= and friends) into a
//     variable declared outside the loop;
//   - appends into an outside slice, unless that slice is passed to a
//     sort.* / slices.Sort* call later in the same function — the
//     collect-keys-then-sort idiom is the sanctioned fix and is recognised
//     as such.
//
// Order-insensitive exceptions (commutative integer counts over a
// snapshot, say) are annotated `//pdevet:allow maprange <why order cannot
// show>`.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "no map iteration feeding serialized output, keys, or float accumulation without sorting",
	Run:  runMapRange,
}

// orderSinkMethods are method names whose call inside a map-range loop
// serializes loop-order into bytes.
var orderSinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Sum":         true,
	"Encode":      true,
}

func runMapRange(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := p.Info.TypeOf(rs.X); t == nil {
					return true
				} else if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if sink := p.mapRangeSink(fn.Body, rs); sink != "" {
					p.Reportf(rs.Pos(), "map iteration order feeds %s; Go randomizes it per run — sort the keys first", sink)
				}
				return true
			})
		}
	}
}

// mapRangeSink classifies the loop body's first order-sensitive sink,
// returning "" for clean loops.
func (p *Pass) mapRangeSink(fnBody *ast.BlockStmt, rs *ast.RangeStmt) string {
	sink := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := p.pkgSelector(n.Fun, "fmt"); ok && name != "Sprintf" && name != "Errorf" {
				sink = "a fmt." + name + " call"
				return false
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && orderSinkMethods[sel.Sel.Name] {
				if s := p.Info.Selections[sel]; s != nil {
					sink = "a ." + sel.Sel.Name + " call"
					return false
				}
			}
			// Appends into an outside slice: the collect idiom. Clean only
			// when the collected slice is sorted later in the function.
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(n.Args) > 0 {
					if dst := p.rootVar(n.Args[0]); dst != nil && !p.sortedAfter(fnBody, rs.End(), dst) {
						sink = "an unsorted key/value collection (append without a later sort)"
						return false
					}
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(n.Lhs) == 1 {
					t := p.Info.TypeOf(n.Lhs[0])
					switch {
					case isFloat(t):
						sink = "floating-point accumulation (rounding is order-dependent)"
						return false
					case isString(t) && n.Tok == token.ADD_ASSIGN:
						sink = "string concatenation"
						return false
					}
				}
			}
		}
		return true
	})
	return sink
}

// rootVar resolves an expression to its base variable.
func (p *Pass) rootVar(e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		v, _ := p.Info.Uses[e].(*types.Var)
		if v == nil {
			v, _ = p.Info.Defs[e].(*types.Var)
		}
		return v
	case *ast.SelectorExpr:
		if s := p.Info.Selections[e]; s != nil {
			v, _ := s.Obj().(*types.Var)
			return v
		}
		v, _ := p.Info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.IndexExpr:
		return p.rootVar(e.X)
	case *ast.ParenExpr:
		return p.rootVar(e.X)
	}
	return nil
}

// sortedAfter reports whether v is passed to a sort.*/slices.Sort* call (or
// a sort.Slice closure over it) positioned after pos in the function body.
func (p *Pass) sortedAfter(fnBody *ast.BlockStmt, pos token.Pos, v *types.Var) bool {
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		_, isSort := p.pkgSelector(call.Fun, "sort")
		if !isSort {
			_, isSort = p.pkgSelector(call.Fun, "slices")
		}
		if !isSort || len(call.Args) == 0 {
			return true
		}
		// Any sort-package call whose first argument mentions v counts:
		// sort.Strings(keys), sort.Slice(rows, …), slices.Sort(keys).
		mentions := false
		ast.Inspect(call.Args[0], func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && p.Info.Uses[id] == v {
				mentions = true
			}
			return !mentions
		})
		if mentions {
			sorted = true
		}
		return true
	})
	return sorted
}

// isString reports string-typed (or untyped string) expressions.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
