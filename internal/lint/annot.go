package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation grammar. Two directives, written as ordinary line comments with
// no space after `//` (the Go convention for machine directives):
//
//	//pdevet:noalloc
//	    In a function's doc comment: the function body must stay free of
//	    allocating constructs (see the noalloc analyzer).
//
//	//pdevet:allow <rule> [reason]
//	    Suppresses findings of <rule>. Scope follows placement:
//	      - trailing on a line, or alone on the line directly above a
//	        statement: suppresses that line (and the next);
//	      - in a function's doc comment: suppresses the whole function;
//	      - before the package clause: suppresses the whole file.
//	    The free-text reason is encouraged — it is the written justification
//	    reviewers see.

const (
	directiveNoalloc = "//pdevet:noalloc"
	directiveAllow   = "//pdevet:allow"
)

// parseAllow extracts the rule name of an allow directive, or "" when the
// comment is not one.
func parseAllow(text string) string {
	if !strings.HasPrefix(text, directiveAllow) {
		return ""
	}
	rest := strings.TrimPrefix(text, directiveAllow)
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return ""
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

// hasNoallocDirective reports whether the function declaration carries
// //pdevet:noalloc in its doc comment.
func hasNoallocDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directiveNoalloc {
			return true
		}
	}
	return false
}

// allowKey identifies a line-scoped suppression.
type allowKey struct {
	file string
	line int
	rule string
}

// allowAnnot is one //pdevet:allow directive in source, tracked so the
// driver can report suppressions that no longer suppress anything.
type allowAnnot struct {
	file string
	line int // the directive's own line
	rule string
	used bool
}

// span is a position range of a function-scoped suppression.
type span struct {
	file       string
	start, end int
	rule       string
	annot      *allowAnnot
}

// allowSet is the suppression index of one package.
type allowSet struct {
	lines  map[allowKey]*allowAnnot
	files  map[string]map[string]*allowAnnot // file -> rule -> annotation
	funcs  []span
	annots []*allowAnnot // every directive, in collection order
}

// allowed reports whether d is suppressed by an annotation, marking the
// matching annotation used.
func (s *allowSet) allowed(d Diagnostic) bool {
	if a := s.files[d.Pos.Filename][d.Rule]; a != nil {
		a.used = true
		return true
	}
	if a := s.lines[allowKey{d.Pos.Filename, d.Pos.Line, d.Rule}]; a != nil {
		a.used = true
		return true
	}
	for _, sp := range s.funcs {
		if sp.rule == d.Rule && sp.file == d.Pos.Filename && d.Pos.Line >= sp.start && d.Pos.Line <= sp.end {
			sp.annot.used = true
			return true
		}
	}
	return false
}

// unused returns a diagnostic (rule "unusedallow") for every directive that
// suppressed nothing, in source order. Only meaningful after the FULL rule
// set has run: under a -rule filter, other rules' allows are trivially
// unused and must not be reported.
func (s *allowSet) unused() []Diagnostic {
	var out []Diagnostic
	for _, a := range s.annots {
		if a.used {
			continue
		}
		out = append(out, Diagnostic{
			Pos:  token.Position{Filename: a.file, Line: a.line, Column: 1},
			Rule: "unusedallow",
			Msg:  "//pdevet:allow " + a.rule + " suppresses nothing; delete the stale annotation",
		})
	}
	return out
}

// collectAllows indexes every //pdevet:allow directive of the package.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	s := &allowSet{
		lines: map[allowKey]*allowAnnot{},
		files: map[string]map[string]*allowAnnot{},
	}
	for _, f := range files {
		pkgLine := fset.Position(f.Package).Line
		fname := fset.Position(f.Package).Filename
		// Function-scoped directives live in doc comments; index those
		// comment nodes first so the comment walk below can skip them.
		inDoc := map[*ast.Comment]bool{}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				rule := parseAllow(strings.TrimSpace(c.Text))
				if rule == "" {
					continue
				}
				inDoc[c] = true
				a := &allowAnnot{file: fname, line: fset.Position(c.Pos()).Line, rule: rule}
				s.annots = append(s.annots, a)
				s.funcs = append(s.funcs, span{
					file:  fname,
					start: fset.Position(fn.Pos()).Line,
					end:   fset.Position(fn.End()).Line,
					rule:  rule,
					annot: a,
				})
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if inDoc[c] {
					continue
				}
				rule := parseAllow(strings.TrimSpace(c.Text))
				if rule == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				a := &allowAnnot{file: fname, line: pos.Line, rule: rule}
				s.annots = append(s.annots, a)
				if pos.Line < pkgLine {
					// File-scoped: directive above the package clause.
					m := s.files[fname]
					if m == nil {
						m = map[string]*allowAnnot{}
						s.files[fname] = m
					}
					m[rule] = a
					continue
				}
				// Line-scoped: the directive's own line and the next, so
				// both trailing comments and a comment line directly above
				// the offending statement work.
				s.lines[allowKey{fname, pos.Line, rule}] = a
				s.lines[allowKey{fname, pos.Line + 1, rule}] = a
			}
		}
	}
	return s
}
