package lint

import (
	"go/ast"
	"go/types"
)

// CtxCheck enforces the standard context discipline that PR 1 threaded
// through the pipeline: context.Context travels as the first parameter of a
// call chain and is never parked in a struct. A stored context outlives the
// call it belonged to, so cancellation and deadlines stop corresponding to
// the operation in flight — exactly the bug class the exp.Config.Ctx field
// used to invite before it was refactored away.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "context.Context is a first parameter, never a struct field",
	Run:  runCtxCheck,
}

func runCtxCheck(p *Pass) {
	p.forEachNode(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, field := range n.Fields.List {
				if p.isContextType(field.Type) {
					p.Reportf(field.Pos(), "context.Context stored in a struct field outlives its call; pass ctx as the first parameter instead")
				}
			}
		case *ast.FuncType:
			p.checkCtxParams(n)
		}
		return true
	})
}

// checkCtxParams reports context parameters that are not in first position.
func (p *Pass) checkCtxParams(ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0 // parameter index, counting each name in a grouped field
	for _, field := range ft.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1 // unnamed parameter
		}
		if p.isContextType(field.Type) && pos != 0 {
			p.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		pos += width
	}
}

// isContextType reports whether e denotes context.Context.
func (p *Pass) isContextType(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
