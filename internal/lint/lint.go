// Package lint is the repo's custom static-analysis pass (the `pdevet`
// tool): a pure-stdlib driver (go/ast, go/parser, go/token, go/types — no
// golang.org/x/tools dependency) plus the project-specific analyzers that
// turn this repository's numerical and hot-path conventions into
// machine-checked rules. The evaluation protocol depends on invariants that
// dynamic checks cannot fully guard — reproducible noise injection, a
// simulated-time model that wall-clock reads would silently invalidate, and
// a zero-allocation steady stepping path — so each convention is a named
// analyzer:
//
//	noalloc     functions annotated //pdevet:noalloc stay free of
//	            allocating constructs (make/new/append/closures/fmt/&lit)
//	seededrand  randomness flows through an injected *rand.Rand, never the
//	            global math/rand source
//	walltime    wall-clock reads (time.Now/Since/Until) stay inside the
//	            profiling package; simulated time uses internal/perfmodel
//	floateq     no ==/!= on floating-point operands
//	ctxcheck    context.Context is a first parameter, never a struct field
//	errdrop     no `_ = err` swallows; fmt.Errorf wraps errors with %w
//
// The concurrency/determinism suite extends the set to the runtime
// contracts of the parallel solver and the serving stack — drain-complete
// shutdown, byte-identical cache replays, and bit-identical solves across
// worker counts:
//
//	lockorder   mutex acquisition order is globally consistent per package;
//	            cycles and nested re-acquisition are reported
//	goroutine   every `go` statement reaches a ctx, WaitGroup, or channel
//	            lifecycle, so drain/join can observe it
//	atomicmix   a variable touched via sync/atomic is never read or written
//	            plainly elsewhere
//	maprange    no map iteration feeds serialized output, key construction,
//	            or float/string accumulation without sorting first
//	detred      no float accumulation over procs-dependent ranges; cross-
//	            chunk sums use the fixed-block reductions (la.ParDot et al)
//
// Findings are suppressed with annotation comments (see annot.go):
// `//pdevet:allow <rule> [reason]` on the offending line (or the line
// above), in a function's doc comment, or before the package clause for
// file scope. The driver reports allow annotations that no longer suppress
// anything, so suppressions cannot outlive the code they excused.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named rule. Run inspects a type-checked package and
// reports findings through the Pass.
type Analyzer struct {
	// Name is the rule identifier used in output and in
	// //pdevet:allow <name> annotations.
	Name string
	// Doc is a one-line description of the invariant.
	Doc string
	// Run executes the rule over one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test syntax trees, comments attached.
	Files []*ast.File
	// Pkg and Info are the go/types results for the package.
	Pkg  *types.Package
	Info *types.Info
	// Path is the package import path (module-qualified).
	Path string

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:  p.Fset.Position(pos),
		Rule: p.Analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding of one rule.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Analyzers returns the full rule set in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoAlloc,
		SeededRand,
		WallTime,
		FloatEq,
		CtxCheck,
		ErrDrop,
		LockOrder,
		Goroutine,
		AtomicMix,
		MapRange,
		DetRed,
	}
}

// AnalyzerByName resolves a rule name, for -rule selection in the CLI.
func AnalyzerByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Result is the outcome of analyzing one package.
type Result struct {
	// Diags are the findings that survived //pdevet:allow suppression,
	// sorted by position.
	Diags []Diagnostic
	// Unused are "unusedallow" diagnostics for directives that suppressed
	// nothing. Populated only when the full rule set ran (under a -rule
	// filter, other rules' allows would be trivially unused).
	Unused []Diagnostic
}

// AnalyzePackage executes the analyzers over one loaded package, applies the
// package's //pdevet:allow annotations, and — when the analyzer set is the
// complete one — reports stale annotations that suppressed nothing.
func AnalyzePackage(pkg *Package, analyzers []*Analyzer) Result {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Path:     pkg.Path,
			diags:    &diags,
		}
		a.Run(pass)
	}
	allows := collectAllows(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !allows.allowed(d) {
			kept = append(kept, d)
		}
	}
	sortDiags(kept)
	res := Result{Diags: kept}
	if len(analyzers) == len(Analyzers()) {
		res.Unused = allows.unused()
		sortDiags(res.Unused)
	}
	return res
}

// RunPackage executes the analyzers over one loaded package and returns the
// findings that survive the package's //pdevet:allow annotations, sorted by
// position.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return AnalyzePackage(pkg, analyzers).Diags
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return ds[i].Rule < ds[j].Rule
	})
}

// forEachNode walks every file of the pass with fn; returning false from fn
// prunes the subtree.
func (p *Pass) forEachNode(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// isPkgCall reports whether e is a selector on the import of pkgPath
// (e.g. rand.Intn with pkgPath "math/rand"), returning the selected name.
func (p *Pass) pkgSelector(e ast.Expr, pkgPath string) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}
