package lint

import (
	"go/ast"
)

// SeededRand keeps every random draw reproducible. The evaluation protocol
// (EXPERIMENTS.md) and the analog mismatch model both promise bit-identical
// reruns for a given -seed; one call to the global math/rand source breaks
// that silently, because the global generator is shared, lockstepped across
// goroutines, and auto-seeded since Go 1.20. Noise must come from an
// injected *rand.Rand (constructed with rand.New(rand.NewSource(seed))), so
// the constructors New/NewSource/NewZipf are the only permitted package-
// level calls. Test files are outside the rule (the loader never parses
// them): tests may shuffle however they like.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "no global math/rand top-level functions; inject a seeded *rand.Rand",
	Run:  runSeededRand,
}

// seededRandOK are the math/rand package-level functions that do not touch
// the global source.
var seededRandOK = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runSeededRand(p *Pass) {
	p.forEachNode(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, path := range []string{"math/rand", "math/rand/v2"} {
			if name, ok := p.pkgSelector(call.Fun, path); ok && !seededRandOK[name] {
				p.Reportf(call.Pos(), "global rand.%s uses the shared auto-seeded source; draw from an injected *rand.Rand", name)
			}
		}
		return true
	})
}
