package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// The fixtures under testdata/src/<rule>/ encode expectations in-line:
// every line carrying a trailing `// want` marker must produce a finding of
// the rule under test, every other line must stay clean, and every fixture
// contains at least one //pdevet:allow annotation whose suppression the
// test verifies by comparing raw (unfiltered) and surviving finding counts.

func TestNoAllocFixture(t *testing.T)    { testFixture(t, "noalloc") }
func TestSeededRandFixture(t *testing.T) { testFixture(t, "seededrand") }
func TestWallTimeFixture(t *testing.T)   { testFixture(t, "walltime") }
func TestFloatEqFixture(t *testing.T)    { testFixture(t, "floateq") }
func TestCtxCheckFixture(t *testing.T)   { testFixture(t, "ctxcheck") }
func TestErrDropFixture(t *testing.T)    { testFixture(t, "errdrop") }

func testFixture(t *testing.T, rule string) {
	t.Helper()
	a, ok := AnalyzerByName(rule)
	if !ok {
		t.Fatalf("unknown rule %q", rule)
	}
	dir := filepath.Join("testdata", "src", rule)
	want, annotations := scanFixture(t, dir)
	if len(want) == 0 {
		t.Fatalf("%s: fixture has no `// want` markers", dir)
	}
	if annotations == 0 {
		t.Fatalf("%s: fixture has no //pdevet:allow annotation", dir)
	}

	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	kept := RunPackage(pkg, []*Analyzer{a})
	if len(kept) == 0 {
		t.Fatalf("%s: fixture produced no findings", rule)
	}
	got := map[string]bool{}
	for _, d := range kept {
		key := filepath.Base(d.Pos.Filename) + ":" + strconv.Itoa(d.Pos.Line)
		if got[key] {
			continue // several findings on one marked line are fine
		}
		got[key] = true
		if !want[key] {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for key := range want {
		if !got[key] {
			t.Errorf("%s: line marked `// want` but no %s finding reported", key, rule)
		}
	}

	// The allow annotations must be doing real work: running the analyzer
	// without the annotation filter has to surface strictly more findings.
	var raw []Diagnostic
	a.Run(&Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Path:     pkg.Path,
		diags:    &raw,
	})
	if len(raw) <= len(kept) {
		t.Errorf("//pdevet:allow suppressed nothing: %d raw finding(s), %d after filtering", len(raw), len(kept))
	}
}

// scanFixture reads the fixture's Go files and returns the set of
// "file.go:line" keys carrying a trailing `// want` marker, plus the number
// of //pdevet:allow annotations present.
func scanFixture(t *testing.T, dir string) (map[string]bool, int) {
	t.Helper()
	names, err := goFileNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	annotations := 0
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			if strings.Contains(text, "// want") {
				want[name+":"+strconv.Itoa(line)] = true
			}
			if strings.Contains(text, "//pdevet:allow") {
				annotations++
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return want, annotations
}
