package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder guards the serving stack's deadlock freedom structurally. The
// concurrent layers added in PRs 5–6 (internal/par pool, internal/cache
// store + singleflight, serve admission/drain) each own mutexes, and the
// only discipline that keeps them composable is a consistent acquisition
// order: if one code path locks A then B, no other path may lock B then A.
// The rule builds the package's mutex-acquisition graph — nodes are
// sync.Mutex/sync.RWMutex variables (struct fields identify all their
// instances), edges mean "acquired while holding" — including one level of
// interprocedural closure over same-package calls, and reports:
//
//   - self-edges: a mutex acquired while already held (sync mutexes are
//     non-reentrant, so this is a guaranteed self-deadlock);
//   - edges on a cycle: two paths acquire the same pair of mutexes in
//     opposite orders, the classic ABBA deadlock.
//
// The simulation is a linear source-order approximation (branches are
// walked sequentially, deferred unlocks hold to function end), which is
// exactly right for the straight-line lock/unlock bodies this repo writes;
// genuinely conditional hand-over-hand locking earns an annotation:
// `//pdevet:allow lockorder <why the order is safe>`.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisition order must be consistent package-wide (no cycles, no recursive locks)",
	Run:  runLockOrder,
}

// lockEdge is one "to acquired while holding from" observation.
type lockEdge struct {
	from, to *types.Var
	pos      token.Pos
	// via is the call chain note for interprocedural edges ("" for direct).
	via string
}

// lockFunc is the per-function summary of the first pass.
type lockFunc struct {
	obj *types.Func
	// acquires are the mutexes this function locks directly.
	acquires map[*types.Var]bool
	// calls are same-package call sites with a non-empty held set.
	calls []lockCall
	// bareCalls are same-package callees invoked with nothing held; they
	// matter only for the transitive acquire-set closure.
	bareCalls []*types.Func
}

type lockCall struct {
	callee *types.Func
	held   []*types.Var
	pos    token.Pos
}

func runLockOrder(p *Pass) {
	lo := &lockOrderPass{
		p:     p,
		names: map[*types.Var]string{},
		funcs: map[*types.Func]*lockFunc{},
	}
	// Pass 1: per-function held-set simulation → direct edges + summaries.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			lo.walkFunc(fn)
		}
	}
	// Pass 2: transitive acquire sets over the same-package call graph.
	closure := lo.transitiveAcquires()
	// Pass 3: interprocedural edges — a call made while holding H acquires
	// everything the callee (transitively) locks. Iteration follows source
	// order (lo.order, plus position-sorted acquire sets), not map order:
	// edge order tie-breaks the report, which must be byte-stable per run.
	for _, lf := range lo.order {
		for _, c := range lf.calls {
			for _, m := range sortedVars(closure[c.callee]) {
				for _, h := range c.held {
					lo.edges = append(lo.edges, lockEdge{
						from: h, to: m, pos: c.pos,
						via: c.callee.Name(),
					})
				}
			}
		}
	}
	lo.report()
}

// sortedVars flattens a mutex set into declaration-position order.
func sortedVars(set map[*types.Var]bool) []*types.Var {
	out := make([]*types.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

type lockOrderPass struct {
	p     *Pass
	names map[*types.Var]string
	funcs map[*types.Func]*lockFunc
	order []*lockFunc // source order, for deterministic edge generation
	edges []lockEdge
}

// walkFunc simulates fn's body in source order, recording acquisition
// edges, the function's acquire summary, and same-package call sites.
func (lo *lockOrderPass) walkFunc(fn *ast.FuncDecl) {
	obj, _ := lo.p.Info.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return
	}
	lf := &lockFunc{obj: obj, acquires: map[*types.Var]bool{}}
	lo.funcs[obj] = lf
	lo.order = append(lo.order, lf)
	var held []*types.Var
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Deferred unlocks release at function end; for the linear
			// simulation the mutex simply stays held — which is the truth
			// for every statement that follows. Deferred locks (rare) are
			// treated as immediate.
			if v, op, ok := lo.mutexCall(n.Call); ok && (op == "Lock" || op == "RLock") {
				held = lo.acquire(lf, held, v, n.Call.Pos())
			}
			return false
		case *ast.CallExpr:
			if v, op, ok := lo.mutexCall(n); ok {
				switch op {
				case "Lock", "RLock", "TryLock", "TryRLock":
					held = lo.acquire(lf, held, v, n.Pos())
				case "Unlock", "RUnlock":
					held = removeVar(held, v)
				}
				return true
			}
			if callee := lo.samePackageCallee(n); callee != nil {
				if len(held) > 0 {
					lf.calls = append(lf.calls, lockCall{
						callee: callee,
						held:   append([]*types.Var(nil), held...),
						pos:    n.Pos(),
					})
				} else {
					lf.bareCalls = append(lf.bareCalls, callee)
				}
			}
		}
		return true
	})
}

// acquire records edges from every held mutex to v and adds v to the set.
func (lo *lockOrderPass) acquire(lf *lockFunc, held []*types.Var, v *types.Var, pos token.Pos) []*types.Var {
	lf.acquires[v] = true
	for _, h := range held {
		lo.edges = append(lo.edges, lockEdge{from: h, to: v, pos: pos})
	}
	if holdsVar(held, v) {
		// Recursive acquisition: a self-edge, reported as such.
		lo.edges = append(lo.edges, lockEdge{from: v, to: v, pos: pos})
		return held
	}
	return append(held, v)
}

// holdsVar reports whether v is in the held set.
func holdsVar(held []*types.Var, v *types.Var) bool {
	for _, h := range held {
		if h == v {
			return true
		}
	}
	return false
}

// removeVar drops v from the held set (last occurrence, no-op if absent).
func removeVar(held []*types.Var, v *types.Var) []*types.Var {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == v {
			return append(held[:i], held[i+1:]...)
		}
	}
	return held
}

// mutexCall recognises m.Lock()/m.Unlock()/… on a sync.Mutex or
// sync.RWMutex variable and returns the variable and the method name.
func (lo *lockOrderPass) mutexCall(call *ast.CallExpr) (*types.Var, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, "", false
	}
	v := lo.mutexVar(sel.X)
	if v == nil {
		return nil, "", false
	}
	return v, sel.Sel.Name, true
}

// mutexVar resolves an expression to the mutex variable it denotes: a
// struct field (one node per field declaration — all instances share it,
// the standard static approximation) or a plain variable.
func (lo *lockOrderPass) mutexVar(e ast.Expr) *types.Var {
	var v *types.Var
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if s := lo.p.Info.Selections[e]; s != nil {
			v, _ = s.Obj().(*types.Var)
			if v != nil && isMutexType(v.Type()) {
				lo.nameField(v, s)
				return v
			}
			return nil
		}
		// Package-qualified var (pkg.mu) resolves through Uses.
		v, _ = lo.p.Info.Uses[e.Sel].(*types.Var)
	case *ast.Ident:
		v, _ = lo.p.Info.Uses[e].(*types.Var)
	case *ast.ParenExpr:
		return lo.mutexVar(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return lo.mutexVar(e.X)
		}
	}
	if v != nil && isMutexType(v.Type()) {
		if _, ok := lo.names[v]; !ok {
			lo.names[v] = v.Name()
		}
		return v
	}
	return nil
}

// nameField records a readable "Type.field" name for a mutex field.
func (lo *lockOrderPass) nameField(v *types.Var, s *types.Selection) {
	if _, ok := lo.names[v]; ok {
		return
	}
	recv := s.Recv()
	for {
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
			continue
		}
		break
	}
	name := v.Name()
	if named, ok := recv.(*types.Named); ok {
		name = named.Obj().Name() + "." + v.Name()
	}
	lo.names[v] = name
}

// isMutexType reports whether t (possibly behind a pointer) is sync.Mutex
// or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// samePackageCallee resolves a call to a function or method declared in the
// package under analysis.
func (lo *lockOrderPass) samePackageCallee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = lo.p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = lo.p.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != lo.p.Pkg {
		return nil
	}
	return fn
}

// transitiveAcquires closes the per-function acquire sets over the
// same-package call graph by fixpoint iteration.
func (lo *lockOrderPass) transitiveAcquires() map[*types.Func]map[*types.Var]bool {
	closure := map[*types.Func]map[*types.Var]bool{}
	for obj, lf := range lo.funcs {
		set := map[*types.Var]bool{}
		for v := range lf.acquires {
			set[v] = true
		}
		closure[obj] = set
	}
	for changed := true; changed; {
		changed = false
		for obj, lf := range lo.funcs {
			set := closure[obj]
			for _, c := range lf.calls {
				for v := range closure[c.callee] {
					if !set[v] {
						set[v] = true
						changed = true
					}
				}
			}
			// Plain calls with nothing held still propagate acquisitions:
			// walk every call expression again is unnecessary — summaries
			// only need the call graph, which lf.calls under-approximates
			// (calls with an empty held set are not recorded there). The
			// callsAll list fills the gap.
			for _, callee := range lf.callsAll() {
				for v := range closure[callee] {
					if !set[v] {
						set[v] = true
						changed = true
					}
				}
			}
		}
	}
	return closure
}

// callsAll returns every same-package callee of the function, held or not.
// Computed lazily from the recorded calls plus the zero-held calls noted
// during the walk.
func (lf *lockFunc) callsAll() []*types.Func {
	out := make([]*types.Func, 0, len(lf.calls)+len(lf.bareCalls))
	for _, c := range lf.calls {
		out = append(out, c.callee)
	}
	return append(out, lf.bareCalls...)
}

// report finds edges on cycles and reports them deterministically.
func (lo *lockOrderPass) report() {
	if len(lo.edges) == 0 {
		return
	}
	// Adjacency over distinct (from, to) pairs.
	adj := map[*types.Var]map[*types.Var]bool{}
	for _, e := range lo.edges {
		m := adj[e.from]
		if m == nil {
			m = map[*types.Var]bool{}
			adj[e.from] = m
		}
		m[e.to] = true
	}
	reaches := func(from, to *types.Var) bool {
		seen := map[*types.Var]bool{}
		var stack []*types.Var
		stack = append(stack, from)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v == to {
				return true
			}
			if seen[v] {
				continue
			}
			seen[v] = true
			for w := range adj[v] { //pdevet:allow maprange reachability is a boolean fixpoint; DFS visit order cannot change it
				stack = append(stack, w)
			}
		}
		return false
	}
	type key struct {
		from, to *types.Var
		pos      token.Pos
	}
	reported := map[key]bool{}
	bad := lo.edges[:0]
	for _, e := range lo.edges {
		k := key{e.from, e.to, e.pos}
		if reported[k] {
			continue
		}
		if e.from == e.to || reaches(e.to, e.from) {
			reported[k] = true
			bad = append(bad, e)
		}
	}
	sort.Slice(bad, func(i, j int) bool {
		if bad[i].pos != bad[j].pos {
			return bad[i].pos < bad[j].pos
		}
		// Same position (one acquire, several held): order by names so
		// repeated runs emit byte-identical reports.
		ni := lo.names[bad[i].from] + "\x00" + lo.names[bad[i].to]
		nj := lo.names[bad[j].from] + "\x00" + lo.names[bad[j].to]
		return ni < nj
	})
	for _, e := range bad {
		from, to := lo.names[e.from], lo.names[e.to]
		suffix := ""
		if e.via != "" {
			suffix = fmt.Sprintf(" (through call to %s)", e.via)
		}
		if e.from == e.to {
			lo.p.Reportf(e.pos, "mutex %s acquired while already held%s; sync mutexes are not reentrant", to, suffix)
			continue
		}
		lo.p.Reportf(e.pos, "lock order inversion: %s acquired while holding %s%s, but another path acquires %s while holding %s", to, from, suffix, from, to)
	}
}
