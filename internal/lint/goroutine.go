package lint

import (
	"go/ast"
	"go/types"
)

// Goroutine ties every spawned goroutine to a lifecycle. The serving
// stack's drain contract (serve.BeginDrain/Drain) promises that shutdown
// observes every in-flight unit of work, and the -race CI job can only
// prove the absence of races it gets to schedule — a goroutine nothing
// waits for outlives both. Every `go` statement in non-test code must
// therefore be visibly tied to one of the repo's lifecycle mechanisms,
// reachable from the spawned code:
//
//   - a context.Context value (cancellation propagates),
//   - a sync.WaitGroup (Done/Wait pairs the spawn with a join),
//   - a channel operation — send, receive, close, select or range —
//     including a channel-typed parameter (the internal/par worker loop
//     pattern: workers exit when the task channel closes).
//
// The body inspected is the spawned function literal, or the body of a
// same-package named function; a goroutine spawning an out-of-package
// function passes only if an argument carries a ctx or a channel. Fire-
// and-forget goroutines that are genuinely sound (process-lifetime
// daemons) are annotated `//pdevet:allow goroutine <why it cannot leak>`.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "every go statement must reach a ctx, WaitGroup, or channel lifecycle",
	Run:  runGoroutine,
}

func runGoroutine(p *Pass) {
	p.forEachNode(func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if !p.goHasLifecycle(g.Call) {
			p.Reportf(g.Pos(), "goroutine has no lifecycle: spawned code reaches no ctx, WaitGroup, or channel, so no drain or join can observe it")
		}
		return true
	})
}

// goHasLifecycle reports whether the spawned call is tied to a lifecycle.
func (p *Pass) goHasLifecycle(call *ast.CallExpr) bool {
	// Arguments that carry a ctx or a channel tie the goroutine to their
	// owner's lifetime regardless of where the function body lives.
	for _, arg := range call.Args {
		if t := p.Info.TypeOf(arg); t != nil && (isLifecycleType(t) || p.isContextValue(t)) {
			return true
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return p.bodyHasLifecycle(fun.Body)
	default:
		if body := p.samePackageFuncBody(call.Fun); body != nil {
			return p.bodyHasLifecycle(body)
		}
	}
	return false
}

// samePackageFuncBody resolves a call target to the body of a function
// declared in the package under analysis, or nil.
func (p *Pass) samePackageFuncBody(fun ast.Expr) *ast.BlockStmt {
	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != p.Pkg {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && p.Info.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}

// bodyHasLifecycle scans a function body for any lifecycle signal: channel
// operations, WaitGroup method calls, or a mention of a context value.
func (p *Pass) bodyHasLifecycle(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					found = true
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if s := p.Info.Selections[sel]; s != nil && isWaitGroupType(s.Recv()) {
					found = true
				}
			}
		case ast.Expr:
			if t := p.Info.TypeOf(n); t != nil && p.isContextValue(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isLifecycleType reports channel and WaitGroup types.
func isLifecycleType(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return isWaitGroupType(t)
}

// isWaitGroupType reports sync.WaitGroup (possibly behind a pointer).
func isWaitGroupType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isContextValue reports context.Context (the interface itself).
func (p *Pass) isContextValue(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
