package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrDrop catches the two quiet ways this codebase has lost error
// information: assigning an existing error to the blank identifier
// (`_ = err` — the swallow that hid six non-converged solves in the Table 1
// workloads), and re-wrapping an error through fmt.Errorf with %v or %s so
// that errors.Is/As can no longer see la.ErrSingular or
// context.Canceled through the chain. Every fmt.Errorf that receives an
// error operand must thread it through %w. A deliberate swallow — a
// solver that is specified to keep marching on a near-breakdown — carries
// `//pdevet:allow errdrop <justification>`.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "no `_ = err` discards; fmt.Errorf wraps error operands with %w",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	p.forEachNode(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			p.checkBlankErr(n)
		case *ast.CallExpr:
			p.checkErrorfWrap(n)
		}
		return true
	})
}

// checkBlankErr flags `_ = err`-style discards: a blank LHS assigned an
// existing error value (identifier or selector, not a call — `_, err :=`
// patterns and deliberate result drops of functions are a different idiom).
func (p *Pass) checkBlankErr(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		rhs := as.Rhs[i]
		switch rhs.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			continue
		}
		if t := p.Info.TypeOf(rhs); t != nil && isErrorType(t) {
			p.Reportf(as.Pos(), "error discarded with `_ = ...`; propagate it or annotate the justification")
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls whose format has fewer %w verbs
// than error operands.
func (p *Pass) checkErrorfWrap(call *ast.CallExpr) {
	if name, ok := p.pkgSelector(call.Fun, "fmt"); !ok || name != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	wraps := strings.Count(format, "%w")
	errArgs := 0
	for _, arg := range call.Args[1:] {
		if t := p.Info.TypeOf(arg); t != nil && isErrorType(t) {
			errArgs++
		}
	}
	if errArgs > wraps {
		p.Reportf(call.Pos(), "fmt.Errorf receives %d error operand(s) but wraps %d with %%w; errors.Is/As cannot see through %%v", errArgs, wraps)
	}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
