package lint

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline support: a committed ledger of findings the tree is allowed to
// carry while they are being worked off. Entries are deliberately
// line-number-free — `rule<TAB>path<TAB>message` — so unrelated edits that
// shift code do not invalidate them; only fixing (or moving) the finding
// does. The ledger is a multiset: two identical findings in one file need
// two identical entries.
//
// Staleness is the teeth. An entry that matches no current finding means the
// debt was paid (or the code moved) without the ledger shrinking, and the
// driver exits nonzero until the entry is deleted. CI therefore fails both
// when new findings appear (unbaselined) and when the baseline is allowed to
// rot (stale entries) — the file can only ever track reality.

// BaselineEntry is one allowed finding, identified without line numbers.
type BaselineEntry struct {
	Rule string
	// Path is module-root-relative with forward slashes.
	Path string
	Msg  string
}

func (e BaselineEntry) String() string {
	return e.Rule + "\t" + e.Path + "\t" + e.Msg
}

// Baseline is a multiset of allowed findings.
type Baseline struct {
	counts map[BaselineEntry]int
	order  []BaselineEntry // first-seen order, for stable stale reporting
}

// ParseBaseline reads the tab-separated baseline format. Blank lines and
// `#` comments are ignored.
func ParseBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{counts: map[BaselineEntry]int{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.SplitN(text, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline line %d: want rule<TAB>path<TAB>message, got %q", line, text)
		}
		e := BaselineEntry{Rule: parts[0], Path: parts[1], Msg: parts[2]}
		if b.counts[e] == 0 {
			b.order = append(b.order, e)
		}
		b.counts[e]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Len returns the number of entries (counting multiplicity).
func (b *Baseline) Len() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	return n
}

// Filter consumes baseline entries against diags: findings matching an
// unconsumed entry are suppressed. It returns the findings that remain
// (new, unbaselined) and the entries left unconsumed (stale — the finding
// they excused no longer exists).
func (b *Baseline) Filter(diags []Diagnostic, moduleRoot string) (kept []Diagnostic, stale []BaselineEntry) {
	remaining := make(map[BaselineEntry]int, len(b.counts))
	for e, c := range b.counts {
		remaining[e] = c
	}
	for _, d := range diags {
		e := entryFor(d, moduleRoot)
		if remaining[e] > 0 {
			remaining[e]--
			continue
		}
		kept = append(kept, d)
	}
	for _, e := range b.order {
		for i := 0; i < remaining[e]; i++ {
			stale = append(stale, e)
		}
	}
	return kept, stale
}

// FormatBaseline renders diags as baseline file content, sorted, with a
// header explaining the contract.
func FormatBaseline(diags []Diagnostic, moduleRoot string) string {
	var sb strings.Builder
	sb.WriteString("# pdevet baseline: findings the tree is allowed to carry while being\n")
	sb.WriteString("# worked off. Format: rule<TAB>path<TAB>message (no line numbers, so\n")
	sb.WriteString("# unrelated edits don't invalidate entries). pdevet exits nonzero on\n")
	sb.WriteString("# findings not listed here AND on entries matching no finding (stale);\n")
	sb.WriteString("# regenerate with `pdevet -write-baseline` only alongside the fix/allow\n")
	sb.WriteString("# that justifies the change.\n")
	lines := make([]string, 0, len(diags))
	for _, d := range diags {
		lines = append(lines, entryFor(d, moduleRoot).String())
	}
	sort.Strings(lines)
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	return sb.String()
}

// entryFor converts a diagnostic to its line-number-free baseline identity.
func entryFor(d Diagnostic, moduleRoot string) BaselineEntry {
	return BaselineEntry{Rule: d.Rule, Path: RelPath(moduleRoot, d.Pos.Filename), Msg: d.Msg}
}

// RelPath relativizes an absolute diagnostic path against the module root,
// with forward slashes; paths outside the root are kept absolute.
func RelPath(root, path string) string {
	if root == "" {
		return filepath.ToSlash(path)
	}
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
