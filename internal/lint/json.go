package lint

import (
	"encoding/json"
	"io"
)

// jsonDiagnostic is the machine-readable finding shape emitted by -json.
// Paths are module-root-relative so output is stable across checkouts.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// WriteJSON renders diags as a JSON array (always an array, `[]` when
// clean) for machine consumption — CI annotators, editors, dashboards.
func WriteJSON(w io.Writer, diags []Diagnostic, moduleRoot string) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:    RelPath(moduleRoot, d.Pos.Filename),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
