package lint

import (
	"go/ast"
)

// WallTime fences off wall-clock reads. The paper's speed and energy
// numbers are *modeled*, not measured: analog settle time comes from the
// calibrated internal/perfmodel scaling and digital cost from the
// PerfBackend op counts, so results are machine-independent. A time.Now or
// time.Since anywhere in the solve pipeline leaks host wall-clock into the
// simulated-time model and silently turns a reproducible figure into a
// benchmark of the CI machine. The single sanctioned consumer is the
// instrumentation package internal/prof (which measures real kernel-share
// fractions for Table 1 and annotates itself //pdevet:allow walltime).
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "no time.Now/time.Since/time.Until outside internal/prof; simulated time flows through internal/perfmodel",
	Run:  runWallTime,
}

// wallClockFuncs are the package time functions that read the wall clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runWallTime(p *Pass) {
	p.forEachNode(func(n ast.Node) bool {
		// Match any mention (call or function value) so `f := time.Now`
		// cannot smuggle the clock past the rule.
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if name, ok := p.pkgSelector(sel, "time"); ok && wallClockFuncs[name] {
			p.Reportf(n.Pos(), "time.%s reads the wall clock; solver timing must flow through internal/perfmodel (only internal/prof may measure)", name)
		}
		return true
	})
}
