package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. After an analog
// seed, a Newton polish, or a red-black sweep, two mathematically equal
// quantities differ in their last bits; exact comparison then flips
// depending on solver path, optimization level, and FMA contraction, which
// is precisely the nondeterminism the evaluation cannot afford. Compare
// against a tolerance (math.Abs(a-b) <= tol) or, where an exact comparison
// is genuinely meant — sentinel zeros in stencil weight tables, singularity
// checks against a value that was assigned (not computed) — annotate the
// line with `//pdevet:allow floateq <why exactness holds>`. Constant-only
// comparisons are folded at compile time and exempt, as are tests (never
// loaded).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on floating-point operands outside tests",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	p.forEachNode(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xt, yt := p.Info.Types[be.X], p.Info.Types[be.Y]
		if !isFloat(xt.Type) && !isFloat(yt.Type) {
			return true
		}
		if xt.Value != nil && yt.Value != nil {
			return true // constant-folded
		}
		p.Reportf(be.Pos(), "%s on float operands is exact-bit comparison; use a tolerance or annotate why exactness holds", be.Op)
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat:
		return true
	}
	return false
}
