package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces the zero-allocation contract of the stepping hot path.
// PR 1 made the steady Newton step and the hybrid time loop 0 allocs/op,
// and the allocation benchmarks (`make bench`) guard that dynamically; this
// rule guards it structurally. A function annotated `//pdevet:noalloc` may
// not contain the constructs that heap-allocate (or that escape analysis
// routinely fails to keep on the stack):
//
//   - make, new, append (growth reallocates)
//   - function literals (closure environments allocate)
//   - &T{...} composite literals, and slice/map composite literals
//   - calls into package fmt (every verb boxes its operands)
//
// Cold branches inside an annotated function — grow-on-first-use buffer
// sizing, error returns — are justified line by line with
// `//pdevet:allow noalloc <reason>`.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //pdevet:noalloc must not contain allocating constructs",
	Run:  runNoAlloc,
}

func runNoAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasNoallocDirective(fn) {
				continue
			}
			checkNoAllocBody(p, fn)
		}
	}
}

func checkNoAllocBody(p *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						p.Reportf(n.Pos(), "%s is //pdevet:noalloc but calls make", name)
					case "new":
						p.Reportf(n.Pos(), "%s is //pdevet:noalloc but calls new", name)
					case "append":
						p.Reportf(n.Pos(), "%s is //pdevet:noalloc but calls append (growth reallocates)", name)
					}
				}
			}
			if sel, ok := p.pkgSelector(n.Fun, "fmt"); ok {
				p.Reportf(n.Pos(), "%s is //pdevet:noalloc but calls fmt.%s (boxes operands)", name, sel)
			}
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "%s is //pdevet:noalloc but contains a closure", name)
			return false // the literal's body is the closure's problem
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "%s is //pdevet:noalloc but heap-allocates a &composite literal", name)
				}
			}
		case *ast.CompositeLit:
			if t := p.Info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					p.Reportf(n.Pos(), "%s is //pdevet:noalloc but allocates a slice literal", name)
				case *types.Map:
					p.Reportf(n.Pos(), "%s is //pdevet:noalloc but allocates a map literal", name)
				}
			}
		}
		return true
	})
}
