package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // module-qualified import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks repository packages with nothing but the
// standard library: module-local import paths are mapped onto repository
// directories directly, everything else (the standard library) is resolved
// by go/importer's source importer. Analysis covers non-test files only —
// the rules guard production code, and several (seededrand, floateq)
// explicitly exempt tests.
type Loader struct {
	Fset *token.FileSet

	moduleRoot string
	modulePath string
	std        types.ImporterFrom
	pkgs       map[string]*Package // by directory
	loading    map[string]bool     // import-cycle guard, by directory
}

// NewLoader creates a loader rooted at the directory containing go.mod,
// found by walking up from dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleRoot: root,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// ModuleRoot returns the directory containing go.mod, the base against
// which baseline entries and JSON output relativize file paths.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Expand resolves package patterns relative to dir: a trailing /... walks
// the subtree, anything else names a single package directory. Directories
// named testdata, hidden directories, and directories without non-test Go
// files are skipped during walks.
func (l *Loader) Expand(dir string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		if recursive {
			base = strings.TrimSuffix(base, "/")
		}
		if base == "" {
			base = "."
		}
		base = filepath.Join(dir, base)
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			ok, err := hasGoFiles(p)
			if err != nil {
				return err
			}
			if ok {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	names, err := goFileNames(dir)
	return len(names) > 0, err
}

// goFileNames lists the non-test Go files of dir, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Load parses and type-checks the package in dir (non-test files), reusing
// previously loaded results.
func (l *Loader) Load(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[dir]; ok {
		return p, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.check(dir, files)
}

// check type-checks parsed files as the package living in dir.
func (l *Loader) check(dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	path := l.importPath(dir)
	conf := types.Config{
		Importer: &moduleImporter{l: l, fromDir: dir},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[dir] = p
	return p, nil
}

// importPath maps a repository directory to its module-qualified import
// path; directories outside the module keep their base name (fixtures).
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.Base(dir)
	}
	if rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// moduleImporter resolves module-local imports onto repository directories
// and delegates everything else to the stdlib source importer.
type moduleImporter struct {
	l       *Loader
	fromDir string
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, m.fromDir, 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l := m.l
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		p, err := l.Load(filepath.Join(l.moduleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
