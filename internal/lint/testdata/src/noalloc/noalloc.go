// Package noalloc exercises the noalloc analyzer: functions annotated
// //pdevet:noalloc may not contain allocating constructs; unannotated
// functions are never inspected. Marked lines must be flagged.
package noalloc

import "fmt"

type point struct{ x, y float64 }

var scratch []float64

//pdevet:noalloc
func hot(buf []float64) float64 {
	tmp := make([]float64, 4)        // want
	tmp = append(tmp, 1)             // want
	p := new(point)                  // want
	q := &point{x: 1}                // want
	f := func() float64 { return 1 } // want
	fmt.Println(len(buf))            // want
	return p.x + q.x + f() + tmp[0]
}

//pdevet:noalloc
func hotAllowed(n int) []float64 {
	if n > cap(scratch) {
		scratch = make([]float64, n) //pdevet:allow noalloc grow-on-first-use resize
	}
	return scratch[:n]
}

func cold() []int {
	return make([]int, 8) // unannotated function: allocation is fine
}
