// Package errdrop exercises the errdrop analyzer: assigning an existing
// error to the blank identifier is flagged, as is fmt.Errorf formatting an
// error operand without %w.
package errdrop

import (
	"errors"
	"fmt"
)

var errProbe = errors.New("probe")

func swallow() {
	err := errProbe
	_ = err // want
}

func rewrap(err error) error {
	return fmt.Errorf("context lost: %v", err) // want
}

func wrapOK(err error) error {
	return fmt.Errorf("context kept: %w", err)
}

func deliberate() {
	err := errProbe
	_ = err //pdevet:allow errdrop solver is specified to march on non-convergence
}
