// Package atomicmix is the atomicmix fixture: a variable touched through
// sync/atomic must never be read or written plainly.
package atomicmix

import "sync/atomic"

type counter struct {
	n    uint64
	safe atomic.Uint64
}

// inc updates n atomically; this marks the field atomic package-wide.
func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
}

// readPlain races with inc: a plain load of an atomically-written field.
func (c *counter) readPlain() uint64 {
	return c.n // want
}

// writePlain is the same race from the store side.
func (c *counter) writePlain() {
	c.n = 0 // want
}

// readAtomic is the correct counterpart.
func (c *counter) readAtomic() uint64 {
	return atomic.LoadUint64(&c.n)
}

// typed uses the typed atomics; the plain value is unreachable, so the
// rule has nothing to police.
func (c *counter) typed() uint64 {
	c.safe.Add(1)
	return c.safe.Load()
}

var hits uint64

func bump() {
	atomic.AddUint64(&hits, 1)
}

// snapshot reads hits plainly, but only after all writers have joined.
func snapshot() uint64 {
	//pdevet:allow atomicmix read happens in single-threaded teardown after Wait
	return hits
}
