// Package seededrand exercises the seededrand analyzer: top-level
// math/rand functions draw from the shared global source and are flagged;
// constructing an injected seeded generator is the sanctioned idiom.
package seededrand

import "math/rand"

func noise() float64 {
	return rand.Float64() // want
}

func pickIndex(n int) int {
	return rand.Intn(n) // want
}

// seeded shows the sanctioned pattern: constructors are exempt.
func seeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

func legacy() float64 {
	return rand.NormFloat64() //pdevet:allow seededrand fixture demonstrates suppression
}
