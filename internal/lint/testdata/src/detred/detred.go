// Package detred is the detred fixture: float accumulation whose trip
// count derives from the parallelism width (pool.Procs, GOMAXPROCS,
// NumCPU) breaks bit-identity across worker counts; cross-chunk sums
// belong in the fixed-block reductions.
package detred

import (
	"runtime"

	"hybridpde/internal/par"
)

// perWorkerPartials folds one partial per worker: the fold order (and the
// partial count) changes with the pool size.
func perWorkerPartials(pool *par.Pool, partial []float64) float64 {
	sum := 0.0
	for w := 0; w < pool.Procs(); w++ {
		sum += partial[w] // want
	}
	return sum
}

// viaVariable reaches the width through an intermediate variable.
func viaVariable(xs []float64) float64 {
	n := runtime.GOMAXPROCS(0)
	total := 0.0
	for i := 0; i < n; i++ {
		total = total + xs[i] // want
	}
	return total
}

// rangePartials iterates a procs-sized collection.
func rangePartials(pool *par.Pool) float64 {
	partials := make([]float64, pool.Procs())
	s := 0.0
	for _, p := range partials {
		s += p // want
	}
	return s
}

// fixedBlocks is the sanctioned layout: block boundaries depend only on
// the data size, so every pool width folds identically.
func fixedBlocks(xs []float64) float64 {
	const block = 2048
	s := 0.0
	for i := 0; i < len(xs); i += block {
		end := i + block
		if end > len(xs) {
			end = len(xs)
		}
		b := 0.0
		for j := i; j < end; j++ {
			b += xs[j]
		}
		s += b
	}
	return s
}

// intAccounting sums integers over a procs-dependent range: exact, exempt.
func intAccounting() int64 {
	n := runtime.NumCPU()
	var ops int64
	for i := 0; i < n; i++ {
		ops += int64(i)
	}
	return ops
}

// procsRebalance is the autoscaler's Workers×SolveProcs budget math
// (internal/serve.rebalanceProcs): pure integer division over the core
// budget, exact at any pool width, so it is exempt by construction.
func procsRebalance(workers int) int {
	p := runtime.GOMAXPROCS(0) / workers
	if p < 1 {
		p = 1
	}
	return p
}

// allowedFold is a deliberate exception with its justification attached.
func allowedFold(pool *par.Pool, partial []float64) float64 {
	s := 0.0
	for w := 0; w < pool.Procs(); w++ {
		s += partial[w] //pdevet:allow detred partials are zero-padded to a fixed width; fold order is invariant
	}
	return s
}
