// Package lockorder is the lockorder fixture: the ABBA inversion, the
// recursive self-deadlock, an interprocedural inversion through a
// same-package call, and consistently-ordered negatives.
package lockorder

import "sync"

type store struct {
	mu    sync.Mutex
	idx   sync.Mutex
	stats sync.RWMutex
}

// lockAB establishes the order mu -> idx.
func (s *store) lockAB() {
	s.mu.Lock()
	s.idx.Lock() // want
	s.idx.Unlock()
	s.mu.Unlock()
}

// lockBA inverts it: idx -> mu. Both edges sit on the cycle, so both
// acquisition sites are reported.
func (s *store) lockBA() {
	s.idx.Lock()
	s.mu.Lock() // want
	s.mu.Unlock()
	s.idx.Unlock()
}

// double re-acquires a held mutex: guaranteed self-deadlock.
func (s *store) double() {
	s.stats.Lock()
	s.stats.Lock() // want
	s.stats.Unlock()
	s.stats.Unlock()
}

// helper locks mu on its own; harmless in isolation.
func (s *store) helper() {
	s.mu.Lock()
	s.mu.Unlock()
}

// nested acquires mu through helper while holding idx — the idx -> mu edge
// again, this time interprocedural.
func (s *store) nested() {
	s.idx.Lock()
	s.helper() // want
	s.idx.Unlock()
}

// consistent nests stats under mu only; one-directional pairs are clean.
func (s *store) consistent() {
	s.mu.Lock()
	s.stats.Lock()
	s.stats.Unlock()
	s.mu.Unlock()
}

// guardedRead locks and releases via defer; no nesting, clean.
func (s *store) guardedRead() int {
	s.stats.RLock()
	defer s.stats.RUnlock()
	return 0
}

// teardown inverts the order knowingly: it runs single-threaded after the
// pool has drained, so the inversion cannot deadlock.
func (s *store) teardown() {
	s.idx.Lock()
	//pdevet:allow lockorder teardown runs single-threaded after drain; no concurrent mu holder exists
	s.mu.Lock()
	s.mu.Unlock()
	s.idx.Unlock()
}
