// Package floateq exercises the floateq analyzer: ==/!= with a
// floating-point operand is flagged; integer comparison and all-constant
// comparison are not.
package floateq

func equal(a, b float64) bool {
	return a == b // want
}

func notZero(x float32) bool {
	return x != 0 // want
}

func ints(i, j int) bool { return i == j }

func exactSentinel(x float64) bool {
	return x == 0 //pdevet:allow floateq sentinel is zero by assignment, exactness intended
}
