// Package goroutine is the goroutine fixture: spawned code must reach a
// ctx, WaitGroup, or channel lifecycle.
package goroutine

import (
	"context"
	"sync"
)

// leak spawns a closure nothing can observe.
func leak() {
	go func() { // want
		x := 1
		_ = x
	}()
}

// namedLeak spawns a same-package function with no lifecycle inside.
func namedLeak() {
	go spin() // want
}

func spin() {
	for i := 0; i < 10; i++ {
		_ = i
	}
}

// joined pairs the spawn with a WaitGroup.
func joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// cancellable reaches a context.
func cancellable(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// producer sends on a channel the caller owns.
func producer(out chan int) {
	go func() {
		out <- 1
	}()
}

// workerPool passes the task channel as an argument (the internal/par
// pattern): workers exit when the channel closes.
func workerPool(tasks chan func()) {
	go drain(tasks)
}

func drain(tasks chan func()) {
	for t := range tasks {
		t()
	}
}

// controllerLoop is the autoscaler spawn idiom (internal/adapt.Run): the
// goroutine selects on the context and exits when the tick channel closes,
// so both lifecycle paths are observable.
func controllerLoop(ctx context.Context, ticks chan struct{}, onTick func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case _, ok := <-ticks:
				if !ok {
					return
				}
				onTick()
			}
		}
	}()
}

// daemon is a deliberate process-lifetime goroutine; the annotation is the
// written justification.
//
//pdevet:allow goroutine process-lifetime sampler; exits with the process by design
func daemon() {
	go func() {
		for {
			_ = 0
		}
	}()
}
