// Package walltime exercises the walltime analyzer: wall-clock reads
// (time.Now/Since/Until) are flagged wherever they appear, including bare
// method-value references; duration arithmetic and sleeping are fine.
package walltime

import "time"

var clock = time.Now // want

func stamp() time.Time {
	return time.Now() // want
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) //pdevet:allow walltime fixture demonstrates suppression
}

func pause() { time.Sleep(time.Millisecond) }

// tickDriven is the injected-clock controller idiom (internal/adapt): the
// loop consumes a tick channel the caller owns, so the controller itself
// never reads the wall clock and stays clean under this analyzer.
func tickDriven(ticks <-chan time.Time, onTick func()) {
	for range ticks {
		onTick()
	}
}

// countdownTicks is the breaker's open-window idiom (internal/cluster):
// recovery timing is counted in prober sweeps, not wall-clock reads.
func countdownTicks(remaining *int, reopen func()) {
	if *remaining > 0 {
		*remaining--
		if *remaining == 0 {
			reopen()
		}
	}
}
