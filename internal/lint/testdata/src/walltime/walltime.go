// Package walltime exercises the walltime analyzer: wall-clock reads
// (time.Now/Since/Until) are flagged wherever they appear, including bare
// method-value references; duration arithmetic and sleeping are fine.
package walltime

import "time"

var clock = time.Now // want

func stamp() time.Time {
	return time.Now() // want
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) //pdevet:allow walltime fixture demonstrates suppression
}

func pause() { time.Sleep(time.Millisecond) }
