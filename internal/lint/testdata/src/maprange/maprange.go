// Package maprange is the maprange fixture: map iteration order must not
// reach serialized output, key construction, or order-dependent
// accumulation without sorting.
package maprange

import (
	"fmt"
	"sort"
	"strings"
)

// printAll serializes map order straight into output.
func printAll(m map[string]int) {
	for k, v := range m { // want
		fmt.Println(k, v)
	}
}

// buildKey folds map order into a string via a Builder — a cache key built
// this way hashes the same content differently per process.
func buildKey(m map[string]string) string {
	var sb strings.Builder
	for k := range m { // want
		sb.WriteString(k)
	}
	return sb.String()
}

// sumFloats accumulates floats in map order; rounding differs per run.
func sumFloats(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want
		s += v
	}
	return s
}

// collectUnsorted appends keys and returns them unsorted.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want
		keys = append(keys, k)
	}
	return keys
}

// collectSorted is the sanctioned idiom: collect, then sort.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// countEntries is order-insensitive: a commutative integer count.
func countEntries(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// debugDump concatenates in map order, justified by the caller contract.
func debugDump(m map[string]string) string {
	out := ""
	//pdevet:allow maprange debug-only dump; callers never diff or hash this string
	for _, v := range m {
		out += v
	}
	return out
}
