// Package ctxcheck exercises the ctxcheck analyzer: context.Context must
// be a function's first parameter and never a struct field.
package ctxcheck

import "context"

type worker struct {
	ctx context.Context // want
	n   int
}

func badOrder(n int, ctx context.Context) error { // want
	return ctx.Err()
}

func goodOrder(ctx context.Context, n int) error {
	_ = worker{n: n}
	return ctx.Err()
}

// legacy keeps a frozen public signature; the doc-comment annotation
// suppresses the rule for the whole function.
//
//pdevet:allow ctxcheck frozen legacy signature, fixture demonstrates suppression
func legacy(n int, ctx context.Context) error {
	_ = n
	return ctx.Err()
}
