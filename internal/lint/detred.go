package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetRed pins the deterministic-reduction discipline of the parallel hot
// path. The bit-identity contract (DESIGN.md §11, the cross-procs FNV
// checksums in BENCH_core.json) holds because every cross-chunk floating-
// point sum goes through a layout that depends only on the data size —
// la.ParDot/ParNorm2 fold fixed ReduceBlock-sized partials in block order —
// never through per-worker partials, whose count (and thus fold order and
// intermediate rounding) would change with the pool size.
//
// Statically, the failure mode is a reduction loop whose trip count is
// derived from the parallelism: pool.Procs(), runtime.GOMAXPROCS, or
// runtime.NumCPU. The rule taints values flowing from those sources
// through assignments inside each function, then reports any for/range
// loop that is bounded by (or iterates over a collection sized by) a
// tainted value while accumulating floats in its body. Integer accounting
// over per-chunk partials is exact and exempt (band-LU FactorOps sums
// int64); deliberate procs-dependent float folds — none exist today — would
// need `//pdevet:allow detred <why the result is still deterministic>`.
var DetRed = &Analyzer{
	Name: "detred",
	Doc:  "no float accumulation over procs-dependent ranges; use fixed-block reductions (la.ParDot/ParNorm2)",
	Run:  runDetRed,
}

func runDetRed(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDetRed(p, fn)
		}
	}
}

func checkDetRed(p *Pass, fn *ast.FuncDecl) {
	tainted := map[*types.Var]bool{}

	// exprTainted reports whether e mentions a taint source or a tainted
	// variable.
	var exprTainted func(e ast.Expr) bool
	exprTainted = func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if isProcsSource(p, n) {
					found = true
					return false
				}
			case *ast.Ident:
				if v, ok := p.Info.Uses[n].(*types.Var); ok && tainted[v] {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}

	// Forward source-order pass: propagate taint through assignments, then
	// flag tainted-bound loops that accumulate floats.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, _ := p.Info.Defs[id].(*types.Var)
				if v == nil {
					v, _ = p.Info.Uses[id].(*types.Var)
				}
				if v != nil && exprTainted(rhs) {
					tainted[v] = true
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i < len(n.Values) && exprTainted(n.Values[i]) {
					if v, ok := p.Info.Defs[id].(*types.Var); ok {
						tainted[v] = true
					}
				}
			}
		case *ast.ForStmt:
			if n.Cond != nil && exprTainted(n.Cond) {
				if acc := floatAccumulation(p, n.Body); acc.IsValid() {
					p.Reportf(acc, "float accumulation over a procs-dependent loop bound changes fold order with the pool size; reduce via fixed blocks (la.ParDot/ParNorm2)")
				}
			}
		case *ast.RangeStmt:
			if exprTainted(n.X) {
				if acc := floatAccumulation(p, n.Body); acc.IsValid() {
					p.Reportf(acc, "float accumulation over a procs-sized collection changes fold order with the pool size; reduce via fixed blocks (la.ParDot/ParNorm2)")
				}
			}
		}
		return true
	})
}

// floatAccumulation returns the position of the first floating-point
// compound accumulation in body, or token.NoPos.
func floatAccumulation(p *Pass, body *ast.BlockStmt) token.Pos {
	pos := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(as.Lhs) == 1 && isFloat(p.Info.TypeOf(as.Lhs[0])) {
				pos = as.Pos()
			}
		case token.ASSIGN:
			// s = s + x[i] spelled out: lhs float and lhs appears in rhs.
			if len(as.Lhs) == 1 && len(as.Rhs) == 1 && isFloat(p.Info.TypeOf(as.Lhs[0])) {
				lv, _ := as.Lhs[0].(*ast.Ident)
				if lv == nil {
					return true
				}
				obj := p.Info.Uses[lv]
				mentions := false
				ast.Inspect(as.Rhs[0], func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && obj != nil && p.Info.Uses[id] == obj {
						mentions = true
					}
					return !mentions
				})
				if mentions {
					pos = as.Pos()
				}
			}
		}
		return true
	})
	return pos
}

// isProcsSource recognises the parallelism-width sources: a Procs() method
// call on internal/par's Pool, runtime.GOMAXPROCS, and runtime.NumCPU.
func isProcsSource(p *Pass, call *ast.CallExpr) bool {
	if name, ok := p.pkgSelector(call.Fun, "runtime"); ok {
		return name == "GOMAXPROCS" || name == "NumCPU"
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Procs" {
		return false
	}
	s := p.Info.Selections[sel]
	if s == nil {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == "par" && obj.Name() == "Pool"
}
