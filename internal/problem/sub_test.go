package problem_test

import (
	"math"
	"math/rand"
	"testing"

	"hybridpde/internal/pde"
	"hybridpde/internal/problem"
)

func randomBurgers(t *testing.T, n int, seed int64) *pde.Burgers {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b, err := pde.RandomBurgers(n, 1.0, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSubRestrictScatterRoundTripProperty(t *testing.T) {
	// Property: for random tiles of random sizes, scatter(restrict(g)+δ)
	// writes exactly the owned entries, and restricting again reads the
	// perturbed values back verbatim.
	b := randomBurgers(t, 4, 70)
	rng := rand.New(rand.NewSource(71))
	dim := b.Dim()
	for trial := 0; trial < 50; trial++ {
		global := make([]float64, dim)
		for i := range global {
			global[i] = 2*rng.Float64() - 1
		}
		size := 1 + rng.Intn(dim)
		unknowns := rng.Perm(dim)[:size]
		sub := problem.NewSub(b, unknowns, global, nil)

		backup := append([]float64(nil), global...)
		u := make([]float64, size)
		sub.Restrict(u, global)
		for k, g := range unknowns {
			if u[k] != global[g] {
				t.Fatalf("trial %d: restrict read %g at slot %d, want %g", trial, u[k], k, global[g])
			}
			u[k] += 1 + rng.Float64()
		}
		sub.Scatter(u, global)
		got := make([]float64, size)
		sub.Restrict(got, global)
		owned := map[int]bool{}
		for k, g := range unknowns {
			owned[g] = true
			if got[k] != u[k] {
				t.Fatalf("trial %d: round trip lost slot %d", trial, k)
			}
		}
		for g := range global {
			if !owned[g] && global[g] != backup[g] {
				t.Fatalf("trial %d: scatter touched unowned unknown %d", trial, g)
			}
		}
	}
}

func TestSubResidualMatchesFullWithFrozenNeighbours(t *testing.T) {
	// The restricted residual must agree row-for-row with the full-grid
	// residual evaluated at the same global state: the tile's neighbours
	// are frozen at the snapshot, which is exactly the global iterate.
	b := randomBurgers(t, 4, 60)
	global := b.InitialGuess()
	tiles, err := problem.Checkerboard(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fFull := make([]float64, b.Dim())
	if err := b.Eval(global, fFull); err != nil {
		t.Fatal(err)
	}
	for ti, tile := range tiles {
		sub := problem.NewSub(b, tile.Unknowns, global, nil)
		u := make([]float64, sub.Dim())
		sub.Restrict(u, global)
		fSub := make([]float64, sub.Dim())
		if err := sub.Eval(u, fSub); err != nil {
			t.Fatal(err)
		}
		for k, g := range tile.Unknowns {
			if math.Abs(fSub[k]-fFull[g]) > 1e-14 {
				t.Fatalf("tile %d: subproblem residual row %d (%g) differs from full row %d (%g)",
					ti, k, fSub[k], g, fFull[g])
			}
		}
	}
}

func TestSubJacobianMatchesFullSubmatrix(t *testing.T) {
	b := randomBurgers(t, 4, 61)
	global := b.InitialGuess()
	tiles, err := problem.Checkerboard(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	tile := tiles[1]
	sub := problem.NewSub(b, tile.Unknowns, global, nil)
	u := make([]float64, sub.Dim())
	sub.Restrict(u, global)
	jSub, err := sub.JacobianCSR(u)
	if err != nil {
		t.Fatal(err)
	}
	jFull, err := b.JacobianCSR(global)
	if err != nil {
		t.Fatal(err)
	}
	for k, gr := range tile.Unknowns {
		for c, gc := range tile.Unknowns {
			if math.Abs(jSub.At(k, c)-jFull.At(gr, gc)) > 1e-14 {
				t.Fatalf("subproblem Jacobian (%d,%d) differs from full (%d,%d)", k, c, gr, gc)
			}
		}
	}
	if sub.PolynomialDegree() != 2 {
		t.Fatal("subproblem must inherit quadratic degree")
	}
	if sub.MaxField() != b.MaxField() {
		t.Fatal("subproblem must propagate the full problem's field bound")
	}
}

func TestSubResetTracksNewIterate(t *testing.T) {
	b := randomBurgers(t, 4, 62)
	global := b.InitialGuess()
	tiles, err := problem.Checkerboard(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sub := problem.NewSub(b, tiles[0].Unknowns, global, nil)
	moved := append([]float64(nil), global...)
	for i := range moved {
		moved[i] += 0.25
	}
	sub.Reset(moved)
	u := make([]float64, sub.Dim())
	sub.Restrict(u, moved)
	fSub := make([]float64, sub.Dim())
	if err := sub.Eval(u, fSub); err != nil {
		t.Fatal(err)
	}
	fFull := make([]float64, b.Dim())
	if err := b.Eval(moved, fFull); err != nil {
		t.Fatal(err)
	}
	for k, g := range tiles[0].Unknowns {
		if math.Abs(fSub[k]-fFull[g]) > 1e-14 {
			t.Fatalf("after Reset, residual row %d differs from full row %d", k, g)
		}
	}
}
