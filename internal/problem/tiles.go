package problem

import "fmt"

// Tile is one subdomain of a red-black decomposition: the global indices of
// its unknowns plus its colour. Same-colour tiles share no unknowns and — for
// the order-2 stencils the decomposition targets (§6.3) — no residual
// coupling either, so they may be solved concurrently.
type Tile struct {
	Colour   int
	Unknowns []int
}

// Decomposable is implemented by problems that know how to split themselves
// into red-black tiles small enough for an accelerator with maxVars
// variables. Implementations must return an error (not silently degrade)
// when no admissible tiling exists.
type Decomposable interface {
	Tiles(maxVars int) ([]Tile, error)
}

// LargestDividingTile returns the largest t ≤ maxTile with n % t == 0 and
// t ≥ 2. It errors when only 1-wide tiles would fit: a 1×1 decomposition
// degenerates to pointwise relaxation, which is never what the caller of a
// subdomain decomposition wants, and used to be a silent failure mode.
func LargestDividingTile(n, maxTile int) (int, error) {
	if maxTile > n {
		maxTile = n
	}
	for t := maxTile; t >= 2; t-- {
		if n%t == 0 {
			return t, nil
		}
	}
	return 0, fmt.Errorf("problem: no tile size in [2,%d] divides grid size %d", maxTile, n)
}

// Checkerboard tiles an n×n grid of nodes with stride unknowns per node into
// tileN×tileN subdomains coloured like a checkerboard. tileN must divide n.
// Node (i,j) owns unknowns stride*(i*n+j) … stride*(i*n+j)+stride-1.
func Checkerboard(n, tileN, stride int) ([]Tile, error) {
	if tileN < 1 || n < 1 || stride < 1 {
		return nil, fmt.Errorf("problem: invalid checkerboard n=%d tileN=%d stride=%d", n, tileN, stride)
	}
	if n%tileN != 0 {
		return nil, fmt.Errorf("problem: tile size %d does not divide grid size %d", tileN, n)
	}
	nt := n / tileN
	tiles := make([]Tile, 0, nt*nt)
	for ti := 0; ti < n; ti += tileN {
		for tj := 0; tj < n; tj += tileN {
			t := Tile{
				Colour:   ((ti / tileN) + (tj / tileN)) % 2,
				Unknowns: make([]int, 0, stride*tileN*tileN),
			}
			for i := ti; i < ti+tileN; i++ {
				for j := tj; j < tj+tileN; j++ {
					base := stride * (i*n + j)
					for s := 0; s < stride; s++ {
						t.Unknowns = append(t.Unknowns, base+s)
					}
				}
			}
			tiles = append(tiles, t)
		}
	}
	return tiles, nil
}

// Blocks1D tiles a chain of n unknowns into contiguous blocks of the given
// size with alternating colours (the 1-D red-black decomposition). block
// must divide n.
func Blocks1D(n, block int) ([]Tile, error) {
	if block < 1 || n < 1 {
		return nil, fmt.Errorf("problem: invalid 1-D blocks n=%d block=%d", n, block)
	}
	if n%block != 0 {
		return nil, fmt.Errorf("problem: block size %d does not divide chain length %d", block, n)
	}
	tiles := make([]Tile, 0, n/block)
	for b := 0; b < n; b += block {
		t := Tile{Colour: (b / block) % 2, Unknowns: make([]int, block)}
		for k := 0; k < block; k++ {
			t.Unknowns[k] = b + k
		}
		tiles = append(tiles, t)
	}
	return tiles, nil
}
