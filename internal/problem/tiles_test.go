package problem

import "testing"

func TestLargestDividingTile(t *testing.T) {
	cases := []struct {
		n, maxTile int
		want       int
		wantErr    bool
	}{
		{4, 2, 2, false},
		{4, 4, 4, false},
		{6, 4, 3, false}, // 4 does not divide 6 → shrink to 3
		{6, 3, 3, false},
		{8, 3, 2, false},
		{12, 5, 4, false},
		{16, 16, 16, false},
		{5, 4, 0, true}, // 5 is prime: only 1-wide tiles would fit
		{7, 6, 0, true},
		{6, 1, 0, true}, // capacity below the smallest legal tile
	}
	for _, c := range cases {
		got, err := LargestDividingTile(c.n, c.maxTile)
		if c.wantErr {
			if err == nil {
				t.Errorf("LargestDividingTile(%d, %d): want error, got %d", c.n, c.maxTile, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("LargestDividingTile(%d, %d): %v", c.n, c.maxTile, err)
			continue
		}
		if got != c.want {
			t.Errorf("LargestDividingTile(%d, %d) = %d, want %d", c.n, c.maxTile, got, c.want)
		}
	}
}

func TestCheckerboardCoversAllUnknownsOnce(t *testing.T) {
	tiles, err := Checkerboard(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != 4 {
		t.Fatalf("4×4 grid with 2×2 tiles should give 4 tiles, got %d", len(tiles))
	}
	seen := map[int]int{}
	colours := map[int]int{}
	for _, tl := range tiles {
		colours[tl.Colour]++
		for _, g := range tl.Unknowns {
			seen[g]++
		}
	}
	if len(seen) != 32 {
		t.Fatalf("expected 32 unknowns covered, got %d", len(seen))
	}
	for g, c := range seen {
		if c != 1 {
			t.Fatalf("unknown %d covered %d times", g, c)
		}
	}
	if colours[0] != 2 || colours[1] != 2 {
		t.Fatalf("checkerboard colouring wrong: %v", colours)
	}
}

func TestCheckerboardSixBySixWithFourCapacity(t *testing.T) {
	// The regression the old pipeline silently mishandled: a 6×6 grid with
	// capacity for 4×4 tiles. 4 does not divide 6, so the tile must shrink
	// to 3×3 — never degrade to pointwise 1×1 relaxation.
	tileN, err := LargestDividingTile(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tileN != 3 {
		t.Fatalf("6×6 grid with capacity 4 must use 3×3 tiles, got %d×%d", tileN, tileN)
	}
	tiles, err := Checkerboard(6, tileN, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != 4 {
		t.Fatalf("6×6 grid with 3×3 tiles should give 4 tiles, got %d", len(tiles))
	}
	seen := map[int]bool{}
	for _, tl := range tiles {
		for _, g := range tl.Unknowns {
			if seen[g] {
				t.Fatalf("unknown %d covered twice", g)
			}
			seen[g] = true
		}
	}
	if len(seen) != 72 {
		t.Fatalf("expected 72 unknowns, got %d", len(seen))
	}
}

func TestCheckerboardRejectsNonDivisor(t *testing.T) {
	if _, err := Checkerboard(6, 4, 2); err == nil {
		t.Fatal("4×4 tiles cannot cover a 6×6 grid; Checkerboard must error")
	}
	if _, err := Checkerboard(5, 2, 2); err == nil {
		t.Fatal("2×2 tiles cannot cover a 5×5 grid; Checkerboard must error")
	}
}

func TestBlocks1D(t *testing.T) {
	tiles, err := Blocks1D(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != 4 {
		t.Fatalf("8 nodes in blocks of 2 should give 4 tiles, got %d", len(tiles))
	}
	next := 0
	for i, tl := range tiles {
		if tl.Colour != i%2 {
			t.Fatalf("block %d colour %d, want alternating", i, tl.Colour)
		}
		for _, g := range tl.Unknowns {
			if g != next {
				t.Fatalf("blocks must tile contiguously: got %d, want %d", g, next)
			}
			next++
		}
	}
	if next != 8 {
		t.Fatalf("covered %d unknowns, want 8", next)
	}
	if _, err := Blocks1D(9, 2); err == nil {
		t.Fatal("block 2 cannot cover 9 nodes; Blocks1D must error")
	}
}
