// Package problem defines the abstract nonlinear-system contract the hybrid
// pipeline solves. The paper's contribution (§3.3, §6.2–6.3) is a pipeline —
// an analog approximate solve seeds a digital Newton polish, with red-black
// Gauss-Seidel decomposition beyond accelerator capacity — and none of those
// stages needs to know which PDE it is solving. Every discretised PDE in
// internal/pde implements SparseSystem; internal/core consumes only this
// interface, so new problem classes (and new analog backends, cf. the
// photonic PDE accelerators of related work) slot in without touching the
// pipeline.
package problem

import (
	"fmt"
	"sync"

	"hybridpde/internal/la"
)

// SparseSystem is a square nonlinear algebraic system F(u) = 0 with a sparse
// Jacobian — the shape every stencil discretisation produces (§4.4). It is a
// superset of nonlin.SparseSystem: the pipeline additionally needs a warm
// start and the field scale for the analog dynamic-range scaler.
//
// Concurrency contract: Eval must be safe for concurrent callers that pass
// distinct u and f slices (stencil evaluation reads the receiver but writes
// only the arguments). JacobianCSR may refresh and return shared internal
// storage, so concurrent users must serialise it — Sub does this with a
// caller-provided lock.
type SparseSystem interface {
	// Dim returns the number of unknowns (= number of equations).
	Dim() int
	// Eval writes F(u) into f. len(u) == len(f) == Dim().
	Eval(u, f []float64) error
	// JacobianCSR returns J(u). Implementations may reuse internal storage;
	// the caller must not retain the matrix across calls.
	JacobianCSR(u []float64) (*la.CSR, error)
	// InitialGuess returns the natural warm start (e.g. the previous time
	// level of an implicit step).
	InitialGuess() []float64
	// MaxField returns the largest |value| across the problem's fields,
	// forcing and boundary data — the dynamic range an analog solve must
	// accommodate.
	MaxField() float64
}

// DegreeReporter is the optional polynomial-degree hook of the analog
// dynamic-range scaler (§5.3); stencil systems are quadratic.
type DegreeReporter interface {
	PolynomialDegree() int
}

// WarmStarter is the optional allocation-free companion of InitialGuess:
// implicit time stepping calls the pipeline once per step, and a fresh guess
// slice every step would be the loop's only steady-state allocation.
type WarmStarter interface {
	// InitialGuessInto writes the natural warm start into dst, which must
	// have length Dim().
	InitialGuessInto(dst []float64)
}

// Sub restricts a full system to a subset of its unknowns, freezing the rest
// at a snapshot of the global iterate — the subproblem shape nonlinear
// Gauss-Seidel generates (§6.3). It works over any SparseSystem and itself
// implements SparseSystem, so both the accelerator model and the digital
// solvers can consume it.
//
// A Sub owns its buffers; Reset re-snapshots the global state without
// allocating, which keeps repeated Gauss-Seidel sweeps off the allocator.
type Sub struct {
	full     SparseSystem
	unknowns []int     // global indices owned by this subproblem
	global   []float64 // frozen snapshot of the global iterate
	fFull    []float64
	// mu, when non-nil, serialises access to the full system's shared
	// Jacobian storage. Every Sub over the same full system must share the
	// same lock when tiles are solved concurrently.
	mu *sync.Mutex
}

// NewSub builds the restriction of full to the given unknowns, frozen at
// globalState. mu may be nil for serial use; concurrent Subs over one full
// system must share a lock (see Sub).
func NewSub(full SparseSystem, unknowns []int, globalState []float64, mu *sync.Mutex) *Sub {
	s := &Sub{
		full:     full,
		unknowns: unknowns,
		global:   make([]float64, full.Dim()),
		fFull:    make([]float64, full.Dim()),
		mu:       mu,
	}
	copy(s.global, globalState)
	return s
}

// Reset re-freezes the neighbour state at a new global iterate.
func (s *Sub) Reset(globalState []float64) {
	copy(s.global, globalState)
}

// Dim returns the number of owned unknowns.
func (s *Sub) Dim() int { return len(s.unknowns) }

// Unknowns returns the owned global indices (shared storage; do not mutate).
func (s *Sub) Unknowns() []int { return s.unknowns }

// PolynomialDegree propagates the full system's degree for the analog
// dynamic-range scaler; stencils default to quadratic.
func (s *Sub) PolynomialDegree() int {
	if d, ok := s.full.(DegreeReporter); ok {
		return d.PolynomialDegree()
	}
	return 2
}

// Restrict extracts this subproblem's unknowns from a global vector into
// dst, which must have length Dim().
func (s *Sub) Restrict(dst, global []float64) {
	for k, g := range s.unknowns {
		dst[k] = global[g]
	}
}

// Scatter writes owned values back into a global vector.
func (s *Sub) Scatter(sub, global []float64) {
	for k, g := range s.unknowns {
		global[g] = sub[k]
	}
}

// InitialGuess returns the owned slice of the frozen global snapshot.
func (s *Sub) InitialGuess() []float64 {
	out := make([]float64, len(s.unknowns))
	s.Restrict(out, s.global)
	return out
}

// MaxField propagates the full system's dynamic range: frozen neighbours
// appear in the restricted residual, so the sub-solve must accommodate the
// full field scale.
func (s *Sub) MaxField() float64 { return s.full.MaxField() }

// Eval computes the owned residual rows with frozen neighbours.
func (s *Sub) Eval(u, f []float64) error {
	if len(u) != len(s.unknowns) || len(f) != len(s.unknowns) {
		return fmt.Errorf("problem: Sub Eval dimension mismatch")
	}
	s.Scatter(u, s.global)
	if err := s.full.Eval(s.global, s.fFull); err != nil {
		return err
	}
	for k, g := range s.unknowns {
		f[k] = s.fFull[g]
	}
	return nil
}

// JacobianCSR extracts the owned block of the full Jacobian. The full
// system's Jacobian storage is shared, so this is the one operation the
// optional lock serialises; the extracted submatrix is fresh storage owned
// by the caller.
func (s *Sub) JacobianCSR(u []float64) (*la.CSR, error) {
	s.Scatter(u, s.global)
	if s.mu != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	j, err := s.full.JacobianCSR(s.global)
	if err != nil {
		return nil, err
	}
	return j.ExtractSubmatrix(s.unknowns), nil
}

var _ SparseSystem = (*Sub)(nil)
