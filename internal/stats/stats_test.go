package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRMSError(t *testing.T) {
	a := []float64{1, 2, 3}
	d := []float64{1, 2, 3}
	if RMSError(a, d, 0) != 0 {
		t.Fatal("identical vectors must have zero RMS error")
	}
	a2 := []float64{2, 2}
	d2 := []float64{0, 0}
	if got := RMSError(a2, d2, 0); math.Abs(got-2) > 1e-15 {
		t.Fatalf("RMS = %g, want 2", got)
	}
	if got := RMSError(a2, d2, 4); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("scaled RMS = %g, want 0.5", got)
	}
}

func TestRMSErrorNonNegativeProperty(t *testing.T) {
	f := func(a, b [6]float64) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
				a[i] = 0
			}
			if math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				b[i] = 0
			}
			a[i] = math.Mod(a[i], 1e100)
			b[i] = math.Mod(b[i], 1e100)
		}
		return RMSError(a[:], b[:], 0) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(x) != 5 {
		t.Fatalf("mean %g, want 5", Mean(x))
	}
	// Sample stddev of this classic set is ~2.138.
	if got := StdDev(x); math.Abs(got-2.138) > 0.01 {
		t.Fatalf("stddev %g, want ≈2.138", got)
	}
	if StdDev([]float64{1}) != 0 || Mean(nil) != 0 {
		t.Fatal("degenerate inputs mishandled")
	}
}

func TestTotalRMS(t *testing.T) {
	if got := TotalRMS([]float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("TotalRMS = %g", got)
	}
	if TotalRMS(nil) != 0 {
		t.Fatal("empty TotalRMS should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{1, 1, 3, 5, 9, 11, -2} {
		h.Observe(v)
	}
	if h.N != 7 {
		t.Fatalf("N = %d, want 7", h.N)
	}
	if h.Counts[0] != 3 { // 1, 1 and clamped −2
		t.Fatalf("bin 0 count %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9 and clamped 11
		t.Fatalf("bin 4 count %d, want 2", h.Counts[4])
	}
	if h.Mode() != 0 {
		t.Fatalf("mode bin %d, want 0", h.Mode())
	}
	if c := h.BinCenter(0); math.Abs(c-1) > 1e-12 {
		t.Fatalf("bin 0 center %g, want 1", c)
	}
	if !strings.Contains(h.String(), "│") {
		t.Fatal("String should render bars")
	}
}

func TestPercentile(t *testing.T) {
	x := []float64{5, 1, 3, 2, 4}
	if Percentile(x, 0) != 1 || Percentile(x, 100) != 5 {
		t.Fatal("extreme percentiles wrong")
	}
	if got := Percentile(x, 50); got != 3 {
		t.Fatalf("median %g, want 3", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}
