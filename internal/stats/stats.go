// Package stats provides the error metric and summary statistics the
// paper's evaluation uses: the RMS solution-error metric of Equation 6,
// histograms for the Figure 6 error distribution, and mean/stddev summaries
// for the Figure 8 error bars.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// RMSError implements Equation 6: sqrt(Σ(uₐ−u_d)²/N), the error between an
// analog and a digital solution. When scale > 0 the result is normalised by
// it (the paper reports percentages of the dynamic range).
func RMSError(analog, digital []float64, scale float64) float64 {
	if len(analog) != len(digital) {
		panic(fmt.Sprintf("stats: RMSError length mismatch %d vs %d", len(analog), len(digital)))
	}
	if len(analog) == 0 {
		return 0
	}
	s := 0.0
	for i := range analog {
		d := analog[i] - digital[i]
		s += d * d
	}
	r := math.Sqrt(s / float64(len(analog)))
	if scale > 0 {
		r /= scale
	}
	return r
}

// Mean returns the arithmetic mean; 0 for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// StdDev returns the sample standard deviation; 0 for fewer than 2 points.
func StdDev(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)-1))
}

// TotalRMS aggregates per-trial RMS errors the way the paper reports "the
// total RMS error for the 400 trials": the quadratic mean across trials.
func TotalRMS(perTrial []float64) float64 {
	if len(perTrial) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range perTrial {
		s += v * v
	}
	return math.Sqrt(s / float64(len(perTrial)))
}

// Histogram bins values into equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	N        int
}

// NewHistogram builds a histogram with the given number of bins. Values
// outside [min, max] are clamped into the edge bins.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins < 1 || max <= min {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Observe adds one value.
func (h *Histogram) Observe(v float64) {
	bins := len(h.Counts)
	k := int(float64(bins) * (v - h.Min) / (h.Max - h.Min))
	if k < 0 {
		k = 0
	}
	if k >= bins {
		k = bins - 1
	}
	h.Counts[k]++
	h.N++
}

// BinCenter returns the midpoint of bin k.
func (h *Histogram) BinCenter(k int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + w*(float64(k)+0.5)
}

// Mode returns the index of the fullest bin.
func (h *Histogram) Mode() int {
	best, bestC := 0, -1
	for k, c := range h.Counts {
		if c > bestC {
			best, bestC = k, c
		}
	}
	return best
}

// String renders an ASCII bar chart, one row per bin.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for k, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * 50 / maxC
		}
		fmt.Fprintf(&b, "%8.3f │%s %d\n", h.BinCenter(k), strings.Repeat("█", bar), c)
	}
	return b.String()
}

// Percentile returns the p-th percentile (0..100) of x by nearest-rank on a
// sorted copy.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}
