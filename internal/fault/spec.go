// Package fault is a deterministic, seeded fault-injection layer for the
// analog behavioural model. The paper's §6 argues the hybrid method is safe
// precisely because the digital stage tolerates analog error; this package
// manufactures that error on demand — beyond the calibrated envelope — so
// the degradation ladder and the serving layer can prove the claim under
// live faults.
//
// A Spec is a list of fault classes, parsed from a line-oriented text or
// JSON description (ParseSpec) and compiled into an analog.Injector (New).
// Every random choice an injector makes is drawn from its own seeded
// generator, and only at run boundaries, so a fixed seed reproduces a fault
// sequence bit for bit.
package fault

import (
	"fmt"
	"math"
)

// Fault kinds, mirroring the paper's §6 error sources pushed past
// calibration (see DESIGN.md for the taxonomy table).
const (
	// KindStuck pins a variable's integrator: its state never moves.
	KindStuck = "stuck"
	// KindRailed drives a variable's integrator toward the positive rail.
	KindRailed = "railed"
	// KindDACDrift applies gain/offset drift to input converters.
	KindDACDrift = "dac-drift"
	// KindADCDrift applies gain/offset drift to output converters.
	KindADCDrift = "adc-drift"
	// KindSaturation shrinks the usable dynamic range by a factor.
	KindSaturation = "saturation"
	// KindBurst superposes a transient disturbance on integrator drives,
	// activated per run with a given probability.
	KindBurst = "burst"
	// KindDeadTile removes one tile from the fabric's usable capacity.
	KindDeadTile = "dead-tile"
)

// AllVars is the wildcard variable selector ("*" in the text form): the
// fault applies to every hosted variable.
const AllVars = -1

// Fault describes one injected non-ideality. Which fields are meaningful
// depends on Kind; Validate enforces the per-kind constraints.
type Fault struct {
	Kind string `json:"kind"`
	// Var selects the affected variable for stuck/railed/dac-drift/
	// adc-drift; AllVars (-1) hits every variable.
	Var int `json:"var"`
	// Tile is the dead tile index (dead-tile).
	Tile int `json:"tile,omitempty"`
	// Gain and Offset are multiplicative (v → v·(1+Gain)+Offset) converter
	// drift, in normalised full-scale units (dac-drift/adc-drift).
	Gain   float64 `json:"gain,omitempty"`
	Offset float64 `json:"offset,omitempty"`
	// Factor scales the saturation limit, in (0, 1] (saturation).
	Factor float64 `json:"factor,omitempty"`
	// Prob is the per-run activation probability of a burst, in [0, 1].
	Prob float64 `json:"prob,omitempty"`
	// Amp is the burst disturbance amplitude (normalised units per τ).
	Amp float64 `json:"amp,omitempty"`
	// From and To bound the burst window in integrator time constants;
	// both zero means the whole run.
	From float64 `json:"from,omitempty"`
	To   float64 `json:"to,omitempty"`
}

// Spec is a complete fault-injection description.
type Spec struct {
	// Seed drives every random draw of the compiled injector. Injector
	// owners may salt it (e.g. per worker) via New's salt argument.
	Seed   int64   `json:"seed,omitempty"`
	Faults []Fault `json:"faults"`
}

// Validate checks per-kind field constraints. ParseSpec validates before
// returning, so hand-built specs are the only ones that need an explicit
// call.
func (s *Spec) Validate() error {
	for i := range s.Faults {
		f := &s.Faults[i]
		if err := f.validate(); err != nil {
			return fmt.Errorf("fault: fault %d (%s): %w", i, f.Kind, err)
		}
	}
	return nil
}

func (f *Fault) validate() error {
	switch f.Kind {
	case KindStuck, KindRailed:
		if f.Var < AllVars {
			return fmt.Errorf("variable %d out of range", f.Var)
		}
	case KindDACDrift, KindADCDrift:
		if f.Var < AllVars {
			return fmt.Errorf("variable %d out of range", f.Var)
		}
		if !isFinite(f.Gain) || !isFinite(f.Offset) {
			return fmt.Errorf("gain/offset must be finite")
		}
		if f.Gain <= -1 {
			return fmt.Errorf("gain %g collapses the converter (must be > -1)", f.Gain)
		}
	case KindSaturation:
		if !(f.Factor > 0 && f.Factor <= 1) {
			return fmt.Errorf("factor %g outside (0, 1]", f.Factor)
		}
	case KindBurst:
		if !(f.Prob >= 0 && f.Prob <= 1) {
			return fmt.Errorf("probability %g outside [0, 1]", f.Prob)
		}
		if !isFinite(f.Amp) || f.Amp < 0 {
			return fmt.Errorf("amplitude %g must be finite and non-negative", f.Amp)
		}
		if !isFinite(f.From) || !isFinite(f.To) || f.From < 0 || f.To < f.From {
			return fmt.Errorf("window [%g, %g) invalid", f.From, f.To)
		}
	case KindDeadTile:
		if f.Tile < 0 {
			return fmt.Errorf("tile %d out of range", f.Tile)
		}
	default:
		return fmt.Errorf("unknown kind")
	}
	return nil
}

// Transient reports whether the spec contains any per-run transient fault
// (noise bursts) — i.e. whether retrying a degraded solve can hope for a
// different outcome.
func (s *Spec) Transient() bool {
	for i := range s.Faults {
		if s.Faults[i].Kind == KindBurst {
			return true
		}
	}
	return false
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// DefaultChaosText is the built-in spec behind pdeserved's -chaos flag: a
// representative mix of every permanent-versus-transient regime — one
// integrator railed and one stuck (seeds always fail the gate, exercising
// the digital rung), mild converter drift, a shrunken dynamic range, and a
// probabilistic mid-run burst (exercising per-request retries).
const DefaultChaosText = `# built-in chaos spec (pdeserved -chaos)
seed 1
railed 0
stuck 1
adc-drift * 0.08 0.02
saturation 0.7
burst 0.35 0.5 5 25
`

// DefaultChaosSpec returns the parsed built-in chaos spec.
func DefaultChaosSpec() *Spec {
	s, err := ParseSpec(DefaultChaosText)
	if err != nil {
		panic("fault: built-in chaos spec invalid: " + err.Error())
	}
	return s
}
