package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses a fault specification from either of its two front-ends
// and validates it. Input whose first non-blank byte is '{' is decoded as
// the JSON form of Spec (unknown fields rejected); anything else is the
// line-oriented text form:
//
//	# comment
//	seed <n>
//	stuck <var|*>
//	railed <var|*>
//	dac-drift <var|*> <gain> <offset>
//	adc-drift <var|*> <gain> <offset>
//	saturation <factor>
//	burst <prob> <amp> [<from> <to>]
//	dead-tile <tile>
//
// Variables are zero-based; "*" applies the fault to every variable.
func ParseSpec(src string) (*Spec, error) {
	if t := strings.TrimSpace(src); strings.HasPrefix(t, "{") {
		return parseJSON(t)
	}
	return parseText(src)
}

func parseJSON(src string) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader([]byte(src)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fault: spec JSON: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("fault: spec JSON: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func parseText(src string) (*Spec, error) {
	s := &Spec{}
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := parseLine(s, line); err != nil {
			return nil, fmt.Errorf("fault: spec line %d: %w", ln+1, err)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseLine(s *Spec, line string) error {
	fields := strings.Fields(line)
	op, args := fields[0], fields[1:]
	switch op {
	case "seed":
		if len(args) != 1 {
			return fmt.Errorf("seed wants 1 argument, got %d", len(args))
		}
		v, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("seed: %w", err)
		}
		s.Seed = v
	case KindStuck, KindRailed:
		if len(args) != 1 {
			return fmt.Errorf("%s wants <var|*>, got %d arguments", op, len(args))
		}
		v, err := parseVar(args[0])
		if err != nil {
			return err
		}
		s.Faults = append(s.Faults, Fault{Kind: op, Var: v})
	case KindDACDrift, KindADCDrift:
		if len(args) != 3 {
			return fmt.Errorf("%s wants <var|*> <gain> <offset>, got %d arguments", op, len(args))
		}
		v, err := parseVar(args[0])
		if err != nil {
			return err
		}
		gain, err := parseFloat(args[1], "gain")
		if err != nil {
			return err
		}
		off, err := parseFloat(args[2], "offset")
		if err != nil {
			return err
		}
		s.Faults = append(s.Faults, Fault{Kind: op, Var: v, Gain: gain, Offset: off})
	case KindSaturation:
		if len(args) != 1 {
			return fmt.Errorf("saturation wants <factor>, got %d arguments", len(args))
		}
		f, err := parseFloat(args[0], "factor")
		if err != nil {
			return err
		}
		s.Faults = append(s.Faults, Fault{Kind: op, Factor: f})
	case KindBurst:
		if len(args) != 2 && len(args) != 4 {
			return fmt.Errorf("burst wants <prob> <amp> [<from> <to>], got %d arguments", len(args))
		}
		prob, err := parseFloat(args[0], "prob")
		if err != nil {
			return err
		}
		amp, err := parseFloat(args[1], "amp")
		if err != nil {
			return err
		}
		f := Fault{Kind: op, Prob: prob, Amp: amp}
		if len(args) == 4 {
			if f.From, err = parseFloat(args[2], "from"); err != nil {
				return err
			}
			if f.To, err = parseFloat(args[3], "to"); err != nil {
				return err
			}
		}
		s.Faults = append(s.Faults, f)
	case KindDeadTile:
		if len(args) != 1 {
			return fmt.Errorf("dead-tile wants <tile>, got %d arguments", len(args))
		}
		t, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("tile: %w", err)
		}
		s.Faults = append(s.Faults, Fault{Kind: op, Tile: t})
	default:
		return fmt.Errorf("unknown directive %q", op)
	}
	return nil
}

func parseVar(tok string) (int, error) {
	if tok == "*" {
		return AllVars, nil
	}
	v, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("variable: %w", err)
	}
	return v, nil
}

func parseFloat(tok, what string) (float64, error) {
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", what, err)
	}
	return v, nil
}
