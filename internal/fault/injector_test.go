package fault

import (
	"math"
	"testing"
)

func mustInjector(t *testing.T, src string, salt int64) *Injector {
	t.Helper()
	spec, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := New(spec, salt)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestInjectorStuckAndRailed(t *testing.T) {
	inj := mustInjector(t, "stuck 0\nrailed 1\n", 0)
	inj.BeginRun()
	if d := inj.Drive(0.5, 0, 0.3, 2.0); d != 0 { //pdevet:allow floateq stuck drive is exactly zero by construction
		t.Fatalf("stuck integrator drive %g, want 0", d)
	}
	// Railed: pulled toward the positive rail, harder the further away.
	if d := inj.Drive(0.5, 1, 0, 2.0); d <= 0 {
		t.Fatalf("railed integrator at 0 must be driven up, got %g", d)
	}
	if lo, hi := inj.Drive(0.5, 1, 0.9, 0), inj.Drive(0.5, 1, 0.1, 0); hi <= lo {
		t.Fatalf("rail pull must weaken near the rail: at 0.1 → %g, at 0.9 → %g", hi, lo)
	}
	// Unaffected variable passes through.
	if d := inj.Drive(0.5, 2, 0.3, 2.0); d != 2.0 { //pdevet:allow floateq pass-through is exact
		t.Fatalf("healthy variable drive %g, want 2", d)
	}
}

func TestInjectorDriftAndSaturation(t *testing.T) {
	inj := mustInjector(t, "dac-drift 0 0.1 0.05\nadc-drift * -0.5 0\nsaturation 0.5\nsaturation 0.8\n", 0)
	inj.BeginRun()
	if got, want := inj.DAC(0, 1.0), 1.0*1.1+0.05; math.Abs(got-want) > 1e-15 {
		t.Fatalf("DAC drift: got %g want %g", got, want)
	}
	if got := inj.DAC(1, 1.0); got != 1.0 { //pdevet:allow floateq undrifted channel is exact pass-through
		t.Fatalf("DAC channel 1 should be clean, got %g", got)
	}
	if got, want := inj.ADC(3, 0.8), 0.4; math.Abs(got-want) > 1e-15 {
		t.Fatalf("ADC wildcard drift: got %g want %g", got, want)
	}
	// Saturation factors compose multiplicatively.
	if got, want := inj.Saturation(1.2), 1.2*0.5*0.8; math.Abs(got-want) > 1e-15 {
		t.Fatalf("saturation: got %g want %g", got, want)
	}
}

func TestInjectorDeadTiles(t *testing.T) {
	inj := mustInjector(t, "dead-tile 0\ndead-tile 3\ndead-tile 99\n", 0)
	// Tile 99 is out of range for an 8-tile fabric and must not count.
	if got := inj.UsableTiles(8); got != 6 {
		t.Fatalf("UsableTiles(8) = %d, want 6", got)
	}
	if got := inj.UsableTiles(2); got != 1 {
		t.Fatalf("UsableTiles(2) = %d, want 1 (only tile 0 is in range)", got)
	}
}

func TestInjectorBurstWindow(t *testing.T) {
	inj := mustInjector(t, "burst 1 2 5 10\n", 0)
	inj.BeginRun()
	if d := inj.Drive(2, 0, 0, 0); d != 0 { //pdevet:allow floateq outside the window the drive is untouched (exactly zero here)
		t.Fatalf("burst active outside window: %g", d)
	}
	inside := inj.Drive(5.75, 0, 0, 0)
	if inside == 0 { //pdevet:allow floateq a sinusoid off its zero crossing is exactly nonzero
		t.Fatal("burst inactive inside window")
	}
	if math.Abs(inside) > 2 {
		t.Fatalf("burst amplitude %g exceeds spec amp 2", inside)
	}
}

// TestInjectorDeterminism is the package contract: a fixed (spec, salt) pair
// reproduces the whole fault sequence bit for bit, across every hook and
// across runs; a different salt diverges.
func TestInjectorDeterminism(t *testing.T) {
	const src = "seed 9\nburst 0.5 1\nburst 0.3 2 1 4\nadc-drift * 0.05 0.01\n"
	trace := func(salt int64) []float64 {
		inj := mustInjector(t, src, salt)
		var out []float64
		for run := 0; run < 64; run++ {
			inj.BeginRun()
			for i := 0; i < 4; i++ {
				out = append(out, inj.Drive(float64(run)/7, i, 0.2, 1.0), inj.ADC(i, 0.5))
			}
		}
		return out
	}
	a, b := trace(3), trace(3)
	for i := range a {
		if a[i] != b[i] { //pdevet:allow floateq bit-reproducibility is the property under test
			t.Fatalf("same salt diverged at sample %d: %g vs %g", i, a[i], b[i])
		}
	}
	c := trace(4)
	same := true
	for i := range a {
		if a[i] != c[i] { //pdevet:allow floateq comparing full bit patterns
			same = false
			break
		}
	}
	if same {
		t.Fatal("different salts produced identical 64-run burst sequences")
	}
}

func TestInjectorBurstProbability(t *testing.T) {
	// prob 0 never activates; prob 1 always does.
	never := mustInjector(t, "burst 0 5\n", 0)
	always := mustInjector(t, "burst 1 5\n", 0)
	for run := 0; run < 32; run++ {
		never.BeginRun()
		always.BeginRun()
		if d := never.Drive(1, 0, 0, 0); d != 0 { //pdevet:allow floateq inactive burst leaves the zero drive exactly zero
			t.Fatalf("prob-0 burst fired on run %d", run)
		}
		if d := always.Drive(1, 0, 0, 0); d == 0 { //pdevet:allow floateq active burst sinusoid is exactly nonzero at this phase
			t.Fatalf("prob-1 burst idle on run %d", run)
		}
	}
	if never.Runs() != 32 || always.Runs() != 32 {
		t.Fatalf("run counter wrong: %d, %d", never.Runs(), always.Runs())
	}
}

func TestInjectorSpecCopyIsolated(t *testing.T) {
	inj := mustInjector(t, "stuck 0\n", 0)
	s := inj.Spec()
	s.Faults[0].Var = 7
	if inj.Spec().Faults[0].Var != 0 {
		t.Fatal("Spec() must return an isolated copy")
	}
	if inj.FaultCount() != 1 {
		t.Fatalf("FaultCount %d, want 1", inj.FaultCount())
	}
}

func TestNewRejectsInvalidSpec(t *testing.T) {
	if _, err := New(&Spec{Faults: []Fault{{Kind: "bogus"}}}, 0); err == nil {
		t.Fatal("New accepted an invalid hand-built spec")
	}
}
