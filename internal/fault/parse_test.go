package fault

import (
	"strings"
	"testing"
)

func TestParseTextGrammar(t *testing.T) {
	spec, err := ParseSpec(`# header comment
seed 42

stuck 3
railed *
dac-drift 0 0.1 -0.05
adc-drift * -0.2 0.01
saturation 0.5
burst 0.25 1.5 2 10
burst 1 0.5
dead-tile 2
`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 42 {
		t.Fatalf("seed %d, want 42", spec.Seed)
	}
	want := []Fault{
		{Kind: KindStuck, Var: 3},
		{Kind: KindRailed, Var: AllVars},
		{Kind: KindDACDrift, Var: 0, Gain: 0.1, Offset: -0.05},
		{Kind: KindADCDrift, Var: AllVars, Gain: -0.2, Offset: 0.01},
		{Kind: KindSaturation, Factor: 0.5},
		{Kind: KindBurst, Prob: 0.25, Amp: 1.5, From: 2, To: 10},
		{Kind: KindBurst, Prob: 1, Amp: 0.5},
		{Kind: KindDeadTile, Tile: 2},
	}
	if len(spec.Faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(spec.Faults), len(want))
	}
	for i := range want {
		if spec.Faults[i] != want[i] {
			t.Errorf("fault %d: %+v, want %+v", i, spec.Faults[i], want[i])
		}
	}
	if !spec.Transient() {
		t.Fatal("spec with bursts must report Transient")
	}
}

func TestParseJSONForm(t *testing.T) {
	spec, err := ParseSpec(`{
  "seed": 7,
  "faults": [
    {"kind": "stuck", "var": 0},
    {"kind": "burst", "prob": 0.5, "amp": 1, "from": 1, "to": 4}
  ]
}`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 7 || len(spec.Faults) != 2 {
		t.Fatalf("bad JSON parse: %+v", spec)
	}
	if spec.Faults[0].Kind != KindStuck || spec.Faults[1].To != 4 {
		t.Fatalf("bad JSON fields: %+v", spec.Faults)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown directive", "frobnicate 1", "unknown directive"},
		{"bad seed", "seed x", "seed"},
		{"stuck arity", "stuck 1 2", "arguments"},
		{"bad variable", "stuck -5", "out of range"},
		{"drift arity", "dac-drift 0 0.1", "arguments"},
		{"collapsing gain", "adc-drift 0 -1.5 0", "collapses"},
		{"saturation range", "saturation 1.5", "outside (0, 1]"},
		{"burst probability", "burst 2 1", "outside [0, 1]"},
		{"burst window", "burst 0.5 1 10 2", "invalid"},
		{"negative tile", "dead-tile -1", "out of range"},
		{"json unknown field", `{"faults": [], "bogus": 1}`, "bogus"},
		{"json trailing data", `{"faults": []} {"faults": []}`, "trailing"},
		{"json bad kind", `{"faults": [{"kind": "nope", "var": 0}]}`, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.src)
			if err == nil {
				t.Fatalf("%q parsed without error", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseTextLineNumbersInErrors(t *testing.T) {
	_, err := ParseSpec("seed 1\n\n# fine\nbogus 2\n")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %v should carry the 1-based line number", err)
	}
}

func TestDefaultChaosSpec(t *testing.T) {
	spec := DefaultChaosSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(spec.Faults) == 0 {
		t.Fatal("built-in chaos spec is empty")
	}
	if !spec.Transient() {
		t.Fatal("built-in chaos spec must contain a transient fault (retry path coverage)")
	}
}
