package fault

import (
	"math"
	"math/rand"

	"hybridpde/internal/analog"
)

// Injector compiles a Spec into the analog.Injector contract. It is owned
// by exactly one accelerator and driven from its serial solve path, so it
// needs no locking. All randomness (burst activation) is drawn in BeginRun
// from the injector's own seeded generator; the evaluation-time hooks are
// pure functions of the per-run state, keeping whole solves bit-reproducible
// under a fixed seed.
type Injector struct {
	spec Spec
	rng  *rand.Rand

	stuckAll, railedAll bool
	stuck, railed       map[int]bool
	dacDrift, adcDrift  []drift
	satFactor           float64
	bursts              []burst
	dead                map[int]bool
	runs                int
}

type drift struct {
	v           int // AllVars or a specific variable
	gain, shift float64
}

// burst is a transient sinusoidal disturbance on the integrator drives,
// active for a whole run with probability prob (drawn in BeginRun).
type burst struct {
	prob, amp, from, to float64
	whole               bool // zero window in the spec: disturb the whole run
	active              bool
}

// burstPeriodTau is the disturbance period in integrator time constants —
// slow enough for the slew-limited circuit to follow, fast enough to keep
// the state off equilibrium for the window's duration.
const burstPeriodTau = 3.0

// railRate is the pull strength (per τ) of a railed integrator toward the
// positive rail at full scale.
const railRate = 8.0

// New compiles a validated Spec into an Injector. salt is mixed into the
// spec's seed so fleets of accelerators (e.g. one per serve worker) draw
// independent but individually reproducible fault sequences; standalone
// callers pass 0.
func New(spec *Spec, salt int64) (*Injector, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{
		spec:      *spec,
		rng:       rand.New(rand.NewSource(spec.Seed + salt)),
		stuck:     map[int]bool{},
		railed:    map[int]bool{},
		dead:      map[int]bool{},
		satFactor: 1,
	}
	inj.spec.Faults = append([]Fault(nil), spec.Faults...)
	for _, f := range inj.spec.Faults {
		switch f.Kind {
		case KindStuck:
			if f.Var == AllVars {
				inj.stuckAll = true
			} else {
				inj.stuck[f.Var] = true
			}
		case KindRailed:
			if f.Var == AllVars {
				inj.railedAll = true
			} else {
				inj.railed[f.Var] = true
			}
		case KindDACDrift:
			inj.dacDrift = append(inj.dacDrift, drift{v: f.Var, gain: f.Gain, shift: f.Offset})
		case KindADCDrift:
			inj.adcDrift = append(inj.adcDrift, drift{v: f.Var, gain: f.Gain, shift: f.Offset})
		case KindSaturation:
			inj.satFactor *= f.Factor
		case KindBurst:
			whole := f.From <= 0 && f.To <= 0
			inj.bursts = append(inj.bursts, burst{prob: f.Prob, amp: f.Amp, from: f.From, to: f.To, whole: whole})
		case KindDeadTile:
			inj.dead[f.Tile] = true
		}
	}
	return inj, nil
}

// Spec returns a copy of the compiled spec (for metrics and logging).
func (inj *Injector) Spec() Spec {
	s := inj.spec
	s.Faults = append([]Fault(nil), inj.spec.Faults...)
	return s
}

// FaultCount is the number of injected fault classes.
func (inj *Injector) FaultCount() int { return len(inj.spec.Faults) }

// Runs is the number of solves the injector has seen (BeginRun calls).
func (inj *Injector) Runs() int { return inj.runs }

// BeginRun implements analog.Injector: transient bursts draw their per-run
// activation here, and nowhere else.
func (inj *Injector) BeginRun() {
	inj.runs++
	for i := range inj.bursts {
		b := &inj.bursts[i]
		b.active = inj.rng.Float64() < b.prob
	}
}

// UsableTiles implements analog.Injector: dead tiles reduce capacity.
func (inj *Injector) UsableTiles(total int) int {
	n := total
	for t := range inj.dead {
		if t >= 0 && t < total {
			n--
		}
	}
	return n
}

// Saturation implements analog.Injector.
func (inj *Injector) Saturation(base float64) float64 { return base * inj.satFactor }

// DAC implements analog.Injector.
func (inj *Injector) DAC(i int, v float64) float64 { return applyDrift(inj.dacDrift, i, v) }

// ADC implements analog.Injector.
func (inj *Injector) ADC(i int, v float64) float64 { return applyDrift(inj.adcDrift, i, v) }

func applyDrift(ds []drift, i int, v float64) float64 {
	for _, d := range ds {
		if d.v == AllVars || d.v == i {
			v = v*(1+d.gain) + d.shift
		}
	}
	return v
}

// Drive implements analog.Injector. Stuck integrators hold their state;
// railed ones slew toward the positive rail; active bursts superpose a
// sinusoid with a per-variable phase so neighbouring variables are not
// disturbed coherently. The phase is a golden-ratio hash of the variable
// index — deterministic, no per-evaluation randomness.
func (inj *Injector) Drive(t float64, i int, w, d float64) float64 {
	if inj.stuckAll || inj.stuck[i] {
		return 0
	}
	if inj.railedAll || inj.railed[i] {
		return railRate * (1 - w)
	}
	for bi := range inj.bursts {
		b := &inj.bursts[bi]
		if !b.active {
			continue
		}
		if !b.whole && (t < b.from || t >= b.to) {
			continue
		}
		d += b.amp * math.Sin(2*math.Pi*((t-b.from)/burstPeriodTau+phase(i)))
	}
	return d
}

// phase maps a variable index to a fraction of a period via the golden
// ratio, spreading disturbance phases without shared state.
func phase(i int) float64 {
	const golden = 0.6180339887498949
	p := float64(i+1) * golden
	return p - math.Floor(p)
}

var _ analog.Injector = (*Injector)(nil)
