package fault

import (
	"strings"
	"testing"
)

// FuzzParseFaultSpec asserts the parser's two contracts on arbitrary input:
// it never panics, and anything it accepts is a valid spec that compiles
// into an injector. The committed corpus under testdata/fuzz seeds both
// front-ends (text and JSON) plus the built-in chaos spec.
func FuzzParseFaultSpec(f *testing.F) {
	f.Add(DefaultChaosText)
	f.Add("seed 3\nstuck *\ndac-drift 1 0.5 -0.1\n")
	f.Add("burst 0.5 1.25 0 100\ndead-tile 7\nsaturation 0.01\n")
	f.Add(`{"seed": 5, "faults": [{"kind": "railed", "var": -1}]}`)
	f.Add(`{"faults": [{"kind": "burst", "prob": 1, "amp": 2}]}`)
	f.Add("# only comments\n\n   \n")
	f.Add("stuck")
	f.Add("seed 9223372036854775807\nrailed 2147483647\n")
	f.Add(`{"faults": [{"kind": "dac-drift", "var": 0, "gain": 1e308, "offset": -1e308}]}`)
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := ParseSpec(src)
		if err != nil {
			if spec != nil {
				t.Fatal("ParseSpec returned both a spec and an error")
			}
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails Validate: %v\ninput: %q", err, src)
		}
		if _, err := New(spec, 1); err != nil {
			t.Fatalf("accepted spec fails to compile: %v\ninput: %q", err, src)
		}
		// The parsed fault count is bounded by the line/element count, so a
		// pathological input can't smuggle in unbounded state.
		if len(spec.Faults) > strings.Count(src, "\n")+strings.Count(src, "{")+1 {
			t.Fatalf("spec has %d faults from %d-byte input", len(spec.Faults), len(src))
		}
	})
}
