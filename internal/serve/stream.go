package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"strconv"

	"hybridpde/internal/cache"
	"hybridpde/internal/core"
)

// NDJSONContentType is the POST /v1/stream response media type: one JSON
// document per line, flushed as it is produced.
const NDJSONContentType = "application/x-ndjson"

// StreamFrame is one NDJSON line of a POST /v1/stream response: a single
// converged (or degraded-but-served) time step of the transient solve,
// written and flushed before the next step runs.
type StreamFrame struct {
	// Step is the 1-based step index; T = Step·dt labels the time axis.
	Step int     `json:"step"`
	T    float64 `json:"t"`
	// Residual is the step's certified final ‖F(u)‖₂; Converged whether the
	// digital polish met its tolerance.
	Residual  float64 `json:"residual"`
	Converged bool    `json:"converged"`
	// Iterations/LinearSolves/Refactorizations describe the step's Newton
	// work; chord-mode factorization reuse keeps Refactorizations far below
	// LinearSolves on smooth trajectories.
	Iterations       int `json:"newton_iterations"`
	LinearSolves     int `json:"linear_solves"`
	Refactorizations int `json:"refactorizations"`
	// Rung/Degraded echo the degradation ladder's account of the step.
	Rung     string `json:"rung,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	// Checksum is FNV-64a over the little-endian float64 bits of the step's
	// solution — the determinism handle every frame carries. U is the full
	// solution vector, present only when the request set include_solution.
	Checksum string    `json:"checksum"`
	U        []float64 `json:"u,omitempty"`
}

// StreamSummary is the final NDJSON line of a stream: the whole-trajectory
// account, including the in-band error report — once frames have been
// flushed the HTTP status is committed, so failures surface here.
type StreamSummary struct {
	// Done is true when every requested step was solved and emitted.
	Done    bool   `json:"done"`
	Problem string `json:"problem"`
	Dim     int    `json:"dim,omitempty"`
	// Frames counts the frame lines actually emitted before this summary.
	Frames           int `json:"frames"`
	TotalIterations  int `json:"total_newton_iterations"`
	LinearSolves     int `json:"linear_solves"`
	Refactorizations int `json:"refactorizations"`
	// ModelSeconds/ModelEnergyJ are the summed modelled step costs
	// (machine-independent); QueueSeconds/SolveSeconds measured wall time.
	ModelSeconds float64 `json:"model_seconds,omitempty"`
	ModelEnergyJ float64 `json:"model_energy_j,omitempty"`
	QueueSeconds float64 `json:"queue_seconds"`
	SolveSeconds float64 `json:"solve_seconds"`
	Error        string  `json:"error,omitempty"`
}

// streamChecksum hashes the exact bit pattern of a solution vector
// (FNV-64a over the little-endian float64 bits) — the same digest
// cmd/pdebench commits, so streamed frames are checkable against offline
// solves.
func streamChecksum(u []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range u {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// streamLine is one marshalled NDJSON line in flight from the solving
// goroutine to the handler's writer loop.
type streamLine struct {
	data    []byte
	summary bool
}

// handleStream is POST /v1/stream: decode → validate (stream rules) →
// admit (or shed) through the same gate as /v1/solve → acquire a worker →
// run the transient time loop on a solver goroutine while this handler
// writes and flushes each frame line as it arrives.
//
// Backpressure is bounded-then-blocking: a slow client first consumes the
// StreamBuffer-deep channel, then the solver blocks on it until the request
// deadline — the trajectory is never buffered whole. A write error (client
// gone) cancels the solve between frames and drains the channel so the
// solver goroutine always terminates; the worker is released only after the
// channel closes, which is the proof the goroutine is done with it.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.reject(w, "", http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req Request
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.reject(w, req.Problem, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if err := normalizeStream(&req, &s.cfg); err != nil {
		s.reject(w, req.Problem, http.StatusBadRequest, err.Error())
		return
	}
	budget, budgetOK := deadlineBudget(r)
	if !budgetOK {
		s.m.budgetRejects.Inc()
		s.reject(w, req.Problem, http.StatusGatewayTimeout, "deadline budget exhausted before admission")
		return
	}

	release, ok := s.admit()
	if !ok {
		if s.isDraining() {
			s.reject(w, req.Problem, http.StatusServiceUnavailable, "server is draining")
			return
		}
		s.m.queueRejects.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		s.reject(w, req.Problem, http.StatusTooManyRequests, "admission queue full")
		return
	}
	defer release()

	enqueued := now()
	to := s.timeout(&req)
	if budget > 0 && budget < to {
		to = budget
		s.m.budgetClamped.Inc()
	}
	ctx, cancel := context.WithTimeout(r.Context(), to)
	defer cancel()

	wk, err := s.acquireWorker(ctx)
	if err != nil {
		s.reject(w, req.Problem, queueFailureCode(ctx, err), "timed out waiting for a worker")
		return
	}
	defer s.releaseWorker(wk)

	// The stream is committed: the 200 is written before the first step
	// solves, and every later outcome — including failure — is in-band on
	// the summary line.
	s.m.requests.With(req.Problem, strconv.Itoa(http.StatusOK)).Inc()
	s.m.streamsInflight.Inc()
	defer s.m.streamsInflight.Dec()
	w.Header().Set("Content-Type", NDJSONContentType)
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)

	queueSeconds := since(enqueued)
	lines := make(chan streamLine, s.cfg.StreamBuffer)
	go s.solveStream(ctx, wk, &req, queueSeconds, lines)

	var first, failed bool
	for ln := range lines {
		if failed {
			continue // drain: the solver goroutine must never block forever
		}
		if _, werr := w.Write(ln.data); werr != nil {
			// The client hung up mid-trajectory: abort the solve between
			// frames and keep draining until the channel closes.
			failed = true
			cancel()
			continue
		}
		if canFlush {
			flusher.Flush()
		}
		if !ln.summary {
			s.m.framesStreamed.Inc()
			if !first {
				first = true
				s.m.firstFrameTime.Observe(since(enqueued))
			}
		}
	}
}

// solveStream runs the worker's transient time loop, marshalling each frame
// into an NDJSON line for the handler's writer loop. It always terminates
// the stream with a summary line (unless the context is already dead) and
// always closes the channel — the handler's signal that the worker is free.
func (s *Server) solveStream(ctx context.Context, wk *worker, req *Request, queueSeconds float64, out chan<- streamLine) {
	defer close(out)
	started := now()
	stepStart := started
	var frame StreamFrame
	emit := func(f *core.Frame) error {
		s.m.frameSolveTime.Observe(since(stepStart))
		frame = StreamFrame{
			Step:             f.Step,
			T:                f.T,
			Residual:         f.Residual,
			Converged:        f.Converged,
			Iterations:       f.Iterations,
			LinearSolves:     f.LinearSolves,
			Refactorizations: f.Refactorizations,
			Rung:             string(f.Rung),
			Degraded:         f.Degraded,
			Checksum:         streamChecksum(f.U),
		}
		if req.IncludeSolution {
			// f.U aliases solver storage but is marshalled before this
			// callback returns, so the alias never escapes the frame.
			frame.U = f.U
		}
		b, err := json.Marshal(&frame)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		select {
		case out <- streamLine{data: b}:
		case <-ctx.Done():
			return ctx.Err()
		}
		stepStart = now()
		return nil
	}

	rep, dim, err := wk.stream(ctx, req, emit)
	sum := StreamSummary{
		Done:             err == nil,
		Problem:          req.Problem,
		Dim:              dim,
		Frames:           rep.Steps,
		TotalIterations:  rep.TotalIterations,
		LinearSolves:     rep.LinearSolves,
		Refactorizations: rep.Refactorizations,
		ModelSeconds:     rep.TotalSeconds,
		ModelEnergyJ:     rep.TotalEnergyJ,
		QueueSeconds:     queueSeconds,
		SolveSeconds:     since(started),
	}
	if err != nil {
		sum.Error = err.Error()
		s.m.streamsAborted.Inc()
	}
	s.m.jacRefactors.Add(uint64(rep.Refactorizations))
	if reuses := rep.LinearSolves - rep.Refactorizations; reuses > 0 {
		s.m.jacReuses.Add(uint64(reuses))
	}
	b, merr := json.Marshal(&sum)
	if merr != nil {
		return
	}
	b = append(b, '\n')
	select {
	case out <- streamLine{data: b, summary: true}:
	case <-ctx.Done():
	}
}

// stream runs one admitted /v1/stream request: req.Steps Crank–Nicolson
// steps of the request's transient problem through the worker's ladder,
// workspace and analog seeding machinery, with chord-mode factorization
// reuse across iterations and steps. The cache rungs stay unbound —
// intermediate time levels are not content-addressable identities — and the
// per-request refill keeps trajectories bit-identical across workers,
// repeats and pool resizes exactly like buffered solves.
func (wk *worker) stream(ctx context.Context, req *Request, emit func(*core.Frame) error) (core.TransientReport, int, error) {
	e, err := wk.entry(req)
	if err != nil {
		return core.TransientReport{}, 0, err
	}
	ts, ok := e.sys.(core.TransientSystem)
	if !ok {
		return core.TransientReport{}, 0, fmt.Errorf("serve: problem %q cannot march in time", req.Problem)
	}
	if err := wk.refill(req, e); err != nil {
		return core.TransientReport{}, 0, err
	}
	wk.bind.rebind(false, cache.Key{}, cache.Key{}, 0, 0, 0)

	var seeder core.Seeder
	if req.Analog {
		if seeder, err = wk.seederFor(req.AnalogVars); err != nil {
			return core.TransientReport{}, 0, err
		}
	}
	var opts core.Options
	opts.Workspace = wk.ws
	opts.Perf = backendFor(req.Backend)
	opts.Procs = int(wk.procs.Load())
	opts.Newton.Chord = true
	if seeder != nil {
		opts.Seeder = seeder
	} else {
		opts.SkipAnalog = true
	}
	tl := core.TimeLoopOptions{Steps: req.Steps, Dt: req.Dt, Ladder: wk.ladder, Lopts: wk.lopts}
	rep, err := core.TimeLoop(ctx, ts, opts, tl, emit)
	return rep, e.sys.Dim(), err
}
