// This file is the serving stack's single sanctioned wall-clock consumer,
// extending the walltime allowlist beyond internal/prof on purpose: a
// service's queue-wait and solve-latency metrics are *measured* quantities —
// real time experienced by real clients — unlike the solver pipeline, whose
// speed/energy figures are modeled by internal/perfmodel and must stay
// machine-independent. Keeping every clock read behind these two helpers
// preserves that split: pipeline code cannot accidentally time itself,
// because only this file may mention time.Now/time.Since, and everything it
// measures flows into the metrics plane, never into a Report.
//
//pdevet:allow walltime request latency is a measured quantity; this file is the serving stack's only clock reader
package serve

import "time"

// now returns the current wall-clock instant for latency measurement.
func now() time.Time { return time.Now() }

// since returns the elapsed seconds from a now() instant.
func since(start time.Time) float64 { return time.Since(start).Seconds() }
