package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// rawSolve posts a solve request and returns the raw response body, for
// byte-level identity assertions.
func rawSolve(t *testing.T, url string, req Request) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	raw, err := io.ReadAll(hr.Body)
	if err != nil {
		t.Fatal(err)
	}
	return hr.StatusCode, raw
}

// stripMeasured removes the measured wall-time fields — the only fields
// that legitimately differ between a solve and its replay.
func stripMeasured(t *testing.T, raw []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal %q: %v", raw, err)
	}
	delete(m, "queue_seconds")
	delete(m, "solve_seconds")
	out, err := json.Marshal(m) // maps marshal with sorted keys: canonical
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestCacheHitByteIdentical is the replay contract: an exact-repeat
// request is served from the cache with a byte-identical body (modulo the
// measured wall-time fields), and the hit is visible in /metrics.
func TestCacheHitByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	reqs := []Request{
		{Problem: KindBurgersSteady, N: 5, Seed: 42},
		{Problem: KindBurgers2D, N: 4, Seed: 7, Analog: true},
		{Problem: KindBurgers1D, N: 32, Seed: 3},
	}
	for _, req := range reqs {
		code, cold := rawSolve(t, ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("%s: cold status %d: %s", req.Problem, code, cold)
		}
		for i := 0; i < 2; i++ {
			code, warm := rawSolve(t, ts.URL, req)
			if code != http.StatusOK {
				t.Fatalf("%s: repeat status %d: %s", req.Problem, code, warm)
			}
			if got, want := stripMeasured(t, warm), stripMeasured(t, cold); got != want {
				t.Fatalf("%s: replayed body diverged:\n cold: %s\n warm: %s", req.Problem, want, got)
			}
		}
	}
	if hits := s.m.cacheHits.Value(); hits != uint64(2*len(reqs)) {
		t.Fatalf("cache hits = %d, want %d", hits, 2*len(reqs))
	}
	if misses := s.m.cacheMisses.Value(); misses != uint64(len(reqs)) {
		t.Fatalf("cache misses = %d, want %d", misses, len(reqs))
	}
	body := scrapeMetrics(t, ts)
	for _, want := range []string{
		"pdeserve_cache_hits_total 6",
		"pdeserve_cache_misses_total 3",
		"pdeserve_cache_entries 3",
		`pdeserve_ladder_served_total{rung="cache"} 6`,
		`pdeserve_ladder_attempts_total{rung="cache"} 6`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestCacheWarmStartSweep is the continuation contract: a parameter sweep
// (same field realisation, nearby re) is served by the warm-start rung in
// measurably fewer Newton iterations than the cold solve of the same
// point, and the iteration histogram splits by start source.
func TestCacheWarmStartSweep(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	base := Request{Problem: KindBurgersSteady, N: 5, Seed: 11, Re: 1.0}
	code, cold, _ := postSolve(t, ts.URL, base)
	if code != http.StatusOK || !cold.Converged {
		t.Fatalf("cold base solve failed: %d %+v", code, cold)
	}

	next := base
	next.Re = 1.01 // within the default warm radius of the cached point
	// Cold control: the same sweep point on a cache-free server.
	_, tsOff := newTestServer(t, Config{Workers: 1, CacheEntries: -1})
	codeOff, coldNext, _ := postSolve(t, tsOff.URL, next)
	if codeOff != http.StatusOK || !coldNext.Converged {
		t.Fatalf("cold control solve failed: %d %+v", codeOff, coldNext)
	}

	code, warm, _ := postSolve(t, ts.URL, next)
	if code != http.StatusOK || !warm.Converged {
		t.Fatalf("warm sweep solve failed: %d %+v", code, warm)
	}
	if warm.Rung != "warm-start" {
		t.Fatalf("sweep point served by %q, want the warm-start rung (%+v)", warm.Rung, warm)
	}
	if warm.Degraded {
		t.Fatal("a warm-start serve is the planned first rung, not a degradation")
	}
	if warm.Iterations >= coldNext.Iterations {
		t.Fatalf("warm start took %d Newton iterations, cold control took %d — no continuation win",
			warm.Iterations, coldNext.Iterations)
	}
	if w := s.m.cacheWarmHits.Value(); w != 1 {
		t.Fatalf("warm hits = %d, want 1", w)
	}
	body := scrapeMetrics(t, ts)
	for _, want := range []string{
		"pdeserve_cache_warm_hits_total 1",
		`pdeserve_newton_iterations_count{start="warm"} 1`,
		`pdeserve_newton_iterations_count{start="cold"} 1`,
		`pdeserve_ladder_served_total{rung="warm-start"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestCacheOffIdentity is the standing determinism contract: cache-off
// responses are identical to cold cache-on responses, and repeated
// cache-off solves stay bit-identical to each other.
func TestCacheOffIdentity(t *testing.T) {
	// One worker each: with several workers, which fabric (mismatch draw
	// Seed+i) serves an analog request depends on load, not the request.
	_, tsOn := newTestServer(t, Config{Workers: 1})
	_, tsOff := newTestServer(t, Config{Workers: 1, CacheEntries: -1})
	reqs := []Request{
		{Problem: KindBurgersSteady, N: 5, Seed: 9},
		{Problem: KindBurgers2D, N: 4, Seed: 5, Analog: true},
		{Problem: KindBurgers1D, N: 48, Seed: 2},
	}
	for _, req := range reqs {
		codeOn, on := rawSolve(t, tsOn.URL, req)
		codeOff, off := rawSolve(t, tsOff.URL, req)
		if codeOn != http.StatusOK || codeOff != http.StatusOK {
			t.Fatalf("%s: status on=%d off=%d", req.Problem, codeOn, codeOff)
		}
		if got, want := stripMeasured(t, on), stripMeasured(t, off); got != want {
			t.Fatalf("%s: cold cache-on diverged from cache-off:\n  on: %s\n off: %s", req.Problem, got, want)
		}
		_, offAgain := rawSolve(t, tsOff.URL, req)
		if got, want := stripMeasured(t, offAgain), stripMeasured(t, off); got != want {
			t.Fatalf("%s: repeated cache-off solve diverged", req.Problem)
		}
	}
}

// TestDrainWithSingleflightWaiters pins graceful shutdown against the
// singleflight plane: BeginDrain while N identical requests share one
// in-flight solve must complete every waiter exactly once — one real
// solve, the rest served from the cache — with no goroutine left behind.
func TestDrainWithSingleflightWaiters(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16})
	req := Request{Problem: KindBurgersSteady, N: 5, Seed: 77}

	g0 := runtime.NumGoroutine()
	// Steal the only worker so every request parks: the first in
	// acquireWorker as the flight leader, the rest in Flight.Wait.
	wk := <-s.workers

	const n = 4
	var wg sync.WaitGroup
	codes := make([]int, n)
	resps := make([]Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, resp, _, err := trySolve(ts.URL, req)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			codes[i], resps[i] = code, resp
		}(i)
	}

	// Wait until all n are admitted (queueDepth counts admitted requests
	// that have not yet claimed a worker) and the n-1 followers have joined
	// the leader's flight; the leader cannot finish while the worker is
	// held here, so this rendezvous is race-free.
	deadline := time.Now().Add(5 * time.Second)
	for s.m.queueDepth.Value() != n || s.m.cacheFlightWaits.Value() != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("admitted %d/%d, flight waits %d/%d", s.m.queueDepth.Value(), n,
				s.m.cacheFlightWaits.Value(), n-1)
		}
		time.Sleep(time.Millisecond)
	}

	s.BeginDrain()
	s.workers <- wk // release the worker; the drain must now complete
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK || !resps[i].Converged {
			t.Fatalf("request %d: code %d, %+v", i, code, resps[i])
		}
		if resps[i].Residual != resps[0].Residual { //pdevet:allow floateq identical requests promise bit-identity
			t.Fatalf("waiter %d diverged from leader: %+v vs %+v", i, resps[i], resps[0])
		}
	}
	if waits := s.m.cacheFlightWaits.Value(); waits != n-1 {
		t.Fatalf("flight waits = %d, want %d", waits, n-1)
	}
	if hits := s.m.cacheHits.Value(); hits != n-1 {
		t.Fatalf("cache hits = %d, want %d (exactly one real solve)", hits, n-1)
	}
	if misses := s.m.cacheMisses.Value(); misses != 1 {
		t.Fatalf("cache misses = %d, want 1", misses)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	if code, _, _ := postSolve(t, ts.URL, req); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request got %d, want 503", code)
	}

	// No goroutine may outlive the drained requests (keep-alive client
	// connections are recycled explicitly so the count can settle).
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > g0+2 {
		http.DefaultClient.CloseIdleConnections()
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), g0)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerCacheHitPathZeroAlloc extends the steady-path contract to the
// cache plane: once a request identity is cached, the whole worker path —
// key construction, exact lookup, replay — allocates nothing.
func TestServerCacheHitPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is not meaningful under -race")
	}
	s := NewServer(Config{Workers: 1})
	wk := <-s.workers
	req := Request{Problem: KindBurgersSteady, N: 5, Seed: 8}
	if err := normalize(&req, &s.cfg); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := wk.run(context.Background(), &req, &resp); err != nil {
		t.Fatal(err) // cold solve: fills the shape cache and the solve cache
	}
	if resp.cacheHit {
		t.Fatal("first solve cannot be a hit")
	}
	allocs := testing.AllocsPerRun(10, func() {
		resp = Response{}
		if err := wk.run(context.Background(), &req, &resp); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-hit path allocated %.1f allocs/op, want 0", allocs)
	}
	if !resp.cacheHit || !resp.Converged {
		t.Fatalf("warm run must be a converged cache hit: %+v", resp)
	}
}

// TestServerCacheOffSteadyPathZeroAlloc pins that disabling the cache
// restores the original allocation-free steady path (the rungs skip
// without a trace).
func TestServerCacheOffSteadyPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is not meaningful under -race")
	}
	s := NewServer(Config{Workers: 1, CacheEntries: -1})
	wk := <-s.workers
	req := Request{Problem: KindBurgersSteady, N: 5, Seed: 8}
	if err := normalize(&req, &s.cfg); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := wk.run(context.Background(), &req, &resp); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		resp = Response{}
		if err := wk.run(context.Background(), &req, &resp); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-off steady path allocated %.1f allocs/op, want 0", allocs)
	}
	if resp.cacheOn || resp.cacheHit {
		t.Fatalf("cache-off solve consulted the cache: %+v", resp)
	}
}
