package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hybridpde/internal/adapt"
)

func TestResizeGrowShrinkClamped(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MinWorkers: 1, MaxWorkers: 4})
	if got := s.Workers(); got != 1 {
		t.Fatalf("initial workers = %d, want 1", got)
	}
	if got := s.Resize(3, adapt.ReasonQueue); got != 3 {
		t.Fatalf("resize to 3 achieved %d", got)
	}
	if got := s.Resize(100, adapt.ReasonShed); got != 4 {
		t.Fatalf("resize above max achieved %d, want clamp to 4", got)
	}
	if got := s.Resize(0, adapt.ReasonIdle); got != 1 {
		t.Fatalf("resize below min achieved %d, want clamp to 1", got)
	}

	// The pool still serves after the full up/down excursion.
	code, _, _ := postSolve(t, ts.URL, Request{Problem: KindBurgersSteady, N: 4, Seed: 7})
	if code != http.StatusOK {
		t.Fatalf("solve after resizes: status %d", code)
	}
	page := scrapeMetrics(t, ts)
	for _, want := range []string{
		"pdeserve_workers 1",
		`pdeserve_resizes_total{direction="up",reason="queue"} 1`,
		`pdeserve_resizes_total{direction="up",reason="shed"} 1`,
		`pdeserve_resizes_total{direction="down",reason="idle"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics missing %q:\n%s", want, page)
		}
	}
}

// TestResizeRebalancesProcs: with SolveProcs defaulted, every resize keeps
// Workers×SolveProcs within the GOMAXPROCS budget — the invariant that
// stops request- and solve-level parallelism from oversubscribing cores.
func TestResizeRebalancesProcs(t *testing.T) {
	s := NewServer(Config{Workers: 1, MinWorkers: 1, MaxWorkers: 4})
	gmp := runtime.GOMAXPROCS(0)
	expect := func(workers int) int {
		p := gmp / workers
		if p < 1 {
			p = 1
		}
		return p
	}
	for _, target := range []int{1, 4, 2, 3, 1} {
		got := s.Resize(target, "test")
		if got != target {
			t.Fatalf("resize to %d achieved %d", target, got)
		}
		procs := int(s.solveProcs.Load())
		if procs != expect(target) {
			t.Fatalf("workers=%d: solve procs %d, want %d", target, procs, expect(target))
		}
		if target <= gmp && target*procs > gmp {
			t.Fatalf("budget violated: %d workers × %d procs > GOMAXPROCS %d", target, procs, gmp)
		}
	}
}

// TestResizeBitIdentity: a server that has lived through an arbitrary
// resize history answers every request bit-identically to a fixed-size
// pool — scaling is a capacity decision, never a numerical one.
func TestResizeBitIdentity(t *testing.T) {
	elastic, ets := newTestServer(t, Config{Workers: 1, MinWorkers: 1, MaxWorkers: 3})
	_, fts := newTestServer(t, Config{Workers: 2})

	history := []int{3, 1, 2, 3, 1}
	step := 0
	for i := 0; i < 15; i++ {
		if i%3 == 0 {
			elastic.Resize(history[step], "test")
			step++
		}
		req := Request{Problem: KindBurgersSteady, N: 5, Seed: int64(100 + i)}
		_, er, _ := postSolve(t, ets.URL, req)
		_, fr, _ := postSolve(t, fts.URL, req)
		if er.Residual != fr.Residual || er.Iterations != fr.Iterations || er.Dim != fr.Dim { //pdevet:allow floateq bit-identity across resize history is the contract under test
			t.Fatalf("seed %d diverged across resize history: %+v vs %+v", req.Seed, er, fr)
		}
	}
}

// TestShrinkRetiresOnlyIdleWorkers: Resize blocks until a worker is idle —
// a busy worker finishes its solve before it can be parked — and the
// composition with BeginDrain leaves a consistent pool.
func TestShrinkRetiresOnlyIdleWorkers(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, MinWorkers: 1, MaxWorkers: 2})

	// Check both workers out, standing in for two solves in flight.
	busy1 := <-s.workers
	busy2 := <-s.workers

	s.BeginDrain()
	done := make(chan int)
	go func() { done <- s.Resize(1, adapt.ReasonIdle) }()

	select {
	case <-done:
		t.Fatal("shrink completed while every worker was mid-solve")
	case <-time.After(50 * time.Millisecond):
	}

	// First solve finishes: its worker returns to the pool and is the one
	// the shrink retires.
	s.workers <- busy1
	select {
	case got := <-done:
		if got != 1 {
			t.Fatalf("shrink achieved %d, want 1", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shrink did not complete after a worker went idle")
	}
	s.workers <- busy2

	if got := s.Workers(); got != 1 {
		t.Fatalf("workers after drain+shrink = %d, want 1", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after shrink: %v", err)
	}
}

// TestScaleUpWhileQueueFull: a request already waiting for a worker is
// served by the worker a concurrent scale-up adds — growth absorbs queued
// work immediately, without re-admission.
func TestScaleUpWhileQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MinWorkers: 1, MaxWorkers: 2, QueueDepth: 4})

	// Starve the pool so the next request queues.
	busy := <-s.workers
	type result struct {
		code int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		code, _, _, err := trySolve(ts.URL, Request{Problem: KindBurgersSteady, N: 4, Seed: 5})
		done <- result{code, err}
	}()

	// The request can only be waiting: the sole worker is checked out.
	select {
	case r := <-done:
		t.Fatalf("request completed with a starved pool: %+v", r)
	case <-time.After(100 * time.Millisecond):
	}

	if got := s.Resize(2, adapt.ReasonQueue); got != 2 {
		t.Fatalf("scale-up achieved %d", got)
	}
	select {
	case r := <-done:
		if r.err != nil || r.code != http.StatusOK {
			t.Fatalf("queued request after scale-up: code=%d err=%v", r.code, r.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued request never ran on the scaled-up pool")
	}
	s.workers <- busy
}

// TestChaosWithAutoscaler: the tick-driven controller resizing a pool
// under injected faults and concurrent load never surfaces a server error
// and lands back inside its bounds. Run with -race, this is also the
// autoscaler's data-race probe.
func TestChaosWithAutoscaler(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:    1,
		MinWorkers: 1,
		MaxWorkers: 4,
		QueueDepth: 16,
		Faults:     mustSpec(t, "seed 3\nrailed 0\nadc-drift * 0.08 0.02\nburst 0.5 2 5 25\n"),
	})

	ctx, cancel := context.WithCancel(context.Background())
	ticks := make(chan time.Time)
	ctrl := adapt.New(adapt.Config{Min: 1, Max: 4, ScaleUpQueue: 1, CooldownTicks: 1, IdleTicks: 2})
	var ctrlDone sync.WaitGroup
	ctrlDone.Add(1)
	go func() {
		defer ctrlDone.Done()
		adapt.Run(ctx, ticks, ctrl, s)
	}()

	const loaders = 6
	var wg sync.WaitGroup
	codes := make(chan int, loaders*8)
	for i := 0; i < loaders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				code, _, _, err := trySolve(ts.URL, Request{
					Problem: KindBurgers2D, N: 4, Seed: int64(i*100 + j), Analog: true, AnalogVars: 2,
				})
				if err == nil {
					codes <- code
				}
			}
		}(i)
	}

	feeding := make(chan struct{})
	go func() {
		defer close(feeding)
		for i := 0; i < 40; i++ {
			select {
			case ticks <- time.Time{}:
			case <-ctx.Done():
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	wg.Wait()
	<-feeding
	cancel()
	ctrlDone.Wait()
	close(codes)

	for code := range codes {
		if code >= 500 {
			t.Fatalf("server error %d under chaos + autoscaler", code)
		}
	}
	if got := s.Workers(); got < 1 || got > 4 {
		t.Fatalf("workers %d escaped [1, 4]", got)
	}
}

// postSolveWithBudget posts a solve with the gateway's deadline-budget
// header attached.
func postSolveWithBudget(t *testing.T, url, budget string, req Request) (int, Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(DeadlineBudgetHeader, budget)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestDeadlineBudgetSpentRejectsBeforeAdmission(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, resp := postSolveWithBudget(t, ts.URL, "0", Request{Problem: KindBurgersSteady, N: 4})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("spent budget: status %d, want 504 (%+v)", code, resp)
	}
	page := scrapeMetrics(t, ts)
	if !strings.Contains(page, "pdeserve_deadline_budget_rejects_total 1") {
		t.Fatalf("budget reject not counted:\n%s", page)
	}
}

func TestDeadlineBudgetClampsTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, DefaultTimeout: 10 * time.Second})
	code, resp := postSolveWithBudget(t, ts.URL, "3000", Request{Problem: KindBurgersSteady, N: 4, Seed: 9})
	if code != http.StatusOK {
		t.Fatalf("clamped solve: status %d (%+v)", code, resp)
	}
	page := scrapeMetrics(t, ts)
	if !strings.Contains(page, "pdeserve_deadline_budget_clamped_total 1") {
		t.Fatalf("budget clamp not counted:\n%s", page)
	}
	// A budget looser than the resolved deadline must not count as a clamp.
	code, _ = postSolveWithBudget(t, ts.URL, "60000", Request{Problem: KindBurgersSteady, N: 4, Seed: 10})
	if code != http.StatusOK {
		t.Fatalf("loose-budget solve: status %d", code)
	}
	page = scrapeMetrics(t, ts)
	if !strings.Contains(page, "pdeserve_deadline_budget_clamped_total 1") {
		t.Fatalf("loose budget was counted as a clamp:\n%s", page)
	}
}
