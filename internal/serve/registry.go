package serve

import (
	"fmt"
	"math"

	"hybridpde/internal/core"
)

// Problem kinds the service accepts. Each grid kind maps a (n, re, order,
// seed, bound) tuple to a deterministic problem instance, so identical
// requests produce bit-identical solves; the netlist kind validates an
// analog program text against a calibrated fabric.
const (
	// KindBurgers2D is one Crank–Nicolson step of the paper's flagship
	// 2-D viscous Burgers problem on an n×n interior grid (2n² unknowns).
	KindBurgers2D = "burgers2d"
	// KindBurgersSteady is the steady method-of-lines root system of the
	// 2-D Burgers problem, re-rooted per request so a solution exists.
	KindBurgersSteady = "burgers-steady"
	// KindBurgers1D is one Crank–Nicolson step of 1-D viscous Burgers on n
	// interior nodes (tridiagonal Jacobian).
	KindBurgers1D = "burgers1d"
	// KindNetlist parses and validates an analog program (inst/wire/set/
	// commit/start/stop directives) against a calibrated fabric via
	// analog.ParseNetlist.
	KindNetlist = "netlist"
)

// Request is the POST /v1/solve body.
type Request struct {
	// Problem selects the registry kind (see Kind* constants).
	Problem string `json:"problem"`
	// N is the grid size: n×n interior nodes for 2-D kinds, n interior
	// nodes for 1-D.
	N int `json:"n,omitempty"`
	// Re is the Reynolds number. Default 1.
	Re float64 `json:"re,omitempty"`
	// Order is the finite-difference order of the 2-D kinds: 2 or 4.
	Order int `json:"order,omitempty"`
	// Seed determines the random fields deterministically. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// Bound is the ± range fields and forcing are drawn from. Default 0.5.
	Bound float64 `json:"bound,omitempty"`
	// Backend prices the digital polish: "cpu" (default), "gpu", "analog-la".
	Backend string `json:"backend,omitempty"`
	// Analog enables the analog seeding stage (the paper's pipeline).
	Analog bool `json:"analog,omitempty"`
	// AnalogVars caps the accelerator capacity in scalar variables. When
	// smaller than the problem dimension the seed is produced by red-black
	// Gauss-Seidel decomposition (§6.3). Default: the problem dimension.
	AnalogVars int `json:"analog_vars,omitempty"`
	// DeadlineMillis bounds the solve (queue wait included) in
	// milliseconds. Clamped to the server's MaxTimeout.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// Netlist is the program text of the netlist kind.
	Netlist string `json:"netlist,omitempty"`

	// Stream fields (POST /v1/stream only; /v1/solve rejects them).
	// Steps is the number of Crank–Nicolson steps to march, one NDJSON
	// frame each. Default 16, capped by the server's -max-steps.
	Steps int `json:"steps,omitempty"`
	// Dt labels the trajectory's time axis: frames carry t = step·dt. The
	// isotropic discretization fixes the numerical step to the grid
	// spacing, so dt is reporting-only. Default 1.
	Dt float64 `json:"dt,omitempty"`
	// IncludeSolution asks for the full solution vector on every frame
	// (frames carry only a checksum by default).
	IncludeSolution bool `json:"include_solution,omitempty"`
}

// Response is the POST /v1/solve reply. Solve fields are set for grid
// kinds, program fields for the netlist kind.
type Response struct {
	Problem string `json:"problem"`
	Dim     int    `json:"dim,omitempty"`

	// Solve outcome.
	Converged       bool    `json:"converged,omitempty"`
	Iterations      int     `json:"newton_iterations,omitempty"`
	Residual        float64 `json:"residual,omitempty"`
	InitialResidual float64 `json:"initial_residual,omitempty"`
	SeedResidual    float64 `json:"seed_residual,omitempty"`
	AnalogUsed      bool    `json:"analog_used,omitempty"`
	SeedAccepted    bool    `json:"seed_accepted,omitempty"`
	Decomposed      bool    `json:"decomposed,omitempty"`
	Subproblems     int     `json:"subproblems,omitempty"`
	GSSweeps        int     `json:"gs_sweeps,omitempty"`
	// Modeled cost (internal/perfmodel), machine-independent.
	ModelSeconds float64 `json:"model_seconds,omitempty"`
	ModelEnergyJ float64 `json:"model_energy_j,omitempty"`

	// Degradation-ladder outcome. Degraded means the solve converged on a
	// rung below the planned pipeline — a 200 with this flag set is the
	// structured alternative to failing the request.
	Degraded     bool   `json:"degraded,omitempty"`
	Rung         string `json:"rung,omitempty"`
	SeedRejected bool   `json:"seed_rejected,omitempty"`
	RungAttempts int    `json:"rung_attempts,omitempty"`
	// fallback is the metrics plane's view of the ladder account. It
	// aliases worker-owned storage, so it must be consumed (account) before
	// the worker is released; it is deliberately not serialised.
	fallback *core.FallbackReport
	// Cache outcome flags for the metrics plane. Deliberately not
	// serialised: an exact-repeat request must produce a byte-identical
	// body whether it was solved or replayed.
	cacheOn    bool // the solve consulted the cache
	cacheHit   bool // served by an exact content-address replay
	cacheWarm  bool // served by the warm-start continuation rung
	cacheStale bool // a warm-start candidate was rejected by the gate

	// Netlist program outcome.
	Components  int  `json:"components,omitempty"`
	Connections int  `json:"connections,omitempty"`
	Committed   bool `json:"committed,omitempty"`
	Running     bool `json:"running,omitempty"`

	// Measured wall time (the metrics plane's view of this request).
	QueueSeconds float64 `json:"queue_seconds"`
	SolveSeconds float64 `json:"solve_seconds"`

	Error string `json:"error,omitempty"`
}

// KindInfo describes one registry entry for GET /v1/problems.
type KindInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	MaxN        int    `json:"max_n,omitempty"`
	DefaultN    int    `json:"default_n,omitempty"`
	// Streamable marks transient kinds POST /v1/stream accepts; MaxSteps
	// is the server-side cap on a stream's step count (-max-steps).
	Streamable bool `json:"streamable,omitempty"`
	MaxSteps   int  `json:"max_steps,omitempty"`
}

// maxNetlistBytes bounds the netlist program text; the fabric has a few
// hundred components, so real programs are far smaller.
const maxNetlistBytes = 1 << 16

// maxBurgers1DNodes bounds the 1-D grid; a tridiagonal solve at this size
// is still well under a millisecond.
const maxBurgers1DNodes = 4096

// Kinds lists the registry for a server configured with maxGridN and a
// stream step cap of maxSteps.
func Kinds(maxGridN, maxSteps int) []KindInfo {
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	return []KindInfo{
		{Name: KindBurgers2D, Description: "one Crank–Nicolson step of 2-D viscous Burgers (2n² unknowns); streamable as a trajectory via POST /v1/stream", MaxN: maxGridN, DefaultN: defaultGridN, Streamable: true, MaxSteps: maxSteps},
		{Name: KindBurgersSteady, Description: "steady method-of-lines 2-D Burgers root system, rooted per request", MaxN: maxGridN, DefaultN: defaultGridN},
		{Name: KindBurgers1D, Description: "one Crank–Nicolson step of 1-D viscous Burgers (tridiagonal); streamable as a trajectory via POST /v1/stream", MaxN: maxBurgers1DNodes, DefaultN: default1DN, Streamable: true, MaxSteps: maxSteps},
		{Name: KindNetlist, Description: "parse + validate an analog program text against a calibrated fabric"},
	}
}

const (
	defaultGridN = 6
	default1DN   = 64
	defaultBound = 0.5
	// defaultSteps is a stream's step count when the request leaves it
	// unset; defaultMaxSteps the server-side cap (-max-steps).
	defaultSteps    = 16
	defaultMaxSteps = 256
	// maxDt bounds the reporting-only frame time spacing.
	maxDt = 1e6
)

// Normalize fills request defaults and validates ranges exactly the way a
// backend configured with maxGridN would: the exported form the cluster
// gateway uses so routing keys are computed over the same normalized
// identity the backend will cache under. A request the gateway normalizes
// successfully is one every identically-configured backend will accept.
func Normalize(req *Request, maxGridN int) error {
	cfg := Config{MaxGridN: maxGridN}
	if cfg.MaxGridN <= 0 {
		cfg.MaxGridN = 12
	}
	return normalize(req, &cfg)
}

// NormalizeStream is Normalize for POST /v1/stream bodies: the gateway's
// pre-routing validation with the same transient-kind, step-cap and dt
// rules a backend configured with (maxGridN, maxSteps) applies.
func NormalizeStream(req *Request, maxGridN, maxSteps int) error {
	cfg := Config{MaxGridN: maxGridN, MaxSteps: maxSteps}
	if cfg.MaxGridN <= 0 {
		cfg.MaxGridN = 12
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = defaultMaxSteps
	}
	return normalizeStream(req, &cfg)
}

// normalize validates a POST /v1/solve body. Stream-only fields are
// rejected up front — a buffered solve endpoint silently accepting steps
// would pin a worker for the whole trajectory with no frames to show.
func normalize(req *Request, cfg *Config) error {
	if req.Steps != 0 {
		return fmt.Errorf("serve: steps is a streaming field; POST /v1/stream serves transient trajectories")
	}
	if req.Dt != 0 { //pdevet:allow floateq zero is the JSON-absent sentinel (assigned by encoding/json, never computed)
		return fmt.Errorf("serve: dt is a streaming field; POST /v1/stream serves transient trajectories")
	}
	if req.IncludeSolution {
		return fmt.Errorf("serve: include_solution is a streaming field; POST /v1/stream serves transient trajectories")
	}
	return normalizeBase(req, cfg)
}

// normalizeStream validates a POST /v1/stream body: only the transient
// grid kinds march in time, the step count is capped server-side
// (-max-steps) so a hostile body cannot pin a worker for minutes, and dt
// is a bounded positive label.
func normalizeStream(req *Request, cfg *Config) error {
	switch req.Problem {
	case KindBurgers2D, KindBurgers1D:
	case KindBurgersSteady, KindNetlist:
		return fmt.Errorf("serve: problem %q has no time loop; streaming applies to the transient grid kinds (%s, %s)", req.Problem, KindBurgers2D, KindBurgers1D)
	}
	if req.Steps == 0 {
		req.Steps = defaultSteps
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	if req.Steps < 1 || req.Steps > maxSteps {
		return fmt.Errorf("serve: steps=%d outside [1, %d] (the server's -max-steps cap)", req.Steps, maxSteps)
	}
	if req.Dt == 0 { //pdevet:allow floateq zero is the JSON-absent sentinel (assigned by encoding/json, never computed)
		req.Dt = 1
	}
	if !(req.Dt > 0) || req.Dt > maxDt {
		return fmt.Errorf("serve: dt=%g outside (0, %g]", req.Dt, maxDt)
	}
	return normalizeBase(req, cfg)
}

// normalizeBase fills request defaults and validates ranges against the
// server configuration. It returns a client-facing error for invalid
// requests.
func normalizeBase(req *Request, cfg *Config) error {
	switch req.Problem {
	case KindBurgers2D, KindBurgersSteady:
		if req.N == 0 {
			req.N = defaultGridN
		}
		if req.N < 1 || req.N > cfg.MaxGridN {
			return fmt.Errorf("serve: n=%d outside [1, %d] for %s", req.N, cfg.MaxGridN, req.Problem)
		}
		if req.Order == 0 {
			req.Order = 2
		}
		if req.Order != 2 && req.Order != 4 {
			return fmt.Errorf("serve: order=%d must be 2 or 4", req.Order)
		}
	case KindBurgers1D:
		if req.N == 0 {
			req.N = default1DN
		}
		if req.N < 1 || req.N > maxBurgers1DNodes {
			return fmt.Errorf("serve: n=%d outside [1, %d] for %s", req.N, maxBurgers1DNodes, req.Problem)
		}
		if req.Order != 0 {
			return fmt.Errorf("serve: order is not configurable for %s", req.Problem)
		}
	case KindNetlist:
		if req.Netlist == "" {
			return fmt.Errorf("serve: netlist kind requires a netlist program text")
		}
		if len(req.Netlist) > maxNetlistBytes {
			return fmt.Errorf("serve: netlist text %d bytes exceeds %d", len(req.Netlist), maxNetlistBytes)
		}
		return nil
	case "":
		return fmt.Errorf("serve: request is missing the problem kind")
	default:
		return fmt.Errorf("serve: unknown problem kind %q", req.Problem)
	}

	// Grid kinds share the numeric knobs.
	if req.Re == 0 { //pdevet:allow floateq zero is the JSON-absent sentinel (assigned by encoding/json, never computed)
		req.Re = 1
	}
	if req.Re < 0 || math.IsNaN(req.Re) || math.IsInf(req.Re, 0) {
		return fmt.Errorf("serve: re=%g must be positive and finite", req.Re)
	}
	if req.Bound == 0 { //pdevet:allow floateq zero is the JSON-absent sentinel (assigned by encoding/json, never computed)
		req.Bound = defaultBound
	}
	if req.Bound < 0 || req.Bound > 3 || math.IsNaN(req.Bound) {
		return fmt.Errorf("serve: bound=%g outside (0, 3] (the paper's §5.4 dynamic range)", req.Bound)
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	switch req.Backend {
	case "", "cpu", "gpu", "analog-la":
	default:
		return fmt.Errorf("serve: unknown backend %q (want cpu, gpu or analog-la)", req.Backend)
	}
	dim := problemDim(req)
	if req.AnalogVars < 0 {
		return fmt.Errorf("serve: analog_vars=%d must be non-negative", req.AnalogVars)
	}
	if req.Analog {
		if req.AnalogVars == 0 {
			req.AnalogVars = dim
		}
		if req.AnalogVars > maxAnalogVars {
			return fmt.Errorf("serve: analog_vars=%d exceeds the practical accelerator limit %d (paper Table 4)", req.AnalogVars, maxAnalogVars)
		}
		if dim > maxAnalogVars && req.AnalogVars >= dim {
			return fmt.Errorf("serve: dimension %d exceeds the practical accelerator limit %d; set analog_vars below the dimension to decompose", dim, maxAnalogVars)
		}
	} else if req.AnalogVars != 0 {
		return fmt.Errorf("serve: analog_vars requires analog=true")
	}
	return nil
}

// problemDim returns the unknown count of a normalized grid request.
func problemDim(req *Request) int {
	switch req.Problem {
	case KindBurgers2D, KindBurgersSteady:
		return 2 * req.N * req.N
	case KindBurgers1D:
		return req.N
	}
	return 0
}
