package serve

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramCumulativeBuckets(t *testing.T) {
	h := newHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.observe(v)
	}
	var sb strings.Builder
	(&metrics{}).writeHistogram(&sb, "x", "help", h)
	out := sb.String()
	for _, want := range []string{
		`x_bucket{le="1"} 1`,
		`x_bucket{le="2"} 3`,
		`x_bucket{le="4"} 4`,
		`x_bucket{le="+Inf"} 5`,
		`x_sum 106.5`,
		`x_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	h := newHistogram(1, 2)
	h.observe(1) // le="1" is inclusive, Prometheus semantics
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts[0] != 1 {
		t.Fatalf("observation at bound landed in counts %v, want first bucket", h.counts)
	}
}

func TestCounterVecChildrenAndRenderOrder(t *testing.T) {
	m := newServeMetrics()
	m.requests.with("burgers2d", "200").inc()
	m.requests.with("burgers2d", "200").inc()
	m.requests.with("netlist", "422").inc()
	var sb strings.Builder
	m.writeProm(&sb)
	out := sb.String()
	i := strings.Index(out, `pdeserve_requests_total{problem="burgers2d",code="200"} 2`)
	j := strings.Index(out, `pdeserve_requests_total{problem="netlist",code="422"} 1`)
	if i < 0 || j < 0 {
		t.Fatalf("labelled children missing:\n%s", out)
	}
	if i > j {
		t.Fatal("labelled children not rendered in sorted order")
	}
	// Every family must carry HELP and TYPE headers.
	for _, typ := range []string{"counter", "gauge", "histogram"} {
		if !strings.Contains(out, " "+typ+"\n") {
			t.Errorf("no %s TYPE header in exposition", typ)
		}
	}
}

// TestMetricsScrapeByteIdentical pins the contract the maprange lint rule
// guards statically: with enough labelled children that Go's per-iteration
// map order randomization would show through an unsorted render, repeated
// scrapes of unchanged state must be byte-identical.
func TestMetricsScrapeByteIdentical(t *testing.T) {
	m := newServeMetrics()
	problems := []string{"burgers2d", "netlist", "bratu1d", "fisher", "heat3d", "allencahn"}
	codes := []string{"200", "422", "503"}
	for _, pr := range problems {
		for _, c := range codes {
			m.requests.with(pr, c).inc()
		}
		m.newtonIters.with(pr).observe(7)
		m.ladderAttempts.with(pr).inc()
	}
	var first strings.Builder
	m.writeProm(&first)
	for i := 0; i < 30; i++ {
		var again strings.Builder
		m.writeProm(&again)
		if again.String() != first.String() {
			t.Fatalf("scrape %d differs from first scrape:\n--- first\n%s\n--- scrape %d\n%s", i, first.String(), i, again.String())
		}
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := newServeMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.requests.with("burgers2d", "200").inc()
				m.queueDepth.inc()
				m.solveLatency.observe(float64(i) * 1e-4)
				m.queueDepth.dec()
			}
		}(g)
	}
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		sb.Reset()
		m.writeProm(&sb) // scrape concurrently with writes
	}
	wg.Wait()
	if got := m.requests.with("burgers2d", "200").value(); got != 4000 {
		t.Fatalf("requests counter = %d, want 4000", got)
	}
	if got := m.queueDepth.value(); got != 0 {
		t.Fatalf("queue depth gauge = %d, want 0", got)
	}
	m.solveLatency.mu.Lock()
	defer m.solveLatency.mu.Unlock()
	if m.solveLatency.count != 4000 {
		t.Fatalf("histogram count = %d, want 4000", m.solveLatency.count)
	}
}

func TestFormatBound(t *testing.T) {
	cases := map[float64]string{0.00025: "0.00025", 1.024: "1.024", 8.192: "8.192", 1: "1", 512: "512"}
	for in, want := range cases {
		if got := formatBound(in); got != want {
			t.Errorf("formatBound(%v) = %q, want %q", in, got, want)
		}
	}
}
