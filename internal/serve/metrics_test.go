package serve

import (
	"strings"
	"sync"
	"testing"
)

// The metric kit itself (histograms, vectors, render determinism) is
// tested in internal/promtext; these tests pin the service-level contract:
// the fixed family set, its exposition order, and byte-identical scrapes
// of the whole page.

func TestServeMetricsFamiliesAndOrder(t *testing.T) {
	m := newServeMetrics()
	m.requests.With("burgers2d", "200").Inc()
	m.requests.With("burgers2d", "200").Inc()
	m.requests.With("netlist", "422").Inc()
	var sb strings.Builder
	m.writeProm(&sb)
	out := sb.String()
	i := strings.Index(out, `pdeserve_requests_total{problem="burgers2d",code="200"} 2`)
	j := strings.Index(out, `pdeserve_requests_total{problem="netlist",code="422"} 1`)
	if i < 0 || j < 0 {
		t.Fatalf("labelled children missing:\n%s", out)
	}
	if i > j {
		t.Fatal("labelled children not rendered in sorted order")
	}
	// Every family must carry HELP and TYPE headers.
	for _, typ := range []string{"counter", "gauge", "histogram"} {
		if !strings.Contains(out, " "+typ+"\n") {
			t.Errorf("no %s TYPE header in exposition", typ)
		}
	}
	// The fixed family set stays present even at zero.
	for _, name := range []string{
		"pdeserve_queue_rejects_total", "pdeserve_queue_depth",
		"pdeserve_inflight_solves", "pdeserve_draining",
		"pdeserve_solve_latency_seconds", "pdeserve_cache_hits_total",
		"pdeserve_ladder_attempts_total", "pdeserve_fault_injection_active",
	} {
		if !strings.Contains(out, "# HELP "+name+" ") {
			t.Errorf("family %s missing from exposition", name)
		}
	}
}

// TestMetricsScrapeByteIdentical pins the contract the maprange lint rule
// guards statically: with enough labelled children that Go's per-iteration
// map order randomization would show through an unsorted render, repeated
// scrapes of unchanged state must be byte-identical.
func TestMetricsScrapeByteIdentical(t *testing.T) {
	m := newServeMetrics()
	problems := []string{"burgers2d", "netlist", "bratu1d", "fisher", "heat3d", "allencahn"}
	codes := []string{"200", "422", "503"}
	for _, pr := range problems {
		for _, c := range codes {
			m.requests.With(pr, c).Inc()
		}
		m.newtonIters.With(pr).Observe(7)
		m.ladderAttempts.With(pr).Inc()
	}
	var first strings.Builder
	m.writeProm(&first)
	for i := 0; i < 30; i++ {
		var again strings.Builder
		m.writeProm(&again)
		if again.String() != first.String() {
			t.Fatalf("scrape %d differs from first scrape:\n--- first\n%s\n--- scrape %d\n%s", i, first.String(), i, again.String())
		}
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := newServeMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.requests.With("burgers2d", "200").Inc()
				m.queueDepth.Inc()
				m.solveLatency.Observe(float64(i) * 1e-4)
				m.queueDepth.Dec()
			}
		}(g)
	}
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		sb.Reset()
		m.writeProm(&sb) // scrape concurrently with writes
	}
	wg.Wait()
	if got := m.requests.With("burgers2d", "200").Value(); got != 4000 {
		t.Fatalf("requests counter = %d, want 4000", got)
	}
	if got := m.queueDepth.Value(); got != 0 {
		t.Fatalf("queue depth gauge = %d, want 0", got)
	}
	if got := m.solveLatency.Count(); got != 4000 {
		t.Fatalf("histogram count = %d, want 4000", got)
	}
}
