// Package serve is the network-facing entry point of the hybrid pipeline: a
// stdlib-only HTTP/JSON service that treats the accelerator the way the
// paper pitches it (§2, §7) — as a shared co-processor for PDE workloads
// behind a queueing discipline. Requests against a problem registry
// (Burgers steady/MOL, the 2-D grid problems, netlist programs) are
// admitted into a bounded queue with explicit backpressure (429 +
// Retry-After when full), executed by a worker pool sized to GOMAXPROCS
// where each worker owns a pooled core.Workspace and per-shape problem
// caches so the steady-state request path stays allocation-free, honor
// per-request deadlines through context, and drain in flight on graceful
// shutdown. A metrics plane (/metrics in Prometheus text exposition,
// /healthz, pprof on the debug mux) rides alongside.
package serve

import (
	"context"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hybridpde/internal/adapt"
	"hybridpde/internal/cache"
	"hybridpde/internal/core"
	"hybridpde/internal/fault"
)

// Config tunes the service. The zero value is usable: every field has a
// production-shaped default.
type Config struct {
	// Workers is the initial solve concurrency. Default:
	// runtime.GOMAXPROCS(0), the sizing that keeps one CPU-bound solve per
	// core.
	Workers int
	// MinWorkers and MaxWorkers bound Resize (the adaptive controller's
	// range). Both default to Workers, which pins the pool at a fixed size
	// — exactly the pre-autoscaling behaviour. Workers is clamped into
	// [MinWorkers, MaxWorkers].
	MinWorkers int
	MaxWorkers int
	// QueueDepth bounds requests admitted but not yet executing. Beyond
	// Workers+QueueDepth outstanding requests the service sheds load with
	// 429. Default 64.
	QueueDepth int
	// MaxGridN caps the 2-D grid size a request may ask for. Default 12
	// (2·12² = 288 unknowns per solve).
	MaxGridN int
	// DefaultTimeout bounds a solve (queue wait included) when the request
	// carries no deadline_ms. Default 5s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-supplied deadlines. Default 30s.
	MaxTimeout time.Duration
	// Seed is the base seed of worker fabrics and accelerators; worker i
	// uses Seed+i so hardware mismatch draws are independent per worker
	// yet the whole fleet is reproducible. Default 1.
	Seed int64
	// MaxBodyBytes bounds the request body. Default 1 MiB.
	MaxBodyBytes int64
	// RetryAfterSeconds is the Retry-After hint on 429 responses.
	// Default 1.
	RetryAfterSeconds int
	// Faults, when non-nil, injects the given fault specification into
	// every worker accelerator (chaos mode). Injector seeds are salted per
	// worker and capacity, so a fixed Seed reproduces the whole fleet's
	// fault sequence. The spec must be valid (ParseSpec output is; validate
	// hand-built specs first).
	Faults *fault.Spec
	// SeedGate is the degradation ladder's seed-quality gate factor: an
	// analog seed is kept only when ‖F(seed)‖ ≤ SeedGate·‖F(start)‖.
	// Default 1 — reject seeds that make the start worse.
	SeedGate float64
	// MaxRetries bounds per-request retries of degraded or transiently
	// failed solves (only attempted while the fault spec contains transient
	// faults, or on non-client solve errors). 0 defaults to 2; negative
	// disables retries.
	MaxRetries int
	// RetryBackoff is the base of the capped exponential jittered backoff
	// between retries. Default 10ms.
	RetryBackoff time.Duration
	// SolveProcs is each solve's intra-solve worker count (core.Options
	// Procs). Request-level and solve-level parallelism compose
	// multiplicatively — Workers solves × SolveProcs goroutines each — so
	// the default budgets the machine instead of oversubscribing it:
	// max(1, GOMAXPROCS/Workers), which is 1 under the default
	// Workers = GOMAXPROCS sizing (fully loaded servers want request
	// throughput) and spends the idle cores on latency when Workers is set
	// low. Negative disables intra-solve parallelism explicitly. Responses
	// are bit-identical at every setting.
	SolveProcs int
	// CacheEntries bounds the content-addressed solve cache shared by all
	// workers. 0 uses the default capacity (cache.DefaultCapacity);
	// negative disables the cache entirely. Chaos mode (Faults non-nil)
	// also disables it: injected-fault outcomes are per-run draws and must
	// not be frozen into replays. Cold solves with the cache enabled are
	// bit-identical to cache-off solves.
	CacheEntries int
	// WarmRadius is the parameter-space distance (Euclidean over
	// (re, bound)) within which a cached neighbour may warm-start a solve.
	// Default 0.25; negative disables warm starting while keeping exact
	// hits.
	WarmRadius float64
	// MaxSteps caps the step count of a POST /v1/stream trajectory, so a
	// hostile body cannot pin a worker for minutes. Default 256.
	MaxSteps int
	// StreamBuffer bounds the frames buffered between the solving worker
	// and a stream's network writer: a slow client first consumes the
	// buffer, then the worker blocks on it — bounded by the request
	// deadline — instead of buffering the whole trajectory. Default 8.
	StreamBuffer int
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = c.Workers
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = c.Workers
	}
	if c.MaxWorkers < c.MinWorkers {
		c.MaxWorkers = c.MinWorkers
	}
	if c.Workers < c.MinWorkers {
		c.Workers = c.MinWorkers
	}
	if c.Workers > c.MaxWorkers {
		c.Workers = c.MaxWorkers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxGridN <= 0 {
		c.MaxGridN = 12
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 1
	}
	if c.SeedGate <= 0 {
		c.SeedGate = 1
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.SolveProcs == 0 {
		c.SolveProcs = runtime.GOMAXPROCS(0) / c.Workers
	}
	if c.SolveProcs < 1 {
		c.SolveProcs = 1
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = cache.DefaultCapacity
	}
	if c.WarmRadius == 0 { //pdevet:allow floateq zero is the config-absent sentinel (never computed)
		c.WarmRadius = defaultWarmRadius
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = defaultMaxSteps
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = 8
	}
}

// Server is the solve service. Create with NewServer, expose via Handler
// (API) and DebugHandler (pprof), shut down with BeginDrain + Drain.
type Server struct {
	cfg Config
	m   *metrics
	// workers is the pool: checking a worker out grants the right to
	// execute one solve. Capacity MaxWorkers; only curWorkers of them
	// circulate, the rest sit parked.
	workers chan *worker
	// queueSlots bounds outstanding (waiting + executing) requests at
	// MaxWorkers+QueueDepth; a failed non-blocking acquire is the
	// load-shed signal. The bound is sized for the pool's ceiling so a
	// scale-up immediately has admitted work to absorb.
	queueSlots chan struct{}
	// resizeMu serialises Resize; curWorkers, parked and seedSeq are
	// guarded by it. Parked workers keep their warm per-shape caches and
	// their stable seed, so a shrink→grow cycle restores exactly the
	// workers it retired (LIFO) instead of paying cold caches twice.
	resizeMu   sync.Mutex
	curWorkers int
	parked     []*worker
	seedSeq    int64
	// solveProcs is the per-solve parallelism every worker reads at solve
	// time; Resize rebalances it (when SolveProcs was defaulted) so
	// Workers×SolveProcs stays within the GOMAXPROCS budget at every step.
	solveProcs atomic.Int32
	autoProcs  bool
	// draining is set by BeginDrain; the admission gate then sheds
	// everything new while in-flight requests finish.
	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup
	pool     *core.WorkspacePool
	// cache is the content-addressed solve cache shared by every worker;
	// nil when disabled (CacheEntries < 0 or chaos mode).
	cache *cache.Store
	// transientFaults caches Faults.Transient(): whether retrying a
	// degraded solve can hope for a different outcome.
	transientFaults bool
}

// NewServer builds the service: the worker fleet is created eagerly (each
// with its pooled Workspace) so the first request of each worker pays no
// setup beyond its problem-shape cache fill.
func NewServer(cfg Config) *Server {
	autoProcs := cfg.SolveProcs == 0
	cfg.defaults()
	s := &Server{
		cfg:        cfg,
		m:          newServeMetrics(),
		workers:    make(chan *worker, cfg.MaxWorkers),
		queueSlots: make(chan struct{}, cfg.MaxWorkers+cfg.QueueDepth),
		pool:       core.NewWorkspacePool(),
		curWorkers: cfg.Workers,
		seedSeq:    int64(cfg.Workers),
		autoProcs:  autoProcs,
	}
	s.solveProcs.Store(int32(cfg.SolveProcs))
	if cfg.CacheEntries > 0 && cfg.Faults == nil {
		s.cache = cache.New(cfg.CacheEntries)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers <- newWorker(&s.cfg, s.pool, cfg.Seed+int64(i), s.cache, &s.solveProcs)
	}
	if cfg.Faults != nil {
		s.transientFaults = cfg.Faults.Transient()
		s.m.faultsActive.Set(int64(len(cfg.Faults.Faults)))
	}
	s.m.workers.Set(int64(cfg.Workers))
	s.m.solveProcsGauge.Set(int64(cfg.SolveProcs))
	s.m.gomaxprocs.Set(int64(runtime.GOMAXPROCS(0)))
	return s
}

// Handler returns the API mux: POST /v1/solve, POST /v1/stream (NDJSON
// transient trajectories), GET /v1/problems, GET /healthz (readiness),
// GET /livez (liveness), GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/problems", s.handleProblems)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /livez", s.handleLivez)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// DebugHandler returns the debug mux: net/http/pprof plus a second mount of
// /metrics, intended for a loopback-only listener.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// BeginDrain closes the admission gate: subsequent requests get 503 while
// requests already admitted keep their workers. Safe to call repeatedly.
func (s *Server) BeginDrain() {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if !s.draining {
		s.draining = true
		s.m.draining.Set(1)
	}
}

// Drain blocks until every admitted request has completed or ctx expires.
// Callers typically pair it with http.Server.Shutdown:
//
//	srv.BeginDrain()
//	httpSrv.Shutdown(ctx) // stops listeners, waits for handlers
//	err := srv.Drain(ctx) // belt-and-braces on the solve side
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// isDraining reports whether the admission gate is closed.
func (s *Server) isDraining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// admit tries to claim a queue slot without blocking; ok=false is the
// backpressure signal (or, while draining, the shutdown signal — the caller
// distinguishes via isDraining). The caller must call the returned release
// exactly once after the request completes.
//
// The in-flight count is incremented under drainMu so it strictly precedes
// BeginDrain's flag flip: every request Drain's Wait can miss is one the
// admission gate has already refused, which keeps the WaitGroup's
// Add-versus-Wait ordering sound.
func (s *Server) admit() (release func(), ok bool) {
	select {
	case s.queueSlots <- struct{}{}:
	default:
		return nil, false
	}
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		<-s.queueSlots
		return nil, false
	}
	s.inflight.Add(1)
	s.drainMu.Unlock()
	s.m.queueDepth.Inc()
	return func() {
		<-s.queueSlots
		s.inflight.Done()
	}, true
}

// acquireWorker blocks until a worker is free or ctx expires. The admitted
// request keeps occupying its queue slot while executing, so the queue
// gauge transitions to the in-flight gauge here.
func (s *Server) acquireWorker(ctx context.Context) (*worker, error) {
	select {
	case wk := <-s.workers:
		s.m.queueDepth.Dec()
		s.m.inflight.Inc()
		return wk, nil
	case <-ctx.Done():
		s.m.queueDepth.Dec()
		return nil, ctx.Err()
	}
}

// releaseWorker returns a worker to the pool.
func (s *Server) releaseWorker(wk *worker) {
	s.m.inflight.Dec()
	s.workers <- wk
}

// Workers returns the current worker-pool size.
func (s *Server) Workers() int {
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	return s.curWorkers
}

// Resize moves the pool to target workers (clamped to
// [MinWorkers, MaxWorkers]) and returns the achieved size; it implements
// adapt.Pool. Growth is immediate: parked workers are revived first (warm
// caches, original seeds), then fresh workers are created with the next
// unused seeds, so the seed sequence Seed+i is append-only across any
// resize history. Shrink retires only idle workers — each removal is a
// blocking receive from the pool channel, so a worker is never interrupted
// mid-solve — and composes with BeginDrain, whose in-flight requests
// return their workers as they finish.
//
// The SolveProcs budget (when defaulted) is rebalanced around the pool
// change in the order that preserves Workers×SolveProcs ≤ GOMAXPROCS at
// every intermediate step: growth lowers the per-solve budget before
// adding workers; shrink removes workers before raising it.
func (s *Server) Resize(target int, reason string) int {
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	if target < s.cfg.MinWorkers {
		target = s.cfg.MinWorkers
	}
	if target > s.cfg.MaxWorkers {
		target = s.cfg.MaxWorkers
	}
	switch {
	case target > s.curWorkers:
		s.rebalanceProcs(target)
		for target > s.curWorkers {
			s.workers <- s.reviveWorker()
			s.curWorkers++
		}
		s.m.resizes.With("up", reason).Inc()
	case target < s.curWorkers:
		for target < s.curWorkers {
			wk := <-s.workers // idle worker: retired between requests, never mid-solve
			s.parked = append(s.parked, wk)
			s.curWorkers--
		}
		s.rebalanceProcs(target)
		s.m.resizes.With("down", reason).Inc()
	}
	s.m.workers.Set(int64(s.curWorkers))
	return s.curWorkers
}

// reviveWorker returns the most recently parked worker, or builds a fresh
// one with the next unused seed. Callers hold resizeMu.
func (s *Server) reviveWorker() *worker {
	if n := len(s.parked); n > 0 {
		wk := s.parked[n-1]
		s.parked = s.parked[:n-1]
		return wk
	}
	wk := newWorker(&s.cfg, s.pool, s.cfg.Seed+s.seedSeq, s.cache, &s.solveProcs)
	s.seedSeq++
	return wk
}

// rebalanceProcs recomputes the defaulted per-solve parallelism for a pool
// of n workers: max(1, GOMAXPROCS/n), the same rule Config.defaults
// applies at construction. An explicit SolveProcs setting is the
// operator's budget and is left alone. Callers hold resizeMu.
func (s *Server) rebalanceProcs(n int) {
	if !s.autoProcs {
		return
	}
	p := runtime.GOMAXPROCS(0) / n
	if p < 1 {
		p = 1
	}
	s.solveProcs.Store(int32(p))
	s.m.solveProcsGauge.Set(int64(p))
}

// Observe samples the autoscaler's input signals from the metrics plane;
// it implements adapt.Pool.
func (s *Server) Observe() adapt.Signals {
	return adapt.Signals{
		Workers:      s.Workers(),
		QueueDepth:   int(s.m.queueDepth.Value()),
		Inflight:     int(s.m.inflight.Value()),
		Sheds:        s.m.queueRejects.Value(),
		LatencySum:   s.m.solveLatency.Sum(),
		LatencyCount: s.m.solveLatency.Count(),
	}
}

// timeout resolves the effective solve deadline of a request.
func (s *Server) timeout(req *Request) time.Duration {
	if req.DeadlineMillis <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(req.DeadlineMillis) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}
