package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const testNetlist = `# 1-variable Newton slice
inst d0 dac 0
inst m0 multiplier 0
inst i0 integrator 0
set  d0 0.5
wire d0.out m0.in0
wire m0.out i0.in
commit
start
stop
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// trySolve posts a solve request without failing the test; safe to call
// from non-test goroutines (t.Fatal is not).
func trySolve(url string, req Request) (int, Response, http.Header, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, Response{}, nil, err
	}
	hr, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, Response{}, nil, err
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return hr.StatusCode, Response{}, hr.Header, err
	}
	return hr.StatusCode, resp, hr.Header, nil
}

func postSolve(t *testing.T, url string, req Request) (int, Response, http.Header) {
	t.Helper()
	code, resp, hdr, err := trySolve(url, req)
	if err != nil {
		t.Fatal(err)
	}
	return code, resp, hdr
}

func TestSolveRoundtripAllKinds(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	cases := []Request{
		{Problem: KindBurgers2D, N: 4, Seed: 3},
		{Problem: KindBurgersSteady, N: 4, Seed: 3},
		{Problem: KindBurgers1D, N: 32, Seed: 3},
	}
	for _, req := range cases {
		code, resp, _ := postSolve(t, ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d, error %q", req.Problem, code, resp.Error)
		}
		if !resp.Converged {
			t.Fatalf("%s: solve did not converge (residual %g)", req.Problem, resp.Residual)
		}
		if resp.Residual >= 1e-9 {
			t.Fatalf("%s: residual %g too large", req.Problem, resp.Residual)
		}
		if resp.Dim == 0 || resp.Iterations == 0 || resp.ModelSeconds <= 0 {
			t.Fatalf("%s: report incomplete: %+v", req.Problem, resp)
		}
	}

	code, resp, _ := postSolve(t, ts.URL, Request{Problem: KindNetlist, Netlist: testNetlist})
	if code != http.StatusOK {
		t.Fatalf("netlist: status %d, error %q", code, resp.Error)
	}
	if resp.Components != 3 || resp.Connections != 2 || !resp.Committed || resp.Running {
		t.Fatalf("netlist report wrong: %+v", resp)
	}
}

// TestSolveDeterminism is the registry contract: identical requests produce
// bit-identical solves, whichever worker serves them.
func TestSolveDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := Request{Problem: KindBurgersSteady, N: 5, Seed: 99}
	_, first, _ := postSolve(t, ts.URL, req)
	for i := 0; i < 3; i++ {
		_, again, _ := postSolve(t, ts.URL, req)
		if again.Residual != first.Residual || again.Iterations != first.Iterations { //pdevet:allow floateq determinism test wants bit-identity
			t.Fatalf("nondeterministic solve: %+v vs %+v", first, again)
		}
	}
	_, other, _ := postSolve(t, ts.URL, Request{Problem: KindBurgersSteady, N: 5, Seed: 100})
	if other.Residual == first.Residual { //pdevet:allow floateq distinct seeds must differ in every bit pattern
		t.Fatal("different seeds produced identical residuals")
	}
}

func TestSolveValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxGridN: 8})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"unknown kind", `{"problem":"heat3d"}`, http.StatusBadRequest},
		{"missing kind", `{}`, http.StatusBadRequest},
		{"oversize grid", `{"problem":"burgers2d","n":99}`, http.StatusBadRequest},
		{"bad order", `{"problem":"burgers2d","order":3}`, http.StatusBadRequest},
		{"negative re", `{"problem":"burgers1d","re":-2}`, http.StatusBadRequest},
		{"unknown field", `{"problem":"burgers2d","frobnicate":1}`, http.StatusBadRequest},
		{"empty netlist", `{"problem":"netlist"}`, http.StatusBadRequest},
		{"analog_vars without analog", `{"problem":"burgers2d","analog_vars":8}`, http.StatusBadRequest},
		{"bad backend", `{"problem":"burgers2d","backend":"tpu"}`, http.StatusBadRequest},
		{"netlist parse error", `{"problem":"netlist","netlist":"frob a b"}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		hr, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(hr.Body)
		hr.Body.Close()
		if hr.StatusCode != tc.code {
			t.Fatalf("%s: status %d (want %d): %s", tc.name, hr.StatusCode, tc.code, b)
		}
	}
}

// TestBackpressure starves the worker pool directly (the test is
// in-package), fills the queue, and asserts the next request sheds with 429
// and a Retry-After hint — never blocking, exactly at the configured bound.
func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	wk := <-s.workers // starve the pool: nothing can execute

	req := Request{Problem: KindBurgers1D, N: 8}
	results := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // fill both slots (1 worker + 1 queue)
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _, _, err := trySolve(ts.URL, req)
			if err != nil {
				t.Error(err)
			}
			results <- code
		}()
	}
	// Wait until both requests hold queue slots.
	deadline := time.After(5 * time.Second)
	for len(s.queueSlots) != 2 {
		select {
		case <-deadline:
			t.Fatal("queued requests never claimed their slots")
		case <-time.After(time.Millisecond):
		}
	}

	code, _, hdr := postSolve(t, ts.URL, req)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated service returned %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if got := s.m.queueRejects.Value(); got != 1 {
		t.Fatalf("queue_rejects_total = %d, want 1", got)
	}

	s.workers <- wk // release the pool; both queued requests must complete
	wg.Wait()
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("queued request finished with %d, want 200", code)
		}
	}
}

// TestDeadlineWhileQueued pins the per-request deadline contract: a request
// whose deadline expires while it waits for a worker gets 504, not a hang.
func TestDeadlineWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	wk := <-s.workers
	defer func() { s.workers <- wk }()

	code, resp, _ := postSolve(t, ts.URL, Request{Problem: KindBurgers1D, N: 8, DeadlineMillis: 50})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("queued-past-deadline request returned %d (%q), want 504", code, resp.Error)
	}
}

// TestDrain covers the graceful-shutdown contract: draining sheds new work
// with 503, flips /healthz, completes requests already admitted, and Drain
// returns once they finish.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	wk := <-s.workers // hold the queued request in the queue

	done := make(chan int, 1)
	go func() {
		code, _, _, err := trySolve(ts.URL, Request{Problem: KindBurgers1D, N: 8})
		if err != nil {
			t.Error(err)
		}
		done <- code
	}()
	deadline := time.After(5 * time.Second)
	for len(s.queueSlots) != 1 {
		select {
		case <-deadline:
			t.Fatal("request never claimed its queue slot")
		case <-time.After(time.Millisecond):
		}
	}

	s.BeginDrain()
	if code, _, _ := postSolve(t, ts.URL, Request{Problem: KindBurgers1D, N: 8}); code != http.StatusServiceUnavailable {
		t.Fatalf("draining service admitted a request: %d", code)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", hr.StatusCode)
	}

	s.workers <- wk // let the admitted request finish
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d during drain, want 200", code)
	}
}

// TestAnalogSeededSolve runs the paper's full pipeline through the service:
// a problem that fits the prototype directly, and an oversize one forced
// through red-black decomposition by capping analog_vars.
func TestAnalogSeededSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	code, resp, _ := postSolve(t, ts.URL, Request{Problem: KindBurgers2D, N: 2, Seed: 5, Analog: true})
	if code != http.StatusOK {
		t.Fatalf("direct analog solve: status %d, error %q", code, resp.Error)
	}
	if !resp.AnalogUsed || resp.Decomposed {
		t.Fatalf("expected direct analog seeding: %+v", resp)
	}
	if resp.SeedResidual <= 0 {
		t.Fatalf("seed residual not reported: %+v", resp)
	}

	// n=4 (32 unknowns) with an 8-variable accelerator: decomposes into
	// 2×2-node tiles on the red-black checkerboard.
	code, resp, _ = postSolve(t, ts.URL, Request{Problem: KindBurgers2D, N: 4, Seed: 5, Analog: true, AnalogVars: 8, DeadlineMillis: 25000})
	if code != http.StatusOK {
		t.Fatalf("decomposed analog solve: status %d, error %q", code, resp.Error)
	}
	if !resp.Decomposed || resp.Subproblems == 0 || resp.GSSweeps == 0 {
		t.Fatalf("expected red-black decomposition: %+v", resp)
	}
	if !resp.Converged {
		t.Fatalf("decomposed solve did not converge: %+v", resp)
	}
}

func TestProblemsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxGridN: 10})
	hr, err := http.Get(ts.URL + "/v1/problems")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var kinds []KindInfo
	if err := json.NewDecoder(hr.Body).Decode(&kinds); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 4 {
		t.Fatalf("got %d kinds, want 4", len(kinds))
	}
	if kinds[0].MaxN != 10 {
		t.Fatalf("MaxN not propagated from config: %+v", kinds[0])
	}
}

// TestServerSteadyPathZeroAlloc pins the tentpole's allocation contract:
// once a worker has served one request of a shape, further same-shaped
// solves through worker.run allocate nothing (the HTTP layer above it
// allocates per request; the solve plane must not).
func TestServerSteadyPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is not meaningful under -race")
	}
	s := NewServer(Config{Workers: 1})
	wk := <-s.workers
	req := Request{Problem: KindBurgersSteady, N: 5}
	if err := normalize(&req, &s.cfg); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := wk.run(context.Background(), &req, &resp); err != nil {
		t.Fatal(err) // warm-up builds the shape cache
	}
	allocs := testing.AllocsPerRun(10, func() {
		resp = Response{}
		if err := wk.run(context.Background(), &req, &resp); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady request path allocated %.1f allocs/op, want 0", allocs)
	}
	if !resp.Converged {
		t.Fatal("warm solve did not converge")
	}
}

// TestConcurrentMixedLoad hammers the service with a mix of kinds and
// seeds; run under -race it is the serving stack's data-race gate.
func TestConcurrentMixedLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	kinds := []Request{
		{Problem: KindBurgers2D, N: 3},
		{Problem: KindBurgersSteady, N: 4},
		{Problem: KindBurgers1D, N: 24},
		{Problem: KindNetlist, Netlist: testNetlist},
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				req := kinds[(g+i)%len(kinds)]
				req.Seed = int64(1 + g)
				code, resp, _, err := trySolve(ts.URL, req)
				if err != nil {
					t.Error(err)
					return
				}
				if code != http.StatusOK && code != http.StatusTooManyRequests {
					t.Errorf("%s: status %d, error %q", req.Problem, code, resp.Error)
				}
			}
		}(g)
	}
	wg.Wait()
}
