package serve

import (
	"net/http"
	"runtime"
	"testing"
)

// TestSolveProcsResponseIdentity pins the service-level determinism
// contract of Config.SolveProcs: the same request solved by a serial
// server and by servers with intra-solve parallelism returns bit-identical
// responses (residuals, iteration counts, model costs).
func TestSolveProcsResponseIdentity(t *testing.T) {
	reqs := []Request{
		{Problem: KindBurgersSteady, N: 6, Seed: 42},
		{Problem: KindBurgers2D, N: 5, Seed: 7, Analog: true},
		{Problem: KindBurgers1D, N: 48, Seed: 13},
	}
	solveAll := func(procs int) []Response {
		_, ts := newTestServer(t, Config{Workers: 1, SolveProcs: procs})
		out := make([]Response, len(reqs))
		for i, req := range reqs {
			code, resp, _ := postSolve(t, ts.URL, req)
			if code != http.StatusOK {
				t.Fatalf("procs=%d %s: status %d, error %q", procs, req.Problem, code, resp.Error)
			}
			out[i] = resp
		}
		return out
	}
	ref := solveAll(-1) // explicit serial
	for _, procs := range []int{2, 8} {
		got := solveAll(procs)
		for i := range ref {
			r, g := ref[i], got[i]
			if g.Residual != r.Residual || g.InitialResidual != r.InitialResidual || //pdevet:allow floateq SolveProcs promises bit-identical responses
				g.SeedResidual != r.SeedResidual || g.ModelSeconds != r.ModelSeconds { //pdevet:allow floateq SolveProcs promises bit-identical responses
				t.Fatalf("procs=%d %s: response floats diverged:\n got %+v\nwant %+v", procs, reqs[i].Problem, g, r)
			}
			if g.Iterations != r.Iterations || g.Converged != r.Converged || g.Rung != r.Rung ||
				g.Degraded != r.Degraded || g.AnalogUsed != r.AnalogUsed {
				t.Fatalf("procs=%d %s: response metadata diverged:\n got %+v\nwant %+v", procs, reqs[i].Problem, g, r)
			}
		}
	}
}

// TestSolveProcsDefaultBudget checks the Workers × SolveProcs composition
// rule: the default splits GOMAXPROCS across the worker fleet and never
// drops below 1.
func TestSolveProcsDefaultBudget(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	cases := []struct {
		workers, procs, want int
	}{
		{workers: 0, procs: 0, want: 1},       // Workers=GOMAXPROCS ⇒ 1 each
		{workers: gmp * 2, procs: 0, want: 1}, // oversubscribed fleet ⇒ still 1
		{workers: 1, procs: 0, want: gmp},     // single worker gets the machine
		{workers: 1, procs: -1, want: 1},      // negative disables explicitly
		{workers: 1, procs: 3, want: 3},       // explicit setting wins
	}
	for _, tc := range cases {
		cfg := Config{Workers: tc.workers, SolveProcs: tc.procs}
		cfg.defaults()
		if cfg.SolveProcs != tc.want {
			t.Fatalf("workers=%d procs=%d: SolveProcs = %d, want %d",
				tc.workers, tc.procs, cfg.SolveProcs, tc.want)
		}
	}
}
