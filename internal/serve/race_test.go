//go:build race

package serve

// raceEnabled mirrors internal/core's pattern: strict allocation assertions
// are skipped under -race, where instrumentation perturbs the counts.
const raceEnabled = true
