package serve

import (
	"io"

	"hybridpde/internal/promtext"
)

// The service's metrics plane rides on internal/promtext, the repo's
// shared stdlib-only Prometheus text exposition kit (counters, gauges,
// cumulative histograms, small label vectors; deterministic sorted
// renders). This file only declares the fixed metric set of the solve
// service and its exposition order.

// metrics is the fixed metric set of the solve service.
type metrics struct {
	requests        *promtext.CounterVec   // labels: problem, code
	queueRejects    promtext.Counter       // 429s: admission queue full
	queueDepth      promtext.Gauge         // requests admitted but not yet executing
	inflight        promtext.Gauge         // solves executing on a worker
	draining        promtext.Gauge         // 1 while the server refuses new work
	workers         promtext.Gauge         // current worker-pool size (moves under Resize)
	solveProcsGauge promtext.Gauge         // current per-solve parallelism budget
	gomaxprocs      promtext.Gauge         // runtime.GOMAXPROCS, the budget ceiling
	resizes         *promtext.CounterVec   // labels: direction, reason — pool resizes
	budgetRejects   promtext.Counter       // 504s: gateway deadline budget already spent
	budgetClamped   promtext.Counter       // deadlines tightened by the gateway's budget header
	solveLatency    *promtext.Histogram    // seconds, measured wall time on the worker
	newtonIters     *promtext.HistogramVec // labels: start — Newton iterations by start source (cold/analog/warm)
	seedsTotal      promtext.Counter       // solves that ran the analog seeding stage
	seedsAccepted   promtext.Counter       // seeds that improved on the initial residual

	// Solve-cache plane (internal/cache behind the ladder's cache rungs).
	cacheHits        promtext.Counter // exact content-address replays served
	cacheWarmHits    promtext.Counter // solves served by the warm-start rung
	cacheMisses      promtext.Counter // cache-consulting solves served by neither
	cacheStale       promtext.Counter // warm-start candidates rejected by the gate
	cacheFlightWaits promtext.Counter // requests that waited on an identical in-flight solve
	cacheEntries     promtext.Gauge   // current entry count of the shared store

	// Streaming plane (POST /v1/stream transient trajectories).
	framesStreamed  promtext.Counter    // NDJSON frames written and flushed to clients
	streamsInflight promtext.Gauge      // streams currently executing
	frameSolveTime  *promtext.Histogram // seconds a single frame's step solve took
	firstFrameTime  *promtext.Histogram // seconds from admission to the first flushed frame
	jacRefactors    promtext.Counter    // Jacobian refresh+refactorization events (stream steps)
	jacReuses       promtext.Counter    // linear solves served by a reused factorization (stream steps)
	streamsAborted  promtext.Counter    // streams ended early (ctx cancel, client gone, step failure)

	// Degradation-ladder plane (see internal/core ladder + internal/fault).
	ladderAttempts *promtext.CounterVec // labels: rung — rungs attempted, converged or not
	ladderServed   *promtext.CounterVec // labels: rung — final rung of each 200 response
	degraded       promtext.Counter     // 200s served below the planned pipeline
	seedsRejected  promtext.Counter     // analog seeds rejected by the quality gate
	retries        promtext.Counter     // in-handler retries of transient-fault solves
	faultsActive   promtext.Gauge       // configured fault count (0 outside chaos mode)
}

func newServeMetrics() *metrics {
	return &metrics{
		requests: promtext.NewCounterVec("problem", "code"),
		// 250 µs to ~8 s, doubling: spans a cached tiny solve through an
		// analog-seeded decomposed one.
		solveLatency: promtext.NewHistogram(0.00025, 0.0005, 0.001, 0.002, 0.004,
			0.008, 0.016, 0.032, 0.064, 0.128, 0.256, 0.512, 1.024, 2.048,
			4.096, 8.192),
		newtonIters: promtext.NewHistogramVec("start", 1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
		// Per-frame solves are one implicit step from a warm level: much
		// faster than whole requests, so the buckets start at 50 µs.
		frameSolveTime: promtext.NewHistogram(0.00005, 0.0001, 0.00025, 0.0005,
			0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.128, 0.256,
			0.512, 1.024),
		firstFrameTime: promtext.NewHistogram(0.00025, 0.0005, 0.001, 0.002,
			0.004, 0.008, 0.016, 0.032, 0.064, 0.128, 0.256, 0.512, 1.024,
			2.048, 4.096, 8.192),
		ladderAttempts: promtext.NewCounterVec("rung"),
		ladderServed:   promtext.NewCounterVec("rung"),
		resizes:        promtext.NewCounterVec("direction", "reason"),
	}
}

// writeProm renders the exposition page. Families appear in a fixed order
// and labelled children in sorted order, so scrapes are deterministic.
func (m *metrics) writeProm(w io.Writer) {
	promtext.WriteCounterVec(w, "pdeserve_requests_total", "Solve requests by problem kind and HTTP status code.", m.requests)
	promtext.WriteCounter(w, "pdeserve_queue_rejects_total", "Requests rejected with 429 because the admission queue was full.", &m.queueRejects)
	promtext.WriteGauge(w, "pdeserve_queue_depth", "Requests admitted and waiting for a worker.", &m.queueDepth)
	promtext.WriteGauge(w, "pdeserve_inflight_solves", "Solves currently executing on a worker.", &m.inflight)
	promtext.WriteGauge(w, "pdeserve_draining", "1 while the server is draining and refusing new work.", &m.draining)
	promtext.WriteGauge(w, "pdeserve_workers", "Current worker-pool size (moves under the autoscaler's Resize).", &m.workers)
	promtext.WriteGauge(w, "pdeserve_solve_procs", "Current per-solve parallelism budget (rebalanced on resize when defaulted).", &m.solveProcsGauge)
	promtext.WriteGauge(w, "pdeserve_gomaxprocs", "runtime.GOMAXPROCS, the Workers×SolveProcs budget ceiling.", &m.gomaxprocs)
	promtext.WriteCounterVec(w, "pdeserve_resizes_total", "Worker-pool resizes, by direction and scale-decision reason.", m.resizes)
	promtext.WriteCounter(w, "pdeserve_deadline_budget_rejects_total", "Requests refused because the gateway's forwarded deadline budget was already spent.", &m.budgetRejects)
	promtext.WriteCounter(w, "pdeserve_deadline_budget_clamped_total", "Request deadlines tightened by the gateway's X-Pde-Deadline-Budget header.", &m.budgetClamped)
	promtext.WriteHistogram(w, "pdeserve_solve_latency_seconds",
		"Wall-clock seconds a request spent executing on a worker.", m.solveLatency)
	promtext.WriteHistogramVec(w, "pdeserve_newton_iterations",
		"Newton iterations of the digital polish stage, per solved (non-replayed) request, by start source.", m.newtonIters)
	promtext.WriteCounter(w, "pdeserve_analog_seeds_total", "Solves that ran the analog seeding stage.", &m.seedsTotal)
	promtext.WriteCounter(w, "pdeserve_analog_seeds_accepted_total", "Analog seeds that improved on the initial residual (acceptance rate = accepted/total).", &m.seedsAccepted)
	promtext.WriteCounter(w, "pdeserve_analog_seeds_rejected_total", "Analog seeds rejected by the degradation ladder's quality gate.", &m.seedsRejected)
	promtext.WriteCounterVec(w, "pdeserve_ladder_attempts_total", "Degradation-ladder rungs attempted, by rung (converged or not).", m.ladderAttempts)
	promtext.WriteCounterVec(w, "pdeserve_ladder_served_total", "Final rung that served each successful solve, by rung.", m.ladderServed)
	promtext.WriteCounter(w, "pdeserve_degraded_total", "Successful solves served below the planned pipeline rung.", &m.degraded)
	promtext.WriteCounter(w, "pdeserve_retries_total", "In-handler retries of degraded or transiently failed solves.", &m.retries)
	promtext.WriteCounter(w, "pdeserve_cache_hits_total", "Solves served by an exact content-address cache replay.", &m.cacheHits)
	promtext.WriteCounter(w, "pdeserve_cache_warm_hits_total", "Solves served by the warm-start continuation rung.", &m.cacheWarmHits)
	promtext.WriteCounter(w, "pdeserve_cache_misses_total", "Cache-consulting solves served by neither the cache nor the warm-start rung.", &m.cacheMisses)
	promtext.WriteCounter(w, "pdeserve_cache_stale_total", "Warm-start candidates rejected by the residual quality gate.", &m.cacheStale)
	promtext.WriteCounter(w, "pdeserve_cache_flight_waits_total", "Requests that waited on an identical in-flight solve instead of duplicating it.", &m.cacheFlightWaits)
	promtext.WriteGauge(w, "pdeserve_cache_entries", "Current entry count of the shared solve cache.", &m.cacheEntries)
	promtext.WriteCounter(w, "pdeserve_frames_streamed_total", "NDJSON frames written and flushed to streaming clients.", &m.framesStreamed)
	promtext.WriteGauge(w, "pdeserve_streams_in_flight", "Transient-trajectory streams currently executing.", &m.streamsInflight)
	promtext.WriteHistogram(w, "pdeserve_frame_solve_seconds", "Wall-clock seconds one stream frame's time step took to solve.", m.frameSolveTime)
	promtext.WriteHistogram(w, "pdeserve_first_frame_seconds", "Wall-clock seconds from stream admission to the first flushed frame.", m.firstFrameTime)
	promtext.WriteCounter(w, "pdeserve_jacobian_refactorizations_total", "Jacobian refresh+refactorization events across stream time steps.", &m.jacRefactors)
	promtext.WriteCounter(w, "pdeserve_jacobian_reuses_total", "Stream linear solves served by a reused (chord-mode) factorization.", &m.jacReuses)
	promtext.WriteCounter(w, "pdeserve_streams_aborted_total", "Streams that ended before their final frame (cancel, disconnect or step failure).", &m.streamsAborted)
	promtext.WriteGauge(w, "pdeserve_fault_injection_active", "Number of configured fault classes (0 outside chaos mode).", &m.faultsActive)
}
