package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the service's metrics plane: a deliberately small, stdlib-only
// implementation of the Prometheus text exposition format (version 0.0.4).
// The repo's dependency rule forbids client_golang, and the subset a solve
// service needs — counters, gauges, cumulative histograms, one label pair —
// is ~200 lines. Metric values are atomics or mutex-guarded maps, so every
// type here is safe for concurrent request handlers.

// counter is a monotonically increasing event count.
type counter struct{ v atomic.Uint64 }

func (c *counter) inc()          { c.v.Add(1) }
func (c *counter) add(n uint64)  { c.v.Add(n) }
func (c *counter) value() uint64 { return c.v.Load() }

// gauge is an instantaneous level (queue depth, in-flight solves).
type gauge struct{ v atomic.Int64 }

func (g *gauge) inc()         { g.v.Add(1) }
func (g *gauge) dec()         { g.v.Add(-1) }
func (g *gauge) set(x int64)  { g.v.Store(x) }
func (g *gauge) value() int64 { return g.v.Load() }

// histogram accumulates observations into fixed cumulative buckets, the
// Prometheus histogram shape (le="..." upper bounds plus +Inf, _sum, _count).
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds, +Inf implicit
	counts []uint64  // len(bounds)+1; last element is the +Inf bucket
	sum    float64
	count  uint64
}

func newHistogram(bounds ...float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// histogramVec is a histogram family with one label; children are created
// on first use and rendered in sorted label order under one family header.
type histogramVec struct {
	mu     sync.Mutex
	label  string
	bounds []float64
	vals   map[string]*histogram
}

func newHistogramVec(label string, bounds ...float64) *histogramVec {
	return &histogramVec{label: label, bounds: bounds, vals: map[string]*histogram{}}
}

// with returns the child histogram for the given label value.
func (v *histogramVec) with(value string) *histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.vals[value]
	if !ok {
		h = newHistogram(v.bounds...)
		v.vals[value] = h
	}
	return h
}

// counterVec is a counter family with a fixed label-name set; children are
// created on first use and rendered in sorted label order.
type counterVec struct {
	mu     sync.Mutex
	labels []string // label names, in render order
	vals   map[string]*counter
}

func newCounterVec(labels ...string) *counterVec {
	return &counterVec{labels: labels, vals: map[string]*counter{}}
}

// with returns the child counter for the given label values (same order as
// the label names).
func (v *counterVec) with(values ...string) *counter {
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.vals[key]
	if !ok {
		c = &counter{}
		v.vals[key] = c
	}
	return c
}

// metrics is the fixed metric set of the solve service.
type metrics struct {
	requests      *counterVec   // labels: problem, code
	queueRejects  counter       // 429s: admission queue full
	queueDepth    gauge         // requests admitted but not yet executing
	inflight      gauge         // solves executing on a worker
	draining      gauge         // 1 while the server refuses new work
	solveLatency  *histogram    // seconds, measured wall time on the worker
	newtonIters   *histogramVec // labels: start — Newton iterations by start source (cold/analog/warm)
	seedsTotal    counter       // solves that ran the analog seeding stage
	seedsAccepted counter       // seeds that improved on the initial residual

	// Solve-cache plane (internal/cache behind the ladder's cache rungs).
	cacheHits        counter // exact content-address replays served
	cacheWarmHits    counter // solves served by the warm-start rung
	cacheMisses      counter // cache-consulting solves served by neither
	cacheStale       counter // warm-start candidates rejected by the gate
	cacheFlightWaits counter // requests that waited on an identical in-flight solve
	cacheEntries     gauge   // current entry count of the shared store

	// Degradation-ladder plane (see internal/core ladder + internal/fault).
	ladderAttempts *counterVec // labels: rung — rungs attempted, converged or not
	ladderServed   *counterVec // labels: rung — final rung of each 200 response
	degraded       counter     // 200s served below the planned pipeline
	seedsRejected  counter     // analog seeds rejected by the quality gate
	retries        counter     // in-handler retries of transient-fault solves
	faultsActive   gauge       // configured fault count (0 outside chaos mode)
}

func newServeMetrics() *metrics {
	return &metrics{
		requests: newCounterVec("problem", "code"),
		// 250 µs to ~8 s, doubling: spans a cached tiny solve through an
		// analog-seeded decomposed one.
		solveLatency: newHistogram(0.00025, 0.0005, 0.001, 0.002, 0.004,
			0.008, 0.016, 0.032, 0.064, 0.128, 0.256, 0.512, 1.024, 2.048,
			4.096, 8.192),
		newtonIters:    newHistogramVec("start", 1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
		ladderAttempts: newCounterVec("rung"),
		ladderServed:   newCounterVec("rung"),
	}
}

// writeProm renders the exposition page. Families appear in a fixed order
// and labelled children in sorted order, so scrapes are deterministic.
func (m *metrics) writeProm(w io.Writer) {
	writeHeader := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	writeVec := func(name, help string, v *counterVec) {
		writeHeader(name, help, "counter")
		v.mu.Lock()
		keys := make([]string, 0, len(v.vals))
		for k := range v.vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			values := strings.Split(k, "\xff")
			parts := make([]string, len(values))
			for i, lv := range values {
				parts[i] = fmt.Sprintf("%s=%q", v.labels[i], lv)
			}
			fmt.Fprintf(w, "%s{%s} %d\n",
				name, strings.Join(parts, ","), v.vals[k].value())
		}
		v.mu.Unlock()
	}

	writeVec("pdeserve_requests_total", "Solve requests by problem kind and HTTP status code.", m.requests)

	writeHeader("pdeserve_queue_rejects_total", "Requests rejected with 429 because the admission queue was full.", "counter")
	fmt.Fprintf(w, "pdeserve_queue_rejects_total %d\n", m.queueRejects.value())

	writeHeader("pdeserve_queue_depth", "Requests admitted and waiting for a worker.", "gauge")
	fmt.Fprintf(w, "pdeserve_queue_depth %d\n", m.queueDepth.value())

	writeHeader("pdeserve_inflight_solves", "Solves currently executing on a worker.", "gauge")
	fmt.Fprintf(w, "pdeserve_inflight_solves %d\n", m.inflight.value())

	writeHeader("pdeserve_draining", "1 while the server is draining and refusing new work.", "gauge")
	fmt.Fprintf(w, "pdeserve_draining %d\n", m.draining.value())

	m.writeHistogram(w, "pdeserve_solve_latency_seconds",
		"Wall-clock seconds a request spent executing on a worker.", m.solveLatency)
	m.writeHistogramVec(w, "pdeserve_newton_iterations",
		"Newton iterations of the digital polish stage, per solved (non-replayed) request, by start source.", m.newtonIters)

	writeHeader("pdeserve_analog_seeds_total", "Solves that ran the analog seeding stage.", "counter")
	fmt.Fprintf(w, "pdeserve_analog_seeds_total %d\n", m.seedsTotal.value())

	writeHeader("pdeserve_analog_seeds_accepted_total", "Analog seeds that improved on the initial residual (acceptance rate = accepted/total).", "counter")
	fmt.Fprintf(w, "pdeserve_analog_seeds_accepted_total %d\n", m.seedsAccepted.value())

	writeHeader("pdeserve_analog_seeds_rejected_total", "Analog seeds rejected by the degradation ladder's quality gate.", "counter")
	fmt.Fprintf(w, "pdeserve_analog_seeds_rejected_total %d\n", m.seedsRejected.value())

	writeVec("pdeserve_ladder_attempts_total", "Degradation-ladder rungs attempted, by rung (converged or not).", m.ladderAttempts)
	writeVec("pdeserve_ladder_served_total", "Final rung that served each successful solve, by rung.", m.ladderServed)

	writeHeader("pdeserve_degraded_total", "Successful solves served below the planned pipeline rung.", "counter")
	fmt.Fprintf(w, "pdeserve_degraded_total %d\n", m.degraded.value())

	writeHeader("pdeserve_retries_total", "In-handler retries of degraded or transiently failed solves.", "counter")
	fmt.Fprintf(w, "pdeserve_retries_total %d\n", m.retries.value())

	writeHeader("pdeserve_cache_hits_total", "Solves served by an exact content-address cache replay.", "counter")
	fmt.Fprintf(w, "pdeserve_cache_hits_total %d\n", m.cacheHits.value())

	writeHeader("pdeserve_cache_warm_hits_total", "Solves served by the warm-start continuation rung.", "counter")
	fmt.Fprintf(w, "pdeserve_cache_warm_hits_total %d\n", m.cacheWarmHits.value())

	writeHeader("pdeserve_cache_misses_total", "Cache-consulting solves served by neither the cache nor the warm-start rung.", "counter")
	fmt.Fprintf(w, "pdeserve_cache_misses_total %d\n", m.cacheMisses.value())

	writeHeader("pdeserve_cache_stale_total", "Warm-start candidates rejected by the residual quality gate.", "counter")
	fmt.Fprintf(w, "pdeserve_cache_stale_total %d\n", m.cacheStale.value())

	writeHeader("pdeserve_cache_flight_waits_total", "Requests that waited on an identical in-flight solve instead of duplicating it.", "counter")
	fmt.Fprintf(w, "pdeserve_cache_flight_waits_total %d\n", m.cacheFlightWaits.value())

	writeHeader("pdeserve_cache_entries", "Current entry count of the shared solve cache.", "gauge")
	fmt.Fprintf(w, "pdeserve_cache_entries %d\n", m.cacheEntries.value())

	writeHeader("pdeserve_fault_injection_active", "Number of configured fault classes (0 outside chaos mode).", "gauge")
	fmt.Fprintf(w, "pdeserve_fault_injection_active %d\n", m.faultsActive.value())
}

func (m *metrics) writeHistogram(w io.Writer, name, help string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}

// writeHistogramVec renders a labelled histogram family: children in
// sorted label-value order, each with the standard cumulative bucket,
// _sum and _count series carrying the label.
func (m *metrics) writeHistogramVec(w io.Writer, name, help string, v *histogramVec) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := v.vals[k]
		h.mu.Lock()
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, v.label, k, formatBound(b), cum)
		}
		cum += h.counts[len(h.bounds)]
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, v.label, k, cum)
		fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, v.label, k, h.sum)
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, v.label, k, h.count)
		h.mu.Unlock()
	}
	v.mu.Unlock()
}

// formatBound renders a bucket bound the way Prometheus clients do: shortest
// representation that round-trips.
func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", b), "0"), ".")
}
