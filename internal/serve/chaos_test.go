package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hybridpde/internal/fault"
)

func mustSpec(t *testing.T, src string) *fault.Spec {
	t.Helper()
	spec, err := fault.ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	hr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	b, err := io.ReadAll(hr.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// analogReq is the chaos-test workload: a 2×2 grid (8 unknowns) fits the
// prototype accelerator directly, so the planned rung is the analog seed.
var analogReq = Request{Problem: KindBurgers2D, N: 2, Seed: 3, Analog: true}

// TestChaosDegraded200 is the tentpole serving contract: permanent analog
// faults turn into 200 responses with the degraded flag and a lower rung,
// never into failures.
func TestChaosDegraded200(t *testing.T) {
	// Railed integrators drag the seed past the start residual, so the
	// default gate (reject seeds worse than the start) trips; stuck-at-start
	// integrators alone would freeze the seed at exactly the start residual,
	// which that gate deliberately tolerates.
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Faults:  mustSpec(t, "railed *\nstuck 1\n"),
		// Gate a notch tighter so the frozen variable can't sneak through.
		SeedGate: 0.9,
	})
	code, resp, _ := postSolve(t, ts.URL, analogReq)
	if code != http.StatusOK {
		t.Fatalf("status %d (error %q), want 200 with degraded flag", code, resp.Error)
	}
	if !resp.Converged {
		t.Fatalf("degraded solve must still converge: %+v", resp)
	}
	if !resp.Degraded || resp.Rung != "digital" || !resp.SeedRejected {
		t.Fatalf("want degraded digital response, got degraded=%v rung=%q seed_rejected=%v",
			resp.Degraded, resp.Rung, resp.SeedRejected)
	}
	if resp.RungAttempts < 2 {
		t.Fatalf("want ≥ 2 rung attempts, got %d", resp.RungAttempts)
	}
	if resp.SeedAccepted {
		t.Fatal("a rejected seed must not be reported accepted")
	}

	page := scrapeMetrics(t, ts)
	for _, want := range []string{
		`pdeserve_ladder_attempts_total{rung="analog"} 1`,
		`pdeserve_ladder_attempts_total{rung="digital"} 1`,
		`pdeserve_ladder_served_total{rung="digital"} 1`,
		"pdeserve_degraded_total 1",
		"pdeserve_analog_seeds_rejected_total 1",
		"pdeserve_fault_injection_active 2",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}

// TestChaosHealthyPathUntouched pins the inverse: without faults the ladder
// serves from the first rung and no degradation surfaces anywhere.
func TestChaosHealthyPathUntouched(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, resp, _ := postSolve(t, ts.URL, analogReq)
	if code != http.StatusOK || !resp.Converged {
		t.Fatalf("healthy solve failed: %d %+v", code, resp)
	}
	if resp.Degraded || resp.SeedRejected || resp.Rung != "analog" {
		t.Fatalf("healthy solve reported degradation: %+v", resp)
	}
	page := scrapeMetrics(t, ts)
	for _, want := range []string{
		"pdeserve_degraded_total 0",
		"pdeserve_fault_injection_active 0",
		`pdeserve_ladder_served_total{rung="analog"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}

// TestChaosTransientRetries: an always-on burst degrades every attempt, so
// the handler retries the full budget before serving the degraded result.
func TestChaosTransientRetries(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:      1,
		Faults:       mustSpec(t, "burst 1 30\n"),
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
	})
	code, resp, _ := postSolve(t, ts.URL, analogReq)
	if code != http.StatusOK || !resp.Converged {
		t.Fatalf("solve under burst failed: %d %+v", code, resp)
	}
	if !resp.Degraded {
		t.Fatalf("always-on burst must degrade the solve: %+v", resp)
	}
	page := scrapeMetrics(t, ts)
	if !strings.Contains(page, "pdeserve_retries_total 2") {
		t.Fatalf("want the full retry budget spent, metrics:\n%s", grepLines(page, "retries"))
	}
}

// TestChaosRetriesDisabled: a negative budget turns the retry loop off.
func TestChaosRetriesDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:    1,
		Faults:     mustSpec(t, "burst 1 30\n"),
		MaxRetries: -1,
	})
	code, resp, _ := postSolve(t, ts.URL, analogReq)
	if code != http.StatusOK || !resp.Degraded {
		t.Fatalf("want degraded 200, got %d %+v", code, resp)
	}
	if page := scrapeMetrics(t, ts); !strings.Contains(page, "pdeserve_retries_total 0") {
		t.Fatalf("retries must be disabled, metrics:\n%s", grepLines(page, "retries"))
	}
}

// TestChaosDeterminism: a fixed server seed reproduces the whole fault
// sequence, so identical requests to a one-worker server take identical
// ladder paths and produce bit-identical results.
func TestChaosDeterminism(t *testing.T) {
	run := func() Response {
		_, ts := newTestServer(t, Config{
			Workers:    1,
			Seed:       7,
			Faults:     mustSpec(t, "seed 3\nrailed 0\nadc-drift * 0.08 0.02\nburst 0.5 2 5 25\n"),
			MaxRetries: -1,
		})
		_, resp, _ := postSolve(t, ts.URL, analogReq)
		return resp
	}
	first := run()
	for i := 0; i < 2; i++ {
		again := run()
		if again.Residual != first.Residual || again.Rung != first.Rung || //pdevet:allow floateq chaos determinism wants bit-identity
			again.SeedResidual != first.SeedResidual || again.Degraded != first.Degraded { //pdevet:allow floateq chaos determinism wants bit-identity
			t.Fatalf("chaos run diverged: %+v vs %+v", first, again)
		}
	}
}

// TestChaosNoServerErrors sweeps every registry grid kind and a spread of
// seeds under the built-in chaos spec: nothing may surface as a 5xx.
func TestChaosNoServerErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:      2,
		Faults:       fault.DefaultChaosSpec(),
		RetryBackoff: time.Millisecond,
	})
	reqs := []Request{
		{Problem: KindBurgers2D, N: 2, Analog: true},
		{Problem: KindBurgers2D, N: 4, Analog: true},
		{Problem: KindBurgersSteady, N: 4, Analog: true},
		{Problem: KindBurgers1D, N: 16, Analog: true},
		{Problem: KindBurgers2D, N: 3},
	}
	for seed := int64(1); seed <= 4; seed++ {
		for _, req := range reqs {
			req.Seed = seed
			code, resp, _ := postSolve(t, ts.URL, req)
			if code >= 500 {
				t.Fatalf("%s n=%d seed=%d: server error %d (%s)", req.Problem, req.N, seed, code, resp.Error)
			}
			if code != http.StatusOK {
				t.Fatalf("%s n=%d seed=%d: status %d (%s)", req.Problem, req.N, seed, code, resp.Error)
			}
		}
	}
}

// grepLines filters a metrics page to lines containing sub, for error
// messages that would otherwise dump the whole exposition.
func grepLines(page, sub string) string {
	var out []string
	for _, ln := range strings.Split(page, "\n") {
		if strings.Contains(ln, sub) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
