package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"hybridpde/internal/core"
	"hybridpde/internal/pde"
)

// streamResult is one fully-read POST /v1/stream exchange.
type streamResult struct {
	code    int
	header  http.Header
	frames  []StreamFrame
	summary *StreamSummary
	body    string // non-200 rejection body
}

// tryStream posts a stream request and reads it to completion without
// failing the test (safe from non-test goroutines).
func tryStream(url string, req Request) (streamResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return streamResult{}, err
	}
	hr, err := http.Post(url+"/v1/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		return streamResult{}, err
	}
	defer hr.Body.Close()
	res := streamResult{code: hr.StatusCode, header: hr.Header}
	if hr.StatusCode != http.StatusOK {
		b, rerr := io.ReadAll(hr.Body)
		res.body = string(b)
		return res, rerr
	}
	sc := bufio.NewScanner(hr.Body)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		// The summary is the only line carrying "done"; a pointer target
		// distinguishes present-false from absent.
		var probe struct {
			Done *bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return res, err
		}
		if probe.Done != nil {
			var sum StreamSummary
			if err := json.Unmarshal(line, &sum); err != nil {
				return res, err
			}
			res.summary = &sum
			continue
		}
		var f StreamFrame
		if err := json.Unmarshal(line, &f); err != nil {
			return res, err
		}
		res.frames = append(res.frames, f)
	}
	return res, sc.Err()
}

func postStream(t *testing.T, url string, req Request) streamResult {
	t.Helper()
	res, err := tryStream(url, req)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// metricValue extracts an unlabelled counter/gauge value from a /metrics
// scrape, failing if the family is absent.
func metricValue(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).FindSubmatch(b)
	if m == nil {
		t.Fatalf("metric %s missing from scrape", name)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

var hex16 = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestStreamRoundtrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, req := range []Request{
		{Problem: KindBurgers2D, N: 4, Seed: 3, Steps: 5, Dt: 0.5},
		{Problem: KindBurgers1D, N: 32, Seed: 3, Steps: 5, Dt: 0.5},
	} {
		res := postStream(t, ts.URL, req)
		if res.code != http.StatusOK {
			t.Fatalf("%s: status %d, body %q", req.Problem, res.code, res.body)
		}
		if ct := res.header.Get("Content-Type"); ct != NDJSONContentType {
			t.Fatalf("%s: Content-Type %q, want %q", req.Problem, ct, NDJSONContentType)
		}
		if len(res.frames) != req.Steps {
			t.Fatalf("%s: %d frames, want %d", req.Problem, len(res.frames), req.Steps)
		}
		for i, f := range res.frames {
			if f.Step != i+1 || f.T != float64(i+1)*req.Dt { //pdevet:allow floateq exact step multiples
				t.Fatalf("%s: frame %d mislabelled: %+v", req.Problem, i, f)
			}
			if !f.Converged || f.Residual >= 1e-9 {
				t.Fatalf("%s: frame %d not converged to tolerance: %+v", req.Problem, i, f)
			}
			if !hex16.MatchString(f.Checksum) {
				t.Fatalf("%s: frame %d checksum %q is not 16 hex digits", req.Problem, i, f.Checksum)
			}
			if f.U != nil {
				t.Fatalf("%s: frame %d carries a solution without include_solution", req.Problem, i)
			}
		}
		sum := res.summary
		if sum == nil || !sum.Done || sum.Frames != req.Steps || sum.Error != "" {
			t.Fatalf("%s: bad summary: %+v", req.Problem, sum)
		}
		if sum.Refactorizations < 1 || sum.Refactorizations >= sum.LinearSolves {
			t.Fatalf("%s: chord reuse missing: %d refactorizations of %d linear solves",
				req.Problem, sum.Refactorizations, sum.LinearSolves)
		}
		if sum.ModelSeconds <= 0 || sum.Dim == 0 {
			t.Fatalf("%s: summary accounting incomplete: %+v", req.Problem, sum)
		}
	}
}

// TestStreamMatchesOfflineTimeLoop is the stream-vs-buffered bit-identity
// contract end to end: the frames a streaming client receives must carry
// the exact solution bits an offline core.TimeLoop produces for the same
// request — same field draws, chord mode, pure-digital path.
func TestStreamMatchesOfflineTimeLoop(t *testing.T) {
	const (
		n     = 4
		steps = 3
		seed  = 7
	)
	_, ts := newTestServer(t, Config{Workers: 1, SolveProcs: 1})
	res := postStream(t, ts.URL, Request{
		Problem: KindBurgers2D, N: n, Seed: seed, Steps: steps, IncludeSolution: true,
	})
	if res.code != http.StatusOK || len(res.frames) != steps {
		t.Fatalf("stream failed: code %d, %d frames", res.code, len(res.frames))
	}

	// Offline replica of the worker's fixture: same constructor, same
	// refill draw order (UPrev, VPrev, RHS0, RHS1 at the default bound),
	// same chord time loop — but plain Solve, no ladder, fresh workspace.
	b, err := pde.NewBurgers(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Order = 2
	rng := rand.New(rand.NewSource(0))
	rng.Seed(seed)
	draw := func(dst []float64) {
		for i := range dst {
			dst[i] = defaultBound * (2*rng.Float64() - 1)
		}
	}
	draw(b.UPrev)
	draw(b.VPrev)
	draw(b.RHS0)
	draw(b.RHS1)

	var opts core.Options
	opts.SkipAnalog = true
	opts.Newton.Chord = true
	opts.Procs = 1
	// A workspace is what carries the chord factorization across steps;
	// without one each Solve would start cold and refactor.
	opts.Workspace = core.NewWorkspacePool().Get()
	step := 0
	_, err = core.TimeLoop(nil, b, opts, core.TimeLoopOptions{Steps: steps}, func(f *core.Frame) error {
		got := res.frames[step]
		if want := streamChecksum(f.U); got.Checksum != want {
			t.Fatalf("step %d: streamed checksum %s, offline %s", f.Step, got.Checksum, want)
		}
		if len(got.U) != len(f.U) {
			t.Fatalf("step %d: streamed %d unknowns, offline %d", f.Step, len(got.U), len(f.U))
		}
		for i := range f.U {
			if got.U[i] != f.U[i] { //pdevet:allow floateq determinism test wants bit-identity
				t.Fatalf("step %d: U[%d] = %x, want %x", f.Step, i, got.U[i], f.U[i])
			}
		}
		if got.Iterations != f.Iterations || got.Refactorizations != f.Refactorizations {
			t.Fatalf("step %d: work accounting diverged: stream %+v vs offline %+v", f.Step, got, f)
		}
		step++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStreamRepeatFrameBitIdentity is the streaming registry contract:
// identical stream requests produce byte-identical frame lines, whichever
// (possibly warm) worker serves them. Summary wall-time fields may differ.
func TestStreamRepeatFrameBitIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := Request{Problem: KindBurgers2D, N: 4, Seed: 42, Steps: 4}
	first := postStream(t, ts.URL, req)
	if first.code != http.StatusOK {
		t.Fatalf("status %d", first.code)
	}
	for rep := 0; rep < 3; rep++ {
		again := postStream(t, ts.URL, req)
		if len(again.frames) != len(first.frames) {
			t.Fatalf("repeat %d: %d frames, want %d", rep, len(again.frames), len(first.frames))
		}
		for i := range first.frames {
			a, b := first.frames[i], again.frames[i]
			if a.Checksum != b.Checksum || a.Residual != b.Residual || //pdevet:allow floateq determinism test wants bit-identity
				a.Iterations != b.Iterations || a.Refactorizations != b.Refactorizations {
				t.Fatalf("repeat %d frame %d differs: %+v vs %+v", rep, i, b, a)
			}
		}
	}
}

func TestStreamValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxGridN: 8, MaxSteps: 16})
	solveRejects := []struct {
		name string
		req  Request
	}{
		{"steps", Request{Problem: KindBurgers2D, N: 4, Steps: 3}},
		{"dt", Request{Problem: KindBurgers2D, N: 4, Dt: 0.5}},
		{"include_solution", Request{Problem: KindBurgers2D, N: 4, IncludeSolution: true}},
	}
	for _, tc := range solveRejects {
		code, resp, _ := postSolve(t, ts.URL, tc.req)
		if code != http.StatusBadRequest || !strings.Contains(resp.Error, "streaming field") {
			t.Fatalf("solve with %s: status %d error %q, want 400 naming a streaming field", tc.name, code, resp.Error)
		}
	}

	streamRejects := []struct {
		name, wantErr string
		req           Request
	}{
		{"steady kind", "no time loop", Request{Problem: KindBurgersSteady, N: 4, Steps: 2}},
		{"netlist kind", "no time loop", Request{Problem: KindNetlist, Netlist: testNetlist}},
		{"steps over cap", "-max-steps", Request{Problem: KindBurgers2D, N: 4, Steps: 17}},
		{"negative steps", "-max-steps", Request{Problem: KindBurgers2D, N: 4, Steps: -1}},
		{"negative dt", "dt", Request{Problem: KindBurgers2D, N: 4, Dt: -0.5}},
	}
	for _, tc := range streamRejects {
		res := postStream(t, ts.URL, tc.req)
		if res.code != http.StatusBadRequest || !strings.Contains(res.body, tc.wantErr) {
			t.Fatalf("stream with %s: status %d body %q, want 400 mentioning %q", tc.name, res.code, res.body, tc.wantErr)
		}
	}
}

// TestStreamClientDisconnectFreesWorker: a client that hangs up mid-stream
// must not pin the worker — the solve aborts between frames, the solver
// goroutine drains out, and the only worker serves the next request.
func TestStreamClientDisconnectFreesWorker(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	body, err := json.Marshal(Request{Problem: KindBurgers2D, N: 6, Seed: 5, Steps: 256})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(ts.URL+"/v1/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d", hr.StatusCode)
	}
	// Read one frame so the stream is demonstrably mid-trajectory, then
	// hang up.
	br := bufio.NewReader(hr.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		code, resp, _, err := trySolve(ts.URL, Request{Problem: KindBurgers2D, N: 4, Seed: 1})
		if err == nil && code == http.StatusOK && resp.Converged {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker still pinned after disconnect: last code %d err %v", code, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStreamBeginDrainFinishesActive: BeginDrain must let a committed
// stream run to its summary line while refusing new streams and solves.
func TestStreamBeginDrainFinishesActive(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	const steps = 24

	started := make(chan struct{})
	done := make(chan streamResult, 1)
	go func() {
		body, _ := json.Marshal(Request{Problem: KindBurgers2D, N: 6, Seed: 9, Steps: steps})
		hr, err := http.Post(ts.URL+"/v1/stream", "application/json", bytes.NewReader(body))
		if err != nil {
			close(started)
			done <- streamResult{}
			return
		}
		defer hr.Body.Close()
		res := streamResult{code: hr.StatusCode}
		sc := bufio.NewScanner(hr.Body)
		sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
		first := true
		for sc.Scan() {
			var probe struct {
				Done *bool `json:"done"`
			}
			if json.Unmarshal(sc.Bytes(), &probe) == nil && probe.Done != nil {
				var sum StreamSummary
				if json.Unmarshal(sc.Bytes(), &sum) == nil {
					res.summary = &sum
				}
				continue
			}
			var f StreamFrame
			if json.Unmarshal(sc.Bytes(), &f) == nil {
				res.frames = append(res.frames, f)
			}
			if first {
				first = false
				close(started)
			}
		}
		done <- res
	}()

	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("stream never produced a first frame")
	}
	s.BeginDrain()

	res := postStream(t, ts.URL, Request{Problem: KindBurgers2D, N: 4, Steps: 2})
	if res.code != http.StatusServiceUnavailable {
		t.Fatalf("new stream during drain: status %d, want 503", res.code)
	}

	active := <-done
	if active.code != http.StatusOK {
		t.Fatalf("active stream status %d", active.code)
	}
	if active.summary == nil || !active.summary.Done || len(active.frames) != steps {
		t.Fatalf("active stream did not finish cleanly under drain: %d frames, summary %+v",
			len(active.frames), active.summary)
	}
}

// TestStreamMetricsAccounting: one finished stream must move every counter
// of the streaming metrics plane, and the in-flight gauge must return to
// zero.
func TestStreamMetricsAccounting(t *testing.T) {
	const steps = 4
	_, ts := newTestServer(t, Config{Workers: 1})
	res := postStream(t, ts.URL, Request{Problem: KindBurgers2D, N: 4, Seed: 11, Steps: steps})
	if res.code != http.StatusOK || res.summary == nil || !res.summary.Done {
		t.Fatalf("stream failed: %+v", res)
	}

	if v := metricValue(t, ts.URL, "pdeserve_frames_streamed_total"); v != float64(steps) {
		t.Fatalf("frames_streamed_total = %v, want %d", v, steps)
	}
	if v := metricValue(t, ts.URL, "pdeserve_streams_in_flight"); v != 0 {
		t.Fatalf("streams_in_flight = %v after completion", v)
	}
	refac := metricValue(t, ts.URL, "pdeserve_jacobian_refactorizations_total")
	reuse := metricValue(t, ts.URL, "pdeserve_jacobian_reuses_total")
	if refac < 1 || reuse < 1 {
		t.Fatalf("reuse counters flat: refactorizations %v, reuses %v", refac, reuse)
	}
	if float64(res.summary.Refactorizations) != refac {
		t.Fatalf("summary refactorizations %d disagree with metric %v", res.summary.Refactorizations, refac)
	}
	if v := metricValue(t, ts.URL, "pdeserve_first_frame_seconds_count"); v != 1 {
		t.Fatalf("first_frame_seconds_count = %v, want 1", v)
	}
	if v := metricValue(t, ts.URL, "pdeserve_frame_solve_seconds_count"); v != float64(steps) {
		t.Fatalf("frame_solve_seconds_count = %v, want %d", v, steps)
	}
	if v := metricValue(t, ts.URL, "pdeserve_streams_aborted_total"); v != 0 {
		t.Fatalf("streams_aborted_total = %v for a clean stream", v)
	}
}
