//go:build !race

package serve

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
