package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"hybridpde/internal/analog"
	"hybridpde/internal/nonlin"
)

// handleSolve is POST /v1/solve: decode → validate → admit (or shed) →
// acquire a worker → execute under the request deadline → account → encode.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.reject(w, "", http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req Request
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.reject(w, req.Problem, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if err := normalize(&req, &s.cfg); err != nil {
		s.reject(w, req.Problem, http.StatusBadRequest, err.Error())
		return
	}

	release, ok := s.admit()
	if !ok {
		s.m.queueRejects.inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		s.reject(w, req.Problem, http.StatusTooManyRequests, "admission queue full")
		return
	}
	defer release()

	enqueued := now()
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(&req))
	defer cancel()

	wk, err := s.acquireWorker(ctx)
	if err != nil {
		s.reject(w, req.Problem, queueFailureCode(ctx, err), "timed out waiting for a worker")
		return
	}
	resp := Response{Problem: req.Problem, QueueSeconds: since(enqueued)}

	started := now()
	solveErr := wk.run(ctx, &req, &resp)
	resp.SolveSeconds = since(started)
	s.releaseWorker(wk)

	code := s.account(&req, &resp, solveErr)
	if solveErr != nil && code != http.StatusOK {
		resp.Error = solveErr.Error()
	}
	s.writeJSON(w, code, &resp)
}

// account classifies the solve outcome into an HTTP status and feeds the
// metrics plane. Non-convergence is a completed solve (200, converged
// false): the client asked a question and got a faithful answer.
func (s *Server) account(req *Request, resp *Response, err error) int {
	code := http.StatusOK
	switch {
	case err == nil:
	case errors.Is(err, nonlin.ErrNoConvergence):
		resp.Error = "solver did not converge: " + err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; the status is never seen but is still counted.
		code = http.StatusBadRequest
	case errors.Is(err, analog.ErrInsufficientHardware), isClientSolveError(err):
		code = http.StatusUnprocessableEntity
	default:
		code = http.StatusInternalServerError
	}
	s.m.requests.with(req.Problem, strconv.Itoa(code)).inc()
	if code == http.StatusOK {
		s.m.solveLatency.observe(resp.SolveSeconds)
		if resp.Iterations > 0 {
			s.m.newtonIters.observe(float64(resp.Iterations))
		}
		if resp.AnalogUsed {
			s.m.seedsTotal.inc()
			if resp.SeedAccepted {
				s.m.seedsAccepted.inc()
			}
		}
	}
	return code
}

// isClientSolveError recognises failures caused by the request content
// rather than the service: netlist parse/validation errors and capacity
// mismatches surface as positioned analog/core errors.
func isClientSolveError(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "netlist line") ||
		strings.Contains(msg, "exceeds accelerator capacity")
}

// queueFailureCode distinguishes a queue-wait deadline (504) from a client
// disconnect while queued.
func queueFailureCode(ctx context.Context, err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadRequest
}

// handleProblems is GET /v1/problems: the registry listing.
func (s *Server) handleProblems(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, Kinds(s.cfg.MaxGridN))
}

// handleHealthz is GET /healthz: 200 while serving, 503 while draining, so
// load balancers stop routing before shutdown completes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics is GET /metrics: Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.writeProm(w)
}

// reject counts and encodes an error-only response.
func (s *Server) reject(w http.ResponseWriter, problem string, code int, msg string) {
	if problem == "" {
		problem = "unknown"
	}
	s.m.requests.with(problem, strconv.Itoa(code)).inc()
	s.writeJSON(w, code, &Response{Problem: problem, Error: msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	// The status line is committed before encoding, so a failure here can
	// only mean the client hung up; the connection teardown reports that.
	json.NewEncoder(w).Encode(v)
}
