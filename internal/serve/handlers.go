package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hybridpde/internal/analog"
	"hybridpde/internal/cache"
	"hybridpde/internal/nonlin"
)

// DeadlineBudgetHeader carries the milliseconds of deadline a gateway has
// left for a forwarded request. The server treats it as a clamp on the
// request's own deadline resolution: there is no point admitting (or
// burning Newton iterations on) work whose caller will hang up first.
const DeadlineBudgetHeader = "X-Pde-Deadline-Budget"

// deadlineBudget parses the gateway's remaining-deadline header. budget 0
// means no (or an unparseable) header; ok=false means the header says the
// budget is already spent.
func deadlineBudget(r *http.Request) (budget time.Duration, ok bool) {
	h := r.Header.Get(DeadlineBudgetHeader)
	if h == "" {
		return 0, true
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil {
		return 0, true
	}
	if ms <= 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// handleSolve is POST /v1/solve: decode → validate → admit (or shed) →
// acquire a worker → execute under the request deadline → account → encode.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.reject(w, "", http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req Request
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.reject(w, req.Problem, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if err := normalize(&req, &s.cfg); err != nil {
		s.reject(w, req.Problem, http.StatusBadRequest, err.Error())
		return
	}
	budget, budgetOK := deadlineBudget(r)
	if !budgetOK {
		s.m.budgetRejects.Inc()
		s.reject(w, req.Problem, http.StatusGatewayTimeout, "deadline budget exhausted before admission")
		return
	}

	release, ok := s.admit()
	if !ok {
		if s.isDraining() {
			s.reject(w, req.Problem, http.StatusServiceUnavailable, "server is draining")
			return
		}
		s.m.queueRejects.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		s.reject(w, req.Problem, http.StatusTooManyRequests, "admission queue full")
		return
	}
	defer release()

	enqueued := now()
	to := s.timeout(&req)
	if budget > 0 && budget < to {
		to = budget
		s.m.budgetClamped.Inc()
	}
	ctx, cancel := context.WithTimeout(r.Context(), to)
	defer cancel()

	// Singleflight: identical in-flight solves collapse to one. The leader
	// solves and populates the cache; followers wait for its completion and
	// then serve from the cache. A leader that fails caches nothing, and
	// its followers fall through to solving independently.
	if s.cache != nil && CacheableKind(req.Problem) {
		var kb cache.KeyBuilder
		key := solveCacheKey(&req, &kb)
		f, leader := s.cache.Join(key)
		switch {
		case leader:
			defer s.cache.Done(key)
		case f != nil:
			s.m.cacheFlightWaits.Inc()
			if err := f.Wait(ctx); err != nil {
				s.reject(w, req.Problem, queueFailureCode(ctx, err), "timed out waiting for an identical in-flight solve")
				return
			}
		}
	}

	wk, err := s.acquireWorker(ctx)
	if err != nil {
		s.reject(w, req.Problem, queueFailureCode(ctx, err), "timed out waiting for a worker")
		return
	}
	resp := Response{Problem: req.Problem, QueueSeconds: since(enqueued)}

	started := now()
	solveErr := wk.run(ctx, &req, &resp)
	// Transient-fault rungs are worth a bounded number of retries while the
	// worker is still held: a degraded solve under a transient fault spec
	// (or a non-client solve failure) may succeed cleanly on the next run.
	// Backoff is capped and jittered, and always bounded by the request
	// deadline.
	for retry := 0; retry < s.cfg.MaxRetries && s.shouldRetry(solveErr, &resp); retry++ {
		if !sleepBackoff(ctx, wk.rng, retry, s.cfg.RetryBackoff) {
			break
		}
		s.m.retries.Inc()
		resp = Response{Problem: req.Problem, QueueSeconds: resp.QueueSeconds}
		solveErr = wk.run(ctx, &req, &resp)
	}
	resp.SolveSeconds = since(started)

	// account consumes resp.fallback, which aliases worker-owned ladder
	// storage — it must run before the worker can serve another request.
	code := s.account(&req, &resp, solveErr)
	s.releaseWorker(wk)
	resp.fallback = nil
	if solveErr != nil && code != http.StatusOK {
		resp.Error = solveErr.Error()
	}
	s.writeJSON(w, code, &resp)
}

// account classifies the solve outcome into an HTTP status and feeds the
// metrics plane. Non-convergence is a completed solve (200, converged
// false): the client asked a question and got a faithful answer.
func (s *Server) account(req *Request, resp *Response, err error) int {
	code := http.StatusOK
	switch {
	case err == nil:
	case errors.Is(err, nonlin.ErrNoConvergence), errors.Is(err, nonlin.ErrDiverged):
		resp.Error = "solver did not converge: " + err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; the status is never seen but is still counted.
		code = http.StatusBadRequest
	case errors.Is(err, analog.ErrInsufficientHardware), isClientSolveError(err):
		code = http.StatusUnprocessableEntity
	default:
		code = http.StatusInternalServerError
	}
	s.m.requests.With(req.Problem, strconv.Itoa(code)).Inc()
	if fb := resp.fallback; fb != nil {
		for i := range fb.Attempts {
			s.m.ladderAttempts.With(string(fb.Attempts[i].Rung)).Inc()
		}
		s.m.seedsRejected.Add(uint64(fb.SeedRejections))
		if code == http.StatusOK && fb.Final != "" {
			s.m.ladderServed.With(string(fb.Final)).Inc()
			if fb.Degraded {
				s.m.degraded.Inc()
			}
		}
	}
	if code == http.StatusOK {
		s.m.solveLatency.Observe(resp.SolveSeconds)
		if (resp.Iterations > 0 || resp.cacheWarm) && !resp.cacheHit {
			// Replayed hits ran no Newton; observing them would double-count
			// the original solve's iterations. A warm-start serve is observed
			// even at zero iterations — "the continuation start was already
			// converged" is the best outcome the histogram can show.
			s.m.newtonIters.With(startSource(resp)).Observe(float64(resp.Iterations))
		}
		if resp.AnalogUsed && !resp.cacheHit {
			s.m.seedsTotal.Inc()
			if resp.SeedAccepted {
				s.m.seedsAccepted.Inc()
			}
		}
		if resp.cacheOn {
			switch {
			case resp.cacheHit:
				s.m.cacheHits.Inc()
			case resp.cacheWarm:
				s.m.cacheWarmHits.Inc()
			default:
				s.m.cacheMisses.Inc()
			}
			if resp.cacheStale {
				s.m.cacheStale.Inc()
			}
		}
	}
	return code
}

// startSource classifies where a solved (non-replayed) request's digital
// Newton start vector came from: the warm-start continuation rung, an
// accepted analog seed, or the cold pristine start.
func startSource(resp *Response) string {
	switch {
	case resp.cacheWarm:
		return "warm"
	case resp.AnalogUsed && !resp.SeedRejected:
		return "analog"
	default:
		return "cold"
	}
}

// shouldRetry decides whether another run of the same request on the same
// worker could plausibly do better: transient faults make degraded or
// rejected-seed outcomes luck-of-the-draw (the injector redraws burst
// activations every run), and non-client solve failures are worth one more
// attempt regardless. Context errors and client errors never retry.
func (s *Server) shouldRetry(err error, resp *Response) bool {
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) ||
			errors.Is(err, analog.ErrInsufficientHardware) || isClientSolveError(err) {
			return false
		}
		return true
	}
	return s.transientFaults && (resp.Degraded || resp.SeedRejected)
}

// sleepBackoff waits one rung of the capped exponential jittered backoff
// (base·2^attempt plus up to 50% jitter, capped at 250ms), returning false
// if ctx expires first. The RNG belongs to the worker held by this request,
// so drawing jitter from it is race-free; determinism of solves is
// unaffected because refill reseeds it per request.
func sleepBackoff(ctx context.Context, rng *rand.Rand, attempt int, base time.Duration) bool {
	d := base << attempt
	const capBackoff = 250 * time.Millisecond
	if d > capBackoff {
		d = capBackoff
	}
	d += time.Duration(rng.Int63n(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// isClientSolveError recognises failures caused by the request content
// rather than the service: netlist parse/validation errors and capacity
// mismatches surface as positioned analog/core errors.
func isClientSolveError(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "netlist line") ||
		strings.Contains(msg, "exceeds accelerator capacity")
}

// queueFailureCode distinguishes a queue-wait deadline (504) from a client
// disconnect while queued.
func queueFailureCode(ctx context.Context, err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadRequest
}

// handleProblems is GET /v1/problems: the registry listing.
func (s *Server) handleProblems(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, Kinds(s.cfg.MaxGridN, s.cfg.MaxSteps))
}

// Health is the GET /healthz (readiness) body. Gateways parse it: Ready
// false means "stop routing here", and Reason says why — today always
// "draining", the BeginDrain signal that precedes the listener closing.
type Health struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
}

// handleHealthz is GET /healthz: the *readiness* probe. 200 while the
// admission gate is open, 503 with a JSON body once BeginDrain has been
// called — so load balancers and the cluster gateway evict a draining
// backend before its listener closes, instead of discovering the closure
// as connection errors.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeJSON(w, http.StatusServiceUnavailable, Health{Ready: false, Reason: "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, Health{Ready: true})
}

// handleLivez is GET /livez: the *liveness* probe. It answers 200 for as
// long as the process can serve HTTP at all — including while draining —
// so orchestrators distinguish "shutting down cleanly, leave it alone"
// from "wedged, restart it".
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics is GET /metrics: Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.cache != nil {
		s.m.cacheEntries.Set(int64(s.cache.Len()))
	}
	s.m.writeProm(w)
}

// reject counts and encodes an error-only response.
func (s *Server) reject(w http.ResponseWriter, problem string, code int, msg string) {
	if problem == "" {
		problem = "unknown"
	}
	s.m.requests.With(problem, strconv.Itoa(code)).Inc()
	s.writeJSON(w, code, &Response{Problem: problem, Error: msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	// The status line is committed before encoding, so a failure here can
	// only mean the client hung up; the connection teardown reports that.
	json.NewEncoder(w).Encode(v)
}
