package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"hybridpde/internal/analog"
	"hybridpde/internal/cache"
	"hybridpde/internal/core"
	"hybridpde/internal/fault"
	"hybridpde/internal/la"
	"hybridpde/internal/pde"
	"hybridpde/internal/problem"
)

// maxAnalogVars is the practical accelerator capacity limit (paper Table 4:
// a 16×16 grid is the largest direct analog solve).
var maxAnalogVars = analog.VariablesForGrid(analog.MaxPracticalGrid)

// worker is one execution context of the pool. It owns a pooled
// core.Workspace, a deterministic RNG, per-shape cached problems, and
// lazily-built analog resources, so the steady-state request path — a
// same-shaped solve hitting a warm cache — performs no allocation. Workers
// are checked out of the server's channel for the duration of one request,
// so none of this state is ever shared between concurrent solves.
type worker struct {
	ws   *core.Workspace
	rng  *rand.Rand
	grid map[gridKey]*gridEntry
	// seeders caches one analog seeder per requested capacity; the fabric
	// mismatch draw is deterministic in the server seed, so equal requests
	// get equal accelerators regardless of which worker serves them.
	seeders map[int]core.Seeder
	// fab is the netlist-validation fabric, allocated on first netlist
	// request and freed (FreeAll) after each one.
	fab  *analog.Fabric
	seed int64 // server base seed for fabrics and accelerators
	// ladder orchestrates the degradation ladder over the workspace;
	// lopts/gate come from the server config.
	ladder *core.Ladder
	lopts  core.LadderOptions
	gate   float64
	// faults, when non-nil, is attached (salted) to every accelerator this
	// worker builds.
	faults *fault.Spec
	// procs is the shared per-solve worker count, read at solve time so
	// Resize's rebalancing reaches workers already in the pool; the
	// workspace's sparse solver owns the actual goroutine pool.
	procs *atomic.Int32
	// store is the server-shared solve cache (nil when disabled); bind
	// adapts it to the ladder's cache rungs one request at a time, and kb
	// builds content keys without allocating.
	store  *cache.Store
	bind   cacheBinding
	kb     cache.KeyBuilder
	radius float64
}

// gridKey identifies a cached problem shape. Every field the constructors
// bake into the stencil participates; the per-request seed and bound do not
// (they only change field values, which refill overwrites in place).
type gridKey struct {
	kind  string
	n     int
	order int
	re    float64
}

// gridEntry is one cached problem with its per-shape scratch vectors.
type gridEntry struct {
	sys     problem.SparseSystem
	burgers *pde.Burgers       // 2-D kinds
	steady  *pde.BurgersSteady // steady kind only
	b1d     *pde.Burgers1D     // 1-D kind
	root    []float64          // steady kind: the planted root
	u0      []float64          // steady kind: perturbed start (InitialGuess)
	guess   []float64          // warm-start snapshot for the initial residual
	f       []float64          // residual scratch
}

func newWorker(cfg *Config, pool *core.WorkspacePool, seed int64, store *cache.Store, procs *atomic.Int32) *worker {
	wk := &worker{
		ws:      pool.Get(),
		rng:     rand.New(rand.NewSource(seed)),
		grid:    map[gridKey]*gridEntry{},
		seeders: map[int]core.Seeder{},
		seed:    seed,
		lopts:   core.LadderOptions{GateFactor: cfg.SeedGate},
		gate:    cfg.SeedGate,
		faults:  cfg.Faults,
		procs:   procs,
		store:   store,
		radius:  cfg.WarmRadius,
	}
	wk.bind.store = store
	// The ladder always carries all six rungs; with no cache bound (or a
	// non-cacheable request) the cache and warm-start rungs skip without a
	// trace, so the report is bit-identical to the four-rung ladder.
	wk.ladder = core.NewLadderRungs(core.CachedRungs(&wk.bind)...)
	return wk
}

// run executes one admitted request. Cold paths (first request of a shape,
// first netlist, first analog capacity) build and cache their resources;
// everything after that happens in the allocation-free solveGrid.
func (wk *worker) run(ctx context.Context, req *Request, resp *Response) error {
	if req.Problem == KindNetlist {
		return wk.runNetlist(req, resp)
	}
	e, err := wk.entry(req)
	if err != nil {
		return err
	}
	var seeder core.Seeder
	if req.Analog {
		if seeder, err = wk.seederFor(req.AnalogVars); err != nil {
			return err
		}
	}
	resp.Dim = e.sys.Dim()
	return wk.solveGrid(ctx, req, e, seeder, resp)
}

// entry returns the cached problem of the request's shape, building it on
// first use.
func (wk *worker) entry(req *Request) (*gridEntry, error) {
	key := gridKey{kind: req.Problem, n: req.N, order: req.Order, re: req.Re}
	if e, ok := wk.grid[key]; ok {
		return e, nil
	}
	e := &gridEntry{}
	switch req.Problem {
	case KindBurgers2D, KindBurgersSteady:
		b, err := pde.NewBurgers(req.N, req.Re)
		if err != nil {
			return nil, err
		}
		b.Order = req.Order
		e.burgers = b
		e.sys = b
		if req.Problem == KindBurgersSteady {
			e.steady = pde.NewBurgersSteady(b)
			e.sys = e.steady
			e.root = make([]float64, e.steady.Dim())
			e.u0 = make([]float64, e.steady.Dim())
		}
	case KindBurgers1D:
		b, err := pde.NewBurgers1D(req.N, req.Re)
		if err != nil {
			return nil, err
		}
		e.b1d = b
		e.sys = b
	default:
		return nil, fmt.Errorf("serve: unknown problem kind %q", req.Problem)
	}
	e.guess = make([]float64, e.sys.Dim())
	e.f = make([]float64, e.sys.Dim())
	wk.grid[key] = e
	return e, nil
}

// seederFor returns the cached analog seeder for the given accelerator
// capacity, building the accelerator on first use. The accelerator seed
// folds in the capacity so differently-sized fabrics draw independent
// mismatch, while staying deterministic in the server seed. In chaos mode
// the configured fault spec is compiled into an injector with the same
// salt, so the fault sequence is equally deterministic.
func (wk *worker) seederFor(vars int) (core.Seeder, error) {
	if s, ok := wk.seeders[vars]; ok {
		return s, nil
	}
	tiles := analog.PrototypeChip.Tiles
	chips := (vars + tiles - 1) / tiles
	acc := analog.NewAccelerator(analog.Config{Chips: chips, Seed: wk.seed + int64(vars)})
	if wk.faults != nil {
		inj, err := fault.New(wk.faults, wk.seed+int64(vars))
		if err != nil {
			return nil, fmt.Errorf("serve: fault spec: %w", err)
		}
		acc.SetInjector(inj)
	}
	s := core.AnalogSeeder(acc)
	wk.seeders[vars] = s
	return s, nil
}

// refill rewrites the cached problem's fields in place from the request
// seed, so equal requests are bit-identical and repeated requests allocate
// nothing. Steady problems are additionally re-rooted: a root is planted
// inside the dynamic range and the forcing set so it solves exactly, with
// the start perturbed off it (the repeated-Newton benchmark protocol).
//
//pdevet:noalloc
func (wk *worker) refill(req *Request, e *gridEntry) error {
	wk.rng.Seed(req.Seed)
	bound := req.Bound
	switch {
	case e.b1d != nil:
		b := e.b1d
		wk.drawInto(b.UPrev, bound)
		wk.drawInto(b.RHS, bound)
		b.Left = bound * (2*wk.rng.Float64() - 1)
		b.Right = bound * (2*wk.rng.Float64() - 1)
	case e.steady != nil:
		b := e.burgers
		wk.drawInto(b.UPrev, bound)
		wk.drawInto(b.VPrev, bound)
		wk.drawInto(e.root, bound)
		if err := e.steady.SetRHSForRoot(e.root); err != nil {
			return err
		}
		for i := range e.u0 {
			e.u0[i] = e.root[i] + 0.05*bound*(2*wk.rng.Float64()-1)
		}
	default:
		b := e.burgers
		wk.drawInto(b.UPrev, bound)
		wk.drawInto(b.VPrev, bound)
		wk.drawInto(b.RHS0, bound)
		wk.drawInto(b.RHS1, bound)
	}
	return nil
}

// drawInto fills dst uniformly from ±bound.
//
//pdevet:noalloc
func (wk *worker) drawInto(dst []float64, bound float64) {
	for i := range dst {
		dst[i] = bound * (2*wk.rng.Float64() - 1)
	}
}

// solveGrid is the hot request path: refill the cached problem, run the
// hybrid pipeline with the worker's pooled Workspace, and fill the
// response. With a warm per-shape cache this stays at 0 allocs/op — the
// property that lets the service absorb sustained same-shaped traffic
// without GC pressure (TestServerSteadyPathZeroAlloc pins it dynamically).
//
//pdevet:noalloc
func (wk *worker) solveGrid(ctx context.Context, req *Request, e *gridEntry, seeder core.Seeder, resp *Response) error {
	if err := wk.refill(req, e); err != nil {
		return err
	}

	if on := wk.store != nil && CacheableKind(req.Problem); on {
		wk.bind.rebind(true, solveCacheKey(req, &wk.kb), solveCacheBucket(req, &wk.kb), req.Re, req.Bound, wk.radius)
	} else {
		wk.bind.rebind(false, cache.Key{}, cache.Key{}, 0, 0, 0)
	}

	var opts core.Options
	opts.Workspace = wk.ws
	opts.Perf = backendFor(req.Backend)
	opts.Procs = int(wk.procs.Load())
	if seeder != nil {
		opts.Seeder = seeder
	} else {
		opts.SkipAnalog = true
	}
	if e.u0 != nil {
		opts.InitialGuess = e.u0
	}

	// Initial residual at the start the solve will use — the baseline the
	// analog-seed acceptance metric compares against.
	start := e.u0
	if start == nil {
		if ws, ok := e.sys.(problem.WarmStarter); ok {
			ws.InitialGuessInto(e.guess)
		} else {
			copy(e.guess, e.sys.InitialGuess())
		}
		start = e.guess
	}
	if err := e.sys.Eval(start, e.f); err != nil {
		return err
	}
	resp.InitialResidual = la.Norm2(e.f)

	rep, err := wk.ladder.Solve(ctx, e.sys, opts, wk.lopts)
	resp.Converged = rep.Digital.Converged
	resp.Iterations = rep.Digital.TotalIters
	resp.Residual = rep.FinalResidual
	resp.SeedResidual = rep.SeedResidual
	resp.AnalogUsed = rep.AnalogUsed
	resp.SeedAccepted = rep.AnalogUsed && !rep.SeedRejected && rep.SeedResidual < resp.InitialResidual
	resp.Decomposed = rep.Decomposed
	resp.Subproblems = rep.Subproblems
	resp.GSSweeps = rep.GSSweeps
	resp.ModelSeconds = rep.TotalSeconds
	resp.ModelEnergyJ = rep.TotalEnergyJ
	if fb := rep.Fallback; fb != nil {
		resp.fallback = fb
		resp.Degraded = fb.Degraded
		resp.Rung = string(fb.Final)
		resp.SeedRejected = fb.SeedRejections > 0
		resp.RungAttempts = len(fb.Attempts)
	}
	resp.cacheOn = wk.bind.on
	if hit := wk.bind.hit; hit != nil {
		// Exact hit: replay the original response's ladder summary so a
		// repeated request gets a byte-identical body (the cache's
		// existence is visible in /metrics, not in the response).
		resp.cacheHit = true
		resp.SeedAccepted = hit.seedAccepted
		resp.Degraded = hit.degraded
		resp.Rung = hit.rung
		resp.SeedRejected = hit.seedRejected
		resp.RungAttempts = hit.rungAttempts
	} else if fb := rep.Fallback; wk.bind.on && fb != nil {
		if fb.Final == core.RungWarmStart {
			resp.cacheWarm = true
		}
		for i := range fb.Attempts {
			if fb.Attempts[i].Rung == core.RungWarmStart && fb.Attempts[i].SeedRejected {
				resp.cacheStale = true
			}
		}
		if err == nil && rep.Digital.Converged {
			wk.cachePut(&rep, resp)
		}
	}
	return err
}

// cachePut stores a cold (or warm-started) converged solve for future
// exact replays and warm starts. Deliberately not on the noalloc path: a
// Put happens at most once per distinct request identity; steady repeat
// traffic is all hits.
func (wk *worker) cachePut(rep *core.Report, resp *Response) {
	meta := &cachedSolve{
		core: core.CachedSolve{
			Converged: rep.Digital.Converged, Iterations: rep.Digital.TotalIters,
			Residual: rep.FinalResidual, SeedResidual: rep.SeedResidual,
			AnalogUsed: rep.AnalogUsed, Decomposed: rep.Decomposed,
			Subproblems: rep.Subproblems, GSSweeps: rep.GSSweeps,
			Seconds: rep.TotalSeconds, EnergyJ: rep.TotalEnergyJ,
		},
		seedAccepted: resp.SeedAccepted,
		degraded:     resp.Degraded,
		rung:         resp.Rung,
		seedRejected: resp.SeedRejected,
		rungAttempts: resp.RungAttempts,
	}
	wk.store.Put(wk.bind.key, wk.bind.bucket, wk.bind.coords[:], rep.U, meta)
}

// backendFor maps the request backend name to its PerfBackend; normalize
// has already rejected unknown names.
func backendFor(name string) core.PerfBackend {
	switch name {
	case "gpu":
		return core.PerfGPU
	case "analog-la":
		return core.PerfAnalogLA
	default:
		return core.PerfCPU
	}
}

// runNetlist parses and validates an analog program text against the
// worker's calibrated fabric, reporting what the program claimed. The
// fabric is freed afterwards so requests are independent.
func (wk *worker) runNetlist(req *Request, resp *Response) error {
	if wk.fab == nil {
		wk.fab = analog.NewFabric(analog.Config{Seed: wk.seed})
		wk.fab.Calibrate()
	}
	defer wk.fab.FreeAll()
	net, err := analog.ParseNetlist(wk.fab, req.Netlist)
	resp.Components = wk.fab.AllocatedComponents()
	if net != nil {
		resp.Connections = len(net.Connections())
		resp.Committed = net.Committed()
		resp.Running = net.Running()
	}
	return err
}
