package serve

import (
	"hybridpde/internal/cache"
	"hybridpde/internal/core"
)

// Cache quantisation scales: request parameters are snapped to a 1e-6 grid
// before keying, so floats that agree to within half a micro-cell share a
// content address. The request deadline deliberately never participates —
// it bounds the computation, it does not change the answer.
const (
	cacheReScale    = 1e6
	cacheBoundScale = 1e6
)

// defaultWarmRadius is the parameter-space distance (Euclidean over
// (re, bound)) within which a cached neighbour may warm-start a solve.
const defaultWarmRadius = 0.25

// CacheableKind reports whether a kind's solves are cacheable. Netlist
// requests are excluded: their fabric state is rebuilt per request and the
// response is already cheap. Exported for the cluster gateway, whose
// request-identity dedup follows the same split (grid kinds dedupe on
// SolveKey, netlist on the program-text shape key).
func CacheableKind(kind string) bool {
	switch kind {
	case KindBurgers2D, KindBurgersSteady, KindBurgers1D:
		return true
	}
	return false
}

// solveCacheKey digests the full content identity of a normalized grid
// request: every field that changes the solve's answer participates, with
// the continuation parameters quantised.
//
//pdevet:noalloc
func solveCacheKey(req *Request, kb *cache.KeyBuilder) cache.Key {
	kb.Reset()
	kb.Str(1, req.Problem)
	kb.I64(2, int64(req.N))
	kb.I64(3, int64(req.Order))
	kb.F64Q(4, req.Re, cacheReScale)
	kb.F64Q(5, req.Bound, cacheBoundScale)
	kb.I64(6, req.Seed)
	kb.Str(7, req.Backend)
	kb.I64(8, boolKey(req.Analog))
	kb.I64(9, int64(req.AnalogVars))
	return kb.Sum()
}

// solveCacheBucket digests the identity minus the continuation coordinates
// (re, bound): entries in one bucket describe the same random-field
// realisation at different parameter points, which is exactly the set a
// warm start may legitimately continue from.
//
//pdevet:noalloc
func solveCacheBucket(req *Request, kb *cache.KeyBuilder) cache.Key {
	kb.Reset()
	kb.Str(1, req.Problem)
	kb.I64(2, int64(req.N))
	kb.I64(3, int64(req.Order))
	kb.I64(6, req.Seed)
	kb.Str(7, req.Backend)
	kb.I64(8, boolKey(req.Analog))
	kb.I64(9, int64(req.AnalogVars))
	return kb.Sum()
}

// ShapeKey digests the *shape* of a request — the identity a cluster
// gateway routes on. For grid kinds that is (problem id, n, order): every
// request sharing those fields exercises the same Jacobian pattern, the
// same per-worker problem cache and the same symbolic setup on a backend,
// so pinning a shape to one backend is what keeps that backend's caches
// hot. Seed and the continuation parameters (re, bound) deliberately do
// not participate: they select entries *within* a backend's caches, not
// which backend should hold them. Netlist requests key on the program text
// instead — identical programs pin together (and dedupe in flight),
// distinct programs spread across the ring.
//
// The tag space is disjoint from SolveKey's by the leading tag byte, so a
// shape key can never collide with a full content address.
//
//pdevet:noalloc
func ShapeKey(req *Request, kb *cache.KeyBuilder) cache.Key {
	kb.Reset()
	kb.Str(32, req.Problem)
	if req.Problem == KindNetlist {
		kb.Str(33, req.Netlist)
	} else {
		kb.I64(34, int64(req.N))
		kb.I64(35, int64(req.Order))
	}
	return kb.Sum()
}

// SolveKey digests the full content identity of a normalized request: the
// exported form of the solve cache's exact-hit key, shared with the
// cluster gateway so identical concurrent requests can be deduplicated
// before they ever reach a backend connection. Call Normalize first —
// defaults participate in the digest.
//
//pdevet:noalloc
func SolveKey(req *Request, kb *cache.KeyBuilder) cache.Key {
	return solveCacheKey(req, kb)
}

//pdevet:noalloc
func boolKey(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// cachedSolve is the meta value stored with every cache entry: the core
// replay scalars plus the original response's ladder summary, so an exact
// repeat serves a byte-identical body (cache visibility lives in /metrics,
// not in the response).
type cachedSolve struct {
	core         core.CachedSolve
	seedAccepted bool
	degraded     bool
	rung         string
	seedRejected bool
	rungAttempts int
}

// cacheBinding adapts the server's shared cache.Store to core.SolveCache
// for one request at a time. Each worker owns one binding; solveGrid
// rebinds it per request, and the ladder's cache rungs consult it. A
// binding that is off (cache disabled, or a non-cacheable kind) makes both
// rungs skip, which keeps cache-off solves bit-identical to the
// pre-cache ladder.
type cacheBinding struct {
	store  *cache.Store
	key    cache.Key
	bucket cache.Key
	coords [2]float64
	radius float64
	// hit is the exact-hit meta consumed by this request, nil otherwise.
	hit *cachedSolve
	on  bool
}

// rebind points the binding at one request's identity; off bindings clear
// the previous request's state only.
//
//pdevet:noalloc
func (b *cacheBinding) rebind(on bool, key, bucket cache.Key, re, bound, radius float64) {
	b.on = on
	b.hit = nil
	b.key = key
	b.bucket = bucket
	b.coords[0] = re
	b.coords[1] = bound
	b.radius = radius
}

// Lookup implements core.SolveCache: an exact content-address hit.
//
//pdevet:noalloc
func (b *cacheBinding) Lookup(dst []float64) (core.CachedSolve, bool) {
	if !b.on {
		return core.CachedSolve{}, false
	}
	meta, ok := b.store.Get(b.key, dst)
	if !ok {
		return core.CachedSolve{}, false
	}
	cs := meta.(*cachedSolve)
	b.hit = cs
	return cs.core, true
}

// Nearest implements core.SolveCache: the warm-start continuation
// candidate from the same parameter bucket.
//
//pdevet:noalloc
func (b *cacheBinding) Nearest(dst []float64) bool {
	if !b.on || b.radius <= 0 {
		return false
	}
	_, _, ok := b.store.Nearest(b.bucket, b.coords[:], b.radius, dst)
	return ok
}
