package promtext

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramCumulativeBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	WriteHistogram(&sb, "x", "help", h)
	out := sb.String()
	for _, want := range []string{
		`x_bucket{le="1"} 1`,
		`x_bucket{le="2"} 3`,
		`x_bucket{le="4"} 4`,
		`x_bucket{le="+Inf"} 5`,
		`x_sum 106.5`,
		`x_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(1) // le="1" is inclusive, Prometheus semantics
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts[0] != 1 {
		t.Fatalf("observation at bound landed in counts %v, want first bucket", h.counts)
	}
}

func TestCounterVecRenderSorted(t *testing.T) {
	v := NewCounterVec("problem", "code")
	v.With("netlist", "422").Inc()
	v.With("burgers2d", "200").Inc()
	v.With("burgers2d", "200").Inc()
	var sb strings.Builder
	WriteCounterVec(&sb, "x_total", "help", v)
	out := sb.String()
	i := strings.Index(out, `x_total{problem="burgers2d",code="200"} 2`)
	j := strings.Index(out, `x_total{problem="netlist",code="422"} 1`)
	if i < 0 || j < 0 {
		t.Fatalf("labelled children missing:\n%s", out)
	}
	if i > j {
		t.Fatal("labelled children not rendered in sorted order")
	}
}

func TestGaugeVecRenderSorted(t *testing.T) {
	v := NewGaugeVec("backend")
	v.With("b").Set(2)
	v.With("a").Set(1)
	var sb strings.Builder
	WriteGaugeVec(&sb, "x", "help", v)
	out := sb.String()
	i := strings.Index(out, `x{backend="a"} 1`)
	j := strings.Index(out, `x{backend="b"} 2`)
	if i < 0 || j < 0 || i > j {
		t.Fatalf("gauge children missing or unsorted:\n%s", out)
	}
}

// TestScrapeByteIdentical pins the render-determinism contract: with
// enough labelled children that Go's per-iteration map order randomization
// would show through an unsorted render, repeated scrapes of unchanged
// state must be byte-identical.
func TestScrapeByteIdentical(t *testing.T) {
	cv := NewCounterVec("problem", "code")
	hv := NewHistogramVec("start", 1, 4, 16)
	gv := NewGaugeVec("backend")
	for _, pr := range []string{"burgers2d", "netlist", "bratu1d", "fisher", "heat3d", "allencahn"} {
		for _, c := range []string{"200", "422", "503"} {
			cv.With(pr, c).Inc()
		}
		hv.With(pr).Observe(7)
		gv.With(pr).Set(3)
	}
	render := func() string {
		var sb strings.Builder
		WriteCounterVec(&sb, "a_total", "h", cv)
		WriteHistogramVec(&sb, "b", "h", hv)
		WriteGaugeVec(&sb, "c", "h", gv)
		return sb.String()
	}
	first := render()
	for i := 0; i < 30; i++ {
		if again := render(); again != first {
			t.Fatalf("scrape %d differs from first scrape:\n--- first\n%s\n--- scrape %d\n%s", i, first, i, again)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	cv := NewCounterVec("problem", "code")
	var g Gauge
	h := NewHistogram(0.001, 0.01, 0.1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				cv.With("burgers2d", "200").Inc()
				g.Inc()
				h.Observe(float64(i) * 1e-4)
				g.Dec()
			}
		}()
	}
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		sb.Reset()
		WriteCounterVec(&sb, "x_total", "h", cv) // scrape concurrently with writes
		WriteHistogram(&sb, "y", "h", h)
	}
	wg.Wait()
	if got := cv.With("burgers2d", "200").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != 4000 {
		t.Fatalf("histogram count = %d, want 4000", got)
	}
}

func TestFormatBound(t *testing.T) {
	cases := map[float64]string{0.00025: "0.00025", 1.024: "1.024", 8.192: "8.192", 1: "1", 512: "512"}
	for in, want := range cases {
		if got := FormatBound(in); got != want {
			t.Errorf("FormatBound(%v) = %q, want %q", in, got, want)
		}
	}
}
