// Package promtext is the repo's shared, deliberately small stdlib-only
// implementation of the Prometheus text exposition format (version 0.0.4).
// The dependency rule forbids client_golang, and the subset a solve service
// and its gateway need — counters, gauges, cumulative histograms, small
// label vectors — is a couple hundred lines. Metric values are atomics or
// mutex-guarded maps, so every type here is safe for concurrent request
// handlers; every renderer emits labelled children in sorted order, so
// scrapes of unchanged state are byte-identical (the contract the maprange
// lint rule guards statically).
package promtext

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, in-flight solves).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set stores x.
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed cumulative buckets, the
// Prometheus histogram shape (le="..." upper bounds plus +Inf, _sum,
// _count).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds, +Inf implicit
	counts []uint64  // len(bounds)+1; last element is the +Inf bucket
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram over the given strictly increasing
// bucket upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the running sum of all observations. Together with Count it
// lets a controller derive per-interval means from cumulative deltas.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// HistogramVec is a histogram family with one label; children are created
// on first use and rendered in sorted label order under one family header.
type HistogramVec struct {
	mu     sync.Mutex
	label  string
	bounds []float64
	vals   map[string]*Histogram
}

// NewHistogramVec builds a histogram family keyed by one label name.
func NewHistogramVec(label string, bounds ...float64) *HistogramVec {
	return &HistogramVec{label: label, bounds: bounds, vals: map[string]*Histogram{}}
}

// With returns the child histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.vals[value]
	if !ok {
		h = NewHistogram(v.bounds...)
		v.vals[value] = h
	}
	return h
}

// CounterVec is a counter family with a fixed label-name set; children are
// created on first use and rendered in sorted label order.
type CounterVec struct {
	mu     sync.Mutex
	labels []string // label names, in render order
	vals   map[string]*Counter
}

// NewCounterVec builds a counter family keyed by the given label names.
func NewCounterVec(labels ...string) *CounterVec {
	return &CounterVec{labels: labels, vals: map[string]*Counter{}}
}

// With returns the child counter for the given label values (same order as
// the label names).
func (v *CounterVec) With(values ...string) *Counter {
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.vals[key]
	if !ok {
		c = &Counter{}
		v.vals[key] = c
	}
	return c
}

// GaugeVec is a gauge family with a fixed label-name set; children are
// created on first use and rendered in sorted label order.
type GaugeVec struct {
	mu     sync.Mutex
	labels []string
	vals   map[string]*Gauge
}

// NewGaugeVec builds a gauge family keyed by the given label names.
func NewGaugeVec(labels ...string) *GaugeVec {
	return &GaugeVec{labels: labels, vals: map[string]*Gauge{}}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.vals[key]
	if !ok {
		g = &Gauge{}
		v.vals[key] = g
	}
	return g
}

// WriteHeader emits the HELP and TYPE lines of one metric family.
func WriteHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteCounter renders a single unlabelled counter family.
func WriteCounter(w io.Writer, name, help string, c *Counter) {
	WriteHeader(w, name, help, "counter")
	fmt.Fprintf(w, "%s %d\n", name, c.Value())
}

// WriteGauge renders a single unlabelled gauge family.
func WriteGauge(w io.Writer, name, help string, g *Gauge) {
	WriteHeader(w, name, help, "gauge")
	fmt.Fprintf(w, "%s %d\n", name, g.Value())
}

// WriteCounterVec renders a labelled counter family, children in sorted
// label order.
func WriteCounterVec(w io.Writer, name, help string, v *CounterVec) {
	WriteHeader(w, name, help, "counter")
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, k := range sortedKeysCounter(v.vals) {
		fmt.Fprintf(w, "%s{%s} %d\n", name, labelPairs(v.labels, k), v.vals[k].Value())
	}
}

// WriteGaugeVec renders a labelled gauge family, children in sorted label
// order.
func WriteGaugeVec(w io.Writer, name, help string, v *GaugeVec) {
	WriteHeader(w, name, help, "gauge")
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, k := range sortedKeysGauge(v.vals) {
		fmt.Fprintf(w, "%s{%s} %d\n", name, labelPairs(v.labels, k), v.vals[k].Value())
	}
}

// WriteHistogram renders an unlabelled histogram family: cumulative
// buckets, then _sum and _count.
func WriteHistogram(w io.Writer, name, help string, h *Histogram) {
	WriteHeader(w, name, help, "histogram")
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, FormatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}

// WriteHistogramVec renders a labelled histogram family: children in
// sorted label-value order, each with the standard cumulative bucket, _sum
// and _count series carrying the label.
func WriteHistogramVec(w io.Writer, name, help string, v *HistogramVec) {
	WriteHeader(w, name, help, "histogram")
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := v.vals[k]
		h.mu.Lock()
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, v.label, k, FormatBound(b), cum)
		}
		cum += h.counts[len(h.bounds)]
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, v.label, k, cum)
		fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, v.label, k, h.sum)
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, v.label, k, h.count)
		h.mu.Unlock()
	}
}

// sortedKeysCounter collects and sorts a counter map's keys so renders are
// independent of Go's randomized map order.
func sortedKeysCounter(vals map[string]*Counter) []string {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedKeysGauge is sortedKeysCounter for gauge maps.
func sortedKeysGauge(vals map[string]*Gauge) []string {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// labelPairs renders `name="value",…` for one child's joined key.
func labelPairs(labels []string, key string) string {
	values := strings.Split(key, "\xff")
	parts := make([]string, len(values))
	for i, lv := range values {
		parts[i] = fmt.Sprintf("%s=%q", labels[i], lv)
	}
	return strings.Join(parts, ",")
}

// FormatBound renders a bucket bound the way Prometheus clients do:
// shortest representation that round-trips.
func FormatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", b), "0"), ".")
}
