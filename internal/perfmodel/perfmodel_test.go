package perfmodel

import (
	"testing"

	"hybridpde/internal/nonlin"
)

func TestCPUTimeScalesWithWork(t *testing.T) {
	small := nonlin.Result{Iterations: 5, FactorOps: 1e6}
	big := nonlin.Result{Iterations: 5, FactorOps: 1e9}
	if CPUTime(big, 100) <= CPUTime(small, 100) {
		t.Fatal("more factorization work must cost more CPU time")
	}
	more := nonlin.Result{Iterations: 50, FactorOps: 1e6}
	if CPUTime(more, 100) <= CPUTime(small, 100) {
		t.Fatal("more iterations must cost more CPU time")
	}
}

func TestCPUEnergyChargesDampingAttempts(t *testing.T) {
	clean := nonlin.Result{Iterations: 10, TotalIters: 10, FactorOps: 1e7}
	damped := nonlin.Result{Iterations: 10, TotalIters: 40, FactorOps: 1e7}
	if CPUTime(clean, 100) != CPUTime(damped, 100) {
		t.Fatal("time counts only the successful attempt (paper protocol)")
	}
	if CPUEnergy(damped, 100) <= CPUEnergy(clean, 100) {
		t.Fatal("energy must charge the failed damping attempts")
	}
}

func TestGPUIterSecondsMonotonic(t *testing.T) {
	if GPUIterSeconds(2048) <= GPUIterSeconds(512) {
		t.Fatal("bigger problems must cost more per GPU iteration")
	}
	if GPUIterSeconds(1) < GPUIterBaseSeconds {
		t.Fatal("launch latency floor missing")
	}
}

func TestGPUEnergyVsTimeAsymmetry(t *testing.T) {
	res := nonlin.Result{Iterations: 20, TotalIters: 60}
	time := GPUTime(res, 512)
	energy := GPUEnergy(res, 512)
	// Energy must correspond to 60 iterations at GPUPowerWatts while time
	// corresponds to 20.
	if energy <= time*GPUPowerWatts*1.01 {
		t.Fatalf("energy %g J should exceed counted-time energy %g J", energy, time*GPUPowerWatts)
	}
}

func TestZeroIterationEdgeCases(t *testing.T) {
	res := nonlin.Result{}
	if CPUTime(res, 100) != 0 || GPUTime(res, 100) != 0 {
		t.Fatal("zero-work solves must cost zero time")
	}
	if CPUEnergy(res, 100) != 0 || GPUEnergy(res, 100) != 0 {
		t.Fatal("zero-work solves must cost zero energy")
	}
}
