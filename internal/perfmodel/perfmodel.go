// Package perfmodel prices the work the digital solvers perform on the
// paper's hardware baselines. None of that hardware is available here, so —
// as documented in DESIGN.md — the algorithms run for real (producing true
// iteration counts, damping schedules and factorization work) and this
// package converts that work into seconds and joules with constants
// calibrated against the paper's published measurements.
//
// The split matters: who wins and by how much must come from the measured
// algorithmic behaviour, not from these constants. The constants only map
// "one damped-Newton iteration at problem size n" onto a wall-clock cost.
package perfmodel

import "hybridpde/internal/nonlin"

// CPU model — dual Xeon X5550, 16-thread OpenMP damped Newton (§6.1).
const (
	// CPUEffectiveFLOPS is the sustained multiply-add rate of the
	// vectorised 16-thread banded factorization. X5550 peak is ~85 GFLOPS
	// across both sockets; sparse banded work sustains a few percent.
	CPUEffectiveFLOPS = 2.0e9
	// CPUIterOverheadSeconds is the per-Newton-iteration fixed cost
	// (thread fork/join, residual evaluation, convergence test). Sets the
	// small-problem floor of Figure 7 (~10⁻⁵ s for 2×2 problems).
	CPUIterOverheadSeconds = 4e-6
	// CPUIterPerDimSeconds is the dimension-proportional per-iteration
	// cost of the general sparse factorise+solve path (symbolic
	// bookkeeping, irregular memory access), which dominates the banded
	// flop count on real hardware. Calibrated against Figure 7's digital
	// series: ≈4 ms per iteration at 16×16 (512 unknowns).
	CPUIterPerDimSeconds = 2e-6
	// CPUPowerWatts is the package power of the two sockets under load,
	// used for energy ablations.
	CPUPowerWatts = 190.0
)

// GPU model — Nvidia GTX 1070 running cuSolver sparse QR (§6.3).
const (
	// GPUIterBaseSeconds is the per-iteration launch/latency floor of a
	// cuSolver factorise+solve round trip.
	GPUIterBaseSeconds = 2.0e-3
	// GPUIterPerDimSeconds scales the factorization with problem
	// dimension. Together with the measured iteration counts of the Go
	// solver this reproduces the paper's 0.51 s / 2.75 s baselines at
	// 16×16 / 32×32 (Figure 9).
	GPUIterPerDimSeconds = 2.7e-5
	// GPUPowerWatts is the sustained board power while factorising.
	// Energy charges *all* Newton work including the damping attempts the
	// time metric forgives (the paper counts only the final successful
	// attempt's time, §6.1, but the joules were still burned).
	GPUPowerWatts = 38.0
)

// CPUTime prices a Newton solve on the CPU baseline from its measured
// work: factorization multiply-adds plus per-iteration overheads, counting
// only the *successful* damping attempt (the paper's timing protocol). dim
// is the problem dimension.
func CPUTime(res nonlin.Result, dim int) float64 {
	return float64(res.FactorOps)/CPUEffectiveFLOPS +
		float64(res.Iterations)*(CPUIterOverheadSeconds+CPUIterPerDimSeconds*float64(dim))
}

// CPUEnergy charges package power for the total work including failed
// damping attempts.
func CPUEnergy(res nonlin.Result, dim int) float64 {
	scale := attemptScale(res)
	return CPUTime(res, dim) * scale * CPUPowerWatts
}

// GPUIterSeconds is the cost of one Newton iteration (one sparse
// factorise+solve) at problem dimension dim on the GPU.
func GPUIterSeconds(dim int) float64 {
	return GPUIterBaseSeconds + GPUIterPerDimSeconds*float64(dim)
}

// GPUTime prices a Newton solve on the GPU baseline: counted iterations ×
// per-iteration cost.
func GPUTime(res nonlin.Result, dim int) float64 {
	return float64(res.Iterations) * GPUIterSeconds(dim)
}

// GPUEnergy charges board power for every iteration executed, including
// the trial-and-error damping attempts.
func GPUEnergy(res nonlin.Result, dim int) float64 {
	return float64(totalIters(res)) * GPUIterSeconds(dim) * GPUPowerWatts
}

// Analog linear-algebra co-processor model — the paper's predecessor work
// [22, 23] solved the *linear* system inside each Newton iteration in
// analog. This prices a hypothetical hybrid where the digital host runs the
// Newton outer loop but ships every factorise+solve to such a co-processor:
// a per-iteration settle-and-readout cost that is independent of the banded
// flop count, plus the crossbar's power envelope.
const (
	// AnalogIterSeconds is one linear-solve settle + DAC/ADC round trip
	// (~100 circuit time constants at τ = 1 µs).
	AnalogIterSeconds = 1.0e-4
	// AnalogIterPerDimSeconds charges the serial DAC write / ADC read of
	// the problem vector.
	AnalogIterPerDimSeconds = 1.0e-7
	// AnalogPowerWatts is the crossbar power envelope while settling.
	AnalogPowerWatts = 1.5
)

// AnalogLAIterSeconds is the cost of one Newton iteration with the linear
// solve done on the analog co-processor.
func AnalogLAIterSeconds(dim int) float64 {
	return AnalogIterSeconds + AnalogIterPerDimSeconds*float64(dim)
}

// AnalogLATime prices a Newton solve with analog linear algebra: counted
// iterations × per-iteration settle cost.
func AnalogLATime(res nonlin.Result, dim int) float64 {
	return float64(res.Iterations) * AnalogLAIterSeconds(dim)
}

// AnalogLAEnergy charges crossbar power for every iteration executed,
// including the trial-and-error damping attempts.
func AnalogLAEnergy(res nonlin.Result, dim int) float64 {
	return float64(totalIters(res)) * AnalogLAIterSeconds(dim) * AnalogPowerWatts
}

func totalIters(res nonlin.Result) int {
	if res.TotalIters > res.Iterations {
		return res.TotalIters
	}
	return res.Iterations
}

func attemptScale(res nonlin.Result) float64 {
	if res.Iterations == 0 {
		return 1
	}
	s := float64(totalIters(res)) / float64(res.Iterations)
	if s < 1 {
		return 1
	}
	return s
}
