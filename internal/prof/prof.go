// Package prof is a lightweight section profiler used to reproduce Table 1:
// the fraction of a PDE solver's runtime spent in its equation-solving
// kernel versus everything else (stencil assembly, boundary handling, time
// stepping bookkeeping). It is the one sanctioned consumer of the wall
// clock: Table 1 reports *measured* kernel-share fractions, so real time is
// the quantity of interest here, unlike the solver pipeline where all
// timing is simulated (internal/perfmodel) and the walltime rule forbids
// clock reads.
//
//pdevet:allow walltime the section profiler is the sanctioned wall-clock consumer
package prof

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Profile accumulates wall-clock time per named section. All methods are
// safe for concurrent use: a serving stack hands one Profile to many
// request handlers, so the section map is guarded by a mutex.
type Profile struct {
	mu       sync.Mutex
	sections map[string]time.Duration
	order    []string
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{sections: map[string]time.Duration{}}
}

// Section times fn under the given name, accumulating across calls.
// Concurrent sections overlap in wall time, so their fractions can sum
// above 1; callers that want exclusive shares must serialise externally.
func (p *Profile) Section(name string, fn func()) {
	start := time.Now()
	fn()
	p.Add(name, time.Since(start))
}

// Add accumulates a duration directly, for callers that time themselves.
func (p *Profile) Add(name string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.sections[name]; !ok {
		p.order = append(p.order, name)
	}
	p.sections[name] += d
}

// total sums all sections. Callers hold p.mu.
func (p *Profile) total() time.Duration {
	var t time.Duration
	for _, d := range p.sections {
		t += d
	}
	return t
}

// Total returns the summed time across all sections.
func (p *Profile) Total() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total()
}

// Fraction returns the share of total time spent in the named section,
// in [0, 1]. Zero-total profiles report 0.
func (p *Profile) Fraction(name string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	tot := p.total()
	if tot == 0 {
		return 0
	}
	return float64(p.sections[name]) / float64(tot)
}

// Sections returns names in first-use order.
func (p *Profile) Sections() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.order))
	copy(out, p.order)
	return out
}

// String renders the profile sorted by descending share.
func (p *Profile) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	type row struct {
		name string
		d    time.Duration
	}
	rows := make([]row, 0, len(p.sections))
	for n, d := range p.sections {
		rows = append(rows, row{n, d})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	tot := p.total()
	var b strings.Builder
	for _, r := range rows {
		pct := 0.0
		if tot > 0 {
			pct = 100 * float64(r.d) / float64(tot)
		}
		fmt.Fprintf(&b, "%-24s %8.1f%% %12s\n", r.name, pct, r.d.Round(time.Microsecond))
	}
	return b.String()
}
