package prof

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSectionAccumulates(t *testing.T) {
	p := New()
	p.Add("kernel", 30*time.Millisecond)
	p.Add("kernel", 30*time.Millisecond)
	p.Add("assembly", 40*time.Millisecond)
	if got := p.Total(); got != 100*time.Millisecond {
		t.Fatalf("Total = %v, want 100ms", got)
	}
	if f := p.Fraction("kernel"); f < 0.59 || f > 0.61 {
		t.Fatalf("kernel fraction %g, want 0.6", f)
	}
	if f := p.Fraction("missing"); f != 0 {
		t.Fatalf("missing section fraction %g, want 0", f)
	}
}

func TestEmptyProfile(t *testing.T) {
	p := New()
	if p.Total() != 0 {
		t.Fatal("empty profile must have zero total")
	}
	if p.Fraction("x") != 0 {
		t.Fatal("empty profile must report zero fractions")
	}
}

func TestSectionTimesFunction(t *testing.T) {
	p := New()
	p.Section("sleepy", func() { time.Sleep(5 * time.Millisecond) })
	if p.Total() < 4*time.Millisecond {
		t.Fatalf("Section undercounted: %v", p.Total())
	}
}

func TestSectionsOrderAndString(t *testing.T) {
	p := New()
	p.Add("b", time.Millisecond)
	p.Add("a", 2*time.Millisecond)
	p.Add("b", time.Millisecond)
	secs := p.Sections()
	if len(secs) != 2 || secs[0] != "b" || secs[1] != "a" {
		t.Fatalf("Sections order wrong: %v", secs)
	}
	s := p.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "%") {
		t.Fatalf("String malformed: %q", s)
	}
	// Sorted by descending share: "a" (2ms) should come before "b" (2×1ms
	// equals — ties fine); just check both present.
	if !strings.Contains(s, "b") {
		t.Fatalf("String missing section: %q", s)
	}
}

// TestConcurrentUse hammers one Profile from many goroutines mixing writers
// (Add, Section) and readers (Total, Fraction, Sections, String). The test
// exists for `go test -race`: a shared Profile is exactly what concurrent
// request handlers produce, and the section map must not race.
func TestConcurrentUse(t *testing.T) {
	p := New()
	const goroutines = 8
	const ops = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g%4))
			for i := 0; i < ops; i++ {
				switch i % 5 {
				case 0:
					p.Add(name, time.Microsecond)
				case 1:
					p.Section(name, func() {})
				case 2:
					_ = p.Total()
				case 3:
					_ = p.Fraction(name)
				default:
					_ = p.Sections()
					_ = p.String()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := p.Fraction("a"); got <= 0 {
		t.Fatalf("fraction of hammered section = %g, want > 0", got)
	}
	if len(p.Sections()) != 4 {
		t.Fatalf("Sections = %v, want 4 names", p.Sections())
	}
}
