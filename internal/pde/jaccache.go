package pde

import "hybridpde/internal/la"

// jacEmitter receives Jacobian contributions from a deterministic stencil
// walk. It is an interface (rather than a func parameter) so the refresh
// path can pass a pointer to a struct field and stay allocation-free —
// closures capturing a slot cursor escape to the heap on every call, which
// would put the Jacobian refresh (thousands of calls per analog solve, one
// per Newton iteration per time step) on the allocator.
type jacEmitter interface {
	emit(i, j int, v float64)
}

// funcEmitter adapts a closure to jacEmitter for the one-time pattern build,
// where allocation is fine.
type funcEmitter func(i, j int, v float64)

func (f funcEmitter) emit(i, j int, v float64) { f(i, j, v) }

// jacCache caches a CSR sparsity pattern plus the value-slot order of a
// deterministic assembly walk. The pattern is built once; subsequent
// refreshes zero the values and re-accumulate in place via the emit method
// (jacCache is itself the refresh jacEmitter). Walks may emit the same
// (i, j) several times; slots record every emission in order.
type jacCache struct {
	jac   *la.CSR
	slots []int
	k     int // cursor into slots during a refresh walk
}

// build assembles the pattern and slot order from two passes of the same
// walk. The walk must be deterministic in emission order.
func (c *jacCache) build(dim int, walk func(e jacEmitter)) {
	coo := la.NewCOO(dim, dim)
	walk(funcEmitter(func(i, j int, v float64) { coo.Append(i, j, v) }))
	c.jac = coo.ToCSR()
	c.slots = c.slots[:0]
	walk(funcEmitter(func(i, j int, v float64) { c.slots = append(c.slots, c.jac.Slot(i, j)) }))
}

// beginRefresh zeroes the cached values and resets the slot cursor; the
// caller then re-runs the assembly walk with the cache as its emitter.
func (c *jacCache) beginRefresh() {
	c.jac.ZeroValues()
	c.k = 0
}

func (c *jacCache) emit(i, j int, v float64) {
	c.jac.AddSlotValue(c.slots[c.k], v)
	c.k++
}
