package pde

import "hybridpde/internal/la"

// jacEmitter receives Jacobian contributions from a deterministic stencil
// walk. It is an interface (rather than a func parameter) so the refresh
// path can pass a pointer to a struct field and stay allocation-free —
// closures capturing a slot cursor escape to the heap on every call, which
// would put the Jacobian refresh (thousands of calls per analog solve, one
// per Newton iteration per time step) on the allocator.
type jacEmitter interface {
	emit(i, j int, v float64)
}

// funcEmitter adapts a closure to jacEmitter for the one-time pattern build,
// where allocation is fine.
type funcEmitter func(i, j int, v float64)

func (f funcEmitter) emit(i, j int, v float64) { f(i, j, v) }

// jacCache caches a CSR sparsity pattern plus the value-slot order of a
// deterministic assembly walk. The pattern is built once; subsequent
// refreshes zero the values and re-accumulate in place via the emit method
// (jacCache is itself the refresh jacEmitter). Walks may emit the same
// (i, j) several times; slots record every emission in order.
//
// For parallel refreshes the walk is split into units (one grid row for the
// 2-D stencils): buildUnits records the slot-cursor offset of every unit
// boundary, and each shardEmitter owns the cursor range of a contiguous unit
// block. Because every emission of a unit targets matrix rows owned by that
// unit alone (the stencil walks emit only to the emitting node's own rows),
// the shards write disjoint CSR row blocks in the serial walk's per-row
// order — bit-identical accumulation at any chunk count.
type jacCache struct {
	jac   *la.CSR
	slots []int
	k     int // cursor into slots during a serial refresh walk
	// unitStart[u] is the slot cursor at the start of unit u; length
	// units+1, so unitStart[units] == len(slots).
	unitStart []int
	// shards are the per-chunk emitters of a parallel refresh, sized to the
	// pool by ensureShards.
	shards []shardEmitter
}

// shardEmitter replays a unit range's slot cursor independently of the
// other shards.
type shardEmitter struct {
	c *jacCache
	k int
}

func (s *shardEmitter) emit(i, j int, v float64) {
	s.c.jac.AddSlotValue(s.c.slots[s.k], v)
	s.k++
}

// build assembles the pattern and slot order from two passes of a monolithic
// walk (single unit — serial refreshes only).
func (c *jacCache) build(dim int, walk func(e jacEmitter)) {
	c.buildUnits(dim, 1, func(lo, hi int, e jacEmitter) { walk(e) })
}

// buildUnits assembles the pattern and slot order from a unit-ranged walk:
// walk(lo, hi, e) must emit exactly the contributions of units [lo, hi) in
// deterministic order, and walk(0, units, e) must equal the concatenation of
// the per-unit walks.
func (c *jacCache) buildUnits(dim, units int, walk func(lo, hi int, e jacEmitter)) {
	coo := la.NewCOO(dim, dim)
	walk(0, units, funcEmitter(func(i, j int, v float64) { coo.Append(i, j, v) }))
	c.jac = coo.ToCSR()
	c.slots = c.slots[:0]
	if cap(c.unitStart) < units+1 {
		c.unitStart = make([]int, units+1)
	}
	c.unitStart = c.unitStart[:units+1]
	for u := 0; u < units; u++ {
		c.unitStart[u] = len(c.slots)
		walk(u, u+1, funcEmitter(func(i, j int, v float64) { c.slots = append(c.slots, c.jac.Slot(i, j)) }))
	}
	c.unitStart[units] = len(c.slots)
}

// beginRefresh zeroes the cached values and resets the slot cursor; the
// caller then re-runs the assembly walk with the cache as its emitter.
func (c *jacCache) beginRefresh() {
	c.jac.ZeroValues()
	c.k = 0
}

func (c *jacCache) emit(i, j int, v float64) {
	c.jac.AddSlotValue(c.slots[c.k], v)
	c.k++
}

// ensureShards sizes the shard emitters for a pool of n chunks.
func (c *jacCache) ensureShards(n int) {
	if cap(c.shards) < n {
		c.shards = make([]shardEmitter, n)
	}
	c.shards = c.shards[:n]
}

// shard returns chunk's emitter positioned at the slot cursor of unit lo.
// The caller must have zeroed the chunk's rows (la.CSR.ZeroRowsValues) — the
// parallel replacement for beginRefresh's global zero.
func (c *jacCache) shard(chunk, lo int) *shardEmitter {
	s := &c.shards[chunk]
	s.c = c
	s.k = c.unitStart[lo]
	return s
}
