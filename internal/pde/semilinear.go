package pde

import (
	"fmt"
	"math"

	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/problem"
)

// Semilinear1D is the coupled reaction system of §3 (Equation 2 generalised
// to d grid points): a one-dimensional semilinear PDE discretised on a
// chain, where each node carries a quadratic reaction term plus
// nearest-neighbour coupling:
//
//	ρᵢ² + ρᵢ + ρ_{i+1} − ρ_{i−1} = RHSᵢ
//
// (off-chain neighbours are dropped, reproducing Equation 2 exactly for
// d = 2). It implements both the dense nonlin.System contract and
// problem.SparseSystem (tridiagonal Jacobian), and reports degree 2.
type Semilinear1D struct {
	RHS []float64

	cache jacCache
}

// NewSemilinear1D builds the system with the given right-hand sides.
func NewSemilinear1D(rhs []float64) *Semilinear1D {
	return &Semilinear1D{RHS: la.Copy(rhs)}
}

// Dim returns the number of grid points.
func (s *Semilinear1D) Dim() int { return len(s.RHS) }

// PolynomialDegree reports the quadratic reaction term.
func (s *Semilinear1D) PolynomialDegree() int { return 2 }

// Eval computes the residual.
func (s *Semilinear1D) Eval(u, f []float64) error {
	d := s.Dim()
	if len(u) != d || len(f) != d {
		return fmt.Errorf("pde: Semilinear1D dimension mismatch")
	}
	for i := 0; i < d; i++ {
		f[i] = u[i]*u[i] + u[i] - s.RHS[i]
		if i+1 < d {
			f[i] += u[i+1]
		}
		if i-1 >= 0 {
			f[i] -= u[i-1]
		}
	}
	return nil
}

// Jacobian fills the tridiagonal Jacobian.
func (s *Semilinear1D) Jacobian(u []float64, jac *la.Dense) error {
	d := s.Dim()
	jac.Zero()
	for i := 0; i < d; i++ {
		jac.Set(i, i, 2*u[i]+1)
		if i+1 < d {
			jac.Set(i, i+1, 1)
		}
		if i-1 >= 0 {
			jac.Set(i, i-1, -1)
		}
	}
	return nil
}

// assembleJacobian walks the tridiagonal Jacobian in deterministic order.
func (s *Semilinear1D) assembleJacobian(u []float64, e jacEmitter) {
	d := s.Dim()
	for i := 0; i < d; i++ {
		e.emit(i, i, 2*u[i]+1)
		if i+1 < d {
			e.emit(i, i+1, 1)
		}
		if i-1 >= 0 {
			e.emit(i, i-1, -1)
		}
	}
}

// JacobianCSR returns the tridiagonal Jacobian, refreshing a cached pattern.
func (s *Semilinear1D) JacobianCSR(u []float64) (*la.CSR, error) {
	if len(u) != s.Dim() {
		return nil, fmt.Errorf("pde: Semilinear1D Jacobian dimension mismatch")
	}
	if s.cache.jac == nil {
		s.cache.build(s.Dim(), func(e jacEmitter) { s.assembleJacobian(u, e) })
		return s.cache.jac, nil
	}
	s.cache.beginRefresh()
	s.assembleJacobian(u, &s.cache)
	return s.cache.jac, nil
}

// InitialGuess returns the zero vector — the chain has no previous time
// level, and the paper's §3 examples start reactions from rest.
func (s *Semilinear1D) InitialGuess() []float64 { return make([]float64, s.Dim()) }

// MaxField returns the largest |RHS| value, the dynamic range of the system.
func (s *Semilinear1D) MaxField() float64 {
	m := 0.0
	for _, v := range s.RHS {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Equation2 returns the exact two-point system of the paper's Equation 2.
func Equation2(rhs0, rhs1 float64) *Semilinear1D {
	return NewSemilinear1D([]float64{rhs0, rhs1})
}

var (
	_ nonlin.System        = (*Semilinear1D)(nil)
	_ problem.SparseSystem = (*Semilinear1D)(nil)
)
