// Package pde converts partial differential equations into the nonlinear
// systems of algebraic equations the rest of the stack solves (§4 of the
// paper): structured-grid space discretisation with second-order central
// finite differences, Crank–Nicolson implicit time stepping, and the
// resulting stencil systems with analytic sparse Jacobians. The flagship
// problem is the paper's benchmark, the 2-D viscous Burgers' equation; the
// package also provides the semilinear reaction systems of §3 and the
// Table-1 workload mini-apps.
package pde

import (
	"fmt"
	"math"
	"math/rand"

	"hybridpde/internal/la"
	"hybridpde/internal/par"
	"hybridpde/internal/problem"
)

// Burgers describes one Crank–Nicolson step of the 2-D viscous Burgers'
// equation (Equation 4/5 of the paper) on an N×N interior grid with
// Dirichlet boundaries:
//
//	∂u/∂t + u·∂u/∂x + v·∂u/∂y − (1/Re)·∇²u = RHS₀
//	∂v/∂t + u·∂v/∂x + v·∂v/∂y − (1/Re)·∇²v = RHS₁
//
// Following §4.4, Δt, Δx and Δy are chosen isotropically so the stencil
// coefficients are eliminated (all equal to one); the Reynolds number is
// then the single free parameter, controlling the balance between the
// advective (hyperbolic) and diffusive (parabolic) character (Table 2).
//
// Unknowns are the new-time fields interleaved per node,
// w = [u₀₀, v₀₀, u₀₁, v₀₁, …], which keeps the Jacobian bandwidth at
// O(N) for the banded direct solver.
type Burgers struct {
	N  int     // interior grid is N×N
	Re float64 // Reynolds number
	// Order selects the finite-difference order: 2 (default) or 4. The
	// paper's §7 extension: "higher-order finite difference schemes are
	// more accurate and efficient, at the cost of having larger stencils,
	// thereby requiring a larger accelerator." Order 4 uses the 5-point
	// central stencils per direction on nodes at least two cells from the
	// boundary and falls back to order 2 beside it.
	Order int

	// Previous time-level fields, length N·N, row-major (i*N+j).
	UPrev, VPrev []float64
	// Dirichlet boundary values on the ghost ring. BoundaryU/V are
	// evaluated at ghost coordinates (i or j equal to −1 or N).
	BoundaryU, BoundaryV func(i, j int) float64
	// Forcing terms, length N·N.
	RHS0, RHS1 []float64

	// Cached Jacobian pattern and the value-slot order of the assembly
	// loop; the pattern is fixed across Newton iterations, so refreshes
	// write values in place instead of rebuilding and re-sorting.
	cache jacCache
	// pool, when set via SetPool, fans the residual and Jacobian walks
	// across grid-row chunks; evalRun/jacRun are the persistent runners.
	pool    *par.Pool
	evalRun burgersEvalRun
	jacRun  burgersJacRun
}

// SetPool attaches a worker pool to the residual and Jacobian walks (the
// nonlin.PoolAware hook). Grid rows partition both walks: every row of f and
// every Jacobian matrix row is written by exactly one chunk in the serial
// walk's order, so results are bit-identical at any pool size. nil restores
// serial execution.
func (b *Burgers) SetPool(p *par.Pool) { b.pool = p }

// evalGrain returns the minimum grid rows per parallel chunk so one chunk
// carries ~256 nodes of stencil work.
func evalGrain(n int) int {
	g := 256 / n
	if g < 1 {
		g = 1
	}
	return g
}

// jacGrain is evalGrain's Jacobian counterpart; assembly emits ~14 entries
// per node, so chunks amortise sooner.
func jacGrain(n int) int {
	g := 128 / n
	if g < 1 {
		g = 1
	}
	return g
}

// burgersEvalRun fans Eval's node loop across grid-row chunks.
type burgersEvalRun struct {
	b    *Burgers
	w, f []float64
}

func (r *burgersEvalRun) Run(_, lo, hi int) { r.b.evalRows(r.w, r.f, lo, hi) }

// burgersJacRun fans a Jacobian refresh across grid-row chunks: each chunk
// zeroes and re-accumulates its own matrix-row block through its shard
// emitter. Shared by Burgers and BurgersSteady (which passes its own cache
// and weights).
type burgersJacRun struct {
	b        *Burgers
	c        *jacCache
	w        []float64
	idW, opW float64
}

func (r *burgersJacRun) Run(chunk, lo, hi int) {
	n := r.b.N
	// Grid row u owns matrix rows [2uN, 2(u+1)N).
	r.c.jac.ZeroRowsValues(2*lo*n, 2*hi*n)
	r.b.assembleJacobianRows(r.w, r.c.shard(chunk, lo), r.idW, r.opW, lo, hi)
}

// refreshJacobian runs one in-place Jacobian refresh of cache — parallel
// across grid rows when a pool is attached, the classic serial
// zero-then-accumulate walk otherwise.
//
//pdevet:noalloc
func (b *Burgers) refreshJacobian(cache *jacCache, w []float64, idW, opW float64) {
	if p := b.pool; p.Procs() > 1 {
		cache.ensureShards(p.Procs())
		b.jacRun.b = b
		b.jacRun.c = cache
		b.jacRun.w = w
		b.jacRun.idW = idW
		b.jacRun.opW = opW
		p.Run(b.N, jacGrain(b.N), &b.jacRun)
		return
	}
	cache.beginRefresh()
	b.assembleJacobianRows(w, cache, idW, opW, 0, b.N)
}

// NewBurgers allocates a problem with zero fields, zero boundaries and zero
// forcing. Callers fill the fields or use RandomBurgers.
func NewBurgers(n int, re float64) (*Burgers, error) {
	if n < 1 {
		return nil, fmt.Errorf("pde: grid size %d must be ≥ 1", n)
	}
	if re <= 0 {
		return nil, fmt.Errorf("pde: Reynolds number %g must be positive", re)
	}
	zero := func(i, j int) float64 { return 0 }
	return &Burgers{
		N: n, Re: re,
		UPrev: make([]float64, n*n), VPrev: make([]float64, n*n),
		RHS0: make([]float64, n*n), RHS1: make([]float64, n*n),
		BoundaryU: zero, BoundaryV: zero,
	}, nil
}

// RandomBurgers builds a problem with previous fields, boundary values and
// forcing drawn uniformly from ±bound, the paper's random-problem protocol
// (§5.4: "constants... randomly chosen between a dynamic range of -3.0 and
// 3.0"). The generator is deterministic in rng.
func RandomBurgers(n int, re float64, bound float64, rng *rand.Rand) (*Burgers, error) {
	b, err := NewBurgers(n, re)
	if err != nil {
		return nil, err
	}
	u := func() float64 { return bound * (2*rng.Float64() - 1) }
	for i := range b.UPrev {
		b.UPrev[i] = u()
		b.VPrev[i] = u()
		b.RHS0[i] = u()
		b.RHS1[i] = u()
	}
	// Random but fixed boundary ring.
	bu := make(map[[2]int]float64)
	bv := make(map[[2]int]float64)
	for i := -1; i <= n; i++ {
		for _, j := range []int{-1, n} {
			bu[[2]int{i, j}] = u()
			bv[[2]int{i, j}] = u()
			bu[[2]int{j, i}] = u()
			bv[[2]int{j, i}] = u()
		}
	}
	b.BoundaryU = func(i, j int) float64 { return bu[[2]int{i, j}] }
	b.BoundaryV = func(i, j int) float64 { return bv[[2]int{i, j}] }
	return b, nil
}

// Dim returns the number of unknowns: two fields on N×N nodes.
func (b *Burgers) Dim() int { return 2 * b.N * b.N }

// PolynomialDegree reports the quadratic nonlinearity of the stencil, used
// by the analog dynamic-range scaler.
func (b *Burgers) PolynomialDegree() int { return 2 }

// idx maps node (i, j) to the unknown index of its u component; +1 is v.
func (b *Burgers) idx(i, j int) int { return 2 * (i*b.N + j) }

// fieldAt reads component c (0 = u, 1 = v) at node (i, j) from the unknown
// vector w, falling back to boundary values off-grid.
func (b *Burgers) fieldAt(w []float64, c, i, j int) float64 {
	if i < 0 || i >= b.N || j < 0 || j >= b.N {
		if c == 0 {
			return b.BoundaryU(i, j)
		}
		return b.BoundaryV(i, j)
	}
	return w[b.idx(i, j)+c]
}

// stateAt reads component c at node (i, j) from w, or from the
// previous-time fields when w is nil, with the boundary fallback. The nil
// convention (instead of an accessor closure) keeps the residual and
// Jacobian hot paths free of per-call closure allocations.
func (b *Burgers) stateAt(w []float64, c, i, j int) float64 {
	if i < 0 || i >= b.N || j < 0 || j >= b.N {
		if c == 0 {
			return b.BoundaryU(i, j)
		}
		return b.BoundaryV(i, j)
	}
	if w == nil {
		if c == 0 {
			return b.UPrev[i*b.N+j]
		}
		return b.VPrev[i*b.N+j]
	}
	return w[b.idx(i, j)+c]
}

// inGrid reports whether node (i, j) is an interior unknown.
func (b *Burgers) inGrid(i, j int) bool { return i >= 0 && i < b.N && j >= 0 && j < b.N }

// Central-difference weight tables: first and second derivatives at unit
// spacing, offsets −2..+2 (the ±2 weights are zero at order 2).
var (
	d1Order2 = [5]float64{0, -0.5, 0, 0.5, 0}
	d2Order2 = [5]float64{0, 1, -2, 1, 0}
	d1Order4 = [5]float64{1.0 / 12, -8.0 / 12, 0, 8.0 / 12, -1.0 / 12}
	d2Order4 = [5]float64{-1.0 / 12, 16.0 / 12, -30.0 / 12, 16.0 / 12, -1.0 / 12}
)

// stencilAt picks the derivative weights for node (i, j): order 4 where the
// full 5-point stencil fits in both directions, order 2 otherwise.
func (b *Burgers) stencilAt(i, j int) (d1, d2 *[5]float64) {
	if b.Order == 4 && i >= 2 && i < b.N-2 && j >= 2 && j < b.N-2 {
		return &d1Order4, &d2Order4
	}
	return &d1Order2, &d2Order2
}

// advDiff evaluates the unit-coefficient spatial operator
// A(c) = u·∂ₓc + v·∂ᵧc − (1/Re)·∇²c at node (i, j) on state w (nil for the
// previous time level, see stateAt).
func (b *Burgers) advDiff(w []float64, c, i, j int) float64 {
	u := b.stateAt(w, 0, i, j)
	v := b.stateAt(w, 1, i, j)
	d1, d2 := b.stencilAt(i, j)
	var dx, dy, lap float64
	for k := -2; k <= 2; k++ {
		w1, w2 := d1[k+2], d2[k+2]
		if w1 == 0 && w2 == 0 { //pdevet:allow floateq derivative-weight tables hold assigned structural zeros
			continue
		}
		cx := b.stateAt(w, c, i+k, j)
		cy := b.stateAt(w, c, i, j+k)
		dx += w1 * cx
		dy += w1 * cy
		lap += w2 * (cx + cy)
	}
	return u*dx + v*dy - lap/b.Re
}

// Eval computes the Crank–Nicolson residual
// F(w) = w − w_prev + ½[A(w) + A(w_prev)] − RHS.
//
//pdevet:noalloc
func (b *Burgers) Eval(w, f []float64) error {
	if len(w) != b.Dim() || len(f) != b.Dim() {
		return fmt.Errorf("pde: Burgers Eval dimension mismatch") //pdevet:allow noalloc error path
	}
	if p := b.pool; p.Procs() > 1 {
		b.evalRun.b = b
		b.evalRun.w = w
		b.evalRun.f = f
		p.Run(b.N, evalGrain(b.N), &b.evalRun)
		return nil
	}
	b.evalRows(w, f, 0, b.N)
	return nil
}

// evalRows computes the residual of grid rows [iLo, iHi): the serial inner
// loop of Eval and the chunk body of its parallel fan-out (each f row is
// written by exactly one chunk).
//
//pdevet:noalloc
func (b *Burgers) evalRows(w, f []float64, iLo, iHi int) {
	for i := iLo; i < iHi; i++ {
		for j := 0; j < b.N; j++ {
			k := b.idx(i, j)
			node := i*b.N + j
			for c := 0; c < 2; c++ {
				newA := b.advDiff(w, c, i, j)
				oldA := b.advDiff(nil, c, i, j)
				rhs := b.RHS0[node]
				prev := b.UPrev[node]
				if c == 1 {
					rhs = b.RHS1[node]
					prev = b.VPrev[node]
				}
				f[k+c] = w[k+c] - prev + 0.5*(newA+oldA) - rhs
			}
		}
	}
}

// JacobianCSR returns the analytic Jacobian of the stencil. The sparsity
// pattern (5-point stencil on each field plus the u–v coupling on the
// node) is built once; subsequent calls refresh the values in place, which
// keeps the analog circuit simulation (thousands of Jacobian evaluations
// per solve) allocation-free on the hot path.
//
//pdevet:noalloc
func (b *Burgers) JacobianCSR(w []float64) (*la.CSR, error) {
	if len(w) != b.Dim() {
		return nil, fmt.Errorf("pde: Burgers Jacobian dimension mismatch") //pdevet:allow noalloc error path
	}
	if b.cache.jac == nil {
		// One-time pattern build, unitised by grid row so refreshes can fan
		// out; every later call refreshes in place.
		b.cache.buildUnits(b.Dim(), b.N, func(lo, hi int, e jacEmitter) { b.assembleJacobianRows(w, e, 1, 0.5, lo, hi) }) //pdevet:allow noalloc grow-on-first-use
		return b.cache.jac, nil
	}
	// Refresh: zero, then accumulate — assembly may emit the same entry
	// several times (time term, diffusion and advection all touch the
	// node-centre slot).
	b.refreshJacobian(&b.cache, w, 1, 0.5)
	return b.cache.jac, nil
}

// assembleJacobian walks the stencil in deterministic order, emitting every
// Jacobian contribution of idW·I + opW·∂A/∂w. Crank–Nicolson stepping uses
// (idW, opW) = (1, ½); the steady method-of-lines form uses (0, 1). Entries
// for the same (row, column) may be emitted more than once; consumers must
// sum them (COO assembly and the zero-then-accumulate refresh both do).
//
// For the c-component equation at node (i, j),
// F = idW·c_node + opW·[u·D₁ₓc + v·D₁ᵧc − (D₂ₓc + D₂ᵧc)/Re] + … − RHS:
//
//	∂F/∂c_{i+k,j} = opW·(u·w₁[k] − w₂[k]/Re)   (x-direction neighbours)
//	∂F/∂c_{i,j+k} = opW·(v·w₁[k] − w₂[k]/Re)   (y-direction neighbours)
//	∂F/∂u_{i,j}  += opW·D₁ₓc                    (advecting-velocity terms)
//	∂F/∂v_{i,j}  += opW·D₁ᵧc
//
// plus the time-derivative identity (weight idW) on the node centre.
//
//pdevet:noalloc
func (b *Burgers) assembleJacobian(w []float64, e jacEmitter, idW, opW float64) {
	b.assembleJacobianRows(w, e, idW, opW, 0, b.N)
}

// assembleJacobianRows walks grid rows [iLo, iHi) only. Every emission of
// row i targets matrix rows idx(i, j)+c of that same grid row — the property
// the parallel refresh's disjoint row-block partition rests on.
//
//pdevet:noalloc
func (b *Burgers) assembleJacobianRows(w []float64, e jacEmitter, idW, opW float64, iLo, iHi int) {
	n := b.N
	for i := iLo; i < iHi; i++ {
		for j := 0; j < n; j++ {
			base := b.idx(i, j)
			u := b.stateAt(w, 0, i, j)
			v := b.stateAt(w, 1, i, j)
			d1, d2 := b.stencilAt(i, j)
			for c := 0; c < 2; c++ {
				row := base + c
				// Time-derivative identity.
				e.emit(row, row, idW)
				// Neighbour couplings of the advected component c, and
				// the advective self-derivatives D₁ₓc, D₁ᵧc.
				var dx, dy float64
				for k := -2; k <= 2; k++ {
					w1, w2 := d1[k+2], d2[k+2]
					if w1 == 0 && w2 == 0 { //pdevet:allow floateq derivative-weight tables hold assigned structural zeros
						continue
					}
					dx += w1 * b.stateAt(w, c, i+k, j)
					dy += w1 * b.stateAt(w, c, i, j+k)
					if k == 0 {
						// Both directions' centre weights land on the
						// node itself.
						e.emit(row, row, opW*(-2*w2/b.Re))
						continue
					}
					if b.inGrid(i+k, j) {
						e.emit(row, b.idx(i+k, j)+c, opW*(u*w1-w2/b.Re))
					}
					if b.inGrid(i, j+k) {
						e.emit(row, b.idx(i, j+k)+c, opW*(v*w1-w2/b.Re))
					}
				}
				// Advecting-velocity derivatives: ∂F/∂u_ij and ∂F/∂v_ij.
				e.emit(row, base, opW*dx)
				e.emit(row, base+1, opW*dy)
			}
		}
	}
}

// InitialGuess returns the standard starting point for the step's Newton
// solve: the previous time level (the natural warm start).
func (b *Burgers) InitialGuess() []float64 {
	w := make([]float64, b.Dim())
	b.InitialGuessInto(w)
	return w
}

// InitialGuessInto writes the previous time level into w without allocating.
func (b *Burgers) InitialGuessInto(w []float64) {
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			k := b.idx(i, j)
			node := i*b.N + j
			w[k] = b.UPrev[node]
			w[k+1] = b.VPrev[node]
		}
	}
}

// Advance installs a solved step as the new previous-time fields, enabling
// time-marching simulations.
func (b *Burgers) Advance(w []float64) error {
	if len(w) != b.Dim() {
		return fmt.Errorf("pde: Advance dimension mismatch")
	}
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			k := b.idx(i, j)
			node := i*b.N + j
			b.UPrev[node] = w[k]
			b.VPrev[node] = w[k+1]
		}
	}
	return nil
}

// MaxField returns the largest |value| across the previous fields, RHS and
// boundary ring — the dynamic range the analog scaler needs.
func (b *Burgers) MaxField() float64 {
	m := 0.0
	chk := func(v float64) {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	for i := range b.UPrev {
		chk(b.UPrev[i])
		chk(b.VPrev[i])
		chk(b.RHS0[i])
		chk(b.RHS1[i])
	}
	for i := -1; i <= b.N; i++ {
		for _, j := range []int{-1, b.N} {
			chk(b.BoundaryU(i, j))
			chk(b.BoundaryV(i, j))
			chk(b.BoundaryU(j, i))
			chk(b.BoundaryV(j, i))
		}
	}
	return m
}

// SetRHSForRoot overwrites the forcing terms so that wRoot is an exact
// solution of the step system: RHS := wRoot − w_prev + ½[A(wRoot)+A(w_prev)].
// The evaluation protocol plants a root this way before timing the solvers,
// the deterministic analogue of the paper's golden-model certification step
// (§6.1) — problems without a certified solution are never benchmarked.
func (b *Burgers) SetRHSForRoot(wRoot []float64) error {
	if len(wRoot) != b.Dim() {
		return fmt.Errorf("pde: SetRHSForRoot dimension mismatch")
	}
	la.Fill(b.RHS0, 0)
	la.Fill(b.RHS1, 0)
	f := make([]float64, b.Dim())
	if err := b.Eval(wRoot, f); err != nil {
		return err
	}
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			k := b.idx(i, j)
			node := i*b.N + j
			b.RHS0[node] = f[k]
			b.RHS1[node] = f[k+1]
		}
	}
	return nil
}

// Tiles implements problem.Decomposable for the §6.3 red-black subdomain
// decomposition: tileN×tileN node subdomains (two unknowns per node) on a
// checkerboard, with tileN the largest divisor of N whose tile fits in
// maxVars accelerator variables. It errors when no tile of at least 2×2
// nodes fits — pointwise 1×1 "tiles" would silently degrade the subdomain
// method to pointwise relaxation.
func (b *Burgers) Tiles(maxVars int) ([]problem.Tile, error) {
	tileMax := int(math.Sqrt(float64(maxVars / 2)))
	tileN, err := problem.LargestDividingTile(b.N, tileMax)
	if err != nil {
		return nil, fmt.Errorf("pde: cannot tile %d×%d grid for %d-variable accelerator: %w", b.N, b.N, maxVars, err)
	}
	return problem.Checkerboard(b.N, tileN, 2)
}

var (
	_ problem.SparseSystem = (*Burgers)(nil)
	_ problem.Decomposable = (*Burgers)(nil)
)

// SemiDiscreteRHS returns the method-of-lines form of the problem: the
// space-discretised ODE system dw/dt = RHS − A(w) that old-style hybrid
// computers integrated directly in analog (§4.3). The unknown layout
// matches the step system (interleaved u, v per node); boundaries and
// forcing are taken from the receiver.
func (b *Burgers) SemiDiscreteRHS() func(t float64, w, dwdt []float64) error {
	return func(t float64, w, dwdt []float64) error {
		if len(w) != b.Dim() || len(dwdt) != b.Dim() {
			return fmt.Errorf("pde: SemiDiscreteRHS dimension mismatch")
		}
		for i := 0; i < b.N; i++ {
			for j := 0; j < b.N; j++ {
				k := b.idx(i, j)
				node := i*b.N + j
				dwdt[k] = b.RHS0[node] - b.advDiff(w, 0, i, j)
				dwdt[k+1] = b.RHS1[node] - b.advDiff(w, 1, i, j)
			}
		}
		return nil
	}
}
