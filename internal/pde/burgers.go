// Package pde converts partial differential equations into the nonlinear
// systems of algebraic equations the rest of the stack solves (§4 of the
// paper): structured-grid space discretisation with second-order central
// finite differences, Crank–Nicolson implicit time stepping, and the
// resulting stencil systems with analytic sparse Jacobians. The flagship
// problem is the paper's benchmark, the 2-D viscous Burgers' equation; the
// package also provides the semilinear reaction systems of §3 and the
// Table-1 workload mini-apps.
package pde

import (
	"fmt"
	"math"
	"math/rand"

	"hybridpde/internal/la"
)

// Burgers describes one Crank–Nicolson step of the 2-D viscous Burgers'
// equation (Equation 4/5 of the paper) on an N×N interior grid with
// Dirichlet boundaries:
//
//	∂u/∂t + u·∂u/∂x + v·∂u/∂y − (1/Re)·∇²u = RHS₀
//	∂v/∂t + u·∂v/∂x + v·∂v/∂y − (1/Re)·∇²v = RHS₁
//
// Following §4.4, Δt, Δx and Δy are chosen isotropically so the stencil
// coefficients are eliminated (all equal to one); the Reynolds number is
// then the single free parameter, controlling the balance between the
// advective (hyperbolic) and diffusive (parabolic) character (Table 2).
//
// Unknowns are the new-time fields interleaved per node,
// w = [u₀₀, v₀₀, u₀₁, v₀₁, …], which keeps the Jacobian bandwidth at
// O(N) for the banded direct solver.
type Burgers struct {
	N  int     // interior grid is N×N
	Re float64 // Reynolds number
	// Order selects the finite-difference order: 2 (default) or 4. The
	// paper's §7 extension: "higher-order finite difference schemes are
	// more accurate and efficient, at the cost of having larger stencils,
	// thereby requiring a larger accelerator." Order 4 uses the 5-point
	// central stencils per direction on nodes at least two cells from the
	// boundary and falls back to order 2 beside it.
	Order int

	// Previous time-level fields, length N·N, row-major (i*N+j).
	UPrev, VPrev []float64
	// Dirichlet boundary values on the ghost ring. BoundaryU/V are
	// evaluated at ghost coordinates (i or j equal to −1 or N).
	BoundaryU, BoundaryV func(i, j int) float64
	// Forcing terms, length N·N.
	RHS0, RHS1 []float64

	// Cached Jacobian pattern and the value-slot order of the assembly
	// loop; the pattern is fixed across Newton iterations, so refreshes
	// write values in place instead of rebuilding and re-sorting.
	jac   *la.CSR
	slots []int
}

// NewBurgers allocates a problem with zero fields, zero boundaries and zero
// forcing. Callers fill the fields or use RandomBurgers.
func NewBurgers(n int, re float64) (*Burgers, error) {
	if n < 1 {
		return nil, fmt.Errorf("pde: grid size %d must be ≥ 1", n)
	}
	if re <= 0 {
		return nil, fmt.Errorf("pde: Reynolds number %g must be positive", re)
	}
	zero := func(i, j int) float64 { return 0 }
	return &Burgers{
		N: n, Re: re,
		UPrev: make([]float64, n*n), VPrev: make([]float64, n*n),
		RHS0: make([]float64, n*n), RHS1: make([]float64, n*n),
		BoundaryU: zero, BoundaryV: zero,
	}, nil
}

// RandomBurgers builds a problem with previous fields, boundary values and
// forcing drawn uniformly from ±bound, the paper's random-problem protocol
// (§5.4: "constants... randomly chosen between a dynamic range of -3.0 and
// 3.0"). The generator is deterministic in rng.
func RandomBurgers(n int, re float64, bound float64, rng *rand.Rand) (*Burgers, error) {
	b, err := NewBurgers(n, re)
	if err != nil {
		return nil, err
	}
	u := func() float64 { return bound * (2*rng.Float64() - 1) }
	for i := range b.UPrev {
		b.UPrev[i] = u()
		b.VPrev[i] = u()
		b.RHS0[i] = u()
		b.RHS1[i] = u()
	}
	// Random but fixed boundary ring.
	bu := make(map[[2]int]float64)
	bv := make(map[[2]int]float64)
	for i := -1; i <= n; i++ {
		for _, j := range []int{-1, n} {
			bu[[2]int{i, j}] = u()
			bv[[2]int{i, j}] = u()
			bu[[2]int{j, i}] = u()
			bv[[2]int{j, i}] = u()
		}
	}
	b.BoundaryU = func(i, j int) float64 { return bu[[2]int{i, j}] }
	b.BoundaryV = func(i, j int) float64 { return bv[[2]int{i, j}] }
	return b, nil
}

// Dim returns the number of unknowns: two fields on N×N nodes.
func (b *Burgers) Dim() int { return 2 * b.N * b.N }

// PolynomialDegree reports the quadratic nonlinearity of the stencil, used
// by the analog dynamic-range scaler.
func (b *Burgers) PolynomialDegree() int { return 2 }

// idx maps node (i, j) to the unknown index of its u component; +1 is v.
func (b *Burgers) idx(i, j int) int { return 2 * (i*b.N + j) }

// fieldAt reads component c (0 = u, 1 = v) at node (i, j) from the unknown
// vector w, falling back to boundary values off-grid.
func (b *Burgers) fieldAt(w []float64, c, i, j int) float64 {
	if i < 0 || i >= b.N || j < 0 || j >= b.N {
		if c == 0 {
			return b.BoundaryU(i, j)
		}
		return b.BoundaryV(i, j)
	}
	return w[b.idx(i, j)+c]
}

// prevAt reads the previous-time field with the same boundary fallback.
func (b *Burgers) prevAt(c, i, j int) float64 {
	if i < 0 || i >= b.N || j < 0 || j >= b.N {
		if c == 0 {
			return b.BoundaryU(i, j)
		}
		return b.BoundaryV(i, j)
	}
	if c == 0 {
		return b.UPrev[i*b.N+j]
	}
	return b.VPrev[i*b.N+j]
}

// Central-difference weight tables: first and second derivatives at unit
// spacing, offsets −2..+2 (the ±2 weights are zero at order 2).
var (
	d1Order2 = [5]float64{0, -0.5, 0, 0.5, 0}
	d2Order2 = [5]float64{0, 1, -2, 1, 0}
	d1Order4 = [5]float64{1.0 / 12, -8.0 / 12, 0, 8.0 / 12, -1.0 / 12}
	d2Order4 = [5]float64{-1.0 / 12, 16.0 / 12, -30.0 / 12, 16.0 / 12, -1.0 / 12}
)

// stencilAt picks the derivative weights for node (i, j): order 4 where the
// full 5-point stencil fits in both directions, order 2 otherwise.
func (b *Burgers) stencilAt(i, j int) (d1, d2 *[5]float64) {
	if b.Order == 4 && i >= 2 && i < b.N-2 && j >= 2 && j < b.N-2 {
		return &d1Order4, &d2Order4
	}
	return &d1Order2, &d2Order2
}

// advDiff evaluates the unit-coefficient spatial operator
// A(c) = u·∂ₓc + v·∂ᵧc − (1/Re)·∇²c at node (i, j), where the advecting
// velocities u, v and the advected component come from the accessor get.
func (b *Burgers) advDiff(get func(c, i, j int) float64, c, i, j int) float64 {
	u := get(0, i, j)
	v := get(1, i, j)
	d1, d2 := b.stencilAt(i, j)
	var dx, dy, lap float64
	for k := -2; k <= 2; k++ {
		w1, w2 := d1[k+2], d2[k+2]
		if w1 == 0 && w2 == 0 {
			continue
		}
		cx := get(c, i+k, j)
		cy := get(c, i, j+k)
		dx += w1 * cx
		dy += w1 * cy
		lap += w2 * (cx + cy)
	}
	return u*dx + v*dy - lap/b.Re
}

// Eval computes the Crank–Nicolson residual
// F(w) = w − w_prev + ½[A(w) + A(w_prev)] − RHS.
func (b *Burgers) Eval(w, f []float64) error {
	if len(w) != b.Dim() || len(f) != b.Dim() {
		return fmt.Errorf("pde: Burgers Eval dimension mismatch")
	}
	getNew := func(c, i, j int) float64 { return b.fieldAt(w, c, i, j) }
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			k := b.idx(i, j)
			node := i*b.N + j
			for c := 0; c < 2; c++ {
				newA := b.advDiff(getNew, c, i, j)
				oldA := b.advDiff(b.prevAt, c, i, j)
				rhs := b.RHS0[node]
				prev := b.UPrev[node]
				if c == 1 {
					rhs = b.RHS1[node]
					prev = b.VPrev[node]
				}
				f[k+c] = w[k+c] - prev + 0.5*(newA+oldA) - rhs
			}
		}
	}
	return nil
}

// JacobianCSR returns the analytic Jacobian of the stencil. The sparsity
// pattern (5-point stencil on each field plus the u–v coupling on the
// node) is built once; subsequent calls refresh the values in place, which
// keeps the analog circuit simulation (thousands of Jacobian evaluations
// per solve) allocation-free on the hot path.
func (b *Burgers) JacobianCSR(w []float64) (*la.CSR, error) {
	if len(w) != b.Dim() {
		return nil, fmt.Errorf("pde: Burgers Jacobian dimension mismatch")
	}
	if b.jac == nil {
		coo := la.NewCOO(b.Dim(), b.Dim())
		b.assembleJacobian(w, func(i, j int, v float64) {
			coo.Append(i, j, v)
		})
		b.jac = coo.ToCSR()
		// Record the value slot of each assembly-order entry; the walk is
		// deterministic and emits each (i, j) exactly once.
		b.slots = b.slots[:0]
		b.assembleJacobian(w, func(i, j int, v float64) {
			b.slots = append(b.slots, b.jac.Slot(i, j))
		})
		return b.jac, nil
	}
	// Refresh: zero, then accumulate — assembly may emit the same entry
	// several times (time term, diffusion and advection all touch the
	// node-centre slot).
	b.jac.ZeroValues()
	k := 0
	b.assembleJacobian(w, func(i, j int, v float64) {
		b.jac.AddSlotValue(b.slots[k], v)
		k++
	})
	return b.jac, nil
}

// assembleJacobian walks the stencil in deterministic order, emitting every
// Jacobian contribution. Entries for the same (row, column) may be emitted
// more than once; consumers must sum them (COO assembly and the
// zero-then-accumulate refresh both do).
//
// For the c-component equation at node (i, j),
// F = c_node − c_prev + ½[u·D₁ₓc + v·D₁ᵧc − (D₂ₓc + D₂ᵧc)/Re] + … − RHS:
//
//	∂F/∂c_{i+k,j} = ½(u·w₁[k] − w₂[k]/Re)   (x-direction neighbours)
//	∂F/∂c_{i,j+k} = ½(v·w₁[k] − w₂[k]/Re)   (y-direction neighbours)
//	∂F/∂u_{i,j}  += ½·D₁ₓc                   (advecting-velocity terms)
//	∂F/∂v_{i,j}  += ½·D₁ᵧc
//
// plus the time-derivative identity on the node centre.
func (b *Burgers) assembleJacobian(w []float64, emit func(i, j int, v float64)) {
	n := b.N
	in := func(i, j int) bool { return i >= 0 && i < n && j >= 0 && j < n }
	get := func(c, i, j int) float64 { return b.fieldAt(w, c, i, j) }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			base := b.idx(i, j)
			u := get(0, i, j)
			v := get(1, i, j)
			d1, d2 := b.stencilAt(i, j)
			for c := 0; c < 2; c++ {
				row := base + c
				// Time-derivative identity.
				emit(row, row, 1)
				// Neighbour couplings of the advected component c, and
				// the advective self-derivatives D₁ₓc, D₁ᵧc.
				var dx, dy float64
				for k := -2; k <= 2; k++ {
					w1, w2 := d1[k+2], d2[k+2]
					if w1 == 0 && w2 == 0 {
						continue
					}
					dx += w1 * get(c, i+k, j)
					dy += w1 * get(c, i, j+k)
					if k == 0 {
						// Both directions' centre weights land on the
						// node itself.
						emit(row, row, 0.5*(-2*w2/b.Re))
						continue
					}
					if in(i+k, j) {
						emit(row, b.idx(i+k, j)+c, 0.5*(u*w1-w2/b.Re))
					}
					if in(i, j+k) {
						emit(row, b.idx(i, j+k)+c, 0.5*(v*w1-w2/b.Re))
					}
				}
				// Advecting-velocity derivatives: ∂F/∂u_ij and ∂F/∂v_ij.
				emit(row, base, 0.5*dx)
				emit(row, base+1, 0.5*dy)
			}
		}
	}
}

// InitialGuess returns the standard starting point for the step's Newton
// solve: the previous time level (the natural warm start).
func (b *Burgers) InitialGuess() []float64 {
	w := make([]float64, b.Dim())
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			k := b.idx(i, j)
			node := i*b.N + j
			w[k] = b.UPrev[node]
			w[k+1] = b.VPrev[node]
		}
	}
	return w
}

// Advance installs a solved step as the new previous-time fields, enabling
// time-marching simulations.
func (b *Burgers) Advance(w []float64) error {
	if len(w) != b.Dim() {
		return fmt.Errorf("pde: Advance dimension mismatch")
	}
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			k := b.idx(i, j)
			node := i*b.N + j
			b.UPrev[node] = w[k]
			b.VPrev[node] = w[k+1]
		}
	}
	return nil
}

// MaxField returns the largest |value| across the previous fields, RHS and
// boundary ring — the dynamic range the analog scaler needs.
func (b *Burgers) MaxField() float64 {
	m := 0.0
	chk := func(v float64) {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	for i := range b.UPrev {
		chk(b.UPrev[i])
		chk(b.VPrev[i])
		chk(b.RHS0[i])
		chk(b.RHS1[i])
	}
	for i := -1; i <= b.N; i++ {
		for _, j := range []int{-1, b.N} {
			chk(b.BoundaryU(i, j))
			chk(b.BoundaryV(i, j))
			chk(b.BoundaryU(j, i))
			chk(b.BoundaryV(j, i))
		}
	}
	return m
}

// SetRHSForRoot overwrites the forcing terms so that wRoot is an exact
// solution of the step system: RHS := wRoot − w_prev + ½[A(wRoot)+A(w_prev)].
// The evaluation protocol plants a root this way before timing the solvers,
// the deterministic analogue of the paper's golden-model certification step
// (§6.1) — problems without a certified solution are never benchmarked.
func (b *Burgers) SetRHSForRoot(wRoot []float64) error {
	if len(wRoot) != b.Dim() {
		return fmt.Errorf("pde: SetRHSForRoot dimension mismatch")
	}
	la.Fill(b.RHS0, 0)
	la.Fill(b.RHS1, 0)
	f := make([]float64, b.Dim())
	if err := b.Eval(wRoot, f); err != nil {
		return err
	}
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			k := b.idx(i, j)
			node := i*b.N + j
			b.RHS0[node] = f[k]
			b.RHS1[node] = f[k+1]
		}
	}
	return nil
}

// SemiDiscreteRHS returns the method-of-lines form of the problem: the
// space-discretised ODE system dw/dt = RHS − A(w) that old-style hybrid
// computers integrated directly in analog (§4.3). The unknown layout
// matches the step system (interleaved u, v per node); boundaries and
// forcing are taken from the receiver.
func (b *Burgers) SemiDiscreteRHS() func(t float64, w, dwdt []float64) error {
	return func(t float64, w, dwdt []float64) error {
		if len(w) != b.Dim() || len(dwdt) != b.Dim() {
			return fmt.Errorf("pde: SemiDiscreteRHS dimension mismatch")
		}
		get := func(c, i, j int) float64 { return b.fieldAt(w, c, i, j) }
		for i := 0; i < b.N; i++ {
			for j := 0; j < b.N; j++ {
				k := b.idx(i, j)
				node := i*b.N + j
				dwdt[k] = b.RHS0[node] - b.advDiff(get, 0, i, j)
				dwdt[k+1] = b.RHS1[node] - b.advDiff(get, 1, i, j)
			}
		}
		return nil
	}
}
