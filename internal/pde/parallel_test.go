package pde

import (
	"math/rand"
	"testing"

	"hybridpde/internal/par"
)

// cloneVals snapshots a Jacobian's values through the public accessor.
func csrVals(t *testing.T, b *Burgers, w []float64) []float64 {
	t.Helper()
	j, err := b.JacobianCSR(w)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 0, j.NNZ())
	for i := 0; i < j.Rows(); i++ {
		_, vals := j.RowNNZ(i)
		out = append(out, vals...)
	}
	return out
}

// TestBurgersParallelBitIdentical pins the tentpole contract at the problem
// layer: Eval and the in-place Jacobian refresh produce identical bits at
// every pool size, order 2 and 4, across repeated refreshes.
func TestBurgersParallelBitIdentical(t *testing.T) {
	for _, order := range []int{2, 4} {
		for _, n := range []int{3, 8, 17} {
			rng := rand.New(rand.NewSource(int64(37 + n + order)))
			ref, err := RandomBurgers(n, 40, 2.0, rng)
			if err != nil {
				t.Fatal(err)
			}
			ref.Order = order
			w := make([]float64, ref.Dim())
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			fWant := make([]float64, ref.Dim())
			if err := ref.Eval(w, fWant); err != nil {
				t.Fatal(err)
			}
			jWant := csrVals(t, ref, w)
			// Second refresh with different state, to catch stale-slot bugs.
			w2 := make([]float64, len(w))
			for i := range w2 {
				w2[i] = w[i] * 1.5
			}
			jWant2 := csrVals(t, ref, w2)

			for _, procs := range []int{1, 2, 3, 8} {
				rng2 := rand.New(rand.NewSource(int64(37 + n + order)))
				b, err := RandomBurgers(n, 40, 2.0, rng2)
				if err != nil {
					t.Fatal(err)
				}
				b.Order = order
				p := par.NewPool(procs)
				b.SetPool(p)
				f := make([]float64, b.Dim())
				if err := b.Eval(w, f); err != nil {
					t.Fatal(err)
				}
				for i := range f {
					if f[i] != fWant[i] {
						t.Fatalf("order=%d n=%d procs=%d: f[%d] = %x, want %x", order, n, procs, i, f[i], fWant[i])
					}
				}
				got := csrVals(t, b, w)
				got2 := csrVals(t, b, w2)
				p.Close()
				for i := range got {
					if got[i] != jWant[i] {
						t.Fatalf("order=%d n=%d procs=%d: jac[%d] = %x, want %x", order, n, procs, i, got[i], jWant[i])
					}
					if got2[i] != jWant2[i] {
						t.Fatalf("order=%d n=%d procs=%d refresh2: jac[%d] = %x, want %x", order, n, procs, i, got2[i], jWant2[i])
					}
				}
			}
		}
	}
}

// TestBurgersSteadyParallelBitIdentical is the steady-form counterpart.
func TestBurgersSteadyParallelBitIdentical(t *testing.T) {
	n := 10
	build := func(procs int) (*BurgersSteady, *par.Pool) {
		rng := rand.New(rand.NewSource(99))
		b, err := RandomBurgers(n, 40, 2.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := NewBurgersSteady(b)
		var p *par.Pool
		if procs > 1 {
			p = par.NewPool(procs)
			s.SetPool(p)
		}
		return s, p
	}
	rng := rand.New(rand.NewSource(100))
	sRef, _ := build(1)
	w := make([]float64, sRef.Dim())
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	fWant := make([]float64, sRef.Dim())
	if err := sRef.Eval(w, fWant); err != nil {
		t.Fatal(err)
	}
	jRef, err := sRef.JacobianCSR(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{2, 8} {
		s, p := build(procs)
		f := make([]float64, s.Dim())
		if err := s.Eval(w, f); err != nil {
			t.Fatal(err)
		}
		for i := range f {
			if f[i] != fWant[i] {
				t.Fatalf("procs=%d: f[%d] = %x, want %x", procs, i, f[i], fWant[i])
			}
		}
		j, err := s.JacobianCSR(w)
		if err != nil {
			t.Fatal(err)
		}
		// Refresh once more to exercise the warm parallel path.
		j, err = s.JacobianCSR(w)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < j.Rows(); i++ {
			_, got := j.RowNNZ(i)
			_, want := jRef.RowNNZ(i)
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("procs=%d: row %d slot %d = %x, want %x", procs, i, k, got[k], want[k])
				}
			}
		}
		p.Close()
	}
}

// TestParallelRefreshAllocFree pins that the warm parallel Jacobian+Eval
// path stays off the allocator, the //pdevet:noalloc property measured
// dynamically.
func TestParallelRefreshAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b, err := RandomBurgers(12, 40, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := par.NewPool(4)
	defer p.Close()
	b.SetPool(p)
	w := make([]float64, b.Dim())
	f := make([]float64, b.Dim())
	if _, err := b.JacobianCSR(w); err != nil { // cold build
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := b.Eval(w, f); err != nil {
			t.Fatal(err)
		}
		if _, err := b.JacobianCSR(w); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm parallel Eval+Jacobian allocates %v per call, want 0", allocs)
	}
}
