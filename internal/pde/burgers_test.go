package pde

import (
	"math"
	"math/rand"
	"testing"

	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
)

// manufactureRoot sets the problem's RHS so that wTarget is an exact root.
func manufactureRoot(t *testing.T, b *Burgers, wTarget []float64) {
	t.Helper()
	la.Fill(b.RHS0, 0)
	la.Fill(b.RHS1, 0)
	f := make([]float64, b.Dim())
	if err := b.Eval(wTarget, f); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			k := b.idx(i, j)
			node := i*b.N + j
			b.RHS0[node] = f[k]
			b.RHS1[node] = f[k+1]
		}
	}
}

func TestBurgersValidation(t *testing.T) {
	if _, err := NewBurgers(0, 1); err == nil {
		t.Fatal("expected error for grid 0")
	}
	if _, err := NewBurgers(2, 0); err == nil {
		t.Fatal("expected error for Re = 0")
	}
	if _, err := NewBurgers(2, -1); err == nil {
		t.Fatal("expected error for negative Re")
	}
}

func TestBurgersManufacturedRootIsRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	b, err := RandomBurgers(3, 1.0, 3.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	wTarget := make([]float64, b.Dim())
	for i := range wTarget {
		wTarget[i] = 3 * (2*rng.Float64() - 1)
	}
	manufactureRoot(t, b, wTarget)
	f := make([]float64, b.Dim())
	if err := b.Eval(wTarget, f); err != nil {
		t.Fatal(err)
	}
	if la.Norm2(f) > 1e-12 {
		t.Fatalf("manufactured root has residual %g", la.Norm2(f))
	}
}

func TestBurgersJacobianMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, re := range []float64{0.05, 1.0, 5.0} {
		b, err := RandomBurgers(3, re, 2.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		w := make([]float64, b.Dim())
		for i := range w {
			w[i] = 2 * (2*rng.Float64() - 1)
		}
		jac, err := b.JacobianCSR(w)
		if err != nil {
			t.Fatal(err)
		}
		analytic := jac.ToDense()
		fd := la.NewDense(b.Dim(), b.Dim())
		dense := nonlin.DenseAdapter{S: b}
		if err := nonlin.FiniteDifferenceJacobian(
			nonlin.FuncSystem{N: b.Dim(), F: dense.Eval}, w, fd); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b.Dim(); i++ {
			for j := 0; j < b.Dim(); j++ {
				if math.Abs(analytic.At(i, j)-fd.At(i, j)) > 2e-5 {
					t.Fatalf("Re=%g: Jacobian mismatch at (%d,%d): analytic %g, FD %g",
						re, i, j, analytic.At(i, j), fd.At(i, j))
				}
			}
		}
	}
}

func TestBurgersNewtonSolvesManufacturedProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	b, err := RandomBurgers(4, 0.5, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	wTarget := make([]float64, b.Dim())
	for i := range wTarget {
		wTarget[i] = 1.5 * (2*rng.Float64() - 1)
	}
	manufactureRoot(t, b, wTarget)
	res, err := nonlin.NewtonSparse(nil, b, b.InitialGuess(), nonlin.NewtonOptions{Tol: 1e-11, AutoDamp: true, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	f := make([]float64, b.Dim())
	if err := b.Eval(res.U, f); err != nil {
		t.Fatal(err)
	}
	if la.Norm2(f) > 1e-9 {
		t.Fatalf("Newton returned non-root: ‖F‖ = %g", la.Norm2(f))
	}
}

func TestBurgersJacobianDiagonalShrinksWithReynolds(t *testing.T) {
	// §6.1: "the elements on the diagonal of the Jacobian diminish with
	// higher Reynolds numbers".
	rng := rand.New(rand.NewSource(53))
	bLow, err := RandomBurgers(4, 0.01, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	bHigh, err := NewBurgers(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	copy(bHigh.UPrev, bLow.UPrev)
	copy(bHigh.VPrev, bLow.VPrev)
	bHigh.BoundaryU, bHigh.BoundaryV = bLow.BoundaryU, bLow.BoundaryV
	w := bLow.InitialGuess()
	jLow, err := bLow.JacobianCSR(w)
	if err != nil {
		t.Fatal(err)
	}
	meanDiagLow := mean(jLow.Diagonal())
	jHigh, err := bHigh.JacobianCSR(w)
	if err != nil {
		t.Fatal(err)
	}
	meanDiagHigh := mean(jHigh.Diagonal())
	if meanDiagHigh >= meanDiagLow/10 {
		t.Fatalf("diagonal should shrink strongly with Re: Re=0.01 → %g, Re=10 → %g", meanDiagLow, meanDiagHigh)
	}
}

func mean(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s / float64(len(x))
}

func TestBurgersAdvanceRoundTrip(t *testing.T) {
	b, err := NewBurgers(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, b.Dim())
	for i := range w {
		w[i] = float64(i)
	}
	if err := b.Advance(w); err != nil {
		t.Fatal(err)
	}
	got := b.InitialGuess()
	for i := range w {
		if got[i] != w[i] {
			t.Fatalf("Advance/InitialGuess mismatch at %d", i)
		}
	}
}

func TestBurgersTimeMarchDiffusionDecays(t *testing.T) {
	// Pure diffusion sanity: with low Re (strong viscosity), zero forcing
	// and zero boundaries, the velocity magnitude must decay over steps.
	b, err := NewBurgers(4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(54))
	for i := range b.UPrev {
		b.UPrev[i] = 0.5 * rng.NormFloat64()
		b.VPrev[i] = 0.5 * rng.NormFloat64()
	}
	initial := la.Norm2(b.UPrev)
	for step := 0; step < 3; step++ {
		res, err := nonlin.NewtonSparse(nil, b, b.InitialGuess(), nonlin.NewtonOptions{Tol: 1e-10, AutoDamp: true})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := b.Advance(res.U); err != nil {
			t.Fatal(err)
		}
	}
	if la.Norm2(b.UPrev) >= initial {
		t.Fatalf("diffusive field should decay: %g → %g", initial, la.Norm2(b.UPrev))
	}
}

func TestBurgersMaxField(t *testing.T) {
	b, err := NewBurgers(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.UPrev[0] = -7
	if m := b.MaxField(); m != 7 {
		t.Fatalf("MaxField = %g, want 7", m)
	}
	b.BoundaryV = func(i, j int) float64 { return 9 }
	if m := b.MaxField(); m != 9 {
		t.Fatalf("MaxField with boundary = %g, want 9", m)
	}
}

func TestBurgersDegree(t *testing.T) {
	b, _ := NewBurgers(2, 1)
	if b.PolynomialDegree() != 2 {
		t.Fatal("Burgers stencil must report quadratic degree")
	}
}

func TestSemilinearMatchesEquation2(t *testing.T) {
	s := Equation2(1.0, -1.0)
	f := make([]float64, 2)
	// (1, −1) is an exact root (verified by hand in §3.1 terms).
	if err := s.Eval([]float64{1, -1}, f); err != nil {
		t.Fatal(err)
	}
	if la.Norm2(f) > 1e-14 {
		t.Fatalf("(1,−1) should be an exact root, residual %g", la.Norm2(f))
	}
	jac := la.NewDense(2, 2)
	if err := s.Jacobian([]float64{0.3, 0.7}, jac); err != nil {
		t.Fatal(err)
	}
	if jac.At(0, 0) != 1.6 || jac.At(0, 1) != 1 || jac.At(1, 0) != -1 || jac.At(1, 1) != 2.4 {
		t.Fatalf("Equation 2 Jacobian wrong: %v", jac)
	}
	if s.PolynomialDegree() != 2 {
		t.Fatal("semilinear system must report degree 2")
	}
}

func TestSemilinearChainJacobianMatchesFD(t *testing.T) {
	s := NewSemilinear1D([]float64{0.5, -0.2, 0.8, 0.1})
	u := []float64{0.1, -0.4, 0.9, -0.6}
	jac := la.NewDense(4, 4)
	if err := s.Jacobian(u, jac); err != nil {
		t.Fatal(err)
	}
	fd := la.NewDense(4, 4)
	if err := nonlin.FiniteDifferenceJacobian(nonlin.FuncSystem{N: 4, F: s.Eval}, u, fd); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(jac.At(i, j)-fd.At(i, j)) > 1e-5 {
				t.Fatalf("chain Jacobian mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCharacterShiftsWithReynolds(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	bLow, err := RandomBurgers(4, 0.01, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	cLow := CharacterFor(bLow)
	if cLow.Dominant != "second-order, diffusive (parabolic PDE)" {
		t.Fatalf("Re=0.01 should be diffusion-dominated, got %q", cLow.Dominant)
	}
	bHigh, err := NewBurgers(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	copy(bHigh.UPrev, bLow.UPrev)
	copy(bHigh.VPrev, bLow.VPrev)
	bHigh.BoundaryU, bHigh.BoundaryV = bLow.BoundaryU, bLow.BoundaryV
	cHigh := CharacterFor(bHigh)
	if cHigh.Dominant != "first-order, advective (hyperbolic PDE)" {
		t.Fatalf("Re=10 should be advection-dominated, got %q", cHigh.Dominant)
	}
	if cHigh.Nonlinearity != "quasilinear" || cLow.Nonlinearity != "semilinear" {
		t.Fatalf("nonlinearity labels wrong: %q / %q", cHigh.Nonlinearity, cLow.Nonlinearity)
	}
}

// quarticField builds a Burgers problem whose u-field samples f(i) = i⁴,
// constant in j, including the ghost ring, with zero velocities elsewhere
// so advDiff reduces to the (negated) Laplacian.
func quarticBurgers(t *testing.T, n, order int) (*Burgers, []float64) {
	t.Helper()
	b, err := NewBurgers(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b.Order = order
	quart := func(i int) float64 { return float64(i * i * i * i) }
	b.BoundaryU = func(i, j int) float64 { return quart(i) }
	b.BoundaryV = func(i, j int) float64 { return 0 }
	w := make([]float64, b.Dim())
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w[2*(i*n+j)] = quart(i) // u = i⁴, v = 0
		}
	}
	return b, w
}

func TestFourthOrderStencilExactOnQuartic(t *testing.T) {
	// The 5-point D₂ is exact for x⁴; the 3-point D₂ errs by exactly 2.
	// With v = 0 and u = i⁴ the u-equation operator at interior nodes is
	// A = u·D₁ₓu − ∇²u (Re = 1); we isolate the Laplacian by comparing
	// both orders against the analytic values.
	n := 9
	i, j := 4, 4 // deep interior: order-4 stencil active
	exactD2 := 12.0 * float64(i*i)
	exactD1 := 4.0 * float64(i*i*i)
	uVal := float64(i * i * i * i)
	exactA := uVal*exactD1 - exactD2

	b4, w4 := quarticBurgers(t, n, 4)
	got4 := b4.advDiff(w4, 0, i, j)
	if math.Abs(got4-exactA) > 1e-9*math.Abs(exactA) {
		t.Fatalf("order-4 operator on quartic: got %g, want %g", got4, exactA)
	}

	b2, w2 := quarticBurgers(t, n, 2)
	got2 := b2.advDiff(w2, 0, i, j)
	// Order-2 errors on x⁴: D₁ under [−½,0,½] gives 4x³+4x (high by 4x),
	// D₂ under [1,−2,1] gives 12x²+2 (high by 2); A = u·D₁ − D₂.
	wantErr := uVal*(4*float64(i)) - 2.0
	if math.Abs((got2-exactA)-wantErr) > 1e-9*math.Abs(exactA) {
		t.Fatalf("order-2 operator error: got %g, want %g", got2-exactA, wantErr)
	}
}

func TestFourthOrderJacobianMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	b, err := RandomBurgers(6, 0.8, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	b.Order = 4
	w := make([]float64, b.Dim())
	for i := range w {
		w[i] = 1.5 * (2*rng.Float64() - 1)
	}
	jac, err := b.JacobianCSR(w)
	if err != nil {
		t.Fatal(err)
	}
	analytic := jac.ToDense()
	dense := nonlin.DenseAdapter{S: b}
	fd := la.NewDense(b.Dim(), b.Dim())
	if err := nonlin.FiniteDifferenceJacobian(
		nonlin.FuncSystem{N: b.Dim(), F: dense.Eval}, w, fd); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Dim(); i++ {
		for j := 0; j < b.Dim(); j++ {
			if math.Abs(analytic.At(i, j)-fd.At(i, j)) > 3e-5 {
				t.Fatalf("order-4 Jacobian mismatch at (%d,%d): analytic %g, FD %g",
					i, j, analytic.At(i, j), fd.At(i, j))
			}
		}
	}
}

func TestFourthOrderNewtonSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	b, err := RandomBurgers(6, 0.8, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	b.Order = 4
	wTarget := make([]float64, b.Dim())
	for i := range wTarget {
		wTarget[i] = 1.2 * (2*rng.Float64() - 1)
	}
	if err := b.SetRHSForRoot(wTarget); err != nil {
		t.Fatal(err)
	}
	res, err := nonlin.NewtonSparse(nil, b, b.InitialGuess(), nonlin.NewtonOptions{Tol: 1e-10, AutoDamp: true, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	f := make([]float64, b.Dim())
	if err := b.Eval(res.U, f); err != nil {
		t.Fatal(err)
	}
	if la.Norm2(f) > 1e-8 {
		t.Fatalf("order-4 Newton returned non-root: ‖F‖ = %g", la.Norm2(f))
	}
}

func TestJacobianRefreshMatchesFreshAssembly(t *testing.T) {
	// Calling JacobianCSR twice with different states must equal a fresh
	// assembly (validates the zero-then-accumulate slot refresh).
	rng := rand.New(rand.NewSource(58))
	for _, order := range []int{2, 4} {
		b, err := RandomBurgers(6, 1.0, 2.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		b.Order = order
		w1 := make([]float64, b.Dim())
		w2 := make([]float64, b.Dim())
		for i := range w1 {
			w1[i] = rng.NormFloat64()
			w2[i] = rng.NormFloat64()
		}
		if _, err := b.JacobianCSR(w1); err != nil {
			t.Fatal(err)
		}
		refreshed, err := b.JacobianCSR(w2) // second call: slot refresh path
		if err != nil {
			t.Fatal(err)
		}
		refreshedDense := refreshed.ToDense()
		fresh, err := RandomBurgers(6, 1.0, 2.0, rand.New(rand.NewSource(58)))
		if err != nil {
			t.Fatal(err)
		}
		_ = fresh
		// Fresh problem with identical discretisation parameters and state.
		b2, err := NewBurgers(6, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		b2.Order = order
		b2.BoundaryU, b2.BoundaryV = b.BoundaryU, b.BoundaryV
		j2, err := b2.JacobianCSR(w2)
		if err != nil {
			t.Fatal(err)
		}
		j2d := j2.ToDense()
		for i := 0; i < b.Dim(); i++ {
			for j := 0; j < b.Dim(); j++ {
				if math.Abs(refreshedDense.At(i, j)-j2d.At(i, j)) > 1e-13 {
					t.Fatalf("order %d: refreshed Jacobian differs from fresh at (%d,%d)", order, i, j)
				}
			}
		}
	}
}
