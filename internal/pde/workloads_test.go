package pde

import (
	"strings"
	"testing"
)

func TestBwavesLikeSolverDominates(t *testing.T) {
	r, err := RunBwavesLike(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.KernelFraction <= 0.3 || r.KernelFraction >= 1 {
		t.Fatalf("Bi-CGstab share %.2f; the FD implicit workload must be solver-dominated (>0.3)", r.KernelFraction)
	}
	if r.DominantKernel != "Bi-CGstab" {
		t.Fatalf("wrong kernel label %q", r.DominantKernel)
	}
	if !strings.Contains(r.Profile.String(), "Bi-CGstab") {
		t.Fatal("profile should list the kernel section")
	}
}

func TestHartmannLikeRuns(t *testing.T) {
	r, err := RunHartmannLike(20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.KernelFraction <= 0.2 || r.KernelFraction >= 1 {
		t.Fatalf("PCG share %.2f out of expected range", r.KernelFraction)
	}
}

func TestCavityLikeRuns(t *testing.T) {
	r, err := RunCavityLike(20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.KernelFraction <= 0 || r.KernelFraction >= 1 {
		t.Fatalf("PCG share %.2f out of range", r.KernelFraction)
	}
}

func TestCookLikeRuns(t *testing.T) {
	r, err := RunCookLike(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.KernelFraction <= 0 || r.KernelFraction >= 1 {
		t.Fatalf("SOR+CG share %.2f out of range", r.KernelFraction)
	}
	if r.Discipline != "Engineering mechanics" {
		t.Fatalf("wrong discipline %q", r.Discipline)
	}
}

func TestWorkloadReportString(t *testing.T) {
	r, err := RunHartmannLike(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	if !strings.Contains(s, "Hartmann") || !strings.Contains(s, "%") {
		t.Fatalf("report string malformed: %q", s)
	}
}
