package pde

import (
	"fmt"

	"hybridpde/internal/la"
	"hybridpde/internal/par"
	"hybridpde/internal/problem"
)

// BurgersSteady is the steady method-of-lines form of a Burgers problem:
// the root system F(w) = A(w) − RHS = 0 of the semi-discrete ODE
// dw/dt = RHS − A(w) (§4.3). Old-style hybrid computers integrated that ODE
// directly in analog; the steady form is its fixed point, and is the
// workload the repeated-Newton benchmarks use (one fixed system solved many
// times, as in a pseudo-timestepping production run). It shares the wrapped
// problem's fields, boundaries and forcing but keeps its own Jacobian cache
// (the steady Jacobian lacks the Crank–Nicolson identity term).
type BurgersSteady struct {
	B *Burgers

	cache jacCache
	// rhsScratch is SetRHSForRoot's residual buffer, grown on first use so
	// repeated re-rooting (a solve service refreshing a cached problem per
	// request) stays off the allocator.
	rhsScratch []float64
	// evalRun is the persistent residual fan-out runner; the Jacobian
	// fan-out reuses the wrapped problem's runner with this cache.
	evalRun steadyEvalRun
}

// SetPool attaches a worker pool to the steady residual and Jacobian walks
// (the nonlin.PoolAware hook); it is shared with the wrapped problem's
// walks. See Burgers.SetPool for the determinism contract.
func (s *BurgersSteady) SetPool(p *par.Pool) { s.B.SetPool(p) }

// steadyEvalRun fans the steady residual across grid-row chunks.
type steadyEvalRun struct {
	s    *BurgersSteady
	w, f []float64
}

func (r *steadyEvalRun) Run(_, lo, hi int) { r.s.evalRows(r.w, r.f, lo, hi) }

// evalRows computes the steady residual of grid rows [iLo, iHi).
//
//pdevet:noalloc
func (s *BurgersSteady) evalRows(w, f []float64, iLo, iHi int) {
	b := s.B
	for i := iLo; i < iHi; i++ {
		for j := 0; j < b.N; j++ {
			k := b.idx(i, j)
			node := i*b.N + j
			f[k] = b.advDiff(w, 0, i, j) - b.RHS0[node]
			f[k+1] = b.advDiff(w, 1, i, j) - b.RHS1[node]
		}
	}
}

// NewBurgersSteady wraps b in its steady method-of-lines form.
func NewBurgersSteady(b *Burgers) *BurgersSteady { return &BurgersSteady{B: b} }

// Dim returns the number of unknowns.
func (s *BurgersSteady) Dim() int { return s.B.Dim() }

// PolynomialDegree reports the quadratic nonlinearity.
func (s *BurgersSteady) PolynomialDegree() int { return 2 }

// Eval computes F(w) = A(w) − RHS.
//
//pdevet:noalloc
func (s *BurgersSteady) Eval(w, f []float64) error {
	b := s.B
	if len(w) != b.Dim() || len(f) != b.Dim() {
		return fmt.Errorf("pde: BurgersSteady Eval dimension mismatch") //pdevet:allow noalloc error path
	}
	if p := b.pool; p.Procs() > 1 {
		s.evalRun.s = s
		s.evalRun.w = w
		s.evalRun.f = f
		p.Run(b.N, evalGrain(b.N), &s.evalRun)
		return nil
	}
	s.evalRows(w, f, 0, b.N)
	return nil
}

// JacobianCSR returns ∂A/∂w with the cached-pattern refresh.
//
//pdevet:noalloc
func (s *BurgersSteady) JacobianCSR(w []float64) (*la.CSR, error) {
	if len(w) != s.Dim() {
		return nil, fmt.Errorf("pde: BurgersSteady Jacobian dimension mismatch") //pdevet:allow noalloc error path
	}
	if s.cache.jac == nil {
		s.cache.buildUnits(s.Dim(), s.B.N, func(lo, hi int, e jacEmitter) { s.B.assembleJacobianRows(w, e, 0, 1, lo, hi) }) //pdevet:allow noalloc grow-on-first-use
		return s.cache.jac, nil
	}
	s.B.refreshJacobian(&s.cache, w, 0, 1)
	return s.cache.jac, nil
}

// InitialGuess returns the wrapped problem's previous-time fields.
func (s *BurgersSteady) InitialGuess() []float64 { return s.B.InitialGuess() }

// InitialGuessInto writes the wrapped problem's fields without allocating.
func (s *BurgersSteady) InitialGuessInto(w []float64) { s.B.InitialGuessInto(w) }

// MaxField propagates the wrapped problem's dynamic range.
func (s *BurgersSteady) MaxField() float64 { return s.B.MaxField() }

// Tiles delegates the red-black decomposition to the wrapped problem; the
// steady stencil has the same footprint.
func (s *BurgersSteady) Tiles(maxVars int) ([]problem.Tile, error) { return s.B.Tiles(maxVars) }

// SetRHSForRoot overwrites the forcing so wRoot is an exact steady solution:
// RHS := A(wRoot). After the first call on a given shape it does not
// allocate, so callers may re-root a cached problem per solve.
func (s *BurgersSteady) SetRHSForRoot(wRoot []float64) error {
	b := s.B
	if len(wRoot) != b.Dim() {
		return fmt.Errorf("pde: SetRHSForRoot dimension mismatch")
	}
	la.Fill(b.RHS0, 0)
	la.Fill(b.RHS1, 0)
	if len(s.rhsScratch) != b.Dim() {
		s.rhsScratch = make([]float64, b.Dim())
	}
	f := s.rhsScratch
	if err := s.Eval(wRoot, f); err != nil {
		return err
	}
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			k := b.idx(i, j)
			node := i*b.N + j
			b.RHS0[node] = f[k]
			b.RHS1[node] = f[k+1]
		}
	}
	return nil
}

var (
	_ problem.SparseSystem = (*BurgersSteady)(nil)
	_ problem.Decomposable = (*BurgersSteady)(nil)
)
