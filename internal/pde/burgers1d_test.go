package pde

import (
	"math"
	"math/rand"
	"testing"

	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
)

func TestBurgers1DValidation(t *testing.T) {
	if _, err := NewBurgers1D(0, 1); err == nil {
		t.Fatal("expected error for size 0")
	}
	if _, err := NewBurgers1D(4, 0); err == nil {
		t.Fatal("expected error for Re = 0")
	}
}

func TestBurgers1DJacobianMatchesFD(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	b, err := RandomBurgers1D(7, 0.8, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 7)
	for i := range w {
		w[i] = 2 * (2*rng.Float64() - 1)
	}
	jac, err := b.JacobianCSR(w)
	if err != nil {
		t.Fatal(err)
	}
	analytic := jac.ToDense()
	fd := la.NewDense(7, 7)
	dense := nonlin.DenseAdapter{S: b}
	if err := nonlin.FiniteDifferenceJacobian(nonlin.FuncSystem{N: 7, F: dense.Eval}, w, fd); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			if math.Abs(analytic.At(i, j)-fd.At(i, j)) > 2e-5 {
				t.Fatalf("1-D Jacobian mismatch at (%d,%d): %g vs %g", i, j, analytic.At(i, j), fd.At(i, j))
			}
		}
	}
	// Refresh path must match a fresh assembly.
	w2 := make([]float64, 7)
	for i := range w2 {
		w2[i] = rng.NormFloat64()
	}
	refreshed, err := b.JacobianCSR(w2)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := NewBurgers1D(7, 0.8)
	copy(b2.UPrev, b.UPrev)
	b2.Left, b2.Right = b.Left, b.Right
	fresh, err := b2.JacobianCSR(w2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			if math.Abs(refreshed.At(i, j)-fresh.At(i, j)) > 1e-14 {
				t.Fatalf("refresh mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestBurgers1DNewtonSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	b, err := RandomBurgers1D(12, 1.0, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	root := make([]float64, 12)
	for i := range root {
		root[i] = 1.2 * (2*rng.Float64() - 1)
	}
	if err := b.SetRHSForRoot(root); err != nil {
		t.Fatal(err)
	}
	res, err := nonlin.NewtonSparse(nil, b, b.InitialGuess(), nonlin.NewtonOptions{Tol: 1e-11, AutoDamp: true, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	f := make([]float64, 12)
	if err := b.Eval(res.U, f); err != nil {
		t.Fatal(err)
	}
	if la.Norm2(f) > 1e-9 {
		t.Fatalf("1-D Newton returned non-root: ‖F‖ = %g", la.Norm2(f))
	}
}

func TestBurgers1DThomasStepMatchesBandedNewton(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	b, err := RandomBurgers1D(10, 0.7, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	w1 := b.InitialGuess()
	if err := b.NewtonStepTridiagonal(w1); err != nil {
		t.Fatal(err)
	}
	// Reference: one undamped sparse-Newton iteration.
	res, err := nonlin.NewtonSparse(nil, b, b.InitialGuess(), nonlin.NewtonOptions{Tol: 1e-300, MaxIter: 1, DivergeFactor: 1e18})
	_ = err // MaxIter=1 typically reports no convergence; we want the iterate
	for i := range w1 {
		if math.Abs(w1[i]-res.U[i]) > 1e-10 {
			t.Fatalf("Thomas step differs from banded Newton step at %d: %g vs %g", i, w1[i], res.U[i])
		}
	}
}

func TestBurgers1DTimeMarchDecay(t *testing.T) {
	b, err := NewBurgers1D(8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.UPrev {
		b.UPrev[i] = math.Sin(float64(i+1) * 0.7)
	}
	initial := la.Norm2(b.UPrev)
	for s := 0; s < 3; s++ {
		res, err := nonlin.NewtonSparse(nil, b, b.InitialGuess(), nonlin.NewtonOptions{Tol: 1e-10, AutoDamp: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Advance(res.U); err != nil {
			t.Fatal(err)
		}
	}
	if la.Norm2(b.UPrev) >= initial {
		t.Fatalf("diffusive 1-D field should decay: %g → %g", initial, la.Norm2(b.UPrev))
	}
}

func TestSolveTridiagonalAgainstBand(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n := 40
	sub := make([]float64, n)
	diag := make([]float64, n)
	sup := make([]float64, n)
	bld := la.NewCOO(n, n)
	for i := 0; i < n; i++ {
		diag[i] = 4 + rng.Float64()
		bld.Append(i, i, diag[i])
		if i > 0 {
			sub[i] = -1 + 0.2*rng.Float64()
			bld.Append(i, i-1, sub[i])
		}
		if i < n-1 {
			sup[i] = -1 + 0.2*rng.Float64()
			bld.Append(i, i+1, sup[i])
		}
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	if err := la.SolveTridiagonal(x, sub, diag, sup, rhs); err != nil {
		t.Fatal(err)
	}
	want, _, err := la.SolveSparse(bld.ToCSR(), rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("Thomas vs band mismatch at %d", i)
		}
	}
	// Singular pivot detection.
	zero := make([]float64, 2)
	if err := la.SolveTridiagonal(zero, []float64{0, 0}, []float64{0, 1}, []float64{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("zero pivot must be rejected")
	}
}
