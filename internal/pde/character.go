package pde

import (
	"fmt"
	"math"
)

// Character classifies the dominant behaviour of the Burgers operator at a
// given Reynolds number, reproducing Table 2 of the paper.
type Character struct {
	Re float64
	// AdvectiveMagnitude and DiffusiveMagnitude are RMS magnitudes of the
	// first-order advective and second-order diffusive terms measured on a
	// reference field.
	AdvectiveMagnitude float64
	DiffusiveMagnitude float64
	// Dominant is "first-order, advective (hyperbolic PDE)" or
	// "second-order, diffusive (parabolic PDE)".
	Dominant string
	// Nonlinearity is "quasilinear" (advection-dominated) or "semilinear".
	Nonlinearity string
	// ViscosityLabel and DiffusionLabel reproduce the qualitative columns.
	ViscosityLabel string
	DiffusionLabel string
}

// CharacterFor measures the operator balance of a Burgers problem on its
// current fields. Larger Reynolds numbers weaken the diffusive term,
// shifting the PDE from parabolic to hyperbolic character (Table 2).
func CharacterFor(b *Burgers) Character {
	w := b.InitialGuess()
	get := func(c, i, j int) float64 { return b.fieldAt(w, c, i, j) }
	var advSq, diffSq float64
	count := 0
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			for c := 0; c < 2; c++ {
				u := get(0, i, j)
				v := get(1, i, j)
				cE := get(c, i+1, j)
				cW := get(c, i-1, j)
				cN := get(c, i, j+1)
				cS := get(c, i, j-1)
				cC := get(c, i, j)
				adv := u*(cE-cW)/2 + v*(cN-cS)/2
				diff := (cE + cW + cN + cS - 4*cC) / b.Re
				advSq += adv * adv
				diffSq += diff * diff
				count++
			}
		}
	}
	ch := Character{
		Re:                 b.Re,
		AdvectiveMagnitude: math.Sqrt(advSq / float64(count)),
		DiffusiveMagnitude: math.Sqrt(diffSq / float64(count)),
	}
	if ch.AdvectiveMagnitude > ch.DiffusiveMagnitude {
		ch.Dominant = "first-order, advective (hyperbolic PDE)"
		ch.Nonlinearity = "quasilinear"
		ch.ViscosityLabel = "low"
		ch.DiffusionLabel = "small"
	} else {
		ch.Dominant = "second-order, diffusive (parabolic PDE)"
		ch.Nonlinearity = "semilinear"
		ch.ViscosityLabel = "high"
		ch.DiffusionLabel = "large"
	}
	return ch
}

// String renders one Table 2 row.
func (c Character) String() string {
	return fmt.Sprintf("Re=%-8.3g viscosity=%-4s diffusion=%-5s dominant=%q nonlinearity=%s",
		c.Re, c.ViscosityLabel, c.DiffusionLabel, c.Dominant, c.Nonlinearity)
}
