package pde

import (
	"fmt"
	"math"
	"math/rand"

	"hybridpde/internal/la"
	"hybridpde/internal/problem"
)

// Burgers1D is one Crank–Nicolson step of the one-dimensional viscous
// Burgers' equation u_t + u·u_x − (1/Re)·u_xx = RHS on N interior nodes
// with Dirichlet ends. §7 notes that "all practical PDE solvers decouple
// the problem dimensions and solve the problem in one or two dimensions at
// a time"; this is the one-dimensional member of that family, with a
// tridiagonal Jacobian (the paper's linear-algebra predecessor [22, 23]
// benchmarked exactly such systems).
type Burgers1D struct {
	N  int
	Re float64
	// UPrev is the previous time level, length N.
	UPrev []float64
	// Left and Right are the Dirichlet end values.
	Left, Right float64
	// RHS is the forcing, length N.
	RHS []float64

	cache jacCache
}

// NewBurgers1D allocates a zero problem.
func NewBurgers1D(n int, re float64) (*Burgers1D, error) {
	if n < 1 {
		return nil, fmt.Errorf("pde: grid size %d must be ≥ 1", n)
	}
	if re <= 0 {
		return nil, fmt.Errorf("pde: Reynolds number %g must be positive", re)
	}
	return &Burgers1D{N: n, Re: re, UPrev: make([]float64, n), RHS: make([]float64, n)}, nil
}

// RandomBurgers1D draws fields, ends and forcing from ±bound.
func RandomBurgers1D(n int, re, bound float64, rng *rand.Rand) (*Burgers1D, error) {
	b, err := NewBurgers1D(n, re)
	if err != nil {
		return nil, err
	}
	u := func() float64 { return bound * (2*rng.Float64() - 1) }
	for i := range b.UPrev {
		b.UPrev[i] = u()
		b.RHS[i] = u()
	}
	b.Left, b.Right = u(), u()
	return b, nil
}

// Dim returns the number of unknowns.
func (b *Burgers1D) Dim() int { return b.N }

// PolynomialDegree reports the quadratic nonlinearity.
func (b *Burgers1D) PolynomialDegree() int { return 2 }

// at reads position i from w with Dirichlet fallback.
func (b *Burgers1D) at(w []float64, i int) float64 {
	switch {
	case i < 0:
		return b.Left
	case i >= b.N:
		return b.Right
	default:
		return w[i]
	}
}

// opA evaluates u·u_x − u_xx/Re at node i on field w.
func (b *Burgers1D) opA(w []float64, i int) float64 {
	uC := b.at(w, i)
	uE := b.at(w, i+1)
	uW := b.at(w, i-1)
	return uC*(uE-uW)/2 - (uE-2*uC+uW)/b.Re
}

// Eval computes F(w) = w − w_prev + ½[A(w) + A(w_prev)] − RHS.
//
//pdevet:noalloc
func (b *Burgers1D) Eval(w, f []float64) error {
	if len(w) != b.N || len(f) != b.N {
		return fmt.Errorf("pde: Burgers1D Eval dimension mismatch") //pdevet:allow noalloc error path
	}
	for i := 0; i < b.N; i++ {
		f[i] = w[i] - b.UPrev[i] + 0.5*(b.opA(w, i)+b.opA(b.UPrev, i)) - b.RHS[i]
	}
	return nil
}

// assembleJacobian walks the tridiagonal stencil in deterministic order.
//
//pdevet:noalloc
func (b *Burgers1D) assembleJacobian(w []float64, e jacEmitter) {
	for i := 0; i < b.N; i++ {
		uC := b.at(w, i)
		uE := b.at(w, i+1)
		uW := b.at(w, i-1)
		e.emit(i, i, 1+0.5*((uE-uW)/2+2/b.Re))
		if i > 0 {
			e.emit(i, i-1, 0.5*(-uC/2-1/b.Re))
		}
		if i < b.N-1 {
			e.emit(i, i+1, 0.5*(uC/2-1/b.Re))
		}
	}
}

// JacobianCSR returns the tridiagonal Jacobian, refreshing a cached pattern.
//
//pdevet:noalloc
func (b *Burgers1D) JacobianCSR(w []float64) (*la.CSR, error) {
	if len(w) != b.N {
		return nil, fmt.Errorf("pde: Burgers1D Jacobian dimension mismatch") //pdevet:allow noalloc error path
	}
	if b.cache.jac == nil {
		b.cache.build(b.N, func(e jacEmitter) { b.assembleJacobian(w, e) }) //pdevet:allow noalloc grow-on-first-use
		return b.cache.jac, nil
	}
	b.cache.beginRefresh()
	b.assembleJacobian(w, &b.cache)
	return b.cache.jac, nil
}

// InitialGuess returns the warm start (previous time level).
func (b *Burgers1D) InitialGuess() []float64 { return la.Copy(b.UPrev) }

// InitialGuessInto writes the previous time level into w without allocating.
func (b *Burgers1D) InitialGuessInto(w []float64) { copy(w, b.UPrev) }

// Advance installs a solved step as the new previous level.
func (b *Burgers1D) Advance(w []float64) error {
	if len(w) != b.N {
		return fmt.Errorf("pde: Advance dimension mismatch")
	}
	copy(b.UPrev, w)
	return nil
}

// MaxField returns the largest |value| across the previous field, forcing
// and end values — the dynamic range the analog scaler needs.
func (b *Burgers1D) MaxField() float64 {
	m := math.Max(math.Abs(b.Left), math.Abs(b.Right))
	for i := range b.UPrev {
		if a := math.Abs(b.UPrev[i]); a > m {
			m = a
		}
		if a := math.Abs(b.RHS[i]); a > m {
			m = a
		}
	}
	return m
}

// Tiles implements problem.Decomposable: contiguous red-black blocks of the
// chain, each fitting in maxVars accelerator variables, using the largest
// dividing block of at least two nodes.
func (b *Burgers1D) Tiles(maxVars int) ([]problem.Tile, error) {
	block, err := problem.LargestDividingTile(b.N, maxVars)
	if err != nil {
		return nil, fmt.Errorf("pde: cannot tile %d-node chain for %d-variable accelerator: %w", b.N, maxVars, err)
	}
	return problem.Blocks1D(b.N, block)
}

var (
	_ problem.SparseSystem = (*Burgers1D)(nil)
	_ problem.Decomposable = (*Burgers1D)(nil)
)

// SetRHSForRoot plants wRoot as an exact solution (evaluation protocol).
func (b *Burgers1D) SetRHSForRoot(wRoot []float64) error {
	if len(wRoot) != b.N {
		return fmt.Errorf("pde: SetRHSForRoot dimension mismatch")
	}
	la.Fill(b.RHS, 0)
	f := make([]float64, b.N)
	if err := b.Eval(wRoot, f); err != nil {
		return err
	}
	copy(b.RHS, f)
	return nil
}

// NewtonStepTridiagonal performs one undamped Newton step exploiting the
// tridiagonal structure with the Thomas algorithm — the O(n) fast path a
// production 1-D solver uses instead of the generic banded factorization.
func (b *Burgers1D) NewtonStepTridiagonal(w []float64) error {
	n := b.N
	f := make([]float64, n)
	if err := b.Eval(w, f); err != nil {
		return err
	}
	sub := make([]float64, n)
	diag := make([]float64, n)
	sup := make([]float64, n)
	for i := 0; i < n; i++ {
		uC := b.at(w, i)
		uE := b.at(w, i+1)
		uW := b.at(w, i-1)
		diag[i] = 1 + 0.5*((uE-uW)/2+2/b.Re)
		if i > 0 {
			sub[i] = 0.5 * (-uC/2 - 1/b.Re)
		}
		if i < n-1 {
			sup[i] = 0.5 * (uC/2 - 1/b.Re)
		}
	}
	delta := make([]float64, n)
	if err := la.SolveTridiagonal(delta, sub, diag, sup, f); err != nil {
		return err
	}
	la.Axpy(-1, delta, w)
	return nil
}
