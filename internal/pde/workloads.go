package pde

import (
	"errors"
	"fmt"
	"math"

	"hybridpde/internal/la"
	"hybridpde/internal/prof"
)

// WorkloadReport is one row of Table 1: a PDE solver mini-app, its dominant
// equation-solving kernel, and the fraction of runtime that kernel consumed
// in an instrumented run.
type WorkloadReport struct {
	Discipline     string
	Problem        string
	Solver         string
	Approach       string
	DominantKernel string
	KernelFraction float64 // measured share of runtime in the kernel
	Profile        *prof.Profile
}

// String renders the report row.
func (r WorkloadReport) String() string {
	return fmt.Sprintf("%-22s %-28s kernel=%-28s %5.1f%%",
		r.Discipline, r.Problem, r.DominantKernel, 100*r.KernelFraction)
}

// tolerateNonConvergence filters iterative-solver outcomes the mini-apps
// deliberately march through: production codes (SPEC bwaves, OpenFOAM)
// continue time stepping from the solver's best iterate when an inner
// solve stalls or nearly breaks down, and the mini-apps model that — the
// measured quantity here is the kernel-share profile, not the solution.
// Anything else (dimension mismatch, singular preconditioner) is a bug in
// the workload itself and propagates.
func tolerateNonConvergence(err error) error {
	if errors.Is(err, la.ErrNoConvergence) || errors.Is(err, la.ErrBreakdown) {
		return nil
	}
	return err
}

// laplacianMatrix assembles the 5-point −∇² operator plus diag·I on an
// n×n grid.
func laplacianMatrix(n int, diag float64) *la.CSR {
	b := la.NewCOO(n*n, n*n)
	id := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r := id(i, j)
			b.Append(r, r, 4+diag)
			if i > 0 {
				b.Append(r, id(i-1, j), -1)
			}
			if i < n-1 {
				b.Append(r, id(i+1, j), -1)
			}
			if j > 0 {
				b.Append(r, id(i, j-1), -1)
			}
			if j < n-1 {
				b.Append(r, id(i, j+1), -1)
			}
		}
	}
	return b.ToCSR()
}

// RunBwavesLike reproduces the first Table 1 row: a transient laminar
// viscous flow solved with finite differences and implicit time stepping,
// where each step's linearised coupled system is handed to BiCGSTAB — the
// kernel that dominates SPEC 410.bwaves. Three coupled fields (density and
// two velocity components) are advanced `steps` times on an n×n grid.
func RunBwavesLike(n, steps int) (WorkloadReport, error) {
	p := prof.New()
	nn := n * n
	dim := 3 * nn
	id := func(f, i, j int) int { return f*nn + i*n + j }
	r := make([]float64, dim)
	for i := range r[:nn] {
		r[i] = 1 + 0.1*math.Sin(float64(i))
	}
	for i := nn; i < dim; i++ {
		r[i] = 0.05 * math.Cos(float64(i))
	}
	// A stiff implicit step: the diffusion number dt·ν is O(1), so the
	// linear system is far from the identity and BiCGSTAB must work for
	// its solution — as in the real bwaves, where the solver takes ~77 %
	// of the runtime.
	const dt, nu, cs = 1.0, 0.35, 0.3
	rhs := make([]float64, dim)
	x := make([]float64, dim)
	// The matrix structure is fixed (bwaves stores it in MSR format once);
	// per step only the values are refreshed.
	var a *la.CSR
	var slots []int
	assemble := func(emit func(i, j int, v float64)) {
		for f := 0; f < 3; f++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					row := id(f, i, j)
					u := r[id(1, i, j)]
					v := r[id(2, i, j)]
					emit(row, row, 1+dt*4*nu)
					// Upwinded advection + diffusion (implicit).
					if i > 0 {
						emit(row, id(f, i-1, j), dt*(-nu-math.Max(u, 0)/2))
					}
					if i < n-1 {
						emit(row, id(f, i+1, j), dt*(-nu+math.Min(u, 0)/2))
					}
					if j > 0 {
						emit(row, id(f, i, j-1), dt*(-nu-math.Max(v, 0)/2))
					}
					if j < n-1 {
						emit(row, id(f, i, j+1), dt*(-nu+math.Min(v, 0)/2))
					}
					// Acoustic coupling between density and velocity.
					if f != 0 {
						emit(row, id(0, i, j), dt*cs)
					} else {
						emit(row, id(1, i, j), dt*cs/2)
						emit(row, id(2, i, j), dt*cs/2)
					}
				}
			}
		}
	}
	for s := 0; s < steps; s++ {
		p.Section("stencil assembly", func() {
			if a == nil {
				bld := la.NewCOO(dim, dim)
				assemble(func(i, j int, v float64) { bld.Append(i, j, v) })
				a = bld.ToCSR()
				assemble(func(i, j int, v float64) { slots = append(slots, a.Slot(i, j)) })
			} else {
				k := 0
				assemble(func(i, j int, v float64) { a.SetSlotValue(slots[k], v); k++ })
			}
			copy(rhs, r)
		})
		var solveErr error
		p.Section("Bi-CGstab", func() {
			copy(x, r)
			// SPEC bwaves' MSR Bi-CGstab runs unpreconditioned; the
			// Krylov iterations dominate the step. Near-breakdowns leave
			// x at its best iterate and the workload keeps marching like
			// the real code would; structural failures abort the run.
			opts := la.CGOptions{Tol: 1e-8, MaxIter: 2000}
			_, err := la.BiCGSTAB(a, x, rhs, opts)
			solveErr = tolerateNonConvergence(err)
		})
		if solveErr != nil {
			return WorkloadReport{}, solveErr
		}
		p.Section("time stepping", func() {
			copy(r, x)
		})
	}
	return WorkloadReport{
		Discipline:     "Fluid dynamics",
		Problem:        "transonic transient laminar viscous flow",
		Solver:         "bwaves-like mini-app",
		Approach:       "finite difference, implicit time stepping",
		DominantKernel: "Bi-CGstab",
		KernelFraction: p.Fraction("Bi-CGstab"),
		Profile:        p,
	}, nil
}

// RunHartmannLike reproduces the second Table 1 row: the 2-D Hartmann
// problem (magnetohydrodynamic channel flow), incompressible viscous flow
// coupled with Maxwell's equations, iterating preconditioned CG solves of
// the two coupled elliptic fields.
func RunHartmannLike(n, outer int) (WorkloadReport, error) {
	p := prof.New()
	nn := n * n
	const ha, g = 3.0, 1.0
	u := make([]float64, nn)
	b := make([]float64, nn)
	rhsU := make([]float64, nn)
	rhsB := make([]float64, nn)
	var lap *la.CSR
	var pre *la.JacobiPreconditioner
	dy := func(f []float64, i, j int) float64 {
		get := func(jj int) float64 {
			if jj < 0 || jj >= n {
				return 0
			}
			return f[i*n+jj]
		}
		return (get(j+1) - get(j-1)) / 2
	}
	for it := 0; it < outer; it++ {
		p.Section("stencil assembly", func() {
			// The effective conductivity depends on the evolving fields,
			// so the operator is re-assembled every outer iteration — as
			// OpenFOAM rebuilds its fvMatrix each time step.
			sigma := 0.01 + 1e-3*math.Abs(la.Norm2(u))/float64(nn)
			lap = laplacianMatrix(n, sigma)
			pre = la.NewJacobi(lap)
		})
		p.Section("coupling terms", func() {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					rhsU[i*n+j] = g + ha*dy(b, i, j)
					rhsB[i*n+j] = ha * dy(u, i, j)
				}
			}
		})
		var solveErr error
		p.Section("preconditioned CG", func() {
			// Unconverged CG leaves the coupled fields at their best
			// iterate and the outer Picard loop carries on, as OpenFOAM's
			// segregated solver does.
			_, errU := la.CG(lap, u, rhsU, la.CGOptions{Tol: 1e-10, M: pre})
			_, errB := la.CG(lap, b, rhsB, la.CGOptions{Tol: 1e-10, M: pre})
			solveErr = errors.Join(tolerateNonConvergence(errU), tolerateNonConvergence(errB))
		})
		if solveErr != nil {
			return WorkloadReport{}, solveErr
		}
	}
	return WorkloadReport{
		Discipline:     "Magnetohydrodynamics",
		Problem:        "2D Hartmann problem",
		Solver:         "OpenFOAM-like mini-app",
		Approach:       "finite difference, Navier-Stokes + Maxwell",
		DominantKernel: "preconditioned conjugate gradients",
		KernelFraction: p.Fraction("preconditioned CG"),
		Profile:        p,
	}, nil
}

// RunCavityLike reproduces the third Table 1 row: lid-driven cavity flow
// with a finite-volume-style discretisation. Per-face flux reconstruction
// with limiter arithmetic makes assembly expensive relative to the pressure
// PCG solve, pulling the kernel share down exactly as the paper observes
// for less structured discretisations.
func RunCavityLike(n, steps int) (WorkloadReport, error) {
	p := prof.New()
	nn := n * n
	u := make([]float64, nn)
	v := make([]float64, nn)
	pr := make([]float64, nn)
	div := make([]float64, nn)
	var lap *la.CSR
	var pre *la.ILU0
	var setupErr error
	p.Section("face flux reconstruction", func() {
		lap = laplacianMatrix(n, 0)
		// Pin one pressure node to make the Poisson system nonsingular.
		lap.SetExisting(0, 0, lap.At(0, 0)+1)
		pre, setupErr = la.NewILU0(lap)
	})
	if setupErr != nil {
		return WorkloadReport{}, setupErr
	}
	// Velocity accessor: the lid at j = n drives u = 1, v = 0; all other
	// walls are no-slip. The pressure accessor uses homogeneous ghost
	// values — a constant-pressure "lid" would pump energy into the cavity.
	atVel := func(f []float64, isU bool, i, j int) float64 {
		if i < 0 || i >= n || j < 0 {
			return 0
		}
		if j >= n {
			if isU {
				return 1 // moving lid
			}
			return 0
		}
		return f[i*n+j]
	}
	atP := func(i, j int) float64 {
		if i < 0 || i >= n || j < 0 || j >= n {
			return 0
		}
		return pr[i*n+j]
	}
	limiter := func(r float64) float64 { // van Leer
		return (r + math.Abs(r)) / (1 + math.Abs(r))
	}
	for s := 0; s < steps; s++ {
		p.Section("face flux reconstruction", func() {
			const nu = 0.05
			// CFL-limited step, as production FV codes adapt it.
			vmax := 1.0
			for k := range u {
				if a := math.Abs(u[k]); a > vmax {
					vmax = a
				}
				if a := math.Abs(v[k]); a > vmax {
					vmax = a
				}
			}
			dt := 0.3 / vmax
			if dt > 0.02 {
				dt = 0.02
			}
			// Three-stage low-storage Runge–Kutta advection, as FV codes
			// use: the face reconstruction runs once per stage. The
			// per-face MUSCL/van-Leer arithmetic with Rhie–Chow style
			// pressure weighting is what dominates FV solver runtime and
			// dilutes the equation-solving share (paper: 13.1 %).
			for stage := 0; stage < 3; stage++ {
				sdt := dt / float64(3-stage)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						k := i*n + j
						for fi, f := range [][]float64{u, v} {
							isU := fi == 0
							c := atVel(f, isU, i, j)
							e, w := atVel(f, isU, i+1, j), atVel(f, isU, i-1, j)
							nn2, ss := atVel(f, isU, i, j+1), atVel(f, isU, i, j-1)
							grad := math.Hypot(e-w, nn2-ss) / 2
							var flux float64
							for _, face := range [4][2]float64{{c, e}, {w, c}, {c, nn2}, {ss, c}} {
								r := (face[0] - face[1] + 1e-12) / (face[1] - face[0] + 1e-12)
								phi := limiter(r)
								fc := face[0] + 0.5*phi*(face[1]-face[0])
								rc := fc - 0.25*(atP(i+1, j)-atP(i-1, j)+atP(i, j+1)-atP(i, j-1))
								flux += rc * math.Abs(fc) / (1 + grad*grad)
							}
							adv := atVel(u, true, i, j)*(e-w)/2 + atVel(v, false, i, j)*(nn2-ss)/2
							diff := nu * (e + w + nn2 + ss - 4*c)
							f[k] = c + sdt*(diff-adv+1e-6*flux)
						}
					}
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					k := i*n + j
					div[k] = (atVel(u, true, i+1, j)-atVel(u, true, i-1, j))/2 + (atVel(v, false, i, j+1)-atVel(v, false, i, j-1))/2
				}
			}
		})
		var solveErr error
		p.Section("preconditioned CG", func() {
			// FV codes solve the pressure equation loosely inside each
			// outer iteration; a loose solve that runs out of iterations
			// still improves the pressure and the projection continues.
			_, err := la.CG(lap, pr, div, la.CGOptions{Tol: 1e-4, M: pre})
			solveErr = tolerateNonConvergence(err)
		})
		if solveErr != nil {
			return WorkloadReport{}, solveErr
		}
		p.Section("velocity correction", func() {
			// Under-relaxed projection keeps the explicit outer loop
			// stable over long runs.
			const relax = 0.5
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					k := i*n + j
					u[k] -= relax * (atP(i+1, j) - atP(i-1, j)) / 2
					v[k] -= relax * (atP(i, j+1) - atP(i, j-1)) / 2
				}
			}
		})
	}
	return WorkloadReport{
		Discipline:     "Fluid dynamics",
		Problem:        "lid-driven cavity flow",
		Solver:         "OpenFOAM-like mini-app",
		Approach:       "finite volume, incompressible Navier-Stokes",
		DominantKernel: "preconditioned conjugate gradients",
		KernelFraction: p.Fraction("preconditioned CG"),
		Profile:        p,
	}, nil
}

// RunCookLike reproduces the fourth Table 1 row: Cook's membrane with
// finite elements and nonlinear spring forces; each Picard iteration
// re-assembles the element matrices with Gauss quadrature and solves a
// Helmholtz system with SOR-preconditioned CG.
func RunCookLike(n, outer int) (WorkloadReport, error) {
	p := prof.New()
	nn := n * n
	u := make([]float64, nn)
	f := make([]float64, nn)
	for i := range f {
		f[i] = math.Sin(float64(i) * 0.1)
	}
	// 2×2 Gauss points on the reference square.
	gp := []float64{-1 / math.Sqrt(3), 1 / math.Sqrt(3)}
	for it := 0; it < outer; it++ {
		var a *la.CSR
		p.Section("FE assembly", func() {
			bld := la.NewCOO(nn, nn)
			id := func(i, j int) int { return i*n + j }
			for i := 0; i < n-1; i++ {
				for j := 0; j < n-1; j++ {
					nodes := [4]int{id(i, j), id(i+1, j), id(i+1, j+1), id(i, j+1)}
					// Nonlinear spring stiffness from current solution.
					avg := 0.0
					for _, nd := range nodes {
						avg += u[nd]
					}
					avg /= 4
					k2 := 1 + avg*avg // Helmholtz coefficient with nonlinear spring
					var ke [4][4]float64
					for _, xi := range gp {
						for _, eta := range gp {
							// Bilinear shape gradients on the reference square.
							dN := [4][2]float64{
								{-(1 - eta) / 4, -(1 - xi) / 4},
								{(1 - eta) / 4, -(1 + xi) / 4},
								{(1 + eta) / 4, (1 + xi) / 4},
								{-(1 + eta) / 4, (1 - xi) / 4},
							}
							sh := [4]float64{
								(1 - xi) * (1 - eta) / 4,
								(1 + xi) * (1 - eta) / 4,
								(1 + xi) * (1 + eta) / 4,
								(1 - xi) * (1 + eta) / 4,
							}
							for a1 := 0; a1 < 4; a1++ {
								for b1 := 0; b1 < 4; b1++ {
									ke[a1][b1] += dN[a1][0]*dN[b1][0] + dN[a1][1]*dN[b1][1] + k2*sh[a1]*sh[b1]
								}
							}
						}
					}
					for a1 := 0; a1 < 4; a1++ {
						for b1 := 0; b1 < 4; b1++ {
							bld.Append(nodes[a1], nodes[b1], ke[a1][b1])
						}
					}
				}
			}
			// Clamp the left edge (Cook's membrane boundary condition).
			for j := 0; j < n; j++ {
				bld.Append(id(0, j), id(0, j), 1e6)
			}
			a = bld.ToCSR()
		})
		var solveErr error
		p.Section("SOR+CG solve", func() {
			// A few SOR smoothing sweeps followed by Jacobi-PCG, the
			// "preconditioned SOR and CG" combination of Table 1. The SOR
			// stage is a smoother: MaxIter=4 never converges by design.
			_, errS := la.SOR(a, u, f, la.SOROptions{Omega: 1.3, MaxIter: 4, Tol: 1e-16})
			_, errC := la.CG(a, u, f, la.CGOptions{Tol: 1e-10, M: la.NewJacobi(a)})
			solveErr = errors.Join(tolerateNonConvergence(errS), tolerateNonConvergence(errC))
		})
		if solveErr != nil {
			return WorkloadReport{}, solveErr
		}
	}
	return WorkloadReport{
		Discipline:     "Engineering mechanics",
		Problem:        "Cook's membrane",
		Solver:         "deal.II-like mini-app",
		Approach:       "finite element, nonlinear spring forces",
		DominantKernel: "Helmholtz solve with preconditioned SOR and CG",
		KernelFraction: p.Fraction("SOR+CG solve"),
		Profile:        p,
	}, nil
}
