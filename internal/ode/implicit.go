package ode

import (
	"fmt"
	"math"
)

// ImplicitOptions configures the implicit (A-stable) fixed-step
// integrators. Each step solves its nonlinear stage equation with a damped
// Newton iteration whose Jacobian is approximated by finite differences —
// adequate for the moderate dimensions these integrators serve (stiff
// subsystems of the analog circuit model and reference solutions for the
// explicit integrators' stability limits).
type ImplicitOptions struct {
	Dt       float64 // step size, required
	Observer Observer
	// NewtonTol is the stage-equation residual target. Default 1e-10.
	NewtonTol float64
	// NewtonMaxIter bounds the per-step Newton iteration. Default 50.
	NewtonMaxIter int
}

func (o *ImplicitOptions) defaults() error {
	if o.Dt <= 0 {
		return fmt.Errorf("ode: implicit integrator requires Dt > 0, got %g", o.Dt)
	}
	if o.NewtonTol <= 0 {
		o.NewtonTol = 1e-10
	}
	if o.NewtonMaxIter <= 0 {
		o.NewtonMaxIter = 50
	}
	return nil
}

// newtonSolveStage solves the stage equation g(z) = z − base − c·f(tz, z) = 0
// for z, starting from z0, using finite-difference Jacobians and plain
// Newton with halving on residual growth.
func newtonSolveStage(f System, tz, c float64, base, z []float64, opts ImplicitOptions) error {
	n := len(z)
	g := make([]float64, n)
	gp := make([]float64, n)
	fz := make([]float64, n)
	jac := make([]float64, n*n)
	delta := make([]float64, n)
	zp := make([]float64, n)

	eval := func(zz, out []float64) error {
		if err := f(tz, zz, fz); err != nil {
			return err
		}
		for i := range out {
			out[i] = zz[i] - base[i] - c*fz[i]
		}
		return nil
	}
	if err := eval(z, g); err != nil {
		return err
	}
	for it := 0; it < opts.NewtonMaxIter; it++ {
		rn := norm(g)
		if rn <= opts.NewtonTol {
			return nil
		}
		// Finite-difference Jacobian of g at z.
		copy(zp, z)
		for j := 0; j < n; j++ {
			h := 1e-7 * (1 + math.Abs(z[j]))
			zp[j] = z[j] + h
			if err := eval(zp, gp); err != nil {
				return err
			}
			zp[j] = z[j]
			for i := 0; i < n; i++ {
				jac[i*n+j] = (gp[i] - g[i]) / h
			}
		}
		if err := denseSolveInPlace(jac, g, delta, n); err != nil {
			return err
		}
		// Damped update: halve until the residual does not grow.
		step := 1.0
		for {
			copy(zp, z)
			for i := range zp {
				zp[i] -= step * delta[i]
			}
			if err := eval(zp, gp); err != nil {
				return err
			}
			if norm(gp) <= rn || step < 1e-6 {
				copy(z, zp)
				copy(g, gp)
				break
			}
			step /= 2
		}
	}
	if norm(g) > opts.NewtonTol*100 {
		return fmt.Errorf("ode: implicit stage Newton did not converge (residual %g)", norm(g))
	}
	return nil
}

// denseSolveInPlace solves (row-major) a·x = b by Gaussian elimination with
// partial pivoting, writing x into dst. a and b are destroyed.
func denseSolveInPlace(a, b, dst []float64, n int) error {
	for k := 0; k < n; k++ {
		p := k
		max := math.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i*n+k]); v > max {
				p, max = i, v
			}
		}
		if max == 0 { //pdevet:allow floateq exact-zero pivot column means a singular stage Jacobian
			return fmt.Errorf("ode: singular stage Jacobian")
		}
		if p != k {
			for j := k; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
			b[k], b[p] = b[p], b[k]
		}
		piv := a[k*n+k]
		for i := k + 1; i < n; i++ {
			m := a[i*n+k] / piv
			if m == 0 { //pdevet:allow floateq skipping exact-zero multipliers is the banded-fill optimisation
				continue
			}
			for j := k; j < n; j++ {
				a[i*n+j] -= m * a[k*n+j]
			}
			b[i] -= m * b[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * dst[j]
		}
		dst[i] = s / a[i*n+i]
	}
	return nil
}

// ImplicitEuler integrates with the backward Euler method, the L-stable
// first-order workhorse for stiff systems.
func ImplicitEuler(f System, y0 []float64, t0, tEnd float64, opts ImplicitOptions) (Result, error) {
	if err := opts.defaults(); err != nil {
		return Result{}, err
	}
	if tEnd < t0 {
		return Result{}, fmt.Errorf("ode: tEnd %g before t0 %g", tEnd, t0)
	}
	y := make([]float64, len(y0))
	copy(y, y0)
	res := Result{T: t0, Y: y}
	z := make([]float64, len(y0))
	for t := t0; t < tEnd; {
		dt := opts.Dt
		if t+dt > tEnd {
			dt = tEnd - t
		}
		copy(z, y) // predictor: previous value
		if err := newtonSolveStage(f, t+dt, dt, y, z, opts); err != nil {
			res.T = t
			return res, err
		}
		copy(y, z)
		t += dt
		res.Steps++
		res.T = t
		if !validState(y) {
			return res, fmt.Errorf("ode: state became non-finite at t=%g", t)
		}
		if opts.Observer != nil && !opts.Observer(t, y) {
			res.Stopped = true
			return res, nil
		}
	}
	return res, nil
}

// TrapezoidalImplicit integrates with the implicit trapezoid rule — the
// time-marching scheme the paper's PDE discretisation uses (Crank–Nicolson
// is exactly this rule applied to the semi-discretised PDE), second-order
// and A-stable.
func TrapezoidalImplicit(f System, y0 []float64, t0, tEnd float64, opts ImplicitOptions) (Result, error) {
	if err := opts.defaults(); err != nil {
		return Result{}, err
	}
	if tEnd < t0 {
		return Result{}, fmt.Errorf("ode: tEnd %g before t0 %g", tEnd, t0)
	}
	n := len(y0)
	y := make([]float64, n)
	copy(y, y0)
	res := Result{T: t0, Y: y}
	fy := make([]float64, n)
	base := make([]float64, n)
	z := make([]float64, n)
	for t := t0; t < tEnd; {
		dt := opts.Dt
		if t+dt > tEnd {
			dt = tEnd - t
		}
		// z − [y + dt/2·f(t,y)] − dt/2·f(t+dt, z) = 0.
		if err := f(t, y, fy); err != nil {
			res.T = t
			return res, err
		}
		res.Evals++
		for i := 0; i < n; i++ {
			base[i] = y[i] + 0.5*dt*fy[i]
		}
		copy(z, y)
		if err := newtonSolveStage(f, t+dt, 0.5*dt, base, z, opts); err != nil {
			res.T = t
			return res, err
		}
		copy(y, z)
		t += dt
		res.Steps++
		res.T = t
		if !validState(y) {
			return res, fmt.Errorf("ode: state became non-finite at t=%g", t)
		}
		if opts.Observer != nil && !opts.Observer(t, y) {
			res.Stopped = true
			return res, nil
		}
	}
	return res, nil
}
