package ode

import (
	"fmt"
	"math"
)

// AdaptiveOptions configures the adaptive Dormand–Prince integrator.
type AdaptiveOptions struct {
	AbsTol   float64 // default 1e-9
	RelTol   float64 // default 1e-6
	InitDt   float64 // default: auto from derivative magnitude
	MaxDt    float64 // default: tEnd − t0
	MaxSteps int     // accepted-step budget; default 1e6
	// MaxEvals bounds total derivative evaluations, including those of
	// rejected trial steps — the real cost guard for stiff regions where
	// the controller rejects many trials per acceptance. Default
	// 20·MaxSteps.
	MaxEvals int
	Observer Observer // optional early-stop hook
}

func (o *AdaptiveOptions) defaults(span float64) {
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-9
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-6
	}
	if o.MaxDt <= 0 {
		o.MaxDt = span
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 1_000_000
	}
	if o.MaxEvals <= 0 {
		o.MaxEvals = 20 * o.MaxSteps
	}
}

// Dormand–Prince 5(4) tableau.
var (
	dpC = [7]float64{0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1}
	dpA = [7][6]float64{
		{},
		{1.0 / 5},
		{3.0 / 40, 9.0 / 40},
		{44.0 / 45, -56.0 / 15, 32.0 / 9},
		{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
		{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
		{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
	}
	// 5th-order solution weights (same as last row of A — FSAL).
	dpB5 = [7]float64{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84, 0}
	// 4th-order embedded weights.
	dpB4 = [7]float64{5179.0 / 57600, 0, 7571.0 / 16695, 393.0 / 640, -92097.0 / 339200, 187.0 / 2100, 1.0 / 40}
)

// DormandPrince integrates dy/dt = f(t,y) from t0 to tEnd with adaptive step
// control (RK5(4), PI controller). It matches the role of
// odeint::runge_kutta_dopri5 used by the paper's accelerator model.
func DormandPrince(f System, y0 []float64, t0, tEnd float64, opts AdaptiveOptions) (Result, error) {
	if tEnd < t0 {
		return Result{}, fmt.Errorf("ode: tEnd %g before t0 %g", tEnd, t0)
	}
	opts.defaults(tEnd - t0)
	n := len(y0)
	y := make([]float64, n)
	copy(y, y0)
	res := Result{T: t0, Y: y}
	if tEnd == t0 { //pdevet:allow floateq degenerate interval check on caller-passed bounds, not computed values
		return res, nil
	}

	k := make([][]float64, 7)
	for i := range k {
		k[i] = make([]float64, n)
	}
	ytmp := make([]float64, n)
	y5 := make([]float64, n)
	yerr := make([]float64, n)

	// Initial derivative; also used for automatic initial step selection.
	if err := f(t0, y, k[0]); err != nil {
		return res, err
	}
	res.Evals++
	h := opts.InitDt
	if h <= 0 {
		d0 := norm(y)
		d1 := norm(k[0])
		if d1 > 1e-12 {
			h = 0.01 * (d0 + opts.AbsTol) / d1
		} else {
			h = (tEnd - t0) / 100
		}
		if h > opts.MaxDt {
			h = opts.MaxDt
		}
		if h <= 0 {
			h = 1e-6
		}
	}

	const (
		safety   = 0.9
		minScale = 0.2
		maxScale = 5.0
	)
	t := t0
	firstSameAsLast := false
	for t < tEnd {
		if res.Steps >= opts.MaxSteps || res.Evals >= opts.MaxEvals {
			return res, ErrTooManySteps
		}
		if h > opts.MaxDt {
			h = opts.MaxDt
		}
		if t+h > tEnd {
			h = tEnd - t
		}
		// The t+h == t comparison is the canonical exact step-underflow test.
		if h <= math.SmallestNonzeroFloat64*16 || t+h == t { //pdevet:allow floateq
			return res, ErrStepUnderflow
		}
		if firstSameAsLast {
			// k[6] from the accepted step is k[0] of this one (FSAL).
			copy(k[0], k[6])
		}
		// Stages 2..7.
		failed := false
		for s := 1; s < 7; s++ {
			for i := 0; i < n; i++ {
				acc := y[i]
				for j := 0; j < s; j++ {
					if dpA[s][j] != 0 { //pdevet:allow floateq Butcher-tableau entries are structural zeros by assignment
						acc += h * dpA[s][j] * k[j][i]
					}
				}
				ytmp[i] = acc
			}
			if err := f(t+dpC[s]*h, ytmp, k[s]); err != nil {
				return res, err
			}
			res.Evals++
			if !validState(k[s]) {
				failed = true
				break
			}
		}
		if failed {
			res.Rejects++
			h *= minScale
			firstSameAsLast = false
			continue
		}
		// Candidate solution and embedded error.
		errNorm := 0.0
		for i := 0; i < n; i++ {
			s5, s4 := 0.0, 0.0
			for s := 0; s < 7; s++ {
				if dpB5[s] != 0 { //pdevet:allow floateq Butcher-tableau entries are structural zeros by assignment
					s5 += dpB5[s] * k[s][i]
				}
				if dpB4[s] != 0 { //pdevet:allow floateq Butcher-tableau entries are structural zeros by assignment
					s4 += dpB4[s] * k[s][i]
				}
			}
			y5[i] = y[i] + h*s5
			yerr[i] = h * (s5 - s4)
			sc := opts.AbsTol + opts.RelTol*math.Max(math.Abs(y[i]), math.Abs(y5[i]))
			e := yerr[i] / sc
			errNorm += e * e
		}
		errNorm = math.Sqrt(errNorm / float64(n))
		if errNorm <= 1 && validState(y5) {
			// Accept.
			t += h
			copy(y, y5)
			res.Steps++
			res.T = t
			firstSameAsLast = true
			if opts.Observer != nil && !opts.Observer(t, y) {
				res.Stopped = true
				return res, nil
			}
			scale := maxScale
			if errNorm > 0 {
				scale = safety * math.Pow(errNorm, -0.2)
				if scale > maxScale {
					scale = maxScale
				}
				if scale < minScale {
					scale = minScale
				}
			}
			h *= scale
		} else {
			res.Rejects++
			scale := safety * math.Pow(math.Max(errNorm, 1e-10), -0.2)
			if scale < minScale {
				scale = minScale
			}
			if scale > 1 {
				scale = 1
			}
			h *= scale
			firstSameAsLast = false
		}
	}
	return res, nil
}

func norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// SteadyStateOptions configures IntegrateToSteadyState.
type SteadyStateOptions struct {
	Adaptive AdaptiveOptions
	// DerivTol: the state is steady when ‖dy/dt‖₂ ≤ DerivTol·(1+‖y‖₂).
	// Default 1e-8. This mirrors the analog circuit condition "the inputs
	// to the integrators tend toward zero" (§2.2).
	DerivTol float64
	// TMax bounds the integration horizon. Required.
	TMax float64
	// MinHold: steady condition must hold for this many consecutive
	// accepted steps before stopping (debounce). Default 3.
	MinHold int
	// MinTime ignores the steady criterion before this time, for systems
	// that are deliberately driven early on (e.g. a homotopy λ ramp).
	MinTime float64
}

// SteadyResult reports a steady-state integration.
type SteadyResult struct {
	Result
	SettleTime float64 // time at which the derivative criterion first held
	Settled    bool
}

// IntegrateToSteadyState advances the system until its derivative vanishes,
// returning the settle time — the quantity the paper converts into analog
// solution time. If the system never settles before TMax, Settled is false
// and the final state is still returned.
func IntegrateToSteadyState(f System, y0 []float64, opts SteadyStateOptions) (SteadyResult, error) {
	if opts.TMax <= 0 {
		return SteadyResult{}, fmt.Errorf("ode: IntegrateToSteadyState requires TMax > 0")
	}
	if opts.DerivTol <= 0 {
		opts.DerivTol = 1e-8
	}
	if opts.MinHold <= 0 {
		opts.MinHold = 3
	}
	hold := 0
	settleAt := math.NaN()
	deriv := make([]float64, len(y0))
	inner := opts.Adaptive
	userObs := inner.Observer
	inner.Observer = func(t float64, y []float64) bool {
		if userObs != nil && !userObs(t, y) {
			return false
		}
		if t < opts.MinTime {
			return true
		}
		if err := f(t, y, deriv); err != nil {
			// Propagate as a stop; the outer call re-checks below.
			return false
		}
		if norm(deriv) <= opts.DerivTol*(1+norm(y)) {
			hold++
			if hold == 1 {
				settleAt = t
			}
			if hold >= opts.MinHold {
				return false
			}
		} else {
			hold = 0
			settleAt = math.NaN()
		}
		return true
	}
	res, err := DormandPrince(f, y0, 0, opts.TMax, inner)
	sr := SteadyResult{Result: res}
	if err != nil {
		return sr, err
	}
	if hold >= opts.MinHold {
		sr.Settled = true
		sr.SettleTime = settleAt
	}
	return sr, nil
}
