package ode

import (
	"math"
	"testing"
)

func TestImplicitEulerAccuracy(t *testing.T) {
	exact := math.Exp(-1)
	errAt := func(dt float64) float64 {
		res, err := ImplicitEuler(expDecay, []float64{1}, 0, 1, ImplicitOptions{Dt: dt})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.Y[0] - exact)
	}
	ratio := errAt(0.02) / errAt(0.01)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("implicit Euler convergence ratio %g, want ≈ 2", ratio)
	}
}

func TestTrapezoidalSecondOrder(t *testing.T) {
	exact := math.Exp(-1)
	errAt := func(dt float64) float64 {
		res, err := TrapezoidalImplicit(expDecay, []float64{1}, 0, 1, ImplicitOptions{Dt: dt})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.Y[0] - exact)
	}
	ratio := errAt(0.04) / errAt(0.02)
	if ratio < 3.4 || ratio > 4.6 {
		t.Fatalf("trapezoid convergence ratio %g, want ≈ 4", ratio)
	}
}

func TestImplicitEulerStableOnStiffSystem(t *testing.T) {
	// dy/dt = −1000(y − cos t): explicit Euler at dt = 0.01 explodes
	// (λ·dt = −10), backward Euler is unconditionally stable.
	stiff := func(tm float64, y, dydt []float64) error {
		dydt[0] = -1000 * (y[0] - math.Cos(tm))
		return nil
	}
	res, err := ImplicitEuler(stiff, []float64{5}, 0, 2, ImplicitOptions{Dt: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// The solution should ride the quasi-steady manifold y ≈ cos t.
	if math.Abs(res.Y[0]-math.Cos(2)) > 0.02 {
		t.Fatalf("stiff solution %g, want ≈ cos(2) = %g", res.Y[0], math.Cos(2))
	}
	// And explicit Euler must indeed be unstable at this step size
	// (amplification factor |1 + λ·dt| = 9 per step), demonstrating why
	// the implicit path exists.
	eres, err := Euler(stiff, []float64{5}, 0, 2, FixedOptions{Dt: 0.01})
	if err == nil && math.Abs(eres.Y[0]) < 1e10 {
		t.Fatalf("explicit Euler should blow up on the stiff system, got %g", eres.Y[0])
	}
}

func TestImplicitTrapezoidMatchesCrankNicolsonOnLinearSystem(t *testing.T) {
	// For the linear system y' = A·y the trapezoid rule is exactly
	// Crank–Nicolson: y⁺ = (I − dt/2·A)⁻¹(I + dt/2·A)·y. Check one step.
	a := [2][2]float64{{0, 1}, {-1, 0}}
	f := func(tm float64, y, dydt []float64) error {
		dydt[0] = a[0][0]*y[0] + a[0][1]*y[1]
		dydt[1] = a[1][0]*y[0] + a[1][1]*y[1]
		return nil
	}
	dt := 0.1
	res, err := TrapezoidalImplicit(f, []float64{1, 0}, 0, dt, ImplicitOptions{Dt: dt})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic CN step for the rotation generator:
	// denominator 1 + dt²/4.
	den := 1 + dt*dt/4
	wantY0 := (1 - dt*dt/4) / den
	wantY1 := -dt / den
	if math.Abs(res.Y[0]-wantY0) > 1e-8 || math.Abs(res.Y[1]-wantY1) > 1e-8 {
		t.Fatalf("CN step mismatch: got %v, want (%g, %g)", res.Y, wantY0, wantY1)
	}
}

func TestImplicitObserverAndValidation(t *testing.T) {
	stop := func(tm float64, y []float64) bool { return tm < 0.5 }
	res, err := ImplicitEuler(expDecay, []float64{1}, 0, 10, ImplicitOptions{Dt: 0.1, Observer: stop})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.T > 0.61 {
		t.Fatalf("observer stop mishandled: %+v", res)
	}
	if _, err := ImplicitEuler(expDecay, []float64{1}, 0, 1, ImplicitOptions{}); err == nil {
		t.Fatal("expected error for missing Dt")
	}
	if _, err := TrapezoidalImplicit(expDecay, []float64{1}, 1, 0, ImplicitOptions{Dt: 0.1}); err == nil {
		t.Fatal("expected error for reversed span")
	}
}
