// Package ode provides ordinary-differential-equation integrators. It plays
// the role the Odeint C++ library plays in the paper (§6.1): the simulated
// analog accelerator evolves the continuous-Newton and homotopy ODEs with an
// adaptive Runge–Kutta method, and the time the trajectory takes to settle is
// the analog solution time.
package ode

import (
	"errors"
	"fmt"
	"math"
)

// System computes dy/dt = f(t, y) into dydt. Implementations must not retain
// the slices across calls. A System returns an error when the derivative is
// not computable (for example, a singular Jacobian inside continuous
// Newton's method); integrators abort and surface the error.
type System func(t float64, y, dydt []float64) error

// Observer is called after every accepted step with the current time and
// state. Returning false stops the integration early (used for steady-state
// detection). The slice is reused; copy it if it must be retained.
type Observer func(t float64, y []float64) bool

// Result describes a finished integration.
type Result struct {
	T       float64 // time reached
	Y       []float64
	Steps   int  // accepted steps
	Rejects int  // rejected adaptive trials
	Evals   int  // derivative evaluations
	Stopped bool // true if the observer requested an early stop
}

// ErrStepUnderflow is returned when the adaptive controller cannot satisfy
// the tolerance with any representable step size, usually a sign that the
// trajectory hit a singularity.
var ErrStepUnderflow = errors.New("ode: step size underflow")

// ErrTooManySteps is returned when MaxSteps is exhausted before TEnd.
var ErrTooManySteps = errors.New("ode: exceeded step budget")

func validState(y []float64) bool {
	for _, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// FixedOptions configures the fixed-step integrators.
type FixedOptions struct {
	Dt       float64  // step size, required
	Observer Observer // optional
}

// rkStep holds scratch space for one explicit Runge–Kutta step.
type rkScratch struct {
	k    [][]float64
	ytmp []float64
}

func newScratch(stages, n int) *rkScratch {
	s := &rkScratch{ytmp: make([]float64, n)}
	s.k = make([][]float64, stages)
	for i := range s.k {
		s.k[i] = make([]float64, n)
	}
	return s
}

// Euler integrates with the explicit (forward) Euler method. The paper's
// damped Newton method is exactly Euler applied to the continuous-Newton
// ODE, so this integrator doubles as the reference digital discretization.
func Euler(f System, y0 []float64, t0, tEnd float64, opts FixedOptions) (Result, error) {
	return fixedStep(f, y0, t0, tEnd, opts, 1, func(f System, t, dt float64, y []float64, s *rkScratch) error {
		if err := f(t, y, s.k[0]); err != nil {
			return err
		}
		for i := range y {
			y[i] += dt * s.k[0][i]
		}
		return nil
	})
}

// Heun integrates with the 2nd-order Heun (explicit trapezoid) method.
func Heun(f System, y0 []float64, t0, tEnd float64, opts FixedOptions) (Result, error) {
	return fixedStep(f, y0, t0, tEnd, opts, 2, func(f System, t, dt float64, y []float64, s *rkScratch) error {
		if err := f(t, y, s.k[0]); err != nil {
			return err
		}
		for i := range y {
			s.ytmp[i] = y[i] + dt*s.k[0][i]
		}
		if err := f(t+dt, s.ytmp, s.k[1]); err != nil {
			return err
		}
		for i := range y {
			y[i] += dt * 0.5 * (s.k[0][i] + s.k[1][i])
		}
		return nil
	})
}

// RK4 integrates with the classic 4th-order Runge–Kutta method.
func RK4(f System, y0 []float64, t0, tEnd float64, opts FixedOptions) (Result, error) {
	return fixedStep(f, y0, t0, tEnd, opts, 4, func(f System, t, dt float64, y []float64, s *rkScratch) error {
		n := len(y)
		if err := f(t, y, s.k[0]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			s.ytmp[i] = y[i] + 0.5*dt*s.k[0][i]
		}
		if err := f(t+0.5*dt, s.ytmp, s.k[1]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			s.ytmp[i] = y[i] + 0.5*dt*s.k[1][i]
		}
		if err := f(t+0.5*dt, s.ytmp, s.k[2]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			s.ytmp[i] = y[i] + dt*s.k[2][i]
		}
		if err := f(t+dt, s.ytmp, s.k[3]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			y[i] += dt / 6 * (s.k[0][i] + 2*s.k[1][i] + 2*s.k[2][i] + s.k[3][i])
		}
		return nil
	})
}

type stepFn func(f System, t, dt float64, y []float64, s *rkScratch) error

func fixedStep(f System, y0 []float64, t0, tEnd float64, opts FixedOptions, stages int, step stepFn) (Result, error) {
	if opts.Dt <= 0 {
		return Result{}, fmt.Errorf("ode: fixed-step integrator requires Dt > 0, got %g", opts.Dt)
	}
	if tEnd < t0 {
		return Result{}, fmt.Errorf("ode: tEnd %g before t0 %g", tEnd, t0)
	}
	y := make([]float64, len(y0))
	copy(y, y0)
	s := newScratch(stages, len(y0))
	res := Result{T: t0, Y: y}
	for t := t0; t < tEnd; {
		dt := opts.Dt
		if t+dt > tEnd {
			dt = tEnd - t
		}
		if err := step(f, t, dt, y, s); err != nil {
			res.T = t
			return res, err
		}
		res.Evals += stages
		t += dt
		res.Steps++
		res.T = t
		if !validState(y) {
			return res, fmt.Errorf("ode: state became non-finite at t=%g", t)
		}
		if opts.Observer != nil && !opts.Observer(t, y) {
			res.Stopped = true
			return res, nil
		}
	}
	return res, nil
}
