package ode

import (
	"errors"
	"math"
	"testing"
)

// expDecay: dy/dt = −y, solution y(t) = y0·e^{−t}.
func expDecay(t float64, y, dydt []float64) error {
	for i := range y {
		dydt[i] = -y[i]
	}
	return nil
}

// harmonic: y” = −y written as a 2-D first-order system.
func harmonic(t float64, y, dydt []float64) error {
	dydt[0] = y[1]
	dydt[1] = -y[0]
	return nil
}

func TestEulerFirstOrderAccuracy(t *testing.T) {
	// Error should shrink roughly linearly with dt.
	exact := math.Exp(-1)
	errAt := func(dt float64) float64 {
		res, err := Euler(expDecay, []float64{1}, 0, 1, FixedOptions{Dt: dt})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.Y[0] - exact)
	}
	e1 := errAt(0.01)
	e2 := errAt(0.005)
	ratio := e1 / e2
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("Euler convergence ratio %g, want ≈ 2", ratio)
	}
}

func TestHeunSecondOrderAccuracy(t *testing.T) {
	exact := math.Exp(-1)
	errAt := func(dt float64) float64 {
		res, err := Heun(expDecay, []float64{1}, 0, 1, FixedOptions{Dt: dt})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.Y[0] - exact)
	}
	ratio := errAt(0.02) / errAt(0.01)
	if ratio < 3.4 || ratio > 4.6 {
		t.Fatalf("Heun convergence ratio %g, want ≈ 4", ratio)
	}
}

func TestRK4FourthOrderAccuracy(t *testing.T) {
	exact := math.Exp(-1)
	errAt := func(dt float64) float64 {
		res, err := RK4(expDecay, []float64{1}, 0, 1, FixedOptions{Dt: dt})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.Y[0] - exact)
	}
	ratio := errAt(0.1) / errAt(0.05)
	if ratio < 12 || ratio > 20 {
		t.Fatalf("RK4 convergence ratio %g, want ≈ 16", ratio)
	}
}

func TestRK4HarmonicEnergyConservation(t *testing.T) {
	res, err := RK4(harmonic, []float64{1, 0}, 0, 2*math.Pi, FixedOptions{Dt: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Y[0]-1) > 1e-8 || math.Abs(res.Y[1]) > 1e-8 {
		t.Fatalf("after one period: y = %v, want (1, 0)", res.Y)
	}
}

func TestDormandPrinceAccuracy(t *testing.T) {
	res, err := DormandPrince(expDecay, []float64{1}, 0, 5, AdaptiveOptions{AbsTol: 1e-12, RelTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-5)
	if math.Abs(res.Y[0]-want) > 1e-9 {
		t.Fatalf("DP result %g, want %g", res.Y[0], want)
	}
	if res.Steps == 0 || res.Evals == 0 {
		t.Fatal("statistics not recorded")
	}
}

func TestDormandPrinceAdaptsStepSize(t *testing.T) {
	// A stiff-ish transition: derivative large near t=0 then tiny. The
	// adaptive integrator should use far fewer evals than fixed RK4 at
	// the accuracy it achieves.
	fast := func(t float64, y, dydt []float64) error {
		dydt[0] = -50 * (y[0] - math.Cos(t))
		return nil
	}
	res, err := DormandPrince(fast, []float64{0}, 0, 10, AdaptiveOptions{AbsTol: 1e-8, RelTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejects == 0 {
		t.Log("no rejected steps; controller had an easy ride (acceptable)")
	}
	if res.Steps >= 100000 {
		t.Fatalf("adaptive integrator used too many steps: %d", res.Steps)
	}
}

func TestDormandPrinceHarmonicLongRun(t *testing.T) {
	res, err := DormandPrince(harmonic, []float64{1, 0}, 0, 20*math.Pi, AdaptiveOptions{AbsTol: 1e-10, RelTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Y[0]-1) > 1e-6 || math.Abs(res.Y[1]) > 1e-6 {
		t.Fatalf("after 10 periods: y = %v, want (1, 0)", res.Y)
	}
}

func TestObserverEarlyStop(t *testing.T) {
	stopAt := 0.5
	obs := func(tm float64, y []float64) bool { return tm < stopAt }
	res, err := RK4(expDecay, []float64{1}, 0, 10, FixedOptions{Dt: 0.01, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("observer stop not recorded")
	}
	if res.T > stopAt+0.02 {
		t.Fatalf("stopped at t=%g, want ≈ %g", res.T, stopAt)
	}
}

func TestSystemErrorPropagates(t *testing.T) {
	boom := errors.New("derivative blew up")
	f := func(tm float64, y, dydt []float64) error {
		if tm > 0.3 {
			return boom
		}
		dydt[0] = 1
		return nil
	}
	_, err := RK4(f, []float64{0}, 0, 1, FixedOptions{Dt: 0.1})
	if !errors.Is(err, boom) {
		t.Fatalf("expected propagated error, got %v", err)
	}
	_, err = DormandPrince(f, []float64{0}, 0, 1, AdaptiveOptions{})
	if !errors.Is(err, boom) {
		t.Fatalf("expected propagated error from DP, got %v", err)
	}
}

func TestNonFiniteStateDetected(t *testing.T) {
	f := func(tm float64, y, dydt []float64) error {
		dydt[0] = math.Inf(1)
		return nil
	}
	if _, err := Euler(f, []float64{0}, 0, 1, FixedOptions{Dt: 0.1}); err == nil {
		t.Fatal("expected error for non-finite state")
	}
}

func TestIntegrateToSteadyState(t *testing.T) {
	// dy/dt = −(y−3): settles at y = 3 with time constant 1.
	f := func(tm float64, y, dydt []float64) error {
		dydt[0] = -(y[0] - 3)
		return nil
	}
	res, err := IntegrateToSteadyState(f, []float64{0}, SteadyStateOptions{
		TMax:     100,
		DerivTol: 1e-6,
		Adaptive: AdaptiveOptions{AbsTol: 1e-10, RelTol: 1e-10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Settled {
		t.Fatal("system should settle")
	}
	if math.Abs(res.Y[0]-3) > 1e-5 {
		t.Fatalf("settled value %g, want 3", res.Y[0])
	}
	// Settle time should be ≈ −ln(tol/3)·τ ≈ 14.9·1; loosely bounded.
	if res.SettleTime < 5 || res.SettleTime > 40 {
		t.Fatalf("settle time %g out of expected range", res.SettleTime)
	}
}

func TestSteadyStateNeverSettles(t *testing.T) {
	res, err := IntegrateToSteadyState(harmonic, []float64{1, 0}, SteadyStateOptions{
		TMax:     10,
		DerivTol: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Settled {
		t.Fatal("oscillator must not report steady state")
	}
}

func TestFixedStepValidation(t *testing.T) {
	if _, err := Euler(expDecay, []float64{1}, 0, 1, FixedOptions{}); err == nil {
		t.Fatal("expected error for missing Dt")
	}
	if _, err := Euler(expDecay, []float64{1}, 1, 0, FixedOptions{Dt: 0.1}); err == nil {
		t.Fatal("expected error for reversed time span")
	}
}

func TestDormandPrinceStepBudget(t *testing.T) {
	_, err := DormandPrince(harmonic, []float64{1, 0}, 0, 1e9, AdaptiveOptions{MaxSteps: 10, MaxDt: 0.001})
	if !errors.Is(err, ErrTooManySteps) {
		t.Fatalf("expected ErrTooManySteps, got %v", err)
	}
}
