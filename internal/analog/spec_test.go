package analog

import (
	"math"
	"testing"
)

func TestTable3TotalsFitOneTile(t *testing.T) {
	// One PDE variable per tile: the summed component budget of Table 3
	// must fit the prototype tile inventory exactly.
	tot := PrototypeBudget.Totals()
	if tot.Integrator > PrototypeTile.Integrators {
		t.Fatalf("budget needs %d integrators, tile has %d", tot.Integrator, PrototypeTile.Integrators)
	}
	if tot.Multiplier > PrototypeTile.Multipliers {
		t.Fatalf("budget needs %d multipliers, tile has %d", tot.Multiplier, PrototypeTile.Multipliers)
	}
	if tot.Fanout > PrototypeTile.Fanouts {
		t.Fatalf("budget needs %d fanouts, tile has %d", tot.Fanout, PrototypeTile.Fanouts)
	}
	if tot.DAC > PrototypeTile.DACs {
		t.Fatalf("budget needs %d DACs, tile has %d", tot.DAC, PrototypeTile.DACs)
	}
}

func TestTable3PaperValues(t *testing.T) {
	// Spot-check the encoded Table 3 against the paper.
	b := PrototypeBudget
	if b.NonlinearFunction.Multiplier != 4 || b.JacobianMatrix.Multiplier != 3 || b.QuotientLoop.Multiplier != 1 || b.NewtonLoop.Multiplier != 0 {
		t.Fatal("multiplier row does not match Table 3")
	}
	if b.NonlinearFunction.DAC != 3 || b.JacobianMatrix.DAC != 1 {
		t.Fatal("DAC row does not match Table 3")
	}
	tot := b.Totals()
	if math.Abs(tot.AreaMM2-0.70) > 1e-9 {
		t.Fatalf("per-variable area sum %.3f, want 0.70 (Table 3)", tot.AreaMM2)
	}
	if math.Abs(tot.PowerUW-763) > 1e-9 {
		t.Fatalf("per-variable power sum %.0f µW, want 763 (Table 3)", tot.PowerUW)
	}
}

func TestTable4Ladder(t *testing.T) {
	want := []struct {
		n       int
		areaMM2 float64
		powerMW float64
	}{
		{1, 1.38, 1.53},
		{2, 5.50, 6.10},
		{4, 22.02, 24.42},
		{8, 88.06, 97.66},
		{16, 352.36, 390.66},
	}
	for _, w := range want {
		m, err := ScaleModelFor(w.n)
		if err != nil {
			t.Fatal(err)
		}
		// The paper's ladder is rounded to 0.01 per row, so allow 0.05.
		if math.Abs(m.AreaMM2-w.areaMM2) > 0.05 {
			t.Fatalf("grid %d: area %.3f mm², paper %.2f", w.n, m.AreaMM2, w.areaMM2)
		}
		if math.Abs(m.PowerMW-w.powerMW) > 0.05 {
			t.Fatalf("grid %d: power %.3f mW, paper %.2f", w.n, m.PowerMW, w.powerMW)
		}
	}
	if _, err := ScaleModelFor(0); err == nil {
		t.Fatal("expected error for grid 0")
	}
}

func TestVariablesForGrid(t *testing.T) {
	if VariablesForGrid(2) != 8 {
		t.Fatalf("2×2 grid should need 8 variables (u and v per node), got %d", VariablesForGrid(2))
	}
	if VariablesForGrid(16) != 512 {
		t.Fatalf("16×16 grid should need 512 variables, got %d", VariablesForGrid(16))
	}
}

func TestPowerDensityFarBelowCPU(t *testing.T) {
	// §6.1: "power density is about 400× lower" than a CPU die. Our model:
	// 390.66 mW over 352.36 mm² ≈ 1.1 mW/mm² vs a CPU's ~0.5 W/mm².
	m, err := ScaleModelFor(16)
	if err != nil {
		t.Fatal(err)
	}
	density := m.PowerMW / m.AreaMM2 // mW/mm²
	const cpuDensity = 500.0         // mW/mm², order of magnitude
	if cpuDensity/density < 100 {
		t.Fatalf("analog power density should be ≫100× below CPU, ratio %.0f", cpuDensity/density)
	}
}
