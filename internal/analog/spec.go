// Package analog is a behavioural model of the paper's physically
// prototyped analog accelerator: a board of 65 nm chips, each with four
// tiles of integrators, multipliers, fanouts (current copiers), DACs and
// ADCs joined by a programmable crossbar (Figure 5). The model reproduces
// the architecture's externally visible behaviour:
//
//   - capacity: one scalar PDE variable per tile, with the per-variable
//     component budget of Table 3;
//   - programming model: a Fabric/Chip/Tile object hierarchy mirroring the
//     paper's object-oriented C++ interface (Figure 4);
//   - physics: continuous-time evolution of the continuous-Newton ODE with
//     per-component gain/offset mismatch, 8-bit DAC/DAC quantisation,
//     dynamic-range saturation and slew limiting, which together produce
//     the measured ≈5.38 % RMS solution error (Figure 6);
//   - cost: the area/power scaling model of Table 4 and settle-time
//     normalisation against the measured 2×2 prototype.
//
// This is the documented hardware substitution: the paper itself models its
// scaled-up accelerators exactly this way (§6.1), pinning solution time to
// the measured chip and solution error to the measured RMS.
package analog

import "fmt"

// Component kinds allocated from a tile (Figure 5, right).
const (
	KindIntegrator = "integrator"
	KindMultiplier = "multiplier"
	KindFanout     = "fanout"
	KindDAC        = "dac"
	KindADC        = "adc"
)

// TileSpec is the per-tile component inventory of the prototype chip
// (Figure 5): 4 integrators, 8 multipliers/gain blocks, 8 current copiers
// (fanouts), per-slice DACs and continuous-time ADCs.
type TileSpec struct {
	Integrators int
	Multipliers int
	Fanouts     int
	DACs        int
	ADCs        int
}

// PrototypeTile is the tile configuration of the fabricated chip.
var PrototypeTile = TileSpec{
	Integrators: 4,
	Multipliers: 8,
	Fanouts:     8,
	DACs:        4,
	ADCs:        2,
}

// ChipSpec describes one accelerator die.
type ChipSpec struct {
	Tiles int
	Tile  TileSpec
}

// PrototypeChip is the fabricated 3.7 mm × 3.9 mm die with four tiles.
var PrototypeChip = ChipSpec{Tiles: 4, Tile: PrototypeTile}

// BlockBudget gives the component counts one PDE variable consumes in one
// functional block of the continuous-Newton circuit (Table 3 columns).
type BlockBudget struct {
	Integrator int
	Fanout     int
	Multiplier int
	DAC        int
	TileInput  int
	TileOutput int
	AreaMM2    float64 // total block area per variable, mm² (Table 3)
	PowerUW    float64 // total block power per variable, µW (Table 3)
}

// ComponentBudget reproduces Table 3: per-variable component use of the
// four circuit blocks of Figure 1.
type ComponentBudget struct {
	NonlinearFunction BlockBudget
	JacobianMatrix    BlockBudget
	QuotientLoop      BlockBudget
	NewtonLoop        BlockBudget
}

// PrototypeBudget is Table 3 of the paper, with area and power from the
// component models of the group's prior silicon.
var PrototypeBudget = ComponentBudget{
	NonlinearFunction: BlockBudget{Integrator: 0, Fanout: 2, Multiplier: 4, DAC: 3, TileInput: 4, TileOutput: 4, AreaMM2: 0.30, PowerUW: 284},
	JacobianMatrix:    BlockBudget{Integrator: 0, Fanout: 0, Multiplier: 3, DAC: 1, TileInput: 4, TileOutput: 0, AreaMM2: 0.17, PowerUW: 152},
	QuotientLoop:      BlockBudget{Integrator: 1, Fanout: 3, Multiplier: 1, DAC: 0, TileInput: 0, TileOutput: 4, AreaMM2: 0.14, PowerUW: 188},
	NewtonLoop:        BlockBudget{Integrator: 1, Fanout: 3, Multiplier: 0, DAC: 0, TileInput: 0, TileOutput: 3, AreaMM2: 0.09, PowerUW: 139},
}

// Totals sums the four blocks.
func (b ComponentBudget) Totals() BlockBudget {
	blocks := []BlockBudget{b.NonlinearFunction, b.JacobianMatrix, b.QuotientLoop, b.NewtonLoop}
	var t BlockBudget
	for _, blk := range blocks {
		t.Integrator += blk.Integrator
		t.Fanout += blk.Fanout
		t.Multiplier += blk.Multiplier
		t.DAC += blk.DAC
		t.TileInput += blk.TileInput
		t.TileOutput += blk.TileOutput
		t.AreaMM2 += blk.AreaMM2
		t.PowerUW += blk.PowerUW
	}
	return t
}

// Per-variable silicon cost implied by the Table 4 ladder (352.36 mm² and
// 390.66 mW for the 16×16 = 512-variable design). Table 3's block totals
// round to 0.70 mm²/763 µW; Table 4's ladder divides exactly to the values
// below, so the ladder constants are authoritative for scaling.
const (
	AreaPerVariableMM2 = 352.36 / 512.0 // ≈ 0.6882 mm²
	PowerPerVariableMW = 390.66 / 512.0 // ≈ 0.7630 mW
)

// VariablesForGrid returns the number of scalar PDE variables a solver for
// an n×n 2-D Burgers grid holds: one u and one v per grid point (§5.2).
func VariablesForGrid(n int) int { return 2 * n * n }

// ScaleModel reproduces one row of Table 4.
type ScaleModel struct {
	GridN     int
	Variables int
	AreaMM2   float64
	PowerMW   float64
}

// ScaleModelFor returns the area/power model of a Burgers solver for an
// n×n grid (Table 4 rows for n ∈ {1, 2, 4, 8, 16}).
func ScaleModelFor(n int) (ScaleModel, error) {
	if n < 1 {
		return ScaleModel{}, fmt.Errorf("analog: invalid grid size %d", n)
	}
	v := VariablesForGrid(n)
	return ScaleModel{
		GridN:     n,
		Variables: v,
		AreaMM2:   AreaPerVariableMM2 * float64(v),
		PowerMW:   PowerPerVariableMW * float64(v),
	}, nil
}

// MaxPracticalGrid is the largest Burgers grid the paper considers
// implementable: 16×16, about the area of a CPU die (§6.1: "for now we
// limit ourselves to 16×16 problems").
const MaxPracticalGrid = 16
