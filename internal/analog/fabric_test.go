package analog

import (
	"errors"
	"math"
	"testing"
)

func TestFabricCapacity(t *testing.T) {
	f := NewFabric(Config{Seed: 1})
	if f.Capacity() != 8 {
		t.Fatalf("prototype board capacity %d, want 8 (2 chips × 4 tiles)", f.Capacity())
	}
}

func TestAllocateCellsExhaustsTiles(t *testing.T) {
	f := NewFabric(Config{Seed: 2})
	f.Calibrate()
	cells, err := f.AllocateCells(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("allocated %d cells, want 8", len(cells))
	}
	f.FreeAll()
	if _, err := f.AllocateCells(9); !errors.Is(err, ErrInsufficientHardware) {
		t.Fatalf("expected ErrInsufficientHardware for 9 variables, got %v", err)
	}
}

func TestFreeAllAllowsReuse(t *testing.T) {
	f := NewFabric(Config{Seed: 3})
	if _, err := f.AllocateCells(8); err != nil {
		t.Fatal(err)
	}
	// Second allocation without freeing must fail on used components.
	if _, err := f.AllocateCells(1); err == nil {
		t.Fatal("expected allocation failure while components are in use")
	}
	f.FreeAll()
	if _, err := f.AllocateCells(8); err != nil {
		t.Fatalf("reallocation after FreeAll failed: %v", err)
	}
}

func TestCalibrationShrinksMismatch(t *testing.T) {
	f := NewFabric(Config{Seed: 4})
	var rawSum float64
	for _, tile := range f.Tiles() {
		for _, pool := range tile.components {
			for _, c := range pool {
				rawSum += math.Abs(c.Gain) + math.Abs(c.Offset)
			}
		}
	}
	f.Calibrate()
	var calSum float64
	for _, tile := range f.Tiles() {
		for _, pool := range tile.components {
			for _, c := range pool {
				calSum += math.Abs(c.Gain) + math.Abs(c.Offset)
			}
		}
	}
	if !f.Calibrated() {
		t.Fatal("Calibrated() should be true")
	}
	if calSum >= rawSum*0.5 {
		t.Fatalf("calibration should shrink mismatch: raw %.3f, calibrated %.3f", rawSum, calSum)
	}
	if calSum == 0 {
		t.Fatal("calibration residual must remain nonzero (limited DAC precision)")
	}
}

func TestMismatchReproducibleBySeed(t *testing.T) {
	a := NewFabric(Config{Seed: 42})
	b := NewFabric(Config{Seed: 42})
	ta, tb := a.Tiles()[3], b.Tiles()[3]
	ca := ta.components[KindMultiplier][2]
	cb := tb.components[KindMultiplier][2]
	if ca.Gain != cb.Gain || ca.Offset != cb.Offset {
		t.Fatal("same seed must give identical process variation")
	}
	c := NewFabric(Config{Seed: 43})
	cc := c.Tiles()[3].components[KindMultiplier][2]
	if ca.Gain == cc.Gain {
		t.Fatal("different seeds should give different mismatch")
	}
}

func TestScaledFabricCapacity(t *testing.T) {
	acc, err := NewScaled(16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Capacity() != 512 {
		t.Fatalf("16×16 accelerator capacity %d, want 512", acc.Capacity())
	}
	if _, err := NewScaled(17, 7); err == nil {
		t.Fatal("grids beyond 16×16 must be rejected (Table 4 practicality limit)")
	}
	if _, err := NewScaled(0, 7); err == nil {
		t.Fatal("grid 0 must be rejected")
	}
}

func TestHomotopyBlendLambdaRamp(t *testing.T) {
	b := &homotopyBlend{rampTau: 50}
	if b.lambda(0) != 0 {
		t.Fatal("λ(0) must be 0")
	}
	if got := b.lambda(25); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("λ(25) = %g, want 0.5", got)
	}
	if b.lambda(50) != 1 || b.lambda(500) != 1 {
		t.Fatal("λ must clamp to 1 after the ramp")
	}
}

func TestAcceleratorAreaPowerAccessors(t *testing.T) {
	acc := NewPrototype(20)
	if math.Abs(acc.AreaMM2()-8*AreaPerVariableMM2) > 1e-9 {
		t.Fatalf("prototype area %g, want %g", acc.AreaMM2(), 8*AreaPerVariableMM2)
	}
	if math.Abs(acc.PeakPowerWatts(8)-8*PowerPerVariableMW*1e-3) > 1e-12 {
		t.Fatal("peak power accessor wrong")
	}
}

func TestPolySystemDegreeReporting(t *testing.T) {
	p := PolySystem{Degree: 3}
	if p.PolynomialDegree() != 3 {
		t.Fatal("PolySystem must report its declared degree")
	}
	if _, err := newScaledSystem(PolySystem{Degree: 0}, 1); err == nil {
		t.Fatal("degree-0 systems must be rejected")
	}
}

func TestScaledSystemDefaultsToQuadratic(t *testing.T) {
	// Systems without a DegreeReporter default to the PDE stencil degree.
	sys := quadPair(1, -1)
	ss, err := newScaledSystem(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ss.deg != 2 {
		t.Fatalf("default degree %d, want 2", ss.deg)
	}
	// fNorm = 1/s², jNorm = 1/s.
	if math.Abs(ss.fNorm-0.25) > 1e-15 || math.Abs(ss.jNorm-0.5) > 1e-15 {
		t.Fatalf("scaling constants wrong: fNorm=%g jNorm=%g", ss.fNorm, ss.jNorm)
	}
}

func TestSoftClampProperties(t *testing.T) {
	// Smooth, odd, bounded, identity-like near zero.
	if softClamp(0, 10) != 0 {
		t.Fatal("softClamp(0) must be 0")
	}
	if math.Abs(softClamp(1e-4, 10)-1e-4) > 1e-9 {
		t.Fatal("softClamp must be ≈identity for small inputs")
	}
	if math.Abs(softClamp(1e6, 10)) > 10 || math.Abs(softClamp(-1e6, 10)) > 10 {
		t.Fatal("softClamp must be bounded by the limit")
	}
	if softClamp(3, 10) != -softClamp(-3, 10) {
		t.Fatal("softClamp must be odd")
	}
}
