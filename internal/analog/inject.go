package analog

// Injector is the fault-injection seam of the behavioural model. The paper's
// robustness argument (§6) is that the digital Newton stage tolerates analog
// non-ideality; an Injector lets tests and chaos runs push the model *beyond*
// its calibrated envelope — stuck or railed integrators, converter drift that
// calibration never saw, collapsed dynamic range, transient disturbances,
// dead tiles — without the analog package knowing anything about fault
// policy. internal/fault provides the standard implementation; analog only
// defines the contract so the dependency points outward.
//
// An injector is owned by exactly one Accelerator and is invoked from the
// accelerator's (serial) solve path, so implementations need no locking. All
// hooks must be deterministic given the injector's own seeded state: any
// randomness is drawn in BeginRun, never per evaluation, so a fixed seed
// reproduces a run bit for bit.
type Injector interface {
	// BeginRun is called once at the start of every solve; transient faults
	// draw their per-run activation here.
	BeginRun()
	// UsableTiles maps the fabric's physical tile count to the number that
	// still host variables (dead tiles reduce capacity).
	UsableTiles(total int) int
	// Saturation returns the effective saturation limit given the healthy
	// one (a degraded supply shrinks the usable dynamic range).
	Saturation(base float64) float64
	// DAC perturbs the normalised value written to variable i's input
	// converter, before quantisation.
	DAC(i int, v float64) float64
	// ADC perturbs the normalised value read from variable i's output
	// converter, before quantisation.
	ADC(i int, v float64) float64
	// Drive transforms the integrator drive of variable i at circuit time t
	// (time constants): stuck integrators return 0, railed ones slew toward
	// a rail, bursts superpose a disturbance. w is the current state.
	Drive(t float64, i int, w, drive float64) float64
}

// SetInjector attaches a fault injector to the accelerator. Passing nil
// restores healthy behaviour. Not safe to call concurrently with a solve.
func (a *Accelerator) SetInjector(inj Injector) { a.inj = inj }

// Injector returns the attached fault injector, or nil when healthy.
func (a *Accelerator) Injector() Injector { return a.inj }

// usableCapacity is Fabric capacity minus dead tiles.
func (a *Accelerator) usableCapacity() int {
	c := a.Fabric.Capacity()
	if a.inj != nil {
		c = a.inj.UsableTiles(c)
	}
	return c
}

// beginRun fixes the per-solve transient fault state.
func (a *Accelerator) beginRun() {
	if a.inj != nil {
		a.inj.BeginRun()
	}
}

// satLimit is the effective saturation limit for this solve.
func (a *Accelerator) satLimit() float64 {
	s := a.Fabric.Config.SaturationLimit
	if a.inj != nil {
		s = a.inj.Saturation(s)
	}
	return s
}

// dacIn applies converter drift to one normalised DAC input.
func (a *Accelerator) dacIn(i int, v float64) float64 {
	if a.inj != nil {
		v = a.inj.DAC(i, v)
	}
	return v
}

// adcOut applies converter drift to one normalised ADC output. Faulted
// values are re-clamped: a drifted converter still cannot read past its
// rails, even when quantisation noise is disabled.
func (a *Accelerator) adcOut(i int, v float64) float64 {
	if a.inj != nil {
		v = clamp(a.inj.ADC(i, v), 1)
	}
	return v
}

// drive applies integrator-level faults to one drive value.
func (a *Accelerator) drive(t float64, i int, w, d float64) float64 {
	if a.inj != nil {
		d = a.inj.Drive(t, i, w, d)
	}
	return d
}
