package analog

import (
	"errors"
	"fmt"

	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/ode"
)

// TimeConstantSeconds converts the dimensionless integration time of the
// continuous-Newton ODE into wall-clock seconds. It is the single timing
// normalisation the paper performs: "the predicted solution time of the 2×2
// analog accelerator is normalized to match the measured solution time of
// the physical analog accelerator" (§6.1). With settle times of ≈20 time
// constants this puts the prototype's solves at the ~2×10⁻⁵ s the measured
// points of Figure 7 show.
const TimeConstantSeconds = 1e-6

// QuotientLoopEpsilon is the finite-gain regularisation of the continuous
// gradient-descent quotient loop (the shaded block of Figure 1, explored in
// the group's linear-algebra papers). The hardware loop computes
// δ ≈ J⁻¹F by descending ‖Jδ − F‖²; with finite loop gain the fixed point
// is δ = (JᵀJ + εI)⁻¹JᵀF. The regularisation keeps the dynamics defined
// across singular Jacobians (homotopy folds) without moving any true root:
// δ = 0 ⟺ JᵀF = 0.
const QuotientLoopEpsilon = 1e-3

// SolveOptions configures one accelerator run.
type SolveOptions struct {
	// DynamicRange is the bound s on |u| used to scale the problem into
	// hardware range (§5.3). Default 1.
	DynamicRange float64
	// TMaxTau bounds the settle horizon in integrator time constants.
	// Default 200.
	TMaxTau float64
	// SettleDerivTol declares steady state when ‖dw/dt‖ drops below this
	// (normalised units per τ). The analog board detects settling at the
	// resolution of its ADCs, so the default is coarse: 1e-4.
	SettleDerivTol float64
	// MaxSteps bounds the simulation cost: the number of accepted
	// integrator steps spent emulating the circuit. A run that exhausts
	// the budget is reported as not converged (the physical chip would
	// simply still be slewing when the host's deadline passes).
	// Convergent trajectories settle within a few hundred steps; the
	// default of 800 leaves generous headroom while keeping chattering
	// (non-convergent) trajectories from burning minutes of simulation.
	MaxSteps int
	// DisableNoise turns off every hardware non-ideality; used by tests to
	// separate algorithmic behaviour from noise effects, and equivalent to
	// a hypothetical perfect chip.
	DisableNoise bool
}

func (o *SolveOptions) defaults() {
	if o.DynamicRange <= 0 {
		o.DynamicRange = 1
	}
	if o.TMaxTau <= 0 {
		o.TMaxTau = 200
	}
	if o.SettleDerivTol <= 0 {
		o.SettleDerivTol = 1e-4
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 800
	}
}

// Solution is the result of an analog solve.
type Solution struct {
	// U is the readout in problem coordinates (ADC-quantised).
	U []float64
	// W is the normalised hardware state before rescaling.
	W []float64
	// Converged reports whether the circuit settled before TMaxTau.
	Converged bool
	// SettleTau is the settle time in integrator time constants.
	SettleTau float64
	// SettleSeconds is SettleTau converted by TimeConstantSeconds.
	SettleSeconds float64
	// EnergyJoules charges peak board power for the settle duration — an
	// upper bound, since activity decays as the circuit converges.
	EnergyJoules float64
	// Residual is ‖F(U)‖₂ of the original (unscaled) system at readout.
	Residual float64
}

// Accelerator couples a Fabric with the solve pipeline: scaling,
// allocation, continuous-time evolution, and readout.
type Accelerator struct {
	Fabric *Fabric
	// inj, when non-nil, injects faults beyond the calibrated envelope
	// (see Injector). Healthy accelerators leave it nil.
	inj Injector
}

// NewAccelerator builds a calibrated accelerator with the given config.
func NewAccelerator(cfg Config) *Accelerator {
	f := NewFabric(cfg)
	f.Calibrate()
	return &Accelerator{Fabric: f}
}

// NewPrototype returns the model of the physical two-chip board (capacity:
// 8 scalar variables = one 2×2 Burgers grid).
func NewPrototype(seed int64) *Accelerator {
	return NewAccelerator(Config{Seed: seed})
}

// NewScaled returns the model of a scaled-up accelerator able to solve an
// n×n 2-D Burgers problem directly (Table 4). It errs beyond the paper's
// 16×16 practicality limit.
func NewScaled(gridN int, seed int64) (*Accelerator, error) {
	if gridN < 1 || gridN > MaxPracticalGrid {
		return nil, fmt.Errorf("analog: grid %d×%d outside practical range 1..%d (Table 4)", gridN, gridN, MaxPracticalGrid)
	}
	vars := VariablesForGrid(gridN)
	chips := (vars + PrototypeChip.Tiles - 1) / PrototypeChip.Tiles
	return NewAccelerator(Config{Chips: chips, Seed: seed}), nil
}

// Capacity reports the number of scalar variables the accelerator hosts,
// net of any tiles an attached fault injector has marked dead.
func (a *Accelerator) Capacity() int { return a.usableCapacity() }

// PeakPowerWatts returns the board's peak power for a given active variable
// count, from the Table 4 per-variable model.
func (a *Accelerator) PeakPowerWatts(vars int) float64 {
	return PowerPerVariableMW * float64(vars) * 1e-3
}

// AreaMM2 returns total board silicon area.
func (a *Accelerator) AreaMM2() float64 {
	return AreaPerVariableMM2 * float64(a.Capacity())
}

// Solve runs the continuous Newton method on the fabric for F(u) = 0 from
// the initial guess u0 (|u| expected within opts.DynamicRange).
func (a *Accelerator) Solve(sys nonlin.System, u0 []float64, opts SolveOptions) (Solution, error) {
	opts.defaults()
	n := sys.Dim()
	if len(u0) != n {
		return Solution{}, errors.New("analog: initial guess has wrong dimension")
	}
	ss, err := newScaledSystem(sys, opts.DynamicRange)
	if err != nil {
		return Solution{}, err
	}
	if n > a.usableCapacity() {
		return Solution{}, fmt.Errorf("%w: %d variables exceed %d usable tiles", ErrInsufficientHardware, n, a.usableCapacity())
	}
	cells, err := a.Fabric.AllocateCells(n)
	if err != nil {
		return Solution{}, err
	}
	defer a.Fabric.FreeAll()
	a.beginRun()

	// DAC-quantised initial conditions in normalised units.
	w0 := make([]float64, n)
	for i, v := range u0 {
		w0[i] = quantize(clamp(a.dacIn(i, v/ss.s), 1), a.Fabric.Config.DACBits)
	}

	flow := a.hardwareFlow(ss, cells, opts, nil)
	sr, err := ode.IntegrateToSteadyState(flow, w0, ode.SteadyStateOptions{
		TMax:     opts.TMaxTau,
		DerivTol: opts.SettleDerivTol,
		Adaptive: ode.AdaptiveOptions{AbsTol: 1e-6, RelTol: 1e-5, MaxSteps: opts.MaxSteps, MaxEvals: 6 * opts.MaxSteps},
	})
	if errors.Is(err, ode.ErrTooManySteps) {
		// Budget exhausted without settling: report the state as a
		// non-converged measurement, like a chip read out before settling.
		err = nil
		sr.Settled = false
	}
	if err != nil {
		return Solution{}, fmt.Errorf("analog: circuit evolution failed: %w", err)
	}
	return a.readout(sys, ss, sr, opts)
}

// hardwareFlow builds the ODE the board physically evolves: the continuous
// Newton flow of the scaled system, filtered through the cells' gain and
// offset errors, the finite-gain quotient loop, slew limiting and
// saturation. lambda, when non-nil, blends a homotopy (SolveHomotopy).
func (a *Accelerator) hardwareFlow(ss *scaledSystem, cells []*NewtonCell, opts SolveOptions, blend *homotopyBlend) ode.System {
	n := ss.Dim()
	g := make([]float64, n)
	wsat := make([]float64, n)
	jac := la.NewDense(n, n)
	jtj := la.NewDense(n, n)
	jtf := make([]float64, n)
	sat := a.satLimit()
	slew := a.Fabric.Config.SlewLimit
	noisy := !opts.DisableNoise
	return func(t float64, w, dwdt []float64) error {
		// The datapath sees the saturated state; the integrator's own
		// state is left untouched.
		for i := range w {
			wsat[i] = clamp(w[i], sat)
		}
		if blend != nil {
			if err := blend.eval(t, wsat, g, jac); err != nil {
				return err
			}
		} else {
			if err := ss.Eval(wsat, g); err != nil {
				return err
			}
			if err := ss.Jacobian(wsat, jac); err != nil {
				return err
			}
		}
		if noisy {
			for i := 0; i < n; i++ {
				c := cells[i]
				g[i] = (1+c.FuncGain)*g[i] + c.FuncOffset
				row := jac.Row(i)
				for j := range row {
					row[j] *= 1 + c.JacGain
				}
			}
		}
		// Finite-gain gradient-descent quotient loop:
		// δ = (JᵀJ + εI)⁻¹ Jᵀ g.
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += jac.At(k, i) * jac.At(k, j)
				}
				jtj.Set(i, j, s)
				jtj.Set(j, i, s)
			}
			jtj.Add(i, i, QuotientLoopEpsilon)
		}
		for i := 0; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += jac.At(k, i) * g[k]
			}
			jtf[i] = s
		}
		lu, err := la.FactorLU(jtj)
		if err != nil {
			return fmt.Errorf("analog: quotient loop failed: %w", err)
		}
		if err := lu.Solve(dwdt, jtf); err != nil {
			return err
		}
		for i := range dwdt {
			d := -dwdt[i]
			if noisy {
				d += cells[i].IntOffset
			}
			dwdt[i] = softClamp(a.drive(t, i, w[i], d), slew)
		}
		return nil
	}
}

func (a *Accelerator) readout(sys nonlin.System, ss *scaledSystem, sr ode.SteadyResult, opts SolveOptions) (Solution, error) {
	n := ss.Dim()
	sol := Solution{W: la.Copy(sr.Y)}
	// ADC readout with quantisation.
	wq := make([]float64, n)
	for i, v := range sr.Y {
		q := a.adcOut(i, v)
		if !opts.DisableNoise {
			q = quantize(clamp(q, 1), a.Fabric.Config.ADCBits)
		}
		wq[i] = q
	}
	sol.U = ss.toProblem(wq)
	f := make([]float64, n)
	if err := sys.Eval(sol.U, f); err != nil {
		return sol, err
	}
	sol.Residual = la.Norm2(f)
	sol.Converged = sr.Settled
	if sr.Settled {
		sol.SettleTau = sr.SettleTime
	} else {
		sol.SettleTau = sr.T
	}
	sol.SettleSeconds = sol.SettleTau * TimeConstantSeconds
	sol.EnergyJoules = a.PeakPowerWatts(n) * sol.SettleSeconds
	return sol, nil
}

// homotopyBlend evaluates G(w, λ(t)) = (1−λ)S(w) + λH(w) with λ ramping
// from 0 to 1 over RampTau time constants — the chip's homotopy mode
// (§3.2, Figure 3).
type homotopyBlend struct {
	simple, hard *scaledSystem
	rampTau      float64
	fs, fh       []float64
	js, jh       *la.Dense
}

func (b *homotopyBlend) lambda(t float64) float64 {
	if t >= b.rampTau {
		return 1
	}
	return t / b.rampTau
}

func (b *homotopyBlend) eval(t float64, w, g []float64, jac *la.Dense) error {
	l := b.lambda(t)
	if err := b.simple.Eval(w, b.fs); err != nil {
		return err
	}
	if err := b.hard.Eval(w, b.fh); err != nil {
		return err
	}
	for i := range g {
		g[i] = (1-l)*b.fs[i] + l*b.fh[i]
	}
	if err := b.simple.Jacobian(w, b.js); err != nil {
		return err
	}
	if err := b.hard.Jacobian(w, b.jh); err != nil {
		return err
	}
	n := len(g)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			jac.Set(i, j, (1-l)*b.js.At(i, j)+l*b.jh.At(i, j))
		}
	}
	return nil
}

// HomotopyOptions configures SolveHomotopy.
type HomotopyOptions struct {
	Solve SolveOptions
	// RampTau is the λ ramp duration in time constants. Default 50.
	RampTau float64
}

// SolveHomotopy runs the chip's homotopy-continuation mode: the state
// starts at a root of the simple system and the fabric smoothly morphs the
// programmed equations from simple to hard while the Newton dynamics keep
// the state on a root (§3.2). Unlike digital path tracking, folds need no
// special casing — the slew-limited dynamics slide into another basin, so
// "all choices of initial conditions lead to one correct solution or
// another" (Figure 3).
func (a *Accelerator) SolveHomotopy(simple, hard nonlin.System, start []float64, opts HomotopyOptions) (Solution, error) {
	if opts.Solve.MaxSteps <= 0 {
		// The λ ramp keeps the state off equilibrium for its whole
		// duration, so homotopy runs need a larger step budget than
		// plain solves.
		opts.Solve.MaxSteps = 6000
	}
	opts.Solve.defaults()
	if opts.RampTau <= 0 {
		opts.RampTau = 50
	}
	if simple.Dim() != hard.Dim() {
		return Solution{}, fmt.Errorf("analog: homotopy dimension mismatch %d vs %d", simple.Dim(), hard.Dim())
	}
	n := hard.Dim()
	if len(start) != n {
		return Solution{}, errors.New("analog: homotopy start has wrong dimension")
	}
	ssS, err := newScaledSystem(simple, opts.Solve.DynamicRange)
	if err != nil {
		return Solution{}, err
	}
	ssH, err := newScaledSystem(hard, opts.Solve.DynamicRange)
	if err != nil {
		return Solution{}, err
	}
	if n > a.usableCapacity() {
		return Solution{}, fmt.Errorf("%w: %d variables exceed %d usable tiles", ErrInsufficientHardware, n, a.usableCapacity())
	}
	cells, err := a.Fabric.AllocateCells(n)
	if err != nil {
		return Solution{}, err
	}
	defer a.Fabric.FreeAll()
	a.beginRun()

	blend := &homotopyBlend{
		simple: ssS, hard: ssH, rampTau: opts.RampTau,
		fs: make([]float64, n), fh: make([]float64, n),
		js: la.NewDense(n, n), jh: la.NewDense(n, n),
	}
	w0 := make([]float64, n)
	for i, v := range start {
		w0[i] = quantize(clamp(a.dacIn(i, v/ssH.s), 1), a.Fabric.Config.DACBits)
	}
	if opts.Solve.TMaxTau <= opts.RampTau {
		opts.Solve.TMaxTau = opts.RampTau * 4
	}
	flow := a.hardwareFlow(ssH, cells, opts.Solve, blend)
	// The state is intentionally away from equilibrium during the ramp, so
	// only check for settling after λ reaches 1.
	sr, err := ode.IntegrateToSteadyState(flow, w0, ode.SteadyStateOptions{
		TMax:     opts.Solve.TMaxTau,
		DerivTol: opts.Solve.SettleDerivTol,
		MinHold:  5,
		MinTime:  opts.RampTau,
		Adaptive: ode.AdaptiveOptions{AbsTol: 1e-6, RelTol: 1e-5, MaxSteps: opts.Solve.MaxSteps, MaxEvals: 6 * opts.Solve.MaxSteps},
	})
	if errors.Is(err, ode.ErrTooManySteps) {
		err = nil
		sr.Settled = false
	}
	if err != nil {
		return Solution{}, fmt.Errorf("analog: homotopy evolution failed: %w", err)
	}
	sol, err := a.readout(hard, ssH, sr, opts.Solve)
	if err != nil {
		return sol, err
	}
	// A settle during the ramp at λ<1 does not count as convergence.
	if sol.SettleTau < opts.RampTau {
		sol.SettleTau = opts.RampTau
		sol.SettleSeconds = sol.SettleTau * TimeConstantSeconds
	}
	return sol, nil
}
