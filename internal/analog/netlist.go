package analog

import (
	"errors"
	"fmt"
)

// This file models the paper's configuration workflow (Figure 4): analog
// subcomponents are instantiated against fabric resources, exposed ports
// are wired through the per-tile crossbar and the sparse inter-tile/
// inter-chip fabric, parameters are loaded through DACs, and the whole
// configuration is committed before the integrators are released
// (`fabric->cfgCommit(); fabric->execStart();`).
//
// The solve pipelines (Solve, SolveSparse, SolveHomotopy) use this layer
// implicitly through AllocateCells; it is exposed so that programs can be
// built and validated the way the paper's C++ sample does, including the
// routing feasibility checks a real crossbar imposes.

// PortDir distinguishes producer and consumer ports.
type PortDir int

// Port directions.
const (
	PortOut PortDir = iota
	PortIn
)

// Port is one analog terminal of an allocated component.
type Port struct {
	Component *Component
	Tile      *Tile
	Chip      int
	Name      string
	Dir       PortDir
}

// Connection is one committed wire between an output and an input port.
// Joining wires sums currents (Figure 1), so an input port may receive
// several connections; each output may fan out only through an allocated
// fanout component, which the router enforces.
type Connection struct {
	From, To *Port
}

// ErrNotCommitted is returned when execution is started before the
// configuration is committed.
var ErrNotCommitted = errors.New("analog: configuration not committed")

// ErrRouting is returned when a requested wire cannot be realised by the
// crossbar topology.
var ErrRouting = errors.New("analog: connection not routable")

// Netlist accumulates a program's components and wiring before commit.
type Netlist struct {
	fabric      *Fabric
	connections []Connection
	fanoutLoad  map[*Component]int // output load per driving component
	committed   bool
	running     bool
}

// NewNetlist starts an empty program on the fabric.
func (f *Fabric) NewNetlist() *Netlist {
	return &Netlist{fabric: f, fanoutLoad: map[*Component]int{}}
}

// PortOf exposes a port on an allocated component for wiring.
func (n *Netlist) PortOf(tileIndex int, c *Component, name string, dir PortDir) (*Port, error) {
	tiles := n.fabric.Tiles()
	if tileIndex < 0 || tileIndex >= len(tiles) {
		return nil, fmt.Errorf("analog: tile %d out of range", tileIndex)
	}
	if c == nil || !c.used {
		return nil, fmt.Errorf("analog: port %q on unallocated component", name)
	}
	return &Port{
		Component: c,
		Tile:      tiles[tileIndex],
		Chip:      tileIndex / n.fabric.Config.Chip.Tiles,
		Name:      name,
		Dir:       dir,
	}, nil
}

// Connect requests a wire from an output port to an input port, validating
// the crossbar topology:
//
//   - within a tile, connectivity is all-to-all (Figure 5: "a programmable
//     crossbar enables all-to-all connectivity within each tile");
//   - between tiles (and chips) connectivity is sparse and neighbourly —
//     only adjacent tiles in the linear tile order may be wired, matching
//     the "tree-like with sparse connectivity" fabric;
//   - every output may drive at most one sink directly; further sinks need
//     fanout units (current copiers), one extra sink per fanout.
func (n *Netlist) Connect(from, to *Port) error {
	if n.committed {
		return errors.New("analog: cannot wire a committed configuration")
	}
	if from == nil || to == nil {
		return errors.New("analog: nil port")
	}
	if from.Dir != PortOut || to.Dir != PortIn {
		return fmt.Errorf("%w: must connect an output to an input", ErrRouting)
	}
	if from.Tile != to.Tile {
		d := tileDistance(n.fabric, from, to)
		if d > 1 {
			return fmt.Errorf("%w: tiles are %d apart; only neighbouring tiles are wired", ErrRouting, d)
		}
	}
	// Fanout budget: the first sink is free; each extra sink consumes one
	// fanout unit from the driving tile.
	load := n.fanoutLoad[from.Component]
	if load >= 1 {
		if _, err := from.Tile.alloc(KindFanout, 1); err != nil {
			return fmt.Errorf("%w: output of %s needs a fanout for sink %d: %w",
				ErrRouting, from.Name, load+1, err)
		}
	}
	n.fanoutLoad[from.Component] = load + 1
	n.connections = append(n.connections, Connection{From: from, To: to})
	return nil
}

// tileDistance is the hop count in the linear tile order (board-level
// neighbour wiring).
func tileDistance(f *Fabric, a, b *Port) int {
	tiles := f.Tiles()
	ai, bi := -1, -1
	for i, t := range tiles {
		if t == a.Tile {
			ai = i
		}
		if t == b.Tile {
			bi = i
		}
	}
	d := ai - bi
	if d < 0 {
		d = -d
	}
	return d
}

// Connections returns the committed or pending wires.
func (n *Netlist) Connections() []Connection {
	out := make([]Connection, len(n.connections))
	copy(out, n.connections)
	return out
}

// CfgCommit freezes the configuration, the analogue of
// `fabric->cfgCommit()`. Further wiring is rejected.
func (n *Netlist) CfgCommit() error {
	if n.committed {
		return errors.New("analog: configuration already committed")
	}
	if !n.fabric.Calibrated() {
		return errors.New("analog: calibrate the fabric before committing")
	}
	n.committed = true
	return nil
}

// ExecStart releases the integrators (`fabric->execStart()`).
func (n *Netlist) ExecStart() error {
	if !n.committed {
		return ErrNotCommitted
	}
	if n.running {
		return errors.New("analog: already running")
	}
	n.running = true
	return nil
}

// ExecStop halts and re-arms the integrators (`fabric->execStop()`).
func (n *Netlist) ExecStop() error {
	if !n.running {
		return errors.New("analog: not running")
	}
	n.running = false
	return nil
}

// Committed reports whether the configuration has been frozen.
func (n *Netlist) Committed() bool { return n.committed }

// Running reports whether the integrators are released.
func (n *Netlist) Running() bool { return n.running }

// SetDAC loads a digital code into an allocated DAC, quantised at the
// converter's resolution — the `slice.dac->setConstant(...)` call of the
// paper's sample. The value must lie in the normalised range ±1.
func (n *Netlist) SetDAC(c *Component, value float64) (float64, error) {
	if c == nil || c.Kind != KindDAC {
		return 0, fmt.Errorf("analog: SetDAC on non-DAC component")
	}
	if !c.used {
		return 0, fmt.Errorf("analog: SetDAC on unallocated DAC")
	}
	if value < -1 || value > 1 {
		return 0, fmt.Errorf("analog: DAC code %g outside the normalised range ±1", value)
	}
	q := quantize(value, n.fabric.Config.DACBits)
	// The loaded constant exhibits the DAC's residual offset.
	return q + c.Offset, nil
}
