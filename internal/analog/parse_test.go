package analog

import (
	"errors"
	"strings"
	"testing"
)

const goodProgram = `# 1-variable Newton slice: dac drives an integrator through a multiplier
inst d0 dac 0
inst m0 multiplier 0
inst i0 integrator 0
set  d0 0.5
wire d0.out m0.in0
wire m0.out i0.in
commit
start
stop
`

func TestParseNetlistProgram(t *testing.T) {
	f := NewFabric(Config{Seed: 1})
	f.Calibrate()
	n, err := ParseNetlist(f, goodProgram)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Connections()); got != 2 {
		t.Fatalf("connections = %d, want 2", got)
	}
	if n.Running() {
		t.Fatal("program stopped but netlist still running")
	}
}

func TestParseNetlistErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown directive", "frob a b", `unknown directive "frob"`},
		{"bad kind", "inst x resistor 0", "unknown component kind"},
		{"dup name", "inst a dac 0\ninst a dac 0", "already declared"},
		{"bad tile", "inst a dac 99", "out of range"},
		{"unknown wire inst", "wire a.out b.in", `unknown instance "a"`},
		{"malformed port", "inst a dac 0\ninst b adc 0\nwire a b.in", "want <inst>.<port>"},
		{"set non-dac", "inst a adc 0\nset a 0.5", "non-DAC"},
		{"set range", "inst a dac 0\nset a 1.5", "outside the normalised range"},
		{"uncalibrated commit", "commit", "calibrate the fabric"},
		{"start before commit", "start", ErrNotCommitted.Error()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := NewFabric(Config{Seed: 2})
			if !strings.Contains(tc.name, "uncalibrated") {
				f.Calibrate()
			}
			_, err := ParseNetlist(f, tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseNetlistRoutingRules(t *testing.T) {
	f := NewFabric(Config{Seed: 3})
	f.Calibrate()
	// Tiles 0 and 2 are not neighbours in the linear order.
	_, err := ParseNetlist(f, "inst a dac 0\ninst b integrator 2\nwire a.out b.in")
	if !errors.Is(err, ErrRouting) {
		t.Fatalf("distant wire: error = %v, want ErrRouting", err)
	}
}

// FuzzParseNetlist asserts the parser is total: any input yields a netlist
// or a positioned error, never a panic, and a successful parse leaves the
// netlist internally consistent.
func FuzzParseNetlist(f *testing.F) {
	f.Add(goodProgram)
	f.Add("inst a dac 0\nset a -0.25")
	f.Add("# only a comment\n\n")
	f.Add("wire x.out y.in")
	fab := NewFabric(Config{Seed: 4})
	fab.Calibrate()
	f.Fuzz(func(t *testing.T, src string) {
		fab.FreeAll()
		n, err := ParseNetlist(fab, src)
		if n == nil {
			t.Fatal("ParseNetlist returned a nil netlist")
		}
		if err != nil && !strings.Contains(err.Error(), "netlist line ") {
			t.Fatalf("error lacks line position: %v", err)
		}
		for _, c := range n.Connections() {
			if c.From == nil || c.To == nil {
				t.Fatal("committed connection has nil endpoint")
			}
			if c.From.Dir != PortOut || c.To.Dir != PortIn {
				t.Fatalf("connection direction violated: %+v", c)
			}
		}
	})
}
