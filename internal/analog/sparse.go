package analog

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/ode"
)

// scaledSparse is the sparse-Jacobian counterpart of scaledSystem, used by
// the scaled-up accelerator models whose PDE stencil Jacobians are banded.
// Running the dense O(n³) quotient loop for a 512-variable 16×16 problem
// would be needlessly slow in simulation; the physical crossbar is sparse
// anyway ("connectivity between tiles and between chips is tree-like with
// sparse connectivity, matching the neighbor-to-neighbor connection pattern
// for PDEs", Figure 5).
type scaledSparse struct {
	inner nonlin.SparseSystem
	s     float64
	deg   int
	fNorm float64
	jNorm float64
	uBuf  []float64
}

func newScaledSparse(sys nonlin.SparseSystem, dynamicRange float64) (*scaledSparse, error) {
	deg := 2
	if d, ok := sys.(DegreeReporter); ok {
		deg = d.PolynomialDegree()
		if deg < 0 {
			return nil, ErrTranscendental
		}
		if deg == 0 {
			return nil, fmt.Errorf("analog: degree-0 system is constant, nothing to solve")
		}
	}
	if dynamicRange <= 0 {
		dynamicRange = 1
	}
	sp := math.Pow(dynamicRange, float64(deg))
	return &scaledSparse{
		inner: sys, s: dynamicRange, deg: deg,
		fNorm: 1 / sp, jNorm: dynamicRange / sp,
		uBuf: make([]float64, sys.Dim()),
	}, nil
}

func (ss *scaledSparse) Dim() int { return ss.inner.Dim() }

func (ss *scaledSparse) Eval(w, g []float64) error {
	for i, v := range w {
		ss.uBuf[i] = ss.s * v
	}
	if err := ss.inner.Eval(ss.uBuf, g); err != nil {
		return err
	}
	for i := range g {
		g[i] *= ss.fNorm
	}
	return nil
}

func (ss *scaledSparse) JacobianCSR(w []float64) (*la.CSR, error) {
	for i, v := range w {
		ss.uBuf[i] = ss.s * v
	}
	j, err := ss.inner.JacobianCSR(ss.uBuf)
	if err != nil {
		return nil, err
	}
	j.Scale(ss.jNorm)
	return j, nil
}

func (ss *scaledSparse) toProblem(w []float64) []float64 {
	u := make([]float64, len(w))
	for i, v := range w {
		u[i] = ss.s * v
	}
	return u
}

// SolveSparse runs the continuous Newton method on the fabric for a sparse
// PDE stencil system. Semantics match Solve; only the quotient-loop solve
// exploits the banded Jacobian. When the Jacobian drifts singular along the
// trajectory (high Reynolds numbers, §6.1) the finite loop gain ε keeps the
// dynamics defined, exactly as in the dense path.
//
// ctx may be nil; a cancelled context aborts the circuit evolution with an
// error wrapping the context's error (a physical chip would simply be
// powered down mid-settle).
func (a *Accelerator) SolveSparse(ctx context.Context, sys nonlin.SparseSystem, u0 []float64, opts SolveOptions) (Solution, error) {
	opts.defaults()
	n := sys.Dim()
	if len(u0) != n {
		return Solution{}, errors.New("analog: initial guess has wrong dimension")
	}
	ss, err := newScaledSparse(sys, opts.DynamicRange)
	if err != nil {
		return Solution{}, err
	}
	if n > a.usableCapacity() {
		return Solution{}, fmt.Errorf("%w: %d variables exceed %d usable tiles", ErrInsufficientHardware, n, a.usableCapacity())
	}
	cells, err := a.Fabric.AllocateCells(n)
	if err != nil {
		return Solution{}, err
	}
	defer a.Fabric.FreeAll()
	a.beginRun()

	w0 := make([]float64, n)
	for i, v := range u0 {
		w0[i] = quantize(clamp(a.dacIn(i, v/ss.s), 1), a.Fabric.Config.DACBits)
	}

	g := make([]float64, n)
	jtg := make([]float64, n)
	wsat := make([]float64, n)
	sat := a.satLimit()
	slew := a.Fabric.Config.SlewLimit
	noisy := !opts.DisableNoise
	// The Jacobian pattern is fixed, so one banded workspace (sized for
	// the doubled normal-equation bandwidth) serves every derivative
	// evaluation of the circuit simulation.
	var lu *la.BandLU
	flow := func(t float64, w, dwdt []float64) error {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("analog: solve aborted: %w", err)
			}
		}
		for i := range w {
			wsat[i] = clamp(w[i], sat)
		}
		if err := ss.Eval(wsat, g); err != nil {
			return err
		}
		jac, err := ss.JacobianCSR(wsat)
		if err != nil {
			return err
		}
		if noisy {
			for i := 0; i < n; i++ {
				c := cells[i]
				g[i] = (1+c.FuncGain)*g[i] + c.FuncOffset
				jac.ScaleRow(i, 1+c.JacGain)
			}
		}
		// Finite-gain gradient-descent quotient loop (same form as the
		// dense path): δ = (JᵀJ + εI)⁻¹·Jᵀg. Smooth across singular
		// Jacobians and never moves a true root.
		if lu == nil {
			klA, kuA := la.Bandwidths(jac)
			b := klA + kuA
			lu = la.NewBandLUWorkspace(n, b, b)
		}
		if err := lu.FactorNormalFrom(jac, QuotientLoopEpsilon); err != nil {
			return fmt.Errorf("analog: quotient loop failed: %w", err)
		}
		jac.MulTransVec(jtg, g)
		copy(dwdt, jtg)
		if err := lu.SolveInto(dwdt); err != nil {
			return err
		}
		for i := range dwdt {
			d := -dwdt[i]
			if noisy {
				d += cells[i].IntOffset
			}
			dwdt[i] = softClamp(a.drive(t, i, w[i], d), slew)
		}
		return nil
	}

	sr, err := ode.IntegrateToSteadyState(flow, w0, ode.SteadyStateOptions{
		TMax:     opts.TMaxTau,
		DerivTol: opts.SettleDerivTol,
		Adaptive: ode.AdaptiveOptions{AbsTol: 1e-6, RelTol: 1e-5, MaxSteps: opts.MaxSteps, MaxEvals: 6 * opts.MaxSteps},
	})
	if errors.Is(err, ode.ErrTooManySteps) {
		// Budget exhausted without settling: treat as a chip read out
		// before its deadline — a non-converged measurement, not an error.
		err = nil
		sr.Settled = false
	}
	if err != nil {
		return Solution{}, fmt.Errorf("analog: circuit evolution failed: %w", err)
	}

	sol := Solution{W: la.Copy(sr.Y)}
	wq := make([]float64, n)
	for i, v := range sr.Y {
		q := a.adcOut(i, v)
		if noisy {
			q = quantize(clamp(q, 1), a.Fabric.Config.ADCBits)
		}
		wq[i] = q
	}
	sol.U = ss.toProblem(wq)
	f := make([]float64, n)
	if err := sys.Eval(sol.U, f); err != nil {
		return sol, err
	}
	sol.Residual = la.Norm2(f)
	sol.Converged = sr.Settled
	if sr.Settled {
		sol.SettleTau = sr.SettleTime
	} else {
		sol.SettleTau = sr.T
	}
	sol.SettleSeconds = sol.SettleTau * TimeConstantSeconds
	sol.EnergyJoules = a.PeakPowerWatts(n) * sol.SettleSeconds
	return sol, nil
}
