package analog

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrInsufficientHardware is returned when a problem needs more components
// than the fabric provides; callers fall back to decomposition (§6.3).
var ErrInsufficientHardware = errors.New("analog: problem exceeds fabric capacity")

// Component is one analog functional unit with its manufacturing mismatch.
// Process variation gives every unit a gain error and an offset; calibration
// (§5.4) trims both, but the trim resolution is itself limited by DAC
// precision, leaving a residual.
type Component struct {
	Kind string
	// Raw mismatch from process variation.
	rawGain, rawOffset float64
	// Residual after calibration; what the datapath actually exhibits.
	Gain   float64 // multiplicative error: output ×(1+Gain)
	Offset float64 // additive error in dynamic-range units
	used   bool
}

// Tile models one accelerator tile: fixed pools of components joined by a
// crossbar with all-to-all connectivity inside the tile (Figure 5 right).
type Tile struct {
	Index      int
	components map[string][]*Component
}

func newTile(idx int, spec TileSpec, rng *rand.Rand, cfg Config) *Tile {
	t := &Tile{Index: idx, components: map[string][]*Component{}}
	add := func(kind string, n int) {
		for i := 0; i < n; i++ {
			c := &Component{
				Kind:      kind,
				rawGain:   rng.NormFloat64() * cfg.RawGainSigma,
				rawOffset: rng.NormFloat64() * cfg.RawOffsetSigma,
			}
			// Uncalibrated hardware exhibits the raw mismatch.
			c.Gain, c.Offset = c.rawGain, c.rawOffset
			t.components[kind] = append(t.components[kind], c)
		}
	}
	add(KindIntegrator, spec.Integrators)
	add(KindMultiplier, spec.Multipliers)
	add(KindFanout, spec.Fanouts)
	add(KindDAC, spec.DACs)
	add(KindADC, spec.ADCs)
	return t
}

// alloc claims n unused components of the given kind.
func (t *Tile) alloc(kind string, n int) ([]*Component, error) {
	var out []*Component
	for _, c := range t.components[kind] {
		if !c.used {
			out = append(out, c)
			if len(out) == n {
				for _, cc := range out {
					cc.used = true
				}
				return out, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: tile %d has no %d free %s units", ErrInsufficientHardware, t.Index, n, kind)
}

// free releases every component in the tile.
func (t *Tile) free() {
	for _, pool := range t.components {
		for _, c := range pool {
			c.used = false
		}
	}
}

// Chip is one die of four tiles.
type Chip struct {
	Index int
	Tiles []*Tile
}

// Config tunes the hardware non-idealities of the model. The defaults are
// calibrated so the Figure 6 experiment lands at the paper's measured
// 5.38 % total RMS solution error.
type Config struct {
	// Chips on the board; the prototype has 2 (§5.2). Scaled-up designs
	// raise this; one tile still hosts one scalar variable.
	Chips int
	// Chip layout; defaults to PrototypeChip.
	Chip ChipSpec
	// Seed makes the mismatch draw reproducible.
	Seed int64
	// RawGainSigma/RawOffsetSigma are pre-calibration process variation.
	RawGainSigma, RawOffsetSigma float64
	// CalibrationResidual is the fraction of mismatch calibration cannot
	// trim (limited by DAC precision, §5.4). Calibrate multiplies the raw
	// errors by this factor.
	CalibrationResidual float64
	// DACBits/ADCBits are converter resolutions; the prototype uses 8-bit
	// continuous-time converters (Figure 5).
	DACBits, ADCBits int
	// SaturationLimit is the dynamic-range clip in normalised units;
	// signals cannot exceed ±SaturationLimit.
	SaturationLimit float64
	// SlewLimit caps |dw/dt| per state in normalised units per time
	// constant, modelling finite current drive.
	SlewLimit float64
}

func (c *Config) defaults() {
	if c.Chips <= 0 {
		c.Chips = 2
	}
	if c.Chip.Tiles == 0 {
		c.Chip = PrototypeChip
	}
	if c.RawGainSigma <= 0 {
		c.RawGainSigma = 0.10
	}
	if c.RawOffsetSigma <= 0 {
		// Calibrated so the Figure 6 experiment (400 random 2×2 problems)
		// reproduces the paper's measured 5.38 % total RMS solution error.
		c.RawOffsetSigma = 0.11
	}
	if c.CalibrationResidual <= 0 {
		c.CalibrationResidual = 0.12
	}
	if c.DACBits == 0 {
		c.DACBits = 8
	}
	if c.ADCBits == 0 {
		c.ADCBits = 8
	}
	if c.SaturationLimit <= 0 {
		c.SaturationLimit = 2.0
	}
	if c.SlewLimit <= 0 {
		// Slew of ~10 dynamic ranges per time constant: fast enough that
		// it never binds during normal settling (Newton-flow rates are
		// O(1)), slow enough that near-singular Jacobian crossings —
		// where the ideal flow is unbounded — stay integrable.
		c.SlewLimit = 10.0
	}
}

// Fabric is the top-level programmable analog array, the Go counterpart of
// the paper's `Fabric` C++ class (Figure 4).
type Fabric struct {
	Config     Config
	Chips      []*Chip
	calibrated bool
	rng        *rand.Rand
}

// NewFabric powers up a board of accelerator chips with fresh process
// variation drawn from Seed. The fabric starts uncalibrated.
func NewFabric(cfg Config) *Fabric {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Fabric{Config: cfg, rng: rng}
	for ci := 0; ci < cfg.Chips; ci++ {
		chip := &Chip{Index: ci}
		for ti := 0; ti < cfg.Chip.Tiles; ti++ {
			chip.Tiles = append(chip.Tiles, newTile(ti, cfg.Chip.Tile, rng, cfg))
		}
		f.Chips = append(f.Chips, chip)
	}
	return f
}

// Calibrate trims every component's gain and offset to the residual floor,
// mirroring `fabric->calibrate()` in the paper's programming sample. It is
// idempotent.
func (f *Fabric) Calibrate() {
	for _, chip := range f.Chips {
		for _, tile := range chip.Tiles {
			for _, pool := range tile.components {
				for _, c := range pool {
					c.Gain = c.rawGain * f.Config.CalibrationResidual
					c.Offset = c.rawOffset * f.Config.CalibrationResidual
				}
			}
		}
	}
	f.calibrated = true
}

// Calibrated reports whether Calibrate has run.
func (f *Fabric) Calibrated() bool { return f.calibrated }

// Tiles returns every tile on the board in deterministic order.
func (f *Fabric) Tiles() []*Tile {
	var out []*Tile
	for _, c := range f.Chips {
		out = append(out, c.Tiles...)
	}
	return out
}

// Capacity reports how many scalar PDE variables the fabric can host: one
// per tile (§5.2: "each tile is in charge of one scalar element in u or v").
func (f *Fabric) Capacity() int { return len(f.Tiles()) }

// FreeAll releases all allocations, the analogue of `delete[] cells` in the
// paper's sample ("destroying objects representing analog variables frees
// the analog hardware for other calculations").
func (f *Fabric) FreeAll() {
	for _, t := range f.Tiles() {
		t.free()
	}
}

// AllocatedComponents counts the components currently claimed across the
// board — the utilisation figure a netlist-validation service reports.
func (f *Fabric) AllocatedComponents() int {
	n := 0
	for _, t := range f.Tiles() {
		for _, pool := range t.components {
			for _, c := range pool {
				if c.used {
					n++
				}
			}
		}
	}
	return n
}

// NewtonCell is the per-variable datapath of Figure 1: the allocated
// components implementing the nonlinear function, the Jacobian row, the
// quotient feedback loop and the Newton feedback loop for one unknown. It
// is the Go counterpart of the paper's `NewtonTile`.
type NewtonCell struct {
	Tile *Tile
	// Aggregated datapath non-idealities, produced by the allocated
	// components in series.
	FuncGain   float64 // multiplicative error on F_i evaluation
	FuncOffset float64 // additive error on F_i, dynamic-range units
	JacGain    float64 // multiplicative error on Jacobian row i
	IntOffset  float64 // integrator leak bias on du_i/dt
}

// AllocateCells claims one tile per variable and aggregates each cell's
// component mismatch into datapath-level error terms.
func (f *Fabric) AllocateCells(vars int) ([]*NewtonCell, error) {
	tiles := f.Tiles()
	if vars > len(tiles) {
		return nil, fmt.Errorf("%w: need %d tiles for %d variables, have %d",
			ErrInsufficientHardware, vars, vars, len(tiles))
	}
	budget := PrototypeBudget.Totals()
	cells := make([]*NewtonCell, 0, vars)
	for v := 0; v < vars; v++ {
		tile := tiles[v]
		cell := &NewtonCell{Tile: tile}
		ints, err := tile.alloc(KindIntegrator, budget.Integrator)
		if err != nil {
			f.FreeAll()
			return nil, err
		}
		muls, err := tile.alloc(KindMultiplier, budget.Multiplier)
		if err != nil {
			f.FreeAll()
			return nil, err
		}
		fans, err := tile.alloc(KindFanout, budget.Fanout)
		if err != nil {
			f.FreeAll()
			return nil, err
		}
		dacs, err := tile.alloc(KindDAC, budget.DAC)
		if err != nil {
			f.FreeAll()
			return nil, err
		}
		// The nonlinear-function block chains multipliers, fanouts and
		// DACs; its gain errors multiply and offsets add. The Jacobian
		// block only feeds the quotient loop, so its errors perturb J.
		nf := PrototypeBudget.NonlinearFunction
		for i := 0; i < nf.Multiplier; i++ {
			cell.FuncGain += muls[i].Gain
			cell.FuncOffset += muls[i].Offset
		}
		for i := 0; i < nf.Fanout; i++ {
			cell.FuncOffset += fans[i].Offset
		}
		for i := 0; i < nf.DAC; i++ {
			cell.FuncOffset += dacs[i].Offset
		}
		jb := PrototypeBudget.JacobianMatrix
		for i := 0; i < jb.Multiplier; i++ {
			cell.JacGain += muls[nf.Multiplier+i].Gain
		}
		cell.IntOffset = ints[0].Offset * 0.1 // integrator leak is small
		cells = append(cells, cell)
	}
	return cells, nil
}
