package analog

import (
	"fmt"
	"strconv"
	"strings"
)

// This file adds a text front-end to the netlist layer: the same
// instantiate → wire → load → commit workflow as the programmatic API
// (netlist.go), written the way the paper's configuration listings read.
// The grammar is line-oriented:
//
//	# comment                      blank lines and #-comments are skipped
//	inst <name> <kind> <tile>      allocate one component on a tile
//	wire <a>.<port> <b>.<port>     connect a's output port to b's input port
//	set  <name> <value>            load a DAC constant (normalised ±1)
//	commit                         freeze the configuration (cfgCommit)
//	start                          release the integrators (execStart)
//	stop                           halt the integrators (execStop)
//
// Kinds are the component kind names of spec.go (integrator, multiplier,
// fanout, dac, adc). Every error is positioned: "netlist line N: ...".

// parseState carries the named instances of one parse.
type parseState struct {
	net   *Netlist
	comps map[string]*Component
	tiles map[string]int
}

// ParseNetlist builds and validates a program on the fabric from its text
// form. The fabric must be calibrated before a `commit` line. The returned
// netlist reflects every directive up to the first error.
func ParseNetlist(f *Fabric, src string) (*Netlist, error) {
	st := &parseState{
		net:   f.NewNetlist(),
		comps: map[string]*Component{},
		tiles: map[string]int{},
	}
	for ln, line := range strings.Split(src, "\n") {
		if err := st.directive(f, line); err != nil {
			return st.net, fmt.Errorf("analog: netlist line %d: %w", ln+1, err)
		}
	}
	return st.net, nil
}

func (st *parseState) directive(f *Fabric, line string) error {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	op, args := fields[0], fields[1:]
	switch op {
	case "inst":
		return st.inst(f, args)
	case "wire":
		return st.wire(args)
	case "set":
		return st.set(args)
	case "commit":
		if len(args) != 0 {
			return fmt.Errorf("commit takes no arguments")
		}
		return st.net.CfgCommit()
	case "start":
		if len(args) != 0 {
			return fmt.Errorf("start takes no arguments")
		}
		return st.net.ExecStart()
	case "stop":
		if len(args) != 0 {
			return fmt.Errorf("stop takes no arguments")
		}
		return st.net.ExecStop()
	default:
		return fmt.Errorf("unknown directive %q", op)
	}
}

func (st *parseState) inst(f *Fabric, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: inst <name> <kind> <tile>")
	}
	name, kind := args[0], args[1]
	if _, dup := st.comps[name]; dup {
		return fmt.Errorf("instance %q already declared", name)
	}
	switch kind {
	case KindIntegrator, KindMultiplier, KindFanout, KindDAC, KindADC:
	default:
		return fmt.Errorf("unknown component kind %q", kind)
	}
	tileIndex, err := strconv.Atoi(args[2])
	if err != nil {
		return fmt.Errorf("tile index %q: %w", args[2], err)
	}
	tiles := f.Tiles()
	if tileIndex < 0 || tileIndex >= len(tiles) {
		return fmt.Errorf("tile %d out of range [0, %d)", tileIndex, len(tiles))
	}
	cs, err := tiles[tileIndex].alloc(kind, 1)
	if err != nil {
		return err
	}
	st.comps[name] = cs[0]
	st.tiles[name] = tileIndex
	return nil
}

func (st *parseState) wire(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: wire <inst>.<port> <inst>.<port>")
	}
	from, err := st.port(args[0], PortOut)
	if err != nil {
		return err
	}
	to, err := st.port(args[1], PortIn)
	if err != nil {
		return err
	}
	return st.net.Connect(from, to)
}

// port resolves "<inst>.<port>" to a Port of the given direction.
func (st *parseState) port(spec string, dir PortDir) (*Port, error) {
	name, portName, ok := strings.Cut(spec, ".")
	if !ok || name == "" || portName == "" {
		return nil, fmt.Errorf("port %q: want <inst>.<port>", spec)
	}
	c, ok := st.comps[name]
	if !ok {
		return nil, fmt.Errorf("unknown instance %q", name)
	}
	return st.net.PortOf(st.tiles[name], c, portName, dir)
}

func (st *parseState) set(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: set <dac> <value>")
	}
	c, ok := st.comps[args[0]]
	if !ok {
		return fmt.Errorf("unknown instance %q", args[0])
	}
	v, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		return fmt.Errorf("value %q: %w", args[1], err)
	}
	_, err = st.net.SetDAC(c, v)
	return err
}
