package analog

import (
	"errors"
	"fmt"

	"hybridpde/internal/ode"
)

// MOLOptions configures IntegrateODE (method-of-lines mode).
type MOLOptions struct {
	// DynamicRange is the bound on |u| for range scaling. Default 1.
	DynamicRange float64
	// THorizon is the integration horizon in integrator time constants.
	// Required.
	THorizon float64
	// Observer, when set, sees the (rescaled, noiseless-readout) state
	// after every accepted simulation step.
	Observer func(tau float64, u []float64)
	// MaxSteps bounds simulation cost, as in SolveOptions. Default 4000.
	MaxSteps int
	// DisableNoise turns off hardware non-idealities.
	DisableNoise bool
}

// MOLResult reports a method-of-lines integration.
type MOLResult struct {
	U            []float64 // final state, problem coordinates, ADC-quantised
	TauReached   float64
	WallSeconds  float64 // analog time: THorizon × TimeConstantSeconds
	EnergyJoules float64
}

// IntegrateODE runs the accelerator in the classic hybrid-computer mode the
// paper's §4.3 describes (and §8 traces to the 1960s machines): the
// space-discretised PDE du/dt = L(u) is mapped directly onto the
// integrators and evolved in continuous time, instead of being driven
// through the continuous-Newton root-finding circuit. The paper argues
// against this partitioning for modern solvers — it needs high-rate,
// high-precision waveform ADCs — but it remains the natural mode for
// explicitly time-dependent problems, so the model supports it.
//
// f is the semi-discretised right-hand side with dim state variables; each
// variable occupies one tile (same capacity rule as Solve).
func (a *Accelerator) IntegrateODE(f ode.System, dim int, u0 []float64, opts MOLOptions) (MOLResult, error) {
	if opts.THorizon <= 0 {
		return MOLResult{}, fmt.Errorf("analog: IntegrateODE requires THorizon > 0")
	}
	if len(u0) != dim {
		return MOLResult{}, errors.New("analog: initial state has wrong dimension")
	}
	if opts.DynamicRange <= 0 {
		opts.DynamicRange = 1
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 4000
	}
	cells, err := a.Fabric.AllocateCells(dim)
	if err != nil {
		return MOLResult{}, err
	}
	defer a.Fabric.FreeAll()

	s := opts.DynamicRange
	sat := a.Fabric.Config.SaturationLimit
	slew := a.Fabric.Config.SlewLimit
	noisy := !opts.DisableNoise

	w0 := make([]float64, dim)
	for i, v := range u0 {
		w0[i] = quantize(clamp(v/s, 1), a.Fabric.Config.DACBits)
	}
	uBuf := make([]float64, dim)
	flow := func(t float64, w, dwdt []float64) error {
		for i := range w {
			uBuf[i] = s * clamp(w[i], sat)
		}
		if err := f(t, uBuf, dwdt); err != nil {
			return err
		}
		for i := range dwdt {
			d := dwdt[i] / s // back to normalised units
			if noisy {
				c := cells[i]
				d = (1+c.FuncGain)*d + c.FuncOffset + c.IntOffset
			}
			dwdt[i] = softClamp(d, slew)
		}
		return nil
	}
	var obs ode.Observer
	if opts.Observer != nil {
		outer := opts.Observer
		u := make([]float64, dim)
		obs = func(t float64, w []float64) bool {
			for i, v := range w {
				u[i] = s * v
			}
			outer(t, u)
			return true
		}
	}
	res, err := ode.DormandPrince(flow, w0, 0, opts.THorizon, ode.AdaptiveOptions{
		AbsTol: 1e-6, RelTol: 1e-5,
		MaxSteps: opts.MaxSteps, MaxEvals: 6 * opts.MaxSteps,
		Observer: obs,
	})
	out := MOLResult{TauReached: res.T}
	if err != nil && !errors.Is(err, ode.ErrTooManySteps) {
		return out, fmt.Errorf("analog: method-of-lines evolution failed: %w", err)
	}
	u := make([]float64, dim)
	for i, v := range res.Y {
		q := v
		if noisy {
			q = quantize(clamp(v, 1), a.Fabric.Config.ADCBits)
		}
		u[i] = s * q
	}
	out.U = u
	out.WallSeconds = out.TauReached * TimeConstantSeconds
	out.EnergyJoules = a.PeakPowerWatts(dim) * out.WallSeconds
	return out, nil
}
