package analog

import (
	"errors"
	"math"
	"testing"

	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/ode"
	"hybridpde/internal/pde"
)

// cubic returns z³ − 1 = 0 as a 2-D real system, degree 3.
func cubic() nonlin.System {
	return PolySystem{
		Degree: 3,
		System: nonlin.FuncSystem{
			N: 2,
			F: func(u, f []float64) error {
				re, im := u[0], u[1]
				f[0] = re*re*re - 3*re*im*im - 1
				f[1] = 3*re*re*im - im*im*im
				return nil
			},
			J: func(u []float64, jac *la.Dense) error {
				re, im := u[0], u[1]
				a := 3 * (re*re - im*im)
				b := 6 * re * im
				jac.Set(0, 0, a)
				jac.Set(0, 1, -b)
				jac.Set(1, 0, b)
				jac.Set(1, 1, a)
				return nil
			},
		},
	}
}

// quadPair is Equation 2 with the given right-hand sides (degree 2).
func quadPair(r0, r1 float64) nonlin.System {
	return nonlin.FuncSystem{
		N: 2,
		F: func(u, f []float64) error {
			f[0] = u[0]*u[0] + u[0] + u[1] - r0
			f[1] = u[1]*u[1] + u[1] - u[0] - r1
			return nil
		},
		J: func(u []float64, jac *la.Dense) error {
			jac.Set(0, 0, 2*u[0]+1)
			jac.Set(0, 1, 1)
			jac.Set(1, 0, -1)
			jac.Set(1, 1, 2*u[1]+1)
			return nil
		},
	}
}

func TestSolveCubicNoiseless(t *testing.T) {
	acc := NewPrototype(1)
	sol, err := acc.Solve(cubic(), []float64{1.8, 0.3}, SolveOptions{DynamicRange: 2, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Fatal("noiseless chip should settle")
	}
	if math.Hypot(sol.U[0]-1, sol.U[1]) > 1e-2 {
		t.Fatalf("noiseless solution %v, want ≈ (1, 0)", sol.U)
	}
	if sol.SettleTau <= 0 || sol.SettleSeconds != sol.SettleTau*TimeConstantSeconds {
		t.Fatalf("settle bookkeeping wrong: %+v", sol)
	}
}

func TestSolveCubicWithHardwareNoise(t *testing.T) {
	acc := NewPrototype(2)
	sol, err := acc.Solve(cubic(), []float64{1.8, 0.3}, SolveOptions{DynamicRange: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Fatal("chip should settle")
	}
	errDist := math.Hypot(sol.U[0]-1, sol.U[1])
	if errDist > 0.35 {
		t.Fatalf("noisy solution too far from root: %v (dist %.3f)", sol.U, errDist)
	}
	if errDist == 0 {
		t.Fatal("hardware noise should perturb the solution at least by ADC quantisation")
	}
}

func TestSolveErrorIsApproximatelyPaperRMS(t *testing.T) {
	// Mini version of Figure 6: random quadratic pairs, constants within
	// ±3, RMS error between analog and exact digital solutions in
	// normalised units should land near the measured 5.38 %.
	const trials = 60
	acc := NewPrototype(3)
	sumSq, count := 0.0, 0
	for k := 0; k < trials; k++ {
		// Plant a root inside the dynamic range and derive the RHS from
		// it, so every trial has a guaranteed real solution.
		p0 := -1 + 2*float64(k%10)/9
		p1 := -1 + 2*float64(k/10)/5
		r0 := p0*p0 + p0 + p1
		r1 := p1*p1 + p1 - p0
		sys := quadPair(r0, r1)
		root := []float64{p0, p1}
		sol, err := acc.Solve(sys, root, SolveOptions{DynamicRange: 3})
		if err != nil || !sol.Converged {
			continue
		}
		// The digital reference is the exact root nearest the analog
		// result; polish from the analog answer.
		dig, err := nonlin.Newton(nil, sys, sol.U, nonlin.NewtonOptions{Tol: 1e-12, AutoDamp: true, MaxIter: 400})
		if err != nil {
			continue
		}
		for i := range sol.U {
			d := (sol.U[i] - dig.U[i]) / 3 // normalised to dynamic range
			sumSq += d * d
			count++
		}
	}
	if count < 3*trials/2 {
		t.Fatalf("too few successful trials: %d of %d components", count, 2*trials)
	}
	rms := 100 * math.Sqrt(sumSq/float64(count))
	if rms < 1.0 || rms > 10.0 {
		t.Fatalf("analog RMS error %.2f%%, want in [1,10] bracketing the paper's 5.38%%", rms)
	}
}

func TestSolveRejectsTranscendental(t *testing.T) {
	sys := PolySystem{
		Degree: -1,
		System: nonlin.FuncSystem{
			N: 1,
			F: func(u, f []float64) error { f[0] = math.Exp(u[0]) - 2; return nil },
		},
	}
	acc := NewPrototype(4)
	_, err := acc.Solve(sys, []float64{0}, SolveOptions{})
	if !errors.Is(err, ErrTranscendental) {
		t.Fatalf("expected ErrTranscendental, got %v", err)
	}
}

func TestSolveCapacityExceeded(t *testing.T) {
	big := nonlin.FuncSystem{
		N: 9,
		F: func(u, f []float64) error {
			for i := range f {
				f[i] = u[i] - 1
			}
			return nil
		},
		J: func(u []float64, jac *la.Dense) error {
			for i := range u {
				jac.Set(i, i, 1)
			}
			return nil
		},
	}
	acc := NewPrototype(5)
	_, err := acc.Solve(big, make([]float64, 9), SolveOptions{})
	if !errors.Is(err, ErrInsufficientHardware) {
		t.Fatalf("expected ErrInsufficientHardware, got %v", err)
	}
}

func TestHomotopyOnChipAllStartsLand(t *testing.T) {
	// Figure 3 far right: every (±1, ±1) start of the simple system must
	// end on a genuine root of the hard system.
	hard := quadPair(1, -1)
	simple := nonlin.SquareRootsSimple(2)
	acc := NewPrototype(6)
	f := make([]float64, 2)
	for _, s := range [][]float64{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}} {
		sol, err := acc.SolveHomotopy(simple, hard, s, HomotopyOptions{
			Solve: SolveOptions{DynamicRange: 3, DisableNoise: true, TMaxTau: 600},
		})
		if err != nil {
			t.Fatalf("start %v: %v", s, err)
		}
		if !sol.Converged {
			t.Fatalf("start %v: chip homotopy did not settle", s)
		}
		if err := hard.Eval(sol.U, f); err != nil {
			t.Fatal(err)
		}
		if la.Norm2(f) > 5e-2 {
			t.Fatalf("start %v: endpoint %v is not a root (‖F‖=%.3g)", s, sol.U, la.Norm2(f))
		}
		if sol.SettleTau < 50 {
			t.Fatalf("start %v: settle time %.1f cannot precede the λ ramp", s, sol.SettleTau)
		}
	}
}

func TestSolveSparseMatchesDenseNoiseless(t *testing.T) {
	// The banded fast path must agree with the dense faithful path when
	// noise is off and the problem is the same.
	sys := &tridiagonalQuadratic{n: 6}
	u0 := make([]float64, 6)
	for i := range u0 {
		u0[i] = 0.4
	}
	acc := NewPrototype(7)
	dense, err := acc.Solve(nonlin.DenseAdapter{S: sys}, u0, SolveOptions{DynamicRange: 2, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := acc.SolveSparse(nil, sys, u0, SolveOptions{DynamicRange: 2, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense.U {
		if math.Abs(dense.U[i]-sparse.U[i]) > 5e-3 {
			t.Fatalf("dense/sparse mismatch at %d: %g vs %g", i, dense.U[i], sparse.U[i])
		}
	}
}

func TestSolveSparseWithNoiseSettles(t *testing.T) {
	sys := &tridiagonalQuadratic{n: 8}
	u0 := make([]float64, 8)
	acc := NewPrototype(8)
	sol, err := acc.SolveSparse(nil, sys, u0, SolveOptions{DynamicRange: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Fatal("sparse noisy solve should settle")
	}
	f := make([]float64, 8)
	if err := sys.Eval(sol.U, f); err != nil {
		t.Fatal(err)
	}
	if la.Norm2(f) > 0.6 {
		t.Fatalf("sparse noisy residual too large: %g", la.Norm2(f))
	}
}

// tridiagonalQuadratic: F_i = u_i² + 2u_i − 1 + 0.2(u_{i−1}+u_{i+1}).
type tridiagonalQuadratic struct{ n int }

func (s *tridiagonalQuadratic) Dim() int { return s.n }

func (s *tridiagonalQuadratic) Eval(u, f []float64) error {
	for i := 0; i < s.n; i++ {
		f[i] = u[i]*u[i] + 2*u[i] - 1
		if i > 0 {
			f[i] += 0.2 * u[i-1]
		}
		if i < s.n-1 {
			f[i] += 0.2 * u[i+1]
		}
	}
	return nil
}

func (s *tridiagonalQuadratic) JacobianCSR(u []float64) (*la.CSR, error) {
	b := la.NewCOO(s.n, s.n)
	for i := 0; i < s.n; i++ {
		b.Append(i, i, 2*u[i]+2)
		if i > 0 {
			b.Append(i, i-1, 0.2)
		}
		if i < s.n-1 {
			b.Append(i, i+1, 0.2)
		}
	}
	return b.ToCSR(), nil
}

func TestQuantize(t *testing.T) {
	if q := quantize(0.5, 8); math.Abs(q-0.5) > 1.0/256 {
		t.Fatalf("quantize(0.5, 8) = %g", q)
	}
	if q := quantize(1.7, 8); q != 1 {
		t.Fatalf("quantize should clip to +1, got %g", q)
	}
	if q := quantize(-1.7, 8); q != -1 {
		t.Fatalf("quantize should clip to −1, got %g", q)
	}
	if q := quantize(0.123456, 0); q != 0.123456 {
		t.Fatal("bits ≤ 0 must bypass quantisation")
	}
	// 8-bit grid spacing is 1/128.
	if q := quantize(1.0/256+1e-9, 8); math.Abs(q-1.0/128) > 1e-12 && q != 0 {
		t.Fatalf("unexpected grid: %g", q)
	}
}

func TestScaledSystemPreservesRoots(t *testing.T) {
	sys := quadPair(1, -1)
	ss, err := newScaledSystem(sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	// (1, −1) is an exact root of the hard system; w = u/3.
	g := make([]float64, 2)
	if err := ss.Eval([]float64{1.0 / 3, -1.0 / 3}, g); err != nil {
		t.Fatal(err)
	}
	if la.Norm2(g) > 1e-12 {
		t.Fatalf("scaled system should vanish at the scaled root, got %g", la.Norm2(g))
	}
	// Jacobian consistency with finite differences in w-space.
	jac := la.NewDense(2, 2)
	if err := ss.Jacobian([]float64{0.2, -0.1}, jac); err != nil {
		t.Fatal(err)
	}
	fd := la.NewDense(2, 2)
	if err := nonlin.FiniteDifferenceJacobian(ss, []float64{0.2, -0.1}, fd); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(jac.At(i, j)-fd.At(i, j)) > 1e-5 {
				t.Fatalf("scaled Jacobian mismatch at (%d,%d): %g vs %g", i, j, jac.At(i, j), fd.At(i, j))
			}
		}
	}
}

func TestMethodOfLinesDiffusionDecay(t *testing.T) {
	// A diffusion-dominated semi-discrete Burgers system integrated in the
	// classic hybrid-computer mode must decay toward zero and roughly
	// track a digital reference integration.
	b := newMOLProblem(t)
	acc := NewPrototype(9)
	u0 := b.InitialGuess()
	mol, err := acc.IntegrateODE(wrapODE(b.SemiDiscreteRHS()), b.Dim(), u0, MOLOptions{
		DynamicRange: 1.5,
		THorizon:     2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ode.RK4(wrapODE(b.SemiDiscreteRHS()), u0, 0, 2.0, ode.FixedOptions{Dt: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if la.Norm2(mol.U) >= la.Norm2(u0) {
		t.Fatalf("diffusive MOL run should decay: ‖u0‖=%g, ‖u(T)‖=%g", la.Norm2(u0), la.Norm2(mol.U))
	}
	for i := range mol.U {
		if math.Abs(mol.U[i]-ref.Y[i]) > 0.25 {
			t.Fatalf("MOL state %d = %g deviates from digital reference %g beyond hardware error",
				i, mol.U[i], ref.Y[i])
		}
	}
	if mol.WallSeconds != mol.TauReached*TimeConstantSeconds {
		t.Fatal("analog time bookkeeping wrong")
	}
}

func TestMethodOfLinesObserverAndCapacity(t *testing.T) {
	b := newMOLProblem(t)
	acc := NewPrototype(10)
	var samples int
	_, err := acc.IntegrateODE(wrapODE(b.SemiDiscreteRHS()), b.Dim(), b.InitialGuess(), MOLOptions{
		DynamicRange: 1.5,
		THorizon:     1.0,
		Observer:     func(tau float64, u []float64) { samples++ },
		DisableNoise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if samples == 0 {
		t.Fatal("observer never sampled the trajectory")
	}
	// Capacity: 9 variables exceed the prototype's 8 tiles.
	big := func(tm float64, y, dydt []float64) error {
		for i := range dydt {
			dydt[i] = -y[i]
		}
		return nil
	}
	if _, err := acc.IntegrateODE(big, 9, make([]float64, 9), MOLOptions{THorizon: 1}); !errors.Is(err, ErrInsufficientHardware) {
		t.Fatalf("expected ErrInsufficientHardware, got %v", err)
	}
	if _, err := acc.IntegrateODE(big, 8, make([]float64, 8), MOLOptions{}); err == nil {
		t.Fatal("expected error for missing THorizon")
	}
}

// newMOLProblem builds a small diffusion-dominated Burgers instance.
func newMOLProblem(t *testing.T) *pde.Burgers {
	t.Helper()
	b, err := pde.NewBurgers(2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b.UPrev[0], b.UPrev[3] = 0.8, -0.6
	b.VPrev[1], b.VPrev[2] = -0.7, 0.5
	return b
}

// wrapODE adapts the pde closure to ode.System.
func wrapODE(f func(t float64, w, dwdt []float64) error) ode.System {
	return func(t float64, y, dydt []float64) error { return f(t, y, dydt) }
}
