package analog

import (
	"errors"
	"fmt"
	"math"

	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
)

// DegreeReporter lets a nonlinear system advertise its polynomial degree so
// the dynamic-range scaler can normalise it. Systems with transcendental
// nonlinearities report a negative degree.
type DegreeReporter interface {
	// PolynomialDegree returns the total degree of the polynomial system,
	// or a negative value for non-polynomial (transcendental) systems.
	PolynomialDegree() int
}

// ErrTranscendental is returned for systems that cannot be range-scaled.
// §5.3: "Transcendental nonlinear functions cause problems for analog
// accelerators because there is no clear way to scale problem variables to
// fit in the analog accelerator dynamic range."
var ErrTranscendental = errors.New("analog: transcendental nonlinearity cannot be scaled into the dynamic range")

// PolySystem couples a nonlinear system with an explicit degree, the most
// convenient way to hand problems to the accelerator.
type PolySystem struct {
	nonlin.System
	Degree int
}

// PolynomialDegree reports the declared degree.
func (p PolySystem) PolynomialDegree() int { return p.Degree }

// degreeOf extracts the polynomial degree of sys, defaulting to 2 — the
// degree of every PDE stencil in the paper (Burgers and the semilinear
// reaction systems are quadratic).
func degreeOf(sys nonlin.System) (int, error) {
	if d, ok := sys.(DegreeReporter); ok {
		deg := d.PolynomialDegree()
		if deg < 0 {
			return 0, ErrTranscendental
		}
		if deg == 0 {
			return 0, fmt.Errorf("analog: degree-0 system is constant, nothing to solve")
		}
		return deg, nil
	}
	return 2, nil
}

// scaledSystem maps the problem F(u) = 0 with |u| ≤ s into the hardware's
// normalised coordinates w = u/s, |w| ≤ 1 (§5.3): G(w) = F(s·w)/s^deg. For
// a polynomial of degree `deg` this automatically scales the quadratic
// terms by 1, linear coefficients by 1/s^{deg−1}, and constants by 1/s^deg,
// exactly the proportionality rule the paper states. Roots are preserved:
// G(w) = 0 ⟺ F(s·w) = 0.
type scaledSystem struct {
	inner nonlin.System
	s     float64 // dynamic range of u
	deg   int
	fNorm float64 // 1/s^deg
	jNorm float64 // s/s^deg
	uBuf  []float64
}

func newScaledSystem(sys nonlin.System, dynamicRange float64) (*scaledSystem, error) {
	deg, err := degreeOf(sys)
	if err != nil {
		return nil, err
	}
	if dynamicRange <= 0 {
		dynamicRange = 1
	}
	sp := math.Pow(dynamicRange, float64(deg))
	return &scaledSystem{
		inner: sys,
		s:     dynamicRange,
		deg:   deg,
		fNorm: 1 / sp,
		jNorm: dynamicRange / sp,
		uBuf:  make([]float64, sys.Dim()),
	}, nil
}

func (ss *scaledSystem) Dim() int { return ss.inner.Dim() }

func (ss *scaledSystem) Eval(w, g []float64) error {
	for i, v := range w {
		ss.uBuf[i] = ss.s * v
	}
	if err := ss.inner.Eval(ss.uBuf, g); err != nil {
		return err
	}
	for i := range g {
		g[i] *= ss.fNorm
	}
	return nil
}

func (ss *scaledSystem) Jacobian(w []float64, jac *la.Dense) error {
	for i, v := range w {
		ss.uBuf[i] = ss.s * v
	}
	if err := ss.inner.Jacobian(ss.uBuf, jac); err != nil {
		return err
	}
	jac.Scale(ss.jNorm)
	return nil
}

// toProblem converts a hardware-space solution back to problem coordinates.
func (ss *scaledSystem) toProblem(w []float64) []float64 {
	u := make([]float64, len(w))
	for i, v := range w {
		u[i] = ss.s * v
	}
	return u
}

// quantize rounds x onto a signed grid with the given number of bits over
// the normalised range ±1, the behaviour of the chip's converters.
func quantize(x float64, bits int) float64 {
	if bits <= 0 {
		return x
	}
	steps := float64(int64(1) << (bits - 1))
	q := math.Round(x*steps) / steps
	if q > 1 {
		q = 1
	}
	if q < -1 {
		q = -1
	}
	return q
}

// clamp saturates x to ±limit, modelling the dynamic-range clip.
func clamp(x, limit float64) float64 {
	if x > limit {
		return limit
	}
	if x < -limit {
		return -limit
	}
	return x
}

// softClamp saturates smoothly: limit·tanh(x/limit). Real current-mode
// drivers compress gradually rather than clipping, and the smoothness
// matters for the simulation too — a hard clamp makes the flow's
// derivative discontinuous and forces the adaptive integrator into
// permanent step rejection near the saturation boundary.
func softClamp(x, limit float64) float64 {
	return limit * math.Tanh(x/limit)
}
