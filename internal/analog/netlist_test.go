package analog

import (
	"errors"
	"math"
	"testing"
)

// allocOne claims one component of the given kind from tile t.
func allocOne(t *testing.T, tile *Tile, kind string) *Component {
	t.Helper()
	cs, err := tile.alloc(kind, 1)
	if err != nil {
		t.Fatal(err)
	}
	return cs[0]
}

func TestNetlistIntraTileWiring(t *testing.T) {
	f := NewFabric(Config{Seed: 30})
	f.Calibrate()
	nl := f.NewNetlist()
	tiles := f.Tiles()
	mul := allocOne(t, tiles[0], KindMultiplier)
	integ := allocOne(t, tiles[0], KindIntegrator)
	out, err := nl.PortOf(0, mul, "mul.out", PortOut)
	if err != nil {
		t.Fatal(err)
	}
	in, err := nl.PortOf(0, integ, "int.in", PortIn)
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Connect(out, in); err != nil {
		t.Fatalf("intra-tile wiring must always route: %v", err)
	}
	if len(nl.Connections()) != 1 {
		t.Fatal("connection not recorded")
	}
}

func TestNetlistNeighbourOnlyAcrossTiles(t *testing.T) {
	f := NewFabric(Config{Seed: 31})
	f.Calibrate()
	nl := f.NewNetlist()
	tiles := f.Tiles()
	m0 := allocOne(t, tiles[0], KindMultiplier)
	i1 := allocOne(t, tiles[1], KindIntegrator)
	i5 := allocOne(t, tiles[5], KindIntegrator)

	out, _ := nl.PortOf(0, m0, "m0.out", PortOut)
	inNear, _ := nl.PortOf(1, i1, "i1.in", PortIn)
	inFar, _ := nl.PortOf(5, i5, "i5.in", PortIn)
	if err := nl.Connect(out, inNear); err != nil {
		t.Fatalf("neighbouring tiles must route: %v", err)
	}
	if err := nl.Connect(out, inFar); !errors.Is(err, ErrRouting) {
		t.Fatalf("distant tiles must be rejected, got %v", err)
	}
}

func TestNetlistFanoutBudget(t *testing.T) {
	f := NewFabric(Config{Seed: 32})
	f.Calibrate()
	nl := f.NewNetlist()
	tiles := f.Tiles()
	mul := allocOne(t, tiles[0], KindMultiplier)
	out, _ := nl.PortOf(0, mul, "out", PortOut)
	// First sink free; each additional sink consumes one of the tile's 8
	// fanouts; the 10th sink (9 fanouts needed) must fail.
	var lastErr error
	connected := 0
	for k := 0; k < 10; k++ {
		in, _ := nl.PortOf(0, mul, "in", PortIn) // sink identity does not matter for the budget
		lastErr = nl.Connect(out, in)
		if lastErr == nil {
			connected++
		}
	}
	if connected != 9 { // 1 free + 8 fanouts
		t.Fatalf("expected 9 routable sinks (1 direct + 8 fanouts), got %d (last err %v)", connected, lastErr)
	}
	if !errors.Is(lastErr, ErrRouting) {
		t.Fatalf("exhausted fanouts should report ErrRouting, got %v", lastErr)
	}
}

func TestNetlistLifecycle(t *testing.T) {
	f := NewFabric(Config{Seed: 33})
	nl := f.NewNetlist()
	if err := nl.CfgCommit(); err == nil {
		t.Fatal("commit before calibration must fail")
	}
	f.Calibrate()
	if err := nl.ExecStart(); !errors.Is(err, ErrNotCommitted) {
		t.Fatalf("exec before commit must fail with ErrNotCommitted, got %v", err)
	}
	if err := nl.CfgCommit(); err != nil {
		t.Fatal(err)
	}
	if err := nl.CfgCommit(); err == nil {
		t.Fatal("double commit must fail")
	}
	if err := nl.ExecStart(); err != nil {
		t.Fatal(err)
	}
	if !nl.Running() {
		t.Fatal("should be running")
	}
	if err := nl.ExecStart(); err == nil {
		t.Fatal("double start must fail")
	}
	if err := nl.ExecStop(); err != nil {
		t.Fatal(err)
	}
	if err := nl.ExecStop(); err == nil {
		t.Fatal("double stop must fail")
	}
	// Wiring after commit is rejected.
	tiles := f.Tiles()
	mul := allocOne(t, tiles[0], KindMultiplier)
	out, _ := nl.PortOf(0, mul, "out", PortOut)
	in, _ := nl.PortOf(0, mul, "in", PortIn)
	if err := nl.Connect(out, in); err == nil {
		t.Fatal("wiring a committed configuration must fail")
	}
}

func TestSetDACQuantisesAndOffsets(t *testing.T) {
	f := NewFabric(Config{Seed: 34})
	f.Calibrate()
	nl := f.NewNetlist()
	dac := allocOne(t, f.Tiles()[0], KindDAC)
	got, err := nl.SetDAC(dac, 0.123456)
	if err != nil {
		t.Fatal(err)
	}
	want := quantize(0.123456, f.Config.DACBits) + dac.Offset
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("DAC output %g, want %g", got, want)
	}
	if _, err := nl.SetDAC(dac, 1.5); err == nil {
		t.Fatal("out-of-range DAC code must be rejected")
	}
	mul := allocOne(t, f.Tiles()[0], KindMultiplier)
	if _, err := nl.SetDAC(mul, 0.5); err == nil {
		t.Fatal("SetDAC on a multiplier must be rejected")
	}
}
