package adapt

import (
	"context"
	"sync"
	"testing"
	"time"
)

// tick is a shorthand for driving the controller with explicit signals.
func tick(t *testing.T, c *Controller, s Signals) Decision {
	t.Helper()
	return c.Tick(s)
}

func TestScaleUpOnQueueDepth(t *testing.T) {
	c := New(Config{Min: 1, Max: 4, ScaleUpQueue: 4, CooldownTicks: 2})
	if d := tick(t, c, Signals{Workers: 1, QueueDepth: 3}); d.Reason != "" {
		t.Fatalf("queue below threshold scaled: %+v", d)
	}
	d := tick(t, c, Signals{Workers: 1, QueueDepth: 4})
	if d.Reason != ReasonQueue || d.Target != 2 {
		t.Fatalf("queue at threshold: got %+v, want target 2 reason queue", d)
	}
}

func TestScaleUpOnShedDelta(t *testing.T) {
	c := New(Config{Min: 1, Max: 4})
	// First tick establishes the baseline; a pre-existing cumulative shed
	// count is history, not evidence.
	if d := tick(t, c, Signals{Workers: 1, Sheds: 100}); d.Reason != "" {
		t.Fatalf("baseline tick scaled: %+v", d)
	}
	d := tick(t, c, Signals{Workers: 1, Sheds: 101})
	if d.Reason != ReasonShed || d.Target != 2 {
		t.Fatalf("shed delta: got %+v, want target 2 reason shed", d)
	}
	// No new sheds: no more scaling.
	tick(t, c, Signals{Workers: 2, Sheds: 101})
	tick(t, c, Signals{Workers: 2, Sheds: 101})
	if d := tick(t, c, Signals{Workers: 2, Sheds: 101}); d.Reason != "" {
		t.Fatalf("stale shed count kept scaling: %+v", d)
	}
}

func TestScaleUpOnLatency(t *testing.T) {
	c := New(Config{Min: 1, Max: 4, LatencyHigh: 0.100})
	tick(t, c, Signals{Workers: 1})
	// 5 solves at 200ms mean in one tick.
	d := tick(t, c, Signals{Workers: 1, LatencySum: 1.0, LatencyCount: 5})
	if d.Reason != ReasonLatency || d.Target != 2 {
		t.Fatalf("high latency: got %+v, want target 2 reason latency", d)
	}
	// Next interval is fast again.
	tick(t, c, Signals{Workers: 2, LatencySum: 1.0, LatencyCount: 5})
	if d := tick(t, c, Signals{Workers: 2, LatencySum: 1.05, LatencyCount: 10}); d.Reason != "" {
		t.Fatalf("fast interval scaled: %+v", d)
	}
}

func TestCooldownBlocksConsecutiveScaleUps(t *testing.T) {
	c := New(Config{Min: 1, Max: 8, ScaleUpQueue: 2, CooldownTicks: 3})
	if d := tick(t, c, Signals{Workers: 1, QueueDepth: 10}); d.Reason == "" {
		t.Fatal("first overload tick held")
	}
	// Cooldown: the next two overloaded ticks hold.
	for i := 0; i < 2; i++ {
		if d := tick(t, c, Signals{Workers: 2, QueueDepth: 10}); d.Reason != "" {
			t.Fatalf("tick %d inside cooldown scaled: %+v", i, d)
		}
	}
	if d := tick(t, c, Signals{Workers: 2, QueueDepth: 10}); d.Reason == "" {
		t.Fatal("tick after cooldown held")
	}
}

func TestMaxClamp(t *testing.T) {
	c := New(Config{Min: 1, Max: 2, ScaleUpQueue: 1, CooldownTicks: 1, UpStep: 4})
	d := tick(t, c, Signals{Workers: 1, QueueDepth: 5})
	if d.Target != 2 {
		t.Fatalf("UpStep overshot Max: %+v", d)
	}
	tick(t, c, Signals{Workers: 2, QueueDepth: 5})
	if d := tick(t, c, Signals{Workers: 2, QueueDepth: 5}); d.Reason != "" {
		t.Fatalf("scaled past Max: %+v", d)
	}
}

func TestIdleWindowScalesDownOneAtATime(t *testing.T) {
	c := New(Config{Min: 1, Max: 4, IdleTicks: 3})
	for i := 0; i < 2; i++ {
		if d := tick(t, c, Signals{Workers: 3}); d.Reason != "" {
			t.Fatalf("idle tick %d scaled early: %+v", i, d)
		}
	}
	d := tick(t, c, Signals{Workers: 3})
	if d.Reason != ReasonIdle || d.Target != 2 {
		t.Fatalf("idle window: got %+v, want target 2 reason idle", d)
	}
	// The countdown restarts after each down-step.
	for i := 0; i < 2; i++ {
		if d := tick(t, c, Signals{Workers: 2}); d.Reason != "" {
			t.Fatalf("post-shrink idle tick %d scaled early: %+v", i, d)
		}
	}
	if d := tick(t, c, Signals{Workers: 2}); d.Reason != ReasonIdle || d.Target != 1 {
		t.Fatalf("second idle window: got %+v", d)
	}
	// At Min the idle window never fires.
	for i := 0; i < 5; i++ {
		if d := tick(t, c, Signals{Workers: 1}); d.Reason != "" {
			t.Fatalf("scaled below Min: %+v", d)
		}
	}
}

func TestBusyTicksResetIdleWindow(t *testing.T) {
	c := New(Config{Min: 1, Max: 4, ScaleUpQueue: 100, IdleTicks: 3})
	tick(t, c, Signals{Workers: 2})
	tick(t, c, Signals{Workers: 2})
	// Fully-utilised tick (inflight == workers) is not idle.
	tick(t, c, Signals{Workers: 2, Inflight: 2})
	for i := 0; i < 2; i++ {
		if d := tick(t, c, Signals{Workers: 2}); d.Reason != "" {
			t.Fatalf("idle window survived a busy tick: %+v", d)
		}
	}
	if d := tick(t, c, Signals{Workers: 2}); d.Reason != ReasonIdle {
		t.Fatalf("idle window never refired: %+v", d)
	}
}

// fakePool records Resize calls and plays back scripted signals.
type fakePool struct {
	mu      sync.Mutex
	signals Signals
	calls   []Decision
}

func (p *fakePool) Observe() Signals {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.signals
}

func (p *fakePool) Resize(target int, reason string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls = append(p.calls, Decision{Target: target, Reason: reason})
	p.signals.Workers = target
	return target
}

// TestRunDrivesPoolFromFakeTicker pins the whole loop — observe, decide,
// resize — against a hand-fed tick channel: no clock, no sleeps.
func TestRunDrivesPoolFromFakeTicker(t *testing.T) {
	pool := &fakePool{signals: Signals{Workers: 1, QueueDepth: 10}}
	ticks := make(chan time.Time)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Run(ctx, ticks, New(Config{Min: 1, Max: 2, ScaleUpQueue: 2, CooldownTicks: 1}), pool)
	}()
	ticks <- time.Time{}
	cancel()
	<-done

	pool.mu.Lock()
	defer pool.mu.Unlock()
	if len(pool.calls) != 1 || pool.calls[0] != (Decision{Target: 2, Reason: ReasonQueue}) {
		t.Fatalf("Run resize calls = %+v, want one queue-driven resize to 2", pool.calls)
	}
}
