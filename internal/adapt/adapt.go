// Package adapt is the serving stack's capacity controller: a tick-driven
// autoscaler that grows and shrinks a solve worker pool between a
// configured floor and ceiling, reacting to the overload signals the
// metrics plane already measures (queue depth, shed rate, solve latency)
// with explicit hysteresis so the pool never flaps.
//
// The controller owns no clock. Like serve/clock.go quarantines the
// serving stack's wall-time reads, adapt quarantines *pacing*: callers
// hand Run an externally-owned tick channel (a time.Ticker in pdeserved, a
// plain channel in tests), and Tick itself is a pure function of the
// observed signals and the controller's state. That keeps the package
// walltime-clean under pdevet, deterministic under test, and honest about
// what a scaling decision depends on — signal deltas between ticks, never
// elapsed seconds.
package adapt

import (
	"context"
	"time"
)

// Signals is one observation of the pool, taken at a tick. Counter-shaped
// fields (Sheds, LatencySum, LatencyCount) are cumulative since process
// start; the controller differentiates them across ticks itself, so
// observers can hand over raw metric values.
type Signals struct {
	// Workers is the current pool size.
	Workers int
	// QueueDepth is the number of admitted requests waiting for a worker.
	QueueDepth int
	// Inflight is the number of solves executing right now.
	Inflight int
	// Sheds is the cumulative count of requests rejected with 429 because
	// the admission queue was full.
	Sheds uint64
	// LatencySum and LatencyCount are the cumulative solve-latency
	// histogram sum (seconds) and observation count; their per-tick deltas
	// give the mean solve latency of the interval.
	LatencySum   float64
	LatencyCount uint64
}

// Config tunes the controller's hysteresis. The zero value is usable: every
// field has a default chosen for the tick cadence pdeserved runs (250ms).
type Config struct {
	// Min and Max bound the worker pool. Defaults: 1 and Min.
	Min, Max int
	// ScaleUpQueue is the queue depth at or above which a tick votes to
	// scale up. Default 4.
	ScaleUpQueue int
	// LatencyHigh, when positive, is the per-tick mean solve latency (in
	// seconds) at or above which a tick votes to scale up. Default 0
	// (disabled): queue depth and sheds are direct overload evidence,
	// latency is workload-dependent and opt-in.
	LatencyHigh float64
	// UpStep is how many workers one scale-up adds. Default 1.
	UpStep int
	// CooldownTicks is the minimum number of ticks between scale-ups, so
	// one burst cannot ratchet the pool straight to Max before the added
	// capacity has had a tick to absorb it. Default 2.
	CooldownTicks int
	// IdleTicks is how many consecutive idle ticks (empty queue, no new
	// sheds, spare workers) it takes to retire one worker. Scale-down is
	// deliberately an order of magnitude slower than scale-up: capacity is
	// cheap, cold queues are not. Default 20.
	IdleTicks int
}

func (c *Config) defaults() {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.ScaleUpQueue <= 0 {
		c.ScaleUpQueue = 4
	}
	if c.UpStep <= 0 {
		c.UpStep = 1
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 2
	}
	if c.IdleTicks <= 0 {
		c.IdleTicks = 20
	}
}

// Reasons a Decision carries; they become the reason label of the server's
// resize counter.
const (
	ReasonShed    = "shed"    // requests were 429-shed since the last tick
	ReasonQueue   = "queue"   // queue depth at or above the scale-up threshold
	ReasonLatency = "latency" // per-tick mean solve latency above LatencyHigh
	ReasonIdle    = "idle"    // the idle window elapsed with spare capacity
)

// Decision is the outcome of one tick. A zero Reason means hold.
type Decision struct {
	Target int
	Reason string
}

// Controller is the autoscaler state machine. Not safe for concurrent use;
// Run (or any single goroutine) must own it.
type Controller struct {
	cfg      Config
	prev     Signals
	havePrev bool
	cooldown int // ticks left before the next scale-up is allowed
	idle     int // consecutive idle ticks observed
}

// New builds a controller.
func New(cfg Config) *Controller {
	cfg.defaults()
	return &Controller{cfg: cfg}
}

// Tick consumes one observation and decides. Scale-up evidence (sheds,
// queue depth, latency) wins over the idle countdown and resets it; a hold
// is returned while the cooldown runs or the pool is already at a bound.
func (c *Controller) Tick(s Signals) Decision {
	shedDelta := uint64(0)
	latCount := uint64(0)
	latSum := 0.0
	if c.havePrev {
		shedDelta = s.Sheds - c.prev.Sheds
		latCount = s.LatencyCount - c.prev.LatencyCount
		latSum = s.LatencySum - c.prev.LatencySum
	}
	c.prev = s
	c.havePrev = true
	if c.cooldown > 0 {
		c.cooldown--
	}

	reason := ""
	switch {
	case shedDelta > 0:
		reason = ReasonShed
	case s.QueueDepth >= c.cfg.ScaleUpQueue:
		reason = ReasonQueue
	case c.cfg.LatencyHigh > 0 && latCount > 0 && latSum/float64(latCount) >= c.cfg.LatencyHigh:
		reason = ReasonLatency
	}
	if reason != "" {
		c.idle = 0
		if s.Workers >= c.cfg.Max || c.cooldown > 0 {
			return Decision{}
		}
		c.cooldown = c.cfg.CooldownTicks
		target := s.Workers + c.cfg.UpStep
		if target > c.cfg.Max {
			target = c.cfg.Max
		}
		return Decision{Target: target, Reason: reason}
	}

	if s.QueueDepth == 0 && shedDelta == 0 && s.Inflight < s.Workers {
		c.idle++
	} else {
		c.idle = 0
	}
	if c.idle >= c.cfg.IdleTicks && s.Workers > c.cfg.Min {
		c.idle = 0
		return Decision{Target: s.Workers - 1, Reason: ReasonIdle}
	}
	return Decision{}
}

// Pool is the resizable worker pool the controller drives. serve.Server
// implements it.
type Pool interface {
	// Observe samples the pool's current signals.
	Observe() Signals
	// Resize moves the pool toward target workers (clamped to the pool's
	// own bounds) and returns the achieved size. The reason tags the
	// pool's resize accounting.
	Resize(target int, reason string) int
}

// Run drives the controller from an externally-owned tick source until ctx
// is cancelled. The caller owns the ticker (and its Stop), so adapt itself
// never touches a clock:
//
//	ticker := time.NewTicker(interval)
//	defer ticker.Stop()
//	go adapt.Run(ctx, ticker.C, adapt.New(cfg), server)
func Run(ctx context.Context, ticks <-chan time.Time, c *Controller, p Pool) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticks:
			if d := c.Tick(p.Observe()); d.Reason != "" {
				p.Resize(d.Target, d.Reason)
			}
		}
	}
}
