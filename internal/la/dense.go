// Numerical kernel file: the exact zero comparisons below are pivot,
// breakdown and structural-sparsity tests against values that are zero by
// assignment or would divide by zero — exactness is the point.
//pdevet:allow floateq pivot/breakdown/structural zero tests are exact by construction

// Package la provides the dense and sparse linear-algebra substrate used by
// every other layer of the hybrid solver: dense factorizations for the small
// Newton systems that fit on the analog accelerator model, and sparse storage
// with direct and iterative solvers standing in for the GPU linear-algebra
// kernels the paper offloads to (cuSolver QR, preconditioned CG, BiCGSTAB).
//
// All code is self-contained and uses only the standard library.
package la

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("la: invalid dense dimensions %d×%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFrom builds a matrix from a slice of rows. Each row must have the
// same length.
func NewDenseFrom(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("la: ragged row %d: len %d, want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows reports the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add accumulates v into the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a view of row i (shared storage).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Zero resets all elements to zero, retaining storage.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Scale multiplies every element by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// MulVec computes dst = M·x. dst must have length Rows and x length Cols;
// dst and x must not alias.
func (m *Dense) MulVec(dst, x []float64) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("la: MulVec dimension mismatch: %d×%d by %d into %d", m.rows, m.cols, len(x), len(dst)))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Mul computes dst = A·B, allocating dst.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("la: Mul dimension mismatch: %d×%d by %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	c := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .6g ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Vector helpers. These operate on plain []float64 so callers do not need a
// wrapper type for the hot paths.

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("la: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled to avoid overflow for large entries.
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the max-abs norm of x.
func NormInf(x []float64) float64 {
	max := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Axpy computes y += a·x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("la: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Copy duplicates src into a new slice.
func Copy(src []float64) []float64 {
	dst := make([]float64, len(src))
	copy(dst, src)
	return dst
}

// Sub computes dst = x − y element-wise.
func Sub(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("la: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}
