package la

import (
	"math"
	"math/rand"
	"testing"
)

// laplacian1D builds the standard tridiagonal [−1, 2, −1] matrix, an SPD
// stencil matrix representative of the PDE Jacobians.
func laplacian1D(n int) *CSR {
	b := NewCOO(n, n)
	for i := 0; i < n; i++ {
		b.Append(i, i, 2)
		if i > 0 {
			b.Append(i, i-1, -1)
		}
		if i < n-1 {
			b.Append(i, i+1, -1)
		}
	}
	return b.ToCSR()
}

// laplacian2D builds the 5-point Poisson matrix on an nx×ny interior grid.
func laplacian2D(nx, ny int) *CSR {
	n := nx * ny
	b := NewCOO(n, n)
	id := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			r := id(i, j)
			b.Append(r, r, 4)
			if i > 0 {
				b.Append(r, id(i-1, j), -1)
			}
			if i < nx-1 {
				b.Append(r, id(i+1, j), -1)
			}
			if j > 0 {
				b.Append(r, id(i, j-1), -1)
			}
			if j < ny-1 {
				b.Append(r, id(i, j+1), -1)
			}
		}
	}
	return b.ToCSR()
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestCOODuplicatesSummed(t *testing.T) {
	b := NewCOO(2, 2)
	b.Append(0, 0, 1)
	b.Append(0, 0, 2)
	b.Append(1, 1, 5)
	m := b.ToCSR()
	if m.At(0, 0) != 3 {
		t.Fatalf("duplicate entries not summed: got %g", m.At(0, 0))
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewCOO(6, 6)
	d := NewDense(6, 6)
	for k := 0; k < 18; k++ {
		i, j := rng.Intn(6), rng.Intn(6)
		v := rng.NormFloat64()
		b.Append(i, j, v)
		d.Add(i, j, v)
	}
	m := b.ToCSR()
	x := randomVec(rng, 6)
	got := make([]float64, 6)
	want := make([]float64, 6)
	m.MulVec(got, x)
	d.MulVec(want, x)
	vecAlmostEq(t, got, want, 1e-12)
	// ToDense round trip.
	dd := m.ToDense()
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if !almostEq(dd.At(i, j), d.At(i, j), 1e-14) {
				t.Fatalf("ToDense mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCSRColumnsSortedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := NewCOO(10, 10)
	for k := 0; k < 60; k++ {
		b.Append(rng.Intn(10), rng.Intn(10), rng.NormFloat64())
	}
	m := b.ToCSR()
	for i := 0; i < m.Rows(); i++ {
		cols, _ := m.RowNNZ(i)
		for k := 1; k < len(cols); k++ {
			if cols[k] <= cols[k-1] {
				t.Fatalf("row %d columns not strictly increasing: %v", i, cols)
			}
		}
	}
}

func TestCSRTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewCOO(7, 5)
	for k := 0; k < 20; k++ {
		b.Append(rng.Intn(7), rng.Intn(5), rng.NormFloat64())
	}
	m := b.ToCSR()
	mt := m.Transpose()
	// (Aᵀ)ᵢⱼ = Aⱼᵢ and y·(A·x) = x·(Aᵀ·y).
	x := randomVec(rng, 5)
	y := randomVec(rng, 7)
	ax := make([]float64, 7)
	aty := make([]float64, 5)
	m.MulVec(ax, x)
	mt.MulVec(aty, y)
	if !almostEq(Dot(y, ax), Dot(x, aty), 1e-12) {
		t.Fatalf("adjoint identity failed: %g vs %g", Dot(y, ax), Dot(x, aty))
	}
}

func TestSetExisting(t *testing.T) {
	m := laplacian1D(4)
	m.SetExisting(1, 2, -9)
	if m.At(1, 2) != -9 {
		t.Fatal("SetExisting did not overwrite")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for entry outside pattern")
		}
	}()
	m.SetExisting(0, 3, 1)
}

func TestCGOnLaplacian(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := laplacian2D(8, 8)
	want := randomVec(rng, 64)
	b := make([]float64, 64)
	a.MulVec(b, want)
	x := make([]float64, 64)
	st, err := CG(a, x, b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("CG did not converge")
	}
	vecAlmostEq(t, x, want, 1e-7)
}

func TestPCGConvergesFasterThanCG(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	// A badly scaled SPD system: diagonal scaling helps a lot here.
	n := 100
	bld := NewCOO(n, n)
	for i := 0; i < n; i++ {
		scale := math.Pow(10, float64(i%4))
		bld.Append(i, i, 2*scale)
		if i > 0 {
			bld.Append(i, i-1, -0.5)
			bld.Append(i-1, i, -0.5)
		}
	}
	a := bld.ToCSR()
	want := randomVec(rng, n)
	b := make([]float64, n)
	a.MulVec(b, want)

	xPlain := make([]float64, n)
	stPlain, err := CG(a, xPlain, b, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	xPre := make([]float64, n)
	stPre, err := CG(a, xPre, b, CGOptions{Tol: 1e-10, M: NewJacobi(a)})
	if err != nil {
		t.Fatal(err)
	}
	if stPre.Iterations >= stPlain.Iterations {
		t.Fatalf("Jacobi PCG (%d iters) not faster than CG (%d iters)", stPre.Iterations, stPlain.Iterations)
	}
	vecAlmostEq(t, xPre, want, 1e-6)
}

func TestBiCGSTABOnNonsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Advection-diffusion-like nonsymmetric stencil.
	n := 80
	bld := NewCOO(n, n)
	for i := 0; i < n; i++ {
		bld.Append(i, i, 3)
		if i > 0 {
			bld.Append(i, i-1, -1.5) // upwind bias makes it nonsymmetric
		}
		if i < n-1 {
			bld.Append(i, i+1, -0.5)
		}
	}
	a := bld.ToCSR()
	want := randomVec(rng, n)
	b := make([]float64, n)
	a.MulVec(b, want)
	x := make([]float64, n)
	st, err := BiCGSTAB(a, x, b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("BiCGSTAB did not converge")
	}
	vecAlmostEq(t, x, want, 1e-6)
}

func TestBiCGSTABWithILU0(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := laplacian2D(10, 10)
	want := randomVec(rng, 100)
	b := make([]float64, 100)
	a.MulVec(b, want)
	ilu, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 100)
	stPre, err := BiCGSTAB(a, x, b, CGOptions{Tol: 1e-12, M: ilu})
	if err != nil {
		t.Fatal(err)
	}
	vecAlmostEq(t, x, want, 1e-6)
	x2 := make([]float64, 100)
	stPlain, err := BiCGSTAB(a, x2, b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if stPre.Iterations >= stPlain.Iterations {
		t.Fatalf("ILU0 BiCGSTAB (%d) not faster than plain (%d)", stPre.Iterations, stPlain.Iterations)
	}
}

func TestSORGaussSeidel(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := laplacian1D(30)
	want := randomVec(rng, 30)
	b := make([]float64, 30)
	a.MulVec(b, want)
	x := make([]float64, 30)
	st, err := SOR(a, x, b, SOROptions{Omega: 1, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("Gauss-Seidel did not converge")
	}
	vecAlmostEq(t, x, want, 1e-5)
	// Over-relaxation should converge in fewer sweeps on this matrix.
	x2 := make([]float64, 30)
	st2, err := SOR(a, x2, b, SOROptions{Omega: 1.8, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Iterations >= st.Iterations {
		t.Fatalf("SOR ω=1.8 (%d sweeps) not faster than GS (%d sweeps)", st2.Iterations, st.Iterations)
	}
}

func TestIterativeZeroRHS(t *testing.T) {
	a := laplacian1D(5)
	x := []float64{1, 1, 1, 1, 1}
	if _, err := CG(a, x, make([]float64, 5), CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	if Norm2(x) > 1e-6 {
		t.Fatalf("CG with zero RHS should drive x to 0, got ‖x‖ = %g", Norm2(x))
	}
}

func TestSpectralRadiusOfLaplacian(t *testing.T) {
	n := 50
	a := laplacian1D(n)
	// Eigenvalues are 2−2cos(kπ/(n+1)); max ≈ 4.
	got := SpectralRadiusEstimate(a, 200)
	want := 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("spectral radius estimate %g, want ≈ %g", got, want)
	}
}
