// Numerical kernel file: the exact zero comparisons below are pivot,
// breakdown and structural-sparsity tests against values that are zero by
// assignment or would divide by zero — exactness is the point.
//pdevet:allow floateq pivot/breakdown/structural zero tests are exact by construction

package la

import (
	"fmt"
	"math"

	"hybridpde/internal/par"
)

// BandLU is an LU factorization with partial pivoting of a banded matrix,
// the workhorse direct solver for the stencil Jacobians produced by the PDE
// discretizations. With nodes interleaved (u,v per grid point) the 2-D
// Burgers Jacobian has bandwidth O(grid width), so the factorization costs
// O(n·b²) instead of O(n³) — this plays the role of the sparse direct
// (cuSolver QR) kernel of the paper's GPU baseline.
//
// Storage is row-contiguous: working row i holds matrix columns
// i−kl … i+ku+kl at data[i*w : (i+1)*w], w = 2·kl+ku+1; entry (i, j) sits
// at offset j−i+kl. The extra kl columns per row absorb fill from row
// interchanges, and every elimination update is unit-stride.
type BandLU struct {
	n, kl, ku int
	w         int // row width = 2·kl+ku+1
	data      []float64
	piv       []int
	// FactorOps counts the floating-point multiply-adds performed, so the
	// performance models can price the solve.
	FactorOps int64
	// pool, when set, fans the trailing-row updates of each pivot step
	// across its workers; upd/opsPartial are the persistent runner and the
	// per-chunk op counters (int64 partials sum exactly, so FactorOps is
	// identical at every worker count).
	pool       *par.Pool
	upd        bandUpdateRun
	opsPartial []int64
}

// bandParGrain is the minimum multiply-adds a parallel chunk of trailing-row
// updates must carry; below it one pivot step's fan-out costs more than it
// saves and the step runs serial.
const bandParGrain = 2048

// SetPool attaches a worker pool to the factorization: the trailing
// submatrix updates of each pivot step (rows k+1..k+kl, which are disjoint
// working rows) fan out across it. nil restores serial execution. Results —
// factors, pivots and FactorOps — are bit-identical at every pool size. The
// pool is used only during Factor* calls, which must not run concurrently.
func (f *BandLU) SetPool(p *par.Pool) {
	f.pool = p
	f.upd.f = f
	if n := p.Procs(); len(f.opsPartial) < n {
		f.opsPartial = make([]int64, n)
	}
}

// bandUpdateRun is the per-pivot-step elimination runner: index t of the
// partitioned range maps to working row i = k+1+t, and each such row's band
// storage (data[i*w … i*w+w)) is written by exactly one chunk while row k is
// only read — so any fan-out produces the serial loop's bits.
type bandUpdateRun struct {
	f     *BandLU
	k     int
	span  int
	pivot float64
}

func (r *bandUpdateRun) Run(chunk, lo, hi int) {
	f := r.f
	w, kl, k := f.w, f.kl, r.k
	data := f.data
	rowK := data[k*w+kl : k*w+kl+r.span]
	var ops int64
	for t := lo; t < hi; t++ {
		i := k + 1 + t
		base := i*w + k - i + kl
		m := data[base] / r.pivot
		data[base] = m
		if m == 0 {
			continue
		}
		rowI := data[base : base+r.span]
		for s := 1; s < r.span; s++ {
			rowI[s] -= m * rowK[s]
		}
		ops += int64(r.span - 1)
	}
	f.opsPartial[chunk] += ops
}

// Bandwidths returns the lower and upper bandwidths of a sparse matrix.
func Bandwidths(a *CSR) (kl, ku int) {
	for i := 0; i < a.Rows(); i++ {
		cols, _ := a.RowNNZ(i)
		for _, j := range cols {
			if d := i - j; d > kl {
				kl = d
			}
			if d := j - i; d > ku {
				ku = d
			}
		}
	}
	return kl, ku
}

// NewBandLUWorkspace preallocates a factorization workspace for repeated
// factorizations of same-shaped matrices (the analog circuit simulation
// factors one Jacobian per derivative evaluation).
func NewBandLUWorkspace(n, kl, ku int) *BandLU {
	w := 2*kl + ku + 1
	return &BandLU{n: n, kl: kl, ku: ku, w: w, data: make([]float64, n*w), piv: make([]int, n)}
}

// FactorBandLU factors the banded matrix a (square CSR) with partial
// pivoting, allocating a fresh workspace.
func FactorBandLU(a *CSR) (*BandLU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("la: band LU of non-square %d×%d matrix", a.Rows(), a.Cols())
	}
	kl, ku := Bandwidths(a)
	f := NewBandLUWorkspace(a.Rows(), kl, ku)
	return f, f.FactorFrom(a)
}

// FactorFrom loads a into the workspace and factors it. a's dimensions and
// bandwidths must fit the workspace.
func (f *BandLU) FactorFrom(a *CSR) error {
	if a.Rows() != f.n || a.Cols() != f.n {
		return fmt.Errorf("la: band workspace is %d×%d, matrix is %d×%d", f.n, f.n, a.Rows(), a.Cols())
	}
	for i := range f.data {
		f.data[i] = 0
	}
	f.FactorOps = 0
	for i := 0; i < f.n; i++ {
		cols, vals := a.RowNNZ(i)
		row := f.data[i*f.w : (i+1)*f.w]
		for k, j := range cols {
			off := j - i + f.kl
			if off < 0 || off > f.kl+f.ku {
				// The entry lies outside the declared band (only possible
				// when the workspace was sized for a narrower matrix).
				return fmt.Errorf("la: entry (%d,%d) outside band kl=%d ku=%d", i, j, f.kl, f.ku)
			}
			row[off] = vals[k]
		}
	}
	return f.factor()
}

func (f *BandLU) factor() error {
	n, kl, ku, w := f.n, f.kl, f.ku, f.w
	data := f.data
	var ops int64
	procs := f.pool.Procs()
	for k := 0; k < n; k++ {
		// Partial pivot among rows k..min(k+kl, n-1); element (i, k) is
		// at data[i*w + k-i+kl].
		iHi := min(k+kl, n-1)
		iMax := k
		vMax := math.Abs(data[k*w+kl])
		for i := k + 1; i <= iHi; i++ {
			if v := math.Abs(data[i*w+k-i+kl]); v > vMax {
				iMax, vMax = i, v
			}
		}
		if vMax == 0 {
			return ErrSingular
		}
		f.piv[k] = iMax
		jHi := min(k+ku+kl, n-1) // swaps and updates touch the fill region
		span := jHi - k + 1
		rowK := data[k*w+kl : k*w+kl+span] // columns k..jHi of row k
		if iMax != k {
			rowM := data[iMax*w+k-iMax+kl : iMax*w+k-iMax+kl+span]
			for t := 0; t < span; t++ {
				rowK[t], rowM[t] = rowM[t], rowK[t]
			}
		}
		pivot := rowK[0]
		rows := iHi - k
		if procs > 1 && rows > 1 && rows*span >= bandParGrain {
			// Pivot search and swap above stay serial (they scan shared
			// state); the per-row eliminations are disjoint and fan out.
			f.upd.k, f.upd.span, f.upd.pivot = k, span, pivot
			grain := bandParGrain / span
			if grain < 1 {
				grain = 1
			}
			f.pool.Run(rows, grain, &f.upd)
			continue
		}
		for i := k + 1; i <= iHi; i++ {
			base := i*w + k - i + kl
			m := data[base] / pivot
			data[base] = m
			if m == 0 {
				continue
			}
			rowI := data[base : base+span]
			for t := 1; t < span; t++ {
				rowI[t] -= m * rowK[t]
			}
			ops += int64(span - 1)
		}
	}
	// Fold the parallel chunks' op counts: integer partials, so the sum is
	// exact and order-free.
	for i := range f.opsPartial {
		ops += f.opsPartial[i]
		f.opsPartial[i] = 0
	}
	f.FactorOps = ops
	return nil
}

// Reset reshapes the workspace for an n×n matrix with bandwidths (kl, ku),
// reusing the backing storage whenever its capacity suffices. The
// factorization contents become undefined until the next Factor* call.
func (f *BandLU) Reset(n, kl, ku int) {
	w := 2*kl + ku + 1
	f.n, f.kl, f.ku, f.w = n, kl, ku, w
	if cap(f.data) < n*w {
		f.data = make([]float64, n*w)
	}
	f.data = f.data[:n*w]
	if cap(f.piv) < n {
		f.piv = make([]int, n)
	}
	f.piv = f.piv[:n]
	f.FactorOps = 0
}

// FactorBandLUInto factors the banded matrix a into the caller-owned
// workspace f using the supplied bandwidths, reshaping f as needed without
// reallocating once warm. Callers that cache Bandwidths per Jacobian pattern
// (the sparse Newton workspace) skip the O(nnz) rescan FactorBandLU pays on
// every call, keeping the steady-state iteration alloc-free.
//
//pdevet:noalloc
func FactorBandLUInto(f *BandLU, a *CSR, kl, ku int) error {
	if a.Rows() != a.Cols() {
		// Failure path; allocates only on abort.
		return fmt.Errorf("la: band LU of non-square %d×%d matrix", a.Rows(), a.Cols()) //pdevet:allow noalloc error path
	}
	if f.n != a.Rows() || f.kl != kl || f.ku != ku {
		f.Reset(a.Rows(), kl, ku)
	}
	return f.FactorFrom(a)
}

// Solve solves A·x = b into dst, allocation-free. dst and b may alias fully;
// partial overlap is not supported.
func (f *BandLU) Solve(dst, b []float64) error {
	if len(b) != f.n || len(dst) != f.n {
		return fmt.Errorf("la: band solve length mismatch: n=%d len(b)=%d len(dst)=%d", f.n, len(b), len(dst))
	}
	n, kl, ku, w := f.n, f.kl, f.ku, f.w
	data := f.data
	x := dst
	if n > 0 && &dst[0] != &b[0] {
		copy(x, b)
	}
	// Forward substitution applying the recorded row swaps.
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
		xk := x[k]
		if xk == 0 {
			continue
		}
		iHi := min(k+kl, n-1)
		for i := k + 1; i <= iHi; i++ {
			x[i] -= data[i*w+k-i+kl] * xk
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := data[i*w : (i+1)*w]
		s := x[i]
		jHi := min(i+ku+kl, n-1)
		for j := i + 1; j <= jHi; j++ {
			s -= row[j-i+kl] * x[j]
		}
		d := row[kl]
		if d == 0 {
			return ErrSingular
		}
		x[i] = s / d
	}
	return nil
}

// SolveInto solves A·x = b in place: x holds b on entry and the solution on
// return.
func (f *BandLU) SolveInto(x []float64) error {
	if len(x) != f.n {
		return fmt.Errorf("la: band SolveInto length mismatch: n=%d len(x)=%d", f.n, len(x))
	}
	return f.Solve(x, x)
}

// SolveSparse factors and solves a sparse system in one call, choosing the
// banded direct solver. It returns the solution and the factorization (for
// op accounting).
func SolveSparse(a *CSR, b []float64) ([]float64, *BandLU, error) {
	f, err := FactorBandLU(a)
	if err != nil {
		return nil, nil, err
	}
	x := make([]float64, len(b))
	if err := f.Solve(x, b); err != nil {
		return nil, f, err
	}
	return x, f, nil
}

// FactorNormalFrom loads the regularised normal equations AᵀA + εI into the
// workspace and factors them. If A has bandwidths (klA, kuA), AᵀA has
// bandwidth klA+kuA on both sides, which the workspace must accommodate.
//
// This is the smooth (Levenberg–Marquardt-like) form of the analog quotient
// loop: unlike a shifted direct solve, (AᵀA+εI)⁻¹Aᵀg stays bounded and
// continuous as singular values of A cross zero, exactly like the physical
// finite-gain gradient-descent circuit it models.
func (f *BandLU) FactorNormalFrom(a *CSR, eps float64) error {
	if a.Rows() != f.n || a.Cols() != f.n {
		return fmt.Errorf("la: band workspace is %d×%d, matrix is %d×%d", f.n, f.n, a.Rows(), a.Cols())
	}
	for i := range f.data {
		f.data[i] = 0
	}
	f.FactorOps = 0
	w, kl := f.w, f.kl
	// (AᵀA)ij = Σ_k A[k][i]·A[k][j]: accumulate over the nnz pairs of each
	// row of A.
	for k := 0; k < f.n; k++ {
		cols, vals := a.RowNNZ(k)
		for p, i := range cols {
			vi := vals[p]
			if vi == 0 {
				continue
			}
			base := i*w - i + kl
			for q, j := range cols {
				off := j - i
				if off < -f.kl || off > f.ku {
					return fmt.Errorf("la: normal-equation entry (%d,%d) outside band kl=%d ku=%d", i, j, f.kl, f.ku)
				}
				f.data[base+j] += vi * vals[q]
			}
		}
	}
	for i := 0; i < f.n; i++ {
		f.data[i*w+kl] += eps
	}
	return f.factor()
}

// MulTransVec computes dst = Aᵀ·x.
func (m *CSR) MulTransVec(dst, x []float64) {
	if len(x) != m.rows || len(dst) != m.cols {
		panic(fmt.Sprintf("la: MulTransVec mismatch: %d×%d with %d into %d", m.rows, m.cols, len(x), len(dst)))
	}
	for i := range dst {
		dst[i] = 0
	}
	for k := 0; k < m.rows; k++ {
		xk := x[k]
		if xk == 0 {
			continue
		}
		lo, hi := m.rowPtr[k], m.rowPtr[k+1]
		for t := lo; t < hi; t++ {
			dst[m.colIdx[t]] += m.vals[t] * xk
		}
	}
}
