// Numerical kernel file: the exact zero comparisons below are pivot,
// breakdown and structural-sparsity tests against values that are zero by
// assignment or would divide by zero — exactness is the point.
//pdevet:allow floateq pivot/breakdown/structural zero tests are exact by construction

package la

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters an exactly
// or numerically singular matrix. The paper's damped-Newton baseline hits
// this at high Reynolds numbers, where the Jacobian diagonal shrinks (§6.1);
// callers are expected to react by damping or re-seeding rather than aborting.
var ErrSingular = errors.New("la: matrix is singular to working precision")

// LU is an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	n    int
	lu   *Dense // packed L (unit lower, below diagonal) and U (upper)
	piv  []int  // row permutation
	sign int    // permutation sign, for Det
}

// FactorLU computes the LU factorization of the square matrix a with partial
// pivoting. a is not modified.
func FactorLU(a *Dense) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("la: LU of non-square %d×%d matrix", a.Rows(), a.Cols())
	}
	n := a.Rows()
	f := &LU{n: n, lu: a.Clone(), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Find pivot.
		p, max := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > max {
				p, max = i, a
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b, writing the solution into dst. dst and b may alias.
func (f *LU) Solve(dst, b []float64) error {
	if len(b) != f.n || len(dst) != f.n {
		return fmt.Errorf("la: LU solve length mismatch: n=%d, len(b)=%d, len(dst)=%d", f.n, len(b), len(dst))
	}
	// Apply permutation into a scratch copy, then solve in place.
	x := make([]float64, f.n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	lu := f.lu
	// Forward substitution with unit lower triangle.
	for i := 1; i < f.n; i++ {
		row := lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with upper triangle.
	for i := f.n - 1; i >= 0; i-- {
		row := lu.Row(i)
		s := x[i]
		for j := i + 1; j < f.n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			return ErrSingular
		}
		x[i] = s / d
	}
	copy(dst, x)
	return nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// ConditionEstimate returns a cheap lower bound on the 1-norm condition
// number, used by the damped Newton solver to detect near-singular Jacobians.
func (f *LU) ConditionEstimate(a *Dense) float64 {
	// ||A||_1 times an estimate of ||A^-1||_1 via one solve with the
	// all-ones vector (a standard cheap heuristic; exact values are not
	// needed, only an order of magnitude).
	norm1 := 0.0
	for j := 0; j < f.n; j++ {
		s := 0.0
		for i := 0; i < f.n; i++ {
			s += math.Abs(a.At(i, j))
		}
		if s > norm1 {
			norm1 = s
		}
	}
	// Probe ‖A⁻¹‖₁ with a few structured sign vectors and keep the largest
	// response; a single all-ones probe can lie in the null direction of a
	// nearly singular matrix.
	inv1 := 0.0
	e := make([]float64, f.n)
	for probe := 0; probe < 3; probe++ {
		for i := range e {
			switch probe {
			case 0:
				e[i] = 1
			case 1:
				e[i] = float64(1 - 2*(i&1)) // alternating ±1
			default:
				e[i] = float64(1 - 2*((i/2)&1)) // period-4 signs
			}
		}
		if err := f.Solve(e, e); err != nil {
			return math.Inf(1)
		}
		s := 0.0
		for _, v := range e {
			s += math.Abs(v)
		}
		if s > inv1 {
			inv1 = s
		}
	}
	return norm1 * inv1 / float64(f.n)
}

// SolveDense solves A·x = b directly, a convenience for one-shot solves.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	if err := f.Solve(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// Invert returns the inverse of a, or ErrSingular.
func Invert(a *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows()
	inv := NewDense(n, n)
	col := make([]float64, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		if err := f.Solve(col, e); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
