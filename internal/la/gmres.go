// Numerical kernel file: the exact zero comparisons below are pivot,
// breakdown and structural-sparsity tests against values that are zero by
// assignment or would divide by zero — exactness is the point.
//pdevet:allow floateq pivot/breakdown/structural zero tests are exact by construction

package la

import (
	"fmt"
	"math"

	"hybridpde/internal/par"
)

// GMRESOptions configures the restarted GMRES solver.
type GMRESOptions struct {
	Tol     float64        // relative residual target; default 1e-10
	Restart int            // Krylov subspace size before restart; default 30
	MaxIter int            // total iteration budget; default 10·n
	M       Preconditioner // left preconditioner; default identity
	// Pool, when non-nil, fans the SpMV row loops across the worker pool
	// and replaces the linear Dot/Norm2 reductions with fixed-block
	// (ReduceBlock) sums folded in block order. Results are then
	// bit-identical at every pool size — but differ in final-bit rounding
	// from the Pool == nil path, whose reductions accumulate linearly.
	Pool *par.Pool
}

func (o *GMRESOptions) defaults(n int) {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Restart <= 0 {
		o.Restart = 30
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10 * n
	}
	if o.M == nil {
		o.M = IdentityPreconditioner{}
	}
}

// GMRES solves the general system A·x = b with restarted GMRES(m), the
// other workhorse Krylov method for the nonsymmetric systems implicit PDE
// solvers produce. Arnoldi orthogonalisation uses modified Gram-Schmidt;
// the least-squares problem is solved with Givens rotations.
func GMRES(a *CSR, x, b []float64, opts GMRESOptions) (IterStats, error) {
	n := len(b)
	if a.Rows() != n || a.Cols() != n || len(x) != n {
		return IterStats{}, fmt.Errorf("la: GMRES dimension mismatch")
	}
	opts.defaults(n)
	m := opts.Restart
	if m > n {
		m = n
	}
	// Kernel selection: with a pool, every reduction and SpMV goes through
	// the deterministic parallel variants so the solve's bits do not depend
	// on the worker count.
	var partials []float64
	if opts.Pool != nil {
		partials = make([]float64, NumReduceBlocks(n))
	}
	dot := func(a, b []float64) float64 {
		if partials != nil {
			return ParDot(opts.Pool, a, b, partials)
		}
		return Dot(a, b)
	}
	nrm := func(v []float64) float64 {
		if partials != nil {
			return ParNorm2(opts.Pool, v, partials)
		}
		return Norm2(v)
	}
	resid := func(dst, b, x []float64) {
		if opts.Pool != nil {
			a.ResidualPar(opts.Pool, dst, b, x)
			return
		}
		a.Residual(dst, b, x)
	}
	mv := func(dst, src []float64) {
		if opts.Pool != nil {
			a.MulVecPar(opts.Pool, dst, src)
			return
		}
		a.MulVec(dst, src)
	}
	bnorm := nrm(b)
	if bnorm == 0 {
		bnorm = 1
	}

	// Workspace: Krylov basis V, Hessenberg H, Givens rotations.
	v := make([][]float64, m+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := NewDense(m+1, m)
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)
	r := make([]float64, n)
	z := make([]float64, n)
	w := make([]float64, n)

	var st IterStats
	for st.Iterations < opts.MaxIter {
		// Restart cycle: r = M⁻¹(b − A·x).
		resid(r, b, x)
		opts.M.Apply(z, r)
		beta := nrm(z)
		st.Residual = nrm(r)
		if st.Residual <= opts.Tol*bnorm {
			st.Converged = true
			return st, nil
		}
		if beta == 0 {
			return st, ErrBreakdown
		}
		for i := range z {
			v[0][i] = z[i] / beta
		}
		Fill(g, 0)
		g[0] = beta
		h.Zero()

		k := 0
		for ; k < m && st.Iterations < opts.MaxIter; k++ {
			st.Iterations++
			// w = M⁻¹·A·v_k.
			mv(r, v[k])
			opts.M.Apply(w, r)
			// Modified Gram-Schmidt against v_0..v_k.
			for i := 0; i <= k; i++ {
				hik := dot(w, v[i])
				h.Set(i, k, hik)
				Axpy(-hik, v[i], w)
			}
			wn := nrm(w)
			h.Set(k+1, k, wn)
			if wn > 1e-300 {
				for i := range w {
					v[k+1][i] = w[i] / wn
				}
			}
			// Apply previous Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h.At(i, k) + sn[i]*h.At(i+1, k)
				h.Set(i+1, k, -sn[i]*h.At(i, k)+cs[i]*h.At(i+1, k))
				h.Set(i, k, t)
			}
			// New rotation annihilating H(k+1, k).
			denom := math.Hypot(h.At(k, k), h.At(k+1, k))
			if denom == 0 {
				return st, ErrBreakdown
			}
			cs[k] = h.At(k, k) / denom
			sn[k] = h.At(k+1, k) / denom
			h.Set(k, k, denom)
			h.Set(k+1, k, 0)
			g[k+1] = -sn[k] * g[k]
			g[k] *= cs[k]
			// |g[k+1]| is the preconditioned residual norm estimate.
			if math.Abs(g[k+1]) <= opts.Tol*bnorm {
				k++
				break
			}
			if wn <= 1e-300 {
				// Happy breakdown: exact solution in the current space.
				k++
				break
			}
		}
		// Solve the k×k triangular system and update x.
		y := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h.At(i, j) * y[j]
			}
			d := h.At(i, i)
			if d == 0 {
				return st, ErrBreakdown
			}
			y[i] = s / d
		}
		for i := 0; i < k; i++ {
			Axpy(y[i], v[i], x)
		}
	}
	resid(r, b, x)
	st.Residual = nrm(r)
	st.Converged = st.Residual <= opts.Tol*bnorm
	if !st.Converged {
		return st, ErrNoConvergence
	}
	return st, nil
}
